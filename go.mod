module dloop

go 1.22
