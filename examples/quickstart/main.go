// Quickstart: build an 8 GB SSD with each of the three FTLs, replay the
// same synthetic Financial1 workload, and compare the paper's two metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dloop"
)

func main() {
	// Scale the device and the workload footprint together (1/20th of paper
	// scale): utilization stays at Financial1's ~80%, so garbage collection
	// is live, and the example finishes in seconds. Set scale to 1 (and
	// raise requests) for paper-scale numbers.
	const scale = 0.05
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, scale)
	if err != nil {
		log.Fatal(err)
	}
	profile := dloop.Financial1().ScaleFootprint(scale)
	const requests = 100_000
	const seed = 42

	fmt.Printf("workload: %s, %d requests, footprint %d MiB\n\n",
		profile.Name, requests, profile.FootprintBytes>>20)
	fmt.Printf("%-8s %14s %10s %12s %12s\n", "FTL", "mean resp (ms)", "SDRPP", "GC moves", "bus-free %")

	for _, scheme := range dloop.Schemes() {
		cfg := dloop.Config{
			FTL:        scheme,
			Geometry:   &geo,
			CMTEntries: 256, // scale the SRAM cache with the device
		}
		res, err := dloop.Simulate(cfg, profile, requests, seed)
		if err != nil {
			log.Fatal(err)
		}
		moves := res.GCCopyBacks + res.GCExternalMoves + res.MergeCopies
		busFree := 0.0
		if moves > 0 {
			busFree = 100 * float64(res.GCCopyBacks) / float64(moves)
		}
		fmt.Printf("%-8s %14.3f %10.2f %12d %11.1f%%\n",
			scheme, res.MeanRespMs, res.SDRPP, moves, busFree)
	}

	fmt.Println("\nDLOOP should have the lowest mean response time and SDRPP:")
	fmt.Println("its garbage collection relocates pages with intra-plane copy-back")
	fmt.Println("(225 µs, no bus), while DFTL and FAST move pages through the")
	fmt.Println("serial bus and channel (325 µs each, blocking other requests).")
}
