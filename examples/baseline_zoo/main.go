// Baseline zoo: every FTL in the repository on one workload, ordered the
// way FTL history ordered them — BAST (block-associative logs, thrashes on
// random writes), FAST (fully-associative logs, §II.A), DFTL (demand-paged
// page map), DLOOP (the paper), and the idealized all-in-SRAM page maps
// that upper-bound what mapping and placement can each contribute. A second
// pass adds the Fig. 1a DRAM write buffer to show how much a modest cache
// hides from all of them.
//
//	go run ./examples/baseline_zoo
package main

import (
	"fmt"
	"log"

	"dloop"
)

func main() {
	const scale = 0.05
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, scale)
	if err != nil {
		log.Fatal(err)
	}
	profile := dloop.Financial1().ScaleFootprint(scale)
	const requests = 60_000

	schemes := []string{"BAST", "FAST", "DFTL", "DLOOP", "PureMap", "PureMap-striped"}

	fmt.Printf("workload: %s, %d requests, 4 GB-geometry at 1/20 scale\n\n", profile.Name, requests)
	fmt.Printf("%-16s %14s %14s %12s\n", "FTL", "bare (ms)", "buffered (ms)", "GC/merges")
	for _, scheme := range schemes {
		bare, err := run(scheme, geo, profile, 0)
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		buffered, err := run(scheme, geo, profile, 1024) // 2 MiB of DRAM
		if err != nil {
			log.Fatalf("%s buffered: %v", scheme, err)
		}
		work := bare.GCRuns + bare.FullMerges + bare.PartialMerges + bare.SwitchMerges
		fmt.Printf("%-16s %14.3f %14.3f %12d\n", scheme, bare.MeanRespMs, buffered.MeanRespMs, work)
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" - BAST vs FAST: block-associative vs fully-associative logs;")
	fmt.Println("   which wins depends on locality (hot blocks suit BAST's")
	fmt.Println("   dedicated logs, scattered random writes suit FAST).")
	fmt.Println(" - FAST -> DFTL: page mapping removes full merges entirely.")
	fmt.Println(" - DFTL -> DLOOP: plane striping + copy-back GC (the paper).")
	fmt.Println(" - DLOOP -> PureMap-striped: what free SRAM translation would add.")
	fmt.Println(" - buffered column: a 2 MiB write buffer absorbs and coalesces")
	fmt.Println("   hot updates before any FTL sees them.")
}

func run(scheme string, geo dloop.Geometry, p dloop.Profile, bufferPages int) (dloop.Result, error) {
	cfg := dloop.Config{
		FTL:         scheme,
		Geometry:    &geo,
		CMTEntries:  256,
		BufferPages: bufferPages,
	}
	return dloop.Simulate(cfg, p, 60_000, 42)
}
