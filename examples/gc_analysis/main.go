// GC analysis: drive one DLOOP SSD request-by-request through the low-level
// API and dissect where garbage-collection time goes — copy-back moves vs
// the external moves a plane-oblivious FTL would make, parity waste, and the
// mapping traffic behind it. This is the workload of §III.A/§III.C viewed
// from the inside.
//
//	go run ./examples/gc_analysis
package main

import (
	"fmt"
	"log"

	"dloop"
)

func main() {
	cfg := dloop.Config{CapacityGB: 4, FTL: dloop.SchemeDLOOP}
	ssd, err := dloop.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Populate a 3.4 GB working set (85% of the device), the regime where
	// updates force sustained garbage collection.
	profile := dloop.TPCC()
	if err := ssd.PreconditionBytes(profile.FootprintBytes); err != nil {
		log.Fatal(err)
	}

	reqs, err := dloop.GenerateTrace(profile, 7, 200_000)
	if err != nil {
		log.Fatal(err)
	}

	// Serve request by request, sampling device state every 50k requests.
	checkpoint := 50_000
	for i, r := range reqs {
		if _, err := ssd.Serve(r); err != nil {
			log.Fatal(err)
		}
		if (i+1)%checkpoint == 0 {
			res := ssd.Result()
			fmt.Printf("after %6d requests: mean %7.3f ms | GC runs %5d | copy-backs %7d | external %4d | parity waste %4d | erases %5d\n",
				i+1, res.MeanRespMs, res.GCRuns, res.GCCopyBacks, res.GCExternalMoves, res.WastedPages, res.Erases)
		}
	}

	res := ssd.Result()
	fmt.Println()
	fmt.Println("final accounting:")
	fmt.Printf("  flash ops: %d reads, %d writes, %d copy-backs, %d erases\n",
		res.Reads, res.Writes, res.CopyBacks, res.Erases)
	moves := res.GCCopyBacks + res.GCExternalMoves
	if moves > 0 {
		fmt.Printf("  GC moved %d pages; %.1f%% via intra-plane copy-back (bus-free)\n",
			moves, 100*float64(res.GCCopyBacks)/float64(moves))
		fmt.Printf("  parity rule wasted %d pages (%.2f per 100 moves)\n",
			res.WastedPages, 100*float64(res.WastedPages)/float64(moves))
	}
	// Each copy-back at 225 µs replaces a 325 µs external move AND frees the
	// bus for host traffic: quantify the direct saving.
	savedMs := float64(res.GCCopyBacks) * 0.100 // 325µs - 225µs per move
	fmt.Printf("  direct latency avoided by copy-back: %.0f ms of plane time\n", savedMs)
	fmt.Printf("  mapping traffic: CMT hit %.1f%%, %d translation reads, %d translation writes\n",
		100*res.CMTHitRate, res.TransReads, res.TransWrites)
	fmt.Printf("  wear: %d erases, coefficient of variation %.3f\n", res.TotalErases, res.WearCV)
}
