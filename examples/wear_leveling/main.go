// Wear leveling: §III.C claims that directing every update to the plane of
// its original data "implicitly wear-levels all blocks on one plane without
// an external wear-leveling mechanism". This example measures that claim:
// it runs the locality-heavy Financial1 workload on all three FTLs and
// compares how evenly block erases spread (coefficient of variation of
// per-block erase counts — lower is more even) alongside SDRPP, the paper's
// plane-level balance metric.
//
//	go run ./examples/wear_leveling
package main

import (
	"fmt"
	"log"

	"dloop"
)

func main() {
	const scale = 0.05
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, scale)
	if err != nil {
		log.Fatal(err)
	}
	profile := dloop.Financial1().ScaleFootprint(scale)
	const requests = 150_000

	fmt.Printf("workload: %s (Zipf-skewed updates), %d requests\n\n", profile.Name, requests)
	fmt.Printf("%-8s %12s %10s %12s %14s\n", "FTL", "erases", "wear CV", "SDRPP", "mean resp ms")

	for _, scheme := range dloop.Schemes() {
		cfg := dloop.Config{FTL: scheme, Geometry: &geo, CMTEntries: 256}
		res, err := dloop.Simulate(cfg, profile, requests, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12d %10.3f %12.2f %14.3f\n",
			scheme, res.TotalErases, res.WearCV, res.SDRPP, res.MeanRespMs)
	}

	fmt.Println("\nDLOOP's striping spreads both host load (SDRPP) and erase wear")
	fmt.Println("across planes; DFTL and FAST concentrate early allocation on")
	fmt.Println("low-numbered planes, skewing both metrics.")
}
