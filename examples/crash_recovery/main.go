// Crash recovery: run a DLOOP SSD under load, pull the plug, rebuild the
// controller from the out-of-band page tags (the spare-area logical
// addresses every NAND page carries), and verify the recovered device is
// byte-for-byte equivalent — then keep serving on it. The same OOB tags are
// what make the FTL's lazy GC mapping redirects safe (DESIGN.md §5b).
//
//	go run ./examples/crash_recovery
package main

import (
	"fmt"
	"log"

	"dloop"
)

func main() {
	const scale = 0.05
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, scale)
	if err != nil {
		log.Fatal(err)
	}
	profile := dloop.TPCC().ScaleFootprint(scale)

	ssd, err := dloop.New(dloop.Config{FTL: dloop.SchemeDLOOP, Geometry: &geo, CMTEntries: 256})
	if err != nil {
		log.Fatal(err)
	}
	if err := ssd.PreconditionBytes(profile.FootprintBytes); err != nil {
		log.Fatal(err)
	}

	// Heavy random updates: garbage collection relocates pages constantly,
	// so the crash happens with plenty of lazily-redirected (stale on
	// flash, OOB-authoritative) mappings in flight.
	reqs, err := dloop.GenerateTrace(profile, 99, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reqs {
		if _, err := ssd.Serve(r); err != nil {
			log.Fatal(err)
		}
	}
	res := ssd.Result()
	fmt.Printf("before crash: %d requests served, %d GC runs, %d copy-backs\n",
		res.Requests, res.GCRuns, res.GCCopyBacks)

	// Power loss: every byte of SRAM (mapping table, GTD, CMT, pools, write
	// points) is gone. Only the flash array survives.
	recovered, err := dloop.Recover(ssd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered: mapping rebuilt from OOB spare-area tags")

	// Reads on the recovered device return the same physical pages; writes
	// (and the GC they trigger) keep working.
	post, err := dloop.GenerateTrace(profile, 100, 20_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range post {
		if _, err := recovered.Serve(r); err != nil {
			log.Fatal(err)
		}
	}
	res = recovered.Result()
	fmt.Printf("after recovery: %d more requests, mean %.3f ms, %d further GC runs\n",
		res.Requests, res.MeanRespMs, res.GCRuns)
	fmt.Println("(the mapping-consistency proof lives in the test suite:")
	fmt.Println(" internal/ftl/dloop TestRecoveryRebuildsMapping compares every LPN)")
}
