// Capacity sweep: a miniature rendition of the paper's Fig. 8 — how mean
// response time and plane-load balance change as the SSD grows from 4 GB to
// 64 GB while the workload stays the same. Larger SSDs delay garbage
// collection (the footprint is a smaller fraction of the device), so
// response times fall for every FTL, with DLOOP in front throughout.
//
//	go run ./examples/capacity_sweep
//	go run ./examples/capacity_sweep -scale 1 -requests 400000   # paper scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dloop"
)

func main() {
	scale := flag.Float64("scale", 0.05, "device+footprint scale (1 = paper scale)")
	requests := flag.Int("requests", 20_000, "requests per run")
	flag.Parse()

	opt := dloop.Options{
		Requests: *requests,
		Scale:    *scale,
		Progress: func(s string) { fmt.Fprintln(os.Stderr, s) },
	}
	mrt, sdrpp, err := dloop.Fig8(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := mrt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := sdrpp.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := dloop.Headline(mrt).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
