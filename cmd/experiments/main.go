// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each figure produces an aligned text table on stdout
// and, with -out, a CSV per grid.
//
// Usage:
//
//	experiments -exp all -requests 400000 -out results/
//	experiments -exp fig8 -scale 0.05 -requests 20000   # quick pass
//
// Experiments: fig8 (capacity sweep), fig9 (page size), fig10 (extra
// blocks), headline (improvement ratios, implies fig8), ablation (E5
// copy-back on/off), parity (E6 same-parity waste), hotplane (E7 adaptive
// GC), gcpolicy (E9 victim-policy sweep), translate (E10 translation-policy
// sweep), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dloop"
	"dloop/internal/obs/httpexport"
	"dloop/internal/prof"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig8|fig9|fig10|headline|ablation|parity|striping|hotplane|gcpolicy|translate|all")
		requests   = flag.Int("requests", 400_000, "requests per run")
		seed       = flag.Int64("seed", 42, "workload seed")
		scale      = flag.Float64("scale", 1.0, "shrink device+footprint for quick runs (0,1]")
		workers    = flag.Int("workers", 0, "concurrent runs (0 = NumCPU divided by -shards)")
		cells      = flag.Int("parallel-cells", 0, "explicit worker-pool size; overrides -workers (0 = derive)")
		shards     = flag.String("shards", "1", "timing shards per cell: N workers (1 = sequential), or 'auto' for one per channel; results stay bit-identical")
		ftlShards  = flag.String("ftl-shards", "1", "concurrent FTL shards per cell: LPN mod N over N independent FTLs (1 = single FTL), or 'auto' for one per channel on 8+ channel shapes")
		merge      = flag.String("merge", "", "completion merge mode with -ftl-shards > 1: deterministic|relaxed (empty = deterministic)")
		epochPages = flag.Int("epoch-pages", 0, "pages per multi-queue pipeline epoch (0 = default 4096); deterministic results are bit-identical across values")
		translate  = flag.String("translate", "", "translation policy for the DLOOP/DFTL runs: slru|lru|learned (empty = slru; the translate experiment sweeps its own)")
		cmtEntries = flag.Int("cmt-entries", 0, "SRAM mapping-cache entries for DLOOP/DFTL runs (0 = scheme default; the translate experiment sweeps its own)")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		quiet      = flag.Bool("q", false, "suppress per-run progress")
		noFork     = flag.Bool("no-fork", false, "disable warm-up checkpoint sharing; every cell builds and preconditions its own simulator")
		warmCache  = flag.String("warmup-cache", "", "directory of persistent warm-up checkpoints, content-addressed by (config, footprint); sweeps restore matching warm-ups instead of simulating them and publish fresh ones for later runs")

		metricsOut  = flag.String("metrics-out", "", "directory receiving one metrics.json per run")
		traceEvents = flag.String("trace-events", "", "directory receiving one Chrome trace-event document per run")
		snapshotMs  = flag.Int("snapshot-interval", 0, "emit SDRPP/utilization time-series snapshots every N simulated ms (0 = off)")
		listen      = flag.String("listen", "", "serve live Prometheus /metrics, /metrics.json and /debug/pprof on this address (e.g. :9090) while the sweep runs")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut   = flag.String("trace-out", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stopProf, perr := prof.Start(prof.Config{CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *traceOut})
	if perr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", perr)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	nShards, err := dloop.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -shards:", err)
		os.Exit(1)
	}
	nFTLShards, err := dloop.ParseShards(*ftlShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -ftl-shards:", err)
		os.Exit(1)
	}

	opt := dloop.Options{
		Requests: *requests, Seed: *seed, Scale: *scale, Workers: *workers,
		ParallelCells: *cells, Shards: nShards, FTLShards: nFTLShards, Merge: *merge,
		EpochPages:      *epochPages,
		TranslatePolicy: *translate, CMTEntries: *cmtEntries,
		MetricsDir: *metricsOut, TraceDir: *traceEvents, SnapshotIntervalMs: *snapshotMs,
		NoFork: *noFork, WarmupCache: *warmCache,
	}
	stats := &dloop.SweepStats{}
	if *warmCache != "" {
		opt.Stats = stats
	}
	if *listen != "" {
		srv, err := httpexport.Listen(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (Prometheus), /metrics.json, /debug/pprof/\n", srv.Addr())
		opt.Exporter = srv
	}
	if !*quiet {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	start := time.Now()
	if err := run(*exp, opt, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *warmCache != "" {
		fmt.Fprintln(os.Stderr, stats.Summary())
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
}

func run(exp string, opt dloop.Options, outDir string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	emit := func(name string, grids ...*dloop.Grid) error {
		for i, g := range grids {
			if g == nil {
				continue
			}
			fmt.Println()
			if err := g.Render(os.Stdout); err != nil {
				return err
			}
			if outDir != "" {
				if err := os.MkdirAll(outDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(outDir, fmt.Sprintf("%s_%d.csv", name, i))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := g.CSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	ran := false
	var fig8MRT *dloop.Grid
	if want("fig8") || want("headline") {
		ran = true
		mrt, sdrpp, err := dloop.Fig8(opt)
		if err != nil {
			return err
		}
		fig8MRT = mrt
		if err := emit("fig8", mrt, sdrpp); err != nil {
			return err
		}
	}
	if want("headline") {
		ran = true
		if err := emit("headline", dloop.Headline(fig8MRT)); err != nil {
			return err
		}
	}
	if want("fig9") {
		ran = true
		mrt, sdrpp, err := dloop.Fig9(opt)
		if err != nil {
			return err
		}
		if err := emit("fig9", mrt, sdrpp); err != nil {
			return err
		}
	}
	if want("fig10") {
		ran = true
		mrt, sdrpp, err := dloop.Fig10(opt)
		if err != nil {
			return err
		}
		if err := emit("fig10", mrt, sdrpp); err != nil {
			return err
		}
	}
	if want("ablation") {
		ran = true
		g, err := dloop.AblationCopyback(opt)
		if err != nil {
			return err
		}
		if err := emit("ablation", g); err != nil {
			return err
		}
	}
	if want("parity") {
		ran = true
		g, err := dloop.ParityReport(opt)
		if err != nil {
			return err
		}
		if err := emit("parity", g); err != nil {
			return err
		}
	}
	if want("striping") {
		ran = true
		g, err := dloop.StripingStudy(opt)
		if err != nil {
			return err
		}
		if err := emit("striping", g); err != nil {
			return err
		}
	}
	if want("hotplane") {
		ran = true
		g, err := dloop.HotPlane(opt)
		if err != nil {
			return err
		}
		if err := emit("hotplane", g); err != nil {
			return err
		}
	}
	if want("gcpolicy") {
		ran = true
		mrt, moves, err := dloop.GCPolicyStudy(opt)
		if err != nil {
			return err
		}
		if err := emit("gcpolicy", mrt, moves); err != nil {
			return err
		}
	}
	if want("translate") {
		ran = true
		reads, mrt, err := dloop.TranslateStudy(opt)
		if err != nil {
			return err
		}
		if err := emit("translate", reads, mrt); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"fig8", "fig9", "fig10", "headline", "ablation", "parity", "striping", "hotplane", "gcpolicy", "translate", "all"}, "|"))
	}
	return nil
}
