// Command dloopsim runs one SSD simulation and prints a detailed report.
// The workload is either one of the paper's five synthetic profiles or a
// trace file in DiskSim ASCII or SPC-1 CSV format.
//
// Usage:
//
//	dloopsim -ftl DLOOP -capacity 8 -trace Financial1 -requests 200000
//	dloopsim -ftl FAST -tracefile f1.spc -format spc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dloop"
	"dloop/internal/expt"
	"dloop/internal/obs"
	"dloop/internal/obs/httpexport"
	"dloop/internal/prof"
	"dloop/internal/sim"
	"dloop/internal/ssd"
	"dloop/internal/trace"
)

func main() {
	var (
		ftlName    = flag.String("ftl", "DLOOP", "FTL scheme: DLOOP|DFTL|FAST|BAST|PureMap|PureMap-striped")
		capacity   = flag.Int("capacity", 8, "SSD capacity in GB (4/8/16/32/64)")
		pageKB     = flag.Int("page", 2, "page size in KB (2/4/8/16)")
		extraPct   = flag.Float64("extra", 0.03, "extra blocks as a fraction of data blocks")
		traceName  = flag.String("trace", "Financial1", "synthetic workload: Financial1|Financial2|TPC-C|Exchange|Build")
		traceFile  = flag.String("tracefile", "", "replay a trace file instead of a synthetic workload")
		format     = flag.String("format", "disksim", "trace file format: disksim|spc")
		requests   = flag.Int("requests", 200_000, "synthetic requests to replay")
		seed       = flag.Int64("seed", 42, "workload seed")
		footprint  = flag.Int64("footprint", 0, "precondition footprint in MiB (0 = workload default)")
		nocb       = flag.Bool("no-copyback", false, "DLOOP E5 ablation: external GC moves")
		adaptive   = flag.Bool("adaptive-gc", false, "DLOOP E7 extension: hot-plane-aware GC thresholds")
		stripeBy   = flag.String("stripe-by", "", "DLOOP E8 ablation: plane|die|chip|channel")
		gcPolicy   = flag.String("gc-policy", "", "GC victim policy: greedy|costbenefit|windowed|fifo (empty = scheme default)")
		translate  = flag.String("translate", "", "translation policy for DLOOP/DFTL: slru|lru|learned (empty = slru)")
		cmtEntries = flag.Int("cmt-entries", 0, "SRAM mapping-cache entries for DLOOP/DFTL (0 = default 4096); validated against the logical space")
		bufPages   = flag.Int("buffer-pages", 0, "DRAM write buffer capacity in pages (0 = off)")
		shards     = flag.String("shards", "1", "timing shards: N workers (1 = sequential), or 'auto' for one per channel; results are bit-identical either way")
		ftlShards  = flag.String("ftl-shards", "1", "concurrent FTL shards: the logical space splits LPN mod N over N independent FTLs (1 = single FTL), or 'auto' for one per channel on 8+ channel shapes")
		merge      = flag.String("merge", "", "completion merge mode with -ftl-shards > 1: deterministic|relaxed (empty = deterministic)")
		epochPages = flag.Int("epoch-pages", 0, "pages per pipeline epoch on the multi-queue front end (0 = default 4096); results are bit-identical across values in deterministic merge")
		doorbell   = flag.Int("doorbell-batch", 0, "staged page commands per doorbell ring on the multi-queue front end (0 = default 64)")
		pipeDepth  = flag.Int("pipeline-depth", 0, "multi-queue epoch pipelining: 2 = double-buffered fold overlap (default), 1 = stop-the-world barrier per epoch")
		warmCache  = flag.String("warmup-cache", "", "directory of persistent warm-up checkpoints, content-addressed by (config, footprint); matching warm-ups restore from disk instead of simulating, fresh ones are published for later runs")

		metricsOut  = flag.String("metrics-out", "", "write the run's observability metrics.json to this file")
		traceEvents = flag.String("trace-events", "", "write a Chrome trace-event/Perfetto timeline of every flash op to this file")
		snapshotMs  = flag.Int("snapshot-interval", 0, "emit SDRPP/utilization time-series snapshots every N simulated ms (0 = off)")
		listen      = flag.String("listen", "", "serve live Prometheus /metrics, /metrics.json and /debug/pprof on this address (e.g. :9090) while the run executes")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut   = flag.String("trace-out", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stopProf, perr := prof.Start(prof.Config{CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *traceOut})
	if perr != nil {
		fmt.Fprintln(os.Stderr, "dloopsim:", perr)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dloopsim:", err)
		}
	}()

	nShards, err := dloop.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dloopsim: -shards:", err)
		os.Exit(1)
	}
	nFTLShards, err := dloop.ParseShards(*ftlShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dloopsim: -ftl-shards:", err)
		os.Exit(1)
	}

	cfg := dloop.Config{
		CapacityGB:      *capacity,
		PageSizeKB:      *pageKB,
		ExtraPct:        *extraPct,
		FTL:             *ftlName,
		DisableCopyBack: *nocb,
		AdaptiveGC:      *adaptive,
		StripeBy:        *stripeBy,
		GCPolicy:        *gcPolicy,
		TranslatePolicy: *translate,
		CMTEntries:      *cmtEntries,
		BufferPages:     *bufPages,
		Shards:          nShards,
		FTLShards:       nFTLShards,
		Merge:           *merge,
		EpochPages:      *epochPages,
		DoorbellBatch:   *doorbell,
		PipelineDepth:   *pipeDepth,
	}

	ob, err := newObserver(*metricsOut, *traceEvents, *snapshotMs, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dloopsim:", err)
		os.Exit(1)
	}

	wc := &dloop.WarmupCache{Dir: *warmCache, Stats: &dloop.SweepStats{}}

	start := time.Now()
	var res dloop.Result
	if *traceFile != "" {
		res, err = replayFile(cfg, *traceFile, *format, *footprint, wc, ob)
	} else {
		p, ok := dloop.WorkloadByName(*traceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "dloopsim: unknown trace %q\n", *traceName)
			os.Exit(1)
		}
		if *footprint > 0 {
			p.FootprintBytes = *footprint << 20
		}
		res, err = expt.RunCachedObserved(cfg, p, *requests, *seed, wc, ob.attach)
	}
	if err == nil {
		err = ob.finish()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dloopsim:", err)
		os.Exit(1)
	}
	if *warmCache != "" {
		fmt.Fprintln(os.Stderr, wc.Stats.Summary())
	}
	report(res, time.Since(start))
}

// observer owns the command's observability sinks: it builds one collector
// per run (at the post-precondition attach point), publishes live snapshots
// to the HTTP exporter at epoch barriers, and flushes the metrics and trace
// files when the run finishes.
type observer struct {
	metricsOut string
	traceFile  *os.File
	snapshot   sim.Duration
	col        *obs.Collector
	srv        *httpexport.Server
	lastPub    time.Time
}

func newObserver(metricsOut, traceEvents string, snapshotMs int, listen string) (*observer, error) {
	ob := &observer{
		metricsOut: metricsOut,
		snapshot:   sim.Duration(snapshotMs) * sim.Millisecond,
	}
	if traceEvents != "" {
		f, err := os.Create(traceEvents)
		if err != nil {
			return nil, err
		}
		ob.traceFile = f
	}
	if listen != "" {
		srv, err := httpexport.Listen(listen)
		if err != nil {
			if ob.traceFile != nil {
				ob.traceFile.Close()
			}
			return nil, err
		}
		ob.srv = srv
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (Prometheus), /metrics.json, /debug/pprof/\n", srv.Addr())
	}
	return ob, nil
}

// enabled reports whether any observability output was requested.
func (ob *observer) enabled() bool {
	return ob.metricsOut != "" || ob.traceFile != nil || ob.snapshot > 0 || ob.srv != nil
}

// attach builds the collector for a freshly preconditioned SSD; it returns
// nil (observability disabled, zero overhead) when no flag asked for output.
func (ob *observer) attach(c *ssd.Controller) obs.Recorder {
	if !ob.enabled() {
		return nil
	}
	o := c.ObsOptions()
	if ob.traceFile != nil {
		o.TraceEvents = ob.traceFile
	}
	o.SnapshotInterval = ob.snapshot
	ob.col = obs.NewCollector(o)
	if ob.srv != nil {
		c.SetPulse(ob.publish)
		ob.publish()
	}
	return ob.col
}

// publish pushes a merged registry snapshot to the exporter, throttled on
// the wall clock: the simulator pulses at every epoch barrier, far faster
// than any scraper polls.
func (ob *observer) publish() {
	if time.Since(ob.lastPub) < 250*time.Millisecond {
		return
	}
	ob.lastPub = time.Now()
	ob.srv.Publish(ob.col.SnapshotRegistry())
}

// finish closes the collector and writes the requested artifacts.
func (ob *observer) finish() error {
	if ob.col == nil {
		return nil
	}
	if err := ob.col.Close(); err != nil {
		return err
	}
	if ob.srv != nil {
		// Final state, bypassing the rate limit; the endpoint stays up until
		// the process exits so a last scrape can collect it.
		if err := ob.srv.Publish(ob.col.SnapshotRegistry()); err != nil {
			return err
		}
	}
	if ob.traceFile != nil {
		if err := ob.traceFile.Close(); err != nil {
			return err
		}
	}
	if ob.metricsOut == "" {
		return nil
	}
	f, err := os.Create(ob.metricsOut)
	if err != nil {
		return err
	}
	if err := ob.col.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func replayFile(cfg dloop.Config, path, format string, footprintMiB int64, wc *dloop.WarmupCache, ob *observer) (dloop.Result, error) {
	// LoadArena parses the file once into a shared columnar arena; repeated
	// replays of the same file (and the stats summary below) reuse it.
	arena, err := trace.LoadArena(path, format)
	if err != nil {
		return dloop.Result{}, err
	}
	st := arena.Stats()
	fmt.Printf("trace: %s\n", st)

	c, err := ssd.Build(cfg)
	if err != nil {
		return dloop.Result{}, err
	}
	defer c.Close()
	footprint := st.MaxEnd * trace.SectorSize
	if footprintMiB > 0 {
		footprint = footprintMiB << 20
	}
	// A cached warm-up replaces the preconditioning simulation when the cache
	// holds this (config, footprint); otherwise precondition and publish.
	if !wc.LoadInto(c, cfg, footprint) {
		if err := c.PreconditionBytes(footprint); err != nil {
			return dloop.Result{}, err
		}
		_ = wc.Save(c, cfg, footprint)
	}
	if rec := ob.attach(c); rec != nil {
		c.SetRecorder(rec)
	}
	return c.Run(arena.Cursor())
}

func report(res dloop.Result, wall time.Duration) {
	fmt.Printf("FTL:                 %s\n", res.FTL)
	if res.GCPolicy != "" {
		fmt.Printf("GC policy:           %s\n", res.GCPolicy)
	}
	fmt.Printf("requests:            %d (%d page reads, %d page writes)\n", res.Requests, res.PagesRead, res.PagesWrit)
	fmt.Printf("simulated time:      %.1f s\n", res.SimulatedS)
	fmt.Printf("mean response time:  %.3f ms (std %.3f, p50 %.3f, p99 %.3f, max %.3f)\n",
		res.MeanRespMs, res.StdRespMs, res.P50Ms, res.P99Ms, res.MaxRespMs)
	fmt.Printf("  reads %.3f ms / writes %.3f ms\n", res.ReadMeanMs, res.WriteMeanMs)
	fmt.Printf("SDRPP (ln):          %.2f over %d planes\n", res.SDRPP, len(res.PlaneOps))
	fmt.Printf("flash ops:           %d reads, %d writes, %d copy-backs, %d erases\n",
		res.Reads, res.Writes, res.CopyBacks, res.Erases)
	fmt.Printf("GC:                  %d runs, %d copy-back moves, %d external moves, %d parity-wasted pages\n",
		res.GCRuns, res.GCCopyBacks, res.GCExternalMoves, res.WastedPages)
	if res.TransReads+res.TransWrites > 0 {
		fmt.Printf("mapping:             CMT hit %.1f%%, %d translation reads, %d translation writes\n",
			100*res.CMTHitRate, res.TransReads, res.TransWrites)
		if res.LearnedHits > 0 {
			fmt.Printf("  learned index:     %d verified predictions (translation reads skipped)\n", res.LearnedHits)
		}
	}
	if res.SwitchMerges+res.PartialMerges+res.FullMerges > 0 {
		fmt.Printf("merges:              %d switch, %d partial, %d full (%d pages copied)\n",
			res.SwitchMerges, res.PartialMerges, res.FullMerges, res.MergeCopies)
	}
	fmt.Printf("wear:                %d erases total, CV %.3f\n", res.TotalErases, res.WearCV)
	fmt.Printf("wall time:           %v\n", wall.Round(time.Millisecond))
}
