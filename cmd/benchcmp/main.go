// Command benchcmp diffs two benchmark baselines produced by scripts/bench.sh
// and fails when the new run regresses: more than -ns-tolerance on ns/op
// (default 10%), or ANY growth in B/op or allocs/op (the hot paths are
// zero-allocation by design; a single new byte per op is a bug, not noise).
//
// Benchmarks present only in the new run are reported and accepted — adding a
// benchmark must not break the gate. Benchmarks present only in the baseline
// are reported as missing and fail the run: a silently vanished benchmark is
// how a regression hides.
//
// Usage:
//
//	benchcmp -old BENCH_BASELINE.json -new /tmp/bench.json
//	benchcmp -ns-tolerance 0.25 ...   # noisy shared runners
//	benchcmp -skip-ns ...             # allocation gate only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type baseline struct {
	Commit     string  `json:"commit"`
	Mode       string  `json:"mode"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Package  string   `json:"package"`
	Name     string   `json:"name"`
	NsPerOp  float64  `json:"ns_per_op"`
	BytesOp  *float64 `json:"bytes_per_op"`
	AllocsOp *float64 `json:"allocs_per_op"`
}

func (e entry) key() string { return e.Package + "." + e.Name }

func load(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func main() {
	var (
		oldPath = flag.String("old", "BENCH_BASELINE.json", "baseline to compare against")
		newPath = flag.String("new", "", "freshly measured baseline (required)")
		nsTol   = flag.Float64("ns-tolerance", 0.10, "allowed fractional ns/op growth before failing")
		skipNs  = flag.Bool("skip-ns", false, "skip ns/op comparison (timings too noisy), keep the allocation gate")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		os.Exit(2)
	}
	oldB, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newB, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	oldBy := make(map[string]entry, len(oldB.Benchmarks))
	for _, e := range oldB.Benchmarks {
		oldBy[e.key()] = e
	}
	newBy := make(map[string]entry, len(newB.Benchmarks))
	var keys []string
	for _, e := range newB.Benchmarks {
		newBy[e.key()] = e
		keys = append(keys, e.key())
	}
	sort.Strings(keys)

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("FAIL  "+format+"\n", args...)
	}

	for _, k := range keys {
		n := newBy[k]
		o, ok := oldBy[k]
		if !ok {
			fmt.Printf("new   %-55s %10.1f ns/op (not in baseline, accepted)\n", k, n.NsPerOp)
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		status := "ok"
		if !*skipNs && delta > *nsTol {
			fail("%-55s ns/op %.1f -> %.1f (%+.1f%%, tolerance %.0f%%)",
				k, o.NsPerOp, n.NsPerOp, 100*delta, 100**nsTol)
			status = ""
		}
		if o.BytesOp != nil && n.BytesOp != nil && *n.BytesOp > *o.BytesOp {
			fail("%-55s B/op %.0f -> %.0f (any growth fails)", k, *o.BytesOp, *n.BytesOp)
			status = ""
		}
		if o.AllocsOp != nil && n.AllocsOp != nil && *n.AllocsOp > *o.AllocsOp {
			fail("%-55s allocs/op %.0f -> %.0f (any growth fails)", k, *o.AllocsOp, *n.AllocsOp)
			status = ""
		}
		if status != "" {
			fmt.Printf("%-5s %-55s %10.1f ns/op (%+.1f%%)\n", status, k, n.NsPerOp, 100*delta)
		}
	}
	for k := range oldBy {
		if _, ok := newBy[k]; !ok {
			fail("%-55s missing from new run", k)
		}
	}

	if failures > 0 {
		fmt.Printf("benchcmp: %d regression(s) vs %s (commit %s)\n", failures, *oldPath, oldB.Commit)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmark(s) within tolerance of %s (commit %s)\n",
		len(keys), *oldPath, oldB.Commit)
}
