// Command promlint validates a Prometheus text exposition document, e.g. one
// scraped from dloopsim's -listen endpoint. It reads stdin (or the files
// given as arguments) and exits non-zero on the first malformed input.
//
// Usage:
//
//	curl -s localhost:9090/metrics | promlint
//	promlint metrics.prom
package main

import (
	"fmt"
	"io"
	"os"

	"dloop/internal/obs/httpexport"
)

func main() {
	if len(os.Args) < 2 {
		lint("<stdin>", os.Stdin)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		lint(path, f)
		f.Close()
	}
}

func lint(name string, r io.Reader) {
	if err := httpexport.Validate(r); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid exposition\n", name)
}
