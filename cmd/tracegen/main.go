// Command tracegen materializes one of the synthetic workloads into a trace
// file in DiskSim ASCII or SPC-1 CSV format, so other simulators (or
// dloopsim -tracefile) can replay exactly the same request stream.
//
// Usage:
//
//	tracegen -trace Financial1 -n 1000000 -format spc -o financial1.spc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dloop"
	"dloop/internal/trace"
)

func main() {
	var (
		traceName = flag.String("trace", "Financial1", "workload: Financial1|Financial2|TPC-C|Exchange|Build")
		n         = flag.Int("n", 100_000, "number of requests")
		seed      = flag.Int64("seed", 42, "generator seed")
		format    = flag.String("format", "disksim", "output format: disksim|spc")
		out       = flag.String("o", "-", "output file (- for stdout)")
		scale     = flag.Float64("scale", 1.0, "footprint scale factor (0,1]")
	)
	flag.Parse()

	p, ok := dloop.WorkloadByName(*traceName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q\n", *traceName)
		os.Exit(1)
	}
	if *scale < 1 {
		p = p.ScaleFootprint(*scale)
	}
	reqs, err := dloop.GenerateTrace(p, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	switch *format {
	case "disksim":
		err = trace.WriteDiskSim(w, reqs)
	case "spc":
		err = trace.WriteSPC(w, reqs)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests (%s)\n", len(reqs), trace.Summarize(reqs))
}
