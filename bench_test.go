// Benchmarks regenerating each figure of the paper's evaluation at reduced
// scale (Options.Scale shrinks the device and footprint together, keeping
// capacity ratios, parallelism, and utilization). Shapes — who wins, by
// roughly what factor, where the trends point — match the full-scale runs
// recorded in EXPERIMENTS.md; absolute times do not, by design.
//
// Each benchmark iteration executes the complete sweep and reports the mean
// response time of representative cells as custom metrics, so regressions in
// simulated performance (not just wall time) are visible in benchstat.
package dloop_test

import (
	"testing"

	"dloop"
	"dloop/internal/obs"
)

// benchOptions shrinks runs so one sweep iteration stays in the seconds
// range on a laptop.
func benchOptions() dloop.Options {
	return dloop.Options{
		Requests: 4000,
		Scale:    0.02,
		Seed:     42,
	}
}

func reportCell(b *testing.B, g *dloop.Grid, series, x, metric string) {
	b.Helper()
	if v, ok := g.Get(series, x); ok {
		b.ReportMetric(v, metric)
	}
}

// BenchmarkFig8 regenerates the capacity sweep (Fig. 8: mean response time
// and SDRPP vs 4-64 GB for five traces and three FTLs).
func BenchmarkFig8(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mrt, sdrpp, err := dloop.Fig8(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, mrt, "Financial1/DLOOP", "4", "DLOOP@4GB-ms")
			reportCell(b, mrt, "Financial1/DFTL", "4", "DFTL@4GB-ms")
			reportCell(b, mrt, "Financial1/FAST", "4", "FAST@4GB-ms")
			reportCell(b, sdrpp, "Financial1/DLOOP", "4", "DLOOP@4GB-sdrpp")
		}
	}
}

// BenchmarkFig9 regenerates the page-size sweep (Fig. 9: 2-16 KB at 8 GB).
func BenchmarkFig9(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mrt, _, err := dloop.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, mrt, "Financial1/DLOOP", "2", "DLOOP@2KB-ms")
			reportCell(b, mrt, "Financial1/DLOOP", "16", "DLOOP@16KB-ms")
			reportCell(b, mrt, "Financial1/DFTL", "2", "DFTL@2KB-ms")
		}
	}
}

// BenchmarkFig10 regenerates the extra-blocks sweep (Fig. 10: 3-10% at 8 GB).
func BenchmarkFig10(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mrt, _, err := dloop.Fig10(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, mrt, "Financial1/DLOOP", "3%", "DLOOP@3pct-ms")
			reportCell(b, mrt, "Financial1/FAST", "3%", "FAST@3pct-ms")
			reportCell(b, mrt, "Financial1/FAST", "10%", "FAST@10pct-ms")
		}
	}
}

// BenchmarkHeadline regenerates the §I improvement ratios (average DLOOP
// gain over DFTL and FAST, derived from the Fig. 8 sweep).
func BenchmarkHeadline(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mrt, _, err := dloop.Fig8(opt)
		if err != nil {
			b.Fatal(err)
		}
		h := dloop.Headline(mrt)
		if i == b.N-1 {
			reportCell(b, h, "vs DFTL", "4", "vsDFTL@4GB-pct")
			reportCell(b, h, "vs FAST", "4", "vsFAST@4GB-pct")
		}
	}
}

// BenchmarkAblationCopyback runs the E5 ablation: DLOOP with copy-back GC
// moves versus forced external moves on Financial1.
func BenchmarkAblationCopyback(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := dloop.AblationCopyback(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, g, "DLOOP copy-back", "4", "copyback@4GB-ms")
			reportCell(b, g, "DLOOP external", "4", "external@4GB-ms")
		}
	}
}

// BenchmarkParityReport runs the E6 same-parity waste measurement.
func BenchmarkParityReport(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := dloop.ParityReport(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, g, "waste per 100 moves", "Financial1", "waste-per-100")
		}
	}
}

// BenchmarkHotPlane runs the E7 adaptive-GC extension comparison.
func BenchmarkHotPlane(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := dloop.HotPlane(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCell(b, g, "DLOOP", "p99 ms", "stock-p99-ms")
			reportCell(b, g, "DLOOP+adaptive", "p99 ms", "adaptive-p99-ms")
		}
	}
}

// BenchmarkSimulateThroughput measures raw simulator speed: host requests
// simulated per wall-clock second on one mid-size DLOOP configuration.
func BenchmarkSimulateThroughput(b *testing.B) {
	cfg := dloop.Config{CapacityGB: 4, FTL: dloop.SchemeDLOOP}
	p := dloop.Financial1().ScaleFootprint(0.05)
	ssd, err := dloop.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := ssd.PreconditionBytes(p.FootprintBytes); err != nil {
		b.Fatal(err)
	}
	reqs, err := dloop.GenerateTrace(p, 42, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssd.Serve(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCHeavy measures the simulator in the garbage-collection-active
// regime the unified GC engine owns: a shrunken device preconditioned to its
// workload footprint, driven by an update-only skewed stream so collections
// (victim picks, copy-back relocations, parity waste, erases) dominate the
// work. The run fails if GC never triggered, so the benchmark cannot quietly
// degrade into remeasuring the host write path.
func BenchmarkGCHeavy(b *testing.B) {
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dloop.Config{CapacityGB: 4, FTL: dloop.SchemeDLOOP, Geometry: &geo}
	ssd, err := dloop.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := dloop.Financial1()
	p.WriteRatio = 1.0 // pure updates: every request invalidates live pages
	p.ZipfS = 1.05
	p.FootprintBytes = int64(ssd.FTL().Capacity()) * int64(geo.PageSize) * 9 / 10
	if err := ssd.PreconditionBytes(p.FootprintBytes); err != nil {
		b.Fatal(err)
	}
	reqs, err := dloop.GenerateTrace(p, 42, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	// Warm until collection has actually started, so every timed iteration
	// runs in the steady GC-active regime and the benchmark cannot quietly
	// degrade into remeasuring the host write path.
	for i := 0; i < 2000; i++ {
		if _, err := ssd.Serve(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	if ssd.Result().GCRuns == 0 {
		b.Fatal("warm-up never triggered GC; the benchmark would measure nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssd.Serve(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedThroughput compares the parallel serving engines against
// the sequential baseline on two shapes, driving the pipelined Enqueue path
// they all share:
//
//   - 4ch (the paper's 8 GB shape, scaled): parallelism does not pay on this
//     narrow shape, so AutoShards must fall back to the sequential engine —
//     the "auto" sub-benchmark pins that fallback and must match "seq".
//   - 8ch (the 16 GB shape, scaled): "timing" runs the deterministic sharded
//     timing engine (bit-identical results, arithmetic offloaded), "mq" runs
//     8 concurrent FTL shards behind the multi-queue front end with the
//     deterministic completion merge, "mq-pipelined" drives the same engine
//     through the batch dispatch stage (EnqueueBatch: classification split
//     from staging), and "mq-relaxed" folds on the shard workers.
//     Sub-benchmarks with different engines replay the same stream; the
//     differential suites pin their equivalence contracts.
//
// The ns/op ratio of seq to the parallel modes is the speedup the engines
// buy; on a single-core machine they degrade to scheduling overhead instead
// — the gain needs one core per shard. Every mode must preserve the
// disabled-observability zero-allocation guarantee (asserted in
// TestShardedSteadyStateAllocFree and TestMQSteadyStateAllocFree).
func BenchmarkShardedThroughput(b *testing.B) {
	for _, mode := range []struct {
		name       string
		gb         int
		shards     int
		ftlShards  int
		merge      string
		wantTiming int
		wantFTLSh  int
		batch      bool
	}{
		{"4ch/seq", 8, 0, 0, "", 1, 1, false},
		{"4ch/auto", 8, dloop.AutoShards, 0, "", 1, 1, false},
		{"8ch/seq", 16, 0, 0, "", 1, 1, false},
		{"8ch/timing", 16, dloop.AutoShards, 0, "", 8, 1, false},
		{"8ch/mq", 16, 0, dloop.AutoShards, dloop.MergeDeterministic, 1, 8, false},
		{"8ch/mq-pipelined", 16, 0, dloop.AutoShards, dloop.MergeDeterministic, 1, 8, true},
		{"8ch/mq-relaxed", 16, 0, dloop.AutoShards, dloop.MergeRelaxed, 1, 8, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			geo, err := dloop.ScaledGeometryFor(mode.gb, 2, 0.03, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			cfg := dloop.Config{
				CapacityGB: mode.gb, FTL: dloop.SchemeDLOOP, Geometry: &geo,
				Shards: mode.shards, FTLShards: mode.ftlShards, Merge: mode.merge,
			}
			ssd, err := dloop.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer ssd.Close()
			if ssd.Shards() != mode.wantTiming {
				b.Fatalf("controller runs %d timing shards, want %d", ssd.Shards(), mode.wantTiming)
			}
			if ssd.FTLShards() != mode.wantFTLSh {
				b.Fatalf("controller runs %d FTL shards, want %d", ssd.FTLShards(), mode.wantFTLSh)
			}
			p := dloop.Financial1()
			p.FootprintBytes = int64(ssd.Capacity()) * int64(geo.PageSize) / 2
			if err := ssd.PreconditionBytes(p.FootprintBytes); err != nil {
				b.Fatal(err)
			}
			reqs, err := dloop.GenerateTrace(p, 42, 10_000)
			if err != nil {
				b.Fatal(err)
			}
			// Warm-up: three trace passes move one-time arena growth (epoch
			// slices, slab chunks, ring buffers) and the simulated cold-start
			// transient (CMT misses, GC pools filling) off the clock, so even
			// short -benchtime windows measure the steady state.
			for pass := 0; pass < 3; pass++ {
				for i := range reqs {
					if err := ssd.Enqueue(reqs[i]); err != nil {
						b.Fatal(err)
					}
				}
			}
			ssd.Flush()
			b.ReportAllocs()
			b.ResetTimer()
			if mode.batch {
				// Batch dispatch: chunks feed EnqueueBatch the way Run feeds
				// a trace.BatchReader. chunk divides len(reqs), so every full
				// chunk is a clean window into the request slice.
				const chunk = 250
				for i := 0; i < b.N; i += chunk {
					n := chunk
					if rem := b.N - i; rem < n {
						n = rem
					}
					off := i % len(reqs)
					if err := ssd.EnqueueBatch(reqs[off : off+n]); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for i := 0; i < b.N; i++ {
					if err := ssd.Enqueue(reqs[i%len(reqs)]); err != nil {
						b.Fatal(err)
					}
				}
			}
			ssd.Flush()
		})
	}
}

// BenchmarkSimulateThroughputObserved is BenchmarkSimulateThroughput with the
// observability collector attached (metrics registry only, no trace sinks):
// the difference between the two is the per-request cost of enabling
// observability. The disabled path is covered by the plain benchmark, whose
// 0 B/op must survive — every hook is a single nil check there.
func BenchmarkSimulateThroughputObserved(b *testing.B) {
	cfg := dloop.Config{CapacityGB: 4, FTL: dloop.SchemeDLOOP}
	p := dloop.Financial1().ScaleFootprint(0.05)
	ssd, err := dloop.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := ssd.PreconditionBytes(p.FootprintBytes); err != nil {
		b.Fatal(err)
	}
	ssd.SetRecorder(obs.NewCollector(ssd.ObsOptions()))
	reqs, err := dloop.GenerateTrace(p, 42, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssd.Serve(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateThroughputObservedMQ is the multi-queue analogue of
// BenchmarkSimulateThroughputObserved: the 8-channel shape behind the
// concurrent front end with a collector attached. Since shard-local recorders
// landed, attaching the collector keeps the shards concurrent — compare
// against BenchmarkShardedThroughput/8ch/mq to read the observed overhead,
// which the bench gate holds to the unobserved MQ engine's ballpark. The
// disabled MQ path's 0 B/op is pinned by TestMQSteadyStateAllocFree, the
// observed path's by TestObservedMQSteadyStateAllocFree; the warm-up pass
// below keeps one-time arena growth (epoch slices, slab chunks, histogram
// buckets) out of the measured window so the benchmark reports the true
// steady state at any -benchtime.
func BenchmarkSimulateThroughputObservedMQ(b *testing.B) {
	geo, err := dloop.ScaledGeometryFor(16, 2, 0.03, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dloop.Config{
		CapacityGB: 16, FTL: dloop.SchemeDLOOP, Geometry: &geo,
		FTLShards: dloop.AutoShards, Merge: dloop.MergeDeterministic,
	}
	ssd, err := dloop.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ssd.Close()
	if ssd.FTLShards() != 8 {
		b.Fatalf("controller runs %d FTL shards, want 8", ssd.FTLShards())
	}
	p := dloop.Financial1()
	p.FootprintBytes = int64(ssd.Capacity()) * int64(geo.PageSize) / 2
	if err := ssd.PreconditionBytes(p.FootprintBytes); err != nil {
		b.Fatal(err)
	}
	ssd.SetRecorder(obs.NewCollector(ssd.ObsOptions()))
	reqs, err := dloop.GenerateTrace(p, 42, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	for i := range reqs { // warm-up: grow epoch slices, slab chunks, hist buckets
		if err := ssd.Enqueue(reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
	ssd.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ssd.Enqueue(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	ssd.Flush()
}
