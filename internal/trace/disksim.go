package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"dloop/internal/sim"
)

var errEOF = io.EOF

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// DiskSim ASCII trace format, one request per line:
//
//	<arrival-ms> <devno> <blkno> <size-sectors> <flags>
//
// where bit 0 of flags set means read (DiskSim convention). Blank lines and
// lines starting with '#' are skipped.

// DiskSimReader parses the DiskSim ASCII trace format.
type DiskSimReader struct {
	s    *bufio.Scanner
	line int
}

// NewDiskSimReader returns a Reader over a DiskSim ASCII stream.
func NewDiskSimReader(r io.Reader) *DiskSimReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &DiskSimReader{s: s}
}

// Next implements Reader.
func (r *DiskSimReader) Next() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseDiskSimLine(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: disksim line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		// The scanner stops silently on its buffer cap (bufio.ErrTooLong);
		// name the offending line so a corrupt trace is debuggable.
		return Request{}, fmt.Errorf("trace: disksim line %d: %w", r.line+1, err)
	}
	return Request{}, io.EOF
}

func parseDiskSimLine(line string) (Request, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Request{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	ms, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return Request{}, fmt.Errorf("arrival %q: %v", f[0], err)
	}
	lbn, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("blkno %q: %v", f[2], err)
	}
	size, err := strconv.Atoi(f[3])
	if err != nil {
		return Request{}, fmt.Errorf("size %q: %v", f[3], err)
	}
	flags, err := strconv.ParseInt(strings.TrimPrefix(f[4], "0x"), 0, 64)
	if err != nil {
		// DiskSim traces sometimes carry bare hex without 0x.
		flags, err = strconv.ParseInt(f[4], 16, 64)
		if err != nil {
			return Request{}, fmt.Errorf("flags %q: %v", f[4], err)
		}
	}
	op := OpWrite
	if flags&1 != 0 {
		op = OpRead
	}
	req := Request{
		Arrival: sim.Time(0).Add(sim.Duration(math.Round(ms * float64(sim.Millisecond)))),
		LBN:     lbn,
		Sectors: size,
		Op:      op,
	}
	return req, req.Validate()
}

// WriteDiskSim writes requests in the DiskSim ASCII format.
func WriteDiskSim(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		flags := 0
		if r.Op == OpRead {
			flags = 1
		}
		ms := sim.Duration(r.Arrival).Milliseconds()
		if _, err := fmt.Fprintf(bw, "%.6f 0 %d %d %d\n", ms, r.LBN, r.Sectors, flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}
