package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"dloop/internal/sim"
)

var errEOF = io.EOF

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// DiskSim ASCII trace format, one request per line:
//
//	<arrival-ms> <devno> <blkno> <size-sectors> <flags>
//
// where bit 0 of flags set means read (DiskSim convention). Blank lines and
// lines starting with '#' are skipped.

// DiskSimReader parses the DiskSim ASCII trace format. Parsing is
// allocation-free per line at steady state: fields are subslices of the
// scanner's buffer held in a reused scratch, and the numeric columns take the
// exact byte-wise fast paths of parsefast.go.
type DiskSimReader struct {
	s      *bufio.Scanner
	line   int
	hint   int      // estimated request count, 0 if unknown
	fields [][]byte // reused per-line field scratch
}

// NewDiskSimReader returns a Reader over a DiskSim ASCII stream.
func NewDiskSimReader(r io.Reader) *DiskSimReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &DiskSimReader{s: s, hint: lineCountHint(r)}
}

// SizeHint reports the estimated number of requests in the stream (0 when
// the source's size is unknown), so BuildArena can preallocate its columns.
func (r *DiskSimReader) SizeHint() int { return r.hint }

// Next implements Reader.
func (r *DiskSimReader) Next() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := bytes.TrimSpace(r.s.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		req, err := r.parseLine(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: disksim line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		// The scanner stops silently on its buffer cap (bufio.ErrTooLong);
		// name the offending line so a corrupt trace is debuggable.
		return Request{}, fmt.Errorf("trace: disksim line %d: %w", r.line+1, err)
	}
	return Request{}, io.EOF
}

// parseLine parses one nonblank, noncomment line. Lines carrying multi-byte
// runes defer to the reference string parser so field boundaries always agree
// with strings.Fields; everything a real trace contains stays on the
// byte-wise path.
func (r *DiskSimReader) parseLine(line []byte) (Request, error) {
	if !asciiLine(line) {
		return parseDiskSimLine(string(line))
	}
	r.fields = appendFields(r.fields[:0], line)
	f := r.fields
	if len(f) != 5 {
		return Request{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	ms, err := parseFloatBytes(f[0])
	if err != nil {
		return Request{}, fmt.Errorf("arrival %q: %v", f[0], err)
	}
	lbn, err := parseIntBytes(f[2])
	if err != nil {
		return Request{}, fmt.Errorf("blkno %q: %v", f[2], err)
	}
	size, err := parseAtoiBytes(f[3])
	if err != nil {
		return Request{}, fmt.Errorf("size %q: %v", f[3], err)
	}
	flags, err := parseFlagsBytes(f[4])
	if err != nil {
		return Request{}, fmt.Errorf("flags %q: %v", f[4], err)
	}
	op := OpWrite
	if flags&1 != 0 {
		op = OpRead
	}
	req := Request{
		Arrival: sim.Time(0).Add(sim.Duration(math.Round(ms * float64(sim.Millisecond)))),
		LBN:     lbn,
		Sectors: size,
		Op:      op,
	}
	return req, req.Validate()
}

// parseFlagsBytes parses the flags column. The flags field has base-0
// semantics (a leading zero means octal, 0x/0b/0o prefixes pick other bases,
// underscores group digits), so the allocation-free path takes only plain
// decimal; everything else goes through the reference two-step parse.
func parseFlagsBytes(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 18 || (b[0] == '0' && len(b) > 1) {
		return parseFlagsSlow(string(b))
	}
	n := int64(0)
	for _, c := range b {
		if c < '0' || c > '9' {
			return parseFlagsSlow(string(b))
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

func parseFlagsSlow(s string) (int64, error) {
	flags, err := strconv.ParseInt(strings.TrimPrefix(s, "0x"), 0, 64)
	if err != nil {
		// DiskSim traces sometimes carry bare hex without 0x.
		flags, err = strconv.ParseInt(s, 16, 64)
	}
	return flags, err
}

// parseDiskSimLine is the reference parser, kept as the fallback for lines
// with multi-byte runes (where byte-wise field splitting could disagree with
// strings.Fields).
func parseDiskSimLine(line string) (Request, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Request{}, fmt.Errorf("want 5 fields, got %d", len(f))
	}
	ms, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return Request{}, fmt.Errorf("arrival %q: %v", f[0], err)
	}
	lbn, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("blkno %q: %v", f[2], err)
	}
	size, err := strconv.Atoi(f[3])
	if err != nil {
		return Request{}, fmt.Errorf("size %q: %v", f[3], err)
	}
	flags, err := parseFlagsSlow(f[4])
	if err != nil {
		return Request{}, fmt.Errorf("flags %q: %v", f[4], err)
	}
	op := OpWrite
	if flags&1 != 0 {
		op = OpRead
	}
	req := Request{
		Arrival: sim.Time(0).Add(sim.Duration(math.Round(ms * float64(sim.Millisecond)))),
		LBN:     lbn,
		Sectors: size,
		Op:      op,
	}
	return req, req.Validate()
}

// WriteDiskSim writes requests in the DiskSim ASCII format.
func WriteDiskSim(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		flags := 0
		if r.Op == OpRead {
			flags = 1
		}
		ms := sim.Duration(r.Arrival).Milliseconds()
		if _, err := fmt.Fprintf(bw, "%.6f 0 %d %d %d\n", ms, r.LBN, r.Sectors, flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}
