package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dloop/internal/sim"
)

func genRequests(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	var t sim.Time
	for i := range reqs {
		t = t.Add(sim.Duration(rng.Int63n(int64(sim.Millisecond))))
		op := OpRead
		if rng.Intn(10) < 7 {
			op = OpWrite
		}
		reqs[i] = Request{
			Arrival: t,
			LBN:     rng.Int63n(1 << 24),
			Sectors: rng.Intn(64) + 1,
			Op:      op,
		}
	}
	return reqs
}

// Golden test: an arena cursor must replay the exact Request sequence the
// streaming readers produce.
func TestArenaCursorMatchesStreamingReader(t *testing.T) {
	reqs := genRequests(500, 1)
	var buf bytes.Buffer
	if err := WriteSPC(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	want, err := ReadAll(NewSPCReader(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildArena(NewSPCReader(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(a.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("arena cursor diverges from streaming reader")
	}
	if !reflect.DeepEqual(a.Stats(), Summarize(want)) {
		t.Fatalf("arena stats %+v != Summarize %+v", a.Stats(), Summarize(want))
	}
}

func TestArenaOfAndReset(t *testing.T) {
	reqs := genRequests(100, 2)
	a := ArenaOf(reqs)
	if a.Len() != len(reqs) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(reqs))
	}
	c := a.Cursor()
	first, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	second, err := ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, reqs) || !reflect.DeepEqual(second, reqs) {
		t.Fatal("cursor replay or reset diverged from source slice")
	}
}

// Many goroutines may replay one arena concurrently; run under -race.
func TestArenaConcurrentCursors(t *testing.T) {
	a := ArenaOf(genRequests(2000, 3))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ReadAll(a.Cursor())
			if err != nil || len(got) != a.Len() {
				t.Errorf("concurrent replay: n=%d err=%v", len(got), err)
			}
		}()
	}
	wg.Wait()
}

func TestDiskSimToleratesCRLF(t *testing.T) {
	in := "# header\r\n\r\n0.5 0 100 8 1\r\n1.0 0 200 4 0\r\n"
	got, err := ReadAll(NewDiskSimReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpRead || got[0].LBN != 100 ||
		got[1].Op != OpWrite || got[1].LBN != 200 {
		t.Fatalf("got %+v", got)
	}
}

func TestSPCToleratesCRLF(t *testing.T) {
	in := "0,100,512,r,0.5\r\n0,200,1024,w,1.5\r\n"
	got, err := ReadAll(NewSPCReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpRead || got[1].Sectors != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestDiskSimOverlongLineReportsLineNumber(t *testing.T) {
	long := strings.Repeat("9", 2<<20) // one line well past the 1 MiB cap
	in := "0.5 0 100 8 1\n0.6 0 100 8 1\n" + long + "\n"
	_, err := ReadAll(NewDiskSimReader(strings.NewReader(in)))
	if err == nil {
		t.Fatal("expected error for over-long line")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err %q does not name line 3", err)
	}
}

func TestSPCOverlongLineReportsLineNumber(t *testing.T) {
	long := strings.Repeat("9", 2<<20)
	in := "0,100,512,r,0.5\n" + long + "\n"
	_, err := ReadAll(NewSPCReader(strings.NewReader(in)))
	if err == nil || !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err %q does not name line 2", err)
	}
}

func writeTempTrace(t *testing.T, reqs []Request) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.txt")
	var buf bytes.Buffer
	if err := WriteDiskSim(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadArenaParsesOnce(t *testing.T) {
	path := writeTempTrace(t, genRequests(50, 4))
	var arenas [4]*Arena
	var wg sync.WaitGroup
	for i := range arenas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := LoadArena(path, "")
			if err != nil {
				t.Errorf("LoadArena: %v", err)
				return
			}
			arenas[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(arenas); i++ {
		if arenas[i] != arenas[0] {
			t.Fatal("LoadArena returned distinct arenas for one path")
		}
	}
	if arenas[0].Len() != 50 {
		t.Fatalf("Len = %d, want 50", arenas[0].Len())
	}
}

func TestOpenArenaFormats(t *testing.T) {
	if _, err := OpenArena("nope.txt", "bogus"); err == nil {
		t.Fatal("accepted unknown format")
	}
	if got := DetectFormat("a/b/Financial1.spc.csv"); got != FormatSPC {
		t.Fatalf("DetectFormat(.csv) = %q", got)
	}
	if got := DetectFormat("websearch.ascii"); got != FormatDiskSim {
		t.Fatalf("DetectFormat(.ascii) = %q", got)
	}
}

// TestBuildArenaAllocBound pins the parse-time allocation profile: with a
// sized source the columns preallocate from the reader's SizeHint, so one
// full parse costs a fixed handful of allocations (reader + scanner buffer +
// field scratch + arena + 4 columns) regardless of trace length. Regrowing
// columns mid-parse would blow well past the bound.
func TestBuildArenaAllocBound(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiskSim(&buf, genRequests(10000, 5)); err != nil {
		t.Fatal(err)
	}
	text := buf.Bytes()
	allocs := testing.AllocsPerRun(5, func() {
		a, err := BuildArena(NewDiskSimReader(bytes.NewReader(text)))
		if err != nil || a.Len() != 10000 {
			t.Fatalf("n=%d err=%v", a.Len(), err)
		}
	})
	if allocs > 14 {
		t.Fatalf("BuildArena did %.0f allocs for a sized source, want <= 14", allocs)
	}
}

// TestSizeHint checks both readers estimate from sized sources and degrade
// to 0 (plain appending) on unsized streams.
func TestSizeHint(t *testing.T) {
	data := strings.Repeat("x", 1600)
	if got := NewDiskSimReader(strings.NewReader(data)).SizeHint(); got != 100 {
		t.Fatalf("DiskSim SizeHint = %d, want 100", got)
	}
	if got := NewSPCReader(bytes.NewReader([]byte(data))).SizeHint(); got != 100 {
		t.Fatalf("SPC SizeHint = %d, want 100", got)
	}
	unsized := io.MultiReader(strings.NewReader(data))
	if got := NewDiskSimReader(unsized).SizeHint(); got != 0 {
		t.Fatalf("unsized SizeHint = %d, want 0", got)
	}
}

// BenchmarkDiskSimParse pins the cost of one full parse of a DiskSim trace
// — the cost LoadArena pays once per file instead of once per sweep cell.
func BenchmarkDiskSimParse(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteDiskSim(&buf, genRequests(10000, 5)); err != nil {
		b.Fatal(err)
	}
	text := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := BuildArena(NewDiskSimReader(bytes.NewReader(text)))
		if err != nil || a.Len() != 10000 {
			b.Fatalf("n=%d err=%v", a.Len(), err)
		}
	}
}

// BenchmarkArenaReplay pins the per-cell replay cost: iterating a shared
// arena through a cursor must stay allocation-free.
func BenchmarkArenaReplay(b *testing.B) {
	a := ArenaOf(genRequests(10000, 6))
	c := a.Cursor()
	b.ReportAllocs()
	b.ResetTimer()
	var sectors int64
	for i := 0; i < b.N; i++ {
		c.Reset()
		for {
			req, err := c.Next()
			if err != nil {
				break
			}
			sectors += int64(req.Sectors)
		}
	}
	if sectors == 0 {
		b.Fatal("empty replay")
	}
	_ = fmt.Sprint(sectors)
}
