package trace

import (
	"bytes"
	"math"
	"strconv"
)

// Allocation-free parsing primitives for the trace readers. One full parse of
// a UMass-scale trace used to cost one string and one []string per line
// (Scanner.Text plus strings.Fields/Split); the readers now slice the
// scanner's own buffer into a reused field scratch and parse numbers byte
// wise. Every fast path below is exact — it either returns the bit-identical
// value strconv would, or falls back to strconv on a copied string, so values
// AND error text match the reference parser in all cases.

// asciiLine reports whether b contains only single-byte characters, so the
// byte-wise field splitter agrees with strings.Fields on where fields begin
// and end. Lines with multi-byte runes take the reference string path.
func asciiLine(b []byte) bool {
	for _, c := range b {
		if c >= 0x80 {
			return false
		}
	}
	return true
}

func isASCIISpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r' || c == '\n'
}

// appendFields splits b on runs of ASCII whitespace, appending subslices of b
// to dst. dst is a reused scratch (pass scratch[:0]); nothing escapes.
func appendFields(dst [][]byte, b []byte) [][]byte {
	i := 0
	for i < len(b) {
		for i < len(b) && isASCIISpace(b[i]) {
			i++
		}
		if i == len(b) {
			break
		}
		j := i
		for j < len(b) && !isASCIISpace(b[j]) {
			j++
		}
		dst = append(dst, b[i:j])
		i = j
	}
	return dst
}

// appendSplitComma splits b on every comma, appending subslices of b to dst
// with the same field boundaries as strings.Split(b, ",") — empty fields and
// the trailing field included. Commas are single-byte in UTF-8, so unlike
// appendFields this needs no ASCII guard.
func appendSplitComma(dst [][]byte, b []byte) [][]byte {
	for {
		i := bytes.IndexByte(b, ',')
		if i < 0 {
			return append(dst, b)
		}
		dst = append(dst, b[:i])
		b = b[i+1:]
	}
}

// parseFloatBytes parses a decimal floating-point number, allocation-free for
// the plain digits[.digits] forms traces actually contain. The fast path is
// Clinger's exact-division case: with at most 15 significant digits the
// mantissa is exactly representable, math.Pow10 is exact through 1e22, and a
// single IEEE division rounds correctly — bit-identical to strconv.ParseFloat.
// Signs, exponents, hex floats, and over-long precision fall back to strconv.
func parseFloatBytes(b []byte) (float64, error) {
	mant := uint64(0)
	digits, frac := 0, 0
	dot := false
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
			if dot {
				frac++
			}
		case c == '.' && !dot:
			dot = true
		default:
			return strconv.ParseFloat(string(b), 64)
		}
	}
	if digits == 0 || digits > 15 || frac > 22 {
		return strconv.ParseFloat(string(b), 64)
	}
	if frac == 0 {
		return float64(mant), nil
	}
	return float64(mant) / math.Pow10(frac), nil
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) without the string
// conversion. At most 18 digits keeps the accumulator far from overflow;
// longer or irregular input falls back to strconv for identical values,
// range clamping, and error text.
func parseIntBytes(b []byte) (int64, error) {
	s := b
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		return strconv.ParseInt(string(b), 10, 64)
	}
	n := int64(0)
	for _, c := range s {
		if c < '0' || c > '9' {
			return strconv.ParseInt(string(b), 10, 64)
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// parseAtoiBytes is strconv.Atoi(string(b)) without the string conversion,
// with the same 18-digit fast-path bound as parseIntBytes. The fallback calls
// Atoi itself so error text keeps the Atoi function name.
func parseAtoiBytes(b []byte) (int, error) {
	s := b
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		return strconv.Atoi(string(b))
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return strconv.Atoi(string(b))
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}
