package trace

import (
	"fmt"

	"dloop/internal/sim"
)

// Stats summarizes a trace the way Table II of the paper does.
type Stats struct {
	Reads, Writes int64
	ReadSectors   int64
	WriteSectors  int64
	MinLBN        int64
	MaxEnd        int64 // one past the highest sector touched
	Duration      sim.Duration
}

// Summarize computes Table II-style statistics over a request slice.
func Summarize(reqs []Request) Stats {
	s := Stats{MinLBN: -1}
	for _, r := range reqs {
		s.add(r)
	}
	return s
}

// add folds one request into the summary. The zero value is not usable:
// initialize MinLBN to -1 first (Summarize and BuildArena do).
func (s *Stats) add(r Request) {
	if r.Op == OpRead {
		s.Reads++
		s.ReadSectors += int64(r.Sectors)
	} else {
		s.Writes++
		s.WriteSectors += int64(r.Sectors)
	}
	if s.MinLBN < 0 || r.LBN < s.MinLBN {
		s.MinLBN = r.LBN
	}
	if r.End() > s.MaxEnd {
		s.MaxEnd = r.End()
	}
	if d := sim.Duration(r.Arrival); d > s.Duration {
		s.Duration = d
	}
}

// Requests returns the total request count.
func (s Stats) Requests() int64 { return s.Reads + s.Writes }

// WriteRatio returns the fraction of requests that are writes.
func (s Stats) WriteRatio() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests())
}

// MeanSizeBytes returns the mean request size in bytes.
func (s Stats) MeanSizeBytes() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.ReadSectors+s.WriteSectors) * SectorSize / float64(s.Requests())
}

// Rate returns the mean arrival rate in requests per second.
func (s Stats) Rate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Requests()) / s.Duration.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("%d reqs (%.1f%% write), mean %.1f KB, %.1f req/s over %.1f min, footprint %.1f MB",
		s.Requests(), 100*s.WriteRatio(), s.MeanSizeBytes()/1024, s.Rate(),
		s.Duration.Seconds()/60, float64(s.MaxEnd)*SectorSize/(1<<20))
}
