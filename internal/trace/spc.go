package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"dloop/internal/sim"
)

// SPC-1 I/O trace format (the format of the UMass Financial1/Financial2
// traces the paper uses), one request per line:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// LBA in sectors, Size in bytes, Opcode 'r'/'R' or 'w'/'W', Timestamp in
// seconds from trace start.

// SPCReader parses the SPC-1 CSV trace format.
type SPCReader struct {
	s    *bufio.Scanner
	line int
}

// NewSPCReader returns a Reader over an SPC-1 CSV stream.
func NewSPCReader(r io.Reader) *SPCReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &SPCReader{s: s}
}

// Next implements Reader.
func (r *SPCReader) Next() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseSPCLine(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		// See DiskSimReader.Next: surface the line where the scanner died
		// (notably bufio.ErrTooLong on over-long lines).
		return Request{}, fmt.Errorf("trace: spc line %d: %w", r.line+1, err)
	}
	return Request{}, io.EOF
}

func parseSPCLine(line string) (Request, error) {
	f := strings.Split(line, ",")
	if len(f) < 5 {
		return Request{}, fmt.Errorf("want at least 5 fields, got %d", len(f))
	}
	lba, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("lba %q: %v", f[1], err)
	}
	size, err := strconv.Atoi(strings.TrimSpace(f[2]))
	if err != nil {
		return Request{}, fmt.Errorf("size %q: %v", f[2], err)
	}
	var op Op
	switch strings.ToLower(strings.TrimSpace(f[3])) {
	case "r":
		op = OpRead
	case "w":
		op = OpWrite
	default:
		return Request{}, fmt.Errorf("opcode %q", f[3])
	}
	secs, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
	if err != nil {
		return Request{}, fmt.Errorf("timestamp %q: %v", f[4], err)
	}
	sectors := (size + SectorSize - 1) / SectorSize
	if sectors == 0 {
		sectors = 1
	}
	req := Request{
		Arrival: sim.Time(0).Add(sim.Duration(math.Round(secs * float64(sim.Second)))),
		LBN:     lba,
		Sectors: sectors,
		Op:      op,
	}
	return req, req.Validate()
}

// WriteSPC writes requests in the SPC-1 CSV format, using ASU 0.
func WriteSPC(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		opc := "w"
		if r.Op == OpRead {
			opc = "r"
		}
		secs := sim.Duration(r.Arrival).Seconds()
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n", r.LBN, r.Bytes(), opc, secs); err != nil {
			return err
		}
	}
	return bw.Flush()
}
