package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"

	"dloop/internal/sim"
)

// SPC-1 I/O trace format (the format of the UMass Financial1/Financial2
// traces the paper uses), one request per line:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// LBA in sectors, Size in bytes, Opcode 'r'/'R' or 'w'/'W', Timestamp in
// seconds from trace start.

// SPCReader parses the SPC-1 CSV trace format. Like DiskSimReader, parsing
// is allocation-free per line at steady state: comma-separated fields are
// subslices of the scanner's buffer held in a reused scratch, and the numeric
// columns take the exact byte-wise fast paths of parsefast.go. Commas are
// single-byte in UTF-8, so the byte-wise splitter needs no ASCII guard here.
type SPCReader struct {
	s      *bufio.Scanner
	line   int
	hint   int      // estimated request count, 0 if unknown
	fields [][]byte // reused per-line field scratch
}

// NewSPCReader returns a Reader over an SPC-1 CSV stream.
func NewSPCReader(r io.Reader) *SPCReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &SPCReader{s: s, hint: lineCountHint(r)}
}

// SizeHint reports the estimated number of requests in the stream (0 when
// the source's size is unknown), so BuildArena can preallocate its columns.
func (r *SPCReader) SizeHint() int { return r.hint }

// Next implements Reader.
func (r *SPCReader) Next() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := bytes.TrimSpace(r.s.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		req, err := r.parseLine(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		// See DiskSimReader.Next: surface the line where the scanner died
		// (notably bufio.ErrTooLong on over-long lines).
		return Request{}, fmt.Errorf("trace: spc line %d: %w", r.line+1, err)
	}
	return Request{}, io.EOF
}

func (r *SPCReader) parseLine(line []byte) (Request, error) {
	r.fields = appendSplitComma(r.fields[:0], line)
	f := r.fields
	if len(f) < 5 {
		return Request{}, fmt.Errorf("want at least 5 fields, got %d", len(f))
	}
	lba, err := parseIntBytes(bytes.TrimSpace(f[1]))
	if err != nil {
		return Request{}, fmt.Errorf("lba %q: %v", f[1], err)
	}
	size, err := parseAtoiBytes(bytes.TrimSpace(f[2]))
	if err != nil {
		return Request{}, fmt.Errorf("size %q: %v", f[2], err)
	}
	// Case-insensitive single-letter opcode. Only ASCII can lower-case to
	// 'r' or 'w', so the byte compare matches strings.ToLower exactly.
	var op Op
	opf := bytes.TrimSpace(f[3])
	switch {
	case len(opf) == 1 && (opf[0] == 'r' || opf[0] == 'R'):
		op = OpRead
	case len(opf) == 1 && (opf[0] == 'w' || opf[0] == 'W'):
		op = OpWrite
	default:
		return Request{}, fmt.Errorf("opcode %q", f[3])
	}
	secs, err := parseFloatBytes(bytes.TrimSpace(f[4]))
	if err != nil {
		return Request{}, fmt.Errorf("timestamp %q: %v", f[4], err)
	}
	sectors := (size + SectorSize - 1) / SectorSize
	if sectors == 0 {
		sectors = 1
	}
	req := Request{
		Arrival: sim.Time(0).Add(sim.Duration(math.Round(secs * float64(sim.Second)))),
		LBN:     lba,
		Sectors: sectors,
		Op:      op,
	}
	return req, req.Validate()
}

// WriteSPC writes requests in the SPC-1 CSV format, using ASU 0.
func WriteSPC(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		opc := "w"
		if r.Op == OpRead {
			opc = "r"
		}
		secs := sim.Duration(r.Arrival).Seconds()
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n", r.LBN, r.Bytes(), opc, secs); err != nil {
			return err
		}
	}
	return bw.Flush()
}
