// Package trace defines the host-request model the simulator replays, along
// with readers and writers for the two on-disk formats the storage-research
// community uses for the paper's workloads: the DiskSim ASCII format and the
// SPC-1 (UMass/Storage Performance Council) CSV format.
package trace

import (
	"fmt"
	"io"
	"os"

	"dloop/internal/sim"
)

// SectorSize is the addressing granularity of host requests, in bytes.
const SectorSize = 512

// minTraceLineBytes is the lower-bound line length lineCountHint divides by.
// Real trace lines run 20-40 bytes; dividing by a low bound overestimates the
// request count slightly, which is the right direction for a preallocation —
// the columns never grow-and-copy, and the slack is no larger than the slack
// append's doubling would have left anyway.
const minTraceLineBytes = 16

// lineCountHint estimates how many lines a trace source holds, from its byte
// size when the source exposes one: in-memory readers (bytes.Reader,
// strings.Reader, bytes.Buffer) via Len, regular files via Stat. Unsized
// sources (pipes, sockets) report 0 and parsing falls back to appending.
func lineCountHint(r io.Reader) int {
	var size int64
	switch s := r.(type) {
	case interface{ Len() int }:
		size = int64(s.Len())
	case interface{ Stat() (os.FileInfo, error) }:
		if info, err := s.Stat(); err == nil && info.Mode().IsRegular() {
			size = info.Size()
		}
	}
	return int(size / minTraceLineBytes)
}

// Op distinguishes reads from writes.
type Op uint8

const (
	// OpRead is a host read.
	OpRead Op = iota
	// OpWrite is a host write.
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Request is one host I/O: at Arrival, transfer Sectors sectors starting at
// sector LBN, in the direction given by Op.
type Request struct {
	Arrival sim.Time
	LBN     int64 // starting logical sector number
	Sectors int   // request length in sectors
	Op      Op
}

// Bytes returns the request length in bytes.
func (r Request) Bytes() int64 { return int64(r.Sectors) * SectorSize }

// End returns the first sector past the request.
func (r Request) End() int64 { return r.LBN + int64(r.Sectors) }

// Validate reports whether the request is well formed.
func (r Request) Validate() error {
	if r.Arrival < 0 {
		return fmt.Errorf("trace: negative arrival time %v", r.Arrival)
	}
	if r.LBN < 0 {
		return fmt.Errorf("trace: negative LBN %d", r.LBN)
	}
	if r.Sectors <= 0 {
		return fmt.Errorf("trace: non-positive size %d sectors", r.Sectors)
	}
	if r.Op != OpRead && r.Op != OpWrite {
		return fmt.Errorf("trace: unknown op %d", r.Op)
	}
	return nil
}

// Reader yields a sequence of requests in non-decreasing arrival order.
// Next returns io.EOF after the last request.
type Reader interface {
	Next() (Request, error)
}

// BatchReader is an optional Reader extension for chunked replay: NextN
// fills dst with up to len(dst) requests and returns how many it wrote.
// Like io.Reader, it may return n > 0 at the end of the stream and io.EOF
// (with n == 0) only on a subsequent call. Sources that hold requests
// columnar or generate them in bulk (Arena cursors, workload generators)
// implement it so consumers can move whole chunks without a per-request
// interface call.
type BatchReader interface {
	Reader
	NextN(dst []Request) (int, error)
}

// SliceReader replays an in-memory request slice.
type SliceReader struct {
	reqs []Request
	pos  int
}

// NewSliceReader returns a Reader over the given requests.
func NewSliceReader(reqs []Request) *SliceReader {
	return &SliceReader{reqs: reqs}
}

// Next implements Reader.
func (r *SliceReader) Next() (Request, error) {
	if r.pos >= len(r.reqs) {
		return Request{}, errEOF
	}
	req := r.reqs[r.pos]
	r.pos++
	return req, nil
}

// NextN implements BatchReader.
func (r *SliceReader) NextN(dst []Request) (int, error) {
	if r.pos >= len(r.reqs) {
		return 0, errEOF
	}
	n := copy(dst, r.reqs[r.pos:])
	r.pos += n
	return n, nil
}

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Request, error) {
	var out []Request
	for {
		req, err := r.Next()
		if err != nil {
			if isEOF(err) {
				return out, nil
			}
			return out, err
		}
		out = append(out, req)
	}
}
