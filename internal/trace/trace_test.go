package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dloop/internal/sim"
)

func TestRequestValidate(t *testing.T) {
	good := Request{Arrival: 10, LBN: 5, Sectors: 8, Op: OpRead}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{Arrival: -1, LBN: 0, Sectors: 1, Op: OpRead},
		{Arrival: 0, LBN: -2, Sectors: 1, Op: OpRead},
		{Arrival: 0, LBN: 0, Sectors: 0, Op: OpRead},
		{Arrival: 0, LBN: 0, Sectors: 1, Op: Op(9)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, r)
		}
	}
}

func TestRequestDerived(t *testing.T) {
	r := Request{LBN: 100, Sectors: 8}
	if r.Bytes() != 4096 {
		t.Errorf("Bytes = %d, want 4096", r.Bytes())
	}
	if r.End() != 108 {
		t.Errorf("End = %d, want 108", r.End())
	}
}

func TestSliceReader(t *testing.T) {
	reqs := []Request{
		{Arrival: 1, LBN: 0, Sectors: 1, Op: OpRead},
		{Arrival: 2, LBN: 8, Sectors: 2, Op: OpWrite},
	}
	got, err := ReadAll(NewSliceReader(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("got %+v, want %+v", got, reqs)
	}
}

func TestDiskSimRoundTrip(t *testing.T) {
	reqs := []Request{
		{Arrival: sim.Time(1500 * sim.Microsecond), LBN: 1234, Sectors: 8, Op: OpRead},
		{Arrival: sim.Time(2 * sim.Millisecond), LBN: 99, Sectors: 1, Op: OpWrite},
	}
	var buf bytes.Buffer
	if err := WriteDiskSim(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewDiskSimReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, reqs)
	}
}

func TestDiskSimParsesCommentsAndBlank(t *testing.T) {
	in := "# header\n\n0.5 0 100 8 1\n"
	got, err := ReadAll(NewDiskSimReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Op != OpRead || got[0].LBN != 100 {
		t.Fatalf("got %+v", got)
	}
}

func TestDiskSimRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"1.0 0 100 8",    // missing field
		"x 0 100 8 0",    // bad arrival
		"1.0 0 y 8 0",    // bad lbn
		"1.0 0 100 z 0",  // bad size
		"1.0 0 100 8 gg", // bad flags
		"1.0 0 -5 8 0",   // negative lbn
		"1.0 0 100 0 0",  // zero size
	} {
		if _, err := ReadAll(NewDiskSimReader(strings.NewReader(in))); err == nil {
			t.Errorf("accepted malformed line %q", in)
		}
	}
}

func TestSPCRoundTrip(t *testing.T) {
	reqs := []Request{
		{Arrival: sim.Time(1 * sim.Second), LBN: 5000, Sectors: 8, Op: OpWrite},
		{Arrival: sim.Time(2 * sim.Second), LBN: 16, Sectors: 4, Op: OpRead},
	}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewSPCReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, reqs)
	}
}

func TestSPCSubSectorSizeRoundsUp(t *testing.T) {
	in := "0,100,100,r,0.5\n" // 100 bytes -> 1 sector
	got, err := ReadAll(NewSPCReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Sectors != 1 {
		t.Fatalf("Sectors = %d, want 1", got[0].Sectors)
	}
}

func TestSPCRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"0,100,512,x,0.5", // bad opcode
		"0,a,512,r,0.5",   // bad lba
		"0,100,b,r,0.5",   // bad size
		"0,100,512,r,c",   // bad timestamp
		"0,100,512",       // short line
	} {
		if _, err := ReadAll(NewSPCReader(strings.NewReader(in))); err == nil {
			t.Errorf("accepted malformed line %q", in)
		}
	}
}

func TestSummarize(t *testing.T) {
	reqs := []Request{
		{Arrival: sim.Time(1 * sim.Second), LBN: 0, Sectors: 8, Op: OpWrite},
		{Arrival: sim.Time(60 * sim.Second), LBN: 100, Sectors: 4, Op: OpRead},
		{Arrival: sim.Time(120 * sim.Second), LBN: 50, Sectors: 2, Op: OpWrite},
	}
	s := Summarize(reqs)
	if s.Reads != 1 || s.Writes != 2 {
		t.Errorf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	if s.Requests() != 3 {
		t.Errorf("Requests = %d", s.Requests())
	}
	if got := s.WriteRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("WriteRatio = %v", got)
	}
	if s.MinLBN != 0 || s.MaxEnd != 104 {
		t.Errorf("footprint [%d,%d)", s.MinLBN, s.MaxEnd)
	}
	wantMean := float64(8+4+2) * SectorSize / 3
	if got := s.MeanSizeBytes(); got != wantMean {
		t.Errorf("MeanSizeBytes = %v, want %v", got, wantMean)
	}
	if got := s.Rate(); got != 3.0/120 {
		t.Errorf("Rate = %v, want %v", got, 3.0/120)
	}
	if Summarize(nil).Requests() != 0 {
		t.Error("empty summary")
	}
}

// Property: DiskSim format round-trips arbitrary valid requests.
func TestDiskSimRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, 50)
		for i := range reqs {
			op := OpRead
			if rng.Intn(2) == 0 {
				op = OpWrite
			}
			reqs[i] = Request{
				// Keep arrivals on whole microseconds so the ms text format
				// (6 decimal places = ns resolution) is exact.
				Arrival: sim.Time(rng.Int63n(1e9)) * 1000,
				LBN:     rng.Int63n(1 << 32),
				Sectors: rng.Intn(256) + 1,
				Op:      op,
			}
		}
		var buf bytes.Buffer
		if err := WriteDiskSim(&buf, reqs); err != nil {
			return false
		}
		got, err := ReadAll(NewDiskSimReader(&buf))
		return err == nil && reflect.DeepEqual(got, reqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllPropagatesError(t *testing.T) {
	r := NewDiskSimReader(io.LimitReader(strings.NewReader("bogus line here"), 15))
	if _, err := ReadAll(r); err == nil {
		t.Fatal("expected parse error")
	}
}
