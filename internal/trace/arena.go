package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dloop/internal/sim"
)

// Arena is an immutable, columnar (structure-of-arrays) copy of a trace:
// one parse produces four dense slices that every sweep cell replays
// read-only through its own Cursor. Sharing one Arena across worker
// goroutines is safe precisely because nothing mutates it after Build —
// the cursors carry all replay state.
type Arena struct {
	arrival []sim.Time
	lbn     []int64
	sectors []int32
	ops     []uint8
	stats   Stats
}

// sizeHinter is implemented by readers that can estimate how many requests
// they will produce (DiskSimReader and SPCReader over sized sources).
// BuildArena preallocates the arena columns from it.
type sizeHinter interface{ SizeHint() int }

// BuildArena drains a Reader into a new Arena. The reader's error, if any,
// is returned with however many requests parsed before it. When the reader
// can estimate its request count, the four columns are preallocated once
// instead of grown-and-copied across the parse.
func BuildArena(r Reader) (*Arena, error) {
	a := &Arena{}
	if h, ok := r.(sizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			a.arrival = make([]sim.Time, 0, n)
			a.lbn = make([]int64, 0, n)
			a.sectors = make([]int32, 0, n)
			a.ops = make([]uint8, 0, n)
		}
	}
	a.stats.MinLBN = -1
	for {
		req, err := r.Next()
		if err != nil {
			if isEOF(err) {
				return a, nil
			}
			return a, err
		}
		a.append(req)
	}
}

// ArenaOf builds an Arena directly from an in-memory request slice.
func ArenaOf(reqs []Request) *Arena {
	a := &Arena{
		arrival: make([]sim.Time, 0, len(reqs)),
		lbn:     make([]int64, 0, len(reqs)),
		sectors: make([]int32, 0, len(reqs)),
		ops:     make([]uint8, 0, len(reqs)),
	}
	a.stats.MinLBN = -1
	for _, req := range reqs {
		a.append(req)
	}
	return a
}

func (a *Arena) append(req Request) {
	a.arrival = append(a.arrival, req.Arrival)
	a.lbn = append(a.lbn, req.LBN)
	a.sectors = append(a.sectors, int32(req.Sectors))
	a.ops = append(a.ops, uint8(req.Op))
	a.stats.add(req)
}

// Len returns the number of requests in the arena.
func (a *Arena) Len() int { return len(a.arrival) }

// At returns request i. It does not allocate; the Request is assembled from
// the columns.
func (a *Arena) At(i int) Request {
	return Request{
		Arrival: a.arrival[i],
		LBN:     a.lbn[i],
		Sectors: int(a.sectors[i]),
		Op:      Op(a.ops[i]),
	}
}

// Stats returns the trace summary, identical to Summarize over the same
// requests but computed once at build time.
func (a *Arena) Stats() Stats { return a.stats }

// Cursor returns a new independent reader positioned at the first request.
// Any number of cursors may iterate one arena concurrently.
func (a *Arena) Cursor() *Cursor { return &Cursor{a: a} }

// Cursor is a cheap per-goroutine read position into a shared Arena. It
// implements Reader.
type Cursor struct {
	a   *Arena
	pos int
}

// Next implements Reader.
func (c *Cursor) Next() (Request, error) {
	if c.pos >= c.a.Len() {
		return Request{}, errEOF
	}
	req := c.a.At(c.pos)
	c.pos++
	return req, nil
}

// NextN implements BatchReader, assembling a whole chunk from the columns
// per call.
func (c *Cursor) NextN(dst []Request) (int, error) {
	if c.pos >= c.a.Len() {
		return 0, errEOF
	}
	n := c.a.Len() - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	a, p := c.a, c.pos
	for i := 0; i < n; i++ {
		dst[i] = Request{
			Arrival: a.arrival[p+i],
			LBN:     a.lbn[p+i],
			Sectors: int(a.sectors[p+i]),
			Op:      Op(a.ops[p+i]),
		}
	}
	c.pos += n
	return n, nil
}

// Reset rewinds the cursor to the first request.
func (c *Cursor) Reset() { c.pos = 0 }

// Trace file formats accepted by OpenArena/LoadArena.
const (
	FormatDiskSim = "disksim"
	FormatSPC     = "spc"
)

// DetectFormat guesses the trace format from a file name: .csv or .spc
// means SPC-1, anything else DiskSim ASCII.
func DetectFormat(path string) string {
	switch filepath.Ext(path) {
	case ".csv", ".spc":
		return FormatSPC
	default:
		return FormatDiskSim
	}
}

// OpenArena parses the trace file at path (format FormatDiskSim or
// FormatSPC; empty means DetectFormat) into a fresh Arena, bypassing the
// process-wide cache.
func OpenArena(path, format string) (*Arena, error) {
	if format == "" {
		format = DetectFormat(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Reader
	switch format {
	case FormatDiskSim:
		r = NewDiskSimReader(f)
	case FormatSPC:
		r = NewSPCReader(f)
	default:
		return nil, fmt.Errorf("trace: unknown format %q", format)
	}
	a, err := BuildArena(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return a, nil
}

// arenaCache memoizes LoadArena so each trace file is parsed exactly once
// per process, no matter how many sweep cells replay it.
var arenaCache sync.Map // cacheKey -> *arenaEntry

type cacheKey struct{ path, format string }

type arenaEntry struct {
	once sync.Once
	a    *Arena
	err  error
}

// LoadArena returns the process-wide shared Arena for the trace file at
// path, parsing it on first use and returning the same immutable Arena to
// every subsequent caller (including concurrent ones). A parse failure is
// cached too: retrying a broken file re-reports the error without re-reading.
func LoadArena(path, format string) (*Arena, error) {
	if format == "" {
		format = DetectFormat(path)
	}
	key := cacheKey{path: path, format: format}
	v, _ := arenaCache.LoadOrStore(key, &arenaEntry{})
	e := v.(*arenaEntry)
	e.once.Do(func() { e.a, e.err = OpenArena(path, format) })
	return e.a, e.err
}
