package ssd

import (
	"reflect"
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/sim"
	"dloop/internal/trace"
)

// lookupAny resolves an lpn through whichever FTL the controller carries.
func lookupAny(t *testing.T, c *Controller, lpn ftl.LPN) flash.PPN {
	t.Helper()
	switch f := c.FTL().(type) {
	case *dloop.DLOOP:
		return f.Lookup(lpn)
	case *dftl.DFTL:
		return f.Lookup(lpn)
	case *fast.FAST:
		return f.Lookup(lpn)
	case *bast.BAST:
		return f.Lookup(lpn)
	case *pagemap.PureMap:
		return f.Lookup(lpn)
	}
	t.Fatal("unknown FTL type")
	return flash.InvalidPPN
}

// TestCrossFTLLogicalEquivalence replays one request stream through all
// three FTLs and asserts they expose the same logical state: exactly the
// same set of mapped LPNs, each stored valid under its own tag. Placement
// differs wildly between schemes; the logical contract must not.
func TestCrossFTLLogicalEquivalence(t *testing.T) {
	for _, mode := range shardModes {
		t.Run(mode.name, func(t *testing.T) {
			var mapped []map[ftl.LPN]bool
			for _, scheme := range Schemes() {
				c := buildTinyShards(t, scheme, mode.shards)
				preconditionTiny(t, c)
				reqs := tinyWorkload(t, c, 3000, 11)
				if _, err := c.Run(trace.NewSliceReader(reqs)); err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				m := make(map[ftl.LPN]bool)
				for lpn := ftl.LPN(0); lpn < c.FTL().Capacity(); lpn++ {
					ppn := lookupAny(t, c, lpn)
					if ppn == flash.InvalidPPN {
						continue
					}
					m[lpn] = true
					if got := c.Device().PageLPN(ppn); got != int64(lpn) {
						t.Fatalf("%s: lpn %d stored under tag %d", scheme, lpn, got)
					}
				}
				mapped = append(mapped, m)
			}
			for i := 1; i < len(mapped); i++ {
				if len(mapped[i]) != len(mapped[0]) {
					t.Fatalf("scheme %d maps %d lpns, scheme 0 maps %d",
						i, len(mapped[i]), len(mapped[0]))
				}
				for lpn := range mapped[0] {
					if !mapped[i][lpn] {
						t.Fatalf("scheme %d lost lpn %d", i, lpn)
					}
				}
			}
		})
	}
}

// TestPageSizesEndToEnd runs every supported page size through each FTL on
// a miniature device, checking the pipeline survives non-default pages and
// that bigger pages mean fewer flash programs for the same byte volume.
func TestPageSizesEndToEnd(t *testing.T) {
	writesByPage := map[int]int64{}
	for _, pageKB := range []int{2, 4, 8, 16} {
		geo := tinyGeometry()
		geo.PageSize = pageKB * 1024
		geo.BlocksPerPlane = 24 * 2 / pageKB * 2 // keep capacity roughly level
		if geo.BlocksPerPlane < 8 {
			geo.BlocksPerPlane = 8
		}
		cfg := Config{FTL: SchemeDLOOP, Geometry: &geo, ExtraPct: 0.25, CMTEntries: 64}
		c, err := Build(cfg)
		if err != nil {
			t.Fatalf("%dKB: %v", pageKB, err)
		}
		capBytes := int64(c.FTL().Capacity()) * int64(geo.PageSize)
		if err := c.PreconditionBytes(capBytes / 2); err != nil {
			t.Fatalf("%dKB: %v", pageKB, err)
		}
		// Fixed byte volume of writes.
		var at int64
		for i := 0; i < 200; i++ {
			req := trace.Request{
				Arrival: 0,
				LBN:     (int64(i) * 64) % (capBytes / 2 / trace.SectorSize / 64 * 64),
				Sectors: 64, // 32 KB
				Op:      trace.OpWrite,
			}
			if _, err := c.Serve(req); err != nil {
				t.Fatalf("%dKB: %v", pageKB, err)
			}
			at++
		}
		res := c.Result()
		writesByPage[pageKB] = res.PagesWrit
		if res.MeanRespMs <= 0 {
			t.Fatalf("%dKB: zero response time", pageKB)
		}
	}
	if !(writesByPage[2] > writesByPage[4] && writesByPage[4] > writesByPage[8] && writesByPage[8] > writesByPage[16]) {
		t.Fatalf("page ops should fall with page size: %v", writesByPage)
	}
}

// TestSubPageRequests covers requests smaller than a page and requests that
// straddle page boundaries.
func TestSubPageRequests(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	preconditionTiny(t, c)
	// 1 sector write: pads to one page.
	if _, err := c.Serve(trace.Request{Arrival: 0, LBN: 5, Sectors: 1, Op: trace.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if got := c.Result().PagesWrit; got != 1 {
		t.Fatalf("1-sector write programmed %d pages, want 1", got)
	}
	// 4 sectors straddling a page boundary (page = 4 sectors at 2 KB).
	before := c.Result().PagesWrit
	if _, err := c.Serve(trace.Request{Arrival: 0, LBN: 2, Sectors: 4, Op: trace.OpWrite}); err != nil {
		t.Fatal(err)
	}
	if got := c.Result().PagesWrit - before; got != 2 {
		t.Fatalf("straddling write programmed %d pages, want 2", got)
	}
}

// TestRunStopsOnReaderError verifies error propagation from trace readers.
func TestRunStopsOnReaderError(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	if _, err := c.Run(failingReader{}); err == nil {
		t.Fatal("reader error swallowed")
	}
}

type failingReader struct{}

func (failingReader) Next() (trace.Request, error) {
	return trace.Request{}, errBoom
}

var errBoom = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestTimeSeriesRecording(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	if err := c.EnableTimeSeries(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableTimeSeries(0); err == nil {
		t.Fatal("zero bucket accepted")
	}
	preconditionTiny(t, c)
	if c.TimeSeries().Buckets() != 0 {
		t.Fatal("precondition leaked into the series")
	}
	reqs := tinyWorkload(t, c, 500, 4)
	if _, err := c.Run(trace.NewSliceReader(reqs)); err != nil {
		t.Fatal(err)
	}
	ts := c.TimeSeries()
	if ts == nil || ts.Buckets() == 0 {
		t.Fatal("series empty after run")
	}
	var n int64
	for i := 0; i < ts.Buckets(); i++ {
		b := ts.Bucket(i)
		n += b.N()
	}
	if n != 500 {
		t.Fatalf("series recorded %d samples, want 500", n)
	}
}

// TestForkBitIdentical is the checkpoint/fork acceptance test: for every
// FTL scheme, a run forked from a warm-up checkpoint must produce a Result
// bit-identical to an uninterrupted fresh run, and the checkpoint must
// survive being restored repeatedly (catching any aliasing between snapshot
// and live state).
func TestForkBitIdentical(t *testing.T) {
	schemes := []string{SchemeDLOOP, SchemeDFTL, SchemeFAST, SchemeBAST,
		SchemePureMap, SchemePureMapStriped}
	for _, scheme := range schemes {
		for _, mode := range shardModes {
			t.Run(scheme+"/"+mode.name, func(t *testing.T) {
				fresh := buildTinyShards(t, scheme, mode.shards)
				preconditionTiny(t, fresh)
				w1 := tinyWorkload(t, fresh, 2000, 21)
				w2 := tinyWorkload(t, fresh, 1500, 22)
				want1, err := fresh.Run(trace.NewSliceReader(w1))
				if err != nil {
					t.Fatal(err)
				}

				fresh2 := buildTinyShards(t, scheme, mode.shards)
				preconditionTiny(t, fresh2)
				want2, err := fresh2.Run(trace.NewSliceReader(w2))
				if err != nil {
					t.Fatal(err)
				}

				c := buildTinyShards(t, scheme, mode.shards)
				preconditionTiny(t, c)
				cp, err := c.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				got1, err := c.Run(trace.NewSliceReader(w1))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got1, want1) {
					t.Fatalf("run after snapshot differs from fresh run:\n got %+v\nwant %+v", got1, want1)
				}
				// Fork the divergent cell w2 from the same checkpoint.
				if err := c.Restore(cp); err != nil {
					t.Fatal(err)
				}
				got2, err := c.Run(trace.NewSliceReader(w2))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got2, want2) {
					t.Fatalf("forked run differs from fresh run:\n got %+v\nwant %+v", got2, want2)
				}
				// Restore a second time: the checkpoint must be unscathed by the
				// forks that ran off it.
				if err := c.Restore(cp); err != nil {
					t.Fatal(err)
				}
				again, err := c.Run(trace.NewSliceReader(w1))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again, want1) {
					t.Fatalf("second fork differs from fresh run:\n got %+v\nwant %+v", again, want1)
				}
			})
		}
	}
}

// TestForkWithBufferAndSeries covers the controller state the plain fork
// test does not reach: the DRAM write buffer and the response time series.
func TestForkWithBufferAndSeries(t *testing.T) {
	build := func() *Controller {
		cfg := tinyConfig(SchemeDLOOP)
		cfg.BufferPages = 16
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EnableTimeSeries(1 * sim.Second); err != nil {
			t.Fatal(err)
		}
		preconditionTiny(t, c)
		return c
	}
	c := build()
	w := tinyWorkload(t, c, 1500, 23)
	cp, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	wantBuckets := c.TimeSeries().Buckets()
	if err := c.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if c.TimeSeries().Buckets() != 0 {
		t.Fatal("restored series not rewound")
	}
	got, err := c.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("forked buffered run differs:\n got %+v\nwant %+v", got, want)
	}
	if c.TimeSeries().Buckets() != wantBuckets {
		t.Fatalf("series buckets %d, want %d", c.TimeSeries().Buckets(), wantBuckets)
	}
	dirty, hitsW, _, _ := c.BufferStats()
	fresh := build()
	if _, err := fresh.Run(trace.NewSliceReader(w)); err != nil {
		t.Fatal(err)
	}
	fDirty, fHitsW, _, _ := fresh.BufferStats()
	if dirty != fDirty || hitsW != fHitsW {
		t.Fatalf("buffer state diverged: dirty %d/%d hitsW %d/%d", dirty, fDirty, hitsW, fHitsW)
	}
}

// TestControllerRecovery crashes a controller mid-run — after enough traffic
// that garbage collection is in flight (partially-filled blocks, open log
// blocks, half-consumed pools) — and checks the recovered one exposes
// identical mappings and keeps serving.
func TestControllerRecovery(t *testing.T) {
	schemes := []string{SchemeDLOOP, SchemeDFTL, SchemeFAST, SchemeBAST, SchemePureMap, SchemePureMapStriped}
	for _, scheme := range schemes {
		t.Run(scheme, func(t *testing.T) {
			c := buildTiny(t, scheme)
			preconditionTiny(t, c)
			res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 5)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Erases == 0 {
				t.Fatal("workload never triggered GC; the crash state is trivial")
			}
			r, err := c.Recover()
			if err != nil {
				t.Fatal(err)
			}
			// Exactly one valid copy of each written lpn exists on flash, so
			// even the hybrids' reconstructed (not identical) block roles must
			// resolve every lookup to the same physical page.
			for lpn := ftl.LPN(0); lpn < c.FTL().Capacity(); lpn++ {
				if got, want := lookupAny(t, r, lpn), lookupAny(t, c, lpn); got != want {
					t.Fatalf("lpn %d recovered %d want %d", lpn, got, want)
				}
			}
			if _, err := r.Run(trace.NewSliceReader(tinyWorkload(t, r, 1000, 6))); err != nil {
				t.Fatalf("post-recovery: %v", err)
			}
			checkMappingConsistency(t, r)
		})
	}
}

// TestRecoveryKeepsGCPolicy checks that a non-default victim policy survives
// the crash: the recovered controller rebuilds its GC engine with the same
// policy the original was configured with.
func TestRecoveryKeepsGCPolicy(t *testing.T) {
	for _, scheme := range []string{SchemeDLOOP, SchemeFAST, SchemeBAST, SchemePureMap} {
		cfg := tinyConfig(scheme)
		cfg.GCPolicy = "costbenefit"
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		preconditionTiny(t, c)
		if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 1500, 9))); err != nil {
			t.Fatal(err)
		}
		r, err := c.Recover()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		p, ok := r.FTL().(interface{ GCPolicyName() string })
		if !ok {
			t.Fatalf("%s: recovered FTL does not report its GC policy", scheme)
		}
		if got := p.GCPolicyName(); got != "costbenefit" {
			t.Errorf("%s: recovered policy %q, want costbenefit", scheme, got)
		}
		if _, err := r.Run(trace.NewSliceReader(tinyWorkload(t, r, 500, 10))); err != nil {
			t.Fatalf("%s post-recovery: %v", scheme, err)
		}
		checkMappingConsistency(t, r)
	}
}
