package ssd

import (
	"errors"
	"fmt"
	"io"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/stats"
	"dloop/internal/trace"
)

// Controller is the host-facing side of the simulated SSD. It aligns every
// request on page boundaries, splits it into one-page operations dispatched
// together (so striped placements can serve them on several planes at once),
// and measures response times from arrival to the completion of the last
// page. Not safe for concurrent use.
type Controller struct {
	// dev and f are the single-FTL engine's device and translation layer.
	// They are nil on a front-end controller (Config.FTLShards > 1), where
	// every page operation routes through fe's shards instead; use
	// Geometry/Capacity/ShardDevice/ShardFTL to stay engine-agnostic.
	dev *flash.Device
	f   ftl.FTL
	cfg Config

	// fe, when non-nil, is the multi-queue front end over N concurrent FTL
	// shards (see frontend.go).
	fe *frontEnd

	sectorsPerPage int64
	// pageShift replaces pageSpan's divisions with shifts when the page
	// holds a power-of-two sector count (it always does for the Table I
	// page sizes); pagePow2 gates the fast path.
	pagePow2  bool
	pageShift uint

	resp      stats.Welford // milliseconds
	readResp  stats.Welford
	writeResp stats.Welford
	hist      stats.LatencyHist
	series    *stats.TimeSeries // optional, see EnableTimeSeries
	buffer    *writeBuffer      // optional, see Config.BufferPages
	lastDone  sim.Time
	served    int64
	pagesRead int64
	pagesWrit int64

	rec obs.Recorder // nil when observability is disabled

	// Sharded-engine state (see sharded.go). par mirrors dev.Sharded() so
	// the hot path branches on one bool; pend/pendEnds park per-request
	// completion records between epoch barriers (the multi-queue front end
	// parks in its own double-buffered epochs instead — see feEpoch); lastRT
	// is the response time most recently folded by Flush, which Serve
	// returns in sharded mode.
	par      bool
	pend     []pendingDone
	pendEnds []sim.Time
	lastRT   sim.Duration

	// latHook, when set, receives every request's response time in arrival
	// order on both engines; the differential tests use it to compare the
	// sequential and sharded latency streams element-for-element.
	latHook func(sim.Duration)

	// pulse, when set, fires at quiescent points (after every Flush epoch, or
	// per request on the sequential engine); the live HTTP exporter publishes
	// registry snapshots from it. The callback is responsible for its own
	// rate limiting.
	pulse func()
}

func newController(dev *flash.Device, f ftl.FTL, cfg Config) *Controller {
	c := &Controller{
		dev:            dev,
		f:              f,
		cfg:            cfg,
		sectorsPerPage: int64(dev.Geometry().PageSize / trace.SectorSize),
	}
	if cfg.BufferPages > 0 {
		c.buffer = newWriteBuffer(cfg.BufferPages)
	}
	c.initPageSpan()
	return c
}

// initPageSpan precomputes the page-span shift when sectors-per-page is a
// power of two.
func (c *Controller) initPageSpan() {
	if spp := c.sectorsPerPage; spp > 0 && spp&(spp-1) == 0 {
		c.pagePow2 = true
		for int64(1)<<c.pageShift < spp {
			c.pageShift++
		}
	}
}

// newFEController wraps a multi-queue front end in a Controller. dev and f
// stay nil; the front end owns one device and FTL per shard.
func newFEController(fe *frontEnd, cfg Config) *Controller {
	c := &Controller{
		fe:             fe,
		cfg:            cfg,
		sectorsPerPage: int64(fe.geo.PageSize / trace.SectorSize),
	}
	c.initPageSpan()
	return c
}

// EnableTimeSeries records per-request response times bucketed by arrival
// time, exposing latency evolution (GC stalls show as spikes). Call before
// Run; retrieve with TimeSeries.
func (c *Controller) EnableTimeSeries(bucket sim.Duration) error {
	ts, err := stats.NewTimeSeries(bucket)
	if err != nil {
		return err
	}
	c.series = ts
	return nil
}

// TimeSeries returns the response-time series, or nil if not enabled.
func (c *Controller) TimeSeries() *stats.TimeSeries { return c.series }

// Device exposes the underlying flash device (read-only use intended). It is
// nil on a front-end controller — use ShardDevice there.
func (c *Controller) Device() *flash.Device { return c.dev }

// FTL exposes the flash translation layer in use. It is nil on a front-end
// controller — use ShardFTL there.
func (c *Controller) FTL() ftl.FTL { return c.f }

// Geometry returns the whole-device geometry on either engine.
func (c *Controller) Geometry() flash.Geometry {
	if c.fe != nil {
		return c.fe.geo
	}
	return c.dev.Geometry()
}

// Capacity returns the exported logical-page count on either engine.
func (c *Controller) Capacity() ftl.LPN {
	if c.fe != nil {
		return c.fe.cap
	}
	return c.f.Capacity()
}

// FTLShards returns the number of concurrent FTL shards (1 = single FTL).
func (c *Controller) FTLShards() int {
	if c.fe != nil {
		return len(c.fe.shards)
	}
	return 1
}

// ShardFTL returns FTL shard i's translation layer (read-only use intended).
// On a single-FTL controller, shard 0 is the FTL itself.
func (c *Controller) ShardFTL(i int) ftl.FTL {
	if c.fe != nil {
		return c.fe.shards[i].f
	}
	return c.f
}

// ShardDevice returns FTL shard i's sub-device (read-only use intended). On
// a single-FTL controller, shard 0 is the device itself.
func (c *Controller) ShardDevice(i int) *flash.Device {
	if c.fe != nil {
		return c.fe.shards[i].dev
	}
	return c.dev
}

// ShardOfLPN returns the FTL shard owning a logical page and the
// shard-local page it maps to there (identity on a single-FTL controller).
func (c *Controller) ShardOfLPN(lpn ftl.LPN) (shard int, local ftl.LPN) {
	if c.fe != nil {
		sh, l := c.fe.shardOf(lpn)
		return sh.idx, ftl.LPN(l)
	}
	return 0, lpn
}

// Config returns the configuration the controller was built with.
func (c *Controller) Config() Config { return c.cfg }

// ObsOptions returns a collector configuration matched to this SSD: the FTL
// name and the device's plane/channel shape. Callers add sinks and the
// snapshot interval before obs.NewCollector.
func (c *Controller) ObsOptions() obs.Options {
	geo := c.Geometry()
	var channelOfPlane []int32
	f := c.f
	if c.fe != nil {
		channelOfPlane = c.fe.channelOfPlane()
		f = c.fe.shards[0].f
	} else {
		channelOfPlane = c.dev.ChannelOfPlane()
	}
	opts := obs.Options{
		FTL:            f.Name(),
		Planes:         geo.Planes(),
		Channels:       geo.Channels,
		ChannelOfPlane: channelOfPlane,
		PagesPerBlock:  geo.PagesPerBlock,
	}
	if c.fe != nil {
		opts.Shards = len(c.fe.shards)
		opts.ShardOfChannel = c.fe.shardOfChannel()
	}
	if p, ok := f.(interface{ GCPolicyName() string }); ok {
		opts.GCPolicy = p.GCPolicyName()
	}
	return opts
}

// SetRecorder attaches (or, with nil, detaches) an observability recorder to
// the whole stack: host-request completions here, flash operations at the
// device, and GC/merge/CMT activity at the FTL (via ftl.Observable). When
// the recorder is an *obs.Collector it is also wired to sample the device's
// busy-time utilization at Close. On a multi-queue controller a collector
// observes the shards while they run concurrently (each worker records into
// a private child merged back at barriers); only the sub-devices' timing
// engines drop while it is attached. Attach after preconditioning so the
// stream covers exactly the measured window.
func (c *Controller) SetRecorder(r obs.Recorder) {
	if c.fe != nil {
		c.fe.setRecorder(c, r)
		return
	}
	if r != nil && c.par {
		// Per-op trace events are inherently ordered, so observability runs
		// use the sequential engine; sharding resumes when detached.
		c.Flush()
		c.dev.DisableSharding()
		if c.buffer != nil {
			c.buffer.resolve = nil
		}
		c.par = false
	}
	c.rec = r
	c.dev.SetRecorder(r)
	if o, ok := c.f.(ftl.Observable); ok {
		o.SetRecorder(r)
	}
	if col, ok := r.(*obs.Collector); ok && col != nil {
		col.SetUtilizationSource(c.dev.BusyTimes)
	}
	if r == nil {
		c.applySharding()
	}
}

// SetPulse registers fn (nil detaches) to run at quiescent points: after
// every epoch Flush on the pipelined engines, and after every served request
// on the sequential one. The collector's SnapshotRegistry is safe to call
// from inside it, which is how dloopsim's -listen exporter publishes live
// metrics mid-run. The callback should rate-limit itself; pulses arrive at
// epoch frequency.
func (c *Controller) SetPulse(fn func()) { c.pulse = fn }

// pageSpan returns the logical pages touched by a sector range. Callers
// validate the request first, so the sector indices are non-negative and
// the shift fast path agrees with the division.
func (c *Controller) pageSpan(r trace.Request) (first, last ftl.LPN) {
	if c.pagePow2 {
		return ftl.LPN(r.LBN >> c.pageShift), ftl.LPN((r.End() - 1) >> c.pageShift)
	}
	first = ftl.LPN(r.LBN / c.sectorsPerPage)
	last = ftl.LPN((r.End() - 1) / c.sectorsPerPage)
	return first, last
}

// Precondition sequentially writes the first `pages` logical pages once,
// putting the device into the steady state a deployed SSD reaches after its
// working set has been populated: the workload's footprint is live on flash
// and its mappings are persisted, so updates invalidate pages and garbage
// collection runs from the first measured request. Device utilization is
// footprint/capacity — which is why larger SSDs delay collection, the
// capacity trend of Fig. 8. All statistics and resource timelines are then
// reset.
func (c *Controller) Precondition(pages ftl.LPN) error {
	if c.fe != nil {
		return c.fe.precondition(c, pages)
	}
	if pages > c.f.Capacity() {
		return fmt.Errorf("ssd: precondition %d pages exceeds capacity %d", pages, c.f.Capacity())
	}
	var t sim.Time
	for lpn := ftl.LPN(0); lpn < pages; lpn++ {
		end, err := c.f.WritePage(lpn, t)
		if err != nil {
			return fmt.Errorf("ssd: precondition lpn %d: %w", lpn, err)
		}
		t = end
		if c.par && lpn&(preconditionEpoch-1) == preconditionEpoch-1 {
			// Bound the future slab: materialize the chain's tail, then
			// recycle every handle behind it.
			t = c.dev.ResolveTime(t)
			c.dev.SyncTiming()
			c.dev.ResetTimingEpoch()
		}
	}
	c.ResetMeasurement()
	return nil
}

// PreconditionBytes preconditions enough pages to cover a byte footprint.
func (c *Controller) PreconditionBytes(bytes int64) error {
	pageSize := int64(c.Geometry().PageSize)
	return c.Precondition(ftl.LPN((bytes + pageSize - 1) / pageSize))
}

// ResetMeasurement zeroes every statistic and resource timeline while
// keeping device and FTL state, so measurement starts from now.
func (c *Controller) ResetMeasurement() {
	c.discardPending()
	if c.fe != nil {
		c.fe.resetMeasurement()
	} else {
		c.dev.ResetStats()
	}
	c.lastRT = 0
	c.resp = stats.Welford{}
	c.readResp = stats.Welford{}
	c.writeResp = stats.Welford{}
	c.hist = stats.LatencyHist{}
	if c.series != nil {
		ts, _ := stats.NewTimeSeries(c.series.BucketWidth())
		c.series = ts
	}
	c.lastDone = 0
	c.served = 0
	c.pagesRead = 0
	c.pagesWrit = 0
}

// Serve executes one host request, returning its response time. On a
// sharded controller it issues the work and immediately barriers; callers
// replaying whole traces should prefer Run (or Enqueue+Flush), which
// pipelines many requests per barrier.
func (c *Controller) Serve(r trace.Request) (sim.Duration, error) {
	if c.fe != nil {
		if err := c.fe.enqueue(c, r, false); err != nil {
			return 0, err
		}
		c.Flush()
		if c.fe.err != nil {
			return 0, c.fe.err
		}
		return c.lastRT, nil
	}
	if c.par {
		if err := c.serveDeferred(r); err != nil {
			return 0, err
		}
		c.Flush()
		return c.lastRT, nil
	}
	if err := r.Validate(); err != nil {
		return 0, err
	}
	first, last := c.pageSpan(r)
	if err := ftl.CheckLPN(last, c.f.Capacity()); err != nil {
		return 0, fmt.Errorf("ssd: request [%d,%d) exceeds device: %w", r.LBN, r.End(), err)
	}
	done := r.Arrival
	for lpn := first; lpn <= last; lpn++ {
		var end sim.Time
		var err error
		switch {
		case r.Op == trace.OpRead && c.buffer != nil && c.buffer.readHit(lpn):
			end = r.Arrival.Add(c.buffer.dramLat)
			c.pagesRead++
		case r.Op == trace.OpRead:
			end, err = c.f.ReadPage(lpn, r.Arrival)
			c.pagesRead++
		case c.buffer != nil:
			end, err = c.buffer.put(c.f, lpn, r.Arrival)
			c.pagesWrit++
		default:
			end, err = c.f.WritePage(lpn, r.Arrival)
			c.pagesWrit++
		}
		if err != nil {
			return 0, err
		}
		if end > done {
			done = end
		}
	}
	rt := done.Sub(r.Arrival)
	ms := rt.Milliseconds()
	c.resp.Add(ms)
	if r.Op == trace.OpRead {
		c.readResp.Add(ms)
	} else {
		c.writeResp.Add(ms)
	}
	c.hist.Add(rt)
	if c.series != nil {
		c.series.Add(r.Arrival, ms)
	}
	if done > c.lastDone {
		c.lastDone = done
	}
	c.served++
	if c.rec != nil {
		c.rec.RecordRequest(r.Op == trace.OpRead, r.Arrival, done)
	}
	if c.latHook != nil {
		c.latHook(rt)
	}
	return rt, nil
}

// SetLatencyHook registers fn to receive every served request's response
// time in arrival order (nil detaches). Both engines call it — the
// sequential one per Serve, the sharded one as each epoch's completions are
// folded — so equivalence tests can compare the exact latency streams.
func (c *Controller) SetLatencyHook(fn func(sim.Duration)) { c.latHook = fn }

// Drain flushes every dirty buffered page through the FTL (a clean
// shutdown). No-op without a buffer.
func (c *Controller) Drain(at sim.Time) (sim.Time, error) {
	if c.fe != nil {
		c.Flush()
		return at, c.fe.err
	}
	if c.par {
		c.Flush()
	}
	if c.buffer == nil {
		return at, nil
	}
	end, err := c.buffer.flushAll(c.f, at)
	if c.par {
		c.dev.SyncTiming()
		c.dev.ResetTimingEpoch()
	}
	return end, err
}

// BufferStats reports the DRAM buffer's dirty page count, write hits, read
// hits, and background flushes (zeros without a buffer).
func (c *Controller) BufferStats() (dirty int, hitsW, hitsR, flushes int64) {
	if c.buffer == nil {
		return 0, 0, 0, 0
	}
	return c.buffer.Len(), c.buffer.hitsW, c.buffer.hitsR, c.buffer.flushes
}

// runChunk is how many requests Run pulls from a batching reader per
// EnqueueBatch call on the multi-queue engine.
const runChunk = 256

// Run replays every request from the reader and returns the results. On a
// sharded controller requests pipeline between epoch barriers, so the
// workers overlap the FTL's decision-making; on a multi-queue controller a
// reader that also implements trace.BatchReader feeds the batch dispatch
// stage in runChunk chunks, keeping classification off the staging path.
func (c *Controller) Run(r trace.Reader) (Result, error) {
	if br, ok := r.(trace.BatchReader); ok && c.fe != nil {
		buf := make([]trace.Request, runChunk)
		for {
			n, err := br.NextN(buf)
			if n > 0 {
				if derr := c.EnqueueBatch(buf[:n]); derr != nil {
					return Result{}, derr
				}
			}
			if err != nil {
				if isEOF(err) {
					break
				}
				return Result{}, err
			}
			if n == 0 {
				break
			}
		}
		return c.Result(), nil
	}
	for {
		req, err := r.Next()
		if err != nil {
			if isEOF(err) {
				break
			}
			return Result{}, err
		}
		if err := c.Enqueue(req); err != nil {
			return Result{}, err
		}
	}
	return c.Result(), nil
}

// EnqueueBatch dispatches a chunk of requests on the pipelined path. On a
// multi-queue controller the chunk flows through the batch dispatch stage —
// every request is classified (validated, page-spanned, bounds-checked)
// before any is staged, so an error means nothing from the chunk was
// dispatched. On the other engines it is Enqueue in a loop.
func (c *Controller) EnqueueBatch(reqs []trace.Request) error {
	if c.fe != nil {
		return c.fe.enqueueBatch(c, reqs)
	}
	for i := range reqs {
		if err := c.Enqueue(reqs[i]); err != nil {
			return err
		}
	}
	return nil
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// Result summarizes a measurement window.
type Result struct {
	FTL        string
	GCPolicy   string // victim-selection policy in effect ("" if not reported)
	Requests   int64
	PagesRead  int64
	PagesWrit  int64
	SimulatedS float64 // simulated seconds until the last completion

	MeanRespMs  float64 // the paper's headline metric
	StdRespMs   float64
	MaxRespMs   float64
	ReadMeanMs  float64
	WriteMeanMs float64
	P50Ms       float64
	P99Ms       float64

	SDRPP       float64 // ln of the stddev of per-plane operation counts
	PlaneOps    []int64
	WearCV      float64 // coefficient of variation of per-block erase counts
	TotalErases int64

	// Flash traffic.
	Reads, Writes, CopyBacks, Erases int64
	GCCopyBacks, GCExternalMoves     int64
	WastedPages                      int64

	// FTL-specific accounting (zero where not applicable).
	CMTHitRate    float64
	TransReads    int64
	TransWrites   int64
	LearnedHits   int64
	GCRuns        int64
	SwitchMerges  int64
	PartialMerges int64
	FullMerges    int64
	MergeCopies   int64
}

// Result snapshots the current measurement window.
func (c *Controller) Result() Result {
	if c.fe != nil {
		return c.fe.result(c)
	}
	c.Flush()
	ds := c.dev.Stats()
	res := Result{
		FTL:         c.f.Name(),
		Requests:    c.served,
		PagesRead:   c.pagesRead,
		PagesWrit:   c.pagesWrit,
		SimulatedS:  sim.Duration(c.lastDone).Seconds(),
		MeanRespMs:  c.resp.Mean(),
		StdRespMs:   c.resp.StdDev(),
		MaxRespMs:   c.resp.Max(),
		ReadMeanMs:  c.readResp.Mean(),
		WriteMeanMs: c.writeResp.Mean(),
		P50Ms:       c.hist.Quantile(0.5).Milliseconds(),
		P99Ms:       c.hist.Quantile(0.99).Milliseconds(),
		PlaneOps:    ds.PlaneTotals(),
		Reads:       ds.Reads(),
		Writes:      ds.Writes(),
		CopyBacks:   ds.CopyBacks(),
		Erases:      ds.Erases(),
		WastedPages: ds.WastedPages,
	}
	if p, ok := c.f.(interface{ GCPolicyName() string }); ok {
		res.GCPolicy = p.GCPolicyName()
	}
	res.SDRPP = stats.SDRPP(res.PlaneOps)
	res.GCCopyBacks, res.GCExternalMoves = ds.GCMoves()
	erases := make([]int64, len(ds.BlockErases))
	for i, e := range ds.BlockErases {
		erases[i] = int64(e)
		res.TotalErases += int64(e)
	}
	res.WearCV = stats.CV(erases)

	switch f := c.f.(type) {
	case *dloop.DLOOP:
		s := f.Stats()
		res.GCRuns = s.GCRuns
		res.TransReads = s.MapperStats.TransReads
		res.TransWrites = s.MapperStats.TransWrites
		res.LearnedHits = s.MapperStats.LearnedHits
		res.CMTHitRate, _, _ = f.CMTHitRate()
	case *dftl.DFTL:
		s := f.Stats()
		res.GCRuns = s.GCRuns
		res.TransReads = s.MapperStats.TransReads
		res.TransWrites = s.MapperStats.TransWrites
		res.LearnedHits = s.MapperStats.LearnedHits
		res.CMTHitRate, _, _ = f.CMTHitRate()
	case *fast.FAST:
		s := f.Stats()
		res.SwitchMerges = s.SwitchMerges
		res.PartialMerges = s.PartialMerges
		res.FullMerges = s.FullMerges
		res.MergeCopies = s.MergeCopies
	case *bast.BAST:
		s := f.Stats()
		res.SwitchMerges = s.SwitchMerges
		res.FullMerges = s.FullMerges
		res.MergeCopies = s.MergeCopies
	case *pagemap.PureMap:
		s := f.Stats()
		res.GCRuns = s.GCRuns
	}
	return res
}
