package ssd

import (
	"reflect"
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/trace"
	"dloop/internal/workload"
)

// demandPagedSchemes are the two FTLs that run the pluggable translation
// engine; the other three map without demand paging and reject non-default
// policies at Build.
var demandPagedSchemes = []string{SchemeDLOOP, SchemeDFTL}

// translatePoliciesUnderTest is every selectable policy plus the empty
// default, which must behave exactly like explicit "slru".
var translatePoliciesUnderTest = []string{"", "slru", "lru", "learned"}

// tinySeqWorkload is tinyWorkload's sequential sibling: a pure write stream
// that sweeps the footprint in order, the pattern that trains the learned
// index and (on wrap-around) rewards it with predictable mappings.
func tinySeqWorkload(t *testing.T, c *Controller, n int, seed int64) []trace.Request {
	t.Helper()
	capBytes := int64(c.Capacity()) * int64(c.Geometry().PageSize)
	p := workload.Profile{
		Name:           "tinyseq",
		WriteRatio:     1.0,
		Sizes:          []workload.SizeWeight{{Sectors: 4, Weight: 1}},
		RatePerSec:     2000,
		FootprintBytes: capBytes * 3 / 4,
		SeqProb:        0.99,
		AlignSectors:   4,
	}
	reqs, err := workload.Generate(p, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// learnedSegmentCounter is the scheme-level view into the learned index that
// DLOOP and DFTL both export.
type learnedSegmentCounter interface {
	LearnedSegments() int
	TranslatePolicyName() string
}

// TestTranslatePolicyDifferential is the randomized differential suite for
// the translation engine at the controller level: for both demand-paged
// schemes, sequential and sharded timing engines, and several workload seeds,
// every policy replays the same trace. The empty default must be bit-identical
// to explicit "slru" (the pre-refactor behavior the golden suite pins), and
// all policies — whatever they charge for translation traffic — must expose
// the same logical state: the identical set of mapped LPNs, each stored valid
// under its own OOB tag.
func TestTranslatePolicyDifferential(t *testing.T) {
	for _, scheme := range demandPagedSchemes {
		for _, mode := range shardModes {
			t.Run(scheme+"/"+mode.name, func(t *testing.T) {
				for _, seed := range []int64{1, 37, 101} {
					results := make(map[string]Result)
					mappings := make(map[string][]flash.PPN)
					for _, pol := range translatePoliciesUnderTest {
						cfg := tinyConfig(scheme)
						cfg.Shards = mode.shards
						cfg.TranslatePolicy = pol
						c, err := Build(cfg)
						if err != nil {
							t.Fatal(err)
						}
						preconditionTiny(t, c)
						res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, seed)))
						if err != nil {
							t.Fatalf("%s policy %q: %v", scheme, pol, err)
						}
						checkMappingConsistency(t, c)
						results[pol] = res
						tbl := make([]flash.PPN, c.FTL().Capacity())
						for lpn := range tbl {
							tbl[lpn] = lookupAny(t, c, ftl.LPN(lpn))
						}
						mappings[pol] = tbl
						c.Close()
					}
					if !reflect.DeepEqual(results[""], results["slru"]) {
						t.Fatalf("seed %d: default policy diverged from explicit slru:\n got %+v\nwant %+v",
							seed, results[""], results["slru"])
					}
					// Identical workload, identical writes: whatever each
					// policy paid in translation traffic, the mapped set is
					// the same, and slru/default place bit-identically.
					for _, pol := range translatePoliciesUnderTest[1:] {
						for lpn, want := range mappings[""] {
							got := mappings[pol][lpn]
							if (got == flash.InvalidPPN) != (want == flash.InvalidPPN) {
								t.Fatalf("seed %d policy %q: lpn %d mapped=%v, default mapped=%v",
									seed, pol, lpn, got != flash.InvalidPPN, want != flash.InvalidPPN)
							}
						}
					}
					if !reflect.DeepEqual(mappings[""], mappings["slru"]) {
						t.Fatalf("seed %d: slru mapping table diverged from default", seed)
					}
					if results["learned"].TransReads > results["slru"].TransReads {
						t.Logf("seed %d %s/%s: learned TransReads %d > slru %d (random workload; allowed)",
							seed, scheme, mode.name, results["learned"].TransReads, results["slru"].TransReads)
					}
				}
			})
		}
	}
}

// TestTranslatePolicyMQDifferential runs the same cross-policy logical check
// through the multi-queue front end: 2 FTL shards on the 8-channel shape,
// each shard running its own translation engine.
func TestTranslatePolicyMQDifferential(t *testing.T) {
	for _, scheme := range demandPagedSchemes {
		t.Run(scheme, func(t *testing.T) {
			mapped := make(map[string][]bool)
			for _, pol := range translatePoliciesUnderTest {
				cfg := mqConfig(scheme, tiny8Geometry(), 2, "")
				cfg.TranslatePolicy = pol
				c := buildMQ(t, cfg)
				preconditionTiny(t, c)
				if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 7))); err != nil {
					t.Fatalf("policy %q: %v", pol, err)
				}
				set := make([]bool, c.Capacity())
				for lpn := range set {
					set[lpn] = lookupMQ(t, c, ftl.LPN(lpn)) != flash.InvalidPPN
				}
				mapped[pol] = set
			}
			for _, pol := range translatePoliciesUnderTest[1:] {
				if !reflect.DeepEqual(mapped[pol], mapped[""]) {
					t.Fatalf("policy %q maps a different LPN set than the default", pol)
				}
			}
		})
	}
}

// TestTranslateForkBitIdenticalLearned extends the checkpoint/fork
// acceptance test to the learned policy's extra state: a run forked from a
// warm checkpoint — learned segments included — must be bit-identical to an
// uninterrupted fresh run, and the checkpoint must survive repeated restores.
func TestTranslateForkBitIdenticalLearned(t *testing.T) {
	for _, scheme := range demandPagedSchemes {
		t.Run(scheme, func(t *testing.T) {
			build := func() *Controller {
				cfg := tinyConfig(scheme)
				cfg.TranslatePolicy = "learned"
				c, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(c.Close)
				preconditionTiny(t, c)
				return c
			}
			fresh := build()
			w1 := tinySeqWorkload(t, fresh, 2000, 21)
			w2 := tinyWorkload(t, fresh, 1500, 22)
			want1, err := fresh.Run(trace.NewSliceReader(w1))
			if err != nil {
				t.Fatal(err)
			}
			if want1.LearnedHits == 0 {
				t.Fatal("sequential workload produced no learned hits; the fork covers no learned state")
			}

			fresh2 := build()
			want2, err := fresh2.Run(trace.NewSliceReader(w2))
			if err != nil {
				t.Fatal(err)
			}

			c := build()
			cp, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got1, err := c.Run(trace.NewSliceReader(w1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got1, want1) {
				t.Fatalf("run after snapshot differs from fresh run:\n got %+v\nwant %+v", got1, want1)
			}
			if err := c.Restore(cp); err != nil {
				t.Fatal(err)
			}
			got2, err := c.Run(trace.NewSliceReader(w2))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want2) {
				t.Fatalf("forked run differs from fresh run:\n got %+v\nwant %+v", got2, want2)
			}
			// The first fork ran 2000 sequential requests off the checkpoint,
			// mutating segments heavily; a second restore must still replay w1
			// exactly, or the snapshot aliased live learned state.
			if err := c.Restore(cp); err != nil {
				t.Fatal(err)
			}
			again, err := c.Run(trace.NewSliceReader(w1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want1) {
				t.Fatalf("second fork differs from fresh run:\n got %+v\nwant %+v", again, want1)
			}
		})
	}
}

// TestTranslateRecoveryRetrainsLearned checks the crash contract of the
// learned index: it lives in SRAM, so recovery drops it (the OOB scan
// rebuilds only the table and GTD) and the index retrains lazily as
// translation-page write-backs resume.
func TestTranslateRecoveryRetrainsLearned(t *testing.T) {
	for _, scheme := range demandPagedSchemes {
		t.Run(scheme, func(t *testing.T) {
			cfg := tinyConfig(scheme)
			cfg.TranslatePolicy = "learned"
			c, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			preconditionTiny(t, c)
			if _, err := c.Run(trace.NewSliceReader(tinySeqWorkload(t, c, 2000, 5))); err != nil {
				t.Fatal(err)
			}
			lc, ok := c.FTL().(learnedSegmentCounter)
			if !ok {
				t.Fatalf("%s does not expose its learned segments", scheme)
			}
			if lc.LearnedSegments() == 0 {
				t.Fatal("sequential workload trained no segments; the crash state is trivial")
			}

			r, err := c.Recover()
			if err != nil {
				t.Fatal(err)
			}
			rc := r.FTL().(learnedSegmentCounter)
			if got := rc.TranslatePolicyName(); got != "learned" {
				t.Fatalf("recovered policy %q, want learned", got)
			}
			if got := rc.LearnedSegments(); got != 0 {
				t.Fatalf("recovery kept %d learned segments; SRAM state must not survive power loss", got)
			}
			for lpn := ftl.LPN(0); lpn < c.FTL().Capacity(); lpn++ {
				if got, want := lookupAny(t, r, lpn), lookupAny(t, c, lpn); got != want {
					t.Fatalf("lpn %d recovered %d want %d", lpn, got, want)
				}
			}

			// Write-backs during fresh traffic retrain the index from scratch
			// and predictions start landing again.
			res, err := r.Run(trace.NewSliceReader(tinySeqWorkload(t, r, 2000, 6)))
			if err != nil {
				t.Fatalf("post-recovery: %v", err)
			}
			if rc.LearnedSegments() == 0 {
				t.Fatal("learned index never retrained after recovery")
			}
			if res.LearnedHits == 0 {
				t.Fatal("no learned hits after recovery; retraining is dead weight")
			}
			checkMappingConsistency(t, r)
		})
	}
}

// TestTranslateBuildRejections pins the Config validation: non-default
// policies demand a demand-paged scheme, unknown policies fail, and explicit
// CMT sizes outside [2, logical space] fail.
func TestTranslateBuildRejections(t *testing.T) {
	cfg := tinyConfig(SchemeFAST)
	cfg.TranslatePolicy = "learned"
	if _, err := Build(cfg); err == nil {
		t.Fatal("learned policy on FAST accepted")
	}
	cfg = tinyConfig(SchemeDLOOP)
	cfg.TranslatePolicy = "bogus"
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cfg = tinyConfig(SchemeDLOOP)
	cfg.CMTEntries = 1
	if _, err := Build(cfg); err == nil {
		t.Fatal("CMTEntries 1 accepted")
	}
	cfg = tinyConfig(SchemeDLOOP)
	cfg.CMTEntries = 1 << 30
	if _, err := Build(cfg); err == nil {
		t.Fatal("CMTEntries beyond the logical space accepted")
	}
	cfg = tinyConfig(SchemeDFTL)
	cfg.TranslatePolicy = "lru"
	c, err := Build(cfg)
	if err != nil {
		t.Fatalf("lru on DFTL rejected: %v", err)
	}
	if got := c.FTL().(learnedSegmentCounter).TranslatePolicyName(); got != "lru" {
		t.Fatalf("policy %q in effect, want lru", got)
	}
}
