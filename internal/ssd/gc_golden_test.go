package ssd

import (
	"reflect"
	"testing"

	"dloop/internal/trace"
)

// goldenGC pins the flash-traffic counters of one scheme on the tiny
// deterministic workload (6000 requests, seed 7, 3/4-capacity precondition).
type goldenGC struct {
	policy      string
	reads       int64
	writes      int64
	copyBacks   int64
	erases      int64
	extMoves    int64
	wastedPages int64
	gcRuns      int64
	mergeCopies int64
}

// goldenDefaults are the counters every scheme produced before the GC
// engine refactor; the unified engine under each scheme's default policy
// must reproduce them exactly. A change here means the default GC behavior
// is no longer bit-identical to the historical per-scheme collectors.
var goldenDefaults = map[string]goldenGC{
	SchemeDLOOP:          {policy: "greedy", reads: 7521, writes: 6785, copyBacks: 9138, erases: 2249, extMoves: 0, wastedPages: 2482, gcRuns: 2249},
	SchemeDFTL:           {policy: "greedy", reads: 10646, writes: 9910, copyBacks: 0, erases: 1166, extMoves: 3176, wastedPages: 0, gcRuns: 1166},
	SchemeFAST:           {policy: "fifo", reads: 17996, writes: 21529, copyBacks: 0, erases: 2678, extMoves: 15250, wastedPages: 0, mergeCopies: 15250},
	SchemeBAST:           {policy: "fifo", reads: 22602, writes: 26135, copyBacks: 0, erases: 4964, extMoves: 19856, wastedPages: 0, mergeCopies: 19856},
	SchemePureMap:        {policy: "greedy", reads: 5617, writes: 9150, copyBacks: 0, erases: 1069, extMoves: 2871, wastedPages: 0, gcRuns: 1069},
	SchemePureMapStriped: {policy: "greedy", reads: 2746, writes: 6279, copyBacks: 8084, erases: 2030, extMoves: 0, wastedPages: 2306, gcRuns: 2030},
}

func runGoldenWorkload(t *testing.T, cfg Config) Result {
	t.Helper()
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preconditionTiny(t, c)
	res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 6000, 7)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenDefaultPolicy locks the engine's default victim policies to the
// seed behavior of all five FTL families.
func TestGoldenDefaultPolicy(t *testing.T) {
	for scheme, want := range goldenDefaults {
		t.Run(scheme, func(t *testing.T) {
			res := runGoldenWorkload(t, tinyConfig(scheme))
			got := goldenGC{
				policy:      res.GCPolicy,
				reads:       res.Reads,
				writes:      res.Writes,
				copyBacks:   res.CopyBacks,
				erases:      res.Erases,
				extMoves:    res.GCExternalMoves,
				wastedPages: res.WastedPages,
				gcRuns:      res.GCRuns,
				mergeCopies: res.MergeCopies,
			}
			if got != want {
				t.Errorf("golden counters drifted:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestExplicitDefaultPolicyIdentical checks that naming the default policy
// explicitly is the same simulation as leaving GCPolicy empty.
func TestExplicitDefaultPolicyIdentical(t *testing.T) {
	for scheme, want := range goldenDefaults {
		base := runGoldenWorkload(t, tinyConfig(scheme))
		cfg := tinyConfig(scheme)
		cfg.GCPolicy = want.policy
		named := runGoldenWorkload(t, cfg)
		if !reflect.DeepEqual(base, named) {
			t.Errorf("%s: GCPolicy=%q differs from default:\n%+v\n%+v", scheme, want.policy, base, named)
		}
	}
}

// TestAlternativePoliciesRun drives every scheme under the two alternative
// victim policies: the runs must complete, report the policy, and remain
// logically consistent (every written page readable at its mapped location).
func TestAlternativePoliciesRun(t *testing.T) {
	for scheme := range goldenDefaults {
		for _, pol := range []string{"costbenefit", "windowed"} {
			t.Run(scheme+"/"+pol, func(t *testing.T) {
				cfg := tinyConfig(scheme)
				cfg.GCPolicy = pol
				c, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				preconditionTiny(t, c)
				res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 3000, 11)))
				if err != nil {
					t.Fatal(err)
				}
				if res.GCPolicy != pol {
					t.Errorf("Result.GCPolicy = %q, want %q", res.GCPolicy, pol)
				}
				if res.Requests != 3000 {
					t.Errorf("served %d requests", res.Requests)
				}
				checkMappingConsistency(t, c)
			})
		}
	}
}

// TestBuildRejectsUnknownGCPolicy covers the config error path.
func TestBuildRejectsUnknownGCPolicy(t *testing.T) {
	for scheme := range goldenDefaults {
		cfg := tinyConfig(scheme)
		cfg.GCPolicy = "nope"
		if _, err := Build(cfg); err == nil {
			t.Errorf("%s: unknown policy accepted", scheme)
		}
	}
}
