package ssd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/stats"
	"dloop/internal/trace"
)

// Concurrent FTL shards behind a multi-queue host front end.
//
// Config.FTLShards > 1 partitions the logical address space LPN mod N over N
// independent FTL shards, LFTL-style. Each shard owns a complete vertical
// slice of the SSD: a private sub-device covering Channels/N channels, its
// own FTL instance (mapping table, CMT slab, log blocks, free-block pools,
// write points) and its own garbage-collection engine with a free-pool
// trigger scoped to the shard's planes. Shards share no mutable state, so
// every placement and collection decision runs concurrently with the others
// — this moves the *control plane* off one goroutine, where the
// Config.Shards timing engine (see sharded.go) only moved the
// resource-timeline arithmetic.
//
// The host side is an NVMe-style multi-queue front end: one submission ring
// (sim.SPSC) per shard carrying fixed-size page commands, with doorbells
// batched (PushStaged/Ring) so the producer publishes many commands per tail
// store. Completions resolve into future-time slabs double-buffered across
// epochs: while the shards execute epoch K+1's commands, the host folds
// epoch K's parked completions and recycles its slab (see feEpoch/advance),
// so the stop-the-world barrier survives only at true quiescent points
// (statistics readers, checkpoints, recorder switches).
//
// Two completion-merge modes:
//
//   - MergeDeterministic (default): every request's completion is parked and
//     folded into the response-time accumulators at the epoch barrier in
//     arrival order — the same order, and therefore the same floating-point
//     sequence, as serial execution of the same shard layout. Results are
//     bit-identical run to run and to in-order execution of the same
//     configuration, which is what the differential suite pins.
//   - MergeRelaxed: workers fold single-page requests' latencies into
//     per-shard accumulators as they complete; Result merges the per-shard
//     accumulators in shard order. Histograms and counters merge exactly;
//     Welford means/variances differ from deterministic mode only in
//     floating-point rounding. Still deterministic run to run.
//
// An FTLShards=N device is a different device organization than FTLShards=1
// (placement depends on per-shard write order, like striping across N
// sub-drives in RAID 0), so results are comparable across merge modes and
// worker schedules at fixed N, not across N.
//
// Serial execution mode (frontEnd.serial) runs the same shard partitioning
// inline on the host goroutine in dispatch order. It is the baseline the
// differential tests compare concurrent execution against.
//
// Observability is shard-native: attaching an *obs.Collector gives every
// shard a private child collector (obs.Collector.Shard) that only its worker
// touches, so metrics and traces are gathered while the shards run
// concurrently; the parent folds the children back in shard order at
// quiescent points, making the merged registry bit-identical to a serial run
// of the same configuration. Each sub-device's *timing* sharding still drops
// while a recorder is attached (per-op events are ordered within a shard),
// but the FTL-shard concurrency — the part under study — is preserved.
// Non-Collector recorders have no merge semantics, so they keep the old
// contract: serial execution with a translating per-shard wrapper.

// Completion-merge modes for Config.Merge.
const (
	MergeDeterministic = "deterministic"
	MergeRelaxed       = "relaxed"
)

// autoShardMinChannels is the smallest channel count on which AutoShards
// engages either sharded engine. Below it the per-request shard overhead
// (queue hops, barriers) outweighs what little parallelism the shape offers;
// the 4-channel bench shapes regress, the 8-channel ones win.
const autoShardMinChannels = 8

// doorbellBatch is the default for Config.DoorbellBatch: how many staged
// page commands the front end accumulates before ringing the shard
// doorbells. Barriers ring unconditionally, so batching only defers
// visibility, never loses it.
const doorbellBatch = 64

// defaultEpochPages is the default for Config.EpochPages: how many parked
// page completions close a pipeline epoch. Large enough to amortize the
// handoff, small enough that two in-flight epochs stay cache-resident.
const defaultEpochPages = 4096

// maxEpochPages caps Config.EpochPages well below a FutureSlab's 2^26
// slots so an epoch can never overflow its completion slab.
const maxEpochPages = 1 << 22

// feQueueCap bounds each shard's submission ring. Epoch flushes keep
// occupancy far below this; the cap is backpressure against a runaway
// producer, not a working size.
const feQueueCap = 1 << 13

// pageCmd is one page operation in a shard's submission ring.
type pageCmd struct {
	lpn     int64    // shard-local logical page
	arrival sim.Time // request arrival (the response-time origin)
	slot    int32    // slab slot<<1 | epoch-buffer parity; -1 = fold on the worker
	read    bool
}

// shardAcc is the per-shard response-time accumulator the relaxed merge mode
// folds into on the worker. Deterministic mode leaves it empty.
type shardAcc struct {
	resp, readResp, writeResp stats.Welford
	hist                      stats.LatencyHist
	lastDone                  sim.Time
	served                    int64
}

func (a *shardAcc) clone() shardAcc {
	out := *a
	out.hist = a.hist.Clone()
	return out
}

// feEpoch is one stage of the front end's two-deep completion pipeline: a
// future slab plus the requests parked against it. While the shards execute
// the current epoch's commands, the host folds the previous epoch's — those
// slots are a full epoch old, so Wait almost never spins — and then recycles
// that epoch's slab for the epoch after next. Ownership alternates along the
// quiescence protocol: the host allocates slots and appends parked records,
// exactly one worker resolves each slot, and the host reads slots back only
// while folding, after which no live handle survives into the recycled slab.
type feEpoch struct {
	slab   sim.FutureSlab
	pend   []pendingDone // parked requests, in arrival order
	ends   []sim.Time    // per-page completion times or future handles
	shards []int8        // serial mode: owning shard per parked page
	serial bool          // parked by serial (inline) execution
	pages  int           // page commands dispatched into this epoch
}

func (ep *feEpoch) reset() {
	ep.pend = ep.pend[:0]
	ep.ends = ep.ends[:0]
	ep.shards = ep.shards[:0]
	ep.slab.Reset()
	ep.pages = 0
}

// dispReq is one classified request in the batch dispatch stage: validated,
// page-spanned, and bounds-checked, ready to stage onto the rings.
type dispReq struct {
	arrival     sim.Time
	first, last ftl.LPN
	read        bool
}

// ftlShard is one control-plane shard: a private sub-device, FTL, and GC
// engine, plus the plumbing that connects it to the front end.
type ftlShard struct {
	idx int
	dev *flash.Device
	f   ftl.FTL
	sq  *sim.SPSC[pageCmd]

	// planeMap / chipMap / chanMap translate shard-local resource indices to
	// whole-device ones. Packages spread round-robin over channels, so the
	// shard's planes are not a contiguous range of global planes.
	planeMap []int32
	chipMap  []int32
	chanMap  []int32

	// acc is written by the worker (relaxed merge) and read by the host only
	// after a quiescence barrier, which orders the accesses.
	acc shardAcc
	// mqLat, when a collector is attached, is the shard child's "mq.lat"
	// submission→completion histogram; the worker observes into it, and like
	// acc the host reads it only behind a quiescence barrier.
	mqLat *obs.Hist
	// err is the first execution error, latched by the worker and surfaced
	// by the host at the next barrier.
	err error
	// preTail chains the preconditioning writes within the shard.
	preTail sim.Time
}

// frontEnd is the multi-queue host front end over N FTL shards.
type frontEnd struct {
	shards []*ftlShard
	n      int64
	geo    flash.Geometry // whole-device geometry
	cap    ftl.LPN        // total exported pages (sum of shard capacities)
	subCap ftl.LPN        // exported pages per shard

	relaxed bool
	// serial executes page operations inline on the host goroutine in
	// dispatch order instead of routing them through the rings. Forced by an
	// attached recorder and by Close; the differential tests use it as the
	// in-order baseline.
	serial bool
	// running is true while the worker goroutines are alive.
	running bool
	// timingSharded is true when each sub-device runs the Config.Shards
	// timing engine underneath its shard worker.
	timingSharded bool

	// epochs double-buffers the completion pipeline (see feEpoch): cur is
	// the epoch being filled, 1-cur the previous epoch, whose completions
	// fold while the shards execute. With depth 1 the pipeline degenerates
	// to the old stop-the-world barrier at every epoch close.
	epochs [2]feEpoch
	cur    int

	// epochPages, doorbell, and depth are the resolved Config tunables
	// (EpochPages, DoorbellBatch, PipelineDepth).
	epochPages int
	doorbell   int
	depth      int

	// shardMask/shardShift route pages to shards without integer division
	// when the shard count is a power of two (channel counts almost always
	// are).
	shardPow2  bool
	shardMask  int64
	shardShift uint

	staged     int   // page commands staged since the last doorbell
	sinceFlush int   // pages dispatched since the last full barrier
	err        error // sticky first error; surfaced by Serve/Enqueue
	// failed is raised by any worker that latches an execution error, so
	// the host can escalate to a full barrier at the next epoch handoff
	// instead of dispatching the rest of the run into a dead shard.
	failed atomic.Bool
	wg     sync.WaitGroup

	// disp is the batch dispatch stage's classification scratch.
	disp []dispReq

	// tele is the host-side queue telemetry, non-nil only while a collector
	// is attached; teleCol/teleState keep the state paired with its collector
	// across detach/re-attach.
	tele      *feTele
	teleCol   *obs.Collector
	teleState *feTele
}

// feTele accumulates the front end's dispatch-side queue telemetry: doorbell
// rings, pages per ring, the staged-batch high-water mark, and pages per
// shard. It is defined on the dispatch side — identical in serial and
// concurrent execution — so the merged metrics document stays bit-identical
// across modes; consumer-side ring occupancy would be schedule-dependent. An
// attached collector folds it in via an aux source.
type feTele struct {
	doorbells  int64
	pages      int64
	ringHW     int
	shardPages []int64
}

func (t *feTele) fold(r *obs.Registry) {
	r.Counter("mq.doorbells").Add(t.doorbells)
	r.Counter("mq.doorbell.pages").Add(t.pages)
	r.Gauge("mq.ring.highwater").Set(float64(t.ringHW))
	v := r.CounterVec("mq.shard.pages", "shard", len(t.shardPages))
	for i, p := range t.shardPages {
		v.Add(i, p)
	}
}

// resolveFTLShards maps a Config.FTLShards value to an effective shard
// count: AutoShards shards per-channel on shapes of at least
// autoShardMinChannels channels and falls back to the single-FTL engine
// below that; explicit counts are reduced to the largest divisor of the
// channel count so every shard owns the same whole number of channels.
func resolveFTLShards(v, channels int) int {
	if v == AutoShards {
		if channels < autoShardMinChannels {
			return 1
		}
		v = channels
	}
	if v <= 1 {
		return 1
	}
	if v > channels {
		v = channels
	}
	for channels%v != 0 {
		v--
	}
	return v
}

// newFrontEnd builds n shards over sub-devices of geo (Channels/n channels
// each), constructing each shard's FTL with build. Worker goroutines start
// immediately.
func newFrontEnd(geo flash.Geometry, timing flash.Timing, n int, cfg Config,
	build func(dev *flash.Device) (ftl.FTL, error)) (*frontEnd, error) {
	if cfg.BufferPages > 0 {
		return nil, fmt.Errorf("ssd: FTLShards is incompatible with BufferPages (the DRAM buffer is a single ordered cache)")
	}
	subGeo := geo
	subGeo.Channels = geo.Channels / n
	fe := &frontEnd{
		n:       int64(n),
		geo:     geo,
		relaxed: cfg.Merge == MergeRelaxed,
	}
	fe.initTunables(cfg)
	timingShards := resolveShards(cfg.Shards, subGeo.Channels)
	fe.timingSharded = timingShards > 1
	for s := 0; s < n; s++ {
		dev, err := flash.NewDevice(subGeo, timing)
		if err != nil {
			return nil, err
		}
		f, err := build(dev)
		if err != nil {
			return nil, err
		}
		sh := &ftlShard{
			idx: s,
			dev: dev,
			f:   f,
			sq:  sim.NewSPSC[pageCmd](feQueueCap),
		}
		sh.buildMaps(geo, subGeo, s)
		if timingShards > 1 {
			dev.EnableSharding(timingShards)
		}
		fe.shards = append(fe.shards, sh)
		if fe.subCap == 0 {
			fe.subCap = f.Capacity()
		} else if f.Capacity() != fe.subCap {
			return nil, fmt.Errorf("ssd: shard %d capacity %d != shard 0 capacity %d", s, f.Capacity(), fe.subCap)
		}
	}
	fe.cap = fe.subCap * ftl.LPN(n)
	fe.start()
	return fe, nil
}

// initTunables resolves the pipeline knobs from cfg (zero values select the
// defaults) and precomputes the division-free shard route.
func (fe *frontEnd) initTunables(cfg Config) {
	fe.epochPages = cfg.EpochPages
	if fe.epochPages <= 0 {
		fe.epochPages = defaultEpochPages
	}
	if fe.epochPages > maxEpochPages {
		fe.epochPages = maxEpochPages
	}
	fe.doorbell = cfg.DoorbellBatch
	if fe.doorbell <= 0 {
		fe.doorbell = doorbellBatch
	}
	fe.depth = cfg.PipelineDepth
	if fe.depth <= 0 {
		fe.depth = 2
	}
	if fe.n&(fe.n-1) == 0 {
		fe.shardPow2 = true
		fe.shardMask = fe.n - 1
		for int64(1)<<fe.shardShift < fe.n {
			fe.shardShift++
		}
	}
}

// buildMaps computes the shard-local -> global index translations. Shard s
// owns global channels [s*subC, (s+1)*subC); global packages are laid out
// round-robin over channels (package g lives on channel g % Channels), so
// sub-package k of the shard — itself on sub-channel k % subC, round
// k / subC — is global package (k/subC)*Channels + s*subC + k%subC.
func (sh *ftlShard) buildMaps(geo, subGeo flash.Geometry, s int) {
	subC := subGeo.Channels
	planesPerPkg := geo.ChipsPerPackage * geo.DiesPerChip * geo.PlanesPerDie
	chipsPerPkg := geo.ChipsPerPackage
	sh.planeMap = make([]int32, subGeo.Planes())
	sh.chipMap = make([]int32, subGeo.Chips())
	sh.chanMap = make([]int32, subC)
	for ck := 0; ck < subC; ck++ {
		sh.chanMap[ck] = int32(s*subC + ck)
	}
	gpkgOf := func(k int) int { return (k/subC)*geo.Channels + s*subC + k%subC }
	for sp := 0; sp < subGeo.Planes(); sp++ {
		sh.planeMap[sp] = int32(gpkgOf(sp/planesPerPkg)*planesPerPkg + sp%planesPerPkg)
	}
	for sc := 0; sc < subGeo.Chips(); sc++ {
		sh.chipMap[sc] = int32(gpkgOf(sc/chipsPerPkg)*chipsPerPkg + sc%chipsPerPkg)
	}
}

// shardOfChannel maps every global channel to its owning FTL shard (shard s
// owns the contiguous range [s*subC, (s+1)*subC)).
func (fe *frontEnd) shardOfChannel() []int32 {
	subC := fe.geo.Channels / int(fe.n)
	out := make([]int32, fe.geo.Channels)
	for ch := range out {
		out[ch] = int32(ch / subC)
	}
	return out
}

// channelOfPlane computes the whole-device plane-to-channel map (packages
// spread round-robin over channels), matching flash.Device.ChannelOfPlane.
func (fe *frontEnd) channelOfPlane() []int32 {
	planesPerPkg := fe.geo.ChipsPerPackage * fe.geo.DiesPerChip * fe.geo.PlanesPerDie
	out := make([]int32, fe.geo.Planes())
	for p := range out {
		out[p] = int32((p / planesPerPkg) % fe.geo.Channels)
	}
	return out
}

// start launches one worker goroutine per shard.
func (fe *frontEnd) start() {
	fe.running = true
	fe.serial = false
	for _, sh := range fe.shards {
		fe.wg.Add(1)
		go fe.worker(sh)
	}
}

// stop drains and terminates the workers; the front end falls back to serial
// execution and remains usable.
func (fe *frontEnd) stop() {
	if !fe.running {
		return
	}
	for _, sh := range fe.shards {
		sh.sq.Close()
	}
	fe.wg.Wait()
	fe.running = false
	fe.serial = true
}

// worker is one shard's control plane: it drains the submission ring FIFO,
// so the shard's FTL sees exactly the dispatch-order subsequence of requests
// the serial baseline would feed it.
func (fe *frontEnd) worker(sh *ftlShard) {
	defer fe.wg.Done()
	for {
		cmd, ok := sh.sq.PopWait()
		if !ok {
			return
		}
		fe.exec(sh, cmd)
		sh.sq.MarkDone()
	}
}

// exec runs one page command against the shard's FTL. After an error the
// shard keeps consuming commands without executing them (resolving their
// slots so the host never blocks); the host surfaces the latched error at
// the next barrier. A command's slot carries the epoch-buffer parity in its
// low bit, naming which of the two in-flight slabs owns the completion.
func (fe *frontEnd) exec(sh *ftlShard, cmd pageCmd) {
	if sh.err != nil {
		if cmd.slot >= 0 {
			fe.epochs[cmd.slot&1].slab.Resolve(int(cmd.slot>>1), cmd.arrival)
		}
		return
	}
	var end sim.Time
	var err error
	if cmd.read {
		end, err = sh.f.ReadPage(ftl.LPN(cmd.lpn), cmd.arrival)
	} else {
		end, err = sh.f.WritePage(ftl.LPN(cmd.lpn), cmd.arrival)
	}
	if err != nil {
		sh.err = err
		fe.failed.Store(true)
		if cmd.slot >= 0 {
			fe.epochs[cmd.slot&1].slab.Resolve(int(cmd.slot>>1), cmd.arrival)
		}
		return
	}
	// With the timing engine layered under this shard (Config.Shards), end
	// may be a future handle owned by the sub-device; materialize it here,
	// on the shard's control goroutine, before publishing.
	end = sh.dev.ResolveTime(end)
	if sh.mqLat != nil {
		sh.mqLat.Observe(end.Sub(cmd.arrival))
	}
	if cmd.slot >= 0 {
		fe.epochs[cmd.slot&1].slab.Resolve(int(cmd.slot>>1), end)
		return
	}
	rt := end.Sub(cmd.arrival)
	ms := rt.Milliseconds()
	sh.acc.resp.Add(ms)
	if cmd.read {
		sh.acc.readResp.Add(ms)
	} else {
		sh.acc.writeResp.Add(ms)
	}
	sh.acc.hist.Add(rt)
	if end > sh.acc.lastDone {
		sh.acc.lastDone = end
	}
	sh.acc.served++
}

// shardOf returns the shard owning a logical page and its shard-local page.
func (fe *frontEnd) shardOf(lpn ftl.LPN) (*ftlShard, int64) {
	l := int64(lpn)
	if fe.shardPow2 {
		return fe.shards[l&fe.shardMask], l >> fe.shardShift
	}
	return fe.shards[l%fe.n], l / fe.n
}

// enqueue classifies and dispatches one request. With deferred=false (the
// synchronous Serve path) the request always parks a completion record so
// the immediately following Flush can return its response time; with
// deferred=true, relaxed merge folds single-page requests on the workers
// and parks nothing.
func (fe *frontEnd) enqueue(c *Controller, r trace.Request, deferred bool) error {
	if fe.err != nil {
		return fe.err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	first, last := c.pageSpan(r)
	if err := ftl.CheckLPN(last, fe.cap); err != nil {
		return fmt.Errorf("ssd: request [%d,%d) exceeds device: %w", r.LBN, r.End(), err)
	}
	d := dispReq{arrival: r.Arrival, first: first, last: last, read: r.Op == trace.OpRead}
	return fe.dispatch(c, d, deferred)
}

// enqueueBatch is the batch dispatch stage: classify the whole chunk first
// (validation, page spans, bounds checks — pure address math, no ring or
// slab traffic), then stage the classified requests onto the rings with
// epoch handoffs interleaved at their boundaries. Splitting the phases
// keeps classification off the staging path and lets one doorbell cover
// many requests. On error nothing from the chunk has been dispatched.
func (fe *frontEnd) enqueueBatch(c *Controller, reqs []trace.Request) error {
	if fe.err != nil {
		return fe.err
	}
	if cap(fe.disp) < len(reqs) {
		fe.disp = make([]dispReq, 0, len(reqs))
	}
	fe.disp = fe.disp[:0]
	for i := range reqs {
		r := &reqs[i]
		if err := r.Validate(); err != nil {
			return err
		}
		first, last := c.pageSpan(*r)
		if err := ftl.CheckLPN(last, fe.cap); err != nil {
			return fmt.Errorf("ssd: request [%d,%d) exceeds device: %w", r.LBN, r.End(), err)
		}
		fe.disp = append(fe.disp, dispReq{arrival: r.Arrival, first: first, last: last, read: r.Op == trace.OpRead})
	}
	for i := range fe.disp {
		if err := fe.dispatch(c, fe.disp[i], true); err != nil {
			return err
		}
		fe.maybeAdvance(c)
	}
	return nil
}

// dispatch stages one classified request: route each page to its shard,
// park the completion record in the current epoch, and ring doorbells.
func (fe *frontEnd) dispatch(c *Controller, d dispReq, deferred bool) error {
	npages := int(d.last - d.first + 1)
	if d.read {
		c.pagesRead += int64(npages)
	} else {
		c.pagesWrit += int64(npages)
	}
	fe.sinceFlush += npages
	if fe.serial {
		if err := fe.serveSerial(c, d.arrival, d.first, d.last, d.read); err != nil {
			return err
		}
		fe.bell(npages)
		return nil
	}
	// Relaxed merge folds single-page requests entirely on the worker; any
	// consumer that needs the host-side arrival-order stream (latency hook,
	// time series, recorder, the synchronous Serve API) disqualifies it.
	if fe.relaxed && deferred && npages == 1 && c.latHook == nil && c.series == nil && c.rec == nil {
		sh, lpn := fe.shardOf(d.first)
		sh.sq.PushStaged(pageCmd{lpn: lpn, arrival: d.arrival, slot: -1, read: d.read})
		fe.bell(1)
		return nil
	}
	ep := &fe.epochs[fe.cur]
	ep.serial = false
	parity := int32(fe.cur)
	off := len(ep.ends)
	for lpn := d.first; lpn <= d.last; lpn++ {
		sh, local := fe.shardOf(lpn)
		slot, future := ep.slab.NewSlot()
		sh.sq.PushStaged(pageCmd{lpn: local, arrival: d.arrival, slot: int32(slot)<<1 | parity, read: d.read})
		ep.ends = append(ep.ends, future)
		if fe.tele != nil {
			fe.tele.shardPages[sh.idx]++
		}
	}
	ep.pend = append(ep.pend, pendingDone{
		arrival: d.arrival,
		off:     int32(off),
		n:       int32(npages),
		read:    d.read,
	})
	ep.pages += npages
	fe.bell(npages)
	return nil
}

// bell counts staged page commands and rings the doorbells once enough have
// accumulated.
func (fe *frontEnd) bell(pages int) {
	fe.staged += pages
	if fe.staged < fe.doorbell {
		return
	}
	fe.ring()
}

// ring publishes the staged batch: telemetry accounts it, and the concurrent
// path stores every shard's ring tail (a no-op on shards with nothing
// staged). Serial mode accounts the same batches without touching the rings,
// so dispatch-side telemetry is identical in both execution modes.
func (fe *frontEnd) ring() {
	if fe.staged == 0 {
		return
	}
	if fe.tele != nil {
		fe.tele.doorbells++
		fe.tele.pages += int64(fe.staged)
		if fe.staged > fe.tele.ringHW {
			fe.tele.ringHW = fe.staged
		}
	}
	if !fe.serial && fe.running {
		for _, sh := range fe.shards {
			sh.sq.Ring()
		}
	}
	fe.staged = 0
}

// serveSerial executes a request's pages inline in dispatch order: the
// in-order baseline. Completion times (possibly timing-engine futures) park
// exactly like the concurrent path's, so Flush folds both identically.
func (fe *frontEnd) serveSerial(c *Controller, arrival sim.Time, first, last ftl.LPN, read bool) error {
	ep := &fe.epochs[fe.cur]
	ep.serial = true
	off := len(ep.ends)
	for lpn := first; lpn <= last; lpn++ {
		sh, local := fe.shardOf(lpn)
		var end sim.Time
		var err error
		if read {
			end, err = sh.f.ReadPage(ftl.LPN(local), arrival)
		} else {
			end, err = sh.f.WritePage(ftl.LPN(local), arrival)
		}
		if err != nil {
			ep.ends = ep.ends[:off]
			ep.shards = ep.shards[:off]
			fe.err = err
			return err
		}
		// With a collector attached the timing engine is off, so end is
		// concrete and the observation matches the worker path's exactly.
		if sh.mqLat != nil {
			sh.mqLat.Observe(end.Sub(arrival))
		}
		if fe.tele != nil {
			fe.tele.shardPages[sh.idx]++
		}
		ep.ends = append(ep.ends, end)
		ep.shards = append(ep.shards, int8(sh.idx))
	}
	ep.pend = append(ep.pend, pendingDone{
		arrival: arrival,
		off:     int32(off),
		n:       int32(last - first + 1),
		read:    read,
	})
	ep.pages += int(last - first + 1)
	return nil
}

// barrier waits until every dispatched page command has fully executed. On
// return the host may touch shard state freely: the quiescence count is the
// synchronization edge, and the next ring publish hands the state back to
// the worker.
func (fe *frontEnd) barrier() {
	fe.ring() // account (and, concurrent, publish) the partial batch
	if !fe.serial && fe.running {
		for _, sh := range fe.shards {
			sh.sq.AwaitQuiesced() // rings the doorbell itself
		}
		for _, sh := range fe.shards {
			if sh.err != nil && fe.err == nil {
				fe.err = sh.err
			}
		}
	}
	for _, sh := range fe.shards {
		sh.dev.SyncTiming()
	}
}

// maybeAdvance closes the current epoch once it holds enough parked pages.
// The common case is the pipelined handoff (advance); when the timing
// engine runs under the shards, the sub-device slabs only recycle at full
// barriers, so those runs bound them with a full flush instead.
func (fe *frontEnd) maybeAdvance(c *Controller) {
	if fe.timingSharded && fe.sinceFlush >= preconditionEpoch {
		c.Flush()
		return
	}
	if fe.epochs[fe.cur].pages >= fe.epochPages {
		fe.advance(c)
	}
}

// advance is the pipelined epoch handoff: publish the closing epoch's tail
// batch, fold the previous epoch's completions while the shards execute the
// one just closed, and recycle the previous slab as the buffer for the next
// epoch. No worker stalls: the only waiting is slab.Wait on slots a full
// epoch old, which in steady state have long resolved. The host therefore
// runs at most two epochs ahead of the slowest shard — the natural
// backpressure that bounds both slabs.
func (fe *frontEnd) advance(c *Controller) {
	if fe.depth < 2 {
		// Degenerate pipeline: the classic stop-the-world barrier epoch
		// (Flush also fires the pulse, matching the pre-pipeline cadence).
		c.Flush()
		return
	}
	fe.ring()
	if fe.failed.Load() {
		// A worker latched an error; quiesce now so fe.err surfaces on the
		// next enqueue instead of at the end of the run.
		c.Flush()
		return
	}
	fe.foldEpoch(c, &fe.epochs[1-fe.cur])
	fe.cur = 1 - fe.cur
	if c.pulse != nil {
		// Pulse consumers (the live exporter) snapshot shard-side state,
		// which is only safe at a true quiescent point.
		fe.barrier()
		c.pulse()
	}
}

// foldEpoch folds one epoch's parked requests into the response-time
// accumulators in arrival order — the same order, and therefore the same
// floating-point sequence, no matter how the stream was cut into epochs or
// how long fold was deferred; that invariance is why determinism survives
// the pipelining. Afterwards the epoch recycles: every handle has been
// resolved, so no live reference survives into the reused slab.
func (fe *frontEnd) foldEpoch(c *Controller, ep *feEpoch) {
	if fe.err != nil {
		ep.reset() // the run is being abandoned; drop, don't fold
		return
	}
	for _, p := range ep.pend {
		done := p.arrival
		for i := int32(0); i < p.n; i++ {
			idx := p.off + i
			t := ep.ends[idx]
			if sim.IsFutureTime(t) {
				if ep.serial {
					t = fe.shards[ep.shards[idx]].dev.ResolveTime(t)
				} else {
					t = ep.slab.Wait(sim.FutureSlot(t))
				}
			}
			if t > done {
				done = t
			}
		}
		rt := done.Sub(p.arrival)
		ms := rt.Milliseconds()
		c.resp.Add(ms)
		if p.read {
			c.readResp.Add(ms)
		} else {
			c.writeResp.Add(ms)
		}
		c.hist.Add(rt)
		if c.series != nil {
			c.series.Add(p.arrival, ms)
		}
		if done > c.lastDone {
			c.lastDone = done
		}
		c.served++
		c.lastRT = rt
		if c.rec != nil {
			c.rec.RecordRequest(p.read, p.arrival, done)
		}
		if c.latHook != nil {
			c.latHook(rt)
		}
	}
	ep.reset()
}

// flush is the full epoch barrier: quiesce every shard, fold both in-flight
// epochs in arrival order (previous epoch first), and recycle every slab.
// This is the quiescent point every statistics reader, checkpoint, recorder
// switch, and mode change goes through.
func (fe *frontEnd) flush(c *Controller) {
	fe.barrier()
	if fe.err != nil {
		fe.epochs[0].reset()
		fe.epochs[1].reset()
		fe.resetEpoch()
		return
	}
	fe.foldEpoch(c, &fe.epochs[1-fe.cur])
	fe.foldEpoch(c, &fe.epochs[fe.cur])
	fe.resetEpoch()
}

// resetEpoch recycles every shard's timing-engine slab and restarts the
// full-barrier page count (the epoch slabs recycle in foldEpoch). Callers
// hold no live handles.
func (fe *frontEnd) resetEpoch() {
	fe.sinceFlush = 0
	for _, sh := range fe.shards {
		sh.dev.ResetTimingEpoch()
	}
}

// discard drops both epochs' parked completions without folding them (the
// accumulators are about to be reset or overwritten anyway).
func (fe *frontEnd) discard() {
	fe.barrier()
	fe.epochs[0].reset()
	fe.epochs[1].reset()
	fe.resetEpoch()
}

// precondition sequentially writes the first pages logical pages, chaining
// times within each shard (shards fill concurrently in simulated time,
// exactly as independent sub-drives would) and bounding the timing slabs
// with epoch barriers. Runs inline on the host goroutine; preconditioning is
// setup, not the measured hot path.
func (fe *frontEnd) precondition(c *Controller, pages ftl.LPN) error {
	if pages > fe.cap {
		return fmt.Errorf("ssd: precondition %d pages exceeds capacity %d", pages, fe.cap)
	}
	fe.flush(c) // nothing in flight while the host touches shard FTLs
	if fe.err != nil {
		return fe.err
	}
	for _, sh := range fe.shards {
		sh.preTail = 0
	}
	for lpn := ftl.LPN(0); lpn < pages; lpn++ {
		sh, local := fe.shardOf(lpn)
		end, err := sh.f.WritePage(ftl.LPN(local), sh.preTail)
		if err != nil {
			return fmt.Errorf("ssd: precondition lpn %d: %w", lpn, err)
		}
		sh.preTail = end
		if fe.timingSharded && lpn&(preconditionEpoch-1) == preconditionEpoch-1 {
			for _, s := range fe.shards {
				s.preTail = s.dev.ResolveTime(s.preTail)
				s.dev.SyncTiming()
				s.dev.ResetTimingEpoch()
			}
		}
	}
	for _, s := range fe.shards {
		s.preTail = s.dev.ResolveTime(s.preTail)
		s.dev.SyncTiming()
		s.dev.ResetTimingEpoch()
	}
	c.ResetMeasurement()
	return nil
}

// result aggregates the measurement window across shards. Counters and
// histograms merge exactly; per-plane and per-block series scatter through
// the shard maps into whole-device indexing, so SDRPP and wear metrics read
// identically to an unsharded device's.
func (fe *frontEnd) result(c *Controller) Result {
	c.Flush()
	resp, readResp, writeResp := c.resp, c.readResp, c.writeResp
	hist := c.hist.Clone()
	lastDone, served := c.lastDone, c.served
	for _, sh := range fe.shards {
		resp.Merge(sh.acc.resp)
		readResp.Merge(sh.acc.readResp)
		writeResp.Merge(sh.acc.writeResp)
		hist.Merge(sh.acc.hist)
		if sh.acc.lastDone > lastDone {
			lastDone = sh.acc.lastDone
		}
		served += sh.acc.served
	}
	res := Result{
		FTL:         fe.shards[0].f.Name(),
		Requests:    served,
		PagesRead:   c.pagesRead,
		PagesWrit:   c.pagesWrit,
		SimulatedS:  sim.Duration(lastDone).Seconds(),
		MeanRespMs:  resp.Mean(),
		StdRespMs:   resp.StdDev(),
		MaxRespMs:   resp.Max(),
		ReadMeanMs:  readResp.Mean(),
		WriteMeanMs: writeResp.Mean(),
		P50Ms:       hist.Quantile(0.5).Milliseconds(),
		P99Ms:       hist.Quantile(0.99).Milliseconds(),
		PlaneOps:    make([]int64, fe.geo.Planes()),
	}
	if p, ok := fe.shards[0].f.(interface{ GCPolicyName() string }); ok {
		res.GCPolicy = p.GCPolicyName()
	}
	erases := make([]int64, fe.geo.TotalBlocks())
	bpp := fe.geo.BlocksPerPlane
	var cmtHits, cmtMisses int64
	for _, sh := range fe.shards {
		ds := sh.dev.Stats()
		for sp, v := range ds.PlaneTotals() {
			res.PlaneOps[sh.planeMap[sp]] = v
		}
		for bi, e := range ds.BlockErases {
			gp := int64(sh.planeMap[bi/bpp])
			erases[gp*int64(bpp)+int64(bi%bpp)] = int64(e)
			res.TotalErases += int64(e)
		}
		res.Reads += ds.Reads()
		res.Writes += ds.Writes()
		res.CopyBacks += ds.CopyBacks()
		res.Erases += ds.Erases()
		res.WastedPages += ds.WastedPages
		cb, ext := ds.GCMoves()
		res.GCCopyBacks += cb
		res.GCExternalMoves += ext
		addFTLStats(sh.f, &res, &cmtHits, &cmtMisses)
	}
	res.SDRPP = stats.SDRPP(res.PlaneOps)
	res.WearCV = stats.CV(erases)
	if cmtHits+cmtMisses > 0 {
		res.CMTHitRate = float64(cmtHits) / float64(cmtHits+cmtMisses)
	}
	return res
}

// addFTLStats folds one shard FTL's scheme-specific counters into the
// result. CMT hits and misses accumulate separately so the merged hit rate
// is the whole-device ratio, not a mean of per-shard ratios.
func addFTLStats(f ftl.FTL, res *Result, cmtHits, cmtMisses *int64) {
	if cr, ok := f.(interface {
		CMTHitRate() (float64, int64, int64)
	}); ok {
		_, h, m := cr.CMTHitRate()
		*cmtHits += h
		*cmtMisses += m
	}
	switch f := f.(type) {
	case *dloop.DLOOP:
		s := f.Stats()
		res.GCRuns += s.GCRuns
		res.TransReads += s.MapperStats.TransReads
		res.TransWrites += s.MapperStats.TransWrites
		res.LearnedHits += s.MapperStats.LearnedHits
	case *dftl.DFTL:
		s := f.Stats()
		res.GCRuns += s.GCRuns
		res.TransReads += s.MapperStats.TransReads
		res.TransWrites += s.MapperStats.TransWrites
		res.LearnedHits += s.MapperStats.LearnedHits
	case *fast.FAST:
		s := f.Stats()
		res.SwitchMerges += s.SwitchMerges
		res.PartialMerges += s.PartialMerges
		res.FullMerges += s.FullMerges
		res.MergeCopies += s.MergeCopies
	case *bast.BAST:
		s := f.Stats()
		res.SwitchMerges += s.SwitchMerges
		res.FullMerges += s.FullMerges
		res.MergeCopies += s.MergeCopies
	case *pagemap.PureMap:
		s := f.Stats()
		res.GCRuns += s.GCRuns
	}
}

// busyTimes aggregates per-shard cumulative busy times into whole-device
// vectors; the observability collector samples it at Close.
func (fe *frontEnd) busyTimes() (planes, chipBus, channels []sim.Duration) {
	planes = make([]sim.Duration, fe.geo.Planes())
	chipBus = make([]sim.Duration, fe.geo.Chips())
	channels = make([]sim.Duration, fe.geo.Channels)
	for _, sh := range fe.shards {
		p, cb, ch := sh.dev.BusyTimes()
		for i, v := range p {
			planes[sh.planeMap[i]] = v
		}
		for i, v := range cb {
			chipBus[sh.chipMap[i]] = v
		}
		for i, v := range ch {
			channels[sh.chanMap[i]] = v
		}
	}
	return planes, chipBus, channels
}

// gcVictimRecorder is the GC engine's optional victim-histogram extension of
// obs.Recorder (see gc.Config); the shard wrapper must forward it or a
// wrapped collector would silently lose the victim-validity distribution.
type gcVictimRecorder interface {
	RecordGCVictim(valid int, at sim.Time)
}

// shardRecorder translates a shard's local plane/channel indices into
// whole-device ones before forwarding to the real recorder, so N shards
// produce one coherent device-wide stream.
type shardRecorder struct {
	inner    obs.Recorder
	victim   gcVictimRecorder   // non-nil when inner reports GC victims
	gcSpan   obs.GCSpanRecorder // non-nil when inner takes rich GC spans
	planeMap []int32
	chanMap  []int32
}

func newShardRecorder(inner obs.Recorder, sh *ftlShard) *shardRecorder {
	r := &shardRecorder{inner: inner, planeMap: sh.planeMap, chanMap: sh.chanMap}
	if vr, ok := inner.(gcVictimRecorder); ok {
		r.victim = vr
	}
	if sr, ok := inner.(obs.GCSpanRecorder); ok {
		r.gcSpan = sr
	}
	return r
}

func (r *shardRecorder) RecordOp(op obs.Op) {
	op.Plane = r.planeMap[op.Plane]
	op.Channel = r.chanMap[op.Channel]
	r.inner.RecordOp(op)
}

func (r *shardRecorder) RecordEvent(kind obs.EventKind, at sim.Time) {
	r.inner.RecordEvent(kind, at)
}

func (r *shardRecorder) RecordSpan(kind obs.SpanKind, plane int32, start, end sim.Time) {
	r.inner.RecordSpan(kind, r.planeMap[plane], start, end)
}

func (r *shardRecorder) RecordRequest(read bool, arrival, done sim.Time) {
	r.inner.RecordRequest(read, arrival, done)
}

func (r *shardRecorder) RecordGCVictim(valid int, at sim.Time) {
	if r.victim != nil {
		r.victim.RecordGCVictim(valid, at)
	}
}

func (r *shardRecorder) RecordGCSpan(plane int32, start, end sim.Time, policy string, moved, wasted int) {
	if r.gcSpan != nil {
		r.gcSpan.RecordGCSpan(r.planeMap[plane], start, end, policy, moved, wasted)
		return
	}
	r.inner.RecordSpan(obs.SpanGC, r.planeMap[plane], start, end)
}

// setRecorder attaches (or detaches) observability across every shard. An
// *obs.Collector stays concurrent: each shard gets a private child collector
// (local indices, merged at quiescent points), the sub-devices' timing
// engines drop for the recorder's lifetime (per-op events are ordered within
// a shard), and the front end's dispatch-side queue telemetry switches on.
// Any other Recorder has no merge semantics and keeps the old contract:
// serial execution through a translating per-shard wrapper.
func (fe *frontEnd) setRecorder(c *Controller, r obs.Recorder) {
	fe.flush(c)
	c.rec = r
	if col, ok := r.(*obs.Collector); ok && col != nil {
		subC := fe.geo.Channels / int(fe.n)
		for _, sh := range fe.shards {
			sh.dev.DisableSharding()
			child := col.Shard(obs.ShardOptions{
				Index:          sh.idx,
				Planes:         len(sh.planeMap),
				Channels:       subC,
				ChannelOfPlane: sh.dev.ChannelOfPlane(),
				PlaneMap:       sh.planeMap,
				ChanMap:        sh.chanMap,
			})
			sh.dev.SetRecorder(child)
			if o, ok := sh.f.(ftl.Observable); ok {
				o.SetRecorder(child)
			}
			sh.mqLat = child.Registry().Hist("mq.lat")
		}
		col.SetUtilizationSource(fe.busyTimes)
		if fe.teleCol != col {
			fe.teleCol = col
			fe.teleState = &feTele{shardPages: make([]int64, len(fe.shards))}
			st := fe.teleState
			col.AddAuxSource(func(reg *obs.Registry) { st.fold(reg) })
		}
		fe.tele = fe.teleState
		return
	}
	if r != nil {
		fe.serial = true
		for _, sh := range fe.shards {
			sh.dev.DisableSharding()
			wrapped := newShardRecorder(r, sh)
			sh.dev.SetRecorder(wrapped)
			if o, ok := sh.f.(ftl.Observable); ok {
				o.SetRecorder(wrapped)
			}
		}
		return
	}
	fe.tele = nil
	timingShards := resolveShards(c.cfg.Shards, fe.geo.Channels/int(fe.n))
	for _, sh := range fe.shards {
		sh.dev.SetRecorder(nil)
		if o, ok := sh.f.(ftl.Observable); ok {
			o.SetRecorder(nil)
		}
		sh.mqLat = nil
		if timingShards > 1 {
			sh.dev.EnableSharding(timingShards)
		}
	}
	if fe.running {
		fe.serial = false
	}
}

// resetMeasurement zeroes shard-side statistics (the host-side accumulators
// are the controller's).
func (fe *frontEnd) resetMeasurement() {
	for _, sh := range fe.shards {
		sh.dev.ResetStats()
		sh.acc = shardAcc{}
	}
}

// feCheckpoint is the per-shard portion of a front-end controller's
// Checkpoint: one device state, FTL state, and relaxed-merge accumulator per
// shard.
type feCheckpoint struct {
	devs []*flash.DeviceState
	ftls []any
	accs []shardAcc
}

// snapshot deep-copies every shard's state after a barrier.
func (fe *frontEnd) snapshot(c *Controller) (*feCheckpoint, error) {
	fe.flush(c)
	cp := &feCheckpoint{}
	for _, sh := range fe.shards {
		snapper, ok := sh.f.(ftl.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("ssd: FTL %s does not support checkpointing", sh.f.Name())
		}
		cp.devs = append(cp.devs, sh.dev.Snapshot())
		cp.ftls = append(cp.ftls, snapper.Snapshot())
		cp.accs = append(cp.accs, sh.acc.clone())
	}
	return cp, nil
}

// restore rewinds every shard to a checkpoint taken from an identically
// configured front end.
func (fe *frontEnd) restore(c *Controller, cp *feCheckpoint) error {
	if cp == nil || len(cp.devs) != len(fe.shards) {
		return fmt.Errorf("ssd: checkpoint does not match this controller's %d FTL shards", len(fe.shards))
	}
	c.discardPending() // in-flight work belongs to the run being abandoned
	for i, sh := range fe.shards {
		snapper, ok := sh.f.(ftl.Snapshotter)
		if !ok {
			return fmt.Errorf("ssd: FTL %s does not support checkpointing", sh.f.Name())
		}
		if err := snapper.Restore(cp.ftls[i]); err != nil {
			return err
		}
		sh.dev.Restore(cp.devs[i])
		sh.acc = cp.accs[i].clone()
	}
	return nil
}

// recoverShards rebuilds every shard's FTL from its sub-device's out-of-band
// page tags (simulated power loss) and returns a fresh front end over the
// same sub-devices. The old front end's workers stop first; its controller
// stays usable for read-only lookups.
func (fe *frontEnd) recoverShards(cfg Config, extra int) (*frontEnd, error) {
	fe.stop()
	nfe := &frontEnd{
		n:       fe.n,
		geo:     fe.geo,
		cap:     fe.cap,
		subCap:  fe.subCap,
		relaxed: cfg.Merge == MergeRelaxed,
	}
	nfe.initTunables(cfg)
	timingShards := resolveShards(cfg.Shards, fe.geo.Channels/int(fe.n))
	nfe.timingSharded = timingShards > 1
	for _, sh := range fe.shards {
		f, err := recoverFTL(sh.dev, cfg, extra)
		if err != nil {
			return nil, err
		}
		sh.dev.SetRecorder(nil)
		if timingShards > 1 && sh.dev.ShardCount() == 1 {
			sh.dev.EnableSharding(timingShards)
		}
		nfe.shards = append(nfe.shards, &ftlShard{
			idx:      sh.idx,
			dev:      sh.dev,
			f:        f,
			sq:       sim.NewSPSC[pageCmd](feQueueCap),
			planeMap: sh.planeMap,
			chipMap:  sh.chipMap,
			chanMap:  sh.chanMap,
		})
	}
	nfe.start()
	return nfe, nil
}
