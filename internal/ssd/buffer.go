package ssd

import (
	"fmt"

	"dloop/internal/ftl"
	"dloop/internal/sim"
)

// writeBuffer models the DRAM buffer manager of Fig. 1a: dirty logical
// pages are absorbed at DRAM speed and flushed to the FTL in the
// background. Write hits coalesce (a page rewritten while still buffered
// costs nothing on flash); read hits are served from DRAM. The paper's
// evaluation compares bare FTLs, so the buffer is opt-in
// (Config.BufferPages) and disabled everywhere the experiments run.
type writeBuffer struct {
	capacity int
	dramLat  sim.Duration

	dirty map[ftl.LPN]int // lpn -> lru sequence
	seq   int
	order []ftl.LPN // FIFO of insertions; stale entries skipped on flush

	hitsW, hitsR, flushes int64

	// resolve, when set, materializes a possibly-future FTL completion time
	// before the buffer does arithmetic on it (the sharded engine returns
	// future handles; see sharded.go). Nil on the sequential engine.
	resolve func(sim.Time) sim.Time
}

// DefaultDRAMLatency is the charge for a buffered page access: DRAM plus
// controller firmware time, vastly below any flash operation.
const DefaultDRAMLatency = 2 * sim.Microsecond

func newWriteBuffer(capacity int) *writeBuffer {
	return &writeBuffer{
		capacity: capacity,
		dramLat:  DefaultDRAMLatency,
		dirty:    make(map[ftl.LPN]int, capacity),
	}
}

// put absorbs a page write, flushing the oldest dirty page through the FTL
// first if the buffer is full. It returns the completion time of the host-
// visible part (the DRAM write, plus any synchronous eviction flush).
func (b *writeBuffer) put(f ftl.FTL, lpn ftl.LPN, at sim.Time) (sim.Time, error) {
	if _, ok := b.dirty[lpn]; ok {
		b.hitsW++
		b.touch(lpn)
		return at.Add(b.dramLat), nil
	}
	t := at
	if len(b.dirty) >= b.capacity {
		var err error
		t, err = b.evictOne(f, t)
		if err != nil {
			return 0, err
		}
		if b.resolve != nil {
			t = b.resolve(t)
		}
	}
	b.touch(lpn)
	return t.Add(b.dramLat), nil
}

func (b *writeBuffer) touch(lpn ftl.LPN) {
	b.seq++
	b.dirty[lpn] = b.seq
	b.order = append(b.order, lpn)
}

// evictOne flushes the least-recently-written dirty page.
func (b *writeBuffer) evictOne(f ftl.FTL, at sim.Time) (sim.Time, error) {
	for len(b.order) > 0 {
		lpn := b.order[0]
		seq := b.dirty[lpn]
		b.order = b.order[1:]
		if seqNow, ok := b.dirty[lpn]; !ok || seqNow != seq {
			continue // superseded entry; the newer one is later in order
		}
		delete(b.dirty, lpn)
		b.flushes++
		return f.WritePage(lpn, at)
	}
	return 0, fmt.Errorf("ssd: write buffer accounting inconsistent")
}

// readHit reports whether lpn is buffered; a hit is served at DRAM speed.
func (b *writeBuffer) readHit(lpn ftl.LPN) bool {
	_, ok := b.dirty[lpn]
	if ok {
		b.hitsR++
	}
	return ok
}

// flushAll drains every dirty page through the FTL (used by Drain and by
// tests to reach a consistent flash state).
func (b *writeBuffer) flushAll(f ftl.FTL, at sim.Time) (sim.Time, error) {
	last := at
	for len(b.dirty) > 0 {
		end, err := b.evictOne(f, at)
		if err != nil {
			return 0, err
		}
		if b.resolve != nil {
			end = b.resolve(end)
		}
		if end > last {
			last = end
		}
	}
	b.order = b.order[:0]
	return last, nil
}

// Len returns the number of dirty buffered pages.
func (b *writeBuffer) Len() int { return len(b.dirty) }

// bufferState is a deep copy of the buffer's contents, for checkpoint/fork.
type bufferState struct {
	dirty                 map[ftl.LPN]int
	seq                   int
	order                 []ftl.LPN
	hitsW, hitsR, flushes int64
}

func (b *writeBuffer) snapshot() *bufferState {
	s := &bufferState{
		dirty:   make(map[ftl.LPN]int, len(b.dirty)),
		seq:     b.seq,
		order:   append([]ftl.LPN(nil), b.order...),
		hitsW:   b.hitsW,
		hitsR:   b.hitsR,
		flushes: b.flushes,
	}
	for k, v := range b.dirty {
		s.dirty[k] = v
	}
	return s
}

func (b *writeBuffer) restore(s *bufferState) {
	b.dirty = make(map[ftl.LPN]int, len(s.dirty))
	for k, v := range s.dirty {
		b.dirty[k] = v
	}
	b.seq = s.seq
	b.order = append(b.order[:0], s.order...)
	b.hitsW = s.hitsW
	b.hitsR = s.hitsR
	b.flushes = s.flushes
}
