package ssd

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/sim"
	"dloop/internal/stats"
)

// This file is the on-disk form of Checkpoint: a versioned binary container
// (see internal/ckpt) holding the scheme name, the controller's ConfigDigest,
// the device geometry, and every state slab Snapshot captures. The encoded
// form round-trips bit-identically — a run forked from DecodeCheckpoint's
// result is exactly the run forked from the original in-memory checkpoint —
// which is what lets the warm-up cache in internal/expt substitute a file
// read for minutes of preconditioning.

// EncodeCheckpoint serializes a checkpoint taken from this controller into
// a self-validating container. The convenience form of AppendCheckpoint.
func (c *Controller) EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	w := ckpt.NewWriter()
	defer ckpt.PutWriter(w)
	data, err := c.AppendCheckpoint(w, cp)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// AppendCheckpoint encodes cp into w (which must come from ckpt.NewWriter)
// and seals the container. The returned bytes alias w: write them out before
// recycling the writer. Callers that persist many checkpoints use this form
// to reuse one writer buffer.
func (c *Controller) AppendCheckpoint(w *ckpt.Writer, cp *Checkpoint) ([]byte, error) {
	scheme := c.cfg.FTL
	w.String(scheme)
	d := ConfigDigest(c.cfg)
	copy(w.Raw(len(d)), d[:])
	encodeGeometry(w, c.Geometry())
	w.Bool(cp.fe != nil)
	if cp.fe != nil {
		w.U32(uint32(len(cp.fe.devs)))
		for i := range cp.fe.devs {
			flash.EncodeDeviceState(w, cp.fe.devs[i])
			if err := encodeFTLState(w, scheme, cp.fe.ftls[i]); err != nil {
				return nil, err
			}
			encodeShardAcc(w, &cp.fe.accs[i])
		}
	} else {
		flash.EncodeDeviceState(w, cp.dev)
		if err := encodeFTLState(w, scheme, cp.ftlState); err != nil {
			return nil, err
		}
	}
	stats.EncodeWelford(w, cp.resp)
	stats.EncodeWelford(w, cp.readResp)
	stats.EncodeWelford(w, cp.writeResp)
	stats.EncodeLatencyHist(w, cp.hist)
	stats.EncodeTimeSeries(w, cp.series)
	w.Bool(cp.buffer != nil)
	if cp.buffer != nil {
		encodeBufferState(w, cp.buffer)
	}
	w.I64(int64(cp.lastDone))
	w.I64(cp.served)
	w.I64(cp.pagesRead)
	w.I64(cp.pagesWrit)
	return w.Seal(), nil
}

// DecodeCheckpoint deserializes a container produced by EncodeCheckpoint on
// an identically configured controller. It validates the container (magic,
// version, checksum), the FTL scheme, the ConfigDigest, the geometry, and —
// for multi-queue controllers — the shard count, so feeding it a checkpoint
// from any other configuration fails with an error instead of corrupting
// state. The result shares nothing with data; the caller may recycle the
// buffer immediately.
func (c *Controller) DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r, err := ckpt.Open(data)
	if err != nil {
		return nil, err
	}
	scheme := r.String()
	var d [sha256.Size]byte
	copy(d[:], r.Raw(sha256.Size))
	geo := decodeGeometry(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if scheme != c.cfg.FTL {
		return nil, fmt.Errorf("ssd: checkpoint holds %s state, controller runs %s", scheme, c.cfg.FTL)
	}
	if d != ConfigDigest(c.cfg) {
		return nil, fmt.Errorf("ssd: checkpoint was taken under a different configuration")
	}
	if geo != c.Geometry() {
		return nil, fmt.Errorf("ssd: checkpoint geometry %v does not match device %v", geo, c.Geometry())
	}
	cp := &Checkpoint{}
	hasFE := r.Bool()
	if hasFE != (c.fe != nil) {
		return nil, fmt.Errorf("ssd: checkpoint front-end layout does not match controller")
	}
	if hasFE {
		n := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n != len(c.fe.shards) {
			return nil, fmt.Errorf("ssd: checkpoint has %d FTL shards, controller %d", n, len(c.fe.shards))
		}
		fe := &feCheckpoint{
			devs: make([]*flash.DeviceState, n),
			ftls: make([]any, n),
			accs: make([]shardAcc, n),
		}
		for i := 0; i < n; i++ {
			fe.devs[i] = flash.DecodeDeviceState(r, c.fe.shards[i].dev.Geometry())
			fe.ftls[i] = decodeFTLState(r, scheme)
			fe.accs[i] = decodeShardAcc(r)
		}
		cp.fe = fe
	} else {
		cp.dev = flash.DecodeDeviceState(r, c.dev.Geometry())
		cp.ftlState = decodeFTLState(r, scheme)
	}
	cp.resp = stats.DecodeWelford(r)
	cp.readResp = stats.DecodeWelford(r)
	cp.writeResp = stats.DecodeWelford(r)
	cp.hist = stats.DecodeLatencyHist(r)
	cp.series = stats.DecodeTimeSeries(r)
	if r.Bool() {
		cp.buffer = decodeBufferState(r)
	}
	cp.lastDone = sim.Time(r.I64())
	cp.served = r.I64()
	cp.pagesRead = r.I64()
	cp.pagesWrit = r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cp, nil
}

// encodeFTLState dispatches on the scheme name exactly as Build does, so
// every scheme a controller can run has a codec here.
func encodeFTLState(w *ckpt.Writer, scheme string, st any) error {
	switch scheme {
	case SchemeDLOOP:
		return dloop.EncodeState(w, st)
	case SchemeDFTL:
		return dftl.EncodeState(w, st)
	case SchemeFAST:
		return fast.EncodeState(w, st)
	case SchemeBAST:
		return bast.EncodeState(w, st)
	case SchemePureMap, SchemePureMapStriped:
		return pagemap.EncodeState(w, st)
	}
	return fmt.Errorf("ssd: no checkpoint codec for FTL %q", scheme)
}

func decodeFTLState(r *ckpt.Reader, scheme string) any {
	switch scheme {
	case SchemeDLOOP:
		return dloop.DecodeState(r)
	case SchemeDFTL:
		return dftl.DecodeState(r)
	case SchemeFAST:
		return fast.DecodeState(r)
	case SchemeBAST:
		return bast.DecodeState(r)
	case SchemePureMap, SchemePureMapStriped:
		return pagemap.DecodeState(r)
	}
	r.Failf("ssd: no checkpoint codec for FTL %q", scheme)
	return nil
}

func encodeGeometry(w *ckpt.Writer, g flash.Geometry) {
	w.Int(g.Channels)
	w.Int(g.PackagesPerChannel)
	w.Int(g.ChipsPerPackage)
	w.Int(g.DiesPerChip)
	w.Int(g.PlanesPerDie)
	w.Int(g.BlocksPerPlane)
	w.Int(g.PagesPerBlock)
	w.Int(g.PageSize)
}

func decodeGeometry(r *ckpt.Reader) flash.Geometry {
	return flash.Geometry{
		Channels:           r.Int(),
		PackagesPerChannel: r.Int(),
		ChipsPerPackage:    r.Int(),
		DiesPerChip:        r.Int(),
		PlanesPerDie:       r.Int(),
		BlocksPerPlane:     r.Int(),
		PagesPerBlock:      r.Int(),
		PageSize:           r.Int(),
	}
}

func encodeShardAcc(w *ckpt.Writer, a *shardAcc) {
	stats.EncodeWelford(w, a.resp)
	stats.EncodeWelford(w, a.readResp)
	stats.EncodeWelford(w, a.writeResp)
	stats.EncodeLatencyHist(w, a.hist)
	w.I64(int64(a.lastDone))
	w.I64(a.served)
}

func decodeShardAcc(r *ckpt.Reader) shardAcc {
	return shardAcc{
		resp:      stats.DecodeWelford(r),
		readResp:  stats.DecodeWelford(r),
		writeResp: stats.DecodeWelford(r),
		hist:      stats.DecodeLatencyHist(r),
		lastDone:  sim.Time(r.I64()),
		served:    r.I64(),
	}
}

// encodeBufferState writes the DRAM write buffer's state with the dirty map
// in sorted LPN order, so equal buffers encode identically.
func encodeBufferState(w *ckpt.Writer, b *bufferState) {
	keys := make([]ftl.LPN, 0, len(b.dirty))
	for k := range b.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.I64(int64(k))
		w.Int(b.dirty[k])
	}
	w.Int(b.seq)
	w.U32(uint32(len(b.order)))
	for _, l := range b.order {
		w.I64(int64(l))
	}
	w.I64(b.hitsW)
	w.I64(b.hitsR)
	w.I64(b.flushes)
}

func decodeBufferState(r *ckpt.Reader) *bufferState {
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	b := &bufferState{dirty: make(map[ftl.LPN]int, n)}
	for i := 0; i < n; i++ {
		k := ftl.LPN(r.I64())
		b.dirty[k] = r.Int()
	}
	b.seq = r.Int()
	no := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if no > 0 {
		b.order = make([]ftl.LPN, no)
		for i := range b.order {
			b.order[i] = ftl.LPN(r.I64())
		}
	}
	b.hitsW = r.I64()
	b.hitsR = r.I64()
	b.flushes = r.I64()
	return b
}
