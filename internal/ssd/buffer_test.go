package ssd

import (
	"testing"

	"dloop/internal/trace"
)

func buildBuffered(t *testing.T, pages int) *Controller {
	t.Helper()
	cfg := tinyConfig(SchemeDLOOP)
	cfg.BufferPages = pages
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBufferAbsorbsWritesAtDRAMSpeed(t *testing.T) {
	c := buildBuffered(t, 16)
	rt, err := c.Serve(trace.Request{Arrival: 0, LBN: 0, Sectors: 4, Op: trace.OpWrite})
	if err != nil {
		t.Fatal(err)
	}
	if rt != DefaultDRAMLatency {
		t.Fatalf("buffered write took %v, want %v", rt, DefaultDRAMLatency)
	}
	if got := c.Device().Stats().Writes(); got != 0 {
		t.Fatalf("flash saw %d writes while buffered", got)
	}
	dirty, hitsW, _, _ := c.BufferStats()
	if dirty != 1 || hitsW != 0 {
		t.Fatalf("buffer stats dirty=%d hitsW=%d", dirty, hitsW)
	}
}

func TestBufferCoalescesRewrites(t *testing.T) {
	c := buildBuffered(t, 16)
	for i := 0; i < 10; i++ {
		if _, err := c.Serve(trace.Request{Arrival: 0, LBN: 0, Sectors: 4, Op: trace.OpWrite}); err != nil {
			t.Fatal(err)
		}
	}
	dirty, hitsW, _, flushes := c.BufferStats()
	if dirty != 1 || hitsW != 9 || flushes != 0 {
		t.Fatalf("stats dirty=%d hitsW=%d flushes=%d, want 1/9/0", dirty, hitsW, flushes)
	}
	if got := c.Device().Stats().Writes(); got != 0 {
		t.Fatalf("coalesced rewrites still hit flash %d times", got)
	}
}

func TestBufferReadHit(t *testing.T) {
	c := buildBuffered(t, 16)
	if _, err := c.Serve(trace.Request{Arrival: 0, LBN: 0, Sectors: 4, Op: trace.OpWrite}); err != nil {
		t.Fatal(err)
	}
	rt, err := c.Serve(trace.Request{Arrival: 0, LBN: 0, Sectors: 4, Op: trace.OpRead})
	if err != nil {
		t.Fatal(err)
	}
	if rt != DefaultDRAMLatency {
		t.Fatalf("buffered read took %v, want DRAM latency", rt)
	}
	if got := c.Device().Stats().Reads(); got != 0 {
		t.Fatal("buffered read hit flash")
	}
}

func TestBufferEvictsWhenFull(t *testing.T) {
	c := buildBuffered(t, 4)
	sectorsPerPage := 4
	for i := 0; i < 6; i++ { // 6 distinct pages through a 4-page buffer
		lbn := int64(i * sectorsPerPage)
		if _, err := c.Serve(trace.Request{Arrival: 0, LBN: lbn, Sectors: 4, Op: trace.OpWrite}); err != nil {
			t.Fatal(err)
		}
	}
	dirty, _, _, flushes := c.BufferStats()
	if dirty != 4 || flushes != 2 {
		t.Fatalf("dirty=%d flushes=%d, want 4/2", dirty, flushes)
	}
	// The two oldest pages reached flash, in order.
	if got := c.Device().Stats().Writes(); got != 2 {
		t.Fatalf("flash writes = %d, want 2", got)
	}
}

func TestBufferDrain(t *testing.T) {
	c := buildBuffered(t, 16)
	for i := 0; i < 5; i++ {
		if _, err := c.Serve(trace.Request{Arrival: 0, LBN: int64(i * 4), Sectors: 4, Op: trace.OpWrite}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	dirty, _, _, _ := c.BufferStats()
	if dirty != 0 {
		t.Fatalf("dirty=%d after drain", dirty)
	}
	if got := c.Device().Stats().Writes(); got != 5 {
		t.Fatalf("flash writes = %d, want 5", got)
	}
	// All five pages now readable from flash.
	for i := 0; i < 5; i++ {
		rt, err := c.Serve(trace.Request{Arrival: 0, LBN: int64(i * 4), Sectors: 4, Op: trace.OpRead})
		if err != nil {
			t.Fatal(err)
		}
		if rt <= DefaultDRAMLatency {
			t.Fatal("post-drain read should hit flash")
		}
	}
}

func TestBufferedEndToEndConsistency(t *testing.T) {
	cfg := tinyConfig(SchemeDLOOP)
	cfg.BufferPages = 32
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preconditionTiny(t, c)
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 3000, 21))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	checkMappingConsistency(t, c)
	_, hitsW, hitsR, flushes := c.BufferStats()
	if hitsW == 0 || flushes == 0 {
		t.Fatalf("buffer never exercised: hitsW=%d hitsR=%d flushes=%d", hitsW, hitsR, flushes)
	}
}

func TestDrainWithoutBufferIsNoop(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	if end, err := c.Drain(42); err != nil || end != 42 {
		t.Fatalf("Drain: %v %v", end, err)
	}
}
