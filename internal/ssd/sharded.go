package ssd

import (
	"fmt"

	"dloop/internal/ftl"
	"dloop/internal/sim"
	"dloop/internal/trace"
)

// Sharded serving: with Config.Shards > 1 the device defers all resource-
// timeline math to per-channel workers (see flash/sharded.go) and returns
// future handles instead of completion times. The controller threads those
// handles through the exact page loop Serve runs, parks one completion
// record per request, and resolves them — in arrival order, against the
// same Welford/histogram accumulators — at epoch barriers (Flush). The FTL,
// GC engine, and mapper never look inside the times they chain, so every
// decision they make is byte-identical to the sequential engine's; the only
// thing that moves off this goroutine is arithmetic whose results are folded
// back deterministically.

// flushEvery bounds how many requests Run pipelines between epoch barriers.
// Larger epochs amortize the barrier; the slab and pending slices grow with
// the epoch, so keep it modest.
const flushEvery = 1024

// preconditionEpoch bounds the future slab during the (millions-of-writes)
// preconditioning chain.
const preconditionEpoch = 1 << 16

// pendingDone is one request whose response time is deferred: its page
// completion times live in pendEnds[off:off+n].
type pendingDone struct {
	arrival sim.Time
	off     int32
	n       int32
	read    bool
}

// resolveShards maps a Config.Shards value to an effective shard count.
// AutoShards engages only on shapes of at least autoShardMinChannels
// channels — below that the worker hand-off costs more than the
// parallelism recovers (the 4-channel bench shapes regressed), so auto
// keeps the sequential engine there.
func resolveShards(v, channels int) int {
	if v == AutoShards {
		if channels < autoShardMinChannels {
			return 1
		}
		return channels
	}
	if v <= 1 {
		return 1
	}
	if v > channels {
		return channels
	}
	return v
}

// applySharding enables the configured shard count on the device. Recorders
// require the sequential engine, so attachment wins over configuration.
func (c *Controller) applySharding() {
	n := resolveShards(c.cfg.Shards, c.dev.Geometry().Channels)
	if n > 1 && c.rec == nil {
		c.dev.EnableSharding(n)
		if c.buffer != nil {
			c.buffer.resolve = c.dev.ResolveTime
		}
	}
	c.par = c.dev.ShardCount() > 1
}

// Shards returns the number of timing shards in effect (1 = sequential). On
// a front-end controller it reports one sub-device's count (all match).
func (c *Controller) Shards() int {
	if c.fe != nil {
		return c.fe.shards[0].dev.ShardCount()
	}
	return c.dev.ShardCount()
}

// Close stops the sharded engine's worker goroutines after a final barrier.
// Harmless on a sequential controller; the controller remains usable (it
// falls back to the sequential engine).
func (c *Controller) Close() {
	if c.fe != nil {
		c.fe.flush(c)
		c.fe.stop()
		for _, sh := range c.fe.shards {
			sh.dev.DisableSharding()
		}
		return
	}
	if c.par {
		c.Flush()
	}
	c.dev.DisableSharding()
	if c.buffer != nil {
		c.buffer.resolve = nil
	}
	c.par = false
}

// Enqueue serves one request on the pipelined path: FTL decisions happen
// now, timing resolves at the next epoch fold. Epoch handoffs are automatic
// — every Config.EpochPages parked pages on the multi-queue engine, every
// flushEvery requests on the timing engine, and implicitly in every
// statistics reader — so callers may Enqueue indefinitely. On a sequential
// controller it is Serve with the response time discarded.
func (c *Controller) Enqueue(r trace.Request) error {
	if c.fe != nil {
		if err := c.fe.enqueue(c, r, true); err != nil {
			return err
		}
		c.fe.maybeAdvance(c)
		return nil
	}
	if !c.par {
		_, err := c.Serve(r)
		if err == nil && c.pulse != nil {
			c.pulse()
		}
		return err
	}
	if err := c.serveDeferred(r); err != nil {
		return err
	}
	if len(c.pend) >= flushEvery {
		c.Flush()
	}
	return nil
}

// serveDeferred is Serve's page loop with completion times parked for the
// next Flush instead of resolved inline. Every FTL call, counter increment,
// and branch matches Serve exactly.
func (c *Controller) serveDeferred(r trace.Request) error {
	if err := r.Validate(); err != nil {
		return err
	}
	first, last := c.pageSpan(r)
	if err := ftl.CheckLPN(last, c.f.Capacity()); err != nil {
		return fmt.Errorf("ssd: request [%d,%d) exceeds device: %w", r.LBN, r.End(), err)
	}
	off := len(c.pendEnds)
	for lpn := first; lpn <= last; lpn++ {
		var end sim.Time
		var err error
		switch {
		case r.Op == trace.OpRead && c.buffer != nil && c.buffer.readHit(lpn):
			end = r.Arrival.Add(c.buffer.dramLat)
			c.pagesRead++
		case r.Op == trace.OpRead:
			end, err = c.f.ReadPage(lpn, r.Arrival)
			c.pagesRead++
		case c.buffer != nil:
			end, err = c.buffer.put(c.f, lpn, r.Arrival)
			c.pagesWrit++
		default:
			end, err = c.f.WritePage(lpn, r.Arrival)
			c.pagesWrit++
		}
		if err != nil {
			c.pendEnds = c.pendEnds[:off]
			return err
		}
		c.pendEnds = append(c.pendEnds, end)
	}
	c.pend = append(c.pend, pendingDone{
		arrival: r.Arrival,
		off:     int32(off),
		n:       int32(len(c.pendEnds) - off),
		read:    r.Op == trace.OpRead,
	})
	return nil
}

// Flush is the epoch barrier: wait for every shard to finish the timing work
// issued so far, then fold each pending request into the response-time
// accumulators in arrival order — the same order, and therefore the same
// floating-point sequence, as the sequential engine. Afterwards the future
// slab is recycled. No-op on a sequential controller.
func (c *Controller) Flush() {
	if c.fe != nil {
		c.fe.flush(c)
		if c.pulse != nil {
			c.pulse()
		}
		return
	}
	if !c.par {
		return
	}
	c.dev.SyncTiming()
	for _, p := range c.pend {
		done := p.arrival
		for _, t := range c.pendEnds[p.off : p.off+p.n] {
			v := c.dev.ResolveTime(t)
			if v > done {
				done = v
			}
		}
		rt := done.Sub(p.arrival)
		ms := rt.Milliseconds()
		c.resp.Add(ms)
		if p.read {
			c.readResp.Add(ms)
		} else {
			c.writeResp.Add(ms)
		}
		c.hist.Add(rt)
		if c.series != nil {
			c.series.Add(p.arrival, ms)
		}
		if done > c.lastDone {
			c.lastDone = done
		}
		c.served++
		c.lastRT = rt
		if c.latHook != nil {
			c.latHook(rt)
		}
	}
	c.pend = c.pend[:0]
	c.pendEnds = c.pendEnds[:0]
	c.dev.ResetTimingEpoch()
	if c.pulse != nil {
		c.pulse()
	}
}

// discardPending drops deferred completions without folding them (used when
// the accumulators are about to be reset or overwritten anyway) and recycles
// the slab.
func (c *Controller) discardPending() {
	if c.fe != nil {
		c.fe.discard()
		return
	}
	if !c.par {
		return
	}
	c.dev.SyncTiming()
	c.pend = c.pend[:0]
	c.pendEnds = c.pendEnds[:0]
	c.dev.ResetTimingEpoch()
}
