package ssd

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dloop/internal/ckpt"
	"dloop/internal/sim"
	"dloop/internal/trace"
)

// TestEncodedCheckpointRoundTrip is the codec acceptance test: for every FTL
// scheme, a warm-up checkpoint encoded to bytes and decoded into a separately
// built controller (a fresh process stand-in) must fork a run bit-identical
// to an uninterrupted fresh run — and re-encoding the decoded checkpoint must
// reproduce the original container byte for byte.
func TestEncodedCheckpointRoundTrip(t *testing.T) {
	schemes := []string{SchemeDLOOP, SchemeDFTL, SchemeFAST, SchemeBAST,
		SchemePureMap, SchemePureMapStriped}
	for _, scheme := range schemes {
		t.Run(scheme, func(t *testing.T) {
			fresh := buildTinyShards(t, scheme, 0)
			preconditionTiny(t, fresh)
			w := tinyWorkload(t, fresh, 1500, 31)
			want, err := fresh.Run(trace.NewSliceReader(w))
			if err != nil {
				t.Fatal(err)
			}

			donor := buildTinyShards(t, scheme, 0)
			preconditionTiny(t, donor)
			cp, err := donor.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			data, err := donor.EncodeCheckpoint(cp)
			if err != nil {
				t.Fatal(err)
			}
			again, err := donor.EncodeCheckpoint(cp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("encoding the same checkpoint twice produced different bytes")
			}

			rec := buildTinyShards(t, scheme, 0)
			cp2, err := rec.DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			reenc, err := rec.EncodeCheckpoint(cp2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, reenc) {
				t.Fatal("decode(encode(cp)) re-encoded to different bytes")
			}
			if err := rec.Restore(cp2); err != nil {
				t.Fatal(err)
			}
			got, err := rec.Run(trace.NewSliceReader(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("run forked from decoded checkpoint differs:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestEncodedCheckpointRoundTripMQ covers the multi-queue layout: per-shard
// device states, FTL states, and accumulators all round-trip through bytes.
func TestEncodedCheckpointRoundTripMQ(t *testing.T) {
	for _, scheme := range []string{SchemeDLOOP, SchemeFAST} {
		t.Run(scheme, func(t *testing.T) {
			cfg := mqConfig(scheme, tiny8Geometry(), 2, "")
			fresh := buildMQ(t, cfg)
			preconditionTiny(t, fresh)
			w := tinyWorkload(t, fresh, 1500, 33)
			want, err := fresh.Run(trace.NewSliceReader(w))
			if err != nil {
				t.Fatal(err)
			}

			donor := buildMQ(t, cfg)
			preconditionTiny(t, donor)
			cp, err := donor.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			data, err := donor.EncodeCheckpoint(cp)
			if err != nil {
				t.Fatal(err)
			}
			rec := buildMQ(t, cfg)
			cp2, err := rec.DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Restore(cp2); err != nil {
				t.Fatal(err)
			}
			got, err := rec.Run(trace.NewSliceReader(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("MQ run forked from decoded checkpoint differs:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestEncodedCheckpointWithBufferAndSeries reaches the controller state the
// plain round trip does not: the DRAM write buffer and the time series.
func TestEncodedCheckpointWithBufferAndSeries(t *testing.T) {
	build := func() *Controller {
		cfg := tinyConfig(SchemeDLOOP)
		cfg.BufferPages = 16
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.EnableTimeSeries(1 * sim.Second); err != nil {
			t.Fatal(err)
		}
		preconditionTiny(t, c)
		return c
	}
	donor := build()
	w := tinyWorkload(t, donor, 1500, 35)
	cp, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := donor.EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := donor.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	rec := build()
	cp2, err := rec.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	got, err := rec.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("buffered run forked from decoded checkpoint differs:\n got %+v\nwant %+v", got, want)
	}
	if rec.TimeSeries().Buckets() != donor.TimeSeries().Buckets() {
		t.Fatalf("series buckets %d, want %d", rec.TimeSeries().Buckets(), donor.TimeSeries().Buckets())
	}
}

// TestDecodeCheckpointRejects feeds a valid container to the wrong
// controllers and damaged containers to the right one; every case must fail
// loudly instead of restoring corrupt state.
func TestDecodeCheckpointRejects(t *testing.T) {
	donor := buildTinyShards(t, SchemeDLOOP, 0)
	preconditionTiny(t, donor)
	cp, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := donor.EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}

	wrongScheme := buildTinyShards(t, SchemeDFTL, 0)
	if _, err := wrongScheme.DecodeCheckpoint(data); err == nil ||
		!strings.Contains(err.Error(), "controller runs") {
		t.Fatalf("foreign-scheme checkpoint accepted: %v", err)
	}

	cfg := tinyConfig(SchemeDLOOP)
	cfg.CMTEntries = 128 // same scheme and geometry, different configuration
	wrongCfg, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wrongCfg.Close)
	if _, err := wrongCfg.DecodeCheckpoint(data); err == nil ||
		!strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("foreign-config checkpoint accepted: %v", err)
	}

	if _, err := donor.DecodeCheckpoint(data[:len(data)-16]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := donor.DecodeCheckpoint(flipped); err == nil {
		t.Fatal("bit-flipped checkpoint accepted")
	}
	bumped := append([]byte(nil), data...)
	bumped[4]++ // container format version
	if _, err := donor.DecodeCheckpoint(bumped); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version checkpoint accepted: %v", err)
	}
	// The original must still decode after all that.
	if _, err := donor.DecodeCheckpoint(data); err != nil {
		t.Fatal(err)
	}
}

// benchCheckpoint builds one preconditioned paper-shape controller and its
// snapshot for the codec benchmarks.
func benchCheckpoint(b *testing.B) (*Controller, *Checkpoint) {
	b.Helper()
	cfg := tinyConfig(SchemeDLOOP)
	c, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	capBytes := int64(c.Capacity()) * int64(c.Geometry().PageSize)
	if err := c.PreconditionBytes(capBytes * 3 / 4); err != nil {
		b.Fatal(err)
	}
	cp, err := c.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return c, cp
}

func BenchmarkCheckpointEncode(b *testing.B) {
	c, cp := benchCheckpoint(b)
	data, err := c.EncodeCheckpoint(cp)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ckpt.NewWriter()
		if _, err := c.AppendCheckpoint(w, cp); err != nil {
			b.Fatal(err)
		}
		ckpt.PutWriter(w)
	}
}

func BenchmarkCheckpointDecode(b *testing.B) {
	c, cp := benchCheckpoint(b)
	data, err := c.EncodeCheckpoint(cp)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeCheckpoint(data); err != nil {
			b.Fatal(err)
		}
	}
}
