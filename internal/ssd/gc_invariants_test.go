package ssd

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/trace"
)

// TestGCInvariants is the cross-scheme GC property test: every scheme under
// every victim policy must preserve the engine's relocation invariants on a
// GC-heavy workload.
//
//  1. Valid-page conservation: relocations never lose or duplicate data. The
//     set of valid pages on flash and the set of mapped lpns are in exact
//     bijection (checked in both directions).
//  2. No page is programmed twice between erases: the flash device hard-errors
//     on any program to a non-free page, so the run completing is itself the
//     proof; the per-block bookkeeping is re-derived from page states on top.
//  3. Parity waste only arises from mismatched-parity copy-back moves: schemes
//     that relocate exclusively through the buses (external reads + writes)
//     must never waste a page, and any waste reported implies copy-back moves
//     happened.
func TestGCInvariants(t *testing.T) {
	schemes := []string{SchemeDLOOP, SchemeDFTL, SchemeFAST, SchemeBAST, SchemePureMap, SchemePureMapStriped}
	for _, scheme := range schemes {
		for _, pol := range []string{"", "greedy", "costbenefit", "windowed", "fifo"} {
			for _, mode := range shardModes {
				name := scheme + "/default/" + mode.name
				if pol != "" {
					name = scheme + "/" + pol + "/" + mode.name
				}
				t.Run(name, func(t *testing.T) {
					cfg := tinyConfig(scheme)
					cfg.GCPolicy = pol
					cfg.Shards = mode.shards
					c, err := Build(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					preconditionTiny(t, c)
					res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2500, 13)))
					if err != nil {
						t.Fatal(err)
					}
					if res.Erases == 0 {
						t.Fatal("workload never triggered GC; the run proves nothing")
					}
					checkMappingConsistency(t, c) // lpn -> ppn direction: unique, valid, right tag
					checkValidPagesMapped(t, c)   // ppn -> lpn direction: no orphaned valid data
					checkBlockBookkeeping(t, c)
					if res.WastedPages > 0 && res.GCCopyBacks == 0 {
						t.Errorf("%d pages wasted with zero copy-back moves; the parity rule binds only copy-back", res.WastedPages)
					}
					switch scheme {
					case SchemeDFTL, SchemeFAST, SchemeBAST, SchemePureMap:
						// External-move schemes: parity never constrains the buses.
						if res.WastedPages != 0 {
							t.Errorf("external-move scheme wasted %d pages", res.WastedPages)
						}
					}
				})
			}
		}
	}
}

// checkValidPagesMapped scans the whole device and asserts every valid page
// is reachable: its tag is a live lpn whose current mapping is exactly this
// page. Together with checkMappingConsistency this proves the valid-page set
// and the mapped-lpn set are in bijection — GC moved pages without losing or
// duplicating any.
func checkValidPagesMapped(t *testing.T, c *Controller) {
	t.Helper()
	dev := c.Device()
	geo := dev.Geometry()
	for plane := 0; plane < geo.Planes(); plane++ {
		for block := 0; block < geo.BlocksPerPlane; block++ {
			first := geo.FirstPPN(flash.PlaneBlock{Plane: plane, Block: block})
			for p := 0; p < geo.PagesPerBlock; p++ {
				ppn := first + flash.PPN(p)
				if dev.PageState(ppn) != flash.PageValid {
					continue
				}
				tag := dev.PageLPN(ppn)
				if tag < 0 || tag >= int64(c.FTL().Capacity()) {
					// Translation pages (DFTL/DLOOP GTD) carry encoded tags;
					// they are owned by the mapper, not the data path.
					continue
				}
				if got := lookupAny(t, c, ftl.LPN(tag)); got != ppn {
					t.Fatalf("valid page %d holds lpn %d, but the FTL maps it to %d", ppn, tag, got)
				}
			}
		}
	}
}

// checkBlockBookkeeping re-derives each block's counters from raw page states
// and compares them to the device's incremental bookkeeping.
func checkBlockBookkeeping(t *testing.T, c *Controller) {
	t.Helper()
	dev := c.Device()
	geo := dev.Geometry()
	for plane := 0; plane < geo.Planes(); plane++ {
		for block := 0; block < geo.BlocksPerPlane; block++ {
			pb := flash.PlaneBlock{Plane: plane, Block: block}
			info := dev.Block(pb)
			first := geo.FirstPPN(pb)
			var valid, invalid, nextWrite int
			for p := 0; p < geo.PagesPerBlock; p++ {
				switch dev.PageState(first + flash.PPN(p)) {
				case flash.PageValid:
					valid++
					nextWrite = p + 1
				case flash.PageInvalid:
					invalid++
					nextWrite = p + 1
				}
			}
			if valid != info.Valid || invalid != info.Invalid || valid+invalid != info.Written {
				t.Fatalf("block %v bookkeeping %+v, recount valid=%d invalid=%d", pb, info, valid, invalid)
			}
			if nextWrite != info.NextWrite {
				t.Fatalf("block %v NextWrite %d, recount %d", pb, info.NextWrite, nextWrite)
			}
		}
	}
}
