package ssd

import (
	"reflect"
	"testing"

	"dloop/internal/ftl"
	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/trace"
)

var allSchemes = []string{SchemeDLOOP, SchemeDFTL, SchemeFAST, SchemeBAST,
	SchemePureMap, SchemePureMapStriped}

// shardModes enumerates the engines the cross-cutting suites run under: the
// sequential engine and the sharded one (explicitly two workers — AutoShards
// keeps the sequential engine on shapes under 8 channels).
var shardModes = []struct {
	name   string
	shards int
}{
	{"seq", 0},
	{"sharded", 2},
}

// buildTinyShards is buildTiny with an explicit shard mode; the worker
// goroutines are stopped when the test finishes.
func buildTinyShards(t *testing.T, scheme string, shards int) *Controller {
	t.Helper()
	cfg := tinyConfig(scheme)
	cfg.Shards = shards
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestShardedDifferential is the randomized differential test of the sharded
// engine: for every scheme and several workload seeds, a sequential and a
// sharded controller replay the same trace; the per-request latency streams
// must match element-for-element, the Results bit-for-bit, the mapping
// tables entry-for-entry, and the device timelines interval-for-interval.
func TestShardedDifferential(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			for _, seed := range []int64{1, 37, 101} {
				seq := buildTinyShards(t, scheme, 0)
				par := buildTinyShards(t, scheme, 2)
				if par.Shards() != 2 {
					t.Fatalf("shards = %d on the 2-channel tiny device", par.Shards())
				}
				var seqLat, parLat []sim.Duration
				seq.SetLatencyHook(func(d sim.Duration) { seqLat = append(seqLat, d) })
				par.SetLatencyHook(func(d sim.Duration) { parLat = append(parLat, d) })

				preconditionTiny(t, seq)
				preconditionTiny(t, par)
				w := tinyWorkload(t, seq, 2500, seed)

				want, err := seq.Run(trace.NewSliceReader(w))
				if err != nil {
					t.Fatal(err)
				}
				got, err := par.Run(trace.NewSliceReader(w))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: Results differ\nseq: %+v\npar: %+v", seed, want, got)
				}
				if len(seqLat) != len(parLat) {
					t.Fatalf("seed %d: %d vs %d latency samples", seed, len(seqLat), len(parLat))
				}
				for i := range seqLat {
					if seqLat[i] != parLat[i] {
						t.Fatalf("seed %d request %d: latency %v (seq) vs %v (sharded)",
							seed, i, seqLat[i], parLat[i])
					}
				}
				for lpn := ftl.LPN(0); lpn < seq.FTL().Capacity(); lpn++ {
					if a, b := lookupAny(t, seq, lpn), lookupAny(t, par, lpn); a != b {
						t.Fatalf("seed %d: lpn %d maps to %d (seq) vs %d (sharded)", seed, lpn, a, b)
					}
				}
				if !reflect.DeepEqual(seq.Device().Snapshot(), par.Device().Snapshot()) {
					t.Fatalf("seed %d: device state (timelines/stats) diverged", seed)
				}
			}
		})
	}
}

// TestShardedServePath covers the synchronous Serve API on a sharded
// controller: every call barriers, so the returned response times must match
// the sequential engine's call for call.
func TestShardedServePath(t *testing.T) {
	seq := buildTinyShards(t, SchemeDLOOP, 0)
	par := buildTinyShards(t, SchemeDLOOP, 2)
	preconditionTiny(t, seq)
	preconditionTiny(t, par)
	for i, r := range tinyWorkload(t, seq, 800, 5) {
		a, err := seq.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("request %d: rt %v (seq) vs %v (sharded)", i, a, b)
		}
	}
	if !reflect.DeepEqual(seq.Result(), par.Result()) {
		t.Fatal("results diverged on the Serve path")
	}
}

// TestShardedWithBufferAndDrain runs the DRAM write buffer on both engines:
// buffered writes chain evict flushes into future handles, and Drain's final
// flush resolves them, so both the response times and the drained end time
// must agree.
func TestShardedWithBufferAndDrain(t *testing.T) {
	build := func(shards int) *Controller {
		cfg := tinyConfig(SchemeDLOOP)
		cfg.BufferPages = 16
		cfg.Shards = shards
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		preconditionTiny(t, c)
		return c
	}
	seq := build(0)
	par := build(2)
	w := tinyWorkload(t, seq, 2000, 17)
	want, err := seq.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("buffered results differ\nseq: %+v\npar: %+v", want, got)
	}
	a, err := seq.Drain(seq.lastDone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Drain(par.lastDone)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("drain end %v (seq) vs %v (sharded)", a, b)
	}
}

// TestShardedRecorderForcesSequential checks the observability contract:
// attaching a recorder drops a sharded controller back to the ordered
// sequential engine, and detaching it restores the configured sharding.
func TestShardedRecorderForcesSequential(t *testing.T) {
	c := buildTinyShards(t, SchemeDLOOP, 2)
	preconditionTiny(t, c)
	if c.Shards() != 2 {
		t.Fatalf("shards = %d before recorder", c.Shards())
	}
	c.SetRecorder(obs.NewCollector(c.ObsOptions()))
	if c.Shards() != 1 {
		t.Fatalf("shards = %d with recorder attached, want 1", c.Shards())
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 300, 3))); err != nil {
		t.Fatal(err)
	}
	c.SetRecorder(nil)
	if c.Shards() != 2 {
		t.Fatalf("shards = %d after detaching recorder, want 2", c.Shards())
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 300, 4))); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSteadyStateAllocFree asserts the sharded serving path inherits
// the hot loop's zero-allocation guarantee with observability disabled: once
// rings, slab chunks, and pending slices reach their high-water marks,
// pipelined serving plus epoch flushes allocate nothing per request. The
// batch is read-only so garbage collection (which allocates on its own,
// identically on both engines) stays out of the measured window.
func TestShardedSteadyStateAllocFree(t *testing.T) {
	c := buildTinyShards(t, SchemeDLOOP, 2)
	preconditionTiny(t, c)
	reqs := tinyWorkload(t, c, 2000, 29)
	for i := range reqs {
		reqs[i].Op = trace.OpRead
	}
	i := 0
	serveBatch := func() {
		for n := 0; n < 100; n++ {
			if err := c.Enqueue(reqs[i%len(reqs)]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		c.Flush()
	}
	serveBatch() // reach steady state: slab chunks, rings, pending slices
	serveBatch()
	if avg := testing.AllocsPerRun(10, serveBatch); avg > 0 {
		t.Fatalf("sharded serve path allocates %.1f times per 100-request epoch, want 0", avg)
	}
}

// TestShardsConfigResolution pins the -shards contract: 0/1 sequential,
// explicit values clamped to the channel count, and AutoShards engaging one
// worker per channel only on shapes of at least 8 channels (below that it
// keeps the sequential engine, which benchmarks faster).
func TestShardsConfigResolution(t *testing.T) {
	for _, tc := range []struct {
		shards int
		want   int
	}{
		{0, 1}, {1, 1}, {2, 2}, {8, 2}, {AutoShards, 1},
	} {
		cfg := tinyConfig(SchemeDLOOP)
		cfg.Shards = tc.shards
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Shards(); got != tc.want {
			t.Errorf("Shards=%d resolved to %d workers, want %d (2 channels)", tc.shards, got, tc.want)
		}
		c.Close()
	}
	for _, tc := range []struct {
		channels int
		want     int
	}{
		{4, 1}, {8, 8},
	} {
		if got := resolveShards(AutoShards, tc.channels); got != tc.want {
			t.Errorf("resolveShards(AutoShards, %d) = %d, want %d", tc.channels, got, tc.want)
		}
	}
}
