package ssd

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/trace"
)

// tiny8Geometry is the multi-queue suite's wider shape: 8 channels so the
// front end can run 2, 4, or 8 FTL shards with a whole number of channels
// each. 16 planes, 24 blocks/plane, 8 pages/block, 2 KB pages.
func tiny8Geometry() flash.Geometry {
	return flash.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		ChipsPerPackage:    1,
		DiesPerChip:        1,
		PlanesPerDie:       2,
		BlocksPerPlane:     24,
		PagesPerBlock:      8,
		PageSize:           2048,
	}
}

func mqConfig(scheme string, geo flash.Geometry, ftlShards int, merge string) Config {
	g := geo
	return Config{
		FTL:        scheme,
		Geometry:   &g,
		ExtraPct:   0.25,
		CMTEntries: 64,
		FTLShards:  ftlShards,
		Merge:      merge,
	}
}

func buildMQ(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// lookupMQ resolves one logical page through whichever FTL shard owns it.
// The returned PPN is shard-local; comparisons are meaningful between
// controllers with the same shard count (or against InvalidPPN).
func lookupMQ(t *testing.T, c *Controller, lpn ftl.LPN) flash.PPN {
	t.Helper()
	s, local := c.ShardOfLPN(lpn)
	switch f := c.ShardFTL(s).(type) {
	case *dloop.DLOOP:
		return f.Lookup(local)
	case *dftl.DFTL:
		return f.Lookup(local)
	case *fast.FAST:
		return f.Lookup(local)
	case *bast.BAST:
		return f.Lookup(local)
	case *pagemap.PureMap:
		return f.Lookup(local)
	}
	t.Fatal("unknown FTL type")
	return flash.InvalidPPN
}

func closeEnough(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// stripWelfordFloats zeroes the fields relaxed merge folds in a different
// floating-point order (running means/variances). Everything else — counts,
// histograms, maxima, device counters — must merge exactly in both modes.
func stripWelfordFloats(r Result) Result {
	r.MeanRespMs, r.StdRespMs, r.ReadMeanMs, r.WriteMeanMs = 0, 0, 0, 0
	return r
}

// TestMQDifferential is the randomized differential suite for the multi-queue
// front end: for every scheme, shard counts 2/4/8 across two channel shapes,
// both merge modes, and (on the widest shape) the timing engine layered
// underneath, a concurrently executing front end replays the same trace as a
// serially executing one with the identical shard layout. Deterministic merge
// must reproduce the serial baseline bit for bit — Results, per-request
// latency streams, mapping tables, and per-shard device states; relaxed merge
// must match everything except the Welford running floats, which it may
// re-associate but not change materially.
func TestMQDifferential(t *testing.T) {
	shapes := []struct {
		name   string
		geo    flash.Geometry
		shards int
		timing int // Config.Shards layered under each shard
	}{
		{"2ch-2shard", tinyGeometry(), 2, 0},
		{"8ch-4shard", tiny8Geometry(), 4, 0},
		{"8ch-8shard", tiny8Geometry(), 8, 0},
		{"8ch-4shard-timing", tiny8Geometry(), 4, 2},
	}
	for _, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			for _, sp := range shapes {
				for _, merge := range []string{MergeDeterministic, MergeRelaxed} {
					t.Run(sp.name+"/"+merge, func(t *testing.T) {
						cfg := mqConfig(scheme, sp.geo, sp.shards, merge)
						cfg.Shards = sp.timing
						ser := buildMQ(t, cfg)
						ser.fe.flush(ser)
						ser.fe.serial = true // in-order baseline, same shard layout
						par := buildMQ(t, cfg)
						if got := par.FTLShards(); got != sp.shards {
							t.Fatalf("FTLShards = %d, want %d", got, sp.shards)
						}
						det := merge == MergeDeterministic
						var serLat, parLat []sim.Duration
						if det {
							ser.SetLatencyHook(func(d sim.Duration) { serLat = append(serLat, d) })
							par.SetLatencyHook(func(d sim.Duration) { parLat = append(parLat, d) })
						}
						preconditionTiny(t, ser)
						preconditionTiny(t, par)
						w := tinyWorkload(t, ser, 1600, 37)
						want, err := ser.Run(trace.NewSliceReader(w))
						if err != nil {
							t.Fatal(err)
						}
						got, err := par.Run(trace.NewSliceReader(w))
						if err != nil {
							t.Fatal(err)
						}
						if det {
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("Results differ\nserial:     %+v\nconcurrent: %+v", want, got)
							}
							if !reflect.DeepEqual(serLat, parLat) {
								t.Fatalf("latency streams differ: %d vs %d samples", len(serLat), len(parLat))
							}
						} else {
							if !reflect.DeepEqual(stripWelfordFloats(got), stripWelfordFloats(want)) {
								t.Fatalf("non-float Results differ\nserial:     %+v\nconcurrent: %+v", want, got)
							}
							for _, f := range [][2]float64{
								{got.MeanRespMs, want.MeanRespMs},
								{got.StdRespMs, want.StdRespMs},
								{got.ReadMeanMs, want.ReadMeanMs},
								{got.WriteMeanMs, want.WriteMeanMs},
							} {
								if !closeEnough(f[0], f[1]) {
									t.Fatalf("relaxed merge float drifted: %v vs %v\nserial:     %+v\nconcurrent: %+v",
										f[0], f[1], want, got)
								}
							}
						}
						for lpn := ftl.LPN(0); lpn < ser.Capacity(); lpn++ {
							if a, b := lookupMQ(t, ser, lpn), lookupMQ(t, par, lpn); a != b {
								t.Fatalf("lpn %d maps to %d (serial) vs %d (concurrent)", lpn, a, b)
							}
						}
						for i := 0; i < sp.shards; i++ {
							if !reflect.DeepEqual(ser.ShardDevice(i).Snapshot(), par.ShardDevice(i).Snapshot()) {
								t.Fatalf("shard %d device state diverged", i)
							}
						}
					})
				}
			}
		})
	}
}

// TestMQDeterministicRepeat pins run-to-run determinism of the concurrent
// front end itself: two fresh controllers with the same configuration and
// workload produce bit-identical Results in both merge modes, regardless of
// how the scheduler interleaved the shard workers.
func TestMQDeterministicRepeat(t *testing.T) {
	for _, merge := range []string{MergeDeterministic, MergeRelaxed} {
		t.Run(merge, func(t *testing.T) {
			run := func() Result {
				c := buildMQ(t, mqConfig(SchemeDLOOP, tiny8Geometry(), 8, merge))
				preconditionTiny(t, c)
				res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 7)))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("repeat run diverged\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}

// TestMQEpochSweepDifferential is the pipeline half of the differential
// suite: epoch length and pipeline depth are pure scheduling knobs, so
// sweeping EpochPages across the degenerate single-page epoch, the
// off-by-one values around the doorbell batch, and a large epoch — each at
// pipeline depth 1 (stop-the-world folds) and 2 (double-buffered folds) —
// must reproduce the serial baseline's Results and per-request latency
// stream bit for bit for every scheme. Folding is per-request in arrival
// order no matter where the epoch cuts land, which is exactly the property
// this test pins.
func TestMQEpochSweepDifferential(t *testing.T) {
	for si, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			seed := int64(41 + si*13) // a different workload per scheme
			base := mqConfig(scheme, tiny8Geometry(), 4, MergeDeterministic)
			ser := buildMQ(t, base)
			ser.fe.flush(ser)
			ser.fe.serial = true
			var wantLat []sim.Duration
			ser.SetLatencyHook(func(d sim.Duration) { wantLat = append(wantLat, d) })
			preconditionTiny(t, ser)
			w := tinyWorkload(t, ser, 1600, seed)
			want, err := ser.Run(trace.NewSliceReader(w))
			if err != nil {
				t.Fatal(err)
			}
			for _, pages := range []int{1, doorbellBatch - 1, doorbellBatch, 8192} {
				for _, depth := range []int{1, 2} {
					t.Run(fmt.Sprintf("pages%d-depth%d", pages, depth), func(t *testing.T) {
						cfg := base
						cfg.EpochPages = pages
						cfg.PipelineDepth = depth
						c := buildMQ(t, cfg)
						var lat []sim.Duration
						c.SetLatencyHook(func(d sim.Duration) { lat = append(lat, d) })
						preconditionTiny(t, c)
						got, err := c.Run(trace.NewSliceReader(w))
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("Results differ from serial baseline\nserial:   %+v\npipeline: %+v", want, got)
						}
						if !reflect.DeepEqual(lat, wantLat) {
							t.Fatalf("latency streams differ: %d vs %d samples", len(lat), len(wantLat))
						}
					})
				}
			}
		})
	}
}

// TestMQForkAtMidEpoch pins checkpointing against the pipeline: a Snapshot
// taken while an epoch is still open — parked completions not yet folded,
// and at depth 2 possibly a whole previous epoch still unfolded — must
// quiesce, fold, and capture a state from which any number of forks replay
// bit-identically.
func TestMQForkAtMidEpoch(t *testing.T) {
	cfg := mqConfig(SchemeDLOOP, tiny8Geometry(), 4, MergeDeterministic)
	cfg.EpochPages = 256 // small epochs so the cut lands mid-stream
	c := buildMQ(t, cfg)
	preconditionTiny(t, c)
	w := tinyWorkload(t, c, 1500, 23)
	for _, r := range w[:777] { // stop mid-epoch: no flush before the snapshot
		if err := c.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.fe.epochs[0].pend)+len(c.fe.epochs[1].pend) == 0 {
		t.Fatal("cut landed on an epoch boundary; the snapshot would not exercise mid-epoch state")
	}
	cp, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w2 := tinyWorkload(t, c, 900, 24)
	first, err := c.Run(trace.NewSliceReader(w2))
	if err != nil {
		t.Fatal(err)
	}
	for fork := 0; fork < 2; fork++ {
		if err := c.Restore(cp); err != nil {
			t.Fatal(err)
		}
		again, err := c.Run(trace.NewSliceReader(w2))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("fork %d diverged after mid-epoch snapshot\nfirst: %+v\nfork:  %+v", fork, first, again)
		}
	}
}

// TestMQLogicalEquivalence checks that sharding is invisible at the logical
// contract: after the same trace, controllers with 1, 2, 4, and 8 FTL shards
// expose exactly the same set of mapped logical pages (placement differs —
// each count is its own device organization — but what is stored must not).
func TestMQLogicalEquivalence(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			var mapped []map[ftl.LPN]bool
			var caps []ftl.LPN
			for _, shards := range []int{1, 2, 4, 8} {
				c := buildMQ(t, mqConfig(scheme, tiny8Geometry(), shards, ""))
				preconditionTiny(t, c)
				if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 11))); err != nil {
					t.Fatal(err)
				}
				m := make(map[ftl.LPN]bool)
				for lpn := ftl.LPN(0); lpn < c.Capacity(); lpn++ {
					if lookupMQ(t, c, lpn) != flash.InvalidPPN {
						m[lpn] = true
					}
				}
				mapped = append(mapped, m)
				caps = append(caps, c.Capacity())
			}
			for i := 1; i < len(mapped); i++ {
				if caps[i] != caps[0] {
					t.Fatalf("capacity %d with %d shards, %d with 1", caps[i], 1<<i, caps[0])
				}
				if !reflect.DeepEqual(mapped[i], mapped[0]) {
					t.Fatalf("mapped LPN set with %d shards differs from single FTL (%d vs %d pages)",
						1<<i, len(mapped[i]), len(mapped[0]))
				}
			}
		})
	}
}

// TestMQServePath covers the synchronous Serve API: every call barriers on
// its own completion, so the returned response times must match the serial
// baseline's call for call, and the final Results bit for bit.
func TestMQServePath(t *testing.T) {
	cfg := mqConfig(SchemeDLOOP, tinyGeometry(), 2, MergeDeterministic)
	ser := buildMQ(t, cfg)
	ser.fe.serial = true
	par := buildMQ(t, cfg)
	preconditionTiny(t, ser)
	preconditionTiny(t, par)
	for i, r := range tinyWorkload(t, ser, 600, 5) {
		a, err := ser.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Serve(r)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("request %d: rt %v (serial) vs %v (concurrent)", i, a, b)
		}
	}
	if !reflect.DeepEqual(ser.Result(), par.Result()) {
		t.Fatal("results diverged on the Serve path")
	}
}

// TestMQCrashRecovery simulates power loss on a sharded controller: Recover
// rebuilds every shard's SRAM state from its own sub-device's out-of-band
// tags. The shard partitioning is part of the persistent layout (LPN mod N
// decides which sub-device holds a page), so the recovered controller must
// keep the same shard count and resolve every logical page to the same
// physical location the crashed one did.
func TestMQCrashRecovery(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			c := buildMQ(t, mqConfig(scheme, tinyGeometry(), 2, ""))
			preconditionTiny(t, c)
			res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 5)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Erases == 0 {
				t.Fatal("workload never triggered GC; the crash state is trivial")
			}
			r, err := c.Recover()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(r.Close)
			if got := r.FTLShards(); got != 2 {
				t.Fatalf("recovered with %d FTL shards, want 2", got)
			}
			// Exactly one valid copy of each written lpn exists on its shard's
			// flash, so even the hybrids' reconstructed block roles must
			// resolve every lookup to the same physical page.
			for lpn := ftl.LPN(0); lpn < c.Capacity(); lpn++ {
				if got, want := lookupMQ(t, r, lpn), lookupMQ(t, c, lpn); got != want {
					t.Fatalf("lpn %d recovered %d want %d", lpn, got, want)
				}
			}
			if _, err := r.Run(trace.NewSliceReader(tinyWorkload(t, r, 1000, 6))); err != nil {
				t.Fatalf("post-recovery: %v", err)
			}
		})
	}
}

// TestMQSnapshotFork checks the warm-up checkpoint contract on the front end:
// a checkpoint taken mid-run forks any number of bit-identical continuations,
// and the checkpoint itself survives restores untouched.
func TestMQSnapshotFork(t *testing.T) {
	c := buildMQ(t, mqConfig(SchemeDLOOP, tiny8Geometry(), 4, MergeDeterministic))
	preconditionTiny(t, c)
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 1200, 21))); err != nil {
		t.Fatal(err)
	}
	cp, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := tinyWorkload(t, c, 800, 22)
	first, err := c.Run(trace.NewSliceReader(w))
	if err != nil {
		t.Fatal(err)
	}
	for fork := 0; fork < 2; fork++ {
		if err := c.Restore(cp); err != nil {
			t.Fatal(err)
		}
		again, err := c.Run(trace.NewSliceReader(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("fork %d diverged\nfirst: %+v\nfork:  %+v", fork, first, again)
		}
	}
}

// TestMQRecorderStaysConcurrent checks the shard-native observability
// contract: attaching a collector keeps the front end concurrent (each shard
// records into a private child merged at barriers), the merged registry
// carries the device-wide and per-shard telemetry, and detaching leaves the
// engine concurrent.
func TestMQRecorderStaysConcurrent(t *testing.T) {
	c := buildMQ(t, mqConfig(SchemeDLOOP, tinyGeometry(), 2, ""))
	preconditionTiny(t, c)
	if c.fe.serial {
		t.Fatal("front end serial before any recorder attached")
	}
	col := obs.NewCollector(c.ObsOptions())
	c.SetRecorder(col)
	if c.fe.serial {
		t.Fatal("collector forced serial execution; shards must stay concurrent")
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 600, 3))); err != nil {
		t.Fatal(err)
	}
	c.SetRecorder(nil)
	if c.fe.serial {
		t.Fatal("front end serial after detaching recorder")
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	reg := col.Registry()
	if n := reg.Counter("flash.write.host").Value(); n == 0 {
		t.Error("no host writes recorded through the shard children")
	}
	if n := reg.Counter("mq.doorbells").Value(); n == 0 {
		t.Error("no doorbell telemetry recorded")
	}
	for s := 0; s < 2; s++ {
		if n := reg.Hist("mq.lat.shard" + string(rune('0'+s))).N(); n == 0 {
			t.Errorf("shard %d submission latency histogram empty", s)
		}
	}
	if n := reg.Hist("mq.lat").N(); n == 0 {
		t.Error("merged mq.lat histogram empty")
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 300, 4))); err != nil {
		t.Fatal(err)
	}
}

// countingRecorder is a minimal non-Collector recorder for the serial
// fallback test.
type countingRecorder struct{ ops, reqs int }

func (r *countingRecorder) RecordOp(obs.Op)                                    { r.ops++ }
func (r *countingRecorder) RecordEvent(obs.EventKind, sim.Time)                {}
func (r *countingRecorder) RecordSpan(obs.SpanKind, int32, sim.Time, sim.Time) {}
func (r *countingRecorder) RecordRequest(bool, sim.Time, sim.Time)             { r.reqs++ }

// TestMQRecorderSerialFallback pins the contract for recorders that are not
// collectors: with no merge semantics to lean on they still force serial
// execution through the translating shard wrapper, and detaching restores
// concurrency.
func TestMQRecorderSerialFallback(t *testing.T) {
	c := buildMQ(t, mqConfig(SchemeDLOOP, tinyGeometry(), 2, ""))
	preconditionTiny(t, c)
	rec := &countingRecorder{}
	c.SetRecorder(rec)
	if !c.fe.serial {
		t.Fatal("non-Collector recorder attached but front end still concurrent")
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 300, 3))); err != nil {
		t.Fatal(err)
	}
	if rec.ops == 0 || rec.reqs == 0 {
		t.Fatalf("fallback recorder saw %d ops, %d requests; want both > 0", rec.ops, rec.reqs)
	}
	c.SetRecorder(nil)
	if c.fe.serial {
		t.Fatal("front end still serial after detaching recorder")
	}
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 300, 4))); err != nil {
		t.Fatal(err)
	}
}

// TestMQObservedMetricsDifferential is the telemetry half of the
// differential suite: for every scheme, a fully observed concurrent
// deterministic-merge run and a serially executed run of the identical shard
// layout must produce byte-identical metrics.json and trace-event documents.
// Everything the collector gathers — per-op counters and latency histograms,
// per-plane/channel vectors, per-shard mq.lat and gc.pause distributions,
// snapshot series, queue telemetry, trace buffers — is covered by the byte
// comparison.
func TestMQObservedMetricsDifferential(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme, func(t *testing.T) {
			run := func(serial bool) (metrics, traceDoc []byte) {
				c := buildMQ(t, mqConfig(scheme, tiny8Geometry(), 4, MergeDeterministic))
				if serial {
					c.fe.flush(c)
					c.fe.serial = true
				}
				preconditionTiny(t, c)
				var traceBuf bytes.Buffer
				o := c.ObsOptions()
				o.TraceEvents = &traceBuf
				o.SnapshotInterval = 500 * sim.Microsecond
				col := obs.NewCollector(o)
				c.SetRecorder(col)
				if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 1200, 13))); err != nil {
					t.Fatal(err)
				}
				c.SetRecorder(nil)
				if err := col.Close(); err != nil {
					t.Fatal(err)
				}
				var m bytes.Buffer
				if err := col.WriteMetrics(&m); err != nil {
					t.Fatal(err)
				}
				return m.Bytes(), traceBuf.Bytes()
			}
			serM, serT := run(true)
			parM, parT := run(false)
			if !bytes.Equal(serM, parM) {
				t.Errorf("metrics.json differs between serial and concurrent runs\nserial:\n%s\nconcurrent:\n%s", serM, parM)
			}
			if !bytes.Equal(serT, parT) {
				t.Error("trace-event document differs between serial and concurrent runs")
			}
		})
	}
}

// TestMQSteadyStateAllocFree asserts the multi-queue serving path is
// allocation-free per request at steady state in both merge modes: staged
// ring pushes, slab slots, and accumulator folds all reuse their arenas. The
// batch is read-only to keep GC (which allocates on its own) out of the
// measured window.
func TestMQSteadyStateAllocFree(t *testing.T) {
	for _, merge := range []string{MergeDeterministic, MergeRelaxed} {
		t.Run(merge, func(t *testing.T) {
			c := buildMQ(t, mqConfig(SchemeDLOOP, tinyGeometry(), 2, merge))
			preconditionTiny(t, c)
			reqs := tinyWorkload(t, c, 2000, 29)
			for i := range reqs {
				reqs[i].Op = trace.OpRead
			}
			i := 0
			serveBatch := func() {
				for n := 0; n < 100; n++ {
					if err := c.Enqueue(reqs[i%len(reqs)]); err != nil {
						t.Fatal(err)
					}
					i++
				}
				c.Flush()
			}
			serveBatch() // reach steady state: rings, slab chunks, pending slices
			serveBatch()
			if avg := testing.AllocsPerRun(10, serveBatch); avg > 0 {
				t.Fatalf("multi-queue serve path allocates %.1f times per 100-request epoch, want 0", avg)
			}
		})
	}
}

// TestObservedMQSteadyStateAllocFree is the observed twin of
// TestMQSteadyStateAllocFree: attaching a metrics-only collector (no trace
// sinks, no snapshot series) must keep the multi-queue serving path
// allocation-free per request at steady state. The shard children's counters
// and histograms, the quiescent-point registry merge, and the fold-time
// RecordRequest calls all reuse arenas sized during warm-up; this pins the
// 0 B/op that BenchmarkSimulateThroughputObservedMQ reports.
func TestObservedMQSteadyStateAllocFree(t *testing.T) {
	for _, merge := range []string{MergeDeterministic, MergeRelaxed} {
		t.Run(merge, func(t *testing.T) {
			c := buildMQ(t, mqConfig(SchemeDLOOP, tinyGeometry(), 2, merge))
			preconditionTiny(t, c)
			col := obs.NewCollector(c.ObsOptions())
			c.SetRecorder(col)
			if c.fe.serial {
				t.Fatal("collector forced serial execution")
			}
			reqs := tinyWorkload(t, c, 2000, 29)
			for i := range reqs {
				reqs[i].Op = trace.OpRead
			}
			i := 0
			serveBatch := func() {
				for n := 0; n < 100; n++ {
					if err := c.Enqueue(reqs[i%len(reqs)]); err != nil {
						t.Fatal(err)
					}
					i++
				}
				c.Flush()
			}
			serveBatch() // reach steady state: rings, slabs, epoch slices, hist buckets
			serveBatch()
			if avg := testing.AllocsPerRun(10, serveBatch); avg > 0 {
				t.Fatalf("observed multi-queue serve path allocates %.1f times per 100-request epoch, want 0", avg)
			}
		})
	}
}

// TestMQBuildRejections pins the configurations Build must refuse: the DRAM
// buffer is a single ordered cache (incompatible with independent shards),
// and merge modes are a closed set.
func TestMQBuildRejections(t *testing.T) {
	cfg := mqConfig(SchemeDLOOP, tinyGeometry(), 2, "")
	cfg.BufferPages = 16
	if _, err := Build(cfg); err == nil {
		t.Error("Build accepted FTLShards > 1 with BufferPages > 0")
	}
	cfg = mqConfig(SchemeDLOOP, tinyGeometry(), 0, "bogus")
	if _, err := Build(cfg); err == nil {
		t.Error("Build accepted unknown merge mode")
	}
}

// TestResolveFTLShards pins the shard-count resolution: AutoShards engages
// per-channel sharding only at 8+ channels, and explicit counts reduce to the
// largest divisor of the channel count so every shard owns the same whole
// number of channels.
func TestResolveFTLShards(t *testing.T) {
	for _, tc := range []struct {
		v, channels, want int
	}{
		{0, 8, 1}, {1, 8, 1}, {2, 2, 2}, {2, 8, 2}, {8, 8, 8}, {16, 8, 8},
		{3, 8, 2}, {5, 8, 4}, {6, 8, 4}, {3, 6, 3},
		{AutoShards, 2, 1}, {AutoShards, 4, 1}, {AutoShards, 8, 8}, {AutoShards, 16, 16},
	} {
		if got := resolveFTLShards(tc.v, tc.channels); got != tc.want {
			t.Errorf("resolveFTLShards(%d, %d) = %d, want %d", tc.v, tc.channels, got, tc.want)
		}
	}
}
