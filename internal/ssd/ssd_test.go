package ssd

import (
	"strings"
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/sim"
	"dloop/internal/trace"
	"dloop/internal/workload"
)

// tinyGeometry is a miniature device: 8 planes (2ch x 1pkg x 2chip x 1die x
// 2plane... kept hierarchical), 24 blocks/plane, 8 pages/block, 2 KB pages.
func tinyGeometry() flash.Geometry {
	return flash.Geometry{
		Channels:           2,
		PackagesPerChannel: 1,
		ChipsPerPackage:    2,
		DiesPerChip:        1,
		PlanesPerDie:       2,
		BlocksPerPlane:     24,
		PagesPerBlock:      8,
		PageSize:           2048,
	}
}

func tinyConfig(scheme string) Config {
	geo := tinyGeometry()
	return Config{
		FTL:        scheme,
		Geometry:   &geo,
		ExtraPct:   0.25, // 5 extra blocks/plane on the tiny device
		CMTEntries: 64,
	}
}

func buildTiny(t *testing.T, scheme string) *Controller {
	t.Helper()
	c, err := Build(tinyConfig(scheme))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// preconditionTiny populates the footprint tinyWorkload uses.
func preconditionTiny(t *testing.T, c *Controller) {
	t.Helper()
	capBytes := int64(c.Capacity()) * int64(c.Geometry().PageSize)
	if err := c.PreconditionBytes(capBytes * 3 / 4); err != nil {
		t.Fatal(err)
	}
}

// tinyWorkload generates requests that fit the tiny device's exported space.
func tinyWorkload(t *testing.T, c *Controller, n int, seed int64) []trace.Request {
	t.Helper()
	capBytes := int64(c.Capacity()) * int64(c.Geometry().PageSize)
	p := workload.Profile{
		Name:           "tiny",
		WriteRatio:     0.7,
		Sizes:          []workload.SizeWeight{{Sectors: 4, Weight: 1}, {Sectors: 8, Weight: 1}},
		RatePerSec:     2000,
		BurstProb:      0.3,
		FootprintBytes: capBytes * 3 / 4,
		ZipfS:          1.1,
		SeqProb:        0.1,
		AlignSectors:   4,
	}
	reqs, err := workload.Generate(p, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestGeometryFor(t *testing.T) {
	for _, tc := range []struct {
		gb, pageKB   int
		wantPlanes   int
		wantChannels int
		wantDataBlks int
	}{
		{4, 2, 16, 2, 2048},
		{8, 2, 32, 4, 2048},
		{16, 2, 64, 8, 2048},
		{32, 2, 128, 8, 2048},
		{64, 2, 256, 8, 2048},
		{8, 4, 32, 4, 1024},
		{8, 8, 32, 4, 512},
		{8, 16, 32, 4, 256},
	} {
		g, err := GeometryFor(tc.gb, tc.pageKB, 0.03, 3)
		if err != nil {
			t.Fatalf("GeometryFor(%d,%d): %v", tc.gb, tc.pageKB, err)
		}
		if g.Planes() != tc.wantPlanes {
			t.Errorf("%dGB/%dKB: planes %d, want %d", tc.gb, tc.pageKB, g.Planes(), tc.wantPlanes)
		}
		if g.Channels != tc.wantChannels {
			t.Errorf("%dGB/%dKB: channels %d, want %d", tc.gb, tc.pageKB, g.Channels, tc.wantChannels)
		}
		extra := extraBlocksFor(tc.wantDataBlks, 0.03, 3)
		if g.BlocksPerPlane != tc.wantDataBlks+extra {
			t.Errorf("%dGB/%dKB: blocks/plane %d, want %d data + %d extra",
				tc.gb, tc.pageKB, g.BlocksPerPlane, tc.wantDataBlks, extra)
		}
		// Exported capacity is exactly the nominal one.
		exported := int64(ftl.ExportedPages(g, extra)) * int64(g.PageSize)
		if exported != int64(tc.gb)<<30 {
			t.Errorf("%dGB/%dKB: exported %d bytes, want %d", tc.gb, tc.pageKB, exported, int64(tc.gb)<<30)
		}
	}
	if _, err := GeometryFor(3, 2, 0.03, 3); err == nil {
		t.Error("3 GB should not fill whole packages")
	}
	if _, err := GeometryFor(8, 7, 0.03, 3); err == nil {
		t.Error("7 KB pages should be rejected")
	}
}

func TestBuildRejectsUnknownFTL(t *testing.T) {
	cfg := tinyConfig("NOPE")
	if _, err := Build(cfg); err == nil || !strings.Contains(err.Error(), "unknown FTL") {
		t.Fatalf("got %v", err)
	}
}

func TestPreconditionFillsDevice(t *testing.T) {
	for _, scheme := range Schemes() {
		c := buildTiny(t, scheme)
		if err := c.Precondition(c.FTL().Capacity()); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		// Every exported page must now be mapped and valid.
		checkMappingConsistency(t, c)
		// Stats were reset.
		if got := c.Device().Stats().Writes(); got != 0 {
			t.Errorf("%s: writes after reset = %d", scheme, got)
		}
	}
}

// checkMappingConsistency cross-checks the FTL's mapping against device page
// state: every mapped LPN points at a valid page tagged with that LPN, and
// no two LPNs share a physical page.
func checkMappingConsistency(t *testing.T, c *Controller) {
	t.Helper()
	seen := make(map[flash.PPN]ftl.LPN)
	lookup := func(lpn ftl.LPN) flash.PPN {
		switch f := c.FTL().(type) {
		case *dloop.DLOOP:
			return f.Lookup(lpn)
		case *dftl.DFTL:
			return f.Lookup(lpn)
		case *fast.FAST:
			return f.Lookup(lpn)
		case *bast.BAST:
			return f.Lookup(lpn)
		case *pagemap.PureMap:
			return f.Lookup(lpn)
		}
		t.Fatal("unknown FTL type")
		return flash.InvalidPPN
	}
	mapped := 0
	for lpn := ftl.LPN(0); lpn < c.FTL().Capacity(); lpn++ {
		ppn := lookup(lpn)
		if ppn == flash.InvalidPPN {
			continue
		}
		mapped++
		if prev, dup := seen[ppn]; dup {
			t.Fatalf("%s: lpn %d and %d both map to ppn %d", c.FTL().Name(), prev, lpn, ppn)
		}
		seen[ppn] = lpn
		if st := c.Device().PageState(ppn); st != flash.PageValid {
			t.Fatalf("%s: lpn %d -> ppn %d state %v", c.FTL().Name(), lpn, ppn, st)
		}
		if got := c.Device().PageLPN(ppn); got != int64(lpn) {
			t.Fatalf("%s: ppn %d tagged %d, want %d", c.FTL().Name(), ppn, got, lpn)
		}
	}
	if mapped == 0 {
		t.Fatalf("%s: nothing mapped", c.FTL().Name())
	}
}

func TestEndToEndAllSchemes(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			c := buildTiny(t, scheme)
			preconditionTiny(t, c)
			reqs := tinyWorkload(t, c, 4000, 1)
			res, err := c.Run(trace.NewSliceReader(reqs))
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests != 4000 {
				t.Errorf("served %d", res.Requests)
			}
			if res.MeanRespMs <= 0 {
				t.Errorf("mean response %v ms", res.MeanRespMs)
			}
			if res.Erases == 0 {
				t.Errorf("no erases: GC/merges never ran on a 90%%-utilized device")
			}
			checkMappingConsistency(t, c)

			switch scheme {
			case SchemeDLOOP:
				// Copy-back must dominate; the external path is only the
				// low-space parity fallback, rare even on this tiny
				// saturated device.
				if res.GCCopyBacks == 0 {
					t.Errorf("DLOOP performed no copy-backs")
				}
				if res.GCExternalMoves*5 > res.GCCopyBacks {
					t.Errorf("DLOOP external moves %d exceed 20%% of copy-backs %d",
						res.GCExternalMoves, res.GCCopyBacks)
				}
			case SchemeDFTL:
				if res.CopyBacks != 0 {
					t.Errorf("DFTL used %d copy-backs; it must not", res.CopyBacks)
				}
				if res.GCExternalMoves == 0 {
					t.Errorf("DFTL GC never moved a page externally")
				}
			case SchemeFAST:
				if res.CopyBacks != 0 {
					t.Errorf("FAST used %d copy-backs; it must not", res.CopyBacks)
				}
				if res.FullMerges+res.PartialMerges+res.SwitchMerges == 0 {
					t.Errorf("FAST performed no merges")
				}
			}
		})
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Result {
		c := buildTiny(t, SchemeDLOOP)
		preconditionTiny(t, c)
		reqs := tinyWorkload(t, c, 2000, 7)
		res, err := c.Run(trace.NewSliceReader(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanRespMs != b.MeanRespMs || a.Erases != b.Erases || a.SDRPP != b.SDRPP ||
		a.GCCopyBacks != b.GCCopyBacks || a.WastedPages != b.WastedPages {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestReadsOfWrittenDataCostFlashReads(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	preconditionTiny(t, c)
	rt, err := c.Serve(trace.Request{Arrival: 0, LBN: 0, Sectors: 4, Op: trace.OpRead})
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 {
		t.Fatal("read of preconditioned data should cost time")
	}
	if c.Device().Stats().Reads() == 0 {
		t.Fatal("no flash read issued")
	}
}

func TestServeRejectsOutOfRange(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	huge := trace.Request{Arrival: 0, LBN: 1 << 40, Sectors: 4, Op: trace.OpRead}
	if _, err := c.Serve(huge); err == nil {
		t.Fatal("out-of-range request accepted")
	}
	bad := trace.Request{Arrival: 0, LBN: 0, Sectors: 0, Op: trace.OpRead}
	if _, err := c.Serve(bad); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestMultiPageRequestSplitsAcrossPlanes(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	preconditionTiny(t, c)
	// 8 pages starting at page 0: with plane = lpn mod 8 they stripe over
	// all 8 planes. The first pass faults the mappings into the CMT; the
	// second, warmed pass must complete in roughly single-page time (plus
	// bus serialization), not 8x.
	pageSectors := 2048 / trace.SectorSize
	req := trace.Request{Arrival: 0, LBN: 0, Sectors: 8 * pageSectors, Op: trace.OpRead}
	if _, err := c.Serve(req); err != nil {
		t.Fatal(err)
	}
	req.Arrival = sim.Time(1 * sim.Second)
	rt, err := c.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	single := c.Device().Timing().ExternalRead(2048)
	if rt > 4*single {
		t.Errorf("8-page striped read took %v, want close to one page read %v (bus-serialized), not 8x", rt, single)
	}
	res := c.Result()
	nonzero := 0
	for _, ops := range res.PlaneOps {
		if ops > 0 {
			nonzero++
		}
	}
	if nonzero != 8 {
		t.Errorf("read touched %d planes, want 8", nonzero)
	}
}

func TestDLOOPParityWasteAccounted(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	preconditionTiny(t, c)
	reqs := tinyWorkload(t, c, 6000, 3)
	res, err := c.Run(trace.NewSliceReader(reqs))
	if err != nil {
		t.Fatal(err)
	}
	// The parity rule inevitably wastes some pages under random updates, and
	// waste must stay a small fraction of GC moves ("this extreme case
	// rarely happens").
	if res.GCCopyBacks > 0 && res.WastedPages == 0 {
		t.Log("no parity waste observed (acceptable but unusual)")
	}
	if res.WastedPages > res.GCCopyBacks {
		t.Errorf("parity waste %d exceeds copy-backs %d", res.WastedPages, res.GCCopyBacks)
	}
}

func TestAblationCopybackOff(t *testing.T) {
	cfg := tinyConfig(SchemeDLOOP)
	cfg.DisableCopyBack = true
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preconditionTiny(t, c)
	res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 4000, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.CopyBacks != 0 {
		t.Errorf("ablation still used %d copy-backs", res.CopyBacks)
	}
	if res.GCExternalMoves == 0 {
		t.Errorf("ablation GC never moved pages")
	}
	if res.WastedPages != 0 {
		t.Errorf("ablation wasted %d pages; parity rule should not apply", res.WastedPages)
	}
}

func TestAdaptiveGCRuns(t *testing.T) {
	cfg := tinyConfig(SchemeDLOOP)
	cfg.AdaptiveGC = true
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preconditionTiny(t, c)
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 4000, 1))); err != nil {
		t.Fatal(err)
	}
	checkMappingConsistency(t, c)
}

func TestDLOOPPlacementInvariant(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	preconditionTiny(t, c)
	if _, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 3000, 9))); err != nil {
		t.Fatal(err)
	}
	// Equation (1): every mapped data page lives on plane lpn mod planes,
	// even after arbitrary GC activity.
	f := c.FTL().(*dloop.DLOOP)
	geo := c.Device().Geometry()
	for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn++ {
		ppn := f.Lookup(lpn)
		if ppn == flash.InvalidPPN {
			continue
		}
		want := int(int64(lpn) % int64(geo.Planes()))
		if got := geo.PlaneOf(ppn); got != want {
			t.Fatalf("lpn %d on plane %d, want %d", lpn, got, want)
		}
	}
}

func TestExportedBytes(t *testing.T) {
	got, err := ExportedBytes(Config{CapacityGB: 8, PageSizeKB: 2, ExtraPct: 0.03, FTL: SchemeDLOOP})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8<<30 {
		t.Fatalf("ExportedBytes = %d, want %d", got, int64(8)<<30)
	}
	geo := tinyGeometry()
	got, err = ExportedBytes(Config{Geometry: &geo, ExtraPct: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= geo.PhysicalBytes() {
		t.Fatalf("override geometry exported %d of %d physical", got, geo.PhysicalBytes())
	}
	bad := geo
	bad.Channels = 0
	if _, err := ExportedBytes(Config{Geometry: &bad}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if _, err := ExportedBytes(Config{CapacityGB: 3}); err == nil {
		t.Fatal("unbuildable capacity accepted")
	}
}

func TestScaledGeometryFor(t *testing.T) {
	full, err := ScaledGeometryFor(8, 2, 0.03, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := GeometryFor(8, 2, 0.03, 3)
	if full != ref {
		t.Fatal("scale 1 should equal GeometryFor")
	}
	small, err := ScaledGeometryFor(8, 2, 0.03, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Planes() != ref.Planes() {
		t.Fatal("scaling must preserve plane count")
	}
	if small.BlocksPerPlane >= ref.BlocksPerPlane {
		t.Fatal("scaling must shrink blocks per plane")
	}
	// Floor: never fewer than 16 data blocks.
	tiny, err := ScaledGeometryFor(8, 2, 0.03, 3, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.BlocksPerPlane < 16 {
		t.Fatalf("floor violated: %d", tiny.BlocksPerPlane)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		if _, err := ScaledGeometryFor(8, 2, 0.03, 3, bad); err == nil {
			t.Fatalf("scale %v accepted", bad)
		}
	}
}

func TestPureMapSchemesEndToEnd(t *testing.T) {
	for _, scheme := range []string{SchemePureMap, SchemePureMapStriped} {
		cfg := tinyConfig(scheme)
		c, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		preconditionTiny(t, c)
		res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 2000, 13)))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.FTL == "" || res.MeanRespMs <= 0 || res.GCRuns == 0 {
			t.Fatalf("%s: result %+v", scheme, res)
		}
		// The ideal page map must beat its demand-paged counterpart given
		// identical placement, because translation is free.
		if res.TransReads != 0 || res.TransWrites != 0 {
			t.Fatalf("%s: ideal map paid translation traffic", scheme)
		}
	}
}

func TestPreconditionRejectsOversize(t *testing.T) {
	c := buildTiny(t, SchemeDLOOP)
	if err := c.Precondition(c.FTL().Capacity() + 1); err == nil {
		t.Fatal("oversized precondition accepted")
	}
}

func TestBASTEndToEnd(t *testing.T) {
	c := buildTiny(t, SchemeBAST)
	preconditionTiny(t, c)
	res, err := c.Run(trace.NewSliceReader(tinyWorkload(t, c, 3000, 17)))
	if err != nil {
		t.Fatal(err)
	}
	if res.FTL != "BAST" || res.MeanRespMs <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.FullMerges+res.SwitchMerges == 0 {
		t.Fatal("BAST never merged")
	}
	if res.CopyBacks != 0 {
		t.Fatal("BAST used copy-back")
	}
	// BAST thrashes on random updates; FAST's fully-associative log was
	// invented to fix exactly that, so FAST must do fewer merges for the
	// same stream.
	cf := buildTiny(t, SchemeFAST)
	preconditionTiny(t, cf)
	resF, err := cf.Run(trace.NewSliceReader(tinyWorkload(t, cf, 3000, 17)))
	if err != nil {
		t.Fatal(err)
	}
	bastMerges := res.FullMerges + res.SwitchMerges
	fastMerges := resF.FullMerges + resF.SwitchMerges + resF.PartialMerges
	if bastMerges <= fastMerges {
		t.Logf("note: BAST merges %d vs FAST %d (workload not thrash-heavy enough to separate them)", bastMerges, fastMerges)
	}
}
