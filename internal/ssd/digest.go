package ssd

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"reflect"
)

// digestSalt versions the canonical encoding beneath ConfigDigest. Bump it
// whenever the encoding itself changes meaning (adding a Config field does
// not need a bump: the field index stream changes the digest on its own).
const digestSalt = "dloop-config-digest-v1"

// ConfigDigest returns a stable, collision-resistant digest of a Config.
// Two configs digest equally exactly when they describe the same simulator:
// defaults are applied first (so the zero FTL and "DLOOP" coalesce) and
// Geometry/Timing are hashed by value, not by pointer. The digest keys the
// warm-up grouping and the persistent checkpoint cache, and is embedded in
// every encoded checkpoint so a restore into a differently configured
// controller is rejected.
//
// The canonical encoding walks the struct with reflection in declaration
// order, tagging every field with its index and kind, so any field change —
// including in nested structs behind pointers — splits the digest. A Config
// field of a kind the walk does not support fails loudly at digest time
// rather than being silently skipped.
func ConfigDigest(cfg Config) [sha256.Size]byte {
	cfg.setDefaults()
	h := sha256.New()
	h.Write([]byte(digestSalt))
	digestValue(h, reflect.ValueOf(cfg))
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func digestValue(h hash.Hash, v reflect.Value) {
	var scratch [8]byte
	put := func(tag byte, u uint64) {
		binary.LittleEndian.PutUint64(scratch[:], u)
		h.Write([]byte{tag})
		h.Write(scratch[:])
	}
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			put('f', uint64(i))
			digestValue(h, v.Field(i))
		}
	case reflect.Pointer:
		if v.IsNil() {
			put('p', 0)
			return
		}
		put('p', 1)
		digestValue(h, v.Elem())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		put('i', uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		put('u', v.Uint())
	case reflect.Bool:
		var b uint64
		if v.Bool() {
			b = 1
		}
		put('b', b)
	case reflect.Float32, reflect.Float64:
		put('d', math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		put('s', uint64(len(s)))
		h.Write([]byte(s))
	default:
		panic(fmt.Sprintf("ssd: ConfigDigest: unsupported field kind %v", v.Kind()))
	}
}
