package ssd

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
	"dloop/internal/stats"
)

// Checkpoint is a deep, immutable copy of a controller's complete simulation
// state: flash device(s), FTL(s), write buffer, and measurement
// accumulators. One checkpoint taken after a shared warm-up can fork any
// number of divergent runs, each bit-identical to an uninterrupted fresh run
// of the same cell. On a front-end controller the checkpoint holds one
// device/FTL state pair per FTL shard.
//
// The attached observability recorder is deliberately NOT part of the
// checkpoint: recorders are per-cell plumbing, attached after a restore and
// detached before the next one.
type Checkpoint struct {
	dev      *flash.DeviceState
	ftlState any
	fe       *feCheckpoint // per-shard states on a front-end controller

	resp, readResp, writeResp stats.Welford
	hist                      stats.LatencyHist
	series                    *stats.TimeSeries
	buffer                    *bufferState
	lastDone                  sim.Time
	served                    int64
	pagesRead                 int64
	pagesWrit                 int64
}

// Snapshot captures the controller's state. It fails if the FTL scheme does
// not implement ftl.Snapshotter (all in-tree schemes do).
func (c *Controller) Snapshot() (*Checkpoint, error) {
	cp := &Checkpoint{}
	if c.fe != nil {
		fcp, err := c.fe.snapshot(c) // barriers and folds first
		if err != nil {
			return nil, err
		}
		cp.fe = fcp
	} else {
		snapper, ok := c.f.(ftl.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("ssd: FTL %s does not support checkpointing", c.f.Name())
		}
		c.Flush() // fold deferred completions so the accumulators are current
		cp.dev = c.dev.Snapshot()
		cp.ftlState = snapper.Snapshot()
	}
	cp.resp = c.resp
	cp.readResp = c.readResp
	cp.writeResp = c.writeResp
	cp.hist = c.hist.Clone()
	cp.series = c.series.Clone()
	cp.lastDone = c.lastDone
	cp.served = c.served
	cp.pagesRead = c.pagesRead
	cp.pagesWrit = c.pagesWrit
	if c.buffer != nil {
		cp.buffer = c.buffer.snapshot()
	}
	return cp, nil
}

// Restore rewinds the controller to a checkpoint it produced earlier. The
// checkpoint is untouched — Restore clones anything mutable on its way in —
// so the same checkpoint may seed any number of forks.
func (c *Controller) Restore(cp *Checkpoint) error {
	if c.fe != nil {
		if err := c.fe.restore(c, cp.fe); err != nil {
			return err
		}
	} else {
		snapper, ok := c.f.(ftl.Snapshotter)
		if !ok {
			return fmt.Errorf("ssd: FTL %s does not support checkpointing", c.f.Name())
		}
		c.discardPending() // in-flight timing belongs to the run being abandoned
		if err := snapper.Restore(cp.ftlState); err != nil {
			return err
		}
		c.dev.Restore(cp.dev)
	}
	c.resp = cp.resp
	c.readResp = cp.readResp
	c.writeResp = cp.writeResp
	c.hist = cp.hist.Clone()
	c.series = cp.series.Clone()
	if c.buffer != nil && cp.buffer != nil {
		c.buffer.restore(cp.buffer)
	}
	c.lastDone = cp.lastDone
	c.served = cp.served
	c.pagesRead = cp.pagesRead
	c.pagesWrit = cp.pagesWrit
	return nil
}
