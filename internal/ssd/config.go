// Package ssd assembles a complete simulated solid-state disk: a flash
// device, one of the three FTLs, and a controller that splits host requests
// into page operations, preconditions the device into steady state, replays
// traces, and collects the paper's metrics (mean response time, SDRPP, and
// the garbage-collection/merge accounting behind them).
package ssd

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/bast"
	"dloop/internal/ftl/dftl"
	"dloop/internal/ftl/dloop"
	"dloop/internal/ftl/fast"
	"dloop/internal/ftl/pagemap"
	"dloop/internal/ftl/translate"
)

// FTL scheme names accepted by Config.FTL. The paper evaluates the first
// three; the PureMap pair are idealized all-in-SRAM page maps used as upper
// bounds (see internal/ftl/pagemap).
const (
	SchemeDLOOP          = "DLOOP"
	SchemeDFTL           = "DFTL"
	SchemeFAST           = "FAST"
	SchemeBAST           = "BAST"
	SchemePureMap        = "PureMap"
	SchemePureMapStriped = "PureMap-striped"
)

// Schemes lists the three FTLs in the order the paper's figures plot them.
func Schemes() []string { return []string{SchemeDLOOP, SchemeDFTL, SchemeFAST} }

// AutoShards, as Config.Shards, selects one timing shard per channel.
const AutoShards = -1

// Config describes one simulated SSD, in the units Table I uses.
type Config struct {
	// CapacityGB is the exported (data) capacity. Table I varies
	// 4/8/16/32/64 with 8 the default.
	CapacityGB int
	// PageSizeKB is the flash page size. Table I varies 2/4/8/16 with 2 the
	// default.
	PageSizeKB int
	// ExtraPct is over-provisioning as a fraction of the data blocks.
	// Table I varies 0.03/0.05/0.07/0.10 with 0.03 the default.
	ExtraPct float64
	// FTL picks the scheme: SchemeDLOOP, SchemeDFTL, or SchemeFAST.
	FTL string

	// CMTEntries sizes the SRAM mapping cache of DLOOP and DFTL (default
	// 4096 entries = 32 KB at 8 B/entry).
	CMTEntries int
	// GCThreshold is the free-block trigger (the paper's 3).
	GCThreshold int
	// GCPolicy selects the garbage-collection victim policy for every
	// scheme: "greedy" (default for the page-mapping FTLs), "costbenefit",
	// "windowed", or "fifo" (default log-block eviction of FAST/BAST).
	// Empty keeps each scheme's historical default.
	GCPolicy string
	// TranslatePolicy selects the address-translation policy of the
	// demand-paged schemes (DLOOP, DFTL): "slru" (default), "lru", or
	// "learned" (see internal/ftl/translate). Other schemes keep their
	// all-in-SRAM maps and reject a non-default setting.
	TranslatePolicy string
	// DisableCopyBack runs DLOOP's E5 ablation (external GC moves).
	DisableCopyBack bool
	// AdaptiveGC runs DLOOP's E7 extension (hot-plane-aware thresholds).
	AdaptiveGC bool
	// StripeBy runs DLOOP's E8 ablation: the unit consecutive logical pages
	// stripe over first ("plane" — the paper's equation (1) and the
	// default — "die", "chip", or "channel").
	StripeBy string
	// LogBlocks overrides FAST's log-buffer size (0 = derive from ExtraPct).
	LogBlocks int
	// BufferPages enables the Fig. 1a DRAM buffer manager: up to this many
	// dirty logical pages are absorbed at DRAM speed and flushed to the FTL
	// lazily. 0 (the default, used by all experiments) disables it.
	BufferPages int
	// Shards selects the sharded timing engine: resource-timeline math runs
	// on this many per-channel worker goroutines while FTL decisions stay on
	// the caller's goroutine, bit-identical to the sequential engine (see
	// DESIGN.md, "Sharded simulation"). 0 or 1 keeps today's sequential
	// engine; AutoShards uses one shard per channel; larger values are
	// clamped to the channel count. Attaching an observability recorder
	// forces the sequential engine for as long as it stays attached.
	Shards int
	// FTLShards partitions the logical address space over this many
	// concurrent FTL shards behind a multi-queue host front end (see
	// frontend.go). Each shard owns a private sub-device of
	// Channels/FTLShards channels with its own mapping state, free-block
	// pools, garbage collector, and worker goroutine, so placement and
	// collection decisions run concurrently — a different (striped) device
	// organization, not an accelerated identical one. 0 or 1 keeps the
	// single-FTL engine; AutoShards uses one shard per channel on devices
	// with at least 8 channels and the single-FTL engine below that; other
	// values are reduced to the largest divisor of the channel count.
	// Attaching an *obs.Collector keeps the shards concurrent (each shard
	// records into a private child collector, merged deterministically at
	// epoch barriers); any other recorder forces serial in-order execution
	// while attached. Incompatible with BufferPages.
	FTLShards int
	// Merge selects how per-shard completions merge into response-time
	// statistics when FTLShards > 1: MergeDeterministic (the default, "")
	// folds at epoch barriers in arrival order, bit-identical to serial
	// in-order execution of the same shard layout; MergeRelaxed folds
	// single-page requests on the shard workers, trading the bit-exact
	// floating-point accumulation order for less host-side work (histograms
	// and counters still merge exactly).
	Merge string
	// EpochPages bounds one pipeline epoch on the multi-queue front end:
	// after this many parked page completions the host hands the epoch to
	// the shards and folds the previous epoch's completions while they
	// execute (see frontend.go). 0 selects the default (4096). Results are
	// bit-identical across epoch lengths in deterministic merge mode; the
	// knob trades fold granularity against slab footprint. Exposed as
	// -epoch-pages in the commands.
	EpochPages int
	// DoorbellBatch is how many staged page commands accumulate before the
	// front end rings the shard doorbells (0 = default 64). A producer-side
	// batching knob; results are identical across values.
	DoorbellBatch int
	// PipelineDepth selects the multi-queue front end's epoch pipelining:
	// 2 (the default for 0) double-buffers the completion slabs so the host
	// folds epoch K while the shards execute epoch K+1; 1 restores the
	// stop-the-world barrier at every epoch close (the pre-pipeline
	// behavior, kept for comparison and tests). Results are bit-identical
	// either way.
	PipelineDepth int

	// Geometry, when non-nil, overrides the capacity-derived geometry
	// entirely (tests use miniature devices).
	Geometry *flash.Geometry
	// Timing, when non-nil, overrides Table I's latencies.
	Timing *flash.Timing
}

func (c *Config) setDefaults() {
	if c.CapacityGB == 0 {
		c.CapacityGB = 8
	}
	if c.PageSizeKB == 0 {
		c.PageSizeKB = 2
	}
	if c.ExtraPct == 0 {
		c.ExtraPct = 0.03
	}
	if c.FTL == "" {
		c.FTL = SchemeDLOOP
	}
	if c.CMTEntries == 0 {
		c.CMTEntries = 4096
	}
	if c.GCThreshold == 0 {
		c.GCThreshold = 3
	}
}

// Reference geometry constants (Fig. 1 and Table I, degarbled): 64 pages per
// block, 2048 data blocks per plane at the 2 KB reference page size, planes
// paired on dies, dies paired on chips, chips paired in packages, at most 8
// channels.
const (
	refPagesPerBlock  = 64
	refBlocksPerPlane = 2048
	refPageKB         = 2
	refPlanesPerDie   = 2
	refDiesPerChip    = 2
	refChipsPerPkg    = 2
	refMaxChannels    = 8
)

// planesPerPackage under the reference hierarchy.
const planesPerPackage = refPlanesPerDie * refDiesPerChip * refChipsPerPkg

// GeometryFor derives a device shape for a data capacity and page size.
// Plane count is fixed by capacity at the reference page size (one plane =
// 2048 blocks × 64 pages × 2 KB = 256 MB) so the page-size sweep (Fig. 9)
// varies page size at constant parallelism; capacity scales by adding
// packages spread round-robin over up to 8 channels (Fig. 8). Extra blocks
// are added per plane on top of the data blocks (Fig. 10).
func GeometryFor(capacityGB, pageSizeKB int, extraPct float64, gcThreshold int) (flash.Geometry, error) {
	if capacityGB < 1 || pageSizeKB < 1 {
		return flash.Geometry{}, fmt.Errorf("ssd: bad capacity %d GB / page %d KB", capacityGB, pageSizeKB)
	}
	planeMB := refBlocksPerPlane * refPagesPerBlock * refPageKB / 1024 // 256 MB
	planes := capacityGB * 1024 / planeMB
	if planes < 1 || capacityGB*1024%planeMB != 0 {
		return flash.Geometry{}, fmt.Errorf("ssd: capacity %d GB is not a whole number of %d MB planes", capacityGB, planeMB)
	}
	if planes%planesPerPackage != 0 {
		return flash.Geometry{}, fmt.Errorf("ssd: capacity %d GB does not fill whole packages", capacityGB)
	}
	packages := planes / planesPerPackage
	channels := packages
	if channels > refMaxChannels {
		channels = refMaxChannels
	}
	if packages%channels != 0 {
		return flash.Geometry{}, fmt.Errorf("ssd: %d packages do not spread evenly over %d channels", packages, channels)
	}
	dataBlocks := refBlocksPerPlane * refPageKB / pageSizeKB
	if dataBlocks < 8 || refBlocksPerPlane*refPageKB%pageSizeKB != 0 {
		return flash.Geometry{}, fmt.Errorf("ssd: page size %d KB too large for the reference plane", pageSizeKB)
	}
	extra := extraBlocksFor(dataBlocks, extraPct, gcThreshold)
	g := flash.Geometry{
		Channels:           channels,
		PackagesPerChannel: packages / channels,
		ChipsPerPackage:    refChipsPerPkg,
		DiesPerChip:        refDiesPerChip,
		PlanesPerDie:       refPlanesPerDie,
		BlocksPerPlane:     dataBlocks + extra,
		PagesPerBlock:      refPagesPerBlock,
		PageSize:           pageSizeKB * 1024,
	}
	return g, g.Validate()
}

// extraBlocksFor converts the paper's extra-block percentage (relative to
// data blocks) into a per-plane count, keeping at least gcThreshold+1 so
// collection always has destination room.
func extraBlocksFor(dataBlocks int, extraPct float64, gcThreshold int) int {
	extra := int(float64(dataBlocks)*extraPct + 0.999999)
	if min := gcThreshold + 1; extra < min {
		extra = min
	}
	return extra
}

// resolveGeometry derives the device geometry and per-plane extra-block
// count a Config describes (from an explicit override or the capacity).
func resolveGeometry(cfg Config) (flash.Geometry, int, error) {
	if cfg.Geometry != nil {
		geo := *cfg.Geometry
		if err := geo.Validate(); err != nil {
			return flash.Geometry{}, 0, err
		}
		return geo, ftl.ExtraBlocksPerPlane(geo.BlocksPerPlane, cfg.ExtraPct, cfg.GCThreshold), nil
	}
	geo, err := GeometryFor(cfg.CapacityGB, cfg.PageSizeKB, cfg.ExtraPct, cfg.GCThreshold)
	if err != nil {
		return flash.Geometry{}, 0, err
	}
	return geo, geo.BlocksPerPlane - refBlocksPerPlane*refPageKB/cfg.PageSizeKB, nil
}

// buildFTL constructs the configured FTL scheme, fresh, over dev.
func buildFTL(dev *flash.Device, cfg Config, extra int) (ftl.FTL, error) {
	switch cfg.FTL {
	case SchemeDLOOP:
		return dloop.New(dev, dloop.Config{
			CMTEntries:      cfg.CMTEntries,
			TranslatePolicy: cfg.TranslatePolicy,
			GCThreshold:     cfg.GCThreshold,
			ExtraPerPlane:   extra,
			DisableCopyBack: cfg.DisableCopyBack,
			AdaptiveGC:      cfg.AdaptiveGC,
			StripeBy:        dloop.Striping(cfg.StripeBy),
			GCPolicy:        cfg.GCPolicy,
		})
	case SchemeDFTL:
		return dftl.New(dev, dftl.Config{
			CMTEntries:      cfg.CMTEntries,
			TranslatePolicy: cfg.TranslatePolicy,
			GCThreshold:     cfg.GCThreshold,
			ExtraPerPlane:   extra,
			GCPolicy:        cfg.GCPolicy,
		})
	case SchemeFAST:
		return fast.New(dev, fast.Config{
			ExtraPerPlane: extra,
			LogBlocks:     cfg.LogBlocks,
			GCPolicy:      cfg.GCPolicy,
		})
	case SchemeBAST:
		return bast.New(dev, bast.Config{
			ExtraPerPlane: extra,
			LogBlocks:     cfg.LogBlocks,
			GCPolicy:      cfg.GCPolicy,
		})
	case SchemePureMap, SchemePureMapStriped:
		return pagemap.New(dev, pagemap.Config{
			GCThreshold:   cfg.GCThreshold,
			ExtraPerPlane: extra,
			Striped:       cfg.FTL == SchemePureMapStriped,
			GCPolicy:      cfg.GCPolicy,
		})
	}
	return nil, fmt.Errorf("ssd: unknown FTL %q (want %v)", cfg.FTL, Schemes())
}

// recoverFTL reconstructs the configured FTL scheme over dev from its
// out-of-band page tags (each scheme's NewRecovered).
func recoverFTL(dev *flash.Device, cfg Config, extra int) (ftl.FTL, error) {
	switch cfg.FTL {
	case SchemeDLOOP:
		return dloop.NewRecovered(dev, dloop.Config{
			CMTEntries:      cfg.CMTEntries,
			TranslatePolicy: cfg.TranslatePolicy,
			GCThreshold:     cfg.GCThreshold,
			ExtraPerPlane:   extra,
			DisableCopyBack: cfg.DisableCopyBack,
			AdaptiveGC:      cfg.AdaptiveGC,
			StripeBy:        dloop.Striping(cfg.StripeBy),
			GCPolicy:        cfg.GCPolicy,
		})
	case SchemeDFTL:
		return dftl.NewRecovered(dev, dftl.Config{
			CMTEntries:      cfg.CMTEntries,
			TranslatePolicy: cfg.TranslatePolicy,
			GCThreshold:     cfg.GCThreshold,
			ExtraPerPlane:   extra,
			GCPolicy:        cfg.GCPolicy,
		})
	case SchemeFAST:
		return fast.NewRecovered(dev, fast.Config{
			ExtraPerPlane: extra,
			LogBlocks:     cfg.LogBlocks,
			GCPolicy:      cfg.GCPolicy,
		})
	case SchemeBAST:
		return bast.NewRecovered(dev, bast.Config{
			ExtraPerPlane: extra,
			LogBlocks:     cfg.LogBlocks,
			GCPolicy:      cfg.GCPolicy,
		})
	case SchemePureMap, SchemePureMapStriped:
		return pagemap.NewRecovered(dev, pagemap.Config{
			GCThreshold:   cfg.GCThreshold,
			ExtraPerPlane: extra,
			Striped:       cfg.FTL == SchemePureMapStriped,
			GCPolicy:      cfg.GCPolicy,
		})
	}
	return nil, fmt.Errorf("ssd: unknown FTL %q (want %v)", cfg.FTL, Schemes())
}

// Build constructs the device and FTL described by cfg — or, with
// FTLShards > 1, the N-shard multi-queue front end.
func Build(cfg Config) (*Controller, error) {
	explicitCMT := cfg.CMTEntries != 0
	cfg.setDefaults()
	if _, err := translate.ParsePolicy(cfg.TranslatePolicy); err != nil {
		return nil, fmt.Errorf("ssd: %w", err)
	}
	if p := cfg.TranslatePolicy; p != "" && p != translate.DefaultPolicy {
		switch cfg.FTL {
		case SchemeDLOOP, SchemeDFTL, "":
		default:
			return nil, fmt.Errorf("ssd: translate policy %q needs a demand-paged scheme (DLOOP or DFTL), not %s", p, cfg.FTL)
		}
	}
	switch cfg.Merge {
	case "", MergeDeterministic, MergeRelaxed:
	default:
		return nil, fmt.Errorf("ssd: unknown merge mode %q (want %q or %q)", cfg.Merge, MergeDeterministic, MergeRelaxed)
	}
	if cfg.PipelineDepth < 0 || cfg.PipelineDepth > 2 {
		return nil, fmt.Errorf("ssd: pipeline depth %d out of range (want 1 or 2)", cfg.PipelineDepth)
	}
	if cfg.EpochPages < 0 {
		return nil, fmt.Errorf("ssd: negative EpochPages %d", cfg.EpochPages)
	}
	if cfg.DoorbellBatch < 0 {
		return nil, fmt.Errorf("ssd: negative DoorbellBatch %d", cfg.DoorbellBatch)
	}
	geo, extra, err := resolveGeometry(cfg)
	if err != nil {
		return nil, err
	}
	if explicitCMT {
		if cfg.CMTEntries < 2 {
			return nil, fmt.Errorf("ssd: CMTEntries %d too small (need at least 2)", cfg.CMTEntries)
		}
		if space := int64(ftl.ExportedPages(geo, extra)); int64(cfg.CMTEntries) > space {
			return nil, fmt.Errorf("ssd: CMTEntries %d exceeds the %d-page logical space (the cache would never evict)", cfg.CMTEntries, space)
		}
	}
	timing := flash.DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	if n := resolveFTLShards(cfg.FTLShards, geo.Channels); n > 1 {
		fe, err := newFrontEnd(geo, timing, n, cfg, func(dev *flash.Device) (ftl.FTL, error) {
			return buildFTL(dev, cfg, extra)
		})
		if err != nil {
			return nil, err
		}
		return newFEController(fe, cfg), nil
	}
	dev, err := flash.NewDevice(geo, timing)
	if err != nil {
		return nil, err
	}
	f, err := buildFTL(dev, cfg, extra)
	if err != nil {
		return nil, err
	}
	c := newController(dev, f, cfg)
	c.applySharding()
	return c, nil
}

// ScaledGeometryFor shrinks GeometryFor's result by scale for quick runs:
// data blocks per plane scale down while the plane count, channel layout,
// and pages per block stay, so capacity ratios, parallelism, and relative
// utilization are preserved. scale must be in (0, 1].
func ScaledGeometryFor(capacityGB, pageSizeKB int, extraPct float64, gcThreshold int, scale float64) (flash.Geometry, error) {
	g, err := GeometryFor(capacityGB, pageSizeKB, extraPct, gcThreshold)
	if err != nil {
		return flash.Geometry{}, err
	}
	if scale <= 0 || scale > 1 {
		return flash.Geometry{}, fmt.Errorf("ssd: scale %v out of (0,1]", scale)
	}
	if scale == 1 {
		return g, nil
	}
	dataBlocks := refBlocksPerPlane * refPageKB / pageSizeKB
	scaled := int(float64(dataBlocks) * scale)
	if scaled < 16 {
		scaled = 16
	}
	extra := extraBlocksFor(scaled, extraPct, gcThreshold)
	g.BlocksPerPlane = scaled + extra
	return g, g.Validate()
}

// ExportedBytes computes the data capacity a Config will export, without
// building the device. Experiments use it to skip workloads whose footprint
// does not fit a configuration.
func ExportedBytes(cfg Config) (int64, error) {
	cfg.setDefaults()
	geo, extra, err := resolveGeometry(cfg)
	if err != nil {
		return 0, err
	}
	return int64(ftl.ExportedPages(geo, extra)) * int64(geo.PageSize), nil
}

// Recover simulates a power loss: it builds a fresh controller over c's
// device with all SRAM state (mapping table, GTD, CMT, pools, write points)
// rebuilt from the out-of-band page tags, the way a real controller comes
// back up. Page-mapping schemes (DLOOP, DFTL, PureMap) rebuild their exact
// tables; the hybrids (FAST, BAST) keep block-role metadata the OOB tags do
// not capture, so their recovery reconstructs an equivalent — not identical —
// assignment of data and log blocks (see each scheme's NewRecovered).
func (c *Controller) Recover() (*Controller, error) {
	cfg := c.cfg
	cfg.setDefaults()
	var extra int
	if cfg.Geometry != nil {
		extra = ftl.ExtraBlocksPerPlane(cfg.Geometry.BlocksPerPlane, cfg.ExtraPct, cfg.GCThreshold)
	} else {
		extra = c.Geometry().BlocksPerPlane - refBlocksPerPlane*refPageKB/cfg.PageSizeKB
	}
	if c.fe != nil {
		c.Flush()
		nfe, err := c.fe.recoverShards(cfg, extra)
		if err != nil {
			return nil, err
		}
		nc := newFEController(nfe, cfg)
		nc.ResetMeasurement()
		return nc, nil
	}
	f, err := recoverFTL(c.dev, cfg, extra)
	if err != nil {
		return nil, err
	}
	nc := newController(c.dev, f, cfg)
	nc.applySharding()
	nc.ResetMeasurement()
	return nc, nil
}
