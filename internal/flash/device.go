package flash

import (
	"fmt"

	"dloop/internal/obs"
	"dloop/internal/sim"
)

// PageState is the lifecycle state of one physical page.
type PageState uint8

// Page lifecycle: erased pages are Free; programming makes them Valid;
// out-of-place update or garbage collection makes the stale copy Invalid;
// only erasing the whole block returns pages to Free.
const (
	PageFree PageState = iota
	PageValid
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// Cause labels who initiated a flash operation, so the device can attribute
// load per plane (the paper's SDRPP metric) and overhead per activity.
type Cause uint8

const (
	// CauseHost marks operations that directly serve a host request.
	CauseHost Cause = iota
	// CauseGC marks garbage-collection data movement and erases.
	CauseGC
	// CauseMap marks translation-page traffic (CMT misses and write-backs).
	CauseMap
	numCauses
)

func (c Cause) String() string {
	switch c {
	case CauseHost:
		return "host"
	case CauseGC:
		return "gc"
	case CauseMap:
		return "map"
	default:
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
}

// BlockInfo summarizes the state of one physical block.
type BlockInfo struct {
	Valid     int // pages currently holding live data
	Invalid   int // pages holding stale data
	Written   int // pages programmed since last erase (Valid+Invalid)
	Erases    int // lifetime erase count
	NextWrite int // high-water mark: next sequentially programmable page
}

// Free returns the number of never-programmed pages remaining in the block.
func (b BlockInfo) Free(pagesPerBlock int) int { return pagesPerBlock - b.Written }

// Device is a simulated NAND flash SSD. It owns the page/block state machine
// and the resource timelines, and it charges time for every operation. It is
// not safe for concurrent use; the simulator is single-threaded per device,
// like the event loop of DiskSim.
type Device struct {
	geo    Geometry
	timing Timing

	state  []PageState // indexed by PPN
	lpns   []int64     // logical page stored at each PPN, -1 if none
	blocks []BlockInfo // indexed by Geometry.BlockIndex

	planes   []*sim.Resource // cell arrays + data registers
	chipBus  []*sim.Resource // serial I/O bus shared by dies of one chip
	channels []*sim.Resource // external channels shared by packages

	// Derived geometry constants and per-plane bus lookups, cached so the
	// per-operation hot path does no repeated multiplication chains or
	// hierarchy divisions.
	totalPages    int64
	pagesPerBlock int64
	pagesPerPlane int64
	planeChip     []*sim.Resource // plane -> its chip's serial bus
	planeChannel  []*sim.Resource // plane -> its channel
	planeChanIdx  []int32         // plane -> channel index, for op attribution

	stats Stats
	rec   obs.Recorder // nil when observability is disabled

	// eng, when non-nil, defers all timing computation to per-channel worker
	// goroutines (see sharded.go); operations then return future handles in
	// place of concrete completion times. The state machine above stays on
	// the caller's goroutine either way.
	eng *shardEngine
}

// NewDevice builds an erased device with the given geometry and timing.
func NewDevice(geo Geometry, timing Timing) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		geo:    geo,
		timing: timing,
		state:  make([]PageState, geo.TotalPages()),
		lpns:   make([]int64, geo.TotalPages()),
		blocks: make([]BlockInfo, geo.TotalBlocks()),
	}
	for i := range d.lpns {
		d.lpns[i] = -1
	}
	d.planes = make([]*sim.Resource, geo.Planes())
	for i := range d.planes {
		d.planes[i] = sim.NewResource(fmt.Sprintf("plane%d", i))
	}
	d.chipBus = make([]*sim.Resource, geo.Chips())
	for i := range d.chipBus {
		d.chipBus[i] = sim.NewResource(fmt.Sprintf("chipbus%d", i))
	}
	d.channels = make([]*sim.Resource, geo.Channels)
	for i := range d.channels {
		d.channels[i] = sim.NewResource(fmt.Sprintf("channel%d", i))
	}
	d.totalPages = geo.TotalPages()
	d.pagesPerBlock = int64(geo.PagesPerBlock)
	d.pagesPerPlane = int64(geo.PagesPerBlock) * int64(geo.BlocksPerPlane)
	d.planeChip = make([]*sim.Resource, geo.Planes())
	d.planeChannel = make([]*sim.Resource, geo.Planes())
	d.planeChanIdx = make([]int32, geo.Planes())
	for p := range d.planeChip {
		d.planeChip[p] = d.chipBus[geo.ChipOfPlane(p)]
		d.planeChannel[p] = d.channels[geo.ChannelOfPlane(p)]
		d.planeChanIdx[p] = int32(geo.ChannelOfPlane(p))
	}
	d.stats.init(geo)
	return d, nil
}

// Geometry returns the device's physical shape.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device's latency parameters.
func (d *Device) Timing() Timing { return d.timing }

// Stats returns a snapshot of accumulated operation statistics.
func (d *Device) Stats() Stats {
	d.SyncTiming()
	return d.stats.snapshot()
}

// SetRecorder attaches (or, with nil, detaches) an observability recorder.
// Each flash operation then reports its kind, cause, location, and timestamps
// through it; when nil the only cost is one pointer check per operation.
// Recorders require the sequential engine (per-op events are ordered); the
// SSD controller disables sharding before attaching one.
func (d *Device) SetRecorder(r obs.Recorder) {
	if r != nil && d.eng != nil {
		panic("flash: SetRecorder with sharding enabled; disable sharding first")
	}
	d.rec = r
}

// ChannelOfPlane returns the channel index serving a plane (cached form of
// Geometry.ChannelOfPlane, exported for observability wiring).
func (d *Device) ChannelOfPlane() []int32 { return d.planeChanIdx }

// BusyTimes reports cumulative busy time per plane, chip serial bus, and
// channel resource; it satisfies obs.UtilizationSource.
func (d *Device) BusyTimes() (planes, chipBus, channels []sim.Duration) {
	d.SyncTiming()
	busy := func(rs []*sim.Resource) []sim.Duration {
		out := make([]sim.Duration, len(rs))
		for i, r := range rs {
			out[i] = r.BusyTime()
		}
		return out
	}
	return busy(d.planes), busy(d.chipBus), busy(d.channels)
}

// ResetStats zeroes all statistics and resource timelines while preserving
// page and block state. The SSD controller calls it after preconditioning so
// the measured run starts from a warmed device at simulated time zero.
func (d *Device) ResetStats() {
	d.SyncTiming()
	for _, r := range d.planes {
		r.Reset()
	}
	for _, r := range d.chipBus {
		r.Reset()
	}
	for _, r := range d.channels {
		r.Reset()
	}
	erases := d.stats.BlockErases // wear is physical state, survives the reset
	d.stats.init(d.geo)
	d.stats.BlockErases = erases
}

// DeviceState is an opaque deep copy of a device's mutable state — page
// states, block bookkeeping, resource timelines, statistics — taken by
// Snapshot and reapplied by Restore. It shares nothing with the live device,
// so one snapshot can fork any number of runs.
type DeviceState struct {
	state    []PageState
	lpns     []int64
	blocks   []BlockInfo
	planes   []sim.ResourceState
	chipBus  []sim.ResourceState
	channels []sim.ResourceState
	stats    Stats
}

// Snapshot captures the device's complete mutable state.
func (d *Device) Snapshot() *DeviceState {
	d.SyncTiming()
	s := &DeviceState{
		state:    append([]PageState(nil), d.state...),
		lpns:     append([]int64(nil), d.lpns...),
		blocks:   append([]BlockInfo(nil), d.blocks...),
		planes:   make([]sim.ResourceState, len(d.planes)),
		chipBus:  make([]sim.ResourceState, len(d.chipBus)),
		channels: make([]sim.ResourceState, len(d.channels)),
		stats:    d.stats.snapshot(),
	}
	for i, r := range d.planes {
		s.planes[i] = r.Snapshot()
	}
	for i, r := range d.chipBus {
		s.chipBus[i] = r.Snapshot()
	}
	for i, r := range d.channels {
		s.channels[i] = r.Snapshot()
	}
	return s
}

// Restore rewinds the device to a snapshot taken from the same geometry.
// Existing slices are reused, so restoring does not grow the heap; the
// snapshot is untouched and may be restored again.
func (d *Device) Restore(s *DeviceState) {
	d.SyncTiming()
	copy(d.state, s.state)
	copy(d.lpns, s.lpns)
	copy(d.blocks, s.blocks)
	for i, r := range d.planes {
		r.Restore(s.planes[i])
	}
	for i, r := range d.chipBus {
		r.Restore(s.chipBus[i])
	}
	for i, r := range d.channels {
		r.Restore(s.channels[i])
	}
	d.stats.restoreFrom(s.stats)
}

// PageState returns the state of a physical page.
func (d *Device) PageState(ppn PPN) PageState { return d.state[ppn] }

// PageLPN returns the logical page stored at ppn, or -1 if the page does not
// hold live data.
func (d *Device) PageLPN(ppn PPN) int64 { return d.lpns[ppn] }

// Block returns a copy of the bookkeeping for one block.
func (d *Device) Block(pb PlaneBlock) BlockInfo { return d.blocks[d.geo.BlockIndex(pb)] }

// PlaneFreeAt reports when the plane's cell array next becomes idle.
func (d *Device) PlaneFreeAt(plane int) sim.Time {
	d.SyncTiming()
	return d.planes[plane].FreeAt()
}

func (d *Device) busFor(plane int) (chip, channel *sim.Resource) {
	return d.planeChip[plane], d.planeChannel[plane]
}

// validPPN is Geometry.ValidPPN against the cached page total.
func (d *Device) validPPN(ppn PPN) bool {
	return uint64(ppn) < uint64(d.totalPages)
}

// planeOf is Geometry.PlaneOf with one cached division.
func (d *Device) planeOf(ppn PPN) int { return int(int64(ppn) / d.pagesPerPlane) }

// blockIndexOf collapses Geometry.BlockIndex(Geometry.BlockOf(ppn)) into a
// single division.
func (d *Device) blockIndexOf(ppn PPN) int64 { return int64(ppn) / d.pagesPerBlock }

// pageOf is Geometry.PageOf against the cached block size.
func (d *Device) pageOf(ppn PPN) int { return int(int64(ppn) % d.pagesPerBlock) }

// ReadPage performs an external page read: the plane reads the cell array
// into its data register, then the page crosses the chip serial bus and the
// channel to the controller. It returns the completion time.
func (d *Device) ReadPage(ppn PPN, ready sim.Time, cause Cause) (sim.Time, error) {
	if !d.validPPN(ppn) {
		return 0, fmt.Errorf("flash: read %w: ppn %d", ErrOutOfRange, ppn)
	}
	if d.state[ppn] != PageValid {
		return 0, fmt.Errorf("flash: read ppn %d (%v): %w, page is %v",
			ppn, d.geo.BlockOf(ppn), ErrReadInvalid, d.state[ppn])
	}
	plane := d.planeOf(ppn)
	if d.eng != nil {
		return d.eng.submit(opRead, cause, plane, ready), nil
	}
	pl := d.planes[plane]
	chip, ch := d.busFor(plane)

	// Cell array -> register occupies the plane alone.
	start, cellDone := pl.Acquire(ready, d.timing.PageRead)
	// Register -> controller occupies both buses; the plane's register is in
	// use until the transfer drains, so the plane stays busy too.
	_, end := sim.AcquireAll(cellDone, d.timing.Transfer(d.geo.PageSize), chip, ch, pl)

	d.stats.note(opRead, cause, plane, end.Sub(ready))
	if d.rec != nil {
		d.rec.RecordOp(obs.Op{
			Kind: obs.OpRead, Cause: obs.Cause(cause), Stored: d.lpns[ppn],
			Plane: int32(plane), Channel: d.planeChanIdx[plane],
			Ready: ready, Start: start, End: end,
		})
	}
	return end, nil
}

// WritePage programs a free page with the given logical page. The page
// crosses the channel and chip bus into the plane register, then the plane
// programs the cell array. It returns the completion time.
func (d *Device) WritePage(ppn PPN, lpn int64, ready sim.Time, cause Cause) (sim.Time, error) {
	if !d.validPPN(ppn) {
		return 0, fmt.Errorf("flash: write %w: ppn %d", ErrOutOfRange, ppn)
	}
	if d.state[ppn] != PageFree {
		return 0, fmt.Errorf("flash: write ppn %d (%v): %w, page is %v",
			ppn, d.geo.BlockOf(ppn), ErrWriteNotFree, d.state[ppn])
	}
	plane := d.planeOf(ppn)
	if d.eng != nil {
		d.program(ppn, lpn)
		return d.eng.submit(opWrite, cause, plane, ready), nil
	}
	pl := d.planes[plane]
	chip, ch := d.busFor(plane)

	// Controller -> register needs both buses and the plane register.
	start, xferDone := sim.AcquireAll(ready, d.timing.Transfer(d.geo.PageSize), chip, ch, pl)
	// Programming occupies the plane alone.
	_, end := pl.Acquire(xferDone, d.timing.PageProgram)

	d.program(ppn, lpn)
	d.stats.note(opWrite, cause, plane, end.Sub(ready))
	if d.rec != nil {
		d.rec.RecordOp(obs.Op{
			Kind: obs.OpWrite, Cause: obs.Cause(cause), Stored: lpn,
			Plane: int32(plane), Channel: d.planeChanIdx[plane],
			Ready: ready, Start: start, End: end,
		})
	}
	return end, nil
}

// CopyBack moves a valid page to a free page on the same plane using the
// intra-plane copy-back (internal data move) command. It never touches the
// chip bus or the channel. The vendor restriction applies: source and
// destination in-block offsets must share parity, or ErrParity is returned.
func (d *Device) CopyBack(src, dst PPN, ready sim.Time, cause Cause) (sim.Time, error) {
	if !d.validPPN(src) || !d.validPPN(dst) {
		return 0, fmt.Errorf("flash: copy-back %w: src %d dst %d", ErrOutOfRange, src, dst)
	}
	plane := d.planeOf(src)
	if plane != d.planeOf(dst) {
		return 0, fmt.Errorf("flash: copy-back src %v dst %v: %w",
			d.geo.BlockOf(src), d.geo.BlockOf(dst), ErrCrossPlane)
	}
	if d.pageOf(src)%2 != d.pageOf(dst)%2 {
		return 0, fmt.Errorf("flash: copy-back src page %d dst page %d: %w",
			d.geo.PageOf(src), d.geo.PageOf(dst), ErrParity)
	}
	if d.state[src] != PageValid {
		return 0, fmt.Errorf("flash: copy-back src ppn %d: %w, page is %v", src, ErrReadInvalid, d.state[src])
	}
	if d.state[dst] != PageFree {
		return 0, fmt.Errorf("flash: copy-back dst ppn %d: %w, page is %v", dst, ErrWriteNotFree, d.state[dst])
	}

	if d.eng != nil {
		lpn := d.lpns[src]
		d.invalidate(src)
		d.program(dst, lpn)
		return d.eng.submit(opCopyBack, cause, plane, ready), nil
	}
	pl := d.planes[plane]
	start, end := pl.Acquire(ready, d.timing.CopyBack())

	lpn := d.lpns[src]
	d.invalidate(src)
	d.program(dst, lpn)
	d.stats.note(opCopyBack, cause, plane, end.Sub(ready))
	if d.rec != nil {
		d.rec.RecordOp(obs.Op{
			Kind: obs.OpCopyBack, Cause: obs.Cause(cause), Stored: lpn,
			Plane: int32(plane), Channel: d.planeChanIdx[plane],
			Ready: ready, Start: start, End: end,
		})
	}
	return end, nil
}

// Erase erases a whole block, returning every page to Free. The caller (the
// FTL's garbage collector) is responsible for having relocated valid pages;
// erasing a block that still holds valid data returns ErrEraseValid.
func (d *Device) Erase(pb PlaneBlock, ready sim.Time, cause Cause) (sim.Time, error) {
	if !d.geo.ValidBlock(pb) {
		return 0, fmt.Errorf("flash: erase %w: %v", ErrOutOfRange, pb)
	}
	bi := d.geo.BlockIndex(pb)
	if d.blocks[bi].Valid > 0 {
		return 0, fmt.Errorf("flash: erase %v: %w (%d valid pages)", pb, ErrEraseValid, d.blocks[bi].Valid)
	}
	first := d.geo.FirstPPN(pb)
	for p := 0; p < d.geo.PagesPerBlock; p++ {
		d.state[first+PPN(p)] = PageFree
		d.lpns[first+PPN(p)] = -1
	}
	d.blocks[bi].Valid = 0
	d.blocks[bi].Invalid = 0
	d.blocks[bi].Written = 0
	d.blocks[bi].NextWrite = 0
	d.blocks[bi].Erases++
	d.stats.BlockErases[bi]++
	if d.eng != nil {
		return d.eng.submit(opErase, cause, pb.Plane, ready), nil
	}
	pl := d.planes[pb.Plane]
	start, end := pl.Acquire(ready, d.timing.BlockErase)

	d.stats.note(opErase, cause, pb.Plane, end.Sub(ready))
	if d.rec != nil {
		d.rec.RecordOp(obs.Op{
			Kind: obs.OpErase, Cause: obs.Cause(cause), Stored: bi,
			Plane: int32(pb.Plane), Channel: d.planeChanIdx[pb.Plane],
			Ready: ready, Start: start, End: end,
		})
	}
	return end, nil
}

// Invalidate marks a valid page stale without consuming simulated time; it
// models the metadata update an FTL performs when it supersedes a page.
func (d *Device) Invalidate(ppn PPN) error {
	if !d.validPPN(ppn) {
		return fmt.Errorf("flash: invalidate %w: ppn %d", ErrOutOfRange, ppn)
	}
	if d.state[ppn] != PageValid {
		return fmt.Errorf("flash: invalidate ppn %d: %w, page is %v", ppn, ErrReadInvalid, d.state[ppn])
	}
	d.invalidate(ppn)
	return nil
}

// WastePage invalidates a free page without writing it. DLOOP uses it to
// skip a destination page whose parity does not match the source of a
// copy-back. It consumes no simulated time (it is pure FTL bookkeeping).
func (d *Device) WastePage(ppn PPN) error {
	if !d.validPPN(ppn) {
		return fmt.Errorf("flash: waste %w: ppn %d", ErrOutOfRange, ppn)
	}
	if d.state[ppn] != PageFree {
		return fmt.Errorf("flash: waste ppn %d: %w, page is %v", ppn, ErrWriteNotFree, d.state[ppn])
	}
	bi := d.geo.BlockIndex(d.geo.BlockOf(ppn))
	d.state[ppn] = PageInvalid
	d.blocks[bi].Invalid++
	d.blocks[bi].Written++
	if p := d.geo.PageOf(ppn); p >= d.blocks[bi].NextWrite {
		d.blocks[bi].NextWrite = p + 1
	}
	d.stats.WastedPages++
	return nil
}

func (d *Device) program(ppn PPN, lpn int64) {
	bi := d.blockIndexOf(ppn)
	d.state[ppn] = PageValid
	d.lpns[ppn] = lpn
	d.blocks[bi].Valid++
	d.blocks[bi].Written++
	if p := d.pageOf(ppn); p >= d.blocks[bi].NextWrite {
		d.blocks[bi].NextWrite = p + 1
	}
}

func (d *Device) invalidate(ppn PPN) {
	bi := d.blockIndexOf(ppn)
	d.state[ppn] = PageInvalid
	d.lpns[ppn] = -1
	d.blocks[bi].Valid--
	d.blocks[bi].Invalid++
}
