package flash

import (
	"math/rand"
	"reflect"
	"testing"

	"dloop/internal/sim"
)

func shardTestGeometry() Geometry {
	return Geometry{
		Channels:           4,
		PackagesPerChannel: 1,
		ChipsPerPackage:    2,
		DiesPerChip:        1,
		PlanesPerDie:       2,
		BlocksPerPlane:     8,
		PagesPerBlock:      8,
		PageSize:           2048,
	}
}

// TestShardedDeviceMatchesSequential drives two identical devices — one
// sequential, one sharded — through the same randomized operation sequence,
// chaining completion times across operations (and therefore across shards)
// the way the FTLs do, and asserts every resolved end time, the statistics,
// and the full resource-timeline snapshots agree exactly.
func TestShardedDeviceMatchesSequential(t *testing.T) {
	geo := shardTestGeometry()
	seq, err := NewDevice(geo, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewDevice(geo, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if got := par.EnableSharding(geo.Channels); got != geo.Channels {
		t.Fatalf("EnableSharding gave %d shards, want %d", got, geo.Channels)
	}
	defer par.DisableSharding()

	rng := rand.New(rand.NewSource(99))
	run := func(d *Device) []sim.Time {
		r := rand.New(rand.NewSource(7)) // same op sequence for both devices
		var ends []sim.Time
		var chain sim.Time // previous op's completion, sometimes chained
		written := make([]PPN, 0, 512)
		nextFree := make([]int, geo.Planes()) // next free page slot per plane (block 0..)
		for i := 0; i < 4000; i++ {
			ready := sim.Time(i) * sim.Time(sim.Microsecond)
			if r.Intn(3) == 0 {
				ready = chain // dependency edge, possibly cross-shard
			}
			var end sim.Time
			var err error
			switch {
			case len(written) > 8 && r.Intn(2) == 0:
				src := written[r.Intn(len(written))]
				end, err = d.ReadPage(src, ready, CauseHost)
			default:
				plane := r.Intn(geo.Planes())
				slot := nextFree[plane]
				if slot >= geo.BlocksPerPlane*geo.PagesPerBlock {
					continue // plane full; rng streams stay aligned either way
				}
				nextFree[plane] = slot + 1
				ppn := geo.FirstPPN(PlaneBlock{Plane: plane, Block: slot / geo.PagesPerBlock}) + PPN(slot%geo.PagesPerBlock)
				end, err = d.WritePage(ppn, int64(i), ready, Cause(r.Intn(3)))
				written = append(written, ppn)
			}
			if err != nil {
				t.Fatal(err)
			}
			chain = end
			ends = append(ends, end)
		}
		d.SyncTiming()
		for i, e := range ends {
			ends[i] = d.ResolveTime(e)
		}
		d.ResetTimingEpoch()
		return ends
	}
	_ = rng

	seqEnds := run(seq)
	parEnds := run(par)
	if !reflect.DeepEqual(seqEnds, parEnds) {
		for i := range seqEnds {
			if seqEnds[i] != parEnds[i] {
				t.Fatalf("op %d: sequential end %v, sharded end %v", i, seqEnds[i], parEnds[i])
			}
		}
	}
	if !reflect.DeepEqual(seq.Stats(), par.Stats()) {
		t.Fatalf("stats diverged:\nseq %+v\npar %+v", seq.Stats(), par.Stats())
	}
	// The strongest check: the complete timelines (occupied intervals, busy
	// totals, op counts of every plane/chip-bus/channel resource) match.
	if !reflect.DeepEqual(seq.Snapshot(), par.Snapshot()) {
		t.Fatal("resource timeline snapshots diverged")
	}
}

// TestShardingClampAndToggle covers shard-count clamping and that disabling
// returns the device to the sequential engine with all statistics folded.
func TestShardingClampAndToggle(t *testing.T) {
	geo := shardTestGeometry()
	d, err := NewDevice(geo, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EnableSharding(64); got != geo.Channels {
		t.Fatalf("EnableSharding(64) = %d, want clamp to %d channels", got, geo.Channels)
	}
	if !d.Sharded() || d.ShardCount() != geo.Channels {
		t.Fatal("device not sharded after EnableSharding")
	}
	end, err := d.WritePage(0, 1, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.IsFutureTime(end) {
		t.Fatalf("sharded write returned concrete time %v", end)
	}
	if got := d.ResolveTime(end); got != sim.Time(DefaultTiming().ExternalWrite(geo.PageSize)) {
		t.Fatalf("resolved end %v, want %v", got, DefaultTiming().ExternalWrite(geo.PageSize))
	}
	d.DisableSharding()
	if d.Sharded() {
		t.Fatal("still sharded after DisableSharding")
	}
	if got := d.Stats().Writes(); got != 1 {
		t.Fatalf("worker stats not folded: %d writes", got)
	}
	// Sequential again: concrete times.
	end, err = d.WritePage(1, 2, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if sim.IsFutureTime(end) {
		t.Fatal("sequential write returned a future")
	}
}
