package flash

import (
	"testing"

	"dloop/internal/sim"
)

func benchDevice(b *testing.B) *Device {
	b.Helper()
	g := Geometry{
		Channels: 8, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 2, PlanesPerDie: 2, BlocksPerPlane: 256,
		PagesPerBlock: 64, PageSize: 2048,
	}
	d, err := NewDevice(g, DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkWriteErase measures the write-then-erase cycle, the inner loop of
// every simulation.
func BenchmarkWriteErase(b *testing.B) {
	d := benchDevice(b)
	g := d.Geometry()
	var at sim.Time
	// One untimed write/erase cycle over every block the timed loop will
	// revisit, so resource timelines and per-block state reach steady-state
	// capacity first; otherwise their one-time growth shows up as amortized
	// B/op noise that flakes the any-growth bench gate.
	for i := 0; i < g.Planes()*g.BlocksPerPlane; i++ {
		pb := PlaneBlock{Plane: i % g.Planes(), Block: (i / g.Planes()) % g.BlocksPerPlane}
		first := g.FirstPPN(pb)
		for p := 0; p < g.PagesPerBlock; p++ {
			end, err := d.WritePage(first+PPN(p), int64(p), at, CauseHost)
			if err != nil {
				b.Fatal(err)
			}
			at = end
			if err := d.Invalidate(first + PPN(p)); err != nil {
				b.Fatal(err)
			}
		}
		end, err := d.Erase(pb, at, CauseGC)
		if err != nil {
			b.Fatal(err)
		}
		at = end
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := PlaneBlock{Plane: i % g.Planes(), Block: (i / g.Planes()) % g.BlocksPerPlane}
		first := g.FirstPPN(pb)
		for p := 0; p < g.PagesPerBlock; p++ {
			end, err := d.WritePage(first+PPN(p), int64(p), at, CauseHost)
			if err != nil {
				b.Fatal(err)
			}
			at = end
			if err := d.Invalidate(first + PPN(p)); err != nil {
				b.Fatal(err)
			}
		}
		end, err := d.Erase(pb, at, CauseGC)
		if err != nil {
			b.Fatal(err)
		}
		at = end
	}
}

// BenchmarkCopyBack measures the intra-plane copy-back fast path: pages
// ping-pong between two blocks on one plane, with an erase each time a
// block drains.
func BenchmarkCopyBack(b *testing.B) {
	d := benchDevice(b)
	g := d.Geometry()
	var at sim.Time
	for p := 0; p < g.PagesPerBlock; p++ {
		end, err := d.WritePage(g.PPNOf(0, 0, p), int64(p), at, CauseHost)
		if err != nil {
			b.Fatal(err)
		}
		at = end
	}
	b.ReportAllocs()
	b.ResetTimer()
	srcBlock, dstBlock, page := 0, 1, 0
	for i := 0; i < b.N; i++ {
		from := g.PPNOf(0, srcBlock, page)
		to := g.PPNOf(0, dstBlock, page)
		end, err := d.CopyBack(from, to, at, CauseGC)
		if err != nil {
			b.Fatal(err)
		}
		at = end
		page++
		if page == g.PagesPerBlock {
			if _, err := d.Erase(PlaneBlock{0, srcBlock}, at, CauseGC); err != nil {
				b.Fatal(err)
			}
			srcBlock, dstBlock = dstBlock, srcBlock
			page = 0
		}
	}
}
