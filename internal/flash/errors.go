package flash

import "errors"

// Sentinel errors returned by Device operations. They are wrapped with
// addressing context; test with errors.Is.
var (
	// ErrOutOfRange marks an address outside the device geometry.
	ErrOutOfRange = errors.New("address out of range")
	// ErrReadInvalid marks a read (or copy-back source) of a page that does
	// not hold valid data.
	ErrReadInvalid = errors.New("page not valid")
	// ErrWriteNotFree marks a program of a page that has already been
	// programmed since the last erase: the erase-before-write limitation.
	ErrWriteNotFree = errors.New("page not free")
	// ErrEraseValid marks an erase of a block that still holds live data.
	ErrEraseValid = errors.New("block still holds valid pages")
	// ErrCrossPlane marks a copy-back whose source and destination are on
	// different planes; the internal-data-move command cannot cross planes.
	ErrCrossPlane = errors.New("copy-back crosses planes")
	// ErrParity marks a copy-back whose source and destination in-block page
	// offsets differ in parity, violating the vendor restriction.
	ErrParity = errors.New("copy-back parity mismatch")
)
