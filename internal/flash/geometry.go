// Package flash models a NAND flash solid-state disk at the level the DLOOP
// paper's extended FlashSim simulates it: a hierarchy of channels, packages,
// chips, dies, and planes; blocks that erase as a unit; pages that program as
// a unit; and the advanced intra-plane copy-back command with its
// same-parity restriction.
//
// The device enforces the NAND state machine (erase-before-write, no
// overwrite of a programmed page, copy-back only within one plane and only
// between pages whose in-block offsets share parity) and charges simulated
// time against the resources each operation occupies: the plane's cell
// array, the chip's serial I/O bus, and the channel.
package flash

import (
	"errors"
	"fmt"
)

// Geometry describes the physical shape of a flash SSD. All counts are per
// parent unit. The hierarchy follows Fig. 1 of the paper: the controller
// drives channels; packages share a channel; chips within a package share the
// package's I/O bus but have separate enable signals; each chip holds dies;
// each die holds planes; planes hold blocks of pages.
type Geometry struct {
	Channels           int
	PackagesPerChannel int
	ChipsPerPackage    int
	DiesPerChip        int
	PlanesPerDie       int
	BlocksPerPlane     int // physical blocks, including over-provisioning
	PagesPerBlock      int
	PageSize           int // bytes
}

// Validate reports whether every field is positive and the derived totals fit
// the address types.
func (g Geometry) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"PackagesPerChannel", g.PackagesPerChannel},
		{"ChipsPerPackage", g.ChipsPerPackage},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("flash: geometry field %s must be positive, got %d", f.name, f.v)
		}
	}
	if g.PagesPerBlock%2 != 0 {
		return errors.New("flash: PagesPerBlock must be even for the copy-back parity rule to be satisfiable")
	}
	if g.TotalPages() > 1<<56 {
		return errors.New("flash: geometry too large for 64-bit page addressing")
	}
	return nil
}

// Packages returns the total number of packages in the device.
func (g Geometry) Packages() int { return g.Channels * g.PackagesPerChannel }

// Chips returns the total number of chips in the device.
func (g Geometry) Chips() int { return g.Packages() * g.ChipsPerPackage }

// Dies returns the total number of dies in the device.
func (g Geometry) Dies() int { return g.Chips() * g.DiesPerChip }

// Planes returns the total number of planes in the device.
func (g Geometry) Planes() int { return g.Dies() * g.PlanesPerDie }

// PlanesPerChip returns the number of planes behind one chip's serial bus.
func (g Geometry) PlanesPerChip() int { return g.DiesPerChip * g.PlanesPerDie }

// PlanesPerChannel returns the number of planes behind one channel.
func (g Geometry) PlanesPerChannel() int {
	return g.PackagesPerChannel * g.ChipsPerPackage * g.PlanesPerChip()
}

// TotalBlocks returns the number of physical blocks in the device.
func (g Geometry) TotalBlocks() int64 {
	return int64(g.Planes()) * int64(g.BlocksPerPlane)
}

// TotalPages returns the number of physical pages in the device.
func (g Geometry) TotalPages() int64 {
	return g.TotalBlocks() * int64(g.PagesPerBlock)
}

// PhysicalBytes returns the raw capacity of the device in bytes, including
// over-provisioned blocks.
func (g Geometry) PhysicalBytes() int64 {
	return g.TotalPages() * int64(g.PageSize)
}

// BlockBytes returns the size of one block in bytes.
func (g Geometry) BlockBytes() int64 { return int64(g.PagesPerBlock) * int64(g.PageSize) }

// ChipOfPlane returns the index of the chip containing the given plane.
func (g Geometry) ChipOfPlane(plane int) int { return plane / g.PlanesPerChip() }

// DieOfPlane returns the global die index containing the given plane.
func (g Geometry) DieOfPlane(plane int) int { return plane / g.PlanesPerDie }

// PackageOfPlane returns the index of the package containing the given plane.
func (g Geometry) PackageOfPlane(plane int) int {
	return g.ChipOfPlane(plane) / g.ChipsPerPackage
}

// ChannelOfPlane returns the channel that serves the given plane. Packages
// are assigned to channels round-robin, so growing a device by adding
// packages spreads the new capacity across channels the way adding packages
// to a real SSD does.
func (g Geometry) ChannelOfPlane(plane int) int {
	return g.PackageOfPlane(plane) % g.Channels
}

func (g Geometry) String() string {
	return fmt.Sprintf("%dch×%dpkg×%dchip×%ddie×%dplane, %d blocks/plane × %d pages × %dB (%d planes, %.1f GB raw)",
		g.Channels, g.PackagesPerChannel, g.ChipsPerPackage, g.DiesPerChip, g.PlanesPerDie,
		g.BlocksPerPlane, g.PagesPerBlock, g.PageSize,
		g.Planes(), float64(g.PhysicalBytes())/(1<<30))
}

// PPN is a physical page number: a dense index over every physical page in
// the device, ordered plane-major then block then page offset.
type PPN int64

// InvalidPPN marks "no physical page", used for unmapped logical pages.
const InvalidPPN PPN = -1

// PlaneBlock names one physical block by its plane and in-plane block index.
type PlaneBlock struct {
	Plane int
	Block int
}

func (pb PlaneBlock) String() string {
	return fmt.Sprintf("plane %d block %d", pb.Plane, pb.Block)
}

// PPNOf composes a physical page number from plane, in-plane block, and
// in-block page offset.
func (g Geometry) PPNOf(plane, block, page int) PPN {
	return PPN((int64(plane)*int64(g.BlocksPerPlane)+int64(block))*int64(g.PagesPerBlock) + int64(page))
}

// PlaneOf returns the plane containing a physical page.
func (g Geometry) PlaneOf(ppn PPN) int {
	return int(int64(ppn) / int64(g.PagesPerBlock) / int64(g.BlocksPerPlane))
}

// BlockOf returns the block containing a physical page.
func (g Geometry) BlockOf(ppn PPN) PlaneBlock {
	b := int64(ppn) / int64(g.PagesPerBlock)
	return PlaneBlock{
		Plane: int(b / int64(g.BlocksPerPlane)),
		Block: int(b % int64(g.BlocksPerPlane)),
	}
}

// PageOf returns the in-block page offset of a physical page. The copy-back
// parity rule is defined over this offset.
func (g Geometry) PageOf(ppn PPN) int {
	return int(int64(ppn) % int64(g.PagesPerBlock))
}

// BlockIndex returns a dense index over all physical blocks for the given
// block address, suitable for indexing flat per-block state.
func (g Geometry) BlockIndex(pb PlaneBlock) int64 {
	return int64(pb.Plane)*int64(g.BlocksPerPlane) + int64(pb.Block)
}

// FirstPPN returns the physical page number of page 0 of the given block.
func (g Geometry) FirstPPN(pb PlaneBlock) PPN {
	return PPN(g.BlockIndex(pb) * int64(g.PagesPerBlock))
}

// ValidBlock reports whether the block address is within the geometry.
func (g Geometry) ValidBlock(pb PlaneBlock) bool {
	return pb.Plane >= 0 && pb.Plane < g.Planes() && pb.Block >= 0 && pb.Block < g.BlocksPerPlane
}

// ValidPPN reports whether the physical page number is within the geometry.
func (g Geometry) ValidPPN(ppn PPN) bool {
	return ppn >= 0 && int64(ppn) < g.TotalPages()
}
