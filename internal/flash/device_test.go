package flash

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dloop/internal/sim"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(testGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	// §III.A with 2 KB pages: transfer ≈ 50 µs, inter-plane copy ≈ 325 µs,
	// intra-plane copy-back = 225 µs, a ~30.7% saving.
	xfer := tm.Transfer(2048).Microseconds()
	if xfer < 50 || xfer > 52 {
		t.Errorf("2KB transfer = %.2f µs, want ≈51.2", xfer)
	}
	inter := tm.InterPlaneCopy(2048).Microseconds()
	if inter < 325 || inter > 330 {
		t.Errorf("inter-plane copy = %.2f µs, want ≈327", inter)
	}
	cb := tm.CopyBack().Microseconds()
	if cb != 225 {
		t.Errorf("copy-back = %.2f µs, want 225", cb)
	}
	saving := 1 - cb/inter
	if saving < 0.30 || saving > 0.32 {
		t.Errorf("copy-back saving = %.3f, want ≈0.307", saving)
	}
}

func TestWriteReadLifecycle(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	ppn := g.PPNOf(3, 2, 0)

	if _, err := d.ReadPage(ppn, 0, CauseHost); !errors.Is(err, ErrReadInvalid) {
		t.Fatalf("read of free page: got %v, want ErrReadInvalid", err)
	}
	end, err := d.WritePage(ppn, 42, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	wantW := sim.Time(0).Add(d.Timing().ExternalWrite(g.PageSize))
	if end != wantW {
		t.Errorf("write completion %v, want %v", end, wantW)
	}
	if d.PageState(ppn) != PageValid || d.PageLPN(ppn) != 42 {
		t.Fatalf("page after write: state=%v lpn=%d", d.PageState(ppn), d.PageLPN(ppn))
	}
	if _, err := d.WritePage(ppn, 43, end, CauseHost); !errors.Is(err, ErrWriteNotFree) {
		t.Fatalf("overwrite: got %v, want ErrWriteNotFree (erase-before-write)", err)
	}
	rEnd, err := d.ReadPage(ppn, end, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if got := rEnd.Sub(end); got != d.Timing().ExternalRead(g.PageSize) {
		t.Errorf("read latency %v, want %v", got, d.Timing().ExternalRead(g.PageSize))
	}
	bi := d.Block(PlaneBlock{3, 2})
	if bi.Valid != 1 || bi.Written != 1 || bi.NextWrite != 1 {
		t.Errorf("block info %+v", bi)
	}
}

func TestInvalidateAndErase(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	pb := PlaneBlock{1, 1}
	var at sim.Time
	for p := 0; p < g.PagesPerBlock; p++ {
		var err error
		at, err = d.WritePage(g.PPNOf(1, 1, p), int64(p), at, CauseHost)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Erase(pb, at, CauseGC); !errors.Is(err, ErrEraseValid) {
		t.Fatalf("erase with valid pages: got %v, want ErrEraseValid", err)
	}
	for p := 0; p < g.PagesPerBlock; p++ {
		if err := d.Invalidate(g.PPNOf(1, 1, p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Invalidate(g.PPNOf(1, 1, 0)); err == nil {
		t.Fatal("double invalidate should fail")
	}
	end, err := d.Erase(pb, at, CauseGC)
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Sub(at); got != d.Timing().BlockErase {
		t.Errorf("erase latency %v, want %v", got, d.Timing().BlockErase)
	}
	bi := d.Block(pb)
	if bi.Valid != 0 || bi.Invalid != 0 || bi.Written != 0 || bi.Erases != 1 || bi.NextWrite != 0 {
		t.Errorf("block after erase: %+v", bi)
	}
	for p := 0; p < g.PagesPerBlock; p++ {
		if d.PageState(g.PPNOf(1, 1, p)) != PageFree {
			t.Fatalf("page %d not free after erase", p)
		}
	}
	// Block is writable again.
	if _, err := d.WritePage(g.PPNOf(1, 1, 0), 99, end, CauseHost); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBackRules(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	at, err := d.WritePage(g.PPNOf(0, 0, 0), 7, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-plane rejected.
	if _, err := d.CopyBack(g.PPNOf(0, 0, 0), g.PPNOf(1, 0, 0), at, CauseGC); !errors.Is(err, ErrCrossPlane) {
		t.Fatalf("cross-plane copy-back: got %v, want ErrCrossPlane", err)
	}
	// Parity mismatch rejected (src page 0 even, dst page 1 odd).
	if _, err := d.CopyBack(g.PPNOf(0, 0, 0), g.PPNOf(0, 1, 1), at, CauseGC); !errors.Is(err, ErrParity) {
		t.Fatalf("parity mismatch: got %v, want ErrParity", err)
	}
	// Legal copy-back: same plane, both even offsets.
	dst := g.PPNOf(0, 1, 2)
	end, err := d.CopyBack(g.PPNOf(0, 0, 0), dst, at, CauseGC)
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Sub(at); got != d.Timing().CopyBack() {
		t.Errorf("copy-back latency %v, want %v", got, d.Timing().CopyBack())
	}
	if d.PageState(g.PPNOf(0, 0, 0)) != PageInvalid {
		t.Error("source not invalidated")
	}
	if d.PageState(dst) != PageValid || d.PageLPN(dst) != 7 {
		t.Error("destination not valid with moved lpn")
	}
	// Copy-back must not touch buses.
	u := d.Utilization()
	busBusy := u.ChipBusBusy[0] + u.ChannelBusy[0]
	wantBus := d.Timing().Transfer(g.PageSize) * 2 // only the initial write's transfer (chip+channel)
	if busBusy != wantBus {
		t.Errorf("bus busy %v, want %v (copy-back must bypass buses)", busBusy, wantBus)
	}
}

func TestWastePage(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	ppn := g.PPNOf(2, 0, 0)
	if err := d.WastePage(ppn); err != nil {
		t.Fatal(err)
	}
	if d.PageState(ppn) != PageInvalid {
		t.Fatal("wasted page should be invalid")
	}
	if err := d.WastePage(ppn); err == nil {
		t.Fatal("wasting a non-free page should fail")
	}
	bi := d.Block(PlaneBlock{2, 0})
	if bi.Invalid != 1 || bi.Written != 1 || bi.NextWrite != 1 {
		t.Errorf("block after waste: %+v", bi)
	}
	if d.Stats().WastedPages != 1 {
		t.Errorf("WastedPages = %d, want 1", d.Stats().WastedPages)
	}
}

func TestPlaneParallelismAndBusContention(t *testing.T) {
	g := testGeometry()
	d, err := NewDevice(g, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	tm := d.Timing()
	xfer := tm.Transfer(g.PageSize)

	// Two writes to planes on different channels at t=0: fully parallel.
	e1, err := d.WritePage(g.PPNOf(0, 0, 0), 1, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.WritePage(g.PPNOf(8, 0, 0), 2, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Errorf("cross-channel writes should complete together: %v vs %v", e1, e2)
	}

	// Two writes to different planes on the SAME chip: transfers serialize on
	// the chip bus, programs overlap.
	d2, _ := NewDevice(g, DefaultTiming())
	f1, err := d2.WritePage(g.PPNOf(0, 0, 0), 1, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d2.WritePage(g.PPNOf(1, 0, 0), 2, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != sim.Time(0).Add(xfer+tm.PageProgram) {
		t.Errorf("first write ends %v", f1)
	}
	want2 := sim.Time(0).Add(2*xfer + tm.PageProgram)
	if f2 != want2 {
		t.Errorf("second write on shared bus ends %v, want %v", f2, want2)
	}

	// Same plane: fully serial.
	d3, _ := NewDevice(g, DefaultTiming())
	h1, _ := d3.WritePage(g.PPNOf(0, 0, 0), 1, 0, CauseHost)
	h2, err := d3.WritePage(g.PPNOf(0, 0, 1), 2, 0, CauseHost)
	if err != nil {
		t.Fatal(err)
	}
	if h2 <= h1 || h2 != h1.Add(xfer+tm.PageProgram) {
		t.Errorf("same-plane writes: %v then %v, want serial", h1, h2)
	}
}

func TestStatsAttribution(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	at, _ := d.WritePage(g.PPNOf(0, 0, 0), 1, 0, CauseHost)
	at, _ = d.WritePage(g.PPNOf(0, 0, 1), 2, at, CauseMap)
	at, _ = d.ReadPage(g.PPNOf(0, 0, 0), at, CauseHost)
	at, _ = d.CopyBack(g.PPNOf(0, 0, 1), g.PPNOf(0, 1, 1), at, CauseGC)
	_ = d.Invalidate(g.PPNOf(0, 0, 0))
	if _, err := d.Erase(PlaneBlock{0, 0}, at, CauseGC); err != nil {
		t.Fatal(err)
	}

	s := d.Stats()
	if s.Reads() != 1 || s.Writes() != 2 || s.CopyBacks() != 1 || s.Erases() != 1 {
		t.Fatalf("totals: r=%d w=%d cb=%d e=%d", s.Reads(), s.Writes(), s.CopyBacks(), s.Erases())
	}
	r, w, cb, e := s.ByCause(CauseHost)
	if r != 1 || w != 1 || cb != 0 || e != 0 {
		t.Errorf("host cause: %d %d %d %d", r, w, cb, e)
	}
	r, w, cb, e = s.ByCause(CauseGC)
	if r != 0 || w != 0 || cb != 1 || e != 1 {
		t.Errorf("gc cause: %d %d %d %d", r, w, cb, e)
	}
	totals := s.PlaneTotals()
	if totals[0] != 5 {
		t.Errorf("plane 0 ops = %d, want 5", totals[0])
	}
	cbGC, extGC := s.GCMoves()
	if cbGC != 1 || extGC != 0 {
		t.Errorf("GCMoves: %d %d", cbGC, extGC)
	}
	if s.BlockErases[0] != 1 {
		t.Errorf("block 0 erases = %d, want 1", s.BlockErases[0])
	}
}

func TestResetStatsPreservesStateAndWear(t *testing.T) {
	d := newTestDevice(t)
	g := d.Geometry()
	at, _ := d.WritePage(g.PPNOf(0, 0, 0), 1, 0, CauseHost)
	_ = d.Invalidate(g.PPNOf(0, 0, 0))
	if _, err := d.Erase(PlaneBlock{0, 0}, at, CauseGC); err != nil {
		t.Fatal(err)
	}
	at2, _ := d.WritePage(g.PPNOf(0, 0, 0), 5, at, CauseHost)

	d.ResetStats()
	s := d.Stats()
	if s.Writes() != 0 || s.Erases() != 0 {
		t.Error("counters should be zero after reset")
	}
	if s.BlockErases[0] != 1 {
		t.Error("wear counters must survive reset")
	}
	if d.PageState(g.PPNOf(0, 0, 0)) != PageValid {
		t.Error("page state must survive reset")
	}
	if d.PlaneFreeAt(0) != 0 {
		t.Error("resource timelines should rewind to zero")
	}
	_ = at2
}

// Property: under random legal operations, per-block accounting always
// matches a recount of page states, and Valid+Invalid == Written.
func TestDeviceAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGeometry()
		d, err := NewDevice(g, DefaultTiming())
		if err != nil {
			return false
		}
		var at sim.Time
		for i := 0; i < 400; i++ {
			plane := rng.Intn(g.Planes())
			block := rng.Intn(g.BlocksPerPlane)
			page := rng.Intn(g.PagesPerBlock)
			ppn := g.PPNOf(plane, block, page)
			switch rng.Intn(4) {
			case 0:
				if end, err := d.WritePage(ppn, int64(i), at, CauseHost); err == nil {
					at = end
				}
			case 1:
				_ = d.Invalidate(ppn)
			case 2:
				pb := PlaneBlock{plane, block}
				if d.Block(pb).Valid == 0 {
					if end, err := d.Erase(pb, at, CauseGC); err == nil {
						at = end
					}
				}
			case 3:
				dst := g.PPNOf(plane, rng.Intn(g.BlocksPerPlane), page) // same parity by construction
				if end, err := d.CopyBack(ppn, dst, at, CauseGC); err == nil {
					at = end
				}
			}
		}
		// Recount.
		for plane := 0; plane < g.Planes(); plane++ {
			for block := 0; block < g.BlocksPerPlane; block++ {
				var valid, invalid int
				for page := 0; page < g.PagesPerBlock; page++ {
					switch d.PageState(g.PPNOf(plane, block, page)) {
					case PageValid:
						valid++
					case PageInvalid:
						invalid++
					}
				}
				bi := d.Block(PlaneBlock{plane, block})
				if bi.Valid != valid || bi.Invalid != invalid || bi.Written != valid+invalid {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
