package flash

import (
	"fmt"
	"sync"

	"dloop/internal/sim"
)

// Sharded timing engine.
//
// The sequential device interleaves two very different kinds of work on one
// goroutine: the page/block state machine plus FTL bookkeeping (cheap,
// order-sensitive), and the resource-timeline arithmetic of
// Acquire/AcquireAll (two thirds of a trace replay's CPU time, but
// partitioned — a plane, its chip bus, and its channel all live behind one
// channel). EnableSharding splits them: the control goroutine keeps running
// the state machine in exactly the sequential order, while each operation's
// timeline math is shipped to the worker owning its channel as a fixed-size
// descriptor. The completion time returned to the FTL becomes a future
// handle (see sim.FutureSlab); a chained ready time that is itself a future
// is resolved by the worker when the dependency publishes, turning the
// conservative-lookahead barrier of classic parallel discrete-event
// simulation into exact per-operation dataflow.
//
// Determinism falls out of three structural facts rather than a lookahead
// bound: (1) the control plane never reads a timing result before an epoch
// barrier, so its decision sequence is byte-identical to the sequential
// engine; (2) every resource belongs to exactly one shard and descriptors
// are pushed in global issue order over FIFO rings, so each resource sees
// the same acquisition sequence and computes the same intervals; (3) the
// statistics workers touch are either per-plane (disjoint) or commutative
// integer sums, and the response-time accumulators with order-sensitive
// floating point are filled in request order at the barrier.
type shardEngine struct {
	dev     *Device
	slab    sim.FutureSlab
	shardOf []int32 // plane -> worker index
	workers []*shardWorker
	wg      sync.WaitGroup

	// Per-operation service times, precomputed so workers never touch the
	// Timing struct.
	readLat  sim.Duration
	progLat  sim.Duration
	xferLat  sim.Duration
	cbLat    sim.Duration
	eraseLat sim.Duration
}

// shardOp is one deferred timing computation. Descriptors are pointer-free
// and fixed-size; ready may be a concrete time or a future handle from an
// earlier operation on any shard.
type shardOp struct {
	ready sim.Time
	slot  int32
	plane int32
	kind  opKind
	cause Cause
}

type shardWorker struct {
	q     *sim.SPSC[shardOp]
	stats Stats // folded into Device.stats at every barrier
}

// shardQueueCap bounds descriptors in flight per shard. The controller
// flushes every epoch (~1k requests, a few ops each, spread over shards), so
// the ring almost never exerts backpressure.
const shardQueueCap = 1 << 13

func newShardEngine(d *Device, shards int) *shardEngine {
	e := &shardEngine{
		dev:      d,
		shardOf:  make([]int32, d.geo.Planes()),
		workers:  make([]*shardWorker, shards),
		readLat:  d.timing.PageRead,
		progLat:  d.timing.PageProgram,
		xferLat:  d.timing.Transfer(d.geo.PageSize),
		cbLat:    d.timing.CopyBack(),
		eraseLat: d.timing.BlockErase,
	}
	for p := range e.shardOf {
		e.shardOf[p] = d.planeChanIdx[p] % int32(shards)
	}
	for i := range e.workers {
		w := &shardWorker{q: sim.NewSPSC[shardOp](shardQueueCap)}
		w.stats.init(d.geo)
		e.workers[i] = w
		e.wg.Add(1)
		go e.run(w)
	}
	return e
}

// submit defers one operation's timing to its shard and returns a future
// handle for its completion time. Control-plane only.
func (e *shardEngine) submit(kind opKind, cause Cause, plane int, ready sim.Time) sim.Time {
	slot, h := e.slab.NewSlot()
	e.workers[e.shardOf[plane]].q.Push(shardOp{
		ready: ready, slot: int32(slot), plane: int32(plane), kind: kind, cause: cause,
	})
	return h
}

// run is one shard's worker loop: resolve the ready time if it is a future,
// replay exactly the acquisition sequence the sequential device would have
// performed, publish the end time, account the latency.
func (e *shardEngine) run(w *shardWorker) {
	defer e.wg.Done()
	d := e.dev
	for {
		op, ok := w.q.PopWait()
		if !ok {
			return
		}
		ready := op.ready
		if sim.IsFutureTime(ready) {
			ready = e.slab.Wait(sim.FutureSlot(ready))
		}
		pl := d.planes[op.plane]
		var end sim.Time
		switch op.kind {
		case opRead:
			_, cellDone := pl.Acquire(ready, e.readLat)
			_, end = sim.AcquireAll(cellDone, e.xferLat, d.planeChip[op.plane], d.planeChannel[op.plane], pl)
		case opWrite:
			_, xferDone := sim.AcquireAll(ready, e.xferLat, d.planeChip[op.plane], d.planeChannel[op.plane], pl)
			_, end = pl.Acquire(xferDone, e.progLat)
		case opCopyBack:
			_, end = pl.Acquire(ready, e.cbLat)
		case opErase:
			_, end = pl.Acquire(ready, e.eraseLat)
		}
		e.slab.Resolve(int(op.slot), end)
		w.stats.note(op.kind, op.cause, int(op.plane), end.Sub(ready))
		w.q.MarkDone()
	}
}

// sync is the epoch barrier: wait until every shard has processed everything
// submitted so far, then fold the per-shard counters into the device's
// accumulator. After sync every outstanding future is resolved.
func (e *shardEngine) sync() {
	for _, w := range e.workers {
		w.q.AwaitQuiesced()
	}
	for _, w := range e.workers {
		e.dev.stats.merge(&w.stats)
		w.stats.clearCounts()
	}
}

// stop shuts the workers down after a final barrier.
func (e *shardEngine) stop() {
	e.sync()
	for _, w := range e.workers {
		w.q.Close()
	}
	e.wg.Wait()
}

// EnableSharding switches the device's timing computations onto per-channel
// worker goroutines. shards is clamped to [1, Channels]; the actual count is
// returned. The device must be quiescent (no outstanding futures) and must
// not have a recorder attached — per-op trace events are inherently ordered,
// so observability runs stay on the sequential path.
func (d *Device) EnableSharding(shards int) int {
	if d.eng != nil {
		return len(d.eng.workers)
	}
	if d.rec != nil {
		panic("flash: EnableSharding with a recorder attached")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > d.geo.Channels {
		shards = d.geo.Channels
	}
	d.eng = newShardEngine(d, shards)
	return shards
}

// DisableSharding drains the workers, folds their statistics, and returns
// the device to the sequential engine. No-op when sharding is off.
func (d *Device) DisableSharding() {
	if d.eng == nil {
		return
	}
	d.eng.stop()
	d.eng = nil
}

// Sharded reports whether the deferred timing engine is active.
func (d *Device) Sharded() bool { return d.eng != nil }

// ShardCount returns the number of timing shards (1 when sequential).
func (d *Device) ShardCount() int {
	if d.eng == nil {
		return 1
	}
	return len(d.eng.workers)
}

// SyncTiming blocks until every deferred operation has been computed and its
// statistics folded in. After it returns, every future handle handed out so
// far resolves without waiting. No-op when sequential.
func (d *Device) SyncTiming() {
	if d.eng != nil {
		d.eng.sync()
	}
}

// ResetTimingEpoch recycles the future-handle slab. The caller must hold no
// live handles: SyncTiming first, then resolve or drop everything.
func (d *Device) ResetTimingEpoch() {
	if d.eng != nil {
		d.eng.slab.Reset()
	}
}

// ResolveTime turns a possibly-future time into a concrete one, waiting on
// the owning worker if it has not published yet. Identity for concrete times
// and on the sequential engine.
func (d *Device) ResolveTime(t sim.Time) sim.Time {
	if !sim.IsFutureTime(t) {
		return t
	}
	if d.eng == nil {
		panic(fmt.Sprintf("flash: future time %d with sharding disabled", int64(t)))
	}
	return d.eng.slab.Wait(sim.FutureSlot(t))
}
