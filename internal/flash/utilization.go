package flash

import "dloop/internal/sim"

// Utilization reports how much simulated time each resource class spent busy.
type Utilization struct {
	PlaneBusy   []sim.Duration // indexed by global plane
	ChipBusBusy []sim.Duration // indexed by global chip
	ChannelBusy []sim.Duration // indexed by channel
}

// Utilization returns the accumulated busy time of every plane, chip serial
// bus, and channel since construction or the last ResetStats.
func (d *Device) Utilization() Utilization {
	u := Utilization{
		PlaneBusy:   make([]sim.Duration, len(d.planes)),
		ChipBusBusy: make([]sim.Duration, len(d.chipBus)),
		ChannelBusy: make([]sim.Duration, len(d.channels)),
	}
	for i, r := range d.planes {
		u.PlaneBusy[i] = r.BusyTime()
	}
	for i, r := range d.chipBus {
		u.ChipBusBusy[i] = r.BusyTime()
	}
	for i, r := range d.channels {
		u.ChannelBusy[i] = r.BusyTime()
	}
	return u
}
