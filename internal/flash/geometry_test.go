package flash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{
		Channels:           2,
		PackagesPerChannel: 1,
		ChipsPerPackage:    2,
		DiesPerChip:        2,
		PlanesPerDie:       2,
		BlocksPerPlane:     8,
		PagesPerBlock:      4,
		PageSize:           2048,
	}
}

func TestGeometryTotals(t *testing.T) {
	g := testGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Packages(); got != 2 {
		t.Errorf("Packages: got %d, want 2", got)
	}
	if got := g.Chips(); got != 4 {
		t.Errorf("Chips: got %d, want 4", got)
	}
	if got := g.Dies(); got != 8 {
		t.Errorf("Dies: got %d, want 8", got)
	}
	if got := g.Planes(); got != 16 {
		t.Errorf("Planes: got %d, want 16", got)
	}
	if got := g.TotalBlocks(); got != 128 {
		t.Errorf("TotalBlocks: got %d, want 128", got)
	}
	if got := g.TotalPages(); got != 512 {
		t.Errorf("TotalPages: got %d, want 512", got)
	}
	if got := g.PhysicalBytes(); got != 512*2048 {
		t.Errorf("PhysicalBytes: got %d, want %d", got, 512*2048)
	}
}

func TestGeometryValidateRejectsBadFields(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.PackagesPerChannel = -1 },
		func(g *Geometry) { g.ChipsPerPackage = 0 },
		func(g *Geometry) { g.DiesPerChip = 0 },
		func(g *Geometry) { g.PlanesPerDie = 0 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.PagesPerBlock = 0 },
		func(g *Geometry) { g.PageSize = 0 },
		func(g *Geometry) { g.PagesPerBlock = 63 }, // odd breaks parity rule
	}
	for i, mutate := range cases {
		g := testGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
}

func TestPPNRoundTrip(t *testing.T) {
	g := testGeometry()
	for plane := 0; plane < g.Planes(); plane++ {
		for block := 0; block < g.BlocksPerPlane; block++ {
			for page := 0; page < g.PagesPerBlock; page++ {
				ppn := g.PPNOf(plane, block, page)
				if !g.ValidPPN(ppn) {
					t.Fatalf("PPNOf(%d,%d,%d)=%d invalid", plane, block, page, ppn)
				}
				if got := g.PlaneOf(ppn); got != plane {
					t.Fatalf("PlaneOf(%d): got %d, want %d", ppn, got, plane)
				}
				pb := g.BlockOf(ppn)
				if pb.Plane != plane || pb.Block != block {
					t.Fatalf("BlockOf(%d): got %v, want plane %d block %d", ppn, pb, plane, block)
				}
				if got := g.PageOf(ppn); got != page {
					t.Fatalf("PageOf(%d): got %d, want %d", ppn, got, page)
				}
			}
		}
	}
}

func TestPPNRoundTripProperty(t *testing.T) {
	g := Geometry{
		Channels: 4, PackagesPerChannel: 2, ChipsPerPackage: 2,
		DiesPerChip: 2, PlanesPerDie: 2, BlocksPerPlane: 512,
		PagesPerBlock: 64, PageSize: 4096,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plane := rng.Intn(g.Planes())
		block := rng.Intn(g.BlocksPerPlane)
		page := rng.Intn(g.PagesPerBlock)
		ppn := g.PPNOf(plane, block, page)
		pb := g.BlockOf(ppn)
		return g.PlaneOf(ppn) == plane && pb.Plane == plane && pb.Block == block &&
			g.PageOf(ppn) == page && g.FirstPPN(pb)+PPN(page) == ppn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelAssignmentRoundRobin(t *testing.T) {
	g := testGeometry()
	// 2 packages over 2 channels: planes 0..7 on channel 0, 8..15 on channel 1.
	for plane := 0; plane < g.Planes(); plane++ {
		wantPkg := plane / 8
		if got := g.PackageOfPlane(plane); got != wantPkg {
			t.Errorf("PackageOfPlane(%d): got %d, want %d", plane, got, wantPkg)
		}
		if got := g.ChannelOfPlane(plane); got != wantPkg%g.Channels {
			t.Errorf("ChannelOfPlane(%d): got %d, want %d", plane, got, wantPkg%g.Channels)
		}
	}
	// With more packages than channels, assignment wraps.
	g.PackagesPerChannel = 3
	if got := g.ChannelOfPlane(2 * 8); got != 0 {
		t.Errorf("third package should wrap to channel 0, got %d", got)
	}
}

func TestBlockIndexDense(t *testing.T) {
	g := testGeometry()
	seen := make(map[int64]bool)
	for plane := 0; plane < g.Planes(); plane++ {
		for block := 0; block < g.BlocksPerPlane; block++ {
			idx := g.BlockIndex(PlaneBlock{plane, block})
			if idx < 0 || idx >= g.TotalBlocks() {
				t.Fatalf("BlockIndex out of range: %d", idx)
			}
			if seen[idx] {
				t.Fatalf("BlockIndex collision at %d", idx)
			}
			seen[idx] = true
		}
	}
}

func TestValidBlockBounds(t *testing.T) {
	g := testGeometry()
	valid := []PlaneBlock{{0, 0}, {15, 7}}
	invalid := []PlaneBlock{{-1, 0}, {0, -1}, {16, 0}, {0, 8}}
	for _, pb := range valid {
		if !g.ValidBlock(pb) {
			t.Errorf("ValidBlock(%v) = false, want true", pb)
		}
	}
	for _, pb := range invalid {
		if g.ValidBlock(pb) {
			t.Errorf("ValidBlock(%v) = true, want false", pb)
		}
	}
}
