package flash

import (
	"dloop/internal/ckpt"
	"dloop/internal/sim"
)

// EncodeDeviceState appends a DeviceState to w. The big columns (page
// states, OOB logical tags, block bookkeeping) go out as contiguous
// length-prefixed slabs; the resource timelines follow per unit.
func EncodeDeviceState(w *ckpt.Writer, s *DeviceState) {
	dst := w.Raw(4 + len(s.state))
	putU32(dst, uint32(len(s.state)))
	for i, v := range s.state {
		dst[4+i] = byte(v)
	}
	w.I64s(s.lpns)
	w.U32(uint32(len(s.blocks)))
	for _, b := range s.blocks {
		w.I32(int32(b.Valid))
		w.I32(int32(b.Invalid))
		w.I32(int32(b.Written))
		w.I32(int32(b.Erases))
		w.I32(int32(b.NextWrite))
	}
	encodeResources(w, s.planes)
	encodeResources(w, s.chipBus)
	encodeResources(w, s.channels)
	encodeStats(w, &s.stats)
}

// DecodeDeviceState reads a DeviceState written by EncodeDeviceState and
// validates the column lengths against geo, so a checkpoint from a
// different device shape fails cleanly instead of half-restoring.
func DecodeDeviceState(r *ckpt.Reader, geo Geometry) *DeviceState {
	s := &DeviceState{}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	raw := r.Raw(n)
	if raw == nil {
		return nil
	}
	s.state = make([]PageState, n)
	for i, v := range raw {
		s.state[i] = PageState(v)
	}
	s.lpns = r.I64s()
	nb := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	s.blocks = make([]BlockInfo, nb)
	for i := range s.blocks {
		s.blocks[i] = BlockInfo{
			Valid:     int(r.I32()),
			Invalid:   int(r.I32()),
			Written:   int(r.I32()),
			Erases:    int(r.I32()),
			NextWrite: int(r.I32()),
		}
	}
	s.planes = decodeResources(r)
	s.chipBus = decodeResources(r)
	s.channels = decodeResources(r)
	decodeStats(r, &s.stats)
	if r.Err() != nil {
		return nil
	}
	if int64(len(s.state)) != geo.TotalPages() || int64(len(s.lpns)) != geo.TotalPages() ||
		int64(len(s.blocks)) != geo.TotalBlocks() || len(s.planes) != geo.Planes() ||
		len(s.chipBus) != geo.Chips() || len(s.channels) != geo.Channels ||
		len(s.stats.PlaneOps) != geo.Planes() || int64(len(s.stats.BlockErases)) != geo.TotalBlocks() {
		r.Failf("flash: device state does not match geometry %s", geo)
		return nil
	}
	return s
}

func putU32(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

func encodeResources(w *ckpt.Writer, rs []sim.ResourceState) {
	w.U32(uint32(len(rs)))
	for _, s := range rs {
		sim.EncodeResourceState(w, s)
	}
}

func decodeResources(r *ckpt.Reader) []sim.ResourceState {
	n := int(r.U32())
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]sim.ResourceState, n)
	for i := range out {
		out[i] = sim.DecodeResourceState(r)
	}
	return out
}

func encodeStats(w *ckpt.Writer, s *Stats) {
	for op := opKind(0); op < numOps; op++ {
		for c := Cause(0); c < numCauses; c++ {
			w.I64(s.ops[op][c])
			w.I64(int64(s.latency[op][c]))
		}
	}
	w.U32(uint32(len(s.PlaneOps)))
	for _, p := range s.PlaneOps {
		for c := Cause(0); c < numCauses; c++ {
			w.I64(p[c])
		}
	}
	w.I32s(s.BlockErases)
	w.I64(s.WastedPages)
}

func decodeStats(r *ckpt.Reader, s *Stats) {
	for op := opKind(0); op < numOps; op++ {
		for c := Cause(0); c < numCauses; c++ {
			s.ops[op][c] = r.I64()
			s.latency[op][c] = sim.Duration(r.I64())
		}
	}
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	s.PlaneOps = make([][numCauses]int64, n)
	for i := range s.PlaneOps {
		for c := Cause(0); c < numCauses; c++ {
			s.PlaneOps[i][c] = r.I64()
		}
	}
	s.BlockErases = r.I32s()
	s.WastedPages = r.I64()
}
