package flash

import (
	"testing"

	"dloop/internal/obs"
	"dloop/internal/sim"
)

// countingRecorder tallies RecordOp calls by "kind/cause" and keeps every op
// for timestamp checks; the other Recorder methods are no-ops.
type countingRecorder struct {
	ops  map[string]int64
	seen []obs.Op
}

func (r *countingRecorder) RecordOp(op obs.Op) {
	if r.ops == nil {
		r.ops = map[string]int64{}
	}
	r.ops[op.Kind.String()+"/"+op.Cause.String()]++
	r.seen = append(r.seen, op)
}
func (r *countingRecorder) RecordEvent(obs.EventKind, sim.Time)                {}
func (r *countingRecorder) RecordSpan(obs.SpanKind, int32, sim.Time, sim.Time) {}
func (r *countingRecorder) RecordRequest(bool, sim.Time, sim.Time)             {}

// The device converts flash.Cause to obs.Cause by value and maps its internal
// opKind onto obs.OpKind positionally, so the enums must stay numerically
// aligned. This pins the correspondence.
func TestObsConstantsMirrorFlash(t *testing.T) {
	causes := []struct {
		f Cause
		o obs.Cause
	}{
		{CauseHost, obs.CauseHost},
		{CauseGC, obs.CauseGC},
		{CauseMap, obs.CauseMap},
	}
	for _, c := range causes {
		if uint8(c.f) != uint8(c.o) {
			t.Errorf("flash.%v = %d but obs.%v = %d", c.f, uint8(c.f), c.o, uint8(c.o))
		}
		if c.f.String() != c.o.String() {
			t.Errorf("cause name mismatch: flash %q vs obs %q", c.f, c.o)
		}
	}
	if uint8(numCauses) != uint8(obs.NumCauses) {
		t.Errorf("flash has %d causes, obs has %d", numCauses, obs.NumCauses)
	}
	ops := []struct {
		f opKind
		o obs.OpKind
	}{
		{opRead, obs.OpRead},
		{opWrite, obs.OpWrite},
		{opCopyBack, obs.OpCopyBack},
		{opErase, obs.OpErase},
	}
	for _, op := range ops {
		if uint8(op.f) != uint8(op.o) {
			t.Errorf("flash opKind %d != obs.%v (%d)", uint8(op.f), op.o, uint8(op.o))
		}
	}
	if uint8(numOps) != uint8(obs.NumOpKinds) {
		t.Errorf("flash has %d op kinds, obs has %d", numOps, obs.NumOpKinds)
	}
}

// RecordOp must see every operation the device's own stats count, with
// matching attribution.
func TestDeviceRecorderSeesEveryOp(t *testing.T) {
	d := newTestDevice(t)
	rec := &countingRecorder{}
	d.SetRecorder(rec)

	var at sim.Time
	mustOp := func(end sim.Time, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	mustOp(d.WritePage(0, 7, at, CauseHost))
	mustOp(d.WritePage(2, 9, at, CauseGC))
	mustOp(d.ReadPage(0, at, CauseMap))
	mustOp(d.CopyBack(0, 4, at, CauseGC))
	mustOp(d.Erase(PlaneBlock{Plane: 1, Block: 0}, at, CauseGC))

	want := map[string]int64{
		"write/host": 1, "write/gc": 1, "read/map": 1, "copyback/gc": 1, "erase/gc": 1,
	}
	if len(rec.ops) != len(want) {
		t.Fatalf("recorded ops %v, want keys %v", rec.ops, want)
	}
	for k, n := range want {
		if rec.ops[k] != n {
			t.Errorf("recorded %q %d times, want %d", k, rec.ops[k], n)
		}
	}
	for _, op := range rec.seen {
		if op.Start < op.Ready || op.End < op.Start {
			t.Errorf("op %v/%v timestamps out of order: ready %d start %d end %d",
				op.Kind, op.Cause, op.Ready, op.Start, op.End)
		}
		if want := int32(d.Geometry().ChannelOfPlane(int(op.Plane))); op.Channel != want {
			t.Errorf("op on plane %d reported channel %d, want %d", op.Plane, op.Channel, want)
		}
	}
}
