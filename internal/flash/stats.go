package flash

import "dloop/internal/sim"

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opCopyBack
	opErase
	numOps
)

// Stats accumulates operation counts and latencies, attributed per cause and
// per plane. PlaneOps feeds the paper's SDRPP metric (standard deviation of
// requests per plane); BlockErases feeds wear-leveling analysis.
type Stats struct {
	ops     [numOps][numCauses]int64
	latency [numOps][numCauses]sim.Duration // includes resource queueing

	// PlaneOps[plane][cause] counts operations dispatched to each plane.
	PlaneOps [][numCauses]int64
	// BlockErases counts lifetime erases per physical block (dense index).
	BlockErases []int32
	// WastedPages counts free pages deliberately invalidated to satisfy the
	// copy-back same-parity rule (DLOOP's §III.A overhead).
	WastedPages int64
}

func (s *Stats) init(geo Geometry) {
	s.ops = [numOps][numCauses]int64{}
	s.latency = [numOps][numCauses]sim.Duration{}
	s.PlaneOps = make([][numCauses]int64, geo.Planes())
	s.BlockErases = make([]int32, geo.TotalBlocks())
	s.WastedPages = 0
}

func (s *Stats) note(op opKind, cause Cause, plane int, lat sim.Duration) {
	s.ops[op][cause]++
	s.latency[op][cause] += lat
	s.PlaneOps[plane][cause]++
}

// merge folds another accumulator's per-operation counts into s. Only the
// commutative integer fields are merged — per-shard workers never touch
// BlockErases or WastedPages, which stay with the control plane's state
// machine — so folding shards in any fixed order reproduces the sequential
// totals exactly.
func (s *Stats) merge(o *Stats) {
	for op := opKind(0); op < numOps; op++ {
		for c := Cause(0); c < numCauses; c++ {
			s.ops[op][c] += o.ops[op][c]
			s.latency[op][c] += o.latency[op][c]
		}
	}
	for i := range o.PlaneOps {
		for c := Cause(0); c < numCauses; c++ {
			s.PlaneOps[i][c] += o.PlaneOps[i][c]
		}
	}
}

// clearCounts zeroes the fields merge folds, reusing the slices so the
// epoch barrier stays allocation-free.
func (s *Stats) clearCounts() {
	s.ops = [numOps][numCauses]int64{}
	s.latency = [numOps][numCauses]sim.Duration{}
	for i := range s.PlaneOps {
		s.PlaneOps[i] = [numCauses]int64{}
	}
}

func (s *Stats) snapshot() Stats {
	out := *s
	out.PlaneOps = append([][numCauses]int64(nil), s.PlaneOps...)
	out.BlockErases = append([]int32(nil), s.BlockErases...)
	return out
}

// restoreFrom copies a snapshot's contents back into s, reusing the live
// slices (geometry, and hence their lengths, never changes).
func (s *Stats) restoreFrom(o Stats) {
	s.ops = o.ops
	s.latency = o.latency
	copy(s.PlaneOps, o.PlaneOps)
	copy(s.BlockErases, o.BlockErases)
	s.WastedPages = o.WastedPages
}

func (s Stats) sum(op opKind) int64 {
	var n int64
	for c := Cause(0); c < numCauses; c++ {
		n += s.ops[op][c]
	}
	return n
}

// Reads returns the total number of external page reads.
func (s Stats) Reads() int64 { return s.sum(opRead) }

// Writes returns the total number of external page programs.
func (s Stats) Writes() int64 { return s.sum(opWrite) }

// CopyBacks returns the total number of intra-plane copy-back operations.
func (s Stats) CopyBacks() int64 { return s.sum(opCopyBack) }

// Erases returns the total number of block erases.
func (s Stats) Erases() int64 { return s.sum(opErase) }

// ByCause returns the number of reads, writes, copy-backs, and erases
// attributed to one cause.
func (s Stats) ByCause(c Cause) (reads, writes, copyBacks, erases int64) {
	return s.ops[opRead][c], s.ops[opWrite][c], s.ops[opCopyBack][c], s.ops[opErase][c]
}

// PlaneTotals returns the total operation count per plane, the series the
// paper's SDRPP metric is computed over.
func (s Stats) PlaneTotals() []int64 {
	out := make([]int64, len(s.PlaneOps))
	for i, per := range s.PlaneOps {
		for c := Cause(0); c < numCauses; c++ {
			out[i] += per[c]
		}
	}
	return out
}

// PlaneTotalsByCause returns the per-plane operation counts for one cause.
func (s Stats) PlaneTotalsByCause(cause Cause) []int64 {
	out := make([]int64, len(s.PlaneOps))
	for i, per := range s.PlaneOps {
		out[i] = per[cause]
	}
	return out
}

// GCMoves returns the number of page relocations performed by garbage
// collection, split into bus-free copy-backs and external (bus-occupying)
// read+write pairs.
func (s Stats) GCMoves() (copyBacks, external int64) {
	return s.ops[opCopyBack][CauseGC], s.ops[opWrite][CauseGC]
}
