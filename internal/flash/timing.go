package flash

import "dloop/internal/sim"

// Timing holds the latency parameters of the simulated flash device. The
// defaults reproduce Table I of the paper (degarbled as documented in
// DESIGN.md): with 2 KB pages an inter-plane page move costs
// 25+50+50+200 = 325 µs while an intra-plane copy-back costs 25+200 = 225 µs,
// the 30.7% saving the paper reports.
type Timing struct {
	PageRead    sim.Duration // cell array -> plane data register
	PageProgram sim.Duration // plane data register -> cell array
	BlockErase  sim.Duration // whole-block erase
	BytePeriod  sim.Duration // serial transfer time per byte, register <-> controller
	CmdAddr     sim.Duration // command + address cycle on the bus
}

// DefaultTiming returns the paper's Table I latencies.
func DefaultTiming() Timing {
	return Timing{
		PageRead:    sim.Microseconds(25),
		PageProgram: sim.Microseconds(200),
		BlockErase:  sim.Microseconds(2000),
		BytePeriod:  sim.Microseconds(0.025), // 50 µs per 2 KB page
		CmdAddr:     sim.Microseconds(0.2),
	}
}

// Transfer returns the bus time needed to move one page of the given size
// between a plane data register and the controller, including the command and
// address cycles.
func (t Timing) Transfer(pageSize int) sim.Duration {
	return sim.Duration(int64(t.BytePeriod)*int64(pageSize)) + t.CmdAddr
}

// ExternalRead returns the service time of an external page read when no
// resource contention delays it.
func (t Timing) ExternalRead(pageSize int) sim.Duration {
	return t.PageRead + t.Transfer(pageSize)
}

// ExternalWrite returns the service time of an external page program when no
// resource contention delays it.
func (t Timing) ExternalWrite(pageSize int) sim.Duration {
	return t.Transfer(pageSize) + t.PageProgram
}

// CopyBack returns the service time of an intra-plane copy-back, which never
// touches the bus.
func (t Timing) CopyBack() sim.Duration {
	return t.PageRead + t.PageProgram
}

// InterPlaneCopy returns the service time of a traditional inter-plane page
// copy: read, transfer out, transfer in, program (Fig. 2 of the paper).
func (t Timing) InterPlaneCopy(pageSize int) sim.Duration {
	return t.PageRead + 2*t.Transfer(pageSize) + t.PageProgram
}
