package expt

import (
	"fmt"

	"dloop/internal/ssd"
)

// groupJobs partitions a sweep into warm-up groups — cells whose WarmupKey
// matches share one warm-up prefix — preserving submission order within each
// group. With NoFork every job is its own group.
func groupJobs(jobs []job, opt Options) [][]job {
	if opt.NoFork {
		out := make([][]job, len(jobs))
		for i, j := range jobs {
			out[i] = []job{j}
		}
		return out
	}
	idx := make(map[string]int)
	var out [][]job
	for _, j := range jobs {
		k := WarmupKey(j.cfg, j.profile.FootprintBytes)
		if i, ok := idx[k]; ok {
			out[i] = append(out[i], j)
		} else {
			idx[k] = len(out)
			out = append(out, []job{j})
		}
	}
	return out
}

// task is one unit of worker-pool work: either a whole warm-up group (load or
// simulate the warm-up, run the lead cell, fan the rest out) or one forked
// cell restoring a group's shared checkpoint.
type task struct {
	group []job
	cell  job
	fork  *forkGroup
}

// forkGroup is the shared, immutable fork source for one group's re-enqueued
// cells. Restore clones state out of cp, never into it, so any number of
// workers fork from the same checkpoint concurrently.
type forkGroup struct {
	key string
	cfg ssd.Config
	cp  *ssd.Checkpoint
}

// workerState caches one built controller per worker goroutine, keyed by
// WarmupKey. Consecutive fork cells of the same group landing on the same
// worker skip ssd.Build — a restore into the cached controller reuses every
// slab the previous cell allocated — which is where most of the fork path's
// allocations go away.
type workerState struct {
	key string
	c   *ssd.Controller
}

func (ws *workerState) set(key string, c *ssd.Controller) {
	if ws.c != nil && ws.c != c {
		ws.c.Close()
	}
	ws.key, ws.c = key, c
}

func (ws *workerState) close() {
	if ws.c != nil {
		ws.c.Close()
		ws.c = nil
		ws.key = ""
	}
}

// sweepCtx carries one runAll invocation's shared plumbing to the tasks.
type sweepCtx struct {
	opt     Options
	cache   *WarmupCache
	stats   *SweepStats
	emit    func(job, ssd.Result)
	fail    func(error)
	stopped func() bool
	enqueue func(task)
}

// runGroupTask executes one warm-up group. A singleton group with no cache
// runs as a plain fresh cell. Otherwise the group's warm-up state comes from
// the persistent cache when it can (decode + restore instead of simulating
// the prefix) and from one fresh warm-up otherwise, which is then published
// to the cache. Every remaining cell of the group re-enqueues to the worker
// pool as a fork task before the lead cell runs, so idle workers fork from
// the shared checkpoint concurrently instead of the group running serially on
// one worker. Forked, cached, and fresh runs are bit-identical (see
// TestForkMatchesNoFork and TestCachedSweepMatchesNoFork). If the FTL cannot
// checkpoint, the group degrades to per-cell fresh runs.
func runGroupTask(sc *sweepCtx, ws *workerState, g []job) {
	runFresh := func(g []job) {
		for _, j := range g {
			if sc.stopped() {
				return
			}
			res, err := runJob(j, sc.opt)
			if err != nil {
				sc.fail(err)
				return
			}
			sc.stats.noteFresh()
			sc.emit(j, res)
		}
	}
	if sc.opt.NoFork || (len(g) == 1 && !sc.cache.enabled()) {
		runFresh(g)
		return
	}
	if sc.stopped() {
		return
	}
	lead := g[0]
	key := WarmupKey(lead.cfg, lead.profile.FootprintBytes)
	c, cp, err := sc.cache.load(lead.cfg, key)
	if err != nil {
		sc.fail(err)
		return
	}
	hit := c != nil
	if !hit {
		c, err = buildWarm(lead.cfg, lead.profile)
		if err != nil {
			sc.fail(err)
			return
		}
		sc.stats.noteWarmup()
		cp, err = c.Snapshot()
		if err != nil { // FTL without checkpoint support
			c.Close()
			runFresh(g)
			return
		}
		sc.cache.store(key, c, cp)
	}
	// Park the warm controller in the worker's cache: fork cells of this
	// group landing back here restore into it instead of rebuilding.
	ws.set(key, c)
	fg := &forkGroup{key: key, cfg: lead.cfg, cp: cp}
	for _, j := range g[1:] {
		sc.enqueue(task{cell: j, fork: fg})
	}
	res, err := runCell(lead, sc.opt, c)
	if err != nil {
		sc.fail(err)
		return
	}
	if hit {
		sc.stats.noteForked()
	} else {
		sc.stats.noteFresh()
	}
	sc.emit(lead, res)
}

// runForkTask executes one forked cell: restore the group's shared checkpoint
// into this worker's controller (rebuilding only if the worker last served a
// different configuration) and replay the measured window.
func runForkTask(sc *sweepCtx, ws *workerState, t task) {
	if sc.stopped() {
		return
	}
	fg := t.fork
	if ws.c == nil || ws.key != fg.key {
		c, err := ssd.Build(fg.cfg)
		if err != nil {
			sc.fail(fmt.Errorf("expt: build %s: %w", fg.cfg.FTL, err))
			return
		}
		ws.set(fg.key, c)
		sc.stats.noteForkRebuild()
	} else {
		sc.stats.noteForkReuse()
	}
	if err := ws.c.Restore(fg.cp); err != nil {
		sc.fail(fmt.Errorf("expt: restore %s/%s: %w", t.cell.cfg.FTL, t.cell.profile.Name, err))
		return
	}
	res, err := runCell(t.cell, sc.opt, ws.c)
	if err != nil {
		sc.fail(err)
		return
	}
	sc.stats.noteForked()
	sc.emit(t.cell, res)
}
