package expt

import (
	"fmt"

	"dloop/internal/ssd"
)

// warmupKey identifies the warm-up prefix a cell shares with others: the full
// simulator configuration plus the preconditioned footprint. Cells with equal
// keys reach bit-identical simulator states after warm-up, so one checkpoint
// can seed them all. Geometry and Timing are compared by value, not by
// pointer, so two configs built independently still coalesce.
func warmupKey(j job) string {
	cfg := j.cfg
	var geo, tim string
	if cfg.Geometry != nil {
		geo = fmt.Sprintf("%+v", *cfg.Geometry)
	}
	if cfg.Timing != nil {
		tim = fmt.Sprintf("%+v", *cfg.Timing)
	}
	cfg.Geometry, cfg.Timing = nil, nil
	return fmt.Sprintf("%+v|%s|%s|%d", cfg, geo, tim, j.profile.FootprintBytes)
}

// groupJobs partitions a sweep into warm-up groups, preserving submission
// order within each group. With NoFork every job is its own group.
func groupJobs(jobs []job, opt Options) [][]job {
	if opt.NoFork {
		out := make([][]job, len(jobs))
		for i, j := range jobs {
			out[i] = []job{j}
		}
		return out
	}
	idx := make(map[string]int)
	var out [][]job
	for _, j := range jobs {
		k := warmupKey(j)
		if i, ok := idx[k]; ok {
			out[i] = append(out[i], j)
		} else {
			idx[k] = len(out)
			out = append(out, []job{j})
		}
	}
	return out
}

// runGroup executes one warm-up group on the calling worker goroutine. A
// singleton group runs as a plain fresh cell. A larger group builds and
// preconditions one simulator, checkpoints it, runs the first cell directly
// off the warm state, and restores the checkpoint before each further cell —
// the warm-up is simulated once instead of len(g) times, and every fork is
// bit-identical to a fresh run (see TestForkMatchesNoFork and the ssd
// package's TestForkBitIdentical). Results stream out through emit as each
// cell completes; nothing is retained here. If the FTL cannot checkpoint,
// the group degrades to per-cell fresh runs.
func runGroup(g []job, opt Options, emit func(job, ssd.Result), fail func(error), stopped func() bool) {
	runFresh := func(g []job) {
		for _, j := range g {
			if stopped() {
				return
			}
			res, err := runJob(j, opt)
			if err != nil {
				fail(err)
				return
			}
			emit(j, res)
		}
	}
	if len(g) == 1 {
		runFresh(g)
		return
	}
	c, err := buildWarm(g[0].cfg, g[0].profile)
	if err != nil {
		fail(err)
		return
	}
	defer c.Close()
	cp, err := c.Snapshot()
	if err != nil {
		runFresh(g) // FTL without checkpoint support
		return
	}
	for i, j := range g {
		if stopped() {
			return
		}
		if i > 0 {
			if err := c.Restore(cp); err != nil {
				fail(fmt.Errorf("expt: restore %s/%s: %w", j.cfg.FTL, j.profile.Name, err))
				return
			}
		}
		res, err := runCell(j, opt, c)
		if err != nil {
			fail(err)
			return
		}
		emit(j, res)
	}
}
