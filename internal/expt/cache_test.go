package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// TestWarmupKeyCoalescesAndSplits pins the content-addressing contract:
// configurations describing the same simulator share a key (independently
// allocated Geometry/Timing, zero fields vs their defaults), and changing any
// single Config field — walked by reflection so a new field can't dodge the
// test — splits it. So does the footprint.
func TestWarmupKeyCoalescesAndSplits(t *testing.T) {
	base, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, quickOptions())
	if !ok {
		t.Fatal("configFor failed")
	}
	const fp = 1 << 20
	key := WarmupKey(base, fp)

	// Value-equal Geometry behind a different pointer must coalesce.
	clone := base
	geo := *base.Geometry
	clone.Geometry = &geo
	if WarmupKey(clone, fp) != key {
		t.Fatal("independently allocated equal Geometry split the key")
	}
	// A zero field and its applied default must coalesce (base holds the
	// default scheme, DLOOP).
	defaulted := base
	defaulted.FTL = ""
	if WarmupKey(defaulted, fp) != key {
		t.Fatal("zero FTL and explicit default split the key")
	}

	if WarmupKey(base, fp+1) == key {
		t.Fatal("footprint change did not split the key")
	}

	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		mut := base
		fv := reflect.ValueOf(&mut).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Int:
			fv.SetInt(fv.Int() + 7)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.017)
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.String:
			fv.SetString(fv.String() + "x")
		case reflect.Pointer:
			if fv.IsNil() {
				fv.Set(reflect.New(f.Type.Elem()))
			} else {
				// Mutate the first integer field of the pointee.
				pe := fv.Elem()
				for j := 0; j < pe.NumField(); j++ {
					if pe.Field(j).Kind() == reflect.Int {
						pe.Field(j).SetInt(pe.Field(j).Int() + 1)
						break
					}
				}
				// Re-point at a private copy so base stays pristine.
				cp := reflect.New(f.Type.Elem())
				cp.Elem().Set(pe)
				fv.Set(cp)
			}
		default:
			t.Fatalf("field %s has kind %v the mutation table does not cover", f.Name, fv.Kind())
		}
		if WarmupKey(mut, fp) == key {
			t.Errorf("mutating Config.%s did not split the warm-up key", f.Name)
		}
	}
}

// cachedSweepJobs is seedSweepJobs plus a DFTL group and a multi-queue DLOOP
// group, so the cached path is exercised across schemes and the sharded
// front-end layout in one sweep.
func cachedSweepJobs(t testing.TB, opt Options) []job {
	jobs := seedSweepJobs(t, opt, 3)
	p := scaleProfile(workload.Financial1(), opt.Scale)
	for _, scheme := range []string{ssd.SchemeDFTL, ssd.SchemeFAST} {
		cfg, ok := configFor(4, 2, 0.03, scheme, opt)
		if !ok {
			t.Fatal("configFor failed")
		}
		for i := 0; i < 2; i++ {
			jobs = append(jobs, job{
				key: fmt.Sprintf("%s-seed%d", scheme, i), cfg: cfg, profile: p, seed: int64(70 + i),
			})
		}
	}
	mq, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	mq.FTLShards = 2
	for i := 0; i < 2; i++ {
		jobs = append(jobs, job{
			key: fmt.Sprintf("mq-seed%d", i), cfg: mq, profile: p, seed: int64(80 + i),
		})
	}
	return jobs
}

// TestCachedSweepMatchesNoFork is the persistent-cache determinism gate: a
// sweep that misses the cache (and populates it), a sweep that serves every
// warm-up from disk, and a fresh-per-cell NoFork sweep must all produce the
// same result map, across schemes and the multi-queue layout.
func TestCachedSweepMatchesNoFork(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 400
	opt.WarmupCache = t.TempDir()
	opt.Stats = &SweepStats{}
	jobs := cachedSweepJobs(t, opt)

	cold, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.CacheHits() != 0 {
		t.Fatalf("cold sweep hit the cache %d times", opt.Stats.CacheHits())
	}
	if opt.Stats.Warmups() == 0 {
		t.Fatal("cold sweep simulated no warm-ups")
	}

	opt.Stats = &SweepStats{}
	warm, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.Warmups() != 0 {
		t.Fatalf("warm sweep still simulated %d warm-ups", opt.Stats.Warmups())
	}
	if hits := opt.Stats.CacheHits(); hits == 0 {
		t.Fatal("warm sweep never hit the cache")
	}

	optFresh := opt
	optFresh.NoFork = true
	optFresh.Stats = &SweepStats{}
	fresh, err := runAll(jobs, optFresh)
	if err != nil {
		t.Fatal(err)
	}
	if optFresh.Stats.CacheHits() != 0 || optFresh.Stats.CacheMisses() != 0 {
		t.Fatal("NoFork sweep touched the warm-up cache")
	}

	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache-served sweep diverged from cache-populating sweep:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if !reflect.DeepEqual(cold, fresh) {
		t.Fatalf("cached sweep diverged from NoFork sweep:\ncached: %+v\nfresh: %+v", cold, fresh)
	}
}

// TestWarmupCacheRobustness damages every cached file in turn — truncation,
// a flipped payload bit, a bumped format version, and junk content — and
// asserts the sweep silently falls back to fresh warm-up, produces identical
// results, and repopulates the cache.
func TestWarmupCacheRobustness(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 300
	opt.WarmupCache = t.TempDir()
	jobs := seedSweepJobs(t, opt, 3)

	want, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(opt.WarmupCache, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written: %v %v", files, err)
	}
	pristine, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"version":   func(b []byte) []byte { b[4]++; return b },
		"junk":      func([]byte) []byte { return []byte("not a checkpoint") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			data := corrupt(append([]byte(nil), pristine...))
			if err := os.WriteFile(files[0], data, 0o644); err != nil {
				t.Fatal(err)
			}
			opt := opt
			opt.Stats = &SweepStats{}
			got, err := runAll(jobs, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sweep over damaged cache diverged:\n got %+v\nwant %+v", got, want)
			}
			if opt.Stats.CacheRejects()+opt.Stats.CacheMisses() == 0 {
				t.Fatal("damaged cache entry was not rejected")
			}
			if opt.Stats.Warmups() == 0 {
				t.Fatal("fallback did not simulate a fresh warm-up")
			}
			repaired, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if string(repaired) != string(pristine) {
				t.Fatal("fallback did not repopulate the damaged entry")
			}
		})
	}
}

// TestLoadIntoAndSave covers the single-run command path: Save from a warmed
// controller, LoadInto a freshly built one, identical subsequent behavior.
func TestLoadIntoAndSave(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 300
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	wc := &WarmupCache{Dir: t.TempDir(), Stats: &SweepStats{}}

	warm, err := buildWarm(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if err := wc.Save(warm, cfg, p.FootprintBytes); err != nil {
		t.Fatal(err)
	}
	want, err := resumeObserved(warm, cfg, p, opt.Requests, opt.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}

	c, err := ssd.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !wc.LoadInto(c, cfg, p.FootprintBytes) {
		t.Fatal("LoadInto missed a just-saved checkpoint")
	}
	got, err := resumeObserved(c, cfg, p, opt.Requests, opt.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run from LoadInto diverged:\n got %+v\nwant %+v", got, want)
	}
	// A different footprint must miss.
	c2, err := ssd.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if wc.LoadInto(c2, cfg, p.FootprintBytes+1) {
		t.Fatal("LoadInto hit on a different footprint")
	}
}

// BenchmarkSweepWarmupCached is benchSweep's third mode: the 4-cell
// seed-replication sweep with every warm-up served from a pre-populated
// on-disk cache. Decode + restore replaces the warm-up simulation entirely,
// so this must beat BenchmarkSweepWarmupShared (which still simulates the
// warm-up once per sweep).
func BenchmarkSweepWarmupCached(b *testing.B) {
	opt := Options{Requests: 400, Scale: 0.02, Seed: 7, Workers: 1}
	opt.WarmupCache = b.TempDir()
	jobs := seedSweepJobs(b, opt, 4)
	if _, err := runAll(jobs, opt); err != nil { // populate the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runAll(jobs, opt); err != nil {
			b.Fatal(err)
		}
	}
}
