package expt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"dloop/internal/ckpt"
	"dloop/internal/obs"
	"dloop/internal/ssd"
)

// WarmupKey returns the content address of one warm-up prefix: a hex digest
// of the full simulator configuration (ssd.ConfigDigest, defaults applied,
// Geometry/Timing by value) and the preconditioned footprint. Cells with
// equal keys reach bit-identical simulator states after warm-up, so one
// checkpoint can seed them all — in this process or, through WarmupCache,
// in any later one.
func WarmupKey(cfg ssd.Config, footprintBytes int64) string {
	d := ssd.ConfigDigest(cfg)
	var buf [sha256.Size + 8]byte
	copy(buf[:], d[:])
	binary.LittleEndian.PutUint64(buf[sha256.Size:], uint64(footprintBytes))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:])
}

// WarmupCache is a content-addressed on-disk store of encoded warm-up
// checkpoints: one <key>.ckpt container (see internal/ckpt and
// ssd.EncodeCheckpoint) per (config, footprint) warm-up, published with
// write-to-temp-then-rename so concurrent writers and readers only ever see
// complete files. Every load path degrades gracefully — a missing, corrupt,
// truncated, or version/configuration-mismatched file counts as a miss and
// the caller simulates the warm-up fresh (then usually overwrites the bad
// entry).
type WarmupCache struct {
	// Dir is the cache directory, created on first store.
	Dir string
	// Stats, when non-nil, receives hit/miss/byte counters.
	Stats *SweepStats
}

// enabled reports whether the cache can serve anything.
func (wc *WarmupCache) enabled() bool { return wc != nil && wc.Dir != "" }

func (wc *WarmupCache) path(key string) string {
	return filepath.Join(wc.Dir, key+".ckpt")
}

// load builds a controller for cfg and restores the cached warm-up for key
// into it. Any failure — no file, bad container, configuration mismatch —
// returns nils and the caller warms up fresh; only a controller build error
// is surfaced, since fresh warm-up would hit it too.
func (wc *WarmupCache) load(cfg ssd.Config, key string) (*ssd.Controller, *ssd.Checkpoint, error) {
	if !wc.enabled() {
		return nil, nil, nil
	}
	data, release, err := ckpt.LoadFile(wc.path(key))
	if err != nil {
		wc.Stats.noteMiss()
		return nil, nil, nil
	}
	defer release()
	c, err := ssd.Build(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("expt: build %s: %w", cfg.FTL, err)
	}
	cp, err := c.DecodeCheckpoint(data)
	if err != nil {
		c.Close()
		wc.Stats.noteReject()
		return nil, nil, nil
	}
	if err := c.Restore(cp); err != nil {
		c.Close()
		wc.Stats.noteReject()
		return nil, nil, nil
	}
	wc.Stats.noteHit(int64(len(data)))
	return c, cp, nil
}

// store encodes cp and publishes it under key atomically. Store failures
// are counted, not fatal: the sweep already has its in-memory checkpoint.
func (wc *WarmupCache) store(key string, c *ssd.Controller, cp *ssd.Checkpoint) {
	if !wc.enabled() {
		return
	}
	n, err := wc.write(key, c, cp)
	if err != nil {
		wc.Stats.noteStoreError()
		return
	}
	wc.Stats.noteStore(n)
}

func (wc *WarmupCache) write(key string, c *ssd.Controller, cp *ssd.Checkpoint) (int64, error) {
	w := ckpt.NewWriter()
	defer ckpt.PutWriter(w)
	data, err := c.AppendCheckpoint(w, cp)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(wc.Dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(wc.Dir, ".ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), wc.path(key)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)), nil
}

// LoadInto restores the cached warm-up for (cfg, footprint) into an already
// built controller, reporting whether it hit. The single-run commands use it
// to skip preconditioning.
func (wc *WarmupCache) LoadInto(c *ssd.Controller, cfg ssd.Config, footprintBytes int64) bool {
	if !wc.enabled() {
		return false
	}
	data, release, err := ckpt.LoadFile(wc.path(WarmupKey(cfg, footprintBytes)))
	if err != nil {
		wc.Stats.noteMiss()
		return false
	}
	defer release()
	cp, err := c.DecodeCheckpoint(data)
	if err != nil {
		wc.Stats.noteReject()
		return false
	}
	if err := c.Restore(cp); err != nil {
		wc.Stats.noteReject()
		return false
	}
	wc.Stats.noteHit(int64(len(data)))
	return true
}

// Save checkpoints a freshly warmed controller and publishes it for
// (cfg, footprint). The error is informative; callers may ignore it.
func (wc *WarmupCache) Save(c *ssd.Controller, cfg ssd.Config, footprintBytes int64) error {
	if !wc.enabled() {
		return nil
	}
	cp, err := c.Snapshot()
	if err != nil {
		return err
	}
	n, err := wc.write(WarmupKey(cfg, footprintBytes), c, cp)
	if err != nil {
		wc.Stats.noteStoreError()
		return err
	}
	wc.Stats.noteStore(n)
	return nil
}

// SweepStats accumulates sweep-execution counters: warm-up cache traffic and
// the fork scheduler's behavior. All methods are safe for concurrent use and
// safe on a nil receiver, so instrumented and uninstrumented call sites share
// one code path. One SweepStats may span several sweeps; counters only grow.
type SweepStats struct {
	cacheHits    int64 // warm-ups restored from the cache
	cacheMisses  int64 // cache files absent
	cacheRejects int64 // cache files rejected: corrupt, truncated, or mismatched
	storeErrors  int64 // failed cache publications
	bytesRead    int64 // encoded checkpoint bytes loaded
	bytesWritten int64 // encoded checkpoint bytes published
	warmups      int64 // warm-up prefixes simulated for a shared group
	forkedCells  int64 // cells served from a shared warm-up checkpoint
	freshCells   int64 // cells that built and warmed their own simulator
	forkReuses   int64 // forked cells restored into the worker's cached controller
	forkRebuilds int64 // forked cells that had to build a controller first
}

func (s *SweepStats) noteHit(bytes int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.cacheHits, 1)
	atomic.AddInt64(&s.bytesRead, bytes)
}

func (s *SweepStats) noteMiss() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.cacheMisses, 1)
}

func (s *SweepStats) noteReject() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.cacheRejects, 1)
}

func (s *SweepStats) noteStoreError() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.storeErrors, 1)
}

func (s *SweepStats) noteStore(bytes int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.bytesWritten, bytes)
}

func (s *SweepStats) noteWarmup() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.warmups, 1)
}

func (s *SweepStats) noteForked() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.forkedCells, 1)
}

func (s *SweepStats) noteFresh() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.freshCells, 1)
}

func (s *SweepStats) noteForkReuse() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.forkReuses, 1)
}

func (s *SweepStats) noteForkRebuild() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.forkRebuilds, 1)
}

// CacheHits returns the number of warm-ups restored from the cache.
func (s *SweepStats) CacheHits() int64 { return atomic.LoadInt64(&s.cacheHits) }

// CacheMisses returns the number of absent cache entries.
func (s *SweepStats) CacheMisses() int64 { return atomic.LoadInt64(&s.cacheMisses) }

// CacheRejects returns the number of rejected (corrupt or mismatched) files.
func (s *SweepStats) CacheRejects() int64 { return atomic.LoadInt64(&s.cacheRejects) }

// Warmups returns the number of warm-up prefixes simulated fresh for shared
// groups.
func (s *SweepStats) Warmups() int64 { return atomic.LoadInt64(&s.warmups) }

// ForkedCells returns the number of cells served from a shared warm-up.
func (s *SweepStats) ForkedCells() int64 { return atomic.LoadInt64(&s.forkedCells) }

// FreshCells returns the number of cells that warmed up on their own.
func (s *SweepStats) FreshCells() int64 { return atomic.LoadInt64(&s.freshCells) }

// Publish copies the counters into an observability registry under the
// expt.* namespace (see internal/obs).
func (s *SweepStats) Publish(r *obs.Registry) {
	r.Counter("expt.warmup.cache.hits").Add(atomic.LoadInt64(&s.cacheHits))
	r.Counter("expt.warmup.cache.misses").Add(atomic.LoadInt64(&s.cacheMisses))
	r.Counter("expt.warmup.cache.rejects").Add(atomic.LoadInt64(&s.cacheRejects))
	r.Counter("expt.warmup.cache.store_errors").Add(atomic.LoadInt64(&s.storeErrors))
	r.Counter("expt.warmup.cache.read_bytes").Add(atomic.LoadInt64(&s.bytesRead))
	r.Counter("expt.warmup.cache.written_bytes").Add(atomic.LoadInt64(&s.bytesWritten))
	r.Counter("expt.warmup.simulated").Add(atomic.LoadInt64(&s.warmups))
	r.Counter("expt.cells.forked").Add(atomic.LoadInt64(&s.forkedCells))
	r.Counter("expt.cells.fresh").Add(atomic.LoadInt64(&s.freshCells))
	r.Counter("expt.fork.controller_reuses").Add(atomic.LoadInt64(&s.forkReuses))
	r.Counter("expt.fork.controller_rebuilds").Add(atomic.LoadInt64(&s.forkRebuilds))
}

// Summary renders the counters as one human-readable line.
func (s *SweepStats) Summary() string {
	return fmt.Sprintf(
		"warmup cache: %d hits / %d misses / %d rejects (%.1f MB read, %.1f MB written); cells: %d forked / %d fresh; warmups simulated: %d",
		atomic.LoadInt64(&s.cacheHits), atomic.LoadInt64(&s.cacheMisses), atomic.LoadInt64(&s.cacheRejects),
		float64(atomic.LoadInt64(&s.bytesRead))/(1<<20), float64(atomic.LoadInt64(&s.bytesWritten))/(1<<20),
		atomic.LoadInt64(&s.forkedCells), atomic.LoadInt64(&s.freshCells), atomic.LoadInt64(&s.warmups))
}
