package expt

import (
	"fmt"
	"io"
	"strings"
)

// Grid holds one figure's worth of data: a family of series sampled at
// common x values, rendered as an aligned text table or CSV.
type Grid struct {
	Title  string
	XLabel string
	YLabel string
	XVals  []string
	series []string
	data   map[string][]float64
}

// NewGrid returns an empty grid over the given x values.
func NewGrid(title, xLabel, yLabel string, xVals []string) *Grid {
	return &Grid{
		Title:  title,
		XLabel: xLabel,
		YLabel: yLabel,
		XVals:  xVals,
		data:   make(map[string][]float64),
	}
}

// Set stores one point. Unset points render as "-".
func (g *Grid) Set(series, x string, v float64) {
	xi := -1
	for i, xv := range g.XVals {
		if xv == x {
			xi = i
			break
		}
	}
	if xi < 0 {
		panic(fmt.Sprintf("expt: unknown x value %q in grid %q", x, g.Title))
	}
	row, ok := g.data[series]
	if !ok {
		row = make([]float64, len(g.XVals))
		for i := range row {
			row[i] = -1 // sentinel: unset
		}
		g.data[series] = row
		g.series = append(g.series, series)
	}
	row[xi] = v
}

// Get returns a stored point, with ok=false for unset cells.
func (g *Grid) Get(series, x string) (float64, bool) {
	row, ok := g.data[series]
	if !ok {
		return 0, false
	}
	for i, xv := range g.XVals {
		if xv == x {
			if row[i] < 0 {
				return 0, false
			}
			return row[i], true
		}
	}
	return 0, false
}

// Series returns the series names in insertion order.
func (g *Grid) Series() []string { return append([]string(nil), g.series...) }

// Render writes an aligned text table.
func (g *Grid) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	fmt.Fprintf(&b, "%s (rows: %s)\n", g.YLabel, g.XLabel)
	width := 12
	for _, s := range g.series {
		if len(s)+2 > width {
			width = len(s) + 2
		}
	}
	fmt.Fprintf(&b, "%-10s", g.XLabel)
	for _, s := range g.series {
		fmt.Fprintf(&b, "%*s", width, s)
	}
	b.WriteByte('\n')
	for i, x := range g.XVals {
		fmt.Fprintf(&b, "%-10s", x)
		for _, s := range g.series {
			v := g.data[s][i]
			if v < 0 {
				fmt.Fprintf(&b, "%*s", width, "-")
			} else {
				fmt.Fprintf(&b, "%*.3f", width, v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the grid as comma-separated values with a header row.
func (g *Grid) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(g.XLabel)
	for _, s := range g.series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for i, x := range g.XVals {
		b.WriteString(x)
		for _, s := range g.series {
			v := g.data[s][i]
			if v < 0 {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%g", v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
