package expt

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// quickOptions shrinks runs so the whole experiment suite stays fast in CI.
func quickOptions() Options {
	return Options{Requests: 1200, Scale: 0.02, Seed: 7, Workers: 2}
}

func TestGridSetGetRender(t *testing.T) {
	g := NewGrid("title", "x", "y", []string{"1", "2"})
	g.Set("a", "1", 1.5)
	g.Set("a", "2", 2.5)
	g.Set("b", "1", 9)
	if v, ok := g.Get("a", "2"); !ok || v != 2.5 {
		t.Fatalf("Get: %v %v", v, ok)
	}
	if _, ok := g.Get("b", "2"); ok {
		t.Fatal("unset cell reported ok")
	}
	if _, ok := g.Get("zzz", "1"); ok {
		t.Fatal("unknown series reported ok")
	}
	var buf bytes.Buffer
	if err := g.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"title", "1.500", "2.500", "9.000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := g.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "1,1.5,9") || !strings.Contains(csv, "2,2.5,") {
		t.Errorf("CSV rows: %q", csv)
	}
	if got := g.Series(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Series: %v", got)
	}
}

func TestGridSetPanicsOnUnknownX(t *testing.T) {
	g := NewGrid("t", "x", "y", []string{"1"})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.Set("a", "nope", 1)
}

func TestRunSingle(t *testing.T) {
	opt := quickOptions()
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	res, err := Run(cfg, p, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 500 || res.MeanRespMs <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

// TestRunDeterministic is the regression gate for the hot-path rewrites: two
// runs with the same configuration, profile, and seed must produce an
// identical Result, down to every counter and the per-plane op vector.
func TestRunDeterministic(t *testing.T) {
	opt := quickOptions()
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	a, err := Run(cfg, p, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, p, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (cfg, profile, seed) produced different results:\n%+v\n%+v", a, b)
	}
}

// TestRunAllBoundedPool exercises the worker pool: more jobs than workers,
// every cell filled, and an injected failure surfacing as the returned error.
func TestRunAllBoundedPool(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 300
	opt.Workers = 2
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	var jobs []job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, job{key: fmt.Sprintf("j%d", i), cfg: cfg, profile: p})
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}

	bad := cfg
	bad.FTL = "NOPE"
	jobs = append(jobs, job{key: "bad", cfg: bad, profile: p})
	if _, err := runAll(jobs, opt); err == nil {
		t.Fatal("runAll swallowed the failing job's error")
	}
}

func TestFig9QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := quickOptions()
	mrt, sdrpp, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every trace/FTL cell filled for every page size.
	for _, p := range workload.All() {
		for _, scheme := range ssd.Schemes() {
			for _, x := range mrt.XVals {
				if _, ok := mrt.Get(seriesName(p.Name, scheme), x); !ok {
					t.Errorf("missing MRT cell %s/%s@%s", p.Name, scheme, x)
				}
				if _, ok := sdrpp.Get(seriesName(p.Name, scheme), x); !ok {
					t.Errorf("missing SDRPP cell %s/%s@%s", p.Name, scheme, x)
				}
			}
		}
	}
	// Paper shape: DLOOP at or below DFTL and FAST on the write-dominant
	// Financial1 at the 2 KB reference point.
	d, _ := mrt.Get("Financial1/DLOOP", "2")
	f, _ := mrt.Get("Financial1/DFTL", "2")
	fa, _ := mrt.Get("Financial1/FAST", "2")
	if d > f || d > fa {
		t.Errorf("Financial1@2KB: DLOOP %.3f should not exceed DFTL %.3f or FAST %.3f", d, f, fa)
	}
	// SDRPP: DLOOP spreads load most evenly.
	ds, _ := sdrpp.Get("Financial1/DLOOP", "2")
	fs, _ := sdrpp.Get("Financial1/DFTL", "2")
	if ds >= fs {
		t.Errorf("SDRPP: DLOOP %.2f should be below DFTL %.2f", ds, fs)
	}
}

func TestFig8SkipsOversizedFootprints(t *testing.T) {
	// At full scale, a 3.4 GB TPC-C footprint must be skipped on nothing
	// (all capacities fit), but a hypothetical 5 GB one would skip 4 GB.
	cfg, _ := configFor(4, 2, 0.03, ssd.SchemeDLOOP, Options{Scale: 1})
	big := workload.TPCC()
	big.FootprintBytes = 5 << 30
	if footprintFits(cfg, big) {
		t.Fatal("5 GB footprint reported as fitting 4 GB")
	}
	if !footprintFits(cfg, workload.TPCC()) {
		t.Fatal("3.4 GB footprint reported as not fitting 4 GB")
	}
}

func TestHeadlineComputation(t *testing.T) {
	mrt := NewGrid("t", "GB", "ms", []string{"4"})
	for _, p := range workload.All() {
		mrt.Set(seriesName(p.Name, ssd.SchemeDLOOP), "4", 1)
		mrt.Set(seriesName(p.Name, ssd.SchemeDFTL), "4", 2)
		mrt.Set(seriesName(p.Name, ssd.SchemeFAST), "4", 10)
	}
	h := Headline(mrt)
	if v, ok := h.Get("vs DFTL", "4"); !ok || v != 50 {
		t.Fatalf("vs DFTL: %v %v, want 50%%", v, ok)
	}
	if v, ok := h.Get("vs FAST", "4"); !ok || v != 90 {
		t.Fatalf("vs FAST: %v %v, want 90%%", v, ok)
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := quickOptions()
	g, err := AblationCopyback(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Both variants present at the smallest capacity.
	if _, ok := g.Get("DLOOP copy-back", "4"); !ok {
		t.Error("missing copy-back cell")
	}
	if _, ok := g.Get("DLOOP external", "4"); !ok {
		t.Error("missing external cell")
	}
}

func TestParityAndHotPlaneQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := quickOptions()
	pg, err := ParityReport(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pg.Get("GC moves", "Financial1"); !ok {
		t.Error("parity report missing Financial1")
	}
	hg, err := HotPlane(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"DLOOP", "DLOOP+adaptive"} {
		if _, ok := hg.Get(series, "mean ms"); !ok {
			t.Errorf("hotplane missing %s", series)
		}
	}
}

// TestGCPolicyStudyQuick exercises the E9 victim-policy sweep axis: every
// (scheme, policy) cell must fill for all three schemes, the default cells
// must match a plain run of the same configuration, and distinct policies
// must be selectable per scheme.
func TestGCPolicyStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := quickOptions()
	mrt, moves, err := GCPolicyStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{ssd.SchemeDLOOP, ssd.SchemeDFTL, ssd.SchemeFAST} {
		for _, pol := range GCPolicies() {
			x := gcPolicyLabel(pol)
			if _, ok := mrt.Get(scheme, x); !ok {
				t.Errorf("mrt grid missing %s @ %s", scheme, x)
			}
			if _, ok := moves.Get(scheme, x); !ok {
				t.Errorf("moves grid missing %s @ %s", scheme, x)
			}
		}
	}
	// The default column must be bit-identical to a run without GCPolicy set.
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	res, err := Run(cfg, p, opt.Requests, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := mrt.Get(ssd.SchemeDLOOP, "default"); got != res.MeanRespMs {
		t.Errorf("default cell %v differs from plain run %v", got, res.MeanRespMs)
	}
}

// TestRunAllShardedBitIdentical runs the same small sweep with the
// sequential engine and with per-channel timing shards; every cell's Result
// must be bit-identical, the determinism contract the -shards flag promises.
func TestRunAllShardedBitIdentical(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 600
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	var jobs []job
	for i, p := range workload.All()[:3] {
		jobs = append(jobs, job{key: fmt.Sprintf("cell%d", i), cfg: cfg, profile: scaleProfile(p, opt.Scale)})
	}
	seq, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Shards = ssd.AutoShards
	opt.ParallelCells = 2 // exercise the explicit pool-size override too
	par, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("sharded sweep diverged from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

// TestOptionsWorkerDerivation pins the Workers default: ParallelCells wins,
// and a sharded sweep divides the CPU budget by the per-cell shard count.
func TestOptionsWorkerDerivation(t *testing.T) {
	o := Options{ParallelCells: 3, Workers: 9}
	o.setDefaults()
	if o.Workers != 3 {
		t.Fatalf("ParallelCells should override Workers: got %d", o.Workers)
	}
	o = Options{Shards: 4}
	o.setDefaults()
	if want := max(1, runtime.NumCPU()/4); o.Workers != want {
		t.Fatalf("sharded default Workers = %d, want %d", o.Workers, want)
	}
	o = Options{Shards: ssd.AutoShards}
	o.setDefaults()
	if want := max(1, runtime.NumCPU()/4); o.Workers != want {
		t.Fatalf("auto-sharded default Workers = %d, want %d", o.Workers, want)
	}
}
