package expt

import (
	"bytes"
	"encoding/json"
	"testing"

	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// An observed run's registry must reconcile exactly with the controller's
// end-of-run aggregates: the recorder attaches after preconditioning resets
// the measurement window, so both views count the same operations.
func TestObservedRunReconcilesGCCounters(t *testing.T) {
	opt := quickOptions()
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)

	var col *obs.Collector
	res, err := RunObserved(cfg, p, 8000, 3, func(c *ssd.Controller) obs.Recorder {
		o := c.ObsOptions()
		o.SnapshotInterval = 100 * sim.Millisecond
		col = obs.NewCollector(o)
		return col
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GCRuns == 0 || res.GCCopyBacks == 0 {
		t.Fatalf("workload did not trigger GC (runs=%d copybacks=%d); the reconciliation below would be vacuous",
			res.GCRuns, res.GCCopyBacks)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	reg := col.Registry()
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	sum := func(names ...string) int64 {
		var s int64
		for _, n := range names {
			s += counter(n)
		}
		return s
	}

	// The tentpole reconciliation: GC moves split by mechanism, plus the
	// same-parity waste pages, must match the device's final aggregates.
	if got := counter("flash.copyback.gc"); got != res.GCCopyBacks {
		t.Errorf("flash.copyback.gc = %d, Result.GCCopyBacks = %d", got, res.GCCopyBacks)
	}
	if got := counter("flash.write.gc"); got != res.GCExternalMoves {
		t.Errorf("flash.write.gc = %d, Result.GCExternalMoves = %d", got, res.GCExternalMoves)
	}
	if got := counter("gc.parity_waste"); got != res.WastedPages {
		t.Errorf("gc.parity_waste = %d, Result.WastedPages = %d", got, res.WastedPages)
	}
	if got := counter("gc.runs"); got != res.GCRuns {
		t.Errorf("gc.runs = %d, Result.GCRuns = %d", got, res.GCRuns)
	}

	// Totals per op kind across all causes.
	if got := sum("flash.read.host", "flash.read.gc", "flash.read.map"); got != res.Reads {
		t.Errorf("recorded reads = %d, Result.Reads = %d", got, res.Reads)
	}
	if got := sum("flash.write.host", "flash.write.gc", "flash.write.map"); got != res.Writes {
		t.Errorf("recorded writes = %d, Result.Writes = %d", got, res.Writes)
	}
	if got := sum("flash.copyback.host", "flash.copyback.gc", "flash.copyback.map"); got != res.CopyBacks {
		t.Errorf("recorded copybacks = %d, Result.CopyBacks = %d", got, res.CopyBacks)
	}
	if got := sum("flash.erase.host", "flash.erase.gc", "flash.erase.map"); got != res.Erases {
		t.Errorf("recorded erases = %d, Result.Erases = %d", got, res.Erases)
	}

	// Per-plane op counts are the SDRPP input; they must match the device's.
	planeOps := reg.CounterVec("plane.ops", "plane", len(res.PlaneOps)).Values()
	for i, want := range res.PlaneOps {
		if planeOps[i] != want {
			t.Fatalf("plane.ops[%d] = %d, Result.PlaneOps[%d] = %d", i, planeOps[i], i, want)
		}
	}

	// Every host request went through the recorder.
	if got := reg.Hist("host.read").N() + reg.Hist("host.write").N(); got != res.Requests {
		t.Errorf("recorded requests = %d, Result.Requests = %d", got, res.Requests)
	}

	// The snapshot series accumulated over simulated time, and the document
	// serializes cleanly.
	if reg.Series("ops", 100*sim.Millisecond).Buckets() == 0 {
		t.Error("no ops snapshots emitted despite SnapshotInterval")
	}
	var buf bytes.Buffer
	if err := col.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
}
