// Package expt regenerates every table and figure of the paper's evaluation
// (§V): the capacity sweep (Fig. 8), the page-size sweep (Fig. 9), the
// extra-blocks sweep (Fig. 10), the headline improvement ratios (§I, §V.B),
// and this reproduction's ablations (copy-back on/off, parity-waste
// accounting, hot-plane adaptive GC). Each experiment preconditions the
// device with the workload's footprint, replays a deterministic synthetic
// trace, and reports the paper's two metrics: mean response time and SDRPP.
package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dloop/internal/obs"
	"dloop/internal/sim"
	"dloop/internal/ssd"
	"dloop/internal/trace"
	"dloop/internal/workload"
)

// Options tune how much work an experiment does.
type Options struct {
	// Requests per run (default 400,000; the paper replays 0.4M-5.3M).
	Requests int
	// Seed for the workload generators (default 42). Every run of an
	// experiment uses the same seed so FTLs see identical request streams.
	Seed int64
	// Workers bounds concurrent runs (default: NumCPU, min 1).
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
	// Scale shrinks workload footprints and request counts together for
	// quick runs (default 1.0 = paper scale). Capacities shrink too, via
	// mini geometries, when Scale < 1.
	Scale float64

	// MetricsDir, when set, attaches an observability collector to every run
	// and writes one <key>.metrics.json per run into the directory.
	MetricsDir string
	// TraceDir, when set, writes one <key>.trace.json Chrome trace-event
	// document per run (openable in ui.perfetto.dev). The trace buffer is
	// capped at obs.DefaultTraceLimit events; overflow is counted, not kept.
	TraceDir string
	// SnapshotIntervalMs, when > 0, adds SDRPP/utilization/throughput time
	// series to each run's metrics, sampled every N simulated milliseconds.
	SnapshotIntervalMs int
}

// observes reports whether any observability output is requested.
func (o Options) observes() bool {
	return o.MetricsDir != "" || o.TraceDir != "" || o.SnapshotIntervalMs > 0
}

func (o *Options) setDefaults() {
	if o.Requests == 0 {
		o.Requests = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Run executes one simulation: build the SSD, precondition the workload's
// footprint, replay the trace, return the results.
func Run(cfg ssd.Config, profile workload.Profile, requests int, seed int64) (ssd.Result, error) {
	return RunObserved(cfg, profile, requests, seed, nil)
}

// RunObserved is Run with an observability attach point: after the device is
// preconditioned (so the recorded stream covers exactly the measured window),
// attach is called with the built controller and any non-nil Recorder it
// returns is wired through the whole stack. attach may be nil.
func RunObserved(cfg ssd.Config, profile workload.Profile, requests int, seed int64,
	attach func(*ssd.Controller) obs.Recorder) (ssd.Result, error) {
	c, err := ssd.Build(cfg)
	if err != nil {
		return ssd.Result{}, fmt.Errorf("expt: build %s: %w", cfg.FTL, err)
	}
	if err := c.PreconditionBytes(profile.FootprintBytes); err != nil {
		return ssd.Result{}, fmt.Errorf("expt: precondition %s/%s: %w", cfg.FTL, profile.Name, err)
	}
	if attach != nil {
		if rec := attach(c); rec != nil {
			c.SetRecorder(rec)
		}
	}
	gen, err := workload.NewGenerator(profile, seed)
	if err != nil {
		return ssd.Result{}, err
	}
	// Replay in chunks through one reusable buffer: the generator amortizes
	// its call overhead and the serve loop stays tight.
	buf := make([]trace.Request, replayChunk)
	for served := 0; served < requests; {
		want := requests - served
		if want > len(buf) {
			want = len(buf)
		}
		n, err := gen.NextN(buf[:want])
		if err != nil {
			return ssd.Result{}, err
		}
		for i := 0; i < n; i++ {
			if _, err := c.Serve(buf[i]); err != nil {
				return ssd.Result{}, fmt.Errorf("expt: %s/%s request %d: %w", cfg.FTL, profile.Name, served+i, err)
			}
		}
		served += n
	}
	return c.Result(), nil
}

// replayChunk is the number of requests generated per NextN batch during
// replay. Large enough to amortize call overhead, small enough that the
// buffer stays cache-resident.
const replayChunk = 4096

// job is one (config, workload) cell of a sweep.
type job struct {
	key     string
	series  string
	x       string
	cfg     ssd.Config
	profile workload.Profile
}

// sanitizeKey turns a job key into a safe file-name stem.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// runJob executes one sweep cell. When the options request observability
// output it attaches a collector per run and writes the run's metrics.json
// (and optionally its trace-event document) named after the job key.
func runJob(j job, opt Options) (ssd.Result, error) {
	if !opt.observes() {
		return Run(j.cfg, j.profile, opt.Requests, opt.Seed)
	}
	var tf *os.File
	if opt.TraceDir != "" {
		if err := os.MkdirAll(opt.TraceDir, 0o755); err != nil {
			return ssd.Result{}, err
		}
		var err error
		tf, err = os.Create(filepath.Join(opt.TraceDir, sanitizeKey(j.key)+".trace.json"))
		if err != nil {
			return ssd.Result{}, err
		}
		defer tf.Close()
	}
	var col *obs.Collector
	res, err := RunObserved(j.cfg, j.profile, opt.Requests, opt.Seed, func(c *ssd.Controller) obs.Recorder {
		o := c.ObsOptions()
		if tf != nil {
			o.TraceEvents = tf
		}
		o.SnapshotInterval = sim.Duration(opt.SnapshotIntervalMs) * sim.Millisecond
		col = obs.NewCollector(o)
		return col
	})
	if err != nil {
		return ssd.Result{}, err
	}
	if err := col.Close(); err != nil {
		return ssd.Result{}, err
	}
	if opt.MetricsDir != "" {
		if err := os.MkdirAll(opt.MetricsDir, 0o755); err != nil {
			return ssd.Result{}, err
		}
		mf, err := os.Create(filepath.Join(opt.MetricsDir, sanitizeKey(j.key)+".metrics.json"))
		if err != nil {
			return ssd.Result{}, err
		}
		if err := col.WriteMetrics(mf); err != nil {
			mf.Close()
			return ssd.Result{}, err
		}
		if err := mf.Close(); err != nil {
			return ssd.Result{}, err
		}
	}
	return res, nil
}

// runAll executes jobs on a bounded worker pool: exactly opt.Workers
// goroutines pull from a shared channel, so a 60-cell sweep does not spawn 60
// goroutines (each Run pins megabytes of simulator state). After the first
// failure the remaining queue drains without running.
func runAll(jobs []job, opt Options) (map[string]ssd.Result, error) {
	opt.setDefaults()
	results := make(map[string]ssd.Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	ch := make(chan job)
	var wg sync.WaitGroup
	workers := opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue // drain the queue without running
				}
				res, err := runJob(j, opt)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				results[j.key] = res
				mu.Unlock()
				opt.progress("done %-28s mean=%8.3f ms  sdrpp=%5.2f  gc=%d", j.key, res.MeanRespMs, res.SDRPP, res.GCRuns)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// scaleProfile shrinks a workload for quick runs.
func scaleProfile(p workload.Profile, scale float64) workload.Profile {
	if scale >= 1 {
		return p
	}
	return p.ScaleFootprint(scale)
}

// sortedKeys returns map keys in sorted order for deterministic rendering.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// footprintFits reports whether a workload's footprint fits the capacity a
// configuration exports.
func footprintFits(cfg ssd.Config, p workload.Profile) bool {
	exported, err := ssd.ExportedBytes(cfg)
	return err == nil && p.FootprintBytes <= exported
}
