// Package expt regenerates every table and figure of the paper's evaluation
// (§V): the capacity sweep (Fig. 8), the page-size sweep (Fig. 9), the
// extra-blocks sweep (Fig. 10), the headline improvement ratios (§I, §V.B),
// and this reproduction's ablations (copy-back on/off, parity-waste
// accounting, hot-plane adaptive GC). Each experiment preconditions the
// device with the workload's footprint, replays a deterministic synthetic
// trace, and reports the paper's two metrics: mean response time and SDRPP.
package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dloop/internal/obs"
	"dloop/internal/obs/httpexport"
	"dloop/internal/sim"
	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// Options tune how much work an experiment does.
type Options struct {
	// Requests per run (default 400,000; the paper replays 0.4M-5.3M).
	Requests int
	// Seed for the workload generators (default 42). Every run of an
	// experiment uses the same seed so FTLs see identical request streams.
	Seed int64
	// Workers bounds concurrent runs. Zero derives a default from the
	// machine: NumCPU divided by the timing shards each cell occupies (see
	// Shards), min 1 — so sharded cells and the worker pool share the CPUs
	// instead of oversubscribing them. ParallelCells, when set, wins.
	Workers int
	// ParallelCells is the explicit worker-pool size (same meaning as
	// Workers, but set deliberately from the -parallel-cells flag rather
	// than defaulted from GOMAXPROCS). Non-zero overrides Workers.
	ParallelCells int
	// Shards is the per-cell timing shard count, copied into every job's
	// ssd.Config that does not set its own: 0/1 = sequential engine,
	// ssd.AutoShards = one shard per channel. Each sweep cell stays
	// bit-identical to a sequential run; sharding only moves the
	// resource-timeline math onto worker goroutines. Trading shards-per-cell
	// against cells-in-flight is the point: on a machine with C cores,
	// Shards*Workers ≈ C keeps every core busy whether the sweep is wide
	// (many cells, sequential each) or narrow (few cells, sharded each).
	Shards int
	// FTLShards is the per-cell concurrent-FTL shard count, copied into every
	// job's ssd.Config that does not set its own: 0/1 = single FTL,
	// ssd.AutoShards = one shard per channel on shapes of 8+ channels. Unlike
	// Shards (timing only, bit-identical), FTLShards = N is its own device
	// organization — the logical space is partitioned LPN mod N over N
	// independent FTLs — so sweeps comparing against recorded baselines
	// should leave it zero.
	FTLShards int
	// Merge selects the front end's completion-merge mode when FTLShards > 1:
	// "" or ssd.MergeDeterministic folds completions in arrival order
	// (bit-reproducible), ssd.MergeRelaxed folds on the shard workers and
	// merges per-shard accumulators (same counters/histograms, running means
	// re-associated).
	Merge string
	// EpochPages sets the multi-queue front end's pipeline epoch length in
	// pages for every job that does not set its own (0 keeps the default;
	// see ssd.Config.EpochPages). Deterministic-merge results are
	// bit-identical across values, so it is safe to sweep.
	EpochPages int
	// TranslatePolicy, when non-empty, is copied into every demand-paged
	// (DLOOP/DFTL) job's ssd.Config that does not set its own: "slru", "lru",
	// or "learned" (see internal/ftl/translate). Schemes without a
	// demand-paged map ignore it.
	TranslatePolicy string
	// CMTEntries, when non-zero, overrides the SRAM mapping-cache size for
	// every job that does not pin its own (including the Scale-derived
	// default).
	CMTEntries int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
	// Scale shrinks workload footprints and request counts together for
	// quick runs (default 1.0 = paper scale). Capacities shrink too, via
	// mini geometries, when Scale < 1.
	Scale float64

	// MetricsDir, when set, attaches an observability collector to every run
	// and writes one <key>.metrics.json per run into the directory.
	MetricsDir string
	// TraceDir, when set, writes one <key>.trace.json Chrome trace-event
	// document per run (openable in ui.perfetto.dev). The trace buffer is
	// capped at obs.DefaultTraceLimit events; overflow is counted, not kept.
	TraceDir string
	// SnapshotIntervalMs, when > 0, adds SDRPP/utilization/throughput time
	// series to each run's metrics, sampled every N simulated milliseconds.
	SnapshotIntervalMs int
	// Exporter, when non-nil, receives live merged registry snapshots from
	// every observed cell at its epoch barriers (wall-clock rate-limited);
	// serve it over HTTP with internal/obs/httpexport. Sweep cells run
	// concurrently, so the exporter shows whichever cell published last —
	// each snapshot carries its cell's ftl label.
	Exporter *httpexport.Server

	// NoFork disables warm-up sharing: every sweep cell builds and
	// preconditions its own simulator instead of forking a checkpoint taken
	// after one shared warm-up. It also bypasses WarmupCache, so a NoFork
	// sweep is always the from-scratch reference. Forked and fresh runs are
	// bit-identical, so this exists only for debugging and for A/B-ing the
	// optimisation itself.
	NoFork bool
	// WarmupCache, when set, is a directory of persistent warm-up checkpoints
	// (see WarmupCache): before simulating a group's warm-up prefix the sweep
	// looks for <WarmupKey>.ckpt there, and after a fresh warm-up it publishes
	// one. Entries are content-addressed by configuration digest and
	// footprint, so a stale or foreign file can never poison a run — it is
	// rejected on load and overwritten. Share one directory across processes
	// and sweeps to make repeated sweeps skip preconditioning entirely.
	WarmupCache string
	// Stats, when non-nil, accumulates warm-up cache and fork-scheduler
	// counters across every sweep run with these Options.
	Stats *SweepStats
}

// observes reports whether any observability output is requested.
func (o Options) observes() bool {
	return o.MetricsDir != "" || o.TraceDir != "" || o.SnapshotIntervalMs > 0 ||
		o.Exporter != nil
}

func (o *Options) setDefaults() {
	if o.Requests == 0 {
		o.Requests = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ParallelCells > 0 {
		o.Workers = o.ParallelCells
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU() / o.shardsPerCell()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
}

// shardsPerCell estimates how many goroutines one cell's timing work
// occupies, for the default worker-pool derivation. AutoShards resolves per
// cell geometry at build time; the paper geometries have four channels, so
// that is the estimate used here.
func (o Options) shardsPerCell() int {
	switch {
	case o.Shards == ssd.AutoShards:
		return 4
	case o.Shards > 1:
		return o.Shards
	}
	return 1
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Run executes one simulation: build the SSD, precondition the workload's
// footprint, replay the trace, return the results.
func Run(cfg ssd.Config, profile workload.Profile, requests int, seed int64) (ssd.Result, error) {
	return RunObserved(cfg, profile, requests, seed, nil)
}

// RunObserved is Run with an observability attach point: after the device is
// preconditioned (so the recorded stream covers exactly the measured window),
// attach is called with the built controller and any non-nil Recorder it
// returns is wired through the whole stack. attach may be nil.
func RunObserved(cfg ssd.Config, profile workload.Profile, requests int, seed int64,
	attach func(*ssd.Controller) obs.Recorder) (ssd.Result, error) {
	c, err := buildWarm(cfg, profile)
	if err != nil {
		return ssd.Result{}, err
	}
	defer c.Close()
	return resumeObserved(c, cfg, profile, requests, seed, attach)
}

// RunCachedObserved is RunObserved backed by a persistent warm-up cache: when
// the cache holds a checkpoint for (cfg, footprint) the preconditioning phase
// is restored from disk instead of simulated, and a freshly simulated warm-up
// is published back for later processes. A nil or directory-less cache
// degrades to RunObserved exactly. Cache publication failures are counted in
// the cache's Stats but never fail the run.
func RunCachedObserved(cfg ssd.Config, profile workload.Profile, requests int, seed int64,
	wc *WarmupCache, attach func(*ssd.Controller) obs.Recorder) (ssd.Result, error) {
	if !wc.enabled() {
		return RunObserved(cfg, profile, requests, seed, attach)
	}
	c, err := ssd.Build(cfg)
	if err != nil {
		return ssd.Result{}, fmt.Errorf("expt: build %s: %w", cfg.FTL, err)
	}
	defer c.Close()
	if !wc.LoadInto(c, cfg, profile.FootprintBytes) {
		if err := c.PreconditionBytes(profile.FootprintBytes); err != nil {
			return ssd.Result{}, fmt.Errorf("expt: precondition %s/%s: %w", cfg.FTL, profile.Name, err)
		}
		wc.Stats.noteWarmup()
		_ = wc.Save(c, cfg, profile.FootprintBytes)
	}
	return resumeObserved(c, cfg, profile, requests, seed, attach)
}

// buildWarm builds the SSD and preconditions the workload's footprint — the
// warm-up prefix that every cell of a (config, footprint) group shares.
func buildWarm(cfg ssd.Config, profile workload.Profile) (*ssd.Controller, error) {
	c, err := ssd.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("expt: build %s: %w", cfg.FTL, err)
	}
	if err := c.PreconditionBytes(profile.FootprintBytes); err != nil {
		return nil, fmt.Errorf("expt: precondition %s/%s: %w", cfg.FTL, profile.Name, err)
	}
	return c, nil
}

// resumeObserved replays the measured window on an already warmed controller.
// The request stream comes from the shared columnar arena for (profile, seed)
// — generated once per process, replayed read-only through a private cursor —
// so concurrent cells serving the same stream never regenerate it. Any
// recorder the attach hook wires up is detached again before returning, which
// lets the fork path restore and reuse the controller for the next cell.
func resumeObserved(c *ssd.Controller, cfg ssd.Config, profile workload.Profile, requests int, seed int64,
	attach func(*ssd.Controller) obs.Recorder) (ssd.Result, error) {
	if attach != nil {
		if rec := attach(c); rec != nil {
			c.SetRecorder(rec)
			defer c.SetRecorder(nil)
		}
	}
	arena, err := workload.MaterializeArena(profile, seed, requests)
	if err != nil {
		return ssd.Result{}, err
	}
	cur := arena.Cursor()
	for i := 0; i < requests; i++ {
		req, err := cur.Next()
		if err != nil {
			return ssd.Result{}, err
		}
		// Enqueue pipelines the timing work onto shard workers when the
		// controller is sharded (epoch barriers happen inside the
		// controller); on a sequential controller it is Serve.
		if err := c.Enqueue(req); err != nil {
			return ssd.Result{}, fmt.Errorf("expt: %s/%s request %d: %w", cfg.FTL, profile.Name, i, err)
		}
	}
	return c.Result(), nil
}

// job is one (config, workload) cell of a sweep.
type job struct {
	key     string
	series  string
	x       string
	cfg     ssd.Config
	profile workload.Profile
	// seed, when non-zero, overrides Options.Seed for this cell. Replication
	// sweeps use it to fan several request streams out of one shared warm-up.
	seed int64
}

// effSeed resolves the cell's workload seed.
func (j job) effSeed(opt Options) int64 {
	if j.seed != 0 {
		return j.seed
	}
	return opt.Seed
}

// sanitizeKey turns a job key into a safe file-name stem.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// runJob executes one sweep cell from scratch: own build, own warm-up.
func runJob(j job, opt Options) (ssd.Result, error) {
	return runCell(j, opt, nil)
}

// runCell executes one sweep cell. When warmed is non-nil it is a controller
// already holding the cell's shared warm-up state (the fork path) and only
// the measured window runs; otherwise the cell builds and preconditions its
// own. When the options request observability output it attaches a collector
// per cell and writes the cell's metrics.json (and optionally its trace-event
// document) named after the job key.
func runCell(j job, opt Options, warmed *ssd.Controller) (ssd.Result, error) {
	seed := j.effSeed(opt)
	exec := func(attach func(*ssd.Controller) obs.Recorder) (ssd.Result, error) {
		if warmed != nil {
			return resumeObserved(warmed, j.cfg, j.profile, opt.Requests, seed, attach)
		}
		return RunObserved(j.cfg, j.profile, opt.Requests, seed, attach)
	}
	if !opt.observes() {
		return exec(nil)
	}
	var tf *os.File
	if opt.TraceDir != "" {
		if err := os.MkdirAll(opt.TraceDir, 0o755); err != nil {
			return ssd.Result{}, err
		}
		var err error
		tf, err = os.Create(filepath.Join(opt.TraceDir, sanitizeKey(j.key)+".trace.json"))
		if err != nil {
			return ssd.Result{}, err
		}
		defer tf.Close()
	}
	var col *obs.Collector
	res, err := exec(func(c *ssd.Controller) obs.Recorder {
		o := c.ObsOptions()
		if tf != nil {
			o.TraceEvents = tf
		}
		o.SnapshotInterval = sim.Duration(opt.SnapshotIntervalMs) * sim.Millisecond
		col = obs.NewCollector(o)
		if opt.Exporter != nil {
			// Publish merged snapshots at epoch barriers, throttled on the
			// wall clock so tight barrier loops don't spend their time
			// rendering expositions.
			var last time.Time
			c.SetPulse(func() {
				if time.Since(last) < 250*time.Millisecond {
					return
				}
				last = time.Now()
				opt.Exporter.Publish(col.SnapshotRegistry())
			})
		}
		return col
	})
	if err != nil {
		return ssd.Result{}, err
	}
	if err := col.Close(); err != nil {
		return ssd.Result{}, err
	}
	if opt.Exporter != nil {
		if err := opt.Exporter.Publish(col.SnapshotRegistry()); err != nil {
			return ssd.Result{}, err
		}
	}
	if opt.MetricsDir != "" {
		if err := os.MkdirAll(opt.MetricsDir, 0o755); err != nil {
			return ssd.Result{}, err
		}
		mf, err := os.Create(filepath.Join(opt.MetricsDir, sanitizeKey(j.key)+".metrics.json"))
		if err != nil {
			return ssd.Result{}, err
		}
		if err := col.WriteMetrics(mf); err != nil {
			mf.Close()
			return ssd.Result{}, err
		}
		if err := mf.Close(); err != nil {
			return ssd.Result{}, err
		}
	}
	return res, nil
}

// runAll executes jobs on a bounded worker pool: exactly opt.Workers
// goroutines pull from a shared task queue, so a 60-cell sweep does not spawn
// 60 goroutines (each run pins megabytes of simulator state). Jobs sharing a
// (config, footprint) warm-up prefix are grouped; a group obtains the warm
// state once — from the persistent cache when opt.WarmupCache hits, from one
// fresh warm-up otherwise — and fans its remaining cells back out to the pool
// as fork tasks, each restoring the group's shared checkpoint on whichever
// worker picks it up (see runGroupTask / runForkTask). Completed cells stream
// their Result to a single aggregator goroutine immediately, so no worker
// holds simulator state while waiting for the sweep to end. After the first
// failure the remaining queue drains without running.
func runAll(jobs []job, opt Options) (map[string]ssd.Result, error) {
	opt.setDefaults()
	// Per-cell timing shards: jobs that don't pin their own shard count
	// inherit the sweep-wide option. Shards are part of the config, so the
	// warm-up grouping below naturally keeps sharded and sequential cells
	// in separate groups.
	if opt.Shards != 0 {
		for i := range jobs {
			if jobs[i].cfg.Shards == 0 {
				jobs[i].cfg.Shards = opt.Shards
			}
		}
	}
	// Same inheritance for the concurrent-FTL front end. FTLShards and Merge
	// are part of the config too, so warm-up grouping keeps differently
	// sharded cells in separate groups.
	if opt.FTLShards != 0 {
		for i := range jobs {
			if jobs[i].cfg.FTLShards == 0 {
				jobs[i].cfg.FTLShards = opt.FTLShards
			}
		}
	}
	if opt.Merge != "" {
		for i := range jobs {
			if jobs[i].cfg.Merge == "" {
				jobs[i].cfg.Merge = opt.Merge
			}
		}
	}
	if opt.EpochPages != 0 {
		for i := range jobs {
			if jobs[i].cfg.EpochPages == 0 {
				jobs[i].cfg.EpochPages = opt.EpochPages
			}
		}
	}
	// Translation-engine knobs: the policy applies only to the demand-paged
	// schemes (ssd.Build rejects it elsewhere), the cache size to any job
	// that did not pin its own.
	if opt.TranslatePolicy != "" {
		for i := range jobs {
			scheme := jobs[i].cfg.FTL
			if (scheme == ssd.SchemeDLOOP || scheme == ssd.SchemeDFTL) && jobs[i].cfg.TranslatePolicy == "" {
				jobs[i].cfg.TranslatePolicy = opt.TranslatePolicy
			}
		}
	}
	if opt.CMTEntries != 0 {
		for i := range jobs {
			if jobs[i].cfg.CMTEntries == 0 {
				jobs[i].cfg.CMTEntries = opt.CMTEntries
			}
		}
	}
	groups := groupJobs(jobs, opt)

	// Streaming aggregation: cells publish results as they finish.
	type keyed struct {
		key string
		res ssd.Result
	}
	resCh := make(chan keyed, opt.Workers)
	results := make(map[string]ssd.Result, len(jobs))
	aggDone := make(chan struct{})
	go func() {
		defer close(aggDone)
		for r := range resCh {
			results[r.key] = r.res
		}
	}()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	emit := func(j job, res ssd.Result) {
		resCh <- keyed{key: j.key, res: res}
		opt.progress("done %-28s mean=%8.3f ms  sdrpp=%5.2f  gc=%d", j.key, res.MeanRespMs, res.SDRPP, res.GCRuns)
	}

	sc := &sweepCtx{
		opt:     opt,
		cache:   &WarmupCache{Dir: opt.WarmupCache, Stats: opt.Stats},
		stats:   opt.Stats,
		emit:    emit,
		fail:    fail,
		stopped: stopped,
	}
	// The queue holds every group task up front plus, transiently, the fork
	// tasks groups fan back out — at most one per job — so the buffer below
	// means no send ever blocks. pending counts queued-but-undrained tasks;
	// whichever worker drains the last one closes the queue. A group task
	// enqueues its forks before its own done(), so pending cannot touch zero
	// while work is still being produced.
	tasks := make(chan task, len(jobs)+len(groups))
	pending := int64(len(groups))
	done := func() {
		if atomic.AddInt64(&pending, -1) == 0 {
			close(tasks)
		}
	}
	sc.enqueue = func(t task) {
		atomic.AddInt64(&pending, 1)
		tasks <- t
	}
	for _, g := range groups {
		tasks <- task{group: g}
	}
	if len(groups) == 0 {
		close(tasks)
	}
	var wg sync.WaitGroup
	// Cap at the job count, not the group count: a single-config sweep is one
	// group, but its forked cells spread across every worker.
	workers := opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ws workerState
			defer ws.close()
			for t := range tasks {
				if t.group != nil {
					runGroupTask(sc, &ws, t.group)
				} else {
					runForkTask(sc, &ws, t)
				}
				done()
			}
		}()
	}
	wg.Wait()
	close(resCh)
	<-aggDone
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// scaleProfile shrinks a workload for quick runs.
func scaleProfile(p workload.Profile, scale float64) workload.Profile {
	if scale >= 1 {
		return p
	}
	return p.ScaleFootprint(scale)
}

// sortedKeys returns map keys in sorted order for deterministic rendering.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// footprintFits reports whether a workload's footprint fits the capacity a
// configuration exports.
func footprintFits(cfg ssd.Config, p workload.Profile) bool {
	exported, err := ssd.ExportedBytes(cfg)
	return err == nil && p.FootprintBytes <= exported
}
