// Package expt regenerates every table and figure of the paper's evaluation
// (§V): the capacity sweep (Fig. 8), the page-size sweep (Fig. 9), the
// extra-blocks sweep (Fig. 10), the headline improvement ratios (§I, §V.B),
// and this reproduction's ablations (copy-back on/off, parity-waste
// accounting, hot-plane adaptive GC). Each experiment preconditions the
// device with the workload's footprint, replays a deterministic synthetic
// trace, and reports the paper's two metrics: mean response time and SDRPP.
package expt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dloop/internal/ssd"
	"dloop/internal/trace"
	"dloop/internal/workload"
)

// Options tune how much work an experiment does.
type Options struct {
	// Requests per run (default 400,000; the paper replays 0.4M-5.3M).
	Requests int
	// Seed for the workload generators (default 42). Every run of an
	// experiment uses the same seed so FTLs see identical request streams.
	Seed int64
	// Workers bounds concurrent runs (default: NumCPU, min 1).
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
	// Scale shrinks workload footprints and request counts together for
	// quick runs (default 1.0 = paper scale). Capacities shrink too, via
	// mini geometries, when Scale < 1.
	Scale float64
}

func (o *Options) setDefaults() {
	if o.Requests == 0 {
		o.Requests = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Run executes one simulation: build the SSD, precondition the workload's
// footprint, replay the trace, return the results.
func Run(cfg ssd.Config, profile workload.Profile, requests int, seed int64) (ssd.Result, error) {
	c, err := ssd.Build(cfg)
	if err != nil {
		return ssd.Result{}, fmt.Errorf("expt: build %s: %w", cfg.FTL, err)
	}
	if err := c.PreconditionBytes(profile.FootprintBytes); err != nil {
		return ssd.Result{}, fmt.Errorf("expt: precondition %s/%s: %w", cfg.FTL, profile.Name, err)
	}
	gen, err := workload.NewGenerator(profile, seed)
	if err != nil {
		return ssd.Result{}, err
	}
	// Replay in chunks through one reusable buffer: the generator amortizes
	// its call overhead and the serve loop stays tight.
	buf := make([]trace.Request, replayChunk)
	for served := 0; served < requests; {
		want := requests - served
		if want > len(buf) {
			want = len(buf)
		}
		n, err := gen.NextN(buf[:want])
		if err != nil {
			return ssd.Result{}, err
		}
		for i := 0; i < n; i++ {
			if _, err := c.Serve(buf[i]); err != nil {
				return ssd.Result{}, fmt.Errorf("expt: %s/%s request %d: %w", cfg.FTL, profile.Name, served+i, err)
			}
		}
		served += n
	}
	return c.Result(), nil
}

// replayChunk is the number of requests generated per NextN batch during
// replay. Large enough to amortize call overhead, small enough that the
// buffer stays cache-resident.
const replayChunk = 4096

// job is one (config, workload) cell of a sweep.
type job struct {
	key     string
	series  string
	x       string
	cfg     ssd.Config
	profile workload.Profile
}

// runAll executes jobs on a bounded worker pool: exactly opt.Workers
// goroutines pull from a shared channel, so a 60-cell sweep does not spawn 60
// goroutines (each Run pins megabytes of simulator state). After the first
// failure the remaining queue drains without running.
func runAll(jobs []job, opt Options) (map[string]ssd.Result, error) {
	opt.setDefaults()
	results := make(map[string]ssd.Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	ch := make(chan job)
	var wg sync.WaitGroup
	workers := opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue // drain the queue without running
				}
				res, err := Run(j.cfg, j.profile, opt.Requests, opt.Seed)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				results[j.key] = res
				mu.Unlock()
				opt.progress("done %-28s mean=%8.3f ms  sdrpp=%5.2f  gc=%d", j.key, res.MeanRespMs, res.SDRPP, res.GCRuns)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// scaleProfile shrinks a workload for quick runs.
func scaleProfile(p workload.Profile, scale float64) workload.Profile {
	if scale >= 1 {
		return p
	}
	return p.ScaleFootprint(scale)
}

// sortedKeys returns map keys in sorted order for deterministic rendering.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// footprintFits reports whether a workload's footprint fits the capacity a
// configuration exports.
func footprintFits(cfg ssd.Config, p workload.Profile) bool {
	exported, err := ssd.ExportedBytes(cfg)
	return err == nil && p.FootprintBytes <= exported
}
