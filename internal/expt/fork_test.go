package expt

import (
	"fmt"
	"reflect"
	"testing"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// seedSweepJobs builds n cells that differ only in workload seed — the
// archetypal warm-up group: one (config, footprint) prefix, n divergent
// replays.
func seedSweepJobs(t testing.TB, opt Options, n int) []job {
	cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
	if !ok {
		t.Fatal("configFor failed")
	}
	p := scaleProfile(workload.Financial1(), opt.Scale)
	jobs := make([]job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, job{key: fmt.Sprintf("seed%d", i), cfg: cfg, profile: p, seed: int64(100 + i)})
	}
	return jobs
}

// TestForkMatchesNoFork is the sweep-level determinism gate: a forked sweep
// (shared warm-up + checkpoint/restore) must produce exactly the result map
// of a fresh-per-cell sweep, down to every counter.
func TestForkMatchesNoFork(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 600
	jobs := seedSweepJobs(t, opt, 4)

	forked, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	optFresh := opt
	optFresh.NoFork = true
	fresh, err := runAll(jobs, optFresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, fresh) {
		t.Fatalf("forked sweep diverged from fresh sweep:\nforked: %+v\nfresh:  %+v", forked, fresh)
	}
}

// TestForkMatchesNoForkAcrossSchemes repeats the gate for every registered
// scheme, so a broken Snapshot/Restore in any FTL fails here too, at sweep
// granularity.
func TestForkMatchesNoForkAcrossSchemes(t *testing.T) {
	opt := quickOptions()
	opt.Requests = 400
	p := scaleProfile(workload.Financial1(), opt.Scale)
	var jobs []job
	for _, scheme := range ssd.Schemes() {
		cfg, ok := configFor(4, 2, 0.03, scheme, opt)
		if !ok {
			t.Fatalf("configFor failed for %s", scheme)
		}
		for i := 0; i < 2; i++ {
			jobs = append(jobs, job{
				key: fmt.Sprintf("%s-seed%d", scheme, i), cfg: cfg, profile: p, seed: int64(50 + i),
			})
		}
	}
	forked, err := runAll(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	optFresh := opt
	optFresh.NoFork = true
	fresh, err := runAll(jobs, optFresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, fresh) {
		t.Fatalf("forked sweep diverged from fresh sweep:\nforked: %+v\nfresh:  %+v", forked, fresh)
	}
}

func TestGroupJobs(t *testing.T) {
	opt := quickOptions()
	jobs := seedSweepJobs(t, opt, 3)
	other := jobs[0]
	other.key = "otherftl"
	other.cfg.FTL = ssd.SchemeDFTL
	jobs = append(jobs, other)

	groups := groupJobs(jobs, opt)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 1 {
		t.Fatalf("group sizes %d/%d, want 3/1", len(groups[0]), len(groups[1]))
	}

	opt.NoFork = true
	if groups := groupJobs(jobs, opt); len(groups) != len(jobs) {
		t.Fatalf("NoFork: got %d groups, want %d", len(groups), len(jobs))
	}
}

// benchSweep measures a 4-cell seed-replication sweep — same config, same
// footprint, four seeds — with and without warm-up sharing. One worker, so
// the numbers compare total simulated work, not scheduling luck.
func benchSweep(b *testing.B, noFork bool) {
	opt := Options{Requests: 400, Scale: 0.02, Seed: 7, Workers: 1, NoFork: noFork}
	jobs := seedSweepJobs(b, opt, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runAll(jobs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWarmupShared(b *testing.B) { benchSweep(b, false) }
func BenchmarkSweepWarmupFresh(b *testing.B)  { benchSweep(b, true) }
