package expt

import (
	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// GCPolicies lists the victim-selection policies the E9 study sweeps. The
// empty string keeps each scheme's historical default (greedy for the
// page-mapping FTLs, fifo log eviction for the hybrids).
func GCPolicies() []string { return []string{"", "costbenefit", "windowed"} }

// gcPolicyLabel names a policy column; the default is labeled by role rather
// than "" so the table reads.
func gcPolicyLabel(pol string) string {
	if pol == "" {
		return "default"
	}
	return pol
}

// GCPolicyStudy (E9) sweeps the unified GC engine's victim-selection policy
// across the paper's three schemes on the update-heavy Financial1 trace:
// each scheme's historical default against cost-benefit (Kawaguchi's
// age-scaled benefit/cost ratio) and windowed-greedy (d-choices). It reports
// mean response time per (scheme, policy) cell and, in a second grid, the GC
// relocation volume that explains the differences.
func GCPolicyStudy(opt Options) (*Grid, *Grid, error) {
	opt.setDefaults()
	p := scaleProfile(workload.Financial1(), opt.Scale)
	schemes := []string{ssd.SchemeDLOOP, ssd.SchemeDFTL, ssd.SchemeFAST}
	var xVals []string
	for _, pol := range GCPolicies() {
		xVals = append(xVals, gcPolicyLabel(pol))
	}
	var jobs []job
	for _, scheme := range schemes {
		for _, pol := range GCPolicies() {
			cfg, ok := configFor(4, 2, 0.03, scheme, opt)
			if !ok || !footprintFits(cfg, p) {
				continue
			}
			cfg.GCPolicy = pol
			jobs = append(jobs, job{
				key:     scheme + "@" + gcPolicyLabel(pol),
				series:  scheme,
				x:       gcPolicyLabel(pol),
				cfg:     cfg,
				profile: p,
			})
		}
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, nil, err
	}
	mrt := NewGrid("E9: GC victim policy vs mean response time (Financial1, 4 GB)", "policy", "ms", xVals)
	moves := NewGrid("E9: GC victim policy vs pages relocated (Financial1, 4 GB)", "policy", "count", xVals)
	for _, j := range jobs {
		res, ok := results[j.key]
		if !ok {
			continue
		}
		mrt.Set(j.series, j.x, res.MeanRespMs)
		// GCExternalMoves counts every CauseGC write at the device, which
		// already includes the hybrids' merge copies.
		moves.Set(j.series, j.x, float64(res.GCCopyBacks+res.GCExternalMoves))
	}
	return mrt, moves, nil
}
