package expt

import (
	"fmt"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// AblationCopyback (E5) isolates the paper's central mechanism: DLOOP with
// intra-plane copy-back versus the same FTL forced to move GC pages
// externally through the buses, on the write-dominant Financial1 trace
// across capacities. The gap is the benefit §III.A quantifies per move
// (225 µs vs 325 µs plus freed bus time).
func AblationCopyback(opt Options) (*Grid, error) {
	opt.setDefaults()
	p := scaleProfile(workload.Financial1(), opt.Scale)
	xVals := make([]string, len(CapacitiesGB))
	for i, gb := range CapacitiesGB {
		xVals[i] = fmt.Sprintf("%d", gb)
	}
	var jobs []job
	for _, gb := range CapacitiesGB {
		for _, variant := range []string{"copy-back", "external"} {
			cfg, ok := configFor(gb, 2, 0.03, ssd.SchemeDLOOP, opt)
			if !ok || !footprintFits(cfg, p) {
				continue
			}
			cfg.DisableCopyBack = variant == "external"
			jobs = append(jobs, job{
				key:     variant + "@" + fmt.Sprintf("%d", gb),
				series:  "DLOOP " + variant,
				x:       fmt.Sprintf("%d", gb),
				cfg:     cfg,
				profile: p,
			})
		}
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, err
	}
	g := NewGrid("E5 ablation: DLOOP GC moves via copy-back vs external (Financial1)", "GB", "ms", xVals)
	for _, j := range jobs {
		if res, ok := results[j.key]; ok {
			g.Set(j.series, j.x, res.MeanRespMs)
		}
	}
	return g, nil
}

// ParityReport (E6) quantifies §III.A's same-parity overhead across the five
// traces at the default configuration: wasted pages per hundred GC moves.
// The paper asserts the worst case "rarely happens"; this measures it.
func ParityReport(opt Options) (*Grid, error) {
	opt.setDefaults()
	var jobs []job
	var xVals []string
	for _, p := range workload.All() {
		p := scaleProfile(p, opt.Scale)
		cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
		if !ok || !footprintFits(cfg, p) {
			continue
		}
		xVals = append(xVals, p.Name)
		jobs = append(jobs, job{key: p.Name, x: p.Name, cfg: cfg, profile: p})
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, err
	}
	g := NewGrid("E6: same-parity waste (4 GB SSD)", "trace", "count / %", xVals)
	for _, j := range jobs {
		res, ok := results[j.key]
		if !ok {
			continue
		}
		g.Set("GC moves", j.x, float64(res.GCCopyBacks+res.GCExternalMoves))
		g.Set("wasted pages", j.x, float64(res.WastedPages))
		moves := res.GCCopyBacks + res.GCExternalMoves
		if moves > 0 {
			g.Set("waste per 100 moves", j.x, 100*float64(res.WastedPages)/float64(moves))
		} else {
			g.Set("waste per 100 moves", j.x, 0)
		}
	}
	return g, nil
}

// HotPlane (E7) evaluates the paper's future-work direction: adaptive
// per-plane GC thresholds that collect hot planes earlier. It compares
// stock DLOOP and DLOOP+AdaptiveGC on the locality-heavy Financial1 at 4 GB,
// reporting mean and tail response time and wear dispersion.
func HotPlane(opt Options) (*Grid, error) {
	opt.setDefaults()
	p := scaleProfile(workload.Financial1(), opt.Scale)
	xVals := []string{"mean ms", "p99 ms", "max ms", "wear CV", "GC runs"}
	variants := []struct {
		name     string
		adaptive bool
	}{{"DLOOP", false}, {"DLOOP+adaptive", true}}
	var jobs []job
	for _, v := range variants {
		cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
		if !ok || !footprintFits(cfg, p) {
			continue
		}
		cfg.AdaptiveGC = v.adaptive
		jobs = append(jobs, job{key: v.name, series: v.name, cfg: cfg, profile: p})
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, err
	}
	g := NewGrid("E7 extension: hot-plane adaptive GC (Financial1, 4 GB)", "metric", "value", xVals)
	for _, j := range jobs {
		res, ok := results[j.key]
		if !ok {
			continue
		}
		g.Set(j.series, "mean ms", res.MeanRespMs)
		g.Set(j.series, "p99 ms", res.P99Ms)
		g.Set(j.series, "max ms", res.MaxRespMs)
		g.Set(j.series, "wear CV", res.WearCV)
		g.Set(j.series, "GC runs", float64(res.GCRuns))
	}
	return g, nil
}

// StripingStudy (E8) quantifies §II.C's parallelism-priority debate: the
// same DLOOP FTL striping consecutive logical pages across planes (equation
// (1)), dies, chips, or channels first. Run on the sequential-heavy Build
// trace, where a multi-page request's pages land on consecutive stripe
// units, and the bus-sharing of the chosen unit dominates.
func StripingStudy(opt Options) (*Grid, error) {
	opt.setDefaults()
	policies := []string{"plane", "die", "chip", "channel"}
	traces := []workload.Profile{workload.Build(), workload.Financial1()}
	var xVals []string
	for _, p := range traces {
		xVals = append(xVals, p.Name)
	}
	var jobs []job
	for _, p := range traces {
		p := scaleProfile(p, opt.Scale)
		for _, pol := range policies {
			cfg, ok := configFor(4, 2, 0.03, ssd.SchemeDLOOP, opt)
			if !ok || !footprintFits(cfg, p) {
				continue
			}
			cfg.StripeBy = pol
			jobs = append(jobs, job{
				key:     pol + "@" + p.Name,
				series:  "stripe-" + pol,
				x:       p.Name,
				cfg:     cfg,
				profile: p,
			})
		}
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, err
	}
	g := NewGrid("E8 ablation: striping unit (DLOOP, 4 GB)", "trace", "ms", xVals)
	for _, j := range jobs {
		if res, ok := results[j.key]; ok {
			g.Set(j.series, j.x, res.MeanRespMs)
		}
	}
	return g, nil
}
