package expt

import (
	"fmt"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// TranslatePolicies lists the translation policies the E10 study compares:
// the default segmented-LRU cache against the learned LPN→PPN index (the
// plain-LRU baseline exists for A/B runs via -translate but adds nothing to
// this sweep's question).
func TranslatePolicies() []string { return []string{"slru", "learned"} }

// translateCMTSizes are the SRAM cache capacities E10 sweeps, honoring
// Options.Scale the same way configFor scales the default cache.
func translateCMTSizes(scale float64) []int {
	base := []int{1024, 4096, 16384}
	if scale >= 1 {
		return base
	}
	out := make([]int, len(base))
	for i, n := range base {
		s := int(float64(n) * scale)
		if s < 64 {
			s = 64
		}
		out[i] = s
	}
	return out
}

// TranslateStudy (E10) sweeps the translation engine's policy across the two
// demand-paged schemes on the sequential-write workload — the regularly
// placed traffic the learned index exists for — at three SRAM cache sizes.
// Per (scheme@policy, CMT entries) cell it reports the translation-page
// reads the mapping machinery charged (first grid) and the mean response
// time (second grid). A correct learned prediction resolves a CMT miss
// without the translation-page read, so at equal cache size `learned` should
// sit below `slru` in the first grid, most visibly at the smallest cache
// where misses dominate.
func TranslateStudy(opt Options) (*Grid, *Grid, error) {
	opt.setDefaults()
	p := scaleProfile(workload.SeqWrite(), opt.Scale)
	schemes := []string{ssd.SchemeDLOOP, ssd.SchemeDFTL}
	sizes := translateCMTSizes(opt.Scale)
	xVals := make([]string, len(sizes))
	for i, n := range sizes {
		xVals[i] = fmt.Sprintf("%d", n)
	}
	var jobs []job
	for _, scheme := range schemes {
		for _, pol := range TranslatePolicies() {
			for i, n := range sizes {
				cfg, ok := configFor(4, 2, 0.03, scheme, opt)
				if !ok || !footprintFits(cfg, p) {
					continue
				}
				cfg.CMTEntries = n
				cfg.TranslatePolicy = pol
				jobs = append(jobs, job{
					key:     scheme + "@" + pol + "@" + xVals[i],
					series:  scheme + "/" + pol,
					x:       xVals[i],
					cfg:     cfg,
					profile: p,
				})
			}
		}
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, nil, err
	}
	reads := NewGrid("E10: translation policy vs translation-page reads (SeqWrite, 4 GB)", "CMT entries", "count", xVals)
	mrt := NewGrid("E10: translation policy vs mean response time (SeqWrite, 4 GB)", "CMT entries", "ms", xVals)
	for _, j := range jobs {
		res, ok := results[j.key]
		if !ok {
			continue
		}
		reads.Set(j.series, j.x, float64(res.TransReads))
		mrt.Set(j.series, j.x, res.MeanRespMs)
	}
	return reads, mrt, nil
}
