package expt

import (
	"fmt"

	"dloop/internal/ssd"
	"dloop/internal/workload"
)

// Capacities, page sizes, and extra-block percentages from Table I.
var (
	CapacitiesGB = []int{4, 8, 16, 32, 64}
	PageSizesKB  = []int{2, 4, 8, 16}
	ExtraPcts    = []float64{0.03, 0.05, 0.07, 0.10}
)

func seriesName(trace, ftl string) string { return trace + "/" + ftl }

// sweep runs trace x scheme over one swept parameter and fills a mean-
// response-time grid and an SDRPP grid.
func sweep(title, xLabel string, xVals []string, mkJob func(x string, p workload.Profile, scheme string) (job, bool), opt Options) (*Grid, *Grid, error) {
	opt.setDefaults()
	var jobs []job
	for _, p := range workload.All() {
		p := scaleProfile(p, opt.Scale)
		for _, x := range xVals {
			for _, scheme := range ssd.Schemes() {
				j, ok := mkJob(x, p, scheme)
				if !ok {
					continue
				}
				j.series = seriesName(p.Name, scheme)
				j.x = x
				j.key = j.series + "@" + x
				jobs = append(jobs, j)
			}
		}
	}
	results, err := runAll(jobs, opt)
	if err != nil {
		return nil, nil, err
	}
	mrt := NewGrid(title+" — mean response time", xLabel, "ms", xVals)
	sdrpp := NewGrid(title+" — SDRPP", xLabel, "ln(stddev of requests per plane)", xVals)
	for _, j := range jobs {
		res, ok := results[j.key]
		if !ok {
			continue
		}
		mrt.Set(j.series, j.x, res.MeanRespMs)
		sdrpp.Set(j.series, j.x, res.SDRPP)
	}
	return mrt, sdrpp, nil
}

// Fig8 regenerates the SSD-capacity sweep: mean response time and SDRPP for
// the five traces and three FTLs at 4/8/16/32/64 GB, 2 KB pages, 3% extra.
func Fig8(opt Options) (mrt, sdrpp *Grid, err error) {
	xVals := make([]string, len(CapacitiesGB))
	for i, gb := range CapacitiesGB {
		xVals[i] = fmt.Sprintf("%d", gb)
	}
	return sweep("Fig. 8: impact of flash SSD capacity", "GB", xVals,
		func(x string, p workload.Profile, scheme string) (job, bool) {
			var gb int
			fmt.Sscanf(x, "%d", &gb)
			cfg, ok := configFor(gb, 2, 0.03, scheme, opt)
			if !ok || !footprintFits(cfg, p) {
				return job{}, false
			}
			return job{cfg: cfg, profile: p}, true
		}, opt)
}

// Fig9 regenerates the page-size sweep: 2/4/8/16 KB pages at 8 GB, 3% extra.
func Fig9(opt Options) (mrt, sdrpp *Grid, err error) {
	xVals := make([]string, len(PageSizesKB))
	for i, kb := range PageSizesKB {
		xVals[i] = fmt.Sprintf("%d", kb)
	}
	return sweep("Fig. 9: impact of page size (8 GB SSD)", "KB", xVals,
		func(x string, p workload.Profile, scheme string) (job, bool) {
			var kb int
			fmt.Sscanf(x, "%d", &kb)
			cfg, ok := configFor(8, kb, 0.03, scheme, opt)
			return job{cfg: cfg, profile: p}, ok
		}, opt)
}

// Fig10 regenerates the extra-blocks sweep: 3/5/7/10% at 8 GB, 2 KB pages.
func Fig10(opt Options) (mrt, sdrpp *Grid, err error) {
	xVals := make([]string, len(ExtraPcts))
	for i, pct := range ExtraPcts {
		xVals[i] = fmt.Sprintf("%.0f%%", pct*100)
	}
	return sweep("Fig. 10: impact of extra blocks (8 GB SSD)", "extra", xVals,
		func(x string, p workload.Profile, scheme string) (job, bool) {
			var pct float64
			fmt.Sscanf(x, "%f%%", &pct)
			cfg, ok := configFor(8, 2, pct/100, scheme, opt)
			return job{cfg: cfg, profile: p}, ok
		}, opt)
}

// configFor builds the ssd.Config for one run, honoring Options.Scale by
// substituting a proportionally shrunk geometry and SRAM cache.
func configFor(capacityGB, pageKB int, extraPct float64, scheme string, opt Options) (ssd.Config, bool) {
	cfg := ssd.Config{
		CapacityGB: capacityGB,
		PageSizeKB: pageKB,
		ExtraPct:   extraPct,
		FTL:        scheme,
	}
	if opt.Scale < 1 {
		geo, err := ssd.ScaledGeometryFor(capacityGB, pageKB, extraPct, 3, opt.Scale)
		if err != nil {
			return ssd.Config{}, false
		}
		cfg.Geometry = &geo
		cmt := int(4096 * opt.Scale)
		if cmt < 64 {
			cmt = 64
		}
		cfg.CMTEntries = cmt
	}
	if opt.CMTEntries != 0 {
		cfg.CMTEntries = opt.CMTEntries
	}
	return cfg, true
}

// Headline computes the paper's §I/§V.B summary: DLOOP's mean-response-time
// improvement over DFTL and FAST at the smallest and largest capacities,
// averaged over the traces that fit. It reuses a Fig8 mean-response grid.
func Headline(mrt *Grid) *Grid {
	out := NewGrid("Headline: DLOOP improvement in mean response time", "GB", "% improvement", mrt.XVals)
	for _, x := range mrt.XVals {
		for _, base := range []string{ssd.SchemeDFTL, ssd.SchemeFAST} {
			var sum float64
			var n int
			for _, p := range workload.All() {
				d, okD := mrt.Get(seriesName(p.Name, ssd.SchemeDLOOP), x)
				b, okB := mrt.Get(seriesName(p.Name, base), x)
				if !okD || !okB || b == 0 {
					continue
				}
				sum += (b - d) / b * 100
				n++
			}
			if n > 0 {
				out.Set("vs "+base, x, sum/float64(n))
			}
		}
	}
	return out
}
