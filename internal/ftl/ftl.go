// Package ftl defines the flash-translation-layer interface the SSD
// controller drives, plus the machinery shared by page-mapping FTLs: the
// free-block pools, the SRAM cached mapping table (CMT, segmented LRU), the
// global translation directory (GTD), and the demand-paging of translation
// pages. The three FTLs the paper evaluates live in the subpackages dloop,
// dftl, and fast.
package ftl

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// LPN is a logical page number: the page-granular address space the FTL
// exports to the host.
type LPN int64

// FTL translates logical page operations into timed flash operations. The
// controller has already split host requests into single-page operations
// (the paper: DLOOP "always aligns each request on page boundary" and splits
// multi-page requests). Implementations are not safe for concurrent use.
type FTL interface {
	// Name identifies the scheme in reports ("DLOOP", "DFTL", "FAST").
	Name() string
	// ReadPage serves a one-page host read that becomes serviceable at
	// ready, returning its completion time. Reading a never-written page
	// completes immediately (the controller answers it with zeros).
	ReadPage(lpn LPN, ready sim.Time) (sim.Time, error)
	// WritePage serves a one-page host write (first write or update) that
	// becomes serviceable at ready, returning its completion time.
	WritePage(lpn LPN, ready sim.Time) (sim.Time, error)
	// Capacity returns the number of logical pages the FTL exports.
	Capacity() LPN
}

// Observable is implemented by FTLs that can report internal activity (GC
// spans, merge events, CMT traffic) through an observability recorder. All
// FTLs in this repository implement it; the controller wires the recorder
// through this interface so new schemes opt in by adding one method.
type Observable interface {
	// SetRecorder attaches (or, with nil, detaches) the recorder.
	SetRecorder(r obs.Recorder)
}

// Snapshotter is implemented by FTLs that support deterministic
// checkpoint/fork. Snapshot returns an opaque deep copy of every piece of
// mutable FTL state (mapping tables, CMT, free pools, GC trackers, log-block
// state); Restore copies a snapshot's contents back into the receiver.
// Snapshots never alias live state, so one snapshot taken after a shared
// warm-up can fork any number of divergent runs, each bit-identical to a
// fresh run. All FTLs in this repository implement it.
type Snapshotter interface {
	// Snapshot captures the FTL's mutable state.
	Snapshot() any
	// Restore rewinds the FTL to a snapshot it produced earlier. It returns
	// an error if the snapshot came from a different scheme.
	Restore(snap any) error
}

// Stored-page tagging. The flash device records one int64 per physical page;
// FTLs use it to remember which logical content lives there so garbage
// collection can redirect mappings. Data pages store the LPN itself
// (non-negative); translation pages store an encoded translation-page number.
const storedTransBias = int64(1) << 60

// EncodeTrans tags a translation-page number for storage in a physical page.
func EncodeTrans(tvpn int64) int64 { return storedTransBias + tvpn }

// IsTrans reports whether a stored tag names a translation page.
func IsTrans(stored int64) bool { return stored >= storedTransBias }

// DecodeTrans recovers the translation-page number from a stored tag.
func DecodeTrans(stored int64) int64 { return stored - storedTransBias }

// CheckLPN validates an LPN against an exported capacity.
func CheckLPN(lpn LPN, capacity LPN) error {
	if lpn < 0 || lpn >= capacity {
		return fmt.Errorf("ftl: lpn %d outside exported capacity %d", lpn, capacity)
	}
	return nil
}

// ExportedPages computes how many logical pages an FTL exports given the
// device geometry and the number of over-provisioned ("extra") blocks per
// plane, which are invisible to the user (§III.C).
func ExportedPages(geo flash.Geometry, extraPerPlane int) LPN {
	data := geo.BlocksPerPlane - extraPerPlane
	return LPN(int64(geo.Planes()) * int64(data) * int64(geo.PagesPerBlock))
}

// ExtraBlocksPerPlane converts the paper's "percentage of extra blocks"
// (extra as a fraction of data blocks) into a per-plane block count, rounding
// up and keeping at least the GC threshold + 1 so collection always has room.
func ExtraBlocksPerPlane(blocksPerPlane int, extraPct float64, gcThreshold int) int {
	// blocksPerPlane = data + extra, extra = data*pct  =>  extra = total*pct/(1+pct)
	extra := int(float64(blocksPerPlane)*extraPct/(1+extraPct) + 0.999999)
	if min := gcThreshold + 1; extra < min {
		extra = min
	}
	if extra >= blocksPerPlane {
		extra = blocksPerPlane - 1
	}
	return extra
}
