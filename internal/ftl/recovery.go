package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// Power-loss recovery. NAND controllers store each page's logical address in
// the page's out-of-band (OOB) spare area — the device model keeps that tag
// (flash.Device.PageLPN) — so after a crash the whole mapping can be rebuilt
// by scanning the device: every valid page names its logical owner, every
// fully-free block returns to the pool, and partially-written blocks resume
// as write points. This is also what makes the translation engine's lazy GC
// redirects safe: a translation page left stale on flash is never the
// authority — the OOB tags are.

// PartialBlock is a block the scan found partially programmed: it was a
// write point when power failed and resumes as one.
type PartialBlock struct {
	PB        flash.PlaneBlock
	NextWrite int
}

// RecoveredState is the outcome of an OOB scan.
type RecoveredState struct {
	// Table maps each logical page to its valid physical page.
	Table []flash.PPN
	// GTD maps each translation-page number to its valid physical page.
	GTD []flash.PPN
	// Pool holds the fully-erased blocks.
	Pool *FreeBlocks
	// Tracker indexes the fully-written blocks by invalid count.
	Tracker *Tracker
	// Partial lists partially-written blocks, at most one per plane for
	// per-plane write-point designs.
	Partial []PartialBlock
}

// ScanOOB rebuilds FTL state from device page tags after a simulated power
// loss. capacity is the exported logical-page count; translationPages the
// GTD size. The scan is structural: it consumes no simulated time because
// recovery time is outside the paper's measurements, but a real controller
// would pay one read per page (or per block summary page).
func ScanOOB(dev *flash.Device, capacity LPN, translationPages int) (*RecoveredState, error) {
	geo := dev.Geometry()
	st := &RecoveredState{
		Table:   make([]flash.PPN, capacity),
		GTD:     make([]flash.PPN, translationPages),
		Pool:    NewEmptyFreeBlocks(geo),
		Tracker: NewTracker(geo),
	}
	for i := range st.Table {
		st.Table[i] = flash.InvalidPPN
	}
	for i := range st.GTD {
		st.GTD[i] = flash.InvalidPPN
	}

	for plane := 0; plane < geo.Planes(); plane++ {
		for block := 0; block < geo.BlocksPerPlane; block++ {
			pb := flash.PlaneBlock{Plane: plane, Block: block}
			info := dev.Block(pb)
			first := geo.FirstPPN(pb)
			for p := 0; p < geo.PagesPerBlock; p++ {
				ppn := first + flash.PPN(p)
				switch dev.PageState(ppn) {
				case flash.PageValid:
					stored := dev.PageLPN(ppn)
					if IsTrans(stored) {
						tvpn := DecodeTrans(stored)
						if tvpn < 0 || tvpn >= int64(translationPages) {
							return nil, fmt.Errorf("ftl: recovery found translation page %d outside GTD of %d", tvpn, translationPages)
						}
						if st.GTD[tvpn] != flash.InvalidPPN {
							return nil, fmt.Errorf("ftl: recovery found two valid copies of translation page %d", tvpn)
						}
						st.GTD[tvpn] = ppn
					} else {
						lpn := LPN(stored)
						if err := CheckLPN(lpn, capacity); err != nil {
							return nil, fmt.Errorf("ftl: recovery: %w", err)
						}
						if st.Table[lpn] != flash.InvalidPPN {
							return nil, fmt.Errorf("ftl: recovery found two valid copies of lpn %d", lpn)
						}
						st.Table[lpn] = ppn
					}
				case flash.PageInvalid:
					st.Tracker.Invalidated(pb)
				}
			}
			switch {
			case info.Written == 0:
				st.Pool.Put(pb)
			case info.NextWrite >= geo.PagesPerBlock:
				st.Tracker.Close(pb)
			default:
				st.Partial = append(st.Partial, PartialBlock{PB: pb, NextWrite: info.NextWrite})
			}
		}
	}
	return st, nil
}

// NewEmptyFreeBlocks returns a pool with no free blocks; recovery fills it
// from the scan.
func NewEmptyFreeBlocks(geo flash.Geometry) *FreeBlocks {
	f := &FreeBlocks{planes: make([]planeQueue, geo.Planes())}
	for p := range f.planes {
		f.planes[p].buf = make([]int, geo.BlocksPerPlane)
	}
	return f
}
