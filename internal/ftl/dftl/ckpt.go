package dftl

import (
	"fmt"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
)

// EncodeState appends a DFTL Snapshot (the any returned by Snapshot) to w.
func EncodeState(w *ckpt.Writer, snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("dftl: foreign snapshot %T", snap)
	}
	translate.EncodeState(w, s.mapper)
	ftl.EncodeFreeBlocksState(w, s.pool)
	ftl.EncodeTrackerState(w, s.tracker)
	encodeWritePoint(w, s.data)
	encodeWritePoint(w, s.trans)
	gc.EncodeState(w, s.engine)
	return nil
}

// DecodeState reads a snapshot written by EncodeState, in the form
// DFTL.Restore accepts.
func DecodeState(r *ckpt.Reader) any {
	return &state{
		mapper:  translate.DecodeState(r),
		pool:    ftl.DecodeFreeBlocksState(r),
		tracker: ftl.DecodeTrackerState(r),
		data:    decodeWritePoint(r),
		trans:   decodeWritePoint(r),
		engine:  gc.DecodeState(r),
	}
}

func encodeWritePoint(w *ckpt.Writer, wp writePoint) {
	w.Int(wp.pb.Plane)
	w.Int(wp.pb.Block)
	w.Int(wp.next)
	w.Bool(wp.active)
}

func decodeWritePoint(r *ckpt.Reader) writePoint {
	return writePoint{
		pb:     flash.PlaneBlock{Plane: r.Int(), Block: r.Int()},
		next:   r.Int(),
		active: r.Bool(),
	}
}
