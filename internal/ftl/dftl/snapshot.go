package dftl

import (
	"fmt"

	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
)

// state is DFTL's checkpoint: the demand-paged mapping machinery plus the
// two global write points.
type state struct {
	mapper  translate.State
	pool    ftl.FreeBlocksState
	tracker ftl.TrackerState
	data    writePoint
	trans   writePoint
	engine  gc.State
}

// Snapshot implements ftl.Snapshotter.
func (f *DFTL) Snapshot() any {
	return &state{
		mapper:  f.mapper.Snapshot(),
		pool:    f.pool.Snapshot(),
		tracker: f.tracker.Snapshot(),
		data:    f.data,
		trans:   f.trans,
		engine:  f.engine.Snapshot(),
	}
}

// Restore implements ftl.Snapshotter.
func (f *DFTL) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("dftl: foreign snapshot %T", snap)
	}
	f.mapper.Restore(s.mapper)
	f.pool.Restore(s.pool)
	f.tracker.Restore(s.tracker)
	f.data = s.data
	f.trans = s.trans
	f.engine.Restore(s.engine)
	return nil
}
