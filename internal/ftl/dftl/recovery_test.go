package dftl

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

// TestRecoveryRebuildsMapping crashes a DFTL instance mid-workload and
// checks the OOB-rebuilt instance exposes the identical mapping and keeps
// serving.
func TestRecoveryRebuildsMapping(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	var at sim.Time
	for i := 0; i < 20000; i++ {
		lpn := ftl.LPN(i % 96)
		if i%8 == 0 {
			lpn = ftl.LPN(96 + i/8%600)
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("workload never collected; crash state too simple")
	}

	r, err := NewRecovered(dev, Config{ExtraPerPlane: 4, CMTEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn++ {
		if got, want := r.Lookup(lpn), f.Lookup(lpn); got != want {
			t.Fatalf("lpn %d: recovered %d, want %d", lpn, got, want)
		}
	}
	at2 := at
	for i := 0; i < 3000; i++ {
		end, err := r.WritePage(ftl.LPN(i%600), at2)
		if err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
		at2 = end
	}
	for lpn := ftl.LPN(0); lpn < r.Capacity(); lpn++ {
		ppn := r.Lookup(lpn)
		if ppn == flash.InvalidPPN {
			continue
		}
		if dev.PageState(ppn) != flash.PageValid || dev.PageLPN(ppn) != int64(lpn) {
			t.Fatalf("post-recovery lpn %d inconsistent", lpn)
		}
	}
}
