package dftl

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
		PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T, cfg Config) (*DFTL, *flash.Device) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExtraPerPlane == 0 {
		cfg.ExtraPerPlane = 4
	}
	if cfg.CMTEntries == 0 {
		cfg.CMTEntries = 32
	}
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestNewValidation(t *testing.T) {
	dev, _ := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if _, err := New(dev, Config{ExtraPerPlane: 0}); err == nil {
		t.Error("zero extra accepted")
	}
	if _, err := New(dev, Config{ExtraPerPlane: 16}); err == nil {
		t.Error("extra consuming all blocks accepted")
	}
}

func TestPlaneObliviousAllocation(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	// The first block's worth of data writes all land on plane 0 block-
	// sequentially: DFTL appends to one global current block.
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		ppn := f.Lookup(lpn)
		if geo.PlaneOf(ppn) != 0 {
			t.Fatalf("lpn %d on plane %d, want 0", lpn, geo.PlaneOf(ppn))
		}
	}
	// Consecutive writes on one plane serialize: total time ~ 8x a single
	// write rather than overlapping.
	single := dev.Timing().ExternalWrite(geo.PageSize)
	elapsed := at // all writes chained
	if elapsed < sim.Time(7*single) {
		t.Fatalf("8 sequential same-plane writes took %v, want >= 7x %v", elapsed, single)
	}
}

func TestTranslationPagesStartOnPlaneZero(t *testing.T) {
	f, dev := newTestFTL(t, Config{CMTEntries: 4})
	geo := dev.Geometry()
	var at sim.Time
	// Touch enough distinct lpns to force dirty evictions and translation-
	// page writes.
	for lpn := ftl.LPN(0); lpn < 512; lpn += 8 {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	found := false
	for tvpn := 0; tvpn < f.mapper.TranslationPages(); tvpn++ {
		ppn := f.mapper.GTD[tvpn]
		if ppn == flash.InvalidPPN {
			continue
		}
		found = true
		if geo.PlaneOf(ppn) != 0 {
			t.Fatalf("early translation page on plane %d, want 0 (plane-major allocation)", geo.PlaneOf(ppn))
		}
	}
	if !found {
		t.Fatal("no translation pages persisted")
	}
}

func TestGCMovesAreExternal(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	var at sim.Time
	// Hot/cold mix across the device to leave valid pages in victims.
	for i := 0; i < 30000; i++ {
		lpn := ftl.LPN(i % 96)
		if i%8 == 0 {
			lpn = ftl.LPN(96 + i/8%600)
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	cb, ext := dev.Stats().GCMoves()
	if cb != 0 {
		t.Fatalf("DFTL used %d copy-backs", cb)
	}
	if ext == 0 {
		t.Fatal("no external GC moves")
	}
	if f.Stats().GCMoves != ext {
		t.Fatalf("GCMoves %d != device external moves %d", f.Stats().GCMoves, ext)
	}
	if dev.Stats().WastedPages != 0 {
		t.Fatal("DFTL wasted pages; the parity rule should not apply")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	end, err := f.WritePage(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("write cost no time")
	}
	ppn := f.Lookup(7)
	if ppn == flash.InvalidPPN || dev.PageLPN(ppn) != 7 {
		t.Fatal("mapping wrong after write")
	}
	rEnd, err := f.ReadPage(7, end)
	if err != nil {
		t.Fatal(err)
	}
	if rEnd <= end {
		t.Fatal("read cost no time")
	}
	// Unwritten read is free.
	if got, err := f.ReadPage(500, end); err != nil || got != end {
		t.Fatalf("unwritten read: %v %v", got, err)
	}
}

func TestBoundsChecking(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	if _, err := f.ReadPage(f.Capacity(), 0); err == nil {
		t.Error("read beyond capacity accepted")
	}
	if _, err := f.WritePage(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
}

func TestCMTMissCostsTranslationRead(t *testing.T) {
	f, dev := newTestFTL(t, Config{CMTEntries: 2})
	var at sim.Time
	// Persist mappings for several lpns.
	for lpn := ftl.LPN(0); lpn < 16; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	reads0 := f.Stats().MapperStats.TransReads
	// lpn 0 long evicted: resolving it must read its translation page.
	if _, err := f.ReadPage(0, at); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().MapperStats.TransReads; got <= reads0 {
		t.Fatalf("no translation read on CMT miss (%d -> %d)", reads0, got)
	}
	_ = dev
}
