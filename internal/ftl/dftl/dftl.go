// Package dftl implements the DFTL baseline (Gupta et al., ASPLOS'09) at the
// fidelity the DLOOP paper compares against: a demand-paged page-mapping FTL
// whose hot mappings live in an SRAM CMT and whose full table lives in
// translation pages on flash, located through the GTD.
//
// DFTL is plane-oblivious. Data pages append to a single global current
// block and translation pages to another, both drawn from the free pool in
// plane-major order — so consecutive writes land on one plane and queue
// behind each other, and the translation pages start out concentrated in the
// first blocks of plane 0 (§V.B/§V.D of the DLOOP paper explains how both
// hurt it). Garbage collection picks the block with the most invalid pages
// device-wide and relocates valid pages with external reads and writes
// through the serial bus and channel — the 325 µs inter-plane copy of
// Fig. 2 — because plain DFTL does not use the copy-back command.
package dftl

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes DFTL.
type Config struct {
	// CMTEntries is the SRAM mapping-cache capacity (default 4096).
	CMTEntries int
	// GCThreshold triggers garbage collection when the device-wide free pool
	// drops below it (kept at the paper's 3, scaled by nothing: DFTL pools
	// globally).
	GCThreshold int
	// ExtraPerPlane matches the over-provisioning given to the other FTLs so
	// every scheme exports the same capacity.
	ExtraPerPlane int
	// GCPolicy selects the garbage-collection victim policy (default
	// "greedy"; see gc.ParsePolicy for the alternatives).
	GCPolicy string
	// TranslatePolicy selects the address-translation policy (default
	// "slru"; see translate.ParsePolicy for the alternatives).
	TranslatePolicy string
}

func (c *Config) setDefaults() {
	if c.CMTEntries == 0 {
		c.CMTEntries = 4096
	}
	if c.GCThreshold == 0 {
		c.GCThreshold = 3
	}
}

// Stats exposes DFTL-specific counters.
type Stats struct {
	GCRuns      int64
	GCMoves     int64 // valid pages relocated by GC (all through the bus)
	MapperStats translate.Stats
}

type writePoint struct {
	pb     flash.PlaneBlock
	next   int
	active bool
}

// DFTL is the baseline FTL. Not safe for concurrent use.
type DFTL struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN

	mapper  *translate.Engine
	pool    *ftl.FreeBlocks
	tracker *ftl.Tracker
	data    writePoint // global current data block
	trans   writePoint // global current translation block
	engine  *gc.Engine // owns the collect loop and reentrancy guards

	rec obs.Recorder // nil when observability is disabled
}

// New builds a DFTL baseline over dev.
func New(dev *flash.Device, cfg Config) (*DFTL, error) {
	cfg.setDefaults()
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < 1 || cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("dftl: bad ExtraPerPlane %d", cfg.ExtraPerPlane)
	}
	f := &DFTL{
		dev:      dev,
		geo:      geo,
		cfg:      cfg,
		capacity: ftl.ExportedPages(geo, cfg.ExtraPerPlane),
		pool:     ftl.NewFreeBlocks(geo),
		tracker:  ftl.NewTracker(geo),
	}
	var err error
	tpol, err := translate.ParsePolicy(cfg.TranslatePolicy)
	if err != nil {
		return nil, err
	}
	f.mapper, err = translate.NewEngine(translate.Config{
		Dev: dev, Placer: f, Tracker: f.tracker,
		Capacity: f.capacity, CMTEntries: cfg.CMTEntries, Policy: tpol,
		// The global data log appends consecutive LPNs to consecutive pages,
		// so the learned index trains unit-stride progressions.
		StrideHint: 1,
	})
	if err != nil {
		return nil, err
	}
	name := cfg.GCPolicy
	if name == "" {
		name = gc.DefaultPagePolicy
	}
	policy, err := gc.ParsePolicy(name, geo.PagesPerBlock)
	if err != nil {
		return nil, err
	}
	f.engine = gc.NewEngine(gc.Config{
		Dev:     dev,
		Policy:  policy,
		Tracker: f.tracker,
		Scheme:  hooks{f},
		// Device-wide trigger and victim search, external moves in plain
		// offset order, no progress guard: plain DFTL's original loop.
		Style: gc.MoveOffsetOrder,
	})
	return f, nil
}

// Name implements ftl.FTL.
func (f *DFTL) Name() string { return "DFTL" }

// Capacity implements ftl.FTL.
func (f *DFTL) Capacity() ftl.LPN { return f.capacity }

// Stats returns DFTL's internal counters, derived from the GC engine and
// the shared mapper.
func (f *DFTL) Stats() Stats {
	es := f.engine.Stats()
	return Stats{
		GCRuns:      es.Runs,
		GCMoves:     es.Moves,
		MapperStats: f.mapper.Stats(),
	}
}

// GCPolicyName reports the victim-selection policy in effect.
func (f *DFTL) GCPolicyName() string { return f.engine.PolicyName() }

// TranslatePolicyName reports the address-translation policy in effect.
func (f *DFTL) TranslatePolicyName() string { return f.mapper.Policy().String() }

// LearnedSegments reports the learned index's live segment count (0 unless
// the learned translation policy is active).
func (f *DFTL) LearnedSegments() int { return f.mapper.LearnedSegments() }

// CMTHitRate reports the mapping-cache hit rate.
func (f *DFTL) CMTHitRate() (float64, int64, int64) { return f.mapper.Cache.HitRate() }

// SetRecorder implements ftl.Observable.
func (f *DFTL) SetRecorder(r obs.Recorder) {
	f.rec = r
	f.mapper.SetRecorder(r)
	f.engine.SetRecorder(r)
}

// ReadPage implements ftl.FTL.
func (f *DFTL) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t, err := f.mapper.Resolve(lpn, ready)
	if err != nil {
		return 0, err
	}
	ppn := f.mapper.Table[lpn]
	if ppn == flash.InvalidPPN {
		return t, nil
	}
	return f.dev.ReadPage(ppn, t, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *DFTL) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t, err := f.mapper.Resolve(lpn, ready)
	if err != nil {
		return 0, err
	}
	ppn, t, err := f.PlacePage(int64(lpn), t)
	if err != nil {
		return 0, err
	}
	end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	if _, err := f.mapper.RecordWrite(lpn, ppn); err != nil {
		return 0, err
	}
	return end, nil
}

// PlacePage implements ftl.Placer: appends to the global data or translation
// write point, collecting garbage first if the device-wide pool is low.
func (f *DFTL) PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error) {
	t := ready
	// Collections never place through this path (GC mapping redirects are
	// lazy), so the engine's idle guard is pure defense against reentry.
	if f.engine.Idle(0) {
		var err error
		t, err = f.engine.MaybeCollect(0, t)
		if err != nil {
			return flash.InvalidPPN, 0, err
		}
	}
	wp := &f.data
	if ftl.IsTrans(stored) {
		wp = &f.trans
	}
	ppn, err := f.nextFreePage(wp)
	if err != nil {
		return flash.InvalidPPN, 0, err
	}
	return ppn, t, nil
}

func (f *DFTL) nextFreePage(wp *writePoint) (flash.PPN, error) {
	if wp.active && wp.next >= f.geo.PagesPerBlock {
		f.tracker.Close(wp.pb)
		wp.active = false
	}
	if !wp.active {
		pb, ok := f.pool.TakeAny() // plane-major: DFTL's plane-oblivious allocation
		if !ok {
			return flash.InvalidPPN, fmt.Errorf("dftl: device exhausted (capacity overcommitted)")
		}
		wp.pb, wp.next, wp.active = pb, 0, true
	}
	ppn := f.geo.PPNOf(wp.pb.Plane, wp.pb.Block, wp.next)
	wp.next++
	return ppn, nil
}

// hooks adapts DFTL's global pool and twin write points to the GC engine's
// Scheme surface: relocated data pages append to the current data block,
// translation pages to the current translation block.
type hooks struct{ f *DFTL }

func (h hooks) PoolLow(plane int) bool { return h.f.pool.Total() < h.f.cfg.GCThreshold }

func (h hooks) FreePages(plane int) int {
	f := h.f
	n := f.pool.Total() * f.geo.PagesPerBlock
	for _, wp := range []*writePoint{&f.data, &f.trans} {
		if wp.active {
			n += f.geo.PagesPerBlock - wp.next
		}
	}
	return n
}

func (h hooks) DestParity(plane int) int { return 0 } // external moves only: parity never binds

func (h hooks) NextDest(plane int, stored int64) (flash.PPN, error) {
	wp := &h.f.data
	if ftl.IsTrans(stored) {
		wp = &h.f.trans
	}
	return h.f.nextFreePage(wp)
}

func (h hooks) Redirect(moved []ftl.Moved, at sim.Time) (sim.Time, error) {
	return h.f.mapper.RedirectMoved(moved, at)
}

func (h hooks) Release(victim flash.PlaneBlock) { h.f.pool.Put(victim) }

// Lookup returns the current physical page of lpn without charging simulated
// time or perturbing the CMT; tests and consistency checks use it.
func (f *DFTL) Lookup(lpn ftl.LPN) flash.PPN {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return flash.InvalidPPN
	}
	return f.mapper.Table[lpn]
}

// NewRecovered builds a DFTL baseline from an existing device's state by
// scanning the out-of-band page tags after a simulated power loss. The CMT
// starts cold. DFTL keeps two write points (data and translation); recovery
// cannot tell from page state alone which partial block served which role,
// so it resumes the first partial block as the data point and the second as
// the translation point — both roles only append, so the assignment does
// not affect correctness.
func NewRecovered(dev *flash.Device, cfg Config) (*DFTL, error) {
	f, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	st, err := ftl.ScanOOB(dev, f.capacity, f.mapper.TranslationPages())
	if err != nil {
		return nil, err
	}
	if err := f.mapper.AdoptState(st.Table, st.GTD); err != nil {
		return nil, err
	}
	f.pool = st.Pool
	f.tracker = st.Tracker
	f.mapper.Retarget(f, st.Tracker)
	f.engine.Retarget(st.Tracker)
	wps := []*writePoint{&f.data, &f.trans}
	if len(st.Partial) > len(wps) {
		return nil, fmt.Errorf("dftl: recovery found %d partial blocks, want at most %d", len(st.Partial), len(wps))
	}
	for i, p := range st.Partial {
		wps[i].pb, wps[i].next, wps[i].active = p.PB, p.NextWrite, true
	}
	return f, nil
}
