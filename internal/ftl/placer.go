package ftl

import (
	"dloop/internal/flash"
	"dloop/internal/sim"
)

// Placer is the placement policy a page-mapping FTL plugs into the
// translation engine (internal/ftl/translate): it picks (and, if needed,
// garbage-collects to obtain) a destination page for the encoded logical
// page. DLOOP stripes by plane; DFTL appends to a global write point.
type Placer interface {
	// PlacePage returns a free physical page for the stored tag (an LPN or
	// an encoded translation-page number) and the earliest time the page can
	// accept the program, after any garbage collection the placement incurs.
	PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error)
}

// Moved records one garbage-collection relocation for mapping redirection.
type Moved struct {
	Stored int64 // tag of the page content (LPN or encoded tvpn)
	New    flash.PPN
}
