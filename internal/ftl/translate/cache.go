package translate

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// Cache is the Cached Mapping Table: the small SRAM cache of hot
// logical-to-physical mappings that DFTL introduced and DLOOP reuses
// (§III.D, algorithm line 6: "select a victim entry for eviction using
// segmented LRU").
//
// In its default segmented-LRU mode it keeps a probationary segment for
// entries seen once and a protected segment for entries hit again; victims
// come from the probationary tail, so scan-like bursts cannot flush the hot
// set. The plain mode (PolicyLRU) collapses both segments into one recency
// list — every hit moves to the front, victims come from the tail.
//
// The cache also indexes dirty entries by translation page, supporting
// DFTL's batch-update optimization: when a dirty victim forces a
// translation-page write-back, every other dirty mapping belonging to the
// same translation page is written back (and cleaned) in the same
// read-modify-write.
//
// Entries live in a slab of values addressed by int32 handles (0 is the nil
// handle), recycled through a free list, so the cache performs no per-entry
// heap allocation in steady state. Recency lists and the per-translation-page
// dirty index are intrusive: each entry carries its own links, and dirty
// membership costs one list splice plus a counter update instead of a
// map-of-maps insertion.
type Cache struct {
	capacity int
	protCap  int  // capacity of the protected segment
	epp      int  // mapping entries per translation page
	plain    bool // plain LRU: single recency list, no protected segment
	n        int  // cached entries

	slab     []entry // 1-based; slab[0] is the nil sentinel
	freeHead int32   // free-list head, linked through entry.next

	// Exactly one of the two lookup indexes is active: dense maps the whole
	// logical space to handles (O(1), no hashing) when the space size is
	// known at build time; index is the fallback for callers that size only
	// the cache.
	dense []int32
	index map[ftl.LPN]int32

	probation list // MRU at head; the only list in plain mode
	protected list // MRU at head

	tpHead  []int32 // tvpn -> head of the intrusive dirty list
	tpCount []int32 // tvpn -> cached dirty mappings

	hits, misses int64
}

// Entry is the externally visible form of a cache entry.
type Entry struct {
	LPN   ftl.LPN
	PPN   flash.PPN
	Dirty bool
}

type entry struct {
	lpn          ftl.LPN
	ppn          flash.PPN
	dirty        bool
	protected    bool
	prev, next   int32 // recency-list links (next doubles as the free-list link)
	dPrev, dNext int32 // per-translation-page dirty-list links
}

type list struct {
	head, tail int32
	n          int
}

func (c *Cache) pushFront(l *list, h int32) {
	e := &c.slab[h]
	e.prev = 0
	e.next = l.head
	if l.head != 0 {
		c.slab[l.head].prev = h
	}
	l.head = h
	if l.tail == 0 {
		l.tail = h
	}
	l.n++
}

func (c *Cache) listRemove(l *list, h int32) {
	e := &c.slab[h]
	if e.prev != 0 {
		c.slab[e.prev].next = e.next
	} else {
		l.head = e.next
	}
	if e.next != 0 {
		c.slab[e.next].prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = 0, 0
	l.n--
}

// NewCache returns a segmented-LRU cache holding at most capacity entries,
// with the protected segment getting half. entriesPerPage is the number of
// mapping entries per translation page, used to group dirty entries for
// batched write-back. Capacity must be at least 2 and entriesPerPage at
// least 1.
func NewCache(capacity, entriesPerPage int) (*Cache, error) {
	return newCache(capacity, entriesPerPage, 0, 0, false)
}

// NewLRUCache is NewCache in plain least-recently-used mode: one recency
// list, hits move to the front, victims come from the tail.
func NewLRUCache(capacity, entriesPerPage int) (*Cache, error) {
	return newCache(capacity, entriesPerPage, 0, 0, true)
}

// NewCacheForSpace is NewCache for a caller that knows the logical space the
// cache fronts: space logical pages grouped into translationPages
// translation pages. Lookups then go through a dense handle array instead of
// a hash map, which matters on the request-serving hot path. plain selects
// the single-list LRU mode.
func NewCacheForSpace(capacity, entriesPerPage int, space ftl.LPN, translationPages int, plain bool) (*Cache, error) {
	if space < 1 || translationPages < 1 {
		return nil, fmt.Errorf("translate: cache space %d / %d translation pages too small", space, translationPages)
	}
	return newCache(capacity, entriesPerPage, space, translationPages, plain)
}

func newCache(capacity, entriesPerPage int, space ftl.LPN, translationPages int, plain bool) (*Cache, error) {
	if capacity < 2 {
		return nil, fmt.Errorf("translate: cache capacity %d too small", capacity)
	}
	if entriesPerPage < 1 {
		return nil, fmt.Errorf("translate: entries per translation page %d too small", entriesPerPage)
	}
	c := &Cache{
		capacity: capacity,
		protCap:  capacity / 2,
		epp:      entriesPerPage,
		plain:    plain,
		slab:     make([]entry, capacity+1),
	}
	// Chain every handle onto the free list.
	for h := 1; h <= capacity; h++ {
		c.slab[h].next = int32(h) + 1
	}
	c.slab[capacity].next = 0
	c.freeHead = 1
	if space > 0 {
		c.dense = make([]int32, space)
		c.tpHead = make([]int32, translationPages)
		c.tpCount = make([]int32, translationPages)
	} else {
		c.index = make(map[ftl.LPN]int32, capacity)
	}
	return c, nil
}

func (c *Cache) alloc() int32 {
	h := c.freeHead
	c.freeHead = c.slab[h].next
	c.slab[h] = entry{}
	return h
}

func (c *Cache) release(h int32) {
	c.slab[h].next = c.freeHead
	c.freeHead = h
}

func (c *Cache) lookup(lpn ftl.LPN) int32 {
	if c.dense != nil {
		return c.dense[lpn]
	}
	return c.index[lpn]
}

func (c *Cache) setIndex(lpn ftl.LPN, h int32) {
	if c.dense != nil {
		c.dense[lpn] = h
		return
	}
	c.index[lpn] = h
}

func (c *Cache) delIndex(lpn ftl.LPN) {
	if c.dense != nil {
		c.dense[lpn] = 0
		return
	}
	delete(c.index, lpn)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return c.n }

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.capacity }

// HitRate returns the fraction of Get calls that hit, and the totals.
func (c *Cache) HitRate() (rate float64, hits, misses int64) {
	if c.hits+c.misses == 0 {
		return 0, 0, 0
	}
	return float64(c.hits) / float64(c.hits+c.misses), c.hits, c.misses
}

func (c *Cache) tvpn(lpn ftl.LPN) int64 { return int64(lpn) / int64(c.epp) }

// ensureTP grows the map-indexed cache's translation-page arrays to cover
// tvpn; the dense variant sized them at construction.
func (c *Cache) ensureTP(tvpn int64) {
	for int64(len(c.tpHead)) <= tvpn {
		c.tpHead = append(c.tpHead, 0)
		c.tpCount = append(c.tpCount, 0)
	}
}

func (c *Cache) markDirty(h int32) {
	e := &c.slab[h]
	tp := c.tvpn(e.lpn)
	c.ensureTP(tp)
	e.dPrev = 0
	e.dNext = c.tpHead[tp]
	if e.dNext != 0 {
		c.slab[e.dNext].dPrev = h
	}
	c.tpHead[tp] = h
	c.tpCount[tp]++
}

func (c *Cache) unmarkDirty(h int32) {
	e := &c.slab[h]
	tp := c.tvpn(e.lpn)
	if e.dPrev != 0 {
		c.slab[e.dPrev].dNext = e.dNext
	} else {
		c.tpHead[tp] = e.dNext
	}
	if e.dNext != 0 {
		c.slab[e.dNext].dPrev = e.dPrev
	}
	e.dPrev, e.dNext = 0, 0
	c.tpCount[tp]--
}

// CacheState is a deep copy of the cache, for checkpoint/fork. Entries are
// plain values, so copying the slab copies every list link with it.
type CacheState struct {
	n                    int
	slab                 []entry
	freeHead             int32
	dense                []int32
	index                map[ftl.LPN]int32
	probation, protected list
	tpHead               []int32
	tpCount              []int32
	hits, misses         int64
}

// Snapshot captures the cache's contents and statistics.
func (c *Cache) Snapshot() CacheState {
	s := CacheState{
		n:         c.n,
		slab:      append([]entry(nil), c.slab...),
		freeHead:  c.freeHead,
		probation: c.probation,
		protected: c.protected,
		tpHead:    append([]int32(nil), c.tpHead...),
		tpCount:   append([]int32(nil), c.tpCount...),
		hits:      c.hits,
		misses:    c.misses,
	}
	if c.dense != nil {
		s.dense = append([]int32(nil), c.dense...)
	} else {
		s.index = make(map[ftl.LPN]int32, len(c.index))
		for k, v := range c.index {
			s.index[k] = v
		}
	}
	return s
}

// Restore rewinds the cache to a snapshot from a Cache of the same shape.
// The map-indexed variant's translation-page arrays grow on demand, so the
// slices are re-appended rather than copied in place.
func (c *Cache) Restore(s CacheState) {
	c.n = s.n
	copy(c.slab, s.slab)
	c.freeHead = s.freeHead
	c.probation = s.probation
	c.protected = s.protected
	c.tpHead = append(c.tpHead[:0], s.tpHead...)
	c.tpCount = append(c.tpCount[:0], s.tpCount...)
	c.hits = s.hits
	c.misses = s.misses
	if c.dense != nil {
		copy(c.dense, s.dense)
		return
	}
	c.index = make(map[ftl.LPN]int32, len(s.index))
	for k, v := range s.index {
		c.index[k] = v
	}
}

// Get looks up a mapping, updating recency and segment membership on a hit.
func (c *Cache) Get(lpn ftl.LPN) (flash.PPN, bool) {
	h := c.lookup(lpn)
	if h == 0 {
		c.misses++
		return flash.InvalidPPN, false
	}
	c.hits++
	c.touch(h)
	return c.slab[h].ppn, true
}

// Contains reports whether a mapping is cached without perturbing recency or
// hit statistics (used by garbage collection).
func (c *Cache) Contains(lpn ftl.LPN) bool { return c.lookup(lpn) != 0 }

func (c *Cache) touch(h int32) {
	if c.plain {
		// Plain LRU: one list, hits move to the front.
		c.listRemove(&c.probation, h)
		c.pushFront(&c.probation, h)
		return
	}
	if c.slab[h].protected {
		c.listRemove(&c.protected, h)
		c.pushFront(&c.protected, h)
		return
	}
	// Promote probation -> protected; demote protected LRU if over capacity.
	c.listRemove(&c.probation, h)
	c.slab[h].protected = true
	c.pushFront(&c.protected, h)
	for c.protected.n > c.protCap {
		lru := c.protected.tail
		c.listRemove(&c.protected, lru)
		c.slab[lru].protected = false
		c.pushFront(&c.probation, lru)
	}
}

// Insert adds a mapping that is not currently cached. If the cache is full it
// evicts the LRU victim (in segmented mode, the segmented-LRU victim) and
// returns it with evicted=true; the caller must write the victim back to its
// translation page if it is dirty.
func (c *Cache) Insert(lpn ftl.LPN, ppn flash.PPN, dirty bool) (victim Entry, evicted bool) {
	if c.lookup(lpn) != 0 {
		panic(fmt.Sprintf("translate: Cache.Insert of cached lpn %d", lpn))
	}
	if c.n >= c.capacity {
		victim, evicted = c.evict()
	}
	h := c.alloc()
	e := &c.slab[h]
	e.lpn, e.ppn, e.dirty = lpn, ppn, dirty
	c.setIndex(lpn, h)
	c.pushFront(&c.probation, h)
	c.n++
	if dirty {
		c.markDirty(h)
	}
	return victim, evicted
}

func (c *Cache) evict() (Entry, bool) {
	var h int32
	if c.probation.tail != 0 {
		h = c.probation.tail
		c.listRemove(&c.probation, h)
	} else if c.protected.tail != 0 {
		h = c.protected.tail
		c.listRemove(&c.protected, h)
	} else {
		return Entry{}, false
	}
	e := &c.slab[h]
	if e.dirty {
		c.unmarkDirty(h)
	}
	c.delIndex(e.lpn)
	c.n--
	victim := Entry{LPN: e.lpn, PPN: e.ppn, Dirty: e.dirty}
	c.release(h)
	return victim, true
}

// Update rewrites the PPN of a cached mapping and ORs in dirty. It reports
// whether the entry was present.
func (c *Cache) Update(lpn ftl.LPN, ppn flash.PPN, dirty bool) bool {
	h := c.lookup(lpn)
	if h == 0 {
		return false
	}
	e := &c.slab[h]
	e.ppn = ppn
	if dirty && !e.dirty {
		e.dirty = true
		c.markDirty(h)
	}
	return true
}

// DirtyInPage returns how many cached dirty mappings belong to the
// translation page tvpn.
func (c *Cache) DirtyInPage(tvpn int64) int {
	if tvpn < 0 || tvpn >= int64(len(c.tpCount)) {
		return 0
	}
	return int(c.tpCount[tvpn])
}

// CleanPage marks every cached dirty mapping of translation page tvpn clean
// and returns how many there were. Engine.writeBack calls it after the
// read-modify-write that persisted them all at once (DFTL's batch update).
func (c *Cache) CleanPage(tvpn int64) int {
	if tvpn < 0 || tvpn >= int64(len(c.tpHead)) {
		return 0
	}
	for h := c.tpHead[tvpn]; h != 0; {
		e := &c.slab[h]
		e.dirty = false
		h = e.dNext
		e.dPrev, e.dNext = 0, 0
	}
	n := int(c.tpCount[tvpn])
	c.tpHead[tvpn] = 0
	c.tpCount[tvpn] = 0
	return n
}
