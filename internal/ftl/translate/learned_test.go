package translate

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func TestLearnedTrainUnitStride(t *testing.T) {
	li := newLearnedIndex(1, 1)
	table := make([]flash.PPN, 32)
	for i := range table {
		table[i] = flash.PPN(100 + i)
	}
	if n := li.train(0, 0, 32, table); n != 1 {
		t.Fatalf("train = %d segments, want 1", n)
	}
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		ppn, ok := li.predict(0, lpn)
		if !ok || ppn != table[lpn] {
			t.Fatalf("predict(%d) = %d,%v, want %d", lpn, ppn, ok, table[lpn])
		}
	}
}

func TestLearnedTrainStridedResidues(t *testing.T) {
	// Two interleaved plane logs, DLOOP-style with 2 planes: even LPNs on
	// ascending even PPNs, odd LPNs on a different ascending progression.
	li := newLearnedIndex(1, 2)
	table := make([]flash.PPN, 16)
	for i := 0; i < 16; i += 2 {
		table[i] = flash.PPN(i * 10)       // delta 20 per even step
		table[i+1] = flash.PPN(1000 + i*3) // delta 6 per odd step
	}
	if n := li.train(0, 0, 16, table); n != 2 {
		t.Fatalf("train = %d segments, want 2 (one per residue)", n)
	}
	for lpn := ftl.LPN(0); lpn < 16; lpn++ {
		ppn, ok := li.predict(0, lpn)
		if !ok || ppn != table[lpn] {
			t.Fatalf("predict(%d) = %d,%v, want %d", lpn, ppn, ok, table[lpn])
		}
	}
}

func TestLearnedTrainSkipsHolesAndShortRuns(t *testing.T) {
	li := newLearnedIndex(1, 1)
	table := make([]flash.PPN, 16)
	for i := range table {
		table[i] = flash.InvalidPPN
	}
	// A 3-run (below minSegRun), a hole, then a 5-run.
	for i := 0; i < 3; i++ {
		table[i] = flash.PPN(10 + i)
	}
	for i := 8; i < 13; i++ {
		table[i] = flash.PPN(50 + i)
	}
	if n := li.train(0, 0, 16, table); n != 1 {
		t.Fatalf("train = %d segments, want only the 5-run", n)
	}
	if _, ok := li.predict(0, 1); ok {
		t.Fatal("short run predicted")
	}
	if _, ok := li.predict(0, 5); ok {
		t.Fatal("hole predicted")
	}
	ppn, ok := li.predict(0, 10)
	if !ok || ppn != table[10] {
		t.Fatalf("predict(10) = %d,%v", ppn, ok)
	}
}

func TestLearnedTrainNonUnitDelta(t *testing.T) {
	// Constant PPN delta != 1 (e.g. a plane log interleaved with another
	// plane's pages) still forms one segment.
	li := newLearnedIndex(1, 1)
	table := make([]flash.PPN, 8)
	for i := range table {
		table[i] = flash.PPN(7 + 4*i)
	}
	if n := li.train(0, 0, 8, table); n != 1 {
		t.Fatalf("train = %d, want 1", n)
	}
	ppn, ok := li.predict(0, 6)
	if !ok || ppn != 7+24 {
		t.Fatalf("predict(6) = %d,%v", ppn, ok)
	}
}

func TestLearnedInvalidate(t *testing.T) {
	li := newLearnedIndex(1, 1)
	table := make([]flash.PPN, 16)
	for i := range table {
		table[i] = flash.PPN(i)
	}
	li.train(0, 0, 16, table)
	li.invalidate(0, 5)
	if _, ok := li.predict(0, 7); ok {
		t.Fatal("covering segment survived invalidate")
	}
	if li.segments() != 0 {
		t.Fatalf("segments = %d after invalidate", li.segments())
	}
	// Invalidating an uncovered lpn is a no-op.
	li.train(0, 0, 16, table)
	before := li.segments()
	li.invalidate(0, 200)
	if li.segments() != before {
		t.Fatal("invalidate of uncovered lpn dropped a segment")
	}
}

func TestLearnedSegmentCap(t *testing.T) {
	li := newLearnedIndex(1, 1)
	// 64 disjoint runs of length 4 with wild deltas between them.
	table := make([]flash.PPN, 64*5)
	for i := range table {
		table[i] = flash.InvalidPPN
	}
	for r := 0; r < 64; r++ {
		for i := 0; i < 4; i++ {
			table[r*5+i] = flash.PPN(r*1000 + i)
		}
	}
	if n := li.train(0, 0, ftl.LPN(len(table)), table); n != maxSegsPerTP {
		t.Fatalf("train = %d segments, want cap %d", n, maxSegsPerTP)
	}
}

// TestEngineLearnedSkipsTranslationRead drives the full miss path: a
// sequential fill trains segments, then re-reading an evicted span must
// resolve misses via verified predictions instead of translation reads.
func TestEngineLearnedSkipsTranslationRead(t *testing.T) {
	m, dev, _ := newLearnedTestEngine(t, 2)
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if m.LearnedSegments() == 0 {
		t.Fatal("sequential fill trained no segments")
	}
	// Ensure the whole span is persisted and the trained segments match the
	// final table: one more write-back through the engine's own path.
	if _, err := m.writeBack(0, at); err != nil {
		t.Fatal(err)
	}
	readsBefore := m.Stats().TransReads
	hitsBefore := m.Stats().LearnedHits
	for lpn := ftl.LPN(0); lpn < 30; lpn++ {
		if m.Cache.Contains(lpn) {
			continue
		}
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.LearnedHits == hitsBefore {
		t.Fatal("no learned hits on re-read of a trained sequential span")
	}
	if st.TransReads != readsBefore {
		t.Fatalf("trained span still cost %d translation reads", st.TransReads-readsBefore)
	}
}

// TestEngineLearnedMispredictFallsBack overwrites pages behind the index's
// back (simulating staleness), then checks a wrong prediction is refuted,
// charged, and followed by the normal translation read.
func TestEngineLearnedMispredictFallsBack(t *testing.T) {
	m, dev, _ := newLearnedTestEngine(t, 2)
	var at sim.Time
	write := func(lpn ftl.LPN) {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		write(lpn)
	}
	if _, err := m.writeBack(0, at); err != nil {
		t.Fatal(err)
	}
	if m.LearnedSegments() == 0 {
		t.Fatal("no segments trained")
	}
	// Corrupt a trained segment's view: move lpn 10's mapping without telling
	// the index (bypassing RecordWrite's invalidation hook).
	oldPPN := m.Table[10]
	newPPN, _, _ := m.placer.PlacePage(10, at)
	at, _ = dev.CopyBack(oldPPN, newPPN, at, flash.CauseGC)
	m.Table[10] = newPPN
	if m.Cache.Contains(10) {
		m.Cache.Update(10, newPPN, false)
	}
	// Evict lpn 10 if cached so the next Resolve misses.
	for l := ftl.LPN(40); l < 44; l++ {
		if _, err := m.Resolve(l, at); err != nil {
			t.Fatal(err)
		}
	}
	falseBefore := m.Stats().LearnedFalse
	readsBefore := m.Stats().TransReads
	if _, err := m.Resolve(10, at); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.LearnedFalse != falseBefore+1 {
		t.Fatalf("LearnedFalse = %d, want %d", st.LearnedFalse, falseBefore+1)
	}
	if st.TransReads != readsBefore+1 {
		t.Fatalf("misprediction did not fall back to the translation read")
	}
	// The covering segment is gone: lpn 11 no longer predicts.
	if _, ok := m.li.predict(m.TVPN(10), 10); ok {
		t.Fatal("refuted segment survived")
	}
}

// TestEngineLearnedRecordWriteInvalidates pins the overwrite hook: updating
// a trained lpn through the public API drops its segment.
func TestEngineLearnedRecordWriteInvalidates(t *testing.T) {
	m, dev, _ := newLearnedTestEngine(t, 8)
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if _, err := m.writeBack(0, at); err != nil {
		t.Fatal(err)
	}
	if m.LearnedSegments() == 0 {
		t.Fatal("no segments trained")
	}
	if _, err := m.Resolve(5, at); err != nil {
		t.Fatal(err)
	}
	ppn, _, _ := m.placer.PlacePage(5, at)
	if _, err := dev.WritePage(ppn, 5, at, flash.CauseHost); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecordWrite(5, ppn); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.li.predict(m.TVPN(5), 5); ok {
		t.Fatal("overwrite left a stale covering segment")
	}
}
