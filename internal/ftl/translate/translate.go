// Package translate is the scheme-agnostic demand-paged address-translation
// engine shared by the page-mapping FTLs (DLOOP, DFTL). It owns the pieces
// DFTL introduced and DLOOP reuses (§II.A, §III.D): the in-SRAM cached
// mapping table (CMT), the global translation directory (GTD) locating the
// on-flash translation pages, and the read-modify-write machinery that
// charges the flash traffic of CMT misses and dirty evictions — while each
// scheme supplies only placement (ftl.Placer) and invalidation bookkeeping
// (ftl.Tracker).
//
// Like the garbage-collection engine (internal/ftl/gc), the translation
// policy is pluggable and the default reproduces the pre-engine behavior
// bit-identically:
//
//   - slru (default): the segmented-LRU cache the seed code used — a
//     probationary segment for entries seen once and a protected segment for
//     entries hit again, victims from the probationary tail.
//   - lru: a plain least-recently-used cache, the textbook baseline the
//     segmented variant is usually compared against.
//   - learned: the slru cache plus a LearnedFTL-style learned index
//     (Wang et al.): piecewise-linear LPN→PPN segments trained at
//     translation-page write-back predict the physical location of regularly
//     placed ranges, and a correct prediction — verified against the page's
//     out-of-band logical tag — skips the translation-page read entirely.
//     GC relocations and random overwrites invalidate the covering segments.
package translate

import "fmt"

// Policy selects the translation engine's caching/lookup policy.
type Policy uint8

const (
	// PolicySLRU is the segmented-LRU cache, the seed behavior and default.
	PolicySLRU Policy = iota
	// PolicyLRU is the plain least-recently-used baseline.
	PolicyLRU
	// PolicyLearned is slru plus the learned LPN→PPN index on the miss path.
	PolicyLearned
)

func (p Policy) String() string {
	switch p {
	case PolicySLRU:
		return "slru"
	case PolicyLRU:
		return "lru"
	case PolicyLearned:
		return "learned"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// DefaultPolicy is the policy used when none is named.
const DefaultPolicy = "slru"

// PolicyNames lists the selectable translation policies.
func PolicyNames() []string { return []string{"slru", "lru", "learned"} }

// ParsePolicy returns the policy named name; the empty string selects the
// default (slru).
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "slru":
		return PolicySLRU, nil
	case "lru":
		return PolicyLRU, nil
	case "learned":
		return PolicyLearned, nil
	}
	return 0, fmt.Errorf("translate: unknown policy %q (have slru, lru, learned)", name)
}
