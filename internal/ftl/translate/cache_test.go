package translate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

func TestCacheRejectsBadConfig(t *testing.T) {
	if _, err := NewCache(1, 256); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := NewCache(8, 0); err == nil {
		t.Error("entriesPerPage 0 accepted")
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c, err := NewCache(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(1, 100, false)
	ppn, ok := c.Get(1)
	if !ok || ppn != 100 {
		t.Fatalf("Get(1) = %d,%v", ppn, ok)
	}
	rate, hits, misses := c.HitRate()
	if hits != 1 || misses != 1 || rate != 0.5 {
		t.Fatalf("hit stats %v %d %d", rate, hits, misses)
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if c.Len() != 1 || c.Capacity() != 4 {
		t.Fatal("len/capacity wrong")
	}
}

func TestCacheInsertPanicsOnDuplicate(t *testing.T) {
	c, _ := NewCache(4, 256)
	c.Insert(1, 100, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate insert")
		}
	}()
	c.Insert(1, 200, false)
}

func TestCacheSegmentedLRUEviction(t *testing.T) {
	c, _ := NewCache(4, 256)
	// Fill with 4 entries; touch 1 and 2 so they get protected.
	for i := ftl.LPN(1); i <= 4; i++ {
		c.Insert(i, flash.PPN(i*10), false)
	}
	c.Get(1)
	c.Get(2)
	// Inserting 5 must evict the probationary LRU, which is 3 (4 is more
	// recent in probation; 1,2 are protected).
	victim, evicted := c.Insert(5, 50, false)
	if !evicted || victim.LPN != 3 {
		t.Fatalf("victim %+v evicted=%v, want lpn 3", victim, evicted)
	}
	// Scan through many one-shot entries: protected 1 and 2 must survive.
	for i := ftl.LPN(100); i < 120; i++ {
		c.Insert(i, flash.PPN(i), false)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("protected entries were flushed by a scan")
	}
}

// TestCachePlainLRUEviction pins the lru policy's difference from slru: a
// re-referenced entry gains no scan resistance, so a burst of one-shot
// inserts flushes it.
func TestCachePlainLRUEviction(t *testing.T) {
	c, _ := NewLRUCache(4, 256)
	for i := ftl.LPN(1); i <= 4; i++ {
		c.Insert(i, flash.PPN(i*10), false)
	}
	c.Get(1)
	c.Get(2)
	// LRU order (most recent first): 2, 1, 4, 3 — the victim is 3.
	victim, evicted := c.Insert(5, 50, false)
	if !evicted || victim.LPN != 3 {
		t.Fatalf("victim %+v evicted=%v, want lpn 3", victim, evicted)
	}
	// Unlike slru, a scan evicts the previously-hit entries too.
	for i := ftl.LPN(100); i < 120; i++ {
		c.Insert(i, flash.PPN(i), false)
	}
	if c.Contains(1) || c.Contains(2) {
		t.Fatal("plain LRU kept re-referenced entries through a scan")
	}
}

func TestCacheEvictFromProtectedWhenProbationEmpty(t *testing.T) {
	c, _ := NewCache(2, 256)
	c.Insert(1, 10, false)
	c.Insert(2, 20, false)
	c.Get(1)
	c.Get(2) // both promoted; probation empty (protCap=1 demotes one back)
	// protCap = 1, so promoting 2 demoted 1 back to probation.
	victim, evicted := c.Insert(3, 30, false)
	if !evicted {
		t.Fatal("no eviction at capacity")
	}
	if victim.LPN != 1 {
		t.Fatalf("victim %d, want demoted 1", victim.LPN)
	}
}

func TestCacheDirtyTracking(t *testing.T) {
	c, _ := NewCache(8, 4) // tvpn = lpn/4
	c.Insert(0, 10, true)
	c.Insert(1, 11, false)
	c.Update(1, 12, true)
	c.Insert(5, 20, true) // different translation page
	if got := c.DirtyInPage(0); got != 2 {
		t.Fatalf("DirtyInPage(0) = %d, want 2", got)
	}
	if got := c.DirtyInPage(1); got != 1 {
		t.Fatalf("DirtyInPage(1) = %d, want 1", got)
	}
	if n := c.CleanPage(0); n != 2 {
		t.Fatalf("CleanPage(0) = %d, want 2", n)
	}
	if c.DirtyInPage(0) != 0 {
		t.Fatal("page 0 still dirty after CleanPage")
	}
}

func TestCacheUpdateMissing(t *testing.T) {
	c, _ := NewCache(4, 256)
	if c.Update(9, 1, true) {
		t.Fatal("Update of missing entry returned true")
	}
}

func TestCacheEvictedDirtyEntryLeavesIndex(t *testing.T) {
	c, _ := NewCache(2, 4)
	c.Insert(0, 10, true)
	c.Insert(1, 11, true)
	victim, evicted := c.Insert(2, 12, false)
	if !evicted || !victim.Dirty {
		t.Fatalf("expected dirty eviction, got %+v %v", victim, evicted)
	}
	// The evicted entry must no longer count as a cached dirty mapping.
	want := 2 - 1 // two dirty inserted in tvpn 0, one evicted
	if got := c.DirtyInPage(0); got != want {
		t.Fatalf("DirtyInPage(0) = %d, want %d", got, want)
	}
}

func TestCacheCleanPageNoDirtyEntries(t *testing.T) {
	c, _ := NewCache(8, 4)
	c.Insert(0, 10, false)
	c.Insert(1, 11, false)
	if n := c.CleanPage(0); n != 0 {
		t.Fatalf("CleanPage of all-clean page = %d, want 0", n)
	}
	// Translation pages the cache has never seen, including out of range.
	if n := c.CleanPage(3); n != 0 {
		t.Fatalf("CleanPage of untouched page = %d, want 0", n)
	}
	if n := c.CleanPage(-1); n != 0 {
		t.Fatalf("CleanPage(-1) = %d, want 0", n)
	}
	if n := c.CleanPage(1 << 40); n != 0 {
		t.Fatalf("CleanPage beyond range = %d, want 0", n)
	}
}

// TestCacheEvictDirectlyWithEmptyProbation drives evict() with every entry in
// the protected segment: the victim must come from the protected tail and its
// dirty accounting must be unwound.
func TestCacheEvictDirectlyWithEmptyProbation(t *testing.T) {
	c, _ := NewCache(4, 4)
	c.Insert(0, 10, true)
	c.Insert(1, 11, false)
	c.Get(0)
	c.Get(1) // both promoted: probation is empty, protected holds {1, 0}
	if c.probation.n != 0 || c.protected.n != 2 {
		t.Fatalf("segments: probation %d protected %d, want 0/2", c.probation.n, c.protected.n)
	}
	victim, evicted := c.evict()
	if !evicted || victim.LPN != 0 || !victim.Dirty {
		t.Fatalf("victim %+v %v, want dirty lpn 0 from protected tail", victim, evicted)
	}
	if c.DirtyInPage(0) != 0 {
		t.Fatal("evicted protected entry still counted dirty")
	}
	if c.Len() != 1 || c.Contains(0) {
		t.Fatal("evicted entry still cached")
	}
}

func TestCacheUpdatePromotesCleanToDirtyOnce(t *testing.T) {
	c, _ := NewCache(8, 4)
	c.Insert(2, 10, false)
	if c.DirtyInPage(0) != 0 {
		t.Fatal("clean insert counted dirty")
	}
	if !c.Update(2, 11, true) {
		t.Fatal("Update of cached entry returned false")
	}
	if got := c.DirtyInPage(0); got != 1 {
		t.Fatalf("DirtyInPage after clean->dirty = %d, want 1", got)
	}
	// Re-dirtying an already-dirty entry must not double-count it.
	c.Update(2, 12, true)
	if got := c.DirtyInPage(0); got != 1 {
		t.Fatalf("DirtyInPage after second dirty Update = %d, want 1", got)
	}
	if n := c.CleanPage(0); n != 1 {
		t.Fatalf("CleanPage = %d, want the single entry", n)
	}
	// A dirty=false Update must not clean an entry.
	c.Update(2, 13, true)
	c.Update(2, 14, false)
	if got := c.DirtyInPage(0); got != 1 {
		t.Fatalf("Update(dirty=false) changed dirty count: %d, want 1", got)
	}
}

// TestCacheDenseVariantMatchesMap runs the same operation stream against the
// map-indexed and dense-indexed builds; they must behave identically.
func TestCacheDenseVariantMatchesMap(t *testing.T) {
	const space, epp = 40, 4
	a, _ := NewCache(8, epp)
	b, err := NewCacheForSpace(8, epp, space, (space+epp-1)/epp, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		lpn := ftl.LPN(rng.Intn(space))
		switch rng.Intn(4) {
		case 0:
			pa, oka := a.Get(lpn)
			pb, okb := b.Get(lpn)
			if pa != pb || oka != okb {
				t.Fatalf("op %d: Get(%d) diverged: (%d,%v) vs (%d,%v)", i, lpn, pa, oka, pb, okb)
			}
		case 1:
			ppn := flash.PPN(rng.Intn(1000))
			dirty := rng.Intn(2) == 0
			if a.Contains(lpn) != b.Contains(lpn) {
				t.Fatalf("op %d: Contains(%d) diverged", i, lpn)
			}
			if a.Contains(lpn) {
				if a.Update(lpn, ppn, dirty) != b.Update(lpn, ppn, dirty) {
					t.Fatalf("op %d: Update(%d) diverged", i, lpn)
				}
			} else {
				va, ea := a.Insert(lpn, ppn, dirty)
				vb, eb := b.Insert(lpn, ppn, dirty)
				if va != vb || ea != eb {
					t.Fatalf("op %d: Insert(%d) diverged: %+v/%v vs %+v/%v", i, lpn, va, ea, vb, eb)
				}
			}
		case 2:
			tvpn := int64(rng.Intn(space / epp))
			if na, nb := a.CleanPage(tvpn), b.CleanPage(tvpn); na != nb {
				t.Fatalf("op %d: CleanPage(%d) diverged: %d vs %d", i, tvpn, na, nb)
			}
		case 3:
			tvpn := int64(rng.Intn(space / epp))
			if na, nb := a.DirtyInPage(tvpn), b.DirtyInPage(tvpn); na != nb {
				t.Fatalf("op %d: DirtyInPage(%d) diverged: %d vs %d", i, tvpn, na, nb)
			}
		}
	}
}

// Property: the cache never exceeds capacity, Get returns what was last
// Insert/Update-ed, and the dirty index matches entry dirty flags — for both
// the segmented and plain-LRU builds.
func TestCacheModelProperty(t *testing.T) {
	f := func(seed int64, plain bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var c *Cache
		if plain {
			c, _ = NewLRUCache(8, 4)
		} else {
			c, _ = NewCache(8, 4)
		}
		model := map[ftl.LPN]flash.PPN{} // what the cache should hold if present
		dirty := map[ftl.LPN]bool{}
		for i := 0; i < 500; i++ {
			lpn := ftl.LPN(rng.Intn(20))
			switch rng.Intn(3) {
			case 0:
				if c.Contains(lpn) {
					ppn, ok := c.Get(lpn)
					if !ok || ppn != model[lpn] {
						return false
					}
				}
			case 1:
				ppn := flash.PPN(rng.Intn(1000))
				if c.Contains(lpn) {
					c.Update(lpn, ppn, true)
					dirty[lpn] = true
				} else {
					if victim, evicted := c.Insert(lpn, ppn, false); evicted {
						delete(model, victim.LPN)
						delete(dirty, victim.LPN)
					}
				}
				model[lpn] = ppn
			case 2:
				tvpn := int64(rng.Intn(5))
				c.CleanPage(tvpn)
				for l := range dirty {
					if int64(l)/4 == tvpn {
						delete(dirty, l)
					}
				}
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		// Dirty index agrees with the model for all cached entries.
		for tvpn := int64(0); tvpn < 5; tvpn++ {
			n := 0
			for l, d := range dirty {
				if d && c.Contains(l) && int64(l)/4 == tvpn {
					n++
				}
			}
			if c.DirtyInPage(tvpn) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
