package translate

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

func benchGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 64,
		PagesPerBlock: 32, PageSize: 2048,
	}
}

// BenchmarkCMT measures the cache's hot path: hit, miss+insert, eviction.
func BenchmarkCMT(b *testing.B) {
	c, err := NewCache(4096, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpn := ftl.LPN(i % 8192) // 50% working set over capacity: mixes hits and evictions
		if _, ok := c.Get(lpn); !ok {
			c.Insert(lpn, flash.PPN(i), i%2 == 0)
		}
	}
}

// newBenchEngine builds an engine over an 8192-page logical space with every
// mapping live and every translation page persisted, so steady-state misses
// pay real translation reads. The table follows the unit progression
// (Table[lpn] = lpn) the learned policy trains on at write-back.
func newBenchEngine(b *testing.B, policy Policy) *Engine {
	b.Helper()
	dev, err := flash.NewDevice(benchGeo(), flash.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewEngine(Config{
		Dev: dev, Placer: &seqPlacer{dev: dev}, Tracker: ftl.NewTracker(benchGeo()),
		Capacity: 8192, CMTEntries: 4096, Policy: policy, StrideHint: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for lpn := range m.Table {
		m.Table[lpn] = flash.PPN(lpn)
	}
	for tp := 0; tp < m.TranslationPages(); tp++ {
		if _, err := m.writeBack(ftl.LPN(tp*m.EntriesPerTP()), 0); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkTranslationMiss measures the demand-paging slow path: a scan over
// twice the cache capacity makes every Resolve a clean-victim miss that
// fetches its translation page from flash.
func BenchmarkTranslationMiss(b *testing.B) {
	m := newBenchEngine(b, PolicySLRU)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Resolve(ftl.LPN(i%8192), 0); err != nil {
			b.Fatal(err)
		}
	}
	if m.Stats().TransReads == 0 {
		b.Fatal("benchmark never missed")
	}
}

// BenchmarkLearnedLookup measures the same miss scan under the learned
// policy: the trained segments predict every mapping correctly, so each miss
// is resolved by a verified prediction instead of a translation read.
func BenchmarkLearnedLookup(b *testing.B) {
	m := newBenchEngine(b, PolicyLearned)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Resolve(ftl.LPN(i%8192), 0); err != nil {
			b.Fatal(err)
		}
	}
	if m.Stats().LearnedHits == 0 || m.Stats().LearnedFalse != 0 {
		b.Fatalf("learned predictions off the fast path: %+v", m.Stats())
	}
}
