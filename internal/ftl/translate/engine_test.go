package translate

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 8,
		PagesPerBlock: 4, PageSize: 2048,
	}
}

// seqPlacer hands out every physical page in order — a minimal Placer for
// exercising the engine without garbage collection.
type seqPlacer struct {
	dev  *flash.Device
	next flash.PPN
}

func (p *seqPlacer) PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error) {
	ppn := p.next
	p.next++
	return ppn, ready, nil
}

// splitPlacer keeps DFTL-style twin write points: data pages ascend from 0,
// translation pages from a block-aligned region above them. Data PPNs then
// advance in lockstep with LPNs, the progression the learned index exists to
// capture.
type splitPlacer struct {
	data, trans flash.PPN
}

func (p *splitPlacer) PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error) {
	if ftl.IsTrans(stored) {
		ppn := p.trans
		p.trans++
		return ppn, ready, nil
	}
	ppn := p.data
	p.data++
	return ppn, ready, nil
}

func newLearnedTestEngine(t *testing.T, cmtEntries int) (*Engine, *flash.Device, *splitPlacer) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	placer := &splitPlacer{trans: 128} // block-aligned, beyond the data span
	tr := ftl.NewTracker(testGeo())
	m, err := NewEngine(Config{
		Dev: dev, Placer: placer, Tracker: tr,
		Capacity: 64, CMTEntries: cmtEntries, Policy: PolicyLearned,
		StrideHint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, dev, placer
}

func newTestEngine(t *testing.T, cmtEntries int, policy Policy) (*Engine, *flash.Device, *seqPlacer) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	placer := &seqPlacer{dev: dev}
	tr := ftl.NewTracker(testGeo())
	m, err := NewEngine(Config{
		Dev: dev, Placer: placer, Tracker: tr,
		Capacity: 64, CMTEntries: cmtEntries, Policy: policy,
		StrideHint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, dev, placer
}

func TestEngineGeometryDerived(t *testing.T) {
	m, _, _ := newTestEngine(t, 8, PolicySLRU)
	if m.EntriesPerTP() != 2048/8 {
		t.Fatalf("EntriesPerTP = %d", m.EntriesPerTP())
	}
	if m.TranslationPages() != 1 { // 64 lpns fit one 256-entry page
		t.Fatalf("TranslationPages = %d", m.TranslationPages())
	}
	if m.TVPN(0) != 0 || m.TVPN(63) != 0 {
		t.Fatal("TVPN wrong")
	}
	if m.Policy() != PolicySLRU {
		t.Fatalf("Policy = %v", m.Policy())
	}
}

func TestEngineResolveMissIsFreeWhenNothingPersisted(t *testing.T) {
	for _, policy := range []Policy{PolicySLRU, PolicyLRU, PolicyLearned} {
		m, _, _ := newTestEngine(t, 8, policy)
		end, err := m.Resolve(5, 100)
		if err != nil {
			t.Fatal(err)
		}
		if end != 100 {
			t.Fatalf("%v: unpersisted miss cost time: %v", policy, end)
		}
		// Now cached: a second resolve is also free.
		if end, _ := m.Resolve(5, 200); end != 200 {
			t.Fatalf("%v: hit cost time", policy)
		}
	}
}

func TestEngineWriteEvictFetchCycle(t *testing.T) {
	m, dev, _ := newTestEngine(t, 2, PolicySLRU)
	tm := dev.Timing()
	pageSize := dev.Geometry().PageSize

	// Write lpn 0: resolve (free), record (dirty).
	if _, err := m.Resolve(0, 0); err != nil {
		t.Fatal(err)
	}
	ppn0, t0, err := m.placer.PlacePage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WritePage(ppn0, 0, t0, flash.CauseHost); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecordWrite(0, ppn0); err != nil {
		t.Fatal(err)
	}
	if m.Table[0] != ppn0 {
		t.Fatal("table not updated")
	}

	// Fill the 2-entry cache so resolving a third lpn evicts dirty lpn 0,
	// forcing a translation-page write (no prior page to read: GTD empty).
	if _, err := m.Resolve(1, 0); err != nil {
		t.Fatal(err)
	}
	ready := sim.Time(1 * sim.Second)
	end, err := m.Resolve(2, ready)
	if err != nil {
		t.Fatal(err)
	}
	// Cost: one translation-page program (transfer+program); the fetch for
	// lpn 2 is free (GTD had no page before this write-back... it does now,
	// but lpn 2 shares the single translation page, so a fetch happens).
	wantMin := ready.Add(tm.ExternalWrite(pageSize))
	if end < wantMin {
		t.Fatalf("dirty eviction cost %v, want >= %v", end, wantMin)
	}
	st := m.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 || st.TransWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
	if m.GTD[0] == flash.InvalidPPN {
		t.Fatal("GTD not set after write-back")
	}
	if dev.PageState(m.GTD[0]) != flash.PageValid {
		t.Fatal("translation page not valid on flash")
	}

	// A later miss on lpn 0 must now pay a translation-page read.
	if _, err := m.Resolve(0, ready); err == nil {
		// lpn 0 was evicted, so this is a miss; it may evict lpn 1 or 2
		// (clean) and must read the translation page.
		if got := m.Stats().TransReads; got < 1 {
			t.Fatalf("TransReads = %d, want >= 1", got)
		}
	} else {
		t.Fatal(err)
	}
}

func TestEngineBatchWriteback(t *testing.T) {
	m, dev, _ := newTestEngine(t, 4, PolicySLRU)
	// Dirty three mappings in the same translation page.
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 3; lpn++ {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, err := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// Evicting one dirty entry persists all three (batch update).
	if _, err := m.Resolve(10, at); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resolve(11, at); err != nil { // forces eviction
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TransWrites != 1 {
		t.Fatalf("TransWrites = %d, want 1 (batched)", st.TransWrites)
	}
	if st.BatchCleaned < 2 {
		t.Fatalf("BatchCleaned = %d, want >= 2", st.BatchCleaned)
	}
	// The remaining dirty entries were cleaned: evicting them writes nothing.
	before := m.Stats().TransWrites
	if _, err := m.Resolve(12, at); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resolve(13, at); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().TransWrites; got != before {
		t.Fatalf("clean evictions wrote %d pages", got-before)
	}
}

func TestEngineRecordWriteRequiresResolve(t *testing.T) {
	m, _, _ := newTestEngine(t, 4, PolicySLRU)
	if _, err := m.RecordWrite(7, 1); err == nil {
		t.Fatal("RecordWrite without Resolve accepted")
	}
}

func TestEngineRedirectMoved(t *testing.T) {
	m, dev, _ := newTestEngine(t, 4, PolicySLRU)
	// Set up two data pages and one translation page on flash.
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 2; lpn++ {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}

	// Simulate GC moving lpn 0 (cached: cache update, dirty, no flash
	// traffic) and a translation page (GTD repoint only).
	oldPPN := m.Table[0]
	newPPN, _, _ := m.placer.PlacePage(0, at)
	at, _ = dev.CopyBack(oldPPN, newPPN, at, flash.CauseGC)
	transWritesBefore := m.Stats().TransWrites
	end, err := m.RedirectMoved([]ftl.Moved{{Stored: 0, New: newPPN}}, at)
	if err != nil {
		t.Fatal(err)
	}
	if end != at {
		t.Fatal("cached redirect should be free")
	}
	if m.Table[0] != newPPN {
		t.Fatal("table not redirected")
	}
	if m.Stats().TransWrites != transWritesBefore {
		t.Fatal("cached redirect wrote a translation page")
	}

	// GTD repoint for a moved translation page.
	m.GTD[0] = 40
	end, err = m.RedirectMoved([]ftl.Moved{{Stored: ftl.EncodeTrans(0), New: 41}}, end)
	if err != nil {
		t.Fatal(err)
	}
	if m.GTD[0] != 41 {
		t.Fatal("GTD not repointed")
	}
	// Restore: 41 is a synthetic location; later fetches must not read it.
	m.GTD[0] = flash.InvalidPPN

	// A non-cached data move updates the table lazily: no flash traffic, an
	// OOB-backed stale translation page (see RedirectMoved's doc comment).
	// Evict lpn 1 from the cache by filling it.
	for l := ftl.LPN(20); l < 24; l++ {
		if _, err := m.Resolve(l, end); err != nil {
			t.Fatal(err)
		}
	}
	old1 := m.Table[1]
	new1, _, _ := m.placer.PlacePage(1, end)
	end2, _ := dev.CopyBack(old1, new1, end, flash.CauseGC)
	before := m.Stats().TransWrites
	got, err := m.RedirectMoved([]ftl.Moved{{Stored: 1, New: new1}}, end2)
	if err != nil {
		t.Fatal(err)
	}
	if got != end2 {
		t.Fatal("lazy redirect should cost no time")
	}
	if m.Table[1] != new1 {
		t.Fatal("table not redirected for uncached move")
	}
	if m.Stats().TransWrites != before {
		t.Fatalf("uncached redirect wrote %d pages, want 0 (lazy)", m.Stats().TransWrites-before)
	}
	if m.Stats().LazyRedirects == 0 {
		t.Fatal("lazy redirect not counted")
	}
}

func TestEngineLazyRedirectPersistsAtNextWriteBack(t *testing.T) {
	m, dev, _ := newTestEngine(t, 2, PolicySLRU)
	// Persist lpn 0, evict it (dirty), so a translation page exists.
	var at sim.Time
	for _, lpn := range []ftl.LPN{0, 1, 2} {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if m.GTD[0] == flash.InvalidPPN {
		t.Fatal("no translation page persisted yet")
	}
	// Lazily redirect uncached lpn 0 (evicted by the 2-entry cache).
	if m.Cache.Contains(0) {
		t.Fatal("test setup: lpn 0 should be evicted")
	}
	old := m.Table[0]
	dst, _, _ := m.placer.PlacePage(0, at)
	at, _ = dev.CopyBack(old, dst, at, flash.CauseGC)
	if _, err := m.RedirectMoved([]ftl.Moved{{Stored: 0, New: dst}}, at); err != nil {
		t.Fatal(err)
	}
	lazy := m.Stats().LazyRedirects
	if lazy == 0 {
		t.Fatal("redirect not lazy")
	}
	// The next write-back of that translation page persists the current
	// table (including the redirect) — a later fetch of lpn 0 reads a page
	// whose content is, by construction, the authoritative table.
	beforeW := m.Stats().TransWrites
	if _, err := m.writeBack(0, at); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TransWrites != beforeW+1 {
		t.Fatal("write-back did not program a page")
	}
	if m.Table[0] != dst {
		t.Fatal("table lost the redirect")
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	for _, policy := range []Policy{PolicySLRU, PolicyLearned} {
		m, dev, _ := newTestEngine(t, 4, policy)
		var at sim.Time
		for lpn := ftl.LPN(0); lpn < 8; lpn++ {
			if _, err := m.Resolve(lpn, at); err != nil {
				t.Fatal(err)
			}
			ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
			end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
			if _, err := m.RecordWrite(lpn, ppn); err != nil {
				t.Fatal(err)
			}
			at = end
		}
		snap := m.Snapshot()
		tableAt := append([]flash.PPN(nil), m.Table...)
		statsAt := m.Stats()
		segsAt := m.LearnedSegments()

		// Mutate past the snapshot.
		for lpn := ftl.LPN(8); lpn < 16; lpn++ {
			if _, err := m.Resolve(lpn, at); err != nil {
				t.Fatal(err)
			}
			ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
			end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
			if _, err := m.RecordWrite(lpn, ppn); err != nil {
				t.Fatal(err)
			}
			at = end
		}

		m.Restore(snap)
		for i, want := range tableAt {
			if m.Table[i] != want {
				t.Fatalf("%v: Table[%d] = %d after restore, want %d", policy, i, m.Table[i], want)
			}
		}
		if m.Stats() != statsAt {
			t.Fatalf("%v: stats not restored: %+v vs %+v", policy, m.Stats(), statsAt)
		}
		if m.LearnedSegments() != segsAt {
			t.Fatalf("%v: learned segments %d after restore, want %d", policy, m.LearnedSegments(), segsAt)
		}
	}
}

func TestEngineAdoptStateResetsLearned(t *testing.T) {
	m, dev, _ := newLearnedTestEngine(t, 2)
	var at sim.Time
	// Enough sequential writes through a tiny cache to force write-backs
	// (and therefore training).
	for lpn := ftl.LPN(0); lpn < 32; lpn++ {
		if _, err := m.Resolve(lpn, at); err != nil {
			t.Fatal(err)
		}
		ppn, t2, _ := m.placer.PlacePage(int64(lpn), at)
		end, _ := dev.WritePage(ppn, int64(lpn), t2, flash.CauseHost)
		if _, err := m.RecordWrite(lpn, ppn); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if m.LearnedSegments() == 0 {
		t.Fatal("test setup: no segments trained")
	}
	table := append([]flash.PPN(nil), m.Table...)
	gtd := append([]flash.PPN(nil), m.GTD...)
	if err := m.AdoptState(table, gtd); err != nil {
		t.Fatal(err)
	}
	if m.LearnedSegments() != 0 {
		t.Fatal("AdoptState kept learned segments; SRAM state must not survive power loss")
	}
	if err := m.AdoptState(table[:10], gtd); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
}
