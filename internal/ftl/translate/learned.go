package translate

import (
	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// The learned LPN→PPN index (PolicyLearned), after LearnedFTL (Wang et al.):
// flash pages placed by a regular rule — DLOOP's plane striping, DFTL's
// append-only data log — leave arithmetic structure in the mapping table that
// a handful of piecewise-linear segments capture exactly. A CMT miss first
// consults the segments covering the missed translation page; a prediction is
// verified against the page's out-of-band logical tag (the simulator checks
// the authoritative table, which is what the OOB tag stores), and a correct
// prediction makes the translation-page read unnecessary — the "double read"
// of DFTL §III.D collapses back to one.
//
// Segments are trained at translation-page write-back, when the page's span
// of the table is persisted anyway and is in its most settled state. Training
// walks the span one residue class at a time (stride = the scheme's striping
// period: #planes for DLOOP, 1 for DFTL) and emits one segment per maximal
// run with a constant PPN delta. Random overwrites and GC relocations
// invalidate the covering segment (a stale segment would only mispredict —
// verification keeps it safe — but dropping it keeps the mispredict rate
// down); recovery resets the whole index, which retrains lazily as
// write-backs resume.

// minSegRun is the shortest run worth a segment: shorter runs save too few
// translation reads to justify the lookup work.
const minSegRun = 4

// maxSegsPerTP bounds the per-translation-page segment count, modeling the
// bounded SRAM budget a real learned index trains under. Training keeps the
// first runs it finds (deterministic); uncovered spans simply fall back to
// the translation-page read.
const maxSegsPerTP = 16

// segment is one piecewise-linear piece: count members starting at start,
// lpnStride apart, whose PPNs advance by ppnDelta from base.
type segment struct {
	start     ftl.LPN
	lpnStride int32
	count     int32
	base      flash.PPN
	ppnDelta  int64
}

// covers reports whether lpn is a member of the segment's progression.
func (s segment) covers(lpn ftl.LPN) bool {
	if lpn < s.start {
		return false
	}
	off := int64(lpn - s.start)
	if off%int64(s.lpnStride) != 0 {
		return false
	}
	return off/int64(s.lpnStride) < int64(s.count)
}

// predict returns the segment's PPN for a covered lpn.
func (s segment) predict(lpn ftl.LPN) flash.PPN {
	k := int64(lpn-s.start) / int64(s.lpnStride)
	return s.base + flash.PPN(k*s.ppnDelta)
}

// learnedIndex holds the per-translation-page segments plus training
// counters. The zero value is unusable; newLearnedIndex sizes it.
type learnedIndex struct {
	stride int         // striping period: LPN distance between same-plane neighbors
	segs   [][]segment // tvpn -> trained segments
}

func newLearnedIndex(translationPages, stride int) *learnedIndex {
	if stride < 1 {
		stride = 1
	}
	return &learnedIndex{stride: stride, segs: make([][]segment, translationPages)}
}

// train refits the segments of translation page tvpn from the authoritative
// table span [lo, hi). It replaces whatever the page had, reusing the
// backing array, and returns how many segments it produced.
func (li *learnedIndex) train(tvpn int64, lo, hi ftl.LPN, table []flash.PPN) int {
	segs := li.segs[tvpn][:0]
	for r := 0; r < li.stride && len(segs) < maxSegsPerTP; r++ {
		// First member of residue class r at or after lo.
		first := lo + ftl.LPN(r) - lo%ftl.LPN(li.stride)
		if first < lo {
			first += ftl.LPN(li.stride)
		}
		var run segment
		flush := func() {
			if run.count >= minSegRun && len(segs) < maxSegsPerTP {
				segs = append(segs, run)
			}
			run = segment{}
		}
		for lpn := first; lpn < hi; lpn += ftl.LPN(li.stride) {
			ppn := table[lpn]
			if ppn == flash.InvalidPPN {
				flush()
				continue
			}
			if run.count == 0 {
				run = segment{start: lpn, lpnStride: int32(li.stride), count: 1, base: ppn}
				continue
			}
			delta := int64(ppn) - int64(run.predict(lpn-ftl.LPN(li.stride)))
			switch {
			case run.count == 1:
				run.ppnDelta = delta
				run.count = 2
			case delta == run.ppnDelta:
				run.count++
			default:
				flush()
				run = segment{start: lpn, lpnStride: int32(li.stride), count: 1, base: ppn}
			}
		}
		flush()
	}
	li.segs[tvpn] = segs
	return len(segs)
}

// predict returns the learned PPN for lpn, if a segment of tvpn covers it.
func (li *learnedIndex) predict(tvpn int64, lpn ftl.LPN) (flash.PPN, bool) {
	for _, s := range li.segs[tvpn] {
		if s.covers(lpn) {
			return s.predict(lpn), true
		}
	}
	return flash.InvalidPPN, false
}

// invalidate drops any segment of tvpn covering lpn: the mapping changed
// under it (host overwrite or GC relocation). In-place filter, no allocation.
func (li *learnedIndex) invalidate(tvpn int64, lpn ftl.LPN) {
	segs := li.segs[tvpn]
	kept := segs[:0]
	for _, s := range segs {
		if !s.covers(lpn) {
			kept = append(kept, s)
		}
	}
	li.segs[tvpn] = kept
}

// reset drops every segment; recovery uses it (SRAM is lost at power-off)
// and the index retrains lazily as write-backs resume.
func (li *learnedIndex) reset() {
	for i := range li.segs {
		li.segs[i] = nil
	}
}

// segments reports the live segment count (tests and telemetry).
func (li *learnedIndex) segments() int {
	n := 0
	for _, s := range li.segs {
		n += len(s)
	}
	return n
}

// learnedState is a deep copy of the index for checkpoint/fork.
type learnedState struct {
	segs [][]segment
}

func (li *learnedIndex) snapshot() learnedState {
	if li == nil {
		return learnedState{}
	}
	s := learnedState{segs: make([][]segment, len(li.segs))}
	for i, v := range li.segs {
		if len(v) > 0 {
			s.segs[i] = append([]segment(nil), v...)
		}
	}
	return s
}

func (li *learnedIndex) restore(s learnedState) {
	if li == nil {
		return
	}
	if len(s.segs) != len(li.segs) {
		// Snapshot from an engine without a learned index: start cold.
		li.reset()
		return
	}
	for i := range li.segs {
		li.segs[i] = append(li.segs[i][:0], s.segs[i]...)
	}
}
