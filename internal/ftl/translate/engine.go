package translate

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Stats counts the address-translation overhead of a demand-paged mapping
// table.
type Stats struct {
	Evictions      int64 // cache evictions
	DirtyEvictions int64 // evictions that forced a translation-page write-back
	TransReads     int64 // translation-page reads (fetch + read-modify-write)
	TransWrites    int64 // translation-page programs
	BatchCleaned   int64 // dirty mappings persisted by batched write-backs
	LazyRedirects  int64 // GC redirects of uncached mappings absorbed lazily (OOB-backed)
	LearnedHits    int64 // correct learned predictions: translation read skipped
	LearnedFalse   int64 // learned mispredictions refuted by the OOB tag
}

// Config assembles a translation engine for one page-mapping FTL.
type Config struct {
	// Dev is the flash device translation traffic is charged against.
	Dev *flash.Device
	// Placer supplies destination pages for translation-page programs (the
	// owning scheme: DLOOP stripes by plane, DFTL appends to a global write
	// point).
	Placer ftl.Placer
	// Tracker receives invalidation bookkeeping for superseded translation
	// pages.
	Tracker *ftl.Tracker
	// Capacity is the exported logical-page count.
	Capacity ftl.LPN
	// CMTEntries sizes the SRAM mapping cache.
	CMTEntries int
	// Policy selects the translation policy (default PolicySLRU).
	Policy Policy
	// StrideHint is the scheme's striping period — the LPN distance between
	// logical pages placed on the same plane (DLOOP: #planes, DFTL: 1; 0 is
	// treated as 1). The learned index trains one residue class at a time so
	// its segments follow the placement rule.
	StrideHint int
}

// Engine implements the demand-paged page-level mapping shared by DLOOP and
// DFTL (§II.A, §III.D): the full table lives in flash as translation pages,
// located through the in-SRAM GTD; hot entries are cached in the Cache (the
// CMT). The learned policy additionally predicts PPNs for regularly-placed
// ranges so verified predictions skip the translation read (see learned.go).
//
// Table is authoritative for simulation correctness; the cache/GTD machinery
// exists to charge the flash traffic that a real controller's SRAM miss
// would cost.
type Engine struct {
	dev    *flash.Device
	placer ftl.Placer

	Table []flash.PPN // lpn -> current ppn, InvalidPPN if never written
	Cache *Cache
	GTD   []flash.PPN // tvpn -> ppn of its translation page, InvalidPPN if never persisted

	entriesPerTP int
	tracker      *ftl.Tracker // invalidation bookkeeping for superseded translation pages
	policy       Policy
	li           *learnedIndex // non-nil only under PolicyLearned

	stats Stats
	rec   obs.Recorder // nil when observability is disabled
}

// NewEngine builds a translation engine. Translation pages pack PageSize/8
// entries (8 bytes per mapping entry, the figure DFTL uses).
func NewEngine(cfg Config) (*Engine, error) {
	per := cfg.Dev.Geometry().PageSize / 8
	if per < 1 {
		return nil, fmt.Errorf("translate: page size %d too small for translation entries", cfg.Dev.Geometry().PageSize)
	}
	nTP := (int64(cfg.Capacity) + int64(per) - 1) / int64(per)
	cache, err := NewCacheForSpace(cfg.CMTEntries, per, cfg.Capacity, int(nTP), cfg.Policy == PolicyLRU)
	if err != nil {
		return nil, err
	}
	m := &Engine{
		dev:          cfg.Dev,
		placer:       cfg.Placer,
		Table:        make([]flash.PPN, cfg.Capacity),
		Cache:        cache,
		GTD:          make([]flash.PPN, nTP),
		entriesPerTP: per,
		tracker:      cfg.Tracker,
		policy:       cfg.Policy,
	}
	if cfg.Policy == PolicyLearned {
		m.li = newLearnedIndex(int(nTP), cfg.StrideHint)
	}
	for i := range m.Table {
		m.Table[i] = flash.InvalidPPN
	}
	for i := range m.GTD {
		m.GTD[i] = flash.InvalidPPN
	}
	return m, nil
}

// Stats returns the accumulated translation overhead counters.
func (m *Engine) Stats() Stats { return m.stats }

// Policy reports the translation policy in effect.
func (m *Engine) Policy() Policy { return m.policy }

// SetRecorder attaches (or, with nil, detaches) an observability recorder
// for cache hit/miss/evict/write-back and translation-traffic events.
func (m *Engine) SetRecorder(r obs.Recorder) { m.rec = r }

// EntriesPerTP returns how many mapping entries one translation page holds.
func (m *Engine) EntriesPerTP() int { return m.entriesPerTP }

// TVPN returns the translation-page number covering lpn.
func (m *Engine) TVPN(lpn ftl.LPN) int64 { return int64(lpn) / int64(m.entriesPerTP) }

// TranslationPages returns the number of translation pages in the GTD.
func (m *Engine) TranslationPages() int { return len(m.GTD) }

// LearnedSegments reports the live learned-segment count (0 unless the
// learned policy is active). Tests and telemetry use it.
func (m *Engine) LearnedSegments() int {
	if m.li == nil {
		return 0
	}
	return m.li.segments()
}

// Resolve ensures lpn's mapping is present in the cache, charging any
// translation-page traffic a miss incurs (dirty-victim write-back, then
// fetch). Under the learned policy a correct, OOB-verified prediction makes
// the fetch free. It returns the time address translation completes.
func (m *Engine) Resolve(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if _, ok := m.Cache.Get(lpn); ok {
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvCMTHit, ready)
		}
		return ready, nil
	}
	if m.rec != nil {
		m.rec.RecordEvent(obs.EvCMTMiss, ready)
	}
	t := ready
	victim, evicted := m.Cache.Insert(lpn, m.Table[lpn], false)
	if evicted {
		m.stats.Evictions++
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvCMTEvict, t)
		}
		if victim.Dirty {
			m.stats.DirtyEvictions++
			var err error
			t, err = m.writeBack(victim.LPN, t)
			if err != nil {
				return 0, err
			}
			if m.rec != nil {
				m.rec.RecordEvent(obs.EvCMTWriteback, t)
			}
		}
	}
	// Fetch the mapping from its translation page, if one has ever been
	// persisted; a never-written region costs nothing.
	tvpn := m.TVPN(lpn)
	if tp := m.GTD[tvpn]; tp != flash.InvalidPPN {
		if m.li != nil {
			var skip bool
			var err error
			skip, t, err = m.tryLearned(tvpn, lpn, t)
			if err != nil {
				return 0, err
			}
			if skip {
				return t, nil
			}
		}
		end, err := m.dev.ReadPage(tp, t, flash.CauseMap)
		if err != nil {
			return 0, err
		}
		m.stats.TransReads++
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvTransRead, end)
		}
		t = end
	}
	return t, nil
}

// tryLearned consults the learned index for a missed mapping. A prediction
// matching the authoritative table is what a real controller observes when
// the predicted page's OOB tag names the wanted LPN: the mapping is
// confirmed without touching the translation page, so the fetch is skipped.
// A refuted prediction charges the wasted verification read (when the
// predicted page is physically readable) and falls back to the normal fetch,
// dropping the stale segment.
func (m *Engine) tryLearned(tvpn int64, lpn ftl.LPN, t sim.Time) (skip bool, _ sim.Time, _ error) {
	pred, ok := m.li.predict(tvpn, lpn)
	if !ok {
		return false, t, nil
	}
	if pred == m.Table[lpn] {
		m.stats.LearnedHits++
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvLearnedHit, t)
		}
		return true, t, nil
	}
	m.stats.LearnedFalse++
	m.li.invalidate(tvpn, lpn)
	if pred >= 0 && int64(pred) < m.dev.Geometry().TotalPages() && m.dev.PageState(pred) == flash.PageValid {
		end, err := m.dev.ReadPage(pred, t, flash.CauseMap)
		if err != nil {
			return false, 0, err
		}
		t = end
	}
	return false, t, nil
}

// writeBack performs the read-modify-write of the translation page covering
// lpn (§III.D lines 7-9: consult the GTD, read, update, re-write to a new
// physical location, update the GTD). The rewrite persists the current
// authoritative table, so it also absorbs any lazy GC redirects and batched
// dirty mappings covering the same page. Under the learned policy the
// persisted span is also the training set: the page's segments refit here.
func (m *Engine) writeBack(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	tvpn := m.TVPN(lpn)
	t := ready
	old := m.GTD[tvpn]
	if old != flash.InvalidPPN {
		end, err := m.dev.ReadPage(old, t, flash.CauseMap)
		if err != nil {
			return 0, err
		}
		m.stats.TransReads++
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvTransRead, end)
		}
		t = end
	}
	ppn, t, err := m.placer.PlacePage(ftl.EncodeTrans(tvpn), t)
	if err != nil {
		return 0, err
	}
	// Placement may have garbage-collected the plane and relocated (or
	// erased the block of) the very translation page we are superseding;
	// re-read its location before invalidating.
	old = m.GTD[tvpn]
	end, err := m.dev.WritePage(ppn, ftl.EncodeTrans(tvpn), t, flash.CauseMap)
	if err != nil {
		return 0, err
	}
	m.stats.TransWrites++
	if m.rec != nil {
		m.rec.RecordEvent(obs.EvTransWrite, end)
	}
	if old != flash.InvalidPPN {
		if err := m.dev.Invalidate(old); err != nil {
			return 0, err
		}
		m.tracker.Invalidated(m.dev.Geometry().BlockOf(old))
	}
	m.GTD[tvpn] = ppn
	// DFTL's batch update: the rewrite persisted every cached dirty mapping
	// of this translation page, so clean them all.
	m.stats.BatchCleaned += int64(m.Cache.CleanPage(tvpn))
	if m.li != nil {
		lo := ftl.LPN(tvpn) * ftl.LPN(m.entriesPerTP)
		hi := lo + ftl.LPN(m.entriesPerTP)
		if hi > ftl.LPN(len(m.Table)) {
			hi = ftl.LPN(len(m.Table))
		}
		m.li.train(tvpn, lo, hi, m.Table)
	}
	return end, nil
}

// RecordWrite commits a host write: the table points at newPPN and the cache
// entry (present after Resolve) becomes dirty. The superseded page, if any,
// is invalidated. It returns the old physical page or InvalidPPN.
func (m *Engine) RecordWrite(lpn ftl.LPN, newPPN flash.PPN) (flash.PPN, error) {
	old := m.Table[lpn]
	m.Table[lpn] = newPPN
	if !m.Cache.Update(lpn, newPPN, true) {
		return flash.InvalidPPN, fmt.Errorf("translate: RecordWrite of unresolved lpn %d", lpn)
	}
	if m.li != nil {
		// A random overwrite breaks the progression its segment learned;
		// drop it rather than letting it mispredict until retraining.
		m.li.invalidate(m.TVPN(lpn), lpn)
	}
	if old != flash.InvalidPPN {
		if err := m.dev.Invalidate(old); err != nil {
			return flash.InvalidPPN, err
		}
		m.tracker.Invalidated(m.dev.Geometry().BlockOf(old))
	}
	return old, nil
}

// RedirectMoved updates mappings after garbage collection relocated pages.
// Relocated translation pages repoint the GTD; data pages whose mapping is
// cached are updated in the cache (dirty, flushed at eviction). Uncached
// data pages update only the in-SRAM table: their on-flash translation page
// goes stale until its next write-back rewrites it wholesale. This is the
// lazy, OOB-backed scheme real controllers use — every physical page carries
// its logical number in the spare area (the device model stores it), so a
// stale translation entry is recoverable and need not be rewritten per move.
// Rewriting translation pages per GC move instead creates a feedback loop
// with gain above one (each move spawns a translation write, which consumes
// a page, which forces more GC) that collapses every configuration under
// sustained collection.
func (m *Engine) RedirectMoved(moved []ftl.Moved, ready sim.Time) (sim.Time, error) {
	for _, mv := range moved {
		if ftl.IsTrans(mv.Stored) {
			m.GTD[ftl.DecodeTrans(mv.Stored)] = mv.New
			continue
		}
		lpn := ftl.LPN(mv.Stored)
		m.Table[lpn] = mv.New
		if m.li != nil {
			// The relocation moved the page off its learned progression.
			m.li.invalidate(m.TVPN(lpn), lpn)
		}
		if !m.Cache.Update(lpn, mv.New, true) {
			m.stats.LazyRedirects++
		}
	}
	return ready, nil
}

// State is a deep copy of an engine's mutable state, for checkpoint/fork.
// The placer and tracker pointers are construction-time wiring, not state,
// and survive a restore untouched.
type State struct {
	table   []flash.PPN
	cache   CacheState
	gtd     []flash.PPN
	learned learnedState
	stats   Stats
}

// Snapshot captures the mapping table, cache, GTD, learned segments, and
// counters.
func (m *Engine) Snapshot() State {
	return State{
		table:   append([]flash.PPN(nil), m.Table...),
		cache:   m.Cache.Snapshot(),
		gtd:     append([]flash.PPN(nil), m.GTD...),
		learned: m.li.snapshot(),
		stats:   m.stats,
	}
}

// Restore rewinds the engine to a snapshot of the same shape.
func (m *Engine) Restore(s State) {
	copy(m.Table, s.table)
	m.Cache.Restore(s.cache)
	copy(m.GTD, s.gtd)
	m.li.restore(s.learned)
	m.stats = s.stats
}

// Retarget repoints the engine's placer and invalidation tracker; recovery
// uses it after rebuilding those structures from an OOB scan.
func (m *Engine) Retarget(placer ftl.Placer, tracker *ftl.Tracker) {
	m.placer = placer
	m.tracker = tracker
}

// AdoptState installs a recovered table and GTD into the engine (the cache
// starts cold, as SRAM is lost at power-off). Learned segments are dropped
// too — they retrain lazily as translation-page write-backs resume.
func (m *Engine) AdoptState(table, gtd []flash.PPN) error {
	if len(table) != len(m.Table) || len(gtd) != len(m.GTD) {
		return fmt.Errorf("translate: recovered state shape %d/%d does not match engine %d/%d",
			len(table), len(gtd), len(m.Table), len(m.GTD))
	}
	copy(m.Table, table)
	copy(m.GTD, gtd)
	if m.li != nil {
		m.li.reset()
	}
	return nil
}
