package translate

import (
	"sort"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// EncodeState appends an engine State to w: mapping table, CMT, GTD,
// learned segments, and counters. The CMT slab goes out entry-by-entry in
// slab order, so handles (slab indices) survive the round-trip and a
// restored cache is bit-identical to the snapshotted one, free list and
// recency links included.
func EncodeState(w *ckpt.Writer, s State) {
	encodePPNs(w, s.table)
	encodeCacheState(w, s.cache)
	encodePPNs(w, s.gtd)
	w.U32(uint32(len(s.learned.segs)))
	for _, segs := range s.learned.segs {
		w.U32(uint32(len(segs)))
		for _, sg := range segs {
			w.I64(int64(sg.start))
			w.I32(sg.lpnStride)
			w.I32(sg.count)
			w.I64(int64(sg.base))
			w.I64(sg.ppnDelta)
		}
	}
	w.I64(s.stats.Evictions)
	w.I64(s.stats.DirtyEvictions)
	w.I64(s.stats.TransReads)
	w.I64(s.stats.TransWrites)
	w.I64(s.stats.BatchCleaned)
	w.I64(s.stats.LazyRedirects)
	w.I64(s.stats.LearnedHits)
	w.I64(s.stats.LearnedFalse)
}

// DecodeState reads a State written by EncodeState.
func DecodeState(r *ckpt.Reader) State {
	s := State{
		table: decodePPNs(r),
		cache: decodeCacheState(r),
		gtd:   decodePPNs(r),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return State{}
	}
	if n > 0 {
		s.learned.segs = make([][]segment, n)
		for i := range s.learned.segs {
			cnt := int(r.U32())
			if r.Err() != nil {
				return State{}
			}
			if cnt == 0 {
				continue
			}
			segs := make([]segment, cnt)
			for j := range segs {
				segs[j] = segment{
					start:     ftl.LPN(r.I64()),
					lpnStride: r.I32(),
					count:     r.I32(),
					base:      flash.PPN(r.I64()),
					ppnDelta:  r.I64(),
				}
			}
			s.learned.segs[i] = segs
		}
	}
	s.stats = Stats{
		Evictions:      r.I64(),
		DirtyEvictions: r.I64(),
		TransReads:     r.I64(),
		TransWrites:    r.I64(),
		BatchCleaned:   r.I64(),
		LazyRedirects:  r.I64(),
		LearnedHits:    r.I64(),
		LearnedFalse:   r.I64(),
	}
	return s
}

func encodePPNs(w *ckpt.Writer, s []flash.PPN) {
	w.U32(uint32(len(s)))
	dst := w.Raw(8 * len(s))
	for i, v := range s {
		u := uint64(v)
		dst[8*i] = byte(u)
		dst[8*i+1] = byte(u >> 8)
		dst[8*i+2] = byte(u >> 16)
		dst[8*i+3] = byte(u >> 24)
		dst[8*i+4] = byte(u >> 32)
		dst[8*i+5] = byte(u >> 40)
		dst[8*i+6] = byte(u >> 48)
		dst[8*i+7] = byte(u >> 56)
	}
}

func decodePPNs(r *ckpt.Reader) []flash.PPN {
	n := int(r.U32())
	if r.Err() != nil || n == 0 {
		return nil
	}
	raw := r.Raw(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]flash.PPN, n)
	for i := range out {
		out[i] = flash.PPN(uint64(raw[8*i]) | uint64(raw[8*i+1])<<8 |
			uint64(raw[8*i+2])<<16 | uint64(raw[8*i+3])<<24 |
			uint64(raw[8*i+4])<<32 | uint64(raw[8*i+5])<<40 |
			uint64(raw[8*i+6])<<48 | uint64(raw[8*i+7])<<56)
	}
	return out
}

// cache entry flag bits.
const (
	entryDirty     = 1 << 0
	entryProtected = 1 << 1
)

func encodeCacheState(w *ckpt.Writer, s CacheState) {
	w.Int(s.n)
	w.U32(uint32(len(s.slab)))
	for _, e := range s.slab {
		w.I64(int64(e.lpn))
		w.I64(int64(e.ppn))
		var flags uint8
		if e.dirty {
			flags |= entryDirty
		}
		if e.protected {
			flags |= entryProtected
		}
		w.U8(flags)
		w.I32(e.prev)
		w.I32(e.next)
		w.I32(e.dPrev)
		w.I32(e.dNext)
	}
	w.I32(s.freeHead)
	// Exactly one of the two lookup indexes is live (see Cache). The map
	// variant is encoded sorted by LPN so equal caches encode identically.
	w.Bool(s.dense != nil)
	if s.dense != nil {
		w.I32s(s.dense)
	} else {
		keys := make([]ftl.LPN, 0, len(s.index))
		for k := range s.index {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			w.I64(int64(k))
			w.I32(s.index[k])
		}
	}
	encodeList(w, s.probation)
	encodeList(w, s.protected)
	w.I32s(s.tpHead)
	w.I32s(s.tpCount)
	w.I64(s.hits)
	w.I64(s.misses)
}

func decodeCacheState(r *ckpt.Reader) CacheState {
	s := CacheState{n: r.Int()}
	ns := int(r.U32())
	if r.Err() != nil {
		return CacheState{}
	}
	s.slab = make([]entry, ns)
	for i := range s.slab {
		e := &s.slab[i]
		e.lpn = ftl.LPN(r.I64())
		e.ppn = flash.PPN(r.I64())
		flags := r.U8()
		e.dirty = flags&entryDirty != 0
		e.protected = flags&entryProtected != 0
		e.prev = r.I32()
		e.next = r.I32()
		e.dPrev = r.I32()
		e.dNext = r.I32()
	}
	s.freeHead = r.I32()
	if r.Bool() {
		s.dense = r.I32s()
	} else {
		nk := int(r.U32())
		if r.Err() != nil {
			return CacheState{}
		}
		s.index = make(map[ftl.LPN]int32, nk)
		for i := 0; i < nk; i++ {
			k := ftl.LPN(r.I64())
			s.index[k] = r.I32()
		}
	}
	s.probation = decodeList(r)
	s.protected = decodeList(r)
	s.tpHead = r.I32s()
	s.tpCount = r.I32s()
	s.hits = r.I64()
	s.misses = r.I64()
	return s
}

func encodeList(w *ckpt.Writer, l list) {
	w.I32(l.head)
	w.I32(l.tail)
	w.Int(l.n)
}

func decodeList(r *ckpt.Reader) list {
	return list{head: r.I32(), tail: r.I32(), n: r.Int()}
}
