package fast

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
		PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T, cfg Config) (*FAST, *flash.Device) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExtraPerPlane == 0 {
		cfg.ExtraPerPlane = 4
	}
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestNewValidation(t *testing.T) {
	dev, _ := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if _, err := New(dev, Config{ExtraPerPlane: 0}); err == nil {
		t.Error("zero extra accepted")
	}
	if _, err := New(dev, Config{ExtraPerPlane: 1, LogBlocks: 100}); err == nil {
		t.Error("log exceeding extra accepted")
	}
}

func TestInPlaceFirstWrite(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	// First writes of one logical block land at their in-block offsets of a
	// single data block.
	var at sim.Time
	for off := 0; off < 8; off++ {
		end, err := f.WritePage(ftl.LPN(off), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	db := geo.BlockOf(f.Lookup(0))
	for off := 0; off < 8; off++ {
		ppn := f.Lookup(ftl.LPN(off))
		if geo.BlockOf(ppn) != db || geo.PageOf(ppn) != off {
			t.Fatalf("lpn %d at %v offset %d, want %v offset %d",
				off, geo.BlockOf(ppn), geo.PageOf(ppn), db, off)
		}
	}
	if f.LogBlocksInUse() != 0 {
		t.Fatal("first writes consumed log blocks")
	}
}

func TestUpdateGoesToLog(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	var at sim.Time
	at, err := f.WritePage(3, at) // in-place (offset 3)
	if err != nil {
		t.Fatal(err)
	}
	first := f.Lookup(3)
	at, err = f.WritePage(3, at) // update: RW log (offset != 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := f.Lookup(3)
	if cur == first {
		t.Fatal("update did not relocate")
	}
	if dev.PageState(first) != flash.PageInvalid {
		t.Fatal("old version not invalidated")
	}
	if f.LogBlocksInUse() == 0 {
		t.Fatal("no log block in use after update")
	}
	_ = geo
}

func TestSwitchMergeOnSequentialRewrite(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	var at sim.Time
	// Populate logical block 2 fully.
	for off := 0; off < 8; off++ {
		end, err := f.WritePage(ftl.LPN(2*8+off), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	oldDB := f.dataBlock[2]
	// Rewrite it fully sequentially: offset 0 claims the SW log, the rest
	// append, and completion triggers a switch merge.
	for off := 0; off < 8; off++ {
		end, err := f.WritePage(ftl.LPN(2*8+off), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	st := f.Stats()
	if st.SwitchMerges != 1 {
		t.Fatalf("SwitchMerges = %d, want 1", st.SwitchMerges)
	}
	if st.MergeCopies != 0 {
		t.Fatalf("switch merge copied %d pages, want 0", st.MergeCopies)
	}
	if f.dataBlock[2] == oldDB {
		t.Fatal("data block not switched")
	}
	if f.swLBN != -1 {
		t.Fatal("SW log not released")
	}
	// All 8 pages readable from the new data block.
	for off := 0; off < 8; off++ {
		if f.Lookup(ftl.LPN(2*8+off)) == flash.InvalidPPN {
			t.Fatalf("offset %d unmapped after switch merge", off)
		}
	}
	_ = dev
}

func TestPartialMergeOnInterruptedStream(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	var at sim.Time
	// Populate logical blocks 1 and 2.
	for _, lbn := range []int64{1, 2} {
		for off := 0; off < 8; off++ {
			end, err := f.WritePage(ftl.LPN(lbn*8+int64(off)), at)
			if err != nil {
				t.Fatal(err)
			}
			at = end
		}
	}
	// Start a sequential rewrite of block 1 (offsets 0..3)...
	for off := 0; off < 4; off++ {
		end, err := f.WritePage(ftl.LPN(1*8+int64(off)), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// ...then start a new stream at block 2 offset 0: block 1's SW log must
	// partial-merge (copy offsets 4..7 from the data block).
	if _, err := f.WritePage(ftl.LPN(2*8), at); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.PartialMerges != 1 {
		t.Fatalf("PartialMerges = %d, want 1", st.PartialMerges)
	}
	if st.MergeCopies != 4 {
		t.Fatalf("MergeCopies = %d, want 4", st.MergeCopies)
	}
	// Every page of block 1 still readable.
	for off := 0; off < 8; off++ {
		if f.Lookup(ftl.LPN(1*8+int64(off))) == flash.InvalidPPN {
			t.Fatalf("offset %d unmapped after partial merge", off)
		}
	}
}

func TestFullMergeWhenLogExhausted(t *testing.T) {
	f, dev := newTestFTL(t, Config{LogBlocks: 4})
	var at sim.Time
	// Populate a spread of logical blocks.
	for lpn := ftl.LPN(0); lpn < 96; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// Random-ish non-zero-offset updates fill the RW log and force full
	// merges.
	for i := 0; i < 400; i++ {
		lpn := ftl.LPN((i*7)%96 | 1) // avoid offset 0
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	st := f.Stats()
	if st.FullMerges == 0 {
		t.Fatal("no full merges despite exhausted log")
	}
	if st.MergeCopies == 0 {
		t.Fatal("full merges copied nothing")
	}
	if f.LogBlocksInUse() > 4 {
		t.Fatalf("log over budget: %d", f.LogBlocksInUse())
	}
	// Device must never see copy-backs from FAST.
	if dev.Stats().CopyBacks() != 0 {
		t.Fatal("FAST used copy-back")
	}
	// All mappings still consistent.
	for lpn := ftl.LPN(0); lpn < 96; lpn++ {
		ppn := f.Lookup(lpn)
		if ppn == flash.InvalidPPN {
			t.Fatalf("lpn %d lost", lpn)
		}
		if dev.PageLPN(ppn) != int64(lpn) || dev.PageState(ppn) != flash.PageValid {
			t.Fatalf("lpn %d maps to wrong page", lpn)
		}
	}
}

func TestReadPaths(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	// Unwritten: free.
	if end, err := f.ReadPage(50, 10); err != nil || end != 10 {
		t.Fatalf("unwritten read: %v %v", end, err)
	}
	at, err := f.WritePage(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Data-block read.
	end, err := f.ReadPage(50, at)
	if err != nil || end <= at {
		t.Fatalf("data read: %v %v", end, err)
	}
	// Log read after update.
	at, err = f.WritePage(50, end)
	if err != nil {
		t.Fatal(err)
	}
	if f.logMap[50] == flash.InvalidPPN {
		t.Fatal("update not in log map")
	}
	if _, err := f.ReadPage(50, at); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsChecking(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	if _, err := f.ReadPage(f.Capacity(), 0); err == nil {
		t.Error("read beyond capacity accepted")
	}
	if _, err := f.WritePage(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
}

func TestCapacityMatchesOtherFTLs(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	if got, want := f.Capacity(), ftl.ExportedPages(dev.Geometry(), 4); got != want {
		t.Fatalf("Capacity = %d, want %d", got, want)
	}
}

func TestDisturbedStreamConsolidates(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	var at sim.Time
	// Populate logical blocks 1 and 2 (block 2 must exist so its offset-0
	// update below goes through the log path and displaces the SW log).
	for _, lbn := range []int64{1, 2} {
		for off := 0; off < 8; off++ {
			end, err := f.WritePage(ftl.LPN(lbn*8+int64(off)), at)
			if err != nil {
				t.Fatal(err)
			}
			at = end
		}
	}
	// Start a sequential rewrite (offsets 0..2) ...
	for off := 0; off < 3; off++ {
		end, err := f.WritePage(ftl.LPN(1*8+int64(off)), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// ... then disturb it: rewrite offset 1 (random update -> RW log, which
	// invalidates the SW copy, so the SW log is no longer a clean prefix).
	at, err := f.WritePage(ftl.LPN(1*8+1), at)
	if err != nil {
		t.Fatal(err)
	}
	// A new stream start forces mergeSW down the consolidation path.
	if _, err := f.WritePage(ftl.LPN(2*8), at); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.FullMerges == 0 {
		t.Fatalf("disturbed SW log should consolidate (full merge), got %+v", st)
	}
	// All of block 1 still readable.
	for off := 0; off < 8; off++ {
		if f.Lookup(ftl.LPN(1*8+int64(off))) == flash.InvalidPPN {
			t.Fatalf("offset %d unmapped after consolidation", off)
		}
	}
}

func TestSWLogFullySupersededIsJustErased(t *testing.T) {
	f, dev := newTestFTL(t, Config{LogBlocks: 6})
	var at sim.Time
	// Populate logical block 1, start its SW stream (offsets 0..1).
	for off := 0; off < 8; off++ {
		end, err := f.WritePage(ftl.LPN(1*8+int64(off)), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	for off := 0; off < 2; off++ {
		end, err := f.WritePage(ftl.LPN(1*8+int64(off)), at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// Supersede both SW pages via RW-log updates (non-sequential offsets
	// first so they land in the RW log, then offsets 1 and... offset 0 would
	// claim the SW log; use a full merge trigger instead).
	// Rewrite offset 1 (RW) then offset 0 is unavailable without restarting
	// the stream, so: disturb via offset 1, then supersede offset 0 through
	// a consolidation triggered by filling the RW log for this block.
	at, err := f.WritePage(ftl.LPN(1*8+1), at) // supersedes SW copy of off 1
	if err != nil {
		t.Fatal(err)
	}
	// Consolidate lbn 1 directly: its SW block now holds one valid page
	// (off 0) and one invalid page (off 1).
	at, err = f.consolidate(1, at)
	if err != nil {
		t.Fatal(err)
	}
	// The SW block is now fully superseded; mergeSW must take the erase-only
	// path (no copies).
	copiesBefore := f.Stats().MergeCopies
	if _, err := f.mergeSW(at); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().MergeCopies; got != copiesBefore {
		t.Fatalf("erase-only path copied %d pages", got-copiesBefore)
	}
	if f.swLBN != -1 {
		t.Fatal("SW log not released")
	}
	// Everything still readable and consistent.
	for off := 0; off < 8; off++ {
		lpn := ftl.LPN(1*8 + int64(off))
		ppn := f.Lookup(lpn)
		if ppn == flash.InvalidPPN || dev.PageLPN(ppn) != int64(lpn) {
			t.Fatalf("offset %d inconsistent after erase-only merge", off)
		}
	}
}
