package fast

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// state is FAST's checkpoint: block map, log page map, and the SW/RW log
// block machinery.
type state struct {
	pool      ftl.FreeBlocksState
	dataBlock []int64
	logMap    []flash.PPN
	swLBN     int64
	swBlock   flash.PlaneBlock
	swNext    int
	rwActive  bool
	rwBlock   flash.PlaneBlock
	rwNext    int
	rwFull    []flash.PlaneBlock
	engine    gc.State
	stats     Stats
}

// Snapshot implements ftl.Snapshotter.
func (f *FAST) Snapshot() any {
	return &state{
		pool:      f.pool.Snapshot(),
		dataBlock: append([]int64(nil), f.dataBlock...),
		logMap:    append([]flash.PPN(nil), f.logMap...),
		swLBN:     f.swLBN,
		swBlock:   f.swBlock,
		swNext:    f.swNext,
		rwActive:  f.rwActive,
		rwBlock:   f.rwBlock,
		rwNext:    f.rwNext,
		rwFull:    append([]flash.PlaneBlock(nil), f.rwFull...),
		engine:    f.engine.Snapshot(),
		stats:     f.stats,
	}
}

// Restore implements ftl.Snapshotter.
func (f *FAST) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("fast: foreign snapshot %T", snap)
	}
	f.pool.Restore(s.pool)
	copy(f.dataBlock, s.dataBlock)
	copy(f.logMap, s.logMap)
	f.swLBN = s.swLBN
	f.swBlock = s.swBlock
	f.swNext = s.swNext
	f.rwActive = s.rwActive
	f.rwBlock = s.rwBlock
	f.rwNext = s.rwNext
	f.rwFull = append(f.rwFull[:0], s.rwFull...)
	f.engine.Restore(s.engine)
	f.stats = s.stats
	return nil
}
