package fast

import (
	"fmt"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// EncodeState appends a FAST Snapshot (the any returned by Snapshot) to w.
func EncodeState(w *ckpt.Writer, snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("fast: foreign snapshot %T", snap)
	}
	ftl.EncodeFreeBlocksState(w, s.pool)
	w.I64s(s.dataBlock)
	w.U32(uint32(len(s.logMap)))
	for _, p := range s.logMap {
		w.I64(int64(p))
	}
	w.I64(s.swLBN)
	encodePlaneBlock(w, s.swBlock)
	w.Int(s.swNext)
	w.Bool(s.rwActive)
	encodePlaneBlock(w, s.rwBlock)
	w.Int(s.rwNext)
	w.U32(uint32(len(s.rwFull)))
	for _, pb := range s.rwFull {
		encodePlaneBlock(w, pb)
	}
	gc.EncodeState(w, s.engine)
	w.I64(s.stats.SwitchMerges)
	w.I64(s.stats.PartialMerges)
	w.I64(s.stats.FullMerges)
	w.I64(s.stats.MergeCopies)
	return nil
}

// DecodeState reads a snapshot written by EncodeState, in the form
// FAST.Restore accepts.
func DecodeState(r *ckpt.Reader) any {
	s := &state{
		pool:      ftl.DecodeFreeBlocksState(r),
		dataBlock: r.I64s(),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if n > 0 {
		s.logMap = make([]flash.PPN, n)
		for i := range s.logMap {
			s.logMap[i] = flash.PPN(r.I64())
		}
	}
	s.swLBN = r.I64()
	s.swBlock = decodePlaneBlock(r)
	s.swNext = r.Int()
	s.rwActive = r.Bool()
	s.rwBlock = decodePlaneBlock(r)
	s.rwNext = r.Int()
	nf := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if nf > 0 {
		s.rwFull = make([]flash.PlaneBlock, nf)
		for i := range s.rwFull {
			s.rwFull[i] = decodePlaneBlock(r)
		}
	}
	s.engine = gc.DecodeState(r)
	s.stats = Stats{
		SwitchMerges:  r.I64(),
		PartialMerges: r.I64(),
		FullMerges:    r.I64(),
		MergeCopies:   r.I64(),
	}
	return s
}

func encodePlaneBlock(w *ckpt.Writer, pb flash.PlaneBlock) {
	w.Int(pb.Plane)
	w.Int(pb.Block)
}

func decodePlaneBlock(r *ckpt.Reader) flash.PlaneBlock {
	return flash.PlaneBlock{Plane: r.Int(), Block: r.Int()}
}
