// Package fast implements the FAST baseline (Lee et al., TECS'07): a hybrid
// FTL with block-mapped data blocks and a small page-mapped log buffer split
// into one sequential-write (SW) log block and a set of fully-associative
// random-write (RW) log blocks.
//
// The whole block map and log page map fit in SRAM (that is the point of
// hybrid FTLs), so FAST pays no translation-page traffic — its cost is merge
// operations: switch merges (free), partial merges (copy the data block's
// tail into the SW log), and the notoriously expensive full merges that
// consolidate every logical block touched by a victim RW log block. All
// merge copies are external read + write pairs through the serial bus and
// channel; FAST is plane-oblivious and allocates in plane-major order.
package fast

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes FAST.
type Config struct {
	// ExtraPerPlane is the over-provisioning per plane, matching the other
	// FTLs so every scheme exports the same capacity.
	ExtraPerPlane int
	// LogBlocks is the size of the log buffer (1 SW + the rest RW). Default:
	// half the device's extra blocks, minimum 4. More over-provisioning
	// means a larger log and later, cheaper merges — the Fig. 10 trend.
	LogBlocks int
	// GCPolicy selects the RW log-block eviction policy (default "fifo", the
	// original FAST order; see gc.ParsePolicy for the alternatives).
	GCPolicy string
}

// Stats exposes FAST-specific counters.
type Stats struct {
	SwitchMerges  int64
	PartialMerges int64
	FullMerges    int64 // one per logical block consolidated
	MergeCopies   int64 // pages copied by merges (all through the bus)
}

// FAST is the baseline FTL. Not safe for concurrent use.
type FAST struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN
	lbns     int64 // logical blocks exported

	pool      *ftl.FreeBlocks
	dataBlock []int64     // lbn -> dense physical block index, -1 if none
	logMap    []flash.PPN // lpn -> log-resident location, InvalidPPN if none

	swLBN   int64 // logical block owning the SW log, -1 if inactive
	swBlock flash.PlaneBlock
	swNext  int

	rwActive bool
	rwBlock  flash.PlaneBlock
	rwNext   int
	rwFull   []flash.PlaneBlock // filled RW log blocks, oldest first

	engine *gc.Engine // merge moves and log-victim policy picks
	stats  Stats
	rec    obs.Recorder // nil when observability is disabled
}

// New builds a FAST baseline over dev.
func New(dev *flash.Device, cfg Config) (*FAST, error) {
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < 1 || cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("fast: bad ExtraPerPlane %d", cfg.ExtraPerPlane)
	}
	totalExtra := cfg.ExtraPerPlane * geo.Planes()
	if cfg.LogBlocks == 0 {
		cfg.LogBlocks = totalExtra / 2
	}
	if cfg.LogBlocks < 4 {
		cfg.LogBlocks = 4
	}
	if cfg.LogBlocks > totalExtra-2 {
		return nil, fmt.Errorf("fast: LogBlocks %d leaves no merge slack in %d extra blocks",
			cfg.LogBlocks, totalExtra)
	}
	capacity := ftl.ExportedPages(geo, cfg.ExtraPerPlane)
	f := &FAST{
		dev:       dev,
		geo:       geo,
		cfg:       cfg,
		capacity:  capacity,
		lbns:      int64(capacity) / int64(geo.PagesPerBlock),
		pool:      ftl.NewFreeBlocks(geo),
		dataBlock: make([]int64, int64(capacity)/int64(geo.PagesPerBlock)),
		logMap:    make([]flash.PPN, capacity),
		swLBN:     -1,
	}
	for i := range f.dataBlock {
		f.dataBlock[i] = -1
	}
	for i := range f.logMap {
		f.logMap[i] = flash.InvalidPPN
	}
	name := cfg.GCPolicy
	if name == "" {
		name = gc.DefaultLogPolicy
	}
	policy, err := gc.ParsePolicy(name, geo.PagesPerBlock)
	if err != nil {
		return nil, err
	}
	// FAST keeps its own merge loop; the engine supplies the victim policy,
	// the external move primitive, and the unified GC counters.
	f.engine = gc.NewEngine(gc.Config{Dev: dev, Policy: policy})
	return f, nil
}

// Name implements ftl.FTL.
func (f *FAST) Name() string { return "FAST" }

// Capacity implements ftl.FTL.
func (f *FAST) Capacity() ftl.LPN { return f.capacity }

// Stats returns FAST's merge counters.
func (f *FAST) Stats() Stats { return f.stats }

// GCPolicyName reports the log-block eviction policy in effect.
func (f *FAST) GCPolicyName() string { return f.engine.PolicyName() }

// SetRecorder implements ftl.Observable: merge events and spans flow from
// here. FAST keeps its maps in SRAM, so there is no CMT traffic to report.
func (f *FAST) SetRecorder(r obs.Recorder) {
	f.rec = r
	f.engine.SetRecorder(r)
}

// LogBlocksInUse returns how many log blocks currently hold data.
func (f *FAST) LogBlocksInUse() int {
	n := len(f.rwFull)
	if f.rwActive {
		n++
	}
	if f.swLBN >= 0 {
		n++
	}
	return n
}

func (f *FAST) split(lpn ftl.LPN) (lbn int64, off int) {
	return int64(lpn) / int64(f.geo.PagesPerBlock), int(int64(lpn) % int64(f.geo.PagesPerBlock))
}

func (f *FAST) dataPPN(lbn int64, off int) flash.PPN {
	return flash.PPN(f.dataBlock[lbn]*int64(f.geo.PagesPerBlock) + int64(off))
}

// lookup returns the physical page currently holding lpn, or InvalidPPN.
// Log-resident versions shadow the data block.
func (f *FAST) lookup(lpn ftl.LPN) flash.PPN {
	if ppn := f.logMap[lpn]; ppn != flash.InvalidPPN {
		return ppn
	}
	lbn, off := f.split(lpn)
	if f.dataBlock[lbn] < 0 {
		return flash.InvalidPPN
	}
	if ppn := f.dataPPN(lbn, off); f.dev.PageState(ppn) == flash.PageValid {
		return ppn
	}
	return flash.InvalidPPN
}

// ReadPage implements ftl.FTL. The block map and log map live in SRAM, so
// translation is free; only the flash read is charged.
func (f *FAST) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	ppn := f.lookup(lpn)
	if ppn == flash.InvalidPPN {
		return ready, nil // never written
	}
	return f.dev.ReadPage(ppn, ready, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *FAST) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	lbn, off := f.split(lpn)

	// First write of this logical block: map a data block.
	if f.dataBlock[lbn] < 0 {
		pb, err := f.alloc()
		if err != nil {
			return 0, err
		}
		f.dataBlock[lbn] = f.geo.BlockIndex(pb)
	}
	// In-place program if the data block's slot is still erased.
	if ppn := f.dataPPN(lbn, off); f.dev.PageState(ppn) == flash.PageFree {
		return f.dev.WritePage(ppn, int64(lpn), ready, flash.CauseHost)
	}
	return f.logWrite(lpn, lbn, off, ready)
}

func (f *FAST) logWrite(lpn ftl.LPN, lbn int64, off int, ready sim.Time) (sim.Time, error) {
	t := ready

	switch {
	case f.swLBN == lbn && f.swNext == off:
		// Continue the sequential stream in the SW log.
		old := f.lookup(lpn)
		ppn := f.geo.PPNOf(f.swBlock.Plane, f.swBlock.Block, f.swNext)
		end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
		if err != nil {
			return 0, err
		}
		f.swNext++
		f.logMap[lpn] = ppn
		if err := f.invalidateOld(old); err != nil {
			return 0, err
		}
		if f.swNext == f.geo.PagesPerBlock {
			return f.mergeSW(end) // complete: switch merge
		}
		return end, nil

	case off == 0:
		// A new sequential stream claims the SW log (FAST's heuristic).
		if f.swLBN >= 0 {
			var err error
			t, err = f.mergeSW(t)
			if err != nil {
				return 0, err
			}
		}
		pb, err := f.alloc()
		if err != nil {
			return 0, err
		}
		f.swBlock, f.swLBN, f.swNext = pb, lbn, 0
		// Look up the superseded version only now: the merge above may have
		// relocated it.
		old := f.lookup(lpn)
		ppn := f.geo.PPNOf(pb.Plane, pb.Block, 0)
		end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
		if err != nil {
			return 0, err
		}
		f.swNext = 1
		f.logMap[lpn] = ppn
		return end, f.invalidateOld(old)

	default:
		return f.rwWrite(lpn, t)
	}
}

// rwWrite appends to the fully-associative RW log, running a full merge of
// the oldest RW log block when the log buffer is exhausted.
func (f *FAST) rwWrite(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	t := ready
	if f.rwActive && f.rwNext >= f.geo.PagesPerBlock {
		f.rwFull = append(f.rwFull, f.rwBlock)
		f.rwActive = false
	}
	if !f.rwActive {
		// Respect the log-buffer budget (1 SW + RW blocks).
		for f.LogBlocksInUse() >= f.cfg.LogBlocks {
			var err error
			t, err = f.fullMerge(t)
			if err != nil {
				return 0, err
			}
		}
		pb, err := f.alloc()
		if err != nil {
			return 0, err
		}
		f.rwBlock, f.rwNext, f.rwActive = pb, 0, true
	}
	// Look up the superseded version only after any merge above, which may
	// have relocated it.
	old := f.lookup(lpn)
	ppn := f.geo.PPNOf(f.rwBlock.Plane, f.rwBlock.Block, f.rwNext)
	end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	f.rwNext++
	f.logMap[lpn] = ppn
	return end, f.invalidateOld(old)
}

func (f *FAST) invalidateOld(old flash.PPN) error {
	if old == flash.InvalidPPN {
		return nil
	}
	return f.dev.Invalidate(old)
}

func (f *FAST) alloc() (flash.PlaneBlock, error) {
	pb, ok := f.pool.TakeAny()
	if !ok {
		return flash.PlaneBlock{}, fmt.Errorf("fast: device exhausted (capacity overcommitted)")
	}
	return pb, nil
}

// mergeSW retires the SW log block: a switch merge if it is complete and
// fully valid, a partial merge if it is a clean prefix, otherwise a full
// consolidation of its logical block.
func (f *FAST) mergeSW(ready sim.Time) (sim.Time, error) {
	if f.swLBN < 0 {
		return ready, nil
	}
	lbn := f.swLBN
	b := f.swBlock
	info := f.dev.Block(b)
	t := ready
	var err error

	switch {
	case info.Valid == 0:
		// Every SW page was superseded (e.g. its logical block was already
		// consolidated by a full merge); just reclaim the block. Drop only
		// log entries that still point into it — others are live elsewhere.
		for off := 0; off < f.swNext; off++ {
			lpn := ftl.LPN(lbn*int64(f.geo.PagesPerBlock) + int64(off))
			if ppn := f.logMap[lpn]; ppn != flash.InvalidPPN && f.geo.BlockOf(ppn) == b {
				f.logMap[lpn] = flash.InvalidPPN
			}
		}
		t, err = f.eraseToPool(b, t)
		if err != nil {
			return 0, err
		}

	case f.swNext == f.geo.PagesPerBlock && info.Invalid == 0:
		// Switch merge: the log block becomes the data block.
		t, err = f.retireDataBlock(lbn, t)
		if err != nil {
			return 0, err
		}
		f.adoptAsData(lbn, b)
		f.stats.SwitchMerges++
		if f.rec != nil {
			f.rec.RecordEvent(obs.EvSwitchMerge, t)
		}

	case info.Invalid == 0:
		// Partial merge: copy the tail of the logical block into the SW log,
		// then adopt it as the data block.
		for off := f.swNext; off < f.geo.PagesPerBlock; off++ {
			lpn := ftl.LPN(lbn*int64(f.geo.PagesPerBlock) + int64(off))
			src := f.lookup(lpn)
			if src == flash.InvalidPPN {
				continue
			}
			dst := f.geo.PPNOf(b.Plane, b.Block, off)
			t, err = f.copyPage(src, dst, int64(lpn), t)
			if err != nil {
				return 0, err
			}
			f.logMap[lpn] = flash.InvalidPPN
		}
		t, err = f.retireDataBlock(lbn, t)
		if err != nil {
			return 0, err
		}
		f.adoptAsData(lbn, b)
		f.stats.PartialMerges++
		if f.rec != nil {
			f.rec.RecordEvent(obs.EvPartialMerge, t)
		}

	default:
		// The stream was disturbed by random updates: consolidate into a
		// fresh block like a full merge of a single logical block.
		t, err = f.consolidate(lbn, t)
		if err != nil {
			return 0, err
		}
		// The SW block now holds only invalid pages; reclaim it.
		t, err = f.eraseToPool(b, t)
		if err != nil {
			return 0, err
		}
	}
	f.swLBN = -1
	if f.rec != nil {
		f.rec.RecordSpan(obs.SpanMerge, int32(b.Plane), ready, t)
	}
	return t, nil
}

// adoptAsData makes the (former SW log) block the data block of lbn and
// drops its pages from the log map.
func (f *FAST) adoptAsData(lbn int64, b flash.PlaneBlock) {
	for off := 0; off < f.geo.PagesPerBlock; off++ {
		f.logMap[ftl.LPN(lbn*int64(f.geo.PagesPerBlock)+int64(off))] = flash.InvalidPPN
	}
	f.dataBlock[lbn] = f.geo.BlockIndex(b)
}

// retireDataBlock erases lbn's old data block if it no longer holds valid
// pages worth keeping (its live pages were superseded or copied out).
func (f *FAST) retireDataBlock(lbn int64, ready sim.Time) (sim.Time, error) {
	if f.dataBlock[lbn] < 0 {
		return ready, nil
	}
	pb := flash.PlaneBlock{
		Plane: int(f.dataBlock[lbn] / int64(f.geo.BlocksPerPlane)),
		Block: int(f.dataBlock[lbn] % int64(f.geo.BlocksPerPlane)),
	}
	f.dataBlock[lbn] = -1
	return f.eraseToPool(pb, ready)
}

func (f *FAST) eraseToPool(pb flash.PlaneBlock, ready sim.Time) (sim.Time, error) {
	// Any straggler valid pages must be gone by construction; Erase checks.
	end, err := f.dev.Erase(pb, ready, flash.CauseGC)
	if err != nil {
		return 0, err
	}
	f.pool.Put(pb)
	return end, nil
}

// copyPage is FAST's merge move: an external read + write pair through the
// bus (FAST does not use copy-back), invalidating the source. It runs through
// the GC engine so the unified relocation counters cover merge traffic.
func (f *FAST) copyPage(src, dst flash.PPN, stored int64, ready sim.Time) (sim.Time, error) {
	t, err := f.engine.MoveExternal(src, dst, stored, ready)
	if err != nil {
		return 0, err
	}
	f.stats.MergeCopies++
	return t, nil
}

// consolidate gathers every valid page of lbn (from its data block, the SW
// log, and any RW log block) into a freshly allocated block, which becomes
// the new data block. The old data block is erased.
func (f *FAST) consolidate(lbn int64, ready sim.Time) (sim.Time, error) {
	c, err := f.alloc()
	if err != nil {
		return 0, err
	}
	t := ready
	for off := 0; off < f.geo.PagesPerBlock; off++ {
		lpn := ftl.LPN(lbn*int64(f.geo.PagesPerBlock) + int64(off))
		src := f.lookup(lpn)
		if src == flash.InvalidPPN {
			continue
		}
		dst := f.geo.PPNOf(c.Plane, c.Block, off)
		t, err = f.copyPage(src, dst, int64(lpn), t)
		if err != nil {
			return 0, err
		}
		f.logMap[lpn] = flash.InvalidPPN
	}
	t, err = f.retireDataBlock(lbn, t)
	if err != nil {
		return 0, err
	}
	f.dataBlock[lbn] = f.geo.BlockIndex(c)
	f.stats.FullMerges++
	if f.rec != nil {
		f.rec.RecordEvent(obs.EvFullMerge, t)
	}
	return t, nil
}

// fullMerge evicts a filled RW log block chosen by the victim policy (the
// default fifo picks the oldest, FAST's original order): every logical block
// with a valid page in it is consolidated, after which the victim is erased.
func (f *FAST) fullMerge(ready sim.Time) (sim.Time, error) {
	if len(f.rwFull) == 0 {
		// The budget is consumed by the SW log and the active RW block;
		// retire the SW log to make room.
		return f.mergeSW(ready)
	}
	cands := make([]gc.Candidate, len(f.rwFull))
	for i, pb := range f.rwFull {
		info := f.dev.Block(pb)
		cands[i] = gc.Candidate{
			PB:      pb,
			Valid:   info.Valid,
			Invalid: info.Invalid,
			Age:     int64(len(f.rwFull) - i), // list order: oldest first
			Key:     int64(i),
		}
	}
	pick := gc.PickLogVictim(f.engine.Policy(), cands)
	victim := pick.PB
	i := int(pick.Key)
	f.rwFull = append(f.rwFull[:i], f.rwFull[i+1:]...)
	f.engine.RecordVictim(pick.Valid, ready)

	t := ready
	first := f.geo.FirstPPN(victim)
	seen := make(map[int64]bool)
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		src := first + flash.PPN(p)
		if f.dev.PageState(src) != flash.PageValid {
			continue
		}
		lbn := f.dev.PageLPN(src) / int64(f.geo.PagesPerBlock)
		if seen[lbn] {
			continue
		}
		seen[lbn] = true
		var err error
		t, err = f.consolidate(lbn, t)
		if err != nil {
			return 0, err
		}
	}
	end, err := f.eraseToPool(victim, t)
	if err != nil {
		return 0, err
	}
	if f.rec != nil {
		f.rec.RecordSpan(obs.SpanMerge, int32(victim.Plane), ready, end)
	}
	return end, nil
}

// Lookup returns the current physical page of lpn without charging simulated
// time; tests and consistency checks use it.
func (f *FAST) Lookup(lpn ftl.LPN) flash.PPN {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return flash.InvalidPPN
	}
	return f.lookup(lpn)
}
