package fast

import (
	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// NewRecovered rebuilds a FAST baseline from an existing device's out-of-band
// page tags after a simulated power loss.
//
// FAST keeps block roles (data block, SW log, RW log) in controller SRAM, and
// the OOB tags alone cannot always reproduce them: a sequential log block that
// rewrote a logical block from offset 0 is indistinguishable from that block's
// data block. Recovery therefore rebuilds a *consistent* state rather than the
// exact pre-crash one: any block whose valid pages all sit at their in-place
// offsets for a single logical block may serve as that block's data block; all
// other occupied blocks are adopted as full RW log blocks, their valid pages
// re-entered into the log map. Lookups resolve identically either way because
// the device holds exactly one valid copy per logical page, and an adopted
// data block accepts in-place writes exactly as the original did. Adopted log
// blocks are merged out by the normal full-merge path; if recovery adopts more
// log blocks than the configured budget, the first post-recovery log write
// merges the surplus down.
func NewRecovered(dev *flash.Device, cfg Config) (*FAST, error) {
	f, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	// The scan validates the one-valid-copy-per-lpn invariant and collects
	// the erased blocks into the free pool; block roles are rebuilt below.
	st, err := ftl.ScanOOB(dev, f.capacity, 0)
	if err != nil {
		return nil, err
	}
	f.pool = st.Pool
	geo := f.geo
	ppb := int64(geo.PagesPerBlock)
	for plane := 0; plane < geo.Planes(); plane++ {
		for block := 0; block < geo.BlocksPerPlane; block++ {
			pb := flash.PlaneBlock{Plane: plane, Block: block}
			if f.dev.Block(pb).Written == 0 {
				continue // erased: already in the pool
			}
			first := geo.FirstPPN(pb)
			// Gather the block's valid pages and test the in-place property:
			// every valid page at offset off is tagged lbn*ppb+off for one lbn.
			inPlace := true
			lbn := int64(-1)
			var valid []int // offsets of valid pages
			for p := 0; p < geo.PagesPerBlock; p++ {
				if f.dev.PageState(first+flash.PPN(p)) != flash.PageValid {
					continue
				}
				tag := f.dev.PageLPN(first + flash.PPN(p))
				valid = append(valid, p)
				if tag%ppb != int64(p) || (lbn >= 0 && tag/ppb != lbn) {
					inPlace = false
				}
				if lbn < 0 {
					lbn = tag / ppb
				}
			}
			if inPlace && lbn >= 0 && f.dataBlock[lbn] < 0 {
				f.dataBlock[lbn] = geo.BlockIndex(pb)
				continue
			}
			// Log-resident pages — or a fully-invalid block, which parks here
			// until a full merge erases it back to the pool.
			f.rwFull = append(f.rwFull, pb)
			for _, p := range valid {
				f.logMap[f.dev.PageLPN(first+flash.PPN(p))] = first + flash.PPN(p)
			}
		}
	}
	return f, nil
}
