package dloop

import (
	"fmt"

	"dloop/internal/flash"
)

// Striping selects which hardware unit consecutive logical pages spread
// over first. Every policy is a static permutation of planes, so each LPN
// still lives on one fixed plane — updates stay on their original's plane
// and GC keeps its copy-back property — only the order in which a
// sequential run of LPNs visits planes changes.
//
// §II.C of the paper discusses the priority order of the parallelism
// levels (Hu et al. advocate channel > die > plane > chip; the paper argues
// plane first on cost grounds). The E8 ablation quantifies the difference:
// plane-order striping sends consecutive pages to planes that share chip
// buses, serializing their transfers, while channel-first striping spreads
// consecutive pages over independent channels.
type Striping string

// Striping policies.
const (
	// StripePlane is equation (1) verbatim: plane = LPN mod #planes, in
	// physical plane order (the paper's DLOOP).
	StripePlane Striping = "plane"
	// StripeDie interleaves consecutive LPNs across dies first.
	StripeDie Striping = "die"
	// StripeChip interleaves consecutive LPNs across chips first.
	StripeChip Striping = "chip"
	// StripeChannel interleaves consecutive LPNs across channels first.
	StripeChannel Striping = "channel"
)

// Stripings lists the policies in the paper's §II.C discussion order.
func Stripings() []Striping {
	return []Striping{StripePlane, StripeDie, StripeChip, StripeChannel}
}

// stripePermutation returns perm where perm[i] is the plane serving LPNs
// congruent to i modulo the plane count. Planes are grouped by the chosen
// unit and dealt round-robin across groups, so consecutive indices land on
// distinct units as long as there are units left to visit.
func stripePermutation(geo flash.Geometry, policy Striping) ([]int, error) {
	planes := geo.Planes()
	groupOf := func(plane int) int {
		switch policy {
		case StripePlane:
			return plane // every plane its own group: identity permutation
		case StripeDie:
			return geo.DieOfPlane(plane)
		case StripeChip:
			return geo.ChipOfPlane(plane)
		case StripeChannel:
			return geo.ChannelOfPlane(plane)
		default:
			return -1
		}
	}
	if groupOf(0) < 0 {
		return nil, fmt.Errorf("dloop: unknown striping policy %q", policy)
	}
	groups := make(map[int][]int)
	var order []int
	for p := 0; p < planes; p++ {
		g := groupOf(p)
		if len(groups[g]) == 0 {
			order = append(order, g)
		}
		groups[g] = append(groups[g], p)
	}
	perm := make([]int, 0, planes)
	for round := 0; len(perm) < planes; round++ {
		for _, g := range order {
			if round < len(groups[g]) {
				perm = append(perm, groups[g][round])
			}
		}
	}
	return perm, nil
}
