package dloop

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func TestStripePermutationProperties(t *testing.T) {
	geo := testGeo() // 2ch x 1pkg x 2chip x 1die x 2plane = 8 planes, 4 chips
	for _, policy := range Stripings() {
		perm, err := stripePermutation(geo, policy)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(perm) != geo.Planes() {
			t.Fatalf("%s: perm length %d", policy, len(perm))
		}
		seen := make(map[int]bool)
		for _, p := range perm {
			if p < 0 || p >= geo.Planes() || seen[p] {
				t.Fatalf("%s: not a permutation: %v", policy, perm)
			}
			seen[p] = true
		}
	}
	if _, err := stripePermutation(geo, Striping("bogus")); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestStripePlaneIsIdentity(t *testing.T) {
	perm, err := stripePermutation(testGeo(), StripePlane)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if p != i {
			t.Fatalf("plane striping must be equation (1) verbatim, got perm[%d]=%d", i, p)
		}
	}
}

func TestStripeChannelAlternatesChannels(t *testing.T) {
	geo := testGeo()
	perm, err := stripePermutation(geo, StripeChannel)
	if err != nil {
		t.Fatal(err)
	}
	// With 2 channels, consecutive indices must alternate channels for the
	// first full round.
	for i := 0; i+1 < geo.Channels; i++ {
		a := geo.ChannelOfPlane(perm[i])
		b := geo.ChannelOfPlane(perm[i+1])
		if a == b {
			t.Fatalf("consecutive lpns on same channel: perm=%v", perm)
		}
	}
}

func TestStripeChipSpreadsChips(t *testing.T) {
	geo := testGeo() // 4 chips
	perm, err := stripePermutation(geo, StripeChip)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		seen[geo.ChipOfPlane(perm[i])] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first 4 lpns should visit 4 distinct chips: perm=%v", perm)
	}
}

// TestStripingKeepsUpdateLocality verifies the DLOOP invariant holds under
// every policy: updates stay on their original's plane, so GC remains
// copy-back only.
func TestStripingKeepsUpdateLocality(t *testing.T) {
	for _, policy := range Stripings() {
		f, dev := newTestFTL(t, Config{StripeBy: policy})
		var at sim.Time
		for i := 0; i < 4000; i++ {
			lpn := ftl.LPN(i % 12 * 8)
			if i%8 == 0 {
				lpn = ftl.LPN((12 + i/8%78) * 8)
			}
			end, err := f.WritePage(lpn, at)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			at = end
		}
		if f.Stats().GCRuns == 0 {
			t.Fatalf("%s: GC never ran", policy)
		}
		cb, ext := dev.Stats().GCMoves()
		if cb == 0 {
			t.Fatalf("%s: no copy-backs", policy)
		}
		if ext > cb/5 {
			t.Fatalf("%s: external moves %d not dominated by copy-backs %d", policy, ext, cb)
		}
		geo := dev.Geometry()
		for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn++ {
			ppn := f.Lookup(lpn)
			if ppn == flash.InvalidPPN {
				continue
			}
			if want := f.perm[int64(lpn)%int64(geo.Planes())]; geo.PlaneOf(ppn) != want {
				t.Fatalf("%s: lpn %d on plane %d, want %d", policy, lpn, geo.PlaneOf(ppn), want)
			}
		}
	}
}
