package dloop

import (
	"fmt"

	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
)

// state is DLOOP's checkpoint: a deep copy of everything that changes as
// requests are served. Geometry, config, capacity, and the striping
// permutation are construction-time constants and stay out.
type state struct {
	mapper      translate.State
	pool        ftl.FreeBlocksState
	tracker     ftl.TrackerState
	cur         []writePoint
	engine      gc.State
	planeWrites []int64
	totalWrites int64
}

// Snapshot implements ftl.Snapshotter.
func (f *DLOOP) Snapshot() any {
	return &state{
		mapper:      f.mapper.Snapshot(),
		pool:        f.pool.Snapshot(),
		tracker:     f.tracker.Snapshot(),
		cur:         append([]writePoint(nil), f.cur...),
		engine:      f.engine.Snapshot(),
		planeWrites: append([]int64(nil), f.planeWrites...),
		totalWrites: f.totalWrites,
	}
}

// Restore implements ftl.Snapshotter.
func (f *DLOOP) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("dloop: foreign snapshot %T", snap)
	}
	f.mapper.Restore(s.mapper)
	f.pool.Restore(s.pool)
	f.tracker.Restore(s.tracker)
	copy(f.cur, s.cur)
	f.engine.Restore(s.engine)
	copy(f.planeWrites, s.planeWrites)
	f.totalWrites = s.totalWrites
	return nil
}
