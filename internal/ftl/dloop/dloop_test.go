package dloop

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
		PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T, cfg Config) (*DLOOP, *flash.Device) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExtraPerPlane == 0 {
		cfg.ExtraPerPlane = 4
	}
	if cfg.CMTEntries == 0 {
		cfg.CMTEntries = 32
	}
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestNewValidation(t *testing.T) {
	dev, _ := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if _, err := New(dev, Config{ExtraPerPlane: 2, GCThreshold: 3}); err == nil {
		t.Error("extra <= threshold accepted")
	}
	if _, err := New(dev, Config{ExtraPerPlane: 16}); err == nil {
		t.Error("extra consuming all blocks accepted")
	}
}

func TestCapacityExcludesExtra(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	// 8 planes x (16-4) blocks x 8 pages.
	if got := f.Capacity(); got != 8*12*8 {
		t.Fatalf("Capacity = %d, want %d", got, 8*12*8)
	}
}

func TestEquationOnePlacement(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 64; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		ppn := f.Lookup(lpn)
		if want := int(int64(lpn) % int64(geo.Planes())); geo.PlaneOf(ppn) != want {
			t.Fatalf("lpn %d placed on plane %d, want %d", lpn, geo.PlaneOf(ppn), want)
		}
	}
}

func TestUpdateStaysOnPlane(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	var at sim.Time
	end, err := f.WritePage(10, at)
	if err != nil {
		t.Fatal(err)
	}
	first := f.Lookup(10)
	for i := 0; i < 20; i++ {
		end, err = f.WritePage(10, end)
		if err != nil {
			t.Fatal(err)
		}
	}
	cur := f.Lookup(10)
	if cur == first {
		t.Fatal("update did not relocate the page")
	}
	if geo.PlaneOf(cur) != geo.PlaneOf(first) {
		t.Fatal("update left the original plane")
	}
	if dev.PageState(first) != flash.PageInvalid {
		t.Fatal("original page not invalidated")
	}
}

func TestSequentialWritesStripeAcrossPlanes(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	// 8 sequential page writes at the same ready time land on 8 planes and
	// overlap: completion far below 8x a single write.
	var latest sim.Time
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if end > latest {
			latest = end
		}
	}
	single := dev.Timing().ExternalWrite(dev.Geometry().PageSize)
	if latest >= sim.Time(4*single) {
		t.Fatalf("8 striped writes finished at %v, want < 4x single %v", latest, single)
	}
}

func TestGCUsesCopyBackOnly(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	var at sim.Time
	// Mix hot updates with occasional cold writes on one plane: blocks fill
	// with mostly-hot pages plus a valid cold page, so GC victims still
	// hold valid pages that must be relocated.
	for i := 0; i < 4000; i++ {
		lpn := ftl.LPN((i % 12) * 8) // plane 0 hot set
		if i%8 == 0 {
			lpn = ftl.LPN((12 + i/8%78) * 8) // plane 0 cold rotation
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	cb, ext := dev.Stats().GCMoves()
	if cb == 0 {
		t.Fatal("no copy-backs")
	}
	if ext > cb/5 {
		t.Fatalf("external moves %d not dominated by copy-backs %d", ext, cb)
	}
	if st.GCMoves != cb+ext {
		t.Fatalf("GCMoves %d != device moves %d", st.GCMoves, cb+ext)
	}
}

func TestTranslationPagesStriped(t *testing.T) {
	f, dev := newTestFTL(t, Config{CMTEntries: 4})
	geo := dev.Geometry()
	// Touch many distinct lpns so dirty evictions persist several
	// translation pages; with 256 entries/page and 768 lpns there are 3
	// tvpns, which must land on planes 0, 1, 2.
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn += 8 {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	found := 0
	for tvpn := 0; tvpn < f.mapper.TranslationPages(); tvpn++ {
		ppn := f.mapper.GTD[tvpn]
		if ppn == flash.InvalidPPN {
			continue
		}
		found++
		if want := tvpn % geo.Planes(); geo.PlaneOf(ppn) != want {
			t.Fatalf("tvpn %d on plane %d, want %d", tvpn, geo.PlaneOf(ppn), want)
		}
	}
	if found == 0 {
		t.Fatal("no translation pages persisted")
	}
}

func TestAblationUsesExternalMovesOnly(t *testing.T) {
	f, dev := newTestFTL(t, Config{DisableCopyBack: true})
	var at sim.Time
	for i := 0; i < 4000; i++ {
		lpn := ftl.LPN((i % 12) * 8)
		if i%8 == 0 {
			lpn = ftl.LPN((12 + i/8%78) * 8)
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	cb, ext := dev.Stats().GCMoves()
	if cb != 0 {
		t.Fatalf("ablation used %d copy-backs", cb)
	}
	if ext == 0 {
		t.Fatal("no external moves")
	}
	if f.Stats().ParityWaste != 0 {
		t.Fatal("parity waste without copy-back")
	}
}

func TestReadUnwrittenIsFree(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	end, err := f.ReadPage(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if end != 42 {
		t.Fatalf("unwritten read cost time: %v", end)
	}
}

func TestBoundsChecking(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	if _, err := f.ReadPage(f.Capacity(), 0); err == nil {
		t.Error("read beyond capacity accepted")
	}
	if _, err := f.WritePage(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
	if f.Lookup(f.Capacity()) != flash.InvalidPPN {
		t.Error("Lookup beyond capacity")
	}
}

func TestAdaptiveThreshold(t *testing.T) {
	f, _ := newTestFTL(t, Config{AdaptiveGC: true})
	base := f.cfg.GCThreshold
	// No writes yet: base threshold.
	if got := f.thresholdFor(0); got != base {
		t.Fatalf("cold threshold %d, want %d", got, base)
	}
	// Concentrate writes on plane 0: its threshold rises, capped at 3x.
	f.planeWrites[0] = 1000
	f.totalWrites = 1000
	if got := f.thresholdFor(0); got != 3*base {
		t.Fatalf("hot threshold %d, want %d", got, 3*base)
	}
	if got := f.thresholdFor(1); got != base {
		t.Fatalf("cold plane threshold %d, want %d", got, base)
	}
}

func TestParityWasteOnCraftedVictim(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	geo := dev.Geometry()
	// Build a victim block on plane 0 whose valid pages all have even
	// offsets: write 8 pages (fills block 0 exactly with lpns of plane 0),
	// then update the odd-offset ones so only evens stay valid.
	var at sim.Time
	lpns := make([]ftl.LPN, 8)
	for i := range lpns {
		lpns[i] = ftl.LPN(i * 8) // all plane 0
		end, err := f.WritePage(lpns[i], at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	victim := geo.BlockOf(f.Lookup(lpns[0]))
	for i := 1; i < 8; i += 2 { // invalidate odd offsets of that block
		end, err := f.WritePage(lpns[i], at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if got := dev.Block(victim).Invalid; got != 4 {
		t.Fatalf("victim invalid = %d, want 4", got)
	}
	// Force GC until that block is collected.
	for i := 0; dev.Block(victim).Erases == 0 && i < 5000; i++ {
		end, err := f.WritePage(lpns[(i%4)*2], at) // keep updating evens
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.Stats().ParityWaste == 0 {
		t.Log("no parity waste observed; ordering absorbed all mismatches (acceptable)")
	}
	// Invariant either way: waste never exceeds moves.
	if f.Stats().ParityWaste > f.Stats().GCMoves {
		t.Fatalf("waste %d > moves %d", f.Stats().ParityWaste, f.Stats().GCMoves)
	}
}
