// Package dloop implements the paper's contribution: DLOOP (Data Log On One
// Plane), an optimized page-mapping FTL that exploits plane-level
// parallelism (§III).
//
// Placement follows equation (1): plane(LPN) = LPN mod #planes, for first
// writes and — because the mapping is static — for every subsequent update,
// so a logical page's log always lands on the plane that holds its original.
// Garbage collection can therefore relocate every valid page with an
// intra-plane copy-back that never occupies the chip serial bus or the
// channel, subject to the vendor's same-parity restriction, which DLOOP
// satisfies by deliberately wasting a destination page on parity mismatch.
// Translation pages are striped the same way (tvpn mod #planes), so
// mapping-lookup traffic is spread over all planes instead of piling onto
// plane 0 as DFTL's does.
package dloop

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes DLOOP.
type Config struct {
	// CMTEntries is the SRAM mapping-cache capacity (default 4096).
	CMTEntries int
	// GCThreshold triggers per-plane garbage collection when the plane's
	// free-block pool drops below it (the paper uses 3).
	GCThreshold int
	// ExtraPerPlane is the number of over-provisioned blocks per plane,
	// excluded from the exported capacity (§III.C).
	ExtraPerPlane int
	// DisableCopyBack is the E5 ablation: garbage collection relocates valid
	// pages with external reads and writes through the bus (still within the
	// plane) instead of copy-back commands. The same-parity rule — a
	// restriction of the copy-back command only — then does not apply.
	DisableCopyBack bool
	// AdaptiveGC is the E7 extension (the paper's future work): planes that
	// absorb a larger share of the write traffic keep proportionally more
	// free blocks, collecting earlier to smooth their latency.
	AdaptiveGC bool
	// StripeBy selects the E8 ablation's striping policy (default
	// StripePlane, the paper's equation (1)).
	StripeBy Striping
	// GCPolicy selects the garbage-collection victim policy (default
	// "greedy", the paper's max-invalid pick; see gc.ParsePolicy for the
	// alternatives).
	GCPolicy string
	// TranslatePolicy selects the address-translation policy (default
	// "slru"; see translate.ParsePolicy for the alternatives).
	TranslatePolicy string
}

func (c *Config) setDefaults() {
	if c.CMTEntries == 0 {
		c.CMTEntries = 4096
	}
	if c.GCThreshold == 0 {
		c.GCThreshold = 3
	}
	if c.StripeBy == "" {
		c.StripeBy = StripePlane
	}
}

// Stats exposes DLOOP-specific counters beyond what the device records.
type Stats struct {
	GCRuns      int64 // garbage collections completed
	GCMoves     int64 // valid pages relocated by GC
	ParityWaste int64 // free pages wasted to satisfy the same-parity rule
	MapperStats translate.Stats
}

type writePoint struct {
	pb     flash.PlaneBlock
	next   int
	active bool
}

// DLOOP is the FTL. Not safe for concurrent use.
type DLOOP struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN

	mapper  *translate.Engine
	pool    *ftl.FreeBlocks
	tracker *ftl.Tracker
	cur     []writePoint // per plane
	engine  *gc.Engine   // owns the collect loop and reentrancy guards

	perm []int // striping permutation: LPN mod planes -> plane

	planeWrites []int64 // host write pages per plane, drives AdaptiveGC
	totalWrites int64

	rec obs.Recorder // nil when observability is disabled
}

// New builds a DLOOP FTL over dev.
func New(dev *flash.Device, cfg Config) (*DLOOP, error) {
	cfg.setDefaults()
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < cfg.GCThreshold+1 {
		return nil, fmt.Errorf("dloop: ExtraPerPlane %d must exceed GCThreshold %d",
			cfg.ExtraPerPlane, cfg.GCThreshold)
	}
	if cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("dloop: ExtraPerPlane %d leaves no data blocks", cfg.ExtraPerPlane)
	}
	f := &DLOOP{
		dev:         dev,
		geo:         geo,
		cfg:         cfg,
		capacity:    ftl.ExportedPages(geo, cfg.ExtraPerPlane),
		pool:        ftl.NewFreeBlocks(geo),
		tracker:     ftl.NewTracker(geo),
		cur:         make([]writePoint, geo.Planes()),
		planeWrites: make([]int64, geo.Planes()),
	}
	var err error
	f.perm, err = stripePermutation(geo, cfg.StripeBy)
	if err != nil {
		return nil, err
	}
	tpol, err := translate.ParsePolicy(cfg.TranslatePolicy)
	if err != nil {
		return nil, err
	}
	f.mapper, err = translate.NewEngine(translate.Config{
		Dev: dev, Placer: f, Tracker: f.tracker,
		Capacity: f.capacity, CMTEntries: cfg.CMTEntries, Policy: tpol,
		// Striping puts same-plane logical neighbors #planes apart, so the
		// learned index trains one plane's progression at a time.
		StrideHint: geo.Planes(),
	})
	if err != nil {
		return nil, err
	}
	name := cfg.GCPolicy
	if name == "" {
		name = gc.DefaultPagePolicy
	}
	policy, err := gc.ParsePolicy(name, geo.PagesPerBlock)
	if err != nil {
		return nil, err
	}
	style := gc.MoveCopyBack
	if cfg.DisableCopyBack {
		style = gc.MoveExternalParity
	}
	f.engine = gc.NewEngine(gc.Config{
		Dev:              dev,
		Policy:           policy,
		Tracker:          f.tracker,
		Scheme:           hooks{f},
		PerPlane:         true,
		ProgressGuard:    true,
		Style:            style,
		LowSpaceExternal: true,
	})
	return f, nil
}

// Name implements ftl.FTL.
func (f *DLOOP) Name() string { return "DLOOP" }

// Capacity implements ftl.FTL.
func (f *DLOOP) Capacity() ftl.LPN { return f.capacity }

// Stats returns DLOOP's internal counters, derived from the GC engine and
// the shared mapper.
func (f *DLOOP) Stats() Stats {
	es := f.engine.Stats()
	return Stats{
		GCRuns:      es.Runs,
		GCMoves:     es.Moves,
		ParityWaste: es.ParityWaste,
		MapperStats: f.mapper.Stats(),
	}
}

// GCPolicyName reports the victim-selection policy in effect.
func (f *DLOOP) GCPolicyName() string { return f.engine.PolicyName() }

// TranslatePolicyName reports the address-translation policy in effect.
func (f *DLOOP) TranslatePolicyName() string { return f.mapper.Policy().String() }

// LearnedSegments reports the learned index's live segment count (0 unless
// the learned translation policy is active).
func (f *DLOOP) LearnedSegments() int { return f.mapper.LearnedSegments() }

// CMTHitRate reports the mapping-cache hit rate.
func (f *DLOOP) CMTHitRate() (float64, int64, int64) { return f.mapper.Cache.HitRate() }

// SetRecorder implements ftl.Observable: GC spans and parity-waste events
// flow from here, CMT events from the shared mapper.
func (f *DLOOP) SetRecorder(r obs.Recorder) {
	f.rec = r
	f.mapper.SetRecorder(r)
	f.engine.SetRecorder(r)
}

// planeFor applies equation (1) — through the striping permutation — to
// data pages and the analogous striping to translation pages.
func (f *DLOOP) planeFor(stored int64) int {
	if ftl.IsTrans(stored) {
		return f.perm[ftl.DecodeTrans(stored)%int64(f.geo.Planes())]
	}
	return f.perm[stored%int64(f.geo.Planes())]
}

// ReadPage implements ftl.FTL.
func (f *DLOOP) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t, err := f.mapper.Resolve(lpn, ready)
	if err != nil {
		return 0, err
	}
	ppn := f.mapper.Table[lpn]
	if ppn == flash.InvalidPPN {
		return t, nil // never written: controller answers with zeros
	}
	return f.dev.ReadPage(ppn, t, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *DLOOP) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t, err := f.mapper.Resolve(lpn, ready)
	if err != nil {
		return 0, err
	}
	ppn, t, err := f.PlacePage(int64(lpn), t)
	if err != nil {
		return 0, err
	}
	end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	if _, err := f.mapper.RecordWrite(lpn, ppn); err != nil {
		return 0, err
	}
	f.planeWrites[f.geo.PlaneOf(ppn)]++
	f.totalWrites++
	return end, nil
}

// PlacePage implements ftl.Placer: it stripes the page onto its plane's
// current free block, collecting garbage first if the plane's pool has
// dropped below threshold.
func (f *DLOOP) PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error) {
	plane := f.planeFor(stored)
	t := ready
	// Collections allocate destination pages only on their own plane and
	// never place through this path (GC mapping redirects are lazy), so the
	// engine's idle guard is pure defense against reentry.
	if f.engine.Idle(plane) {
		var err error
		t, err = f.engine.MaybeCollect(plane, t)
		if err != nil {
			return flash.InvalidPPN, 0, err
		}
	}
	ppn, err := f.nextFreePage(plane)
	if err != nil {
		return flash.InvalidPPN, 0, err
	}
	return ppn, t, nil
}

// thresholdFor returns the plane's GC trigger level. With AdaptiveGC, planes
// carrying more than their fair share of writes keep up to 3x the base
// threshold in free blocks.
func (f *DLOOP) thresholdFor(plane int) int {
	base := f.cfg.GCThreshold
	if !f.cfg.AdaptiveGC || f.totalWrites == 0 {
		return base
	}
	share := float64(f.planeWrites[plane]) / float64(f.totalWrites) * float64(f.geo.Planes())
	thr := int(float64(base) * share)
	if thr < base {
		return base
	}
	if max := 3 * base; thr > max {
		return max
	}
	return thr
}

// freePages counts the plane's writable pages: whole free blocks in the
// pool plus the unwritten tail of the current free block.
func (f *DLOOP) freePages(plane int) int {
	n := f.pool.InPlane(plane) * f.geo.PagesPerBlock
	if wp := &f.cur[plane]; wp.active {
		n += f.geo.PagesPerBlock - wp.next
	}
	return n
}

// nextFreePage advances the plane's write point, opening a new free block
// when the current one fills.
func (f *DLOOP) nextFreePage(plane int) (flash.PPN, error) {
	wp := &f.cur[plane]
	if wp.active && wp.next >= f.geo.PagesPerBlock {
		f.tracker.Close(wp.pb)
		wp.active = false
	}
	if !wp.active {
		pb, ok := f.pool.TakeFromPlane(plane)
		if !ok {
			return flash.InvalidPPN, fmt.Errorf("dloop: plane %d exhausted (capacity overcommitted)", plane)
		}
		wp.pb, wp.next, wp.active = pb, 0, true
	}
	ppn := f.geo.PPNOf(plane, wp.pb.Block, wp.next)
	wp.next++
	return ppn, nil
}

// hooks adapts DLOOP's pools, thresholds, and write points to the GC
// engine's Scheme surface. The engine owns the collect loop (victim pick,
// copy-back moves with the parity-waste rule, erase accounting, §III.C);
// DLOOP supplies placement.
type hooks struct{ f *DLOOP }

func (h hooks) PoolLow(plane int) bool {
	return h.f.pool.InPlane(plane) < h.f.thresholdFor(plane)
}

func (h hooks) FreePages(plane int) int { return h.f.freePages(plane) }

func (h hooks) DestParity(plane int) int { return h.f.destParity(plane) }

func (h hooks) NextDest(plane int, stored int64) (flash.PPN, error) {
	return h.f.nextFreePage(plane) // striping already put the victim's pages here
}

func (h hooks) Redirect(moved []ftl.Moved, at sim.Time) (sim.Time, error) {
	return h.f.mapper.RedirectMoved(moved, at)
}

func (h hooks) Release(victim flash.PlaneBlock) { h.f.pool.Put(victim) }

// destParity returns the in-block offset parity of the next page the
// plane's write point will hand out, mirroring nextFreePage's roll-over to a
// fresh block (whose first page is offset 0, even).
func (f *DLOOP) destParity(plane int) int {
	wp := &f.cur[plane]
	if !wp.active || wp.next >= f.geo.PagesPerBlock {
		return 0
	}
	return wp.next % 2
}

// Lookup returns the current physical page of lpn without charging simulated
// time or perturbing the CMT; tests and consistency checks use it.
func (f *DLOOP) Lookup(lpn ftl.LPN) flash.PPN {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return flash.InvalidPPN
	}
	return f.mapper.Table[lpn]
}

// NewRecovered builds a DLOOP FTL from an existing device's state by
// scanning the out-of-band page tags, the way a controller rebuilds its
// mapping after power loss. The CMT starts cold; partially-written blocks
// resume as their planes' write points.
func NewRecovered(dev *flash.Device, cfg Config) (*DLOOP, error) {
	f, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	st, err := ftl.ScanOOB(dev, f.capacity, f.mapper.TranslationPages())
	if err != nil {
		return nil, err
	}
	if err := f.mapper.AdoptState(st.Table, st.GTD); err != nil {
		return nil, err
	}
	f.pool = st.Pool
	f.tracker = st.Tracker
	// The mapper and the GC engine must work through the recovered tracker,
	// not the one New wired up.
	f.mapper.Retarget(f, st.Tracker)
	f.engine.Retarget(st.Tracker)
	for _, p := range st.Partial {
		wp := &f.cur[p.PB.Plane]
		if wp.active {
			return nil, fmt.Errorf("dloop: recovery found two partial blocks on plane %d", p.PB.Plane)
		}
		wp.pb, wp.next, wp.active = p.PB, p.NextWrite, true
	}
	return f, nil
}
