package dloop

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

// TestRecoveryRebuildsMapping simulates a power loss mid-workload: a fresh
// DLOOP instance rebuilt from OOB tags must expose exactly the same mapping
// as the one that crashed, and must keep serving correctly.
func TestRecoveryRebuildsMapping(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	// Run a GC-heavy mix so the crash state includes invalid pages, partial
	// write points, and relocated translation pages.
	var at sim.Time
	for i := 0; i < 4000; i++ {
		lpn := ftl.LPN(i % 12 * 8)
		if i%8 == 0 {
			lpn = ftl.LPN((12 + i/8%78) * 8)
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("workload never collected; crash state too simple")
	}

	// "Power loss": all SRAM state is gone; only the device survives.
	r, err := NewRecovered(dev, Config{ExtraPerPlane: 4, CMTEntries: 32})
	if err != nil {
		t.Fatal(err)
	}

	// The recovered table matches the crashed one exactly.
	for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn++ {
		if got, want := r.Lookup(lpn), f.Lookup(lpn); got != want {
			t.Fatalf("lpn %d: recovered %d, want %d", lpn, got, want)
		}
	}

	// The recovered instance keeps serving: reads hit the right pages and
	// writes (including the GC they trigger) stay consistent.
	at2 := at
	for i := 0; i < 2000; i++ {
		lpn := ftl.LPN(i % 90 * 8)
		end, err := r.WritePage(lpn, at2)
		if err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
		at2 = end
	}
	for lpn := ftl.LPN(0); lpn < r.Capacity(); lpn++ {
		ppn := r.Lookup(lpn)
		if ppn == flash.InvalidPPN {
			continue
		}
		if dev.PageState(ppn) != flash.PageValid || dev.PageLPN(ppn) != int64(lpn) {
			t.Fatalf("post-recovery lpn %d inconsistent", lpn)
		}
	}
}

// TestRecoveryOfEmptyDevice recovers a blank device: everything free.
func TestRecoveryOfEmptyDevice(t *testing.T) {
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecovered(dev, Config{ExtraPerPlane: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WritePage(0, 0); err != nil {
		t.Fatal(err)
	}
	if r.Lookup(0) == flash.InvalidPPN {
		t.Fatal("write after empty recovery not mapped")
	}
}
