package dloop

import (
	"fmt"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/ftl/translate"
)

// EncodeState appends a DLOOP Snapshot (the any returned by Snapshot) to w.
func EncodeState(w *ckpt.Writer, snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("dloop: foreign snapshot %T", snap)
	}
	translate.EncodeState(w, s.mapper)
	ftl.EncodeFreeBlocksState(w, s.pool)
	ftl.EncodeTrackerState(w, s.tracker)
	w.U32(uint32(len(s.cur)))
	for _, wp := range s.cur {
		encodeWritePoint(w, wp)
	}
	gc.EncodeState(w, s.engine)
	w.I64s(s.planeWrites)
	w.I64(s.totalWrites)
	return nil
}

// DecodeState reads a snapshot written by EncodeState, in the form
// DLOOP.Restore accepts.
func DecodeState(r *ckpt.Reader) any {
	s := &state{
		mapper:  translate.DecodeState(r),
		pool:    ftl.DecodeFreeBlocksState(r),
		tracker: ftl.DecodeTrackerState(r),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	s.cur = make([]writePoint, n)
	for i := range s.cur {
		s.cur[i] = decodeWritePoint(r)
	}
	s.engine = gc.DecodeState(r)
	s.planeWrites = r.I64s()
	s.totalWrites = r.I64()
	return s
}

func encodeWritePoint(w *ckpt.Writer, wp writePoint) {
	w.Int(wp.pb.Plane)
	w.Int(wp.pb.Block)
	w.Int(wp.next)
	w.Bool(wp.active)
}

func decodeWritePoint(r *ckpt.Reader) writePoint {
	return writePoint{
		pb:     flash.PlaneBlock{Plane: r.Int(), Block: r.Int()},
		next:   r.Int(),
		active: r.Bool(),
	}
}
