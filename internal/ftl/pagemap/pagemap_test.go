package pagemap

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
		PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T, striped bool) (*PureMap, *flash.Device) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, Config{ExtraPerPlane: 4, Striped: striped})
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestNewValidation(t *testing.T) {
	dev, _ := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if _, err := New(dev, Config{ExtraPerPlane: 2, GCThreshold: 3}); err == nil {
		t.Error("extra <= threshold accepted")
	}
	if _, err := New(dev, Config{ExtraPerPlane: 99}); err == nil {
		t.Error("oversized extra accepted")
	}
}

func TestTranslationIsFree(t *testing.T) {
	for _, striped := range []bool{false, true} {
		f, dev := newTestFTL(t, striped)
		end, err := f.WritePage(10, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A write costs exactly one external program: no translation traffic.
		want := sim.Time(0).Add(dev.Timing().ExternalWrite(dev.Geometry().PageSize))
		if end != want {
			t.Fatalf("striped=%v: write cost %v, want %v", striped, end, want)
		}
		rEnd, err := f.ReadPage(10, end)
		if err != nil {
			t.Fatal(err)
		}
		if got := rEnd.Sub(end); got != dev.Timing().ExternalRead(dev.Geometry().PageSize) {
			t.Fatalf("striped=%v: read cost %v", striped, got)
		}
		// Unwritten read is free.
		if got, err := f.ReadPage(500, end); err != nil || got != end {
			t.Fatalf("unwritten read: %v %v", got, err)
		}
	}
}

func TestStripedPlacementFollowsEquationOne(t *testing.T) {
	f, dev := newTestFTL(t, true)
	geo := dev.Geometry()
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 64; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		if want := int(int64(lpn) % int64(geo.Planes())); geo.PlaneOf(f.Lookup(lpn)) != want {
			t.Fatalf("lpn %d on plane %d, want %d", lpn, geo.PlaneOf(f.Lookup(lpn)), want)
		}
	}
}

func TestUnstripedAppendsPlaneMajor(t *testing.T) {
	f, dev := newTestFTL(t, false)
	geo := dev.Geometry()
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		if geo.PlaneOf(f.Lookup(lpn)) != 0 {
			t.Fatalf("lpn %d not on plane 0", lpn)
		}
	}
}

func gcWorkload(t *testing.T, f *PureMap) {
	t.Helper()
	var at sim.Time
	for i := 0; i < 6000; i++ {
		lpn := ftl.LPN(i % 96)
		if i%8 == 0 {
			lpn = ftl.LPN(96 + i/8%500)
		}
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
}

func TestStripedGCUsesCopyBack(t *testing.T) {
	f, dev := newTestFTL(t, true)
	gcWorkload(t, f)
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	cb, ext := dev.Stats().GCMoves()
	if cb == 0 || ext != 0 {
		t.Fatalf("striped moves cb=%d ext=%d, want all copy-back", cb, ext)
	}
}

func TestUnstripedGCUsesExternalMoves(t *testing.T) {
	f, dev := newTestFTL(t, false)
	gcWorkload(t, f)
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	cb, ext := dev.Stats().GCMoves()
	if ext == 0 || cb != 0 {
		t.Fatalf("unstriped moves cb=%d ext=%d, want all external", cb, ext)
	}
	if f.Stats().ParityWaste != 0 {
		t.Fatal("unstriped mode wasted pages")
	}
}

func TestMappingConsistencyAfterGC(t *testing.T) {
	for _, striped := range []bool{false, true} {
		f, dev := newTestFTL(t, striped)
		gcWorkload(t, f)
		for lpn := ftl.LPN(0); lpn < f.Capacity(); lpn++ {
			ppn := f.Lookup(lpn)
			if ppn == flash.InvalidPPN {
				continue
			}
			if dev.PageState(ppn) != flash.PageValid || dev.PageLPN(ppn) != int64(lpn) {
				t.Fatalf("striped=%v: lpn %d inconsistent", striped, lpn)
			}
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	f, _ := newTestFTL(t, true)
	if _, err := f.WritePage(f.Capacity(), 0); err == nil {
		t.Error("write beyond capacity accepted")
	}
	if _, err := f.ReadPage(-1, 0); err == nil {
		t.Error("negative read accepted")
	}
	if f.Lookup(f.Capacity()) != flash.InvalidPPN {
		t.Error("Lookup beyond capacity")
	}
}
