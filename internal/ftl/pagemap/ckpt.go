package pagemap

import (
	"fmt"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// EncodeState appends a PureMap Snapshot (the any returned by Snapshot) to w.
func EncodeState(w *ckpt.Writer, snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("pagemap: foreign snapshot %T", snap)
	}
	w.U32(uint32(len(s.table)))
	for _, p := range s.table {
		w.I64(int64(p))
	}
	ftl.EncodeFreeBlocksState(w, s.pool)
	ftl.EncodeTrackerState(w, s.tracker)
	w.U32(uint32(len(s.cur)))
	for _, wp := range s.cur {
		w.Int(wp.pb.Plane)
		w.Int(wp.pb.Block)
		w.Int(wp.next)
		w.Bool(wp.active)
	}
	gc.EncodeState(w, s.engine)
	return nil
}

// DecodeState reads a snapshot written by EncodeState, in the form
// PureMap.Restore accepts.
func DecodeState(r *ckpt.Reader) any {
	s := &state{}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if n > 0 {
		s.table = make([]flash.PPN, n)
		for i := range s.table {
			s.table[i] = flash.PPN(r.I64())
		}
	}
	s.pool = ftl.DecodeFreeBlocksState(r)
	s.tracker = ftl.DecodeTrackerState(r)
	nc := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	s.cur = make([]writePoint, nc)
	for i := range s.cur {
		s.cur[i] = writePoint{
			pb:     flash.PlaneBlock{Plane: r.Int(), Block: r.Int()},
			next:   r.Int(),
			active: r.Bool(),
		}
	}
	s.engine = gc.DecodeState(r)
	return s
}
