// Package pagemap implements an idealized page-mapping FTL: the complete
// logical-to-physical table lives in SRAM, so address translation is free.
// No real controller can afford that RAM at SSD scale (§II.A: the table
// "generates an expensive SRAM cache overhead"), which is exactly why DFTL
// and DLOOP demand-page it — but the ideal makes a useful upper-bound
// baseline: the gap between PureMap and DFTL is the price of demand paging;
// the gap between PureMap striped and unstriped isolates placement effects
// from mapping effects.
//
// Placement is configurable: Striped follows DLOOP's equation (1) and
// collects per plane with copy-back; unstriped appends to one global write
// point and collects globally with external moves, like DFTL's layout.
package pagemap

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes the ideal FTL.
type Config struct {
	// GCThreshold triggers collection when a pool drops below it (default 3).
	GCThreshold int
	// ExtraPerPlane matches the over-provisioning of the other FTLs.
	ExtraPerPlane int
	// Striped selects DLOOP-style placement (equation (1), per-plane pools,
	// copy-back GC). False selects DFTL-style plane-oblivious appending
	// with external GC moves.
	Striped bool
	// GCPolicy selects the garbage-collection victim policy (default
	// "greedy"; see gc.ParsePolicy for the alternatives).
	GCPolicy string
}

func (c *Config) setDefaults() {
	if c.GCThreshold == 0 {
		c.GCThreshold = 3
	}
}

// Stats exposes the ideal FTL's counters.
type Stats struct {
	GCRuns      int64
	GCMoves     int64
	ParityWaste int64
}

type writePoint struct {
	pb     flash.PlaneBlock
	next   int
	active bool
}

// PureMap is the ideal page-mapping FTL. Not safe for concurrent use.
type PureMap struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN

	table   []flash.PPN
	pool    *ftl.FreeBlocks
	tracker *ftl.Tracker
	cur     []writePoint // per plane when striped; index 0 otherwise
	engine  *gc.Engine   // owns the collect loop and reentrancy guards

	rec obs.Recorder // nil when observability is disabled
}

// New builds an ideal page-mapping FTL over dev.
func New(dev *flash.Device, cfg Config) (*PureMap, error) {
	cfg.setDefaults()
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < cfg.GCThreshold+1 || cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("pagemap: bad ExtraPerPlane %d", cfg.ExtraPerPlane)
	}
	f := &PureMap{
		dev:      dev,
		geo:      geo,
		cfg:      cfg,
		capacity: ftl.ExportedPages(geo, cfg.ExtraPerPlane),
		pool:     ftl.NewFreeBlocks(geo),
		tracker:  ftl.NewTracker(geo),
		cur:      make([]writePoint, geo.Planes()),
	}
	f.table = make([]flash.PPN, f.capacity)
	for i := range f.table {
		f.table[i] = flash.InvalidPPN
	}
	name := cfg.GCPolicy
	if name == "" {
		name = gc.DefaultPagePolicy
	}
	policy, err := gc.ParsePolicy(name, geo.PagesPerBlock)
	if err != nil {
		return nil, err
	}
	style := gc.MoveExternalParity
	if cfg.Striped {
		style = gc.MoveCopyBack
	}
	f.engine = gc.NewEngine(gc.Config{
		Dev:           dev,
		Policy:        policy,
		Tracker:       f.tracker,
		Scheme:        hooks{f},
		PerPlane:      cfg.Striped,
		ProgressGuard: true,
		Style:         style,
		// Unlike DLOOP, the striped ideal always wastes on parity mismatch
		// (no low-space external fallback), so LowSpaceExternal stays false.
	})
	return f, nil
}

// Name implements ftl.FTL.
func (f *PureMap) Name() string {
	if f.cfg.Striped {
		return "PureMap-striped"
	}
	return "PureMap"
}

// Capacity implements ftl.FTL.
func (f *PureMap) Capacity() ftl.LPN { return f.capacity }

// Stats returns the ideal FTL's counters, derived from the GC engine.
func (f *PureMap) Stats() Stats {
	es := f.engine.Stats()
	return Stats{GCRuns: es.Runs, GCMoves: es.Moves, ParityWaste: es.ParityWaste}
}

// GCPolicyName reports the victim-selection policy in effect.
func (f *PureMap) GCPolicyName() string { return f.engine.PolicyName() }

// SetRecorder implements ftl.Observable. PureMap has no CMT, so only GC
// spans and parity-waste events flow.
func (f *PureMap) SetRecorder(r obs.Recorder) {
	f.rec = r
	f.engine.SetRecorder(r)
}

// Lookup returns the current physical page of lpn without side effects.
func (f *PureMap) Lookup(lpn ftl.LPN) flash.PPN {
	if ftl.CheckLPN(lpn, f.capacity) != nil {
		return flash.InvalidPPN
	}
	return f.table[lpn]
}

func (f *PureMap) planeFor(lpn ftl.LPN) int {
	if f.cfg.Striped {
		return int(int64(lpn) % int64(f.geo.Planes()))
	}
	return 0 // single global write point, stored in cur[pb.Plane] of its block
}

// ReadPage implements ftl.FTL. Translation is free: the table is in SRAM.
func (f *PureMap) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	ppn := f.table[lpn]
	if ppn == flash.InvalidPPN {
		return ready, nil
	}
	return f.dev.ReadPage(ppn, ready, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *PureMap) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t := ready
	var err error
	if f.engine.Idle(f.planeFor(lpn)) {
		t, err = f.engine.MaybeCollect(f.planeFor(lpn), t)
		if err != nil {
			return 0, err
		}
	}
	ppn, err := f.nextFreePage(f.planeFor(lpn))
	if err != nil {
		return 0, err
	}
	end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	if old := f.table[lpn]; old != flash.InvalidPPN {
		if err := f.dev.Invalidate(old); err != nil {
			return 0, err
		}
		f.tracker.Invalidated(f.geo.BlockOf(old))
	}
	f.table[lpn] = ppn
	return end, nil
}

// nextFreePage advances a write point. In striped mode `wp` is the plane;
// unstriped mode uses a single global write point (slot 0) drawing from any
// plane in plane-major order.
func (f *PureMap) nextFreePage(wpIdx int) (flash.PPN, error) {
	wp := &f.cur[wpIdx]
	if wp.active && wp.next >= f.geo.PagesPerBlock {
		f.tracker.Close(wp.pb)
		wp.active = false
	}
	if !wp.active {
		var pb flash.PlaneBlock
		var ok bool
		if f.cfg.Striped {
			pb, ok = f.pool.TakeFromPlane(wpIdx)
		} else {
			pb, ok = f.pool.TakeAny()
		}
		if !ok {
			return flash.InvalidPPN, fmt.Errorf("pagemap: free blocks exhausted (capacity overcommitted)")
		}
		wp.pb, wp.next, wp.active = pb, 0, true
	}
	ppn := f.geo.PPNOf(wp.pb.Plane, wp.pb.Block, wp.next)
	wp.next++
	return ppn, nil
}

// destParity returns the in-block parity of the next page the plane's write
// point will hand out (a fresh block starts at even offset 0).
func (f *PureMap) destParity(plane int) int {
	wp := &f.cur[plane]
	if !wp.active || wp.next >= f.geo.PagesPerBlock {
		return 0
	}
	return wp.next % 2
}

func (f *PureMap) poolLow(plane int) bool {
	if f.cfg.Striped {
		return f.pool.InPlane(plane) < f.cfg.GCThreshold
	}
	return f.pool.Total() < f.cfg.GCThreshold
}

// freePages counts writable pages available to a write point's pool.
func (f *PureMap) freePages(plane int) int {
	var n int
	if f.cfg.Striped {
		n = f.pool.InPlane(plane) * f.geo.PagesPerBlock
		if wp := &f.cur[plane]; wp.active {
			n += f.geo.PagesPerBlock - wp.next
		}
	} else {
		n = f.pool.Total() * f.geo.PagesPerBlock
		if wp := &f.cur[0]; wp.active {
			n += f.geo.PagesPerBlock - wp.next
		}
	}
	return n
}

// hooks adapts PureMap's pools and write points to the GC engine's Scheme
// surface. Striped mode collects per plane with copy-back (always wasting on
// parity mismatch); unstriped mode collects globally with external moves.
type hooks struct{ f *PureMap }

func (h hooks) PoolLow(plane int) bool { return h.f.poolLow(plane) }

func (h hooks) FreePages(plane int) int { return h.f.freePages(plane) }

func (h hooks) DestParity(plane int) int { return h.f.destParity(plane) }

func (h hooks) NextDest(plane int, stored int64) (flash.PPN, error) {
	// Striped collections pass the victim's plane; unstriped ones pass 0,
	// which is exactly the global write point's slot.
	return h.f.nextFreePage(plane)
}

func (h hooks) Redirect(moved []ftl.Moved, at sim.Time) (sim.Time, error) {
	for _, mv := range moved {
		h.f.table[mv.Stored] = mv.New // translation is free: the table is SRAM
	}
	return at, nil
}

func (h hooks) Release(victim flash.PlaneBlock) { h.f.pool.Put(victim) }
