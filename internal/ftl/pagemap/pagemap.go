// Package pagemap implements an idealized page-mapping FTL: the complete
// logical-to-physical table lives in SRAM, so address translation is free.
// No real controller can afford that RAM at SSD scale (§II.A: the table
// "generates an expensive SRAM cache overhead"), which is exactly why DFTL
// and DLOOP demand-page it — but the ideal makes a useful upper-bound
// baseline: the gap between PureMap and DFTL is the price of demand paging;
// the gap between PureMap striped and unstriped isolates placement effects
// from mapping effects.
//
// Placement is configurable: Striped follows DLOOP's equation (1) and
// collects per plane with copy-back; unstriped appends to one global write
// point and collects globally with external moves, like DFTL's layout.
package pagemap

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes the ideal FTL.
type Config struct {
	// GCThreshold triggers collection when a pool drops below it (default 3).
	GCThreshold int
	// ExtraPerPlane matches the over-provisioning of the other FTLs.
	ExtraPerPlane int
	// Striped selects DLOOP-style placement (equation (1), per-plane pools,
	// copy-back GC). False selects DFTL-style plane-oblivious appending
	// with external GC moves.
	Striped bool
}

func (c *Config) setDefaults() {
	if c.GCThreshold == 0 {
		c.GCThreshold = 3
	}
}

// Stats exposes the ideal FTL's counters.
type Stats struct {
	GCRuns      int64
	GCMoves     int64
	ParityWaste int64
}

type writePoint struct {
	pb     flash.PlaneBlock
	next   int
	active bool
}

// PureMap is the ideal page-mapping FTL. Not safe for concurrent use.
type PureMap struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN

	table   []flash.PPN
	pool    *ftl.FreeBlocks
	tracker *ftl.Tracker
	cur     []writePoint // per plane when striped; index 0 otherwise
	inGC    bool

	stats Stats
	rec   obs.Recorder // nil when observability is disabled
}

// New builds an ideal page-mapping FTL over dev.
func New(dev *flash.Device, cfg Config) (*PureMap, error) {
	cfg.setDefaults()
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < cfg.GCThreshold+1 || cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("pagemap: bad ExtraPerPlane %d", cfg.ExtraPerPlane)
	}
	f := &PureMap{
		dev:      dev,
		geo:      geo,
		cfg:      cfg,
		capacity: ftl.ExportedPages(geo, cfg.ExtraPerPlane),
		pool:     ftl.NewFreeBlocks(geo),
		tracker:  ftl.NewTracker(geo),
		cur:      make([]writePoint, geo.Planes()),
	}
	f.table = make([]flash.PPN, f.capacity)
	for i := range f.table {
		f.table[i] = flash.InvalidPPN
	}
	return f, nil
}

// Name implements ftl.FTL.
func (f *PureMap) Name() string {
	if f.cfg.Striped {
		return "PureMap-striped"
	}
	return "PureMap"
}

// Capacity implements ftl.FTL.
func (f *PureMap) Capacity() ftl.LPN { return f.capacity }

// Stats returns the ideal FTL's counters.
func (f *PureMap) Stats() Stats { return f.stats }

// SetRecorder implements ftl.Observable. PureMap has no CMT, so only GC
// spans and parity-waste events flow.
func (f *PureMap) SetRecorder(r obs.Recorder) { f.rec = r }

// Lookup returns the current physical page of lpn without side effects.
func (f *PureMap) Lookup(lpn ftl.LPN) flash.PPN {
	if ftl.CheckLPN(lpn, f.capacity) != nil {
		return flash.InvalidPPN
	}
	return f.table[lpn]
}

func (f *PureMap) planeFor(lpn ftl.LPN) int {
	if f.cfg.Striped {
		return int(int64(lpn) % int64(f.geo.Planes()))
	}
	return 0 // single global write point, stored in cur[pb.Plane] of its block
}

// ReadPage implements ftl.FTL. Translation is free: the table is in SRAM.
func (f *PureMap) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	ppn := f.table[lpn]
	if ppn == flash.InvalidPPN {
		return ready, nil
	}
	return f.dev.ReadPage(ppn, ready, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *PureMap) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	t := ready
	var err error
	if !f.inGC {
		t, err = f.maybeCollect(f.planeFor(lpn), t)
		if err != nil {
			return 0, err
		}
	}
	ppn, err := f.nextFreePage(f.planeFor(lpn))
	if err != nil {
		return 0, err
	}
	end, err := f.dev.WritePage(ppn, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	if old := f.table[lpn]; old != flash.InvalidPPN {
		if err := f.dev.Invalidate(old); err != nil {
			return 0, err
		}
		f.tracker.Invalidated(f.geo.BlockOf(old))
	}
	f.table[lpn] = ppn
	return end, nil
}

// nextFreePage advances a write point. In striped mode `wp` is the plane;
// unstriped mode uses a single global write point (slot 0) drawing from any
// plane in plane-major order.
func (f *PureMap) nextFreePage(wpIdx int) (flash.PPN, error) {
	wp := &f.cur[wpIdx]
	if wp.active && wp.next >= f.geo.PagesPerBlock {
		f.tracker.Close(wp.pb)
		wp.active = false
	}
	if !wp.active {
		var pb flash.PlaneBlock
		var ok bool
		if f.cfg.Striped {
			pb, ok = f.pool.TakeFromPlane(wpIdx)
		} else {
			pb, ok = f.pool.TakeAny()
		}
		if !ok {
			return flash.InvalidPPN, fmt.Errorf("pagemap: free blocks exhausted (capacity overcommitted)")
		}
		wp.pb, wp.next, wp.active = pb, 0, true
	}
	ppn := f.geo.PPNOf(wp.pb.Plane, wp.pb.Block, wp.next)
	wp.next++
	return ppn, nil
}

// destParity returns the in-block parity of the next page the plane's write
// point will hand out (a fresh block starts at even offset 0).
func (f *PureMap) destParity(plane int) int {
	wp := &f.cur[plane]
	if !wp.active || wp.next >= f.geo.PagesPerBlock {
		return 0
	}
	return wp.next % 2
}

func (f *PureMap) poolLow(plane int) bool {
	if f.cfg.Striped {
		return f.pool.InPlane(plane) < f.cfg.GCThreshold
	}
	return f.pool.Total() < f.cfg.GCThreshold
}

// freePages counts writable pages available to a write point's pool.
func (f *PureMap) freePages(plane int) int {
	var n int
	if f.cfg.Striped {
		n = f.pool.InPlane(plane) * f.geo.PagesPerBlock
		if wp := &f.cur[plane]; wp.active {
			n += f.geo.PagesPerBlock - wp.next
		}
	} else {
		n = f.pool.Total() * f.geo.PagesPerBlock
		if wp := &f.cur[0]; wp.active {
			n += f.geo.PagesPerBlock - wp.next
		}
	}
	return n
}

func (f *PureMap) maybeCollect(plane int, ready sim.Time) (sim.Time, error) {
	t := ready
	for f.poolLow(plane) {
		before := f.freePages(plane)
		end, reclaimed, err := f.collect(plane, t)
		if err != nil {
			return 0, err
		}
		if !reclaimed {
			break
		}
		t = end
		if f.freePages(plane) <= before {
			break // no net progress (parity waste ate the reclaim); retry on the next write
		}
	}
	return t, nil
}

func (f *PureMap) collect(plane int, ready sim.Time) (end sim.Time, reclaimed bool, err error) {
	var victim flash.PlaneBlock
	var ok bool
	if f.cfg.Striped {
		victim, _, ok = f.tracker.MaxInPlane(plane)
	} else {
		victim, _, ok = f.tracker.MaxGlobal()
	}
	if !ok {
		return ready, false, nil
	}
	f.tracker.Take(victim)
	f.inGC = true
	defer func() { f.inGC = false }()

	t := ready
	first := f.geo.FirstPPN(victim)
	// Striped mode orders moves so the source parity matches the write
	// point (same scheme as DLOOP): a page is wasted only when the
	// remaining pages are all of the wrong parity.
	var byParity [2][]int
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		if f.dev.PageState(first+flash.PPN(p)) == flash.PageValid {
			byParity[p%2] = append(byParity[p%2], p)
		}
	}
	for len(byParity[0])+len(byParity[1]) > 0 {
		var p int
		if f.cfg.Striped {
			want := f.destParity(victim.Plane)
			if len(byParity[want]) == 0 {
				var dst flash.PPN
				dst, err = f.nextFreePage(victim.Plane)
				if err != nil {
					return 0, false, err
				}
				if err = f.dev.WastePage(dst); err != nil {
					return 0, false, err
				}
				f.tracker.Invalidated(f.geo.BlockOf(dst))
				f.stats.ParityWaste++
				if f.rec != nil {
					f.rec.RecordEvent(obs.EvParityWaste, t)
				}
				continue
			}
			p = byParity[want][0]
			byParity[want] = byParity[want][1:]
		} else {
			if len(byParity[0]) > 0 {
				p = byParity[0][0]
				byParity[0] = byParity[0][1:]
			} else {
				p = byParity[1][0]
				byParity[1] = byParity[1][1:]
			}
		}
		src := first + flash.PPN(p)
		lpn := ftl.LPN(f.dev.PageLPN(src))
		var dst flash.PPN
		if f.cfg.Striped {
			dst, err = f.nextFreePage(victim.Plane)
			if err != nil {
				return 0, false, err
			}
			t, err = f.dev.CopyBack(src, dst, t, flash.CauseGC)
			if err != nil {
				return 0, false, err
			}
		} else {
			dst, err = f.nextFreePage(0)
			if err != nil {
				return 0, false, err
			}
			t, err = f.dev.ReadPage(src, t, flash.CauseGC)
			if err != nil {
				return 0, false, err
			}
			t, err = f.dev.WritePage(dst, int64(lpn), t, flash.CauseGC)
			if err != nil {
				return 0, false, err
			}
			if err = f.dev.Invalidate(src); err != nil {
				return 0, false, err
			}
		}
		f.table[lpn] = dst
		f.stats.GCMoves++
	}
	t, err = f.dev.Erase(victim, t, flash.CauseGC)
	if err != nil {
		return 0, false, err
	}
	f.tracker.Erased(victim)
	f.pool.Put(victim)
	f.stats.GCRuns++
	if f.rec != nil {
		f.rec.RecordSpan(obs.SpanGC, int32(victim.Plane), ready, t)
	}
	return t, true, nil
}
