package pagemap

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// NewRecovered rebuilds the ideal page-mapping FTL from an existing device's
// out-of-band page tags after a simulated power loss. The full table is
// reconstructed by the scan; partial blocks resume as write points (one per
// plane when striped, one global otherwise).
func NewRecovered(dev *flash.Device, cfg Config) (*PureMap, error) {
	f, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	st, err := ftl.ScanOOB(dev, f.capacity, 0)
	if err != nil {
		return nil, err
	}
	copy(f.table, st.Table)
	f.pool = st.Pool
	f.tracker = st.Tracker
	f.engine.Retarget(st.Tracker)
	for _, p := range st.Partial {
		slot := 0
		if f.cfg.Striped {
			slot = p.PB.Plane
		}
		wp := &f.cur[slot]
		if wp.active {
			return nil, fmt.Errorf("pagemap: recovery found two partial blocks for write point %d", slot)
		}
		wp.pb, wp.next, wp.active = p.PB, p.NextWrite, true
	}
	return f, nil
}
