package pagemap

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// state is PureMap's checkpoint: the in-SRAM table plus pool, tracker, and
// write points.
type state struct {
	table   []flash.PPN
	pool    ftl.FreeBlocksState
	tracker ftl.TrackerState
	cur     []writePoint
	inGC    bool
	stats   Stats
}

// Snapshot implements ftl.Snapshotter.
func (f *PureMap) Snapshot() any {
	return &state{
		table:   append([]flash.PPN(nil), f.table...),
		pool:    f.pool.Snapshot(),
		tracker: f.tracker.Snapshot(),
		cur:     append([]writePoint(nil), f.cur...),
		inGC:    f.inGC,
		stats:   f.stats,
	}
}

// Restore implements ftl.Snapshotter.
func (f *PureMap) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("pagemap: foreign snapshot %T", snap)
	}
	copy(f.table, s.table)
	f.pool.Restore(s.pool)
	f.tracker.Restore(s.tracker)
	copy(f.cur, s.cur)
	f.inGC = s.inGC
	f.stats = s.stats
	return nil
}
