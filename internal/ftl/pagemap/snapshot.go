package pagemap

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// state is PureMap's checkpoint: the in-SRAM table plus pool, tracker, and
// write points.
type state struct {
	table   []flash.PPN
	pool    ftl.FreeBlocksState
	tracker ftl.TrackerState
	cur     []writePoint
	engine  gc.State
}

// Snapshot implements ftl.Snapshotter.
func (f *PureMap) Snapshot() any {
	return &state{
		table:   append([]flash.PPN(nil), f.table...),
		pool:    f.pool.Snapshot(),
		tracker: f.tracker.Snapshot(),
		cur:     append([]writePoint(nil), f.cur...),
		engine:  f.engine.Snapshot(),
	}
}

// Restore implements ftl.Snapshotter.
func (f *PureMap) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("pagemap: foreign snapshot %T", snap)
	}
	copy(f.table, s.table)
	f.pool.Restore(s.pool)
	f.tracker.Restore(s.tracker)
	copy(f.cur, s.cur)
	f.engine.Restore(s.engine)
	return nil
}
