package ftl

import (
	"testing"

	"dloop/internal/flash"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 8,
		PagesPerBlock: 4, PageSize: 2048,
	}
}

func TestTransEncoding(t *testing.T) {
	for _, tvpn := range []int64{0, 1, 12345, 1 << 40} {
		stored := EncodeTrans(tvpn)
		if !IsTrans(stored) {
			t.Errorf("EncodeTrans(%d) not recognized", tvpn)
		}
		if got := DecodeTrans(stored); got != tvpn {
			t.Errorf("round trip %d -> %d", tvpn, got)
		}
	}
	for _, lpn := range []int64{0, 5, 1 << 40} {
		if IsTrans(lpn) {
			t.Errorf("data lpn %d classified as translation", lpn)
		}
	}
}

func TestCheckLPN(t *testing.T) {
	if err := CheckLPN(0, 10); err != nil {
		t.Error(err)
	}
	if err := CheckLPN(9, 10); err != nil {
		t.Error(err)
	}
	if err := CheckLPN(10, 10); err == nil {
		t.Error("lpn == capacity accepted")
	}
	if err := CheckLPN(-1, 10); err == nil {
		t.Error("negative lpn accepted")
	}
}

func TestExportedPages(t *testing.T) {
	g := testGeo() // 8 planes, 8 blocks, 4 pages
	if got := ExportedPages(g, 2); got != 8*6*4 {
		t.Fatalf("ExportedPages = %d, want %d", got, 8*6*4)
	}
}

func TestExtraBlocksPerPlane(t *testing.T) {
	// 3% of 2048 data blocks: extra = total*pct/(1+pct).
	got := ExtraBlocksPerPlane(2110, 0.03, 3)
	if got < 61 || got > 63 {
		t.Errorf("3%% of ~2048: got %d, want ≈62", got)
	}
	// Tiny pools clamp to gcThreshold+1.
	if got := ExtraBlocksPerPlane(10, 0.01, 3); got != 4 {
		t.Errorf("clamp: got %d, want 4", got)
	}
	// Never consumes the whole plane.
	if got := ExtraBlocksPerPlane(5, 0.99, 3); got >= 5 {
		t.Errorf("overflow: got %d", got)
	}
}

func TestFreeBlocksPools(t *testing.T) {
	g := testGeo()
	f := NewFreeBlocks(g)
	if f.Total() != 8*8 {
		t.Fatalf("Total = %d", f.Total())
	}
	if f.InPlane(3) != 8 {
		t.Fatalf("InPlane(3) = %d", f.InPlane(3))
	}
	pb, ok := f.TakeFromPlane(3)
	if !ok || pb.Plane != 3 || pb.Block != 0 {
		t.Fatalf("TakeFromPlane: %v %v", pb, ok)
	}
	if f.InPlane(3) != 7 || f.Total() != 63 {
		t.Fatal("counts not updated")
	}
	// TakeAny is plane-major.
	pb, ok = f.TakeAny()
	if !ok || pb.Plane != 0 || pb.Block != 0 {
		t.Fatalf("TakeAny: %v", pb)
	}
	// Drain plane 0 and confirm TakeAny moves to plane 1.
	for i := 0; i < 7; i++ {
		if _, ok := f.TakeFromPlane(0); !ok {
			t.Fatal("drain failed")
		}
	}
	pb, _ = f.TakeAny()
	if pb.Plane != 1 {
		t.Fatalf("TakeAny after drain: plane %d, want 1", pb.Plane)
	}
	// Put returns blocks.
	f.Put(flash.PlaneBlock{Plane: 0, Block: 5})
	if f.InPlane(0) != 1 {
		t.Fatal("Put not reflected")
	}
	pb, ok = f.TakeFromPlane(0)
	if !ok || pb.Block != 5 {
		t.Fatalf("recycled block: %v", pb)
	}
	// Exhaustion.
	for f.Total() > 0 {
		if _, ok := f.TakeAny(); !ok {
			t.Fatal("TakeAny failed with blocks left")
		}
	}
	if _, ok := f.TakeAny(); ok {
		t.Fatal("TakeAny succeeded on empty pool")
	}
	if _, ok := f.TakeFromPlane(2); ok {
		t.Fatal("TakeFromPlane succeeded on empty pool")
	}
}

func TestTrackerVictimSelection(t *testing.T) {
	g := testGeo()
	tr := NewTracker(g)

	// No candidates yet.
	if _, _, ok := tr.MaxInPlane(0); ok {
		t.Fatal("victim with no candidates")
	}
	if _, _, ok := tr.MaxGlobal(); ok {
		t.Fatal("global victim with no candidates")
	}

	b0 := flash.PlaneBlock{Plane: 0, Block: 0}
	b1 := flash.PlaneBlock{Plane: 0, Block: 1}
	b2 := flash.PlaneBlock{Plane: 1, Block: 0}

	tr.Invalidated(b0) // open-block invalidation counts
	tr.Close(b0)
	tr.Close(b1)
	tr.Close(b2)
	tr.Invalidated(b1)
	tr.Invalidated(b1)
	tr.Invalidated(b2)
	tr.Invalidated(b2)
	tr.Invalidated(b2)

	pb, inv, ok := tr.MaxInPlane(0)
	if !ok || pb != b1 || inv != 2 {
		t.Fatalf("MaxInPlane(0) = %v %d %v, want b1/2", pb, inv, ok)
	}
	pb, inv, ok = tr.MaxGlobal()
	if !ok || pb != b2 || inv != 3 {
		t.Fatalf("MaxGlobal = %v %d %v, want b2/3", pb, inv, ok)
	}

	// Take removes candidacy; the runner-up surfaces.
	tr.Take(b2)
	pb, _, ok = tr.MaxGlobal()
	if !ok || pb != b1 {
		t.Fatalf("after Take: %v, want b1", pb)
	}
	tr.Erased(b2)
	if tr.Invalid(b2) != 0 {
		t.Fatal("Erased did not reset count")
	}

	// A block with zero invalid pages is never a victim.
	tr.Take(b1)
	tr.Take(b0)
	clean := flash.PlaneBlock{Plane: 1, Block: 2}
	tr.Close(clean)
	if _, _, ok := tr.MaxGlobal(); ok {
		t.Fatal("all-valid block chosen as victim")
	}
}

func TestTrackerPanicsOnMisuse(t *testing.T) {
	g := testGeo()
	tr := NewTracker(g)
	b := flash.PlaneBlock{Plane: 0, Block: 0}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Take of non-candidate", func() { tr.Take(b) })
	tr.Close(b)
	mustPanic("double Close", func() { tr.Close(b) })
	mustPanic("Erased of candidate", func() { tr.Erased(b) })
}

func TestTrackerDeterministicTieBreak(t *testing.T) {
	g := testGeo()
	run := func() []flash.PlaneBlock {
		tr := NewTracker(g)
		for b := 0; b < 4; b++ {
			pb := flash.PlaneBlock{Plane: 0, Block: b}
			tr.Close(pb)
			tr.Invalidated(pb)
		}
		var order []flash.PlaneBlock
		for {
			pb, _, ok := tr.MaxInPlane(0)
			if !ok {
				break
			}
			tr.Take(pb)
			tr.Erased(pb)
			order = append(order, pb)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("reclaimed %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim order not deterministic: %v vs %v", a, b)
		}
	}
}
