package ftl

import "dloop/internal/ckpt"

// EncodeFreeBlocksState appends a FreeBlocksState to w: one length-prefixed
// block-index slab per plane, then the total.
func EncodeFreeBlocksState(w *ckpt.Writer, s FreeBlocksState) {
	w.U32(uint32(len(s.perPlane)))
	for _, blocks := range s.perPlane {
		w.Ints(blocks)
	}
	w.Int(s.total)
}

// DecodeFreeBlocksState reads a FreeBlocksState written by
// EncodeFreeBlocksState.
func DecodeFreeBlocksState(r *ckpt.Reader) FreeBlocksState {
	n := int(r.U32())
	if r.Err() != nil {
		return FreeBlocksState{}
	}
	s := FreeBlocksState{perPlane: make([][]int, n)}
	for i := range s.perPlane {
		s.perPlane[i] = r.Ints()
	}
	s.total = r.Int()
	return s
}

// EncodeTrackerState appends a TrackerState to w. The bucket index is a
// plane-major ragged array; each per-count bucket goes out as its own
// length-prefixed slab so empty buckets cost four bytes.
func EncodeTrackerState(w *ckpt.Writer, s TrackerState) {
	w.I32s(s.invalid)
	w.I32s(s.inBkt)
	w.U32(uint32(len(s.buckets)))
	for _, bkts := range s.buckets {
		w.U32(uint32(len(bkts)))
		for _, bkt := range bkts {
			w.I32s(bkt)
		}
	}
	w.Ints(s.maxCount)
	w.I64s(s.closeSeq)
	w.I64(s.seq)
}

// DecodeTrackerState reads a TrackerState written by EncodeTrackerState.
func DecodeTrackerState(r *ckpt.Reader) TrackerState {
	s := TrackerState{
		invalid: r.I32s(),
		inBkt:   r.I32s(),
	}
	planes := int(r.U32())
	if r.Err() != nil {
		return TrackerState{}
	}
	s.buckets = make([][][]int32, planes)
	for p := range s.buckets {
		counts := int(r.U32())
		if r.Err() != nil {
			return TrackerState{}
		}
		s.buckets[p] = make([][]int32, counts)
		for c := range s.buckets[p] {
			s.buckets[p][c] = r.I32s()
		}
	}
	s.maxCount = r.Ints()
	s.closeSeq = r.I64s()
	s.seq = r.I64()
	return s
}
