package gc

import "dloop/internal/ckpt"

// EncodeState appends an engine State to w.
func EncodeState(w *ckpt.Writer, s State) {
	w.Int(s.depth)
	w.Bools(s.collecting)
	w.I64(s.stats.Runs)
	w.I64(s.stats.Moves)
	w.I64(s.stats.CopyBacks)
	w.I64(s.stats.External)
	w.I64(s.stats.ParityWaste)
}

// DecodeState reads a State written by EncodeState.
func DecodeState(r *ckpt.Reader) State {
	return State{
		depth:      r.Int(),
		collecting: r.Bools(),
		stats: Stats{
			Runs:        r.I64(),
			Moves:       r.I64(),
			CopyBacks:   r.I64(),
			External:    r.I64(),
			ParityWaste: r.I64(),
		},
	}
}
