package gc

import (
	"testing"

	"dloop/internal/flash"
)

func pb(plane, block int) flash.PlaneBlock { return flash.PlaneBlock{Plane: plane, Block: block} }

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	// Aliases resolve to their canonical policies.
	for alias, want := range map[string]string{"cost-benefit": "costbenefit", "windowed-greedy": "windowed"} {
		p, err := ParsePolicy(alias, 64)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != want {
			t.Errorf("alias %q resolved to %q, want %q", alias, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("nope", 64); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestGreedyPick(t *testing.T) {
	p, _ := ParsePolicy("greedy", 8)
	src := SliceSource{
		{PB: pb(0, 1), Valid: 6, Invalid: 2, Age: 3},
		{PB: pb(0, 2), Valid: 3, Invalid: 5, Age: 2},
		{PB: pb(1, 3), Valid: 3, Invalid: 5, Age: 1},
	}
	c, ok := p.Pick(src, GlobalPlane)
	if !ok || c.PB != pb(0, 2) {
		t.Fatalf("greedy picked %+v ok=%v, want block 0/2 (first max-invalid)", c, ok)
	}
	// Nothing invalid: greedy declines (the engine stops collecting).
	if _, ok := p.Pick(SliceSource{{PB: pb(0, 1), Valid: 8, Invalid: 0, Age: 9}}, GlobalPlane); ok {
		t.Fatal("greedy picked an all-valid candidate")
	}
}

func TestCostBenefitPick(t *testing.T) {
	p, _ := ParsePolicy("costbenefit", 8)
	// A fully-invalid block is a free win over everything else.
	src := SliceSource{
		{PB: pb(0, 1), Valid: 1, Invalid: 7, Age: 100},
		{PB: pb(0, 2), Valid: 0, Invalid: 8, Age: 0},
	}
	if c, ok := p.Pick(src, GlobalPlane); !ok || c.PB != pb(0, 2) {
		t.Fatalf("cost-benefit picked %+v, want the fully-invalid block", c)
	}
	// Age outweighs a small invalid-count edge: an old half-dirty block beats
	// a young slightly-dirtier one ((1-u)/(2u) * (Age+1)).
	src = SliceSource{
		{PB: pb(0, 1), Valid: 3, Invalid: 5, Age: 0}, // score (5/8)/(6/8) * 1 ≈ 0.83
		{PB: pb(0, 2), Valid: 4, Invalid: 4, Age: 3}, // score (4/8)/(8/8) * 4 = 2.0
	}
	if c, _ := p.Pick(src, GlobalPlane); c.PB != pb(0, 2) {
		t.Fatalf("cost-benefit picked %+v, want the older block", c)
	}
	// Exact score ties break toward the older candidate.
	src = SliceSource{
		{PB: pb(0, 1), Valid: 4, Invalid: 4, Age: 1},
		{PB: pb(0, 2), Valid: 4, Invalid: 4, Age: 2},
	}
	if c, _ := p.Pick(src, GlobalPlane); c.PB != pb(0, 2) {
		t.Fatalf("tie-break picked %+v, want the older block", c)
	}
}

func TestWindowedPick(t *testing.T) {
	p, _ := ParsePolicy("windowed", 8)
	// 10 candidates, oldest first has little garbage; the dirtiest candidate
	// overall (age 0) sits outside the 8-oldest window and must be ignored.
	var src SliceSource
	for i := 0; i < 10; i++ {
		src = append(src, Candidate{PB: pb(0, i), Valid: 6, Invalid: 2, Age: int64(20 - i)})
	}
	src[9].Invalid, src[9].Valid, src[9].Age = 7, 1, 0 // dirtiest, but youngest
	src[3].Invalid, src[3].Valid = 5, 3                // dirtiest inside the window
	c, ok := p.Pick(src, GlobalPlane)
	if !ok || c.PB != pb(0, 3) {
		t.Fatalf("windowed picked %+v, want the dirtiest of the 8 oldest (block 3)", c)
	}
	if _, ok := p.Pick(SliceSource{}, GlobalPlane); ok {
		t.Fatal("windowed picked from an empty source")
	}
}

func TestFifoPick(t *testing.T) {
	p, _ := ParsePolicy("fifo", 8)
	src := SliceSource{
		{PB: pb(0, 1), Valid: 1, Invalid: 7, Age: 2},
		{PB: pb(1, 2), Valid: 8, Invalid: 0, Age: 5}, // oldest wins even when fully valid
		{PB: pb(0, 3), Valid: 4, Invalid: 4, Age: 5}, // same age: lower plane wins
	}
	if c, _ := p.Pick(src, GlobalPlane); c.PB != pb(0, 3) {
		t.Fatalf("fifo picked %+v, want the oldest lowest-plane block", c)
	}
}

func TestPickLogVictimFallback(t *testing.T) {
	// Log eviction is mandatory: when greedy finds nothing invalid it must
	// fall back to the oldest candidate instead of declining.
	p, _ := ParsePolicy("greedy", 8)
	cands := []Candidate{
		{PB: pb(0, 1), Valid: 8, Invalid: 0, Age: 1, Key: 10},
		{PB: pb(0, 2), Valid: 8, Invalid: 0, Age: 4, Key: 20},
	}
	if c := PickLogVictim(p, cands); c.Key != 20 {
		t.Fatalf("fallback picked %+v, want the oldest (Key 20)", c)
	}
	// With garbage present the policy's own pick stands.
	cands[0].Invalid, cands[0].Valid = 3, 5
	if c := PickLogVictim(p, cands); c.Key != 10 {
		t.Fatalf("picked %+v, want greedy's choice (Key 10)", c)
	}
}

func TestSliceSourceMaxInvalid(t *testing.T) {
	src := SliceSource{
		{PB: pb(0, 1), Invalid: 2},
		{PB: pb(0, 2), Invalid: 5},
		{PB: pb(0, 3), Invalid: 5}, // tie: first listed wins
	}
	c, ok := src.MaxInvalid(GlobalPlane)
	if !ok || c.PB != pb(0, 2) {
		t.Fatalf("MaxInvalid = %+v ok=%v, want block 0/2", c, ok)
	}
	if _, ok := (SliceSource{{PB: pb(0, 1), Invalid: 0}}).MaxInvalid(GlobalPlane); ok {
		t.Fatal("MaxInvalid yielded an all-valid candidate")
	}
}
