// Package gc is the scheme-agnostic garbage-collection engine shared by the
// FTL schemes. It owns the collect loop — trigger evaluation, victim
// selection behind the VictimPolicy interface, valid-page relocation
// (intra-plane copy-back with the same-parity waste rule, or external
// read-transfer-write moves), and erase accounting — while each scheme
// supplies only a small callback surface (Scheme): its pool watermark, write
// points, and mapping redirection. The default policies reproduce the
// pre-engine scheme behavior bit-identically; alternative victim policies
// (cost-benefit, windowed-greedy) plug in without touching scheme code.
package gc

import (
	"fmt"
	"math"
	"sort"

	"dloop/internal/flash"
)

// GlobalPlane selects device-wide candidate enumeration instead of one
// plane's.
const GlobalPlane = -1

// Candidate describes one garbage-collection victim candidate.
type Candidate struct {
	PB      flash.PlaneBlock
	Valid   int
	Invalid int
	// Age ranks candidates by how long ago they stopped taking writes:
	// larger is older. For tracker-backed candidates it counts block closes;
	// for log-block lists it is the reverse list position.
	Age int64
	// Key is a scheme-private handle identifying the candidate to its owner
	// (a log-list index for FAST, a logical block number for BAST). The
	// engine and policies carry it through untouched.
	Key int64
}

// Source enumerates the current victim candidates of one plane, or of the
// whole device when plane is GlobalPlane.
type Source interface {
	// MaxInvalid returns the candidate with the most invalid pages, with the
	// exact deterministic tie-breaking of the seed tracker (LIFO within an
	// invalid-count bucket; global scans planes in order keeping strict
	// improvements). ok is false when no candidate has an invalid page.
	MaxInvalid(plane int) (Candidate, bool)
	// ForEach visits candidates in a deterministic order; fn returns false
	// to stop early.
	ForEach(plane int, fn func(Candidate) bool)
}

// VictimPolicy ranks candidates and picks the next GC victim. Policies are
// stateless and deterministic: the same source contents always yield the
// same pick, which keeps whole simulations reproducible and lets
// checkpoint/fork skip policy state entirely.
type VictimPolicy interface {
	Name() string
	Pick(src Source, plane int) (Candidate, bool)
}

// Default policy names per scheme family. Page-mapping schemes historically
// collect greedily; the hybrid log schemes evict their oldest log block.
const (
	DefaultPagePolicy = "greedy"
	DefaultLogPolicy  = "fifo"
)

// PolicyNames lists the selectable victim policies.
func PolicyNames() []string { return []string{"greedy", "costbenefit", "windowed", "fifo"} }

// ParsePolicy returns the victim policy named name; ppb is the device's
// pages-per-block, which cost-benefit needs to compute utilization.
func ParsePolicy(name string, ppb int) (VictimPolicy, error) {
	switch name {
	case "greedy":
		return greedy{}, nil
	case "costbenefit", "cost-benefit":
		return costBenefit{ppb: ppb}, nil
	case "windowed", "windowed-greedy":
		return windowed{w: windowSize}, nil
	case "fifo":
		return fifo{}, nil
	}
	return nil, fmt.Errorf("gc: unknown victim policy %q (have greedy, costbenefit, windowed, fifo)", name)
}

// greedy picks the candidate with the most invalid pages — the seed
// behavior of every page-mapping scheme. It delegates to the source's
// MaxInvalid so tracker-backed picks are bit-identical to the pre-engine
// code, including the tracker's internal max-count caching.
type greedy struct{}

func (greedy) Name() string { return "greedy" }

func (greedy) Pick(src Source, plane int) (Candidate, bool) { return src.MaxInvalid(plane) }

// costBenefit scores candidates by Kawaguchi's benefit/cost ratio,
// (1-u)/(2u) scaled by age: moving a page costs a read and a write (the 2u),
// and old cold blocks are better bets than hot ones that will reinvalidate
// soon. A fully-invalid candidate is an infinite-score free win.
type costBenefit struct{ ppb int }

func (costBenefit) Name() string { return "costbenefit" }

func (p costBenefit) Pick(src Source, plane int) (Candidate, bool) {
	var best Candidate
	var bestScore float64
	found := false
	src.ForEach(plane, func(c Candidate) bool {
		s := p.score(c)
		if !found || betterScored(s, c, bestScore, best) {
			found, best, bestScore = true, c, s
		}
		return true
	})
	return best, found
}

func (p costBenefit) score(c Candidate) float64 {
	if c.Valid == 0 {
		return math.Inf(1)
	}
	u := float64(c.Valid) / float64(p.ppb)
	return (1 - u) / (2 * u) * float64(c.Age+1)
}

// betterScored orders (score, candidate) pairs: higher score, then older,
// then lower plane, then lower block — a strict total order, so picks are
// deterministic.
func betterScored(s float64, c Candidate, bestScore float64, best Candidate) bool {
	if s != bestScore {
		return s > bestScore
	}
	return olderThan(c, best)
}

// olderThan is the deterministic age order: older first, ties toward lower
// plane then lower block.
func olderThan(c, best Candidate) bool {
	if c.Age != best.Age {
		return c.Age > best.Age
	}
	if c.PB.Plane != best.PB.Plane {
		return c.PB.Plane < best.PB.Plane
	}
	return c.PB.Block < best.PB.Block
}

// windowSize is the windowed-greedy window: the d of a d-choices policy.
const windowSize = 8

// windowed is windowed-greedy (d-choices): greedy victim selection
// restricted to the w oldest candidates. Bounding the search window caps
// per-collection work on huge devices and adds an age bias that approximates
// cost-benefit at greedy's price.
type windowed struct{ w int }

func (windowed) Name() string { return "windowed" }

func (p windowed) Pick(src Source, plane int) (Candidate, bool) {
	var window []Candidate
	src.ForEach(plane, func(c Candidate) bool {
		window = append(window, c)
		return true
	})
	if len(window) == 0 {
		return Candidate{}, false
	}
	sort.Slice(window, func(i, j int) bool { return olderThan(window[i], window[j]) })
	if len(window) > p.w {
		window = window[:p.w]
	}
	best := window[0]
	for _, c := range window[1:] {
		if c.Invalid > best.Invalid { // ties keep the older candidate
			best = c
		}
	}
	return best, true
}

// fifo picks the oldest candidate regardless of utilization — the seed
// eviction order of the hybrid log schemes (FAST's rwFull[0], BAST's
// logOrder[0]).
type fifo struct{}

func (fifo) Name() string { return "fifo" }

func (fifo) Pick(src Source, plane int) (Candidate, bool) {
	var best Candidate
	found := false
	src.ForEach(plane, func(c Candidate) bool {
		if !found || olderThan(c, best) {
			found, best = true, c
		}
		return true
	})
	return best, found
}

// PickLogVictim selects a victim from an explicit log-block candidate list.
// Log-block eviction is mandatory — the scheme needs a free log slot — so
// when the policy finds nothing it likes (greedy with all-valid logs), the
// pick falls back to the oldest candidate. cands must be non-empty.
func PickLogVictim(p VictimPolicy, cands []Candidate) Candidate {
	src := SliceSource(cands)
	if c, ok := p.Pick(src, GlobalPlane); ok {
		return c
	}
	c, _ := fifo{}.Pick(src, GlobalPlane)
	return c
}
