package gc

import (
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// MoveStyle selects how the engine relocates a victim's valid pages.
type MoveStyle uint8

const (
	// MoveCopyBack relocates with intra-plane copy-back commands, gathering
	// sources by in-block offset parity so they match the destination write
	// point; a destination page is deliberately wasted when only
	// wrong-parity sources remain (the §III.A same-parity rule).
	MoveCopyBack MoveStyle = iota
	// MoveExternalParity relocates through the buses with plain reads and
	// writes, draining even-offset sources before odd ones. The parity rule
	// binds only the copy-back command, so nothing is wasted.
	MoveExternalParity
	// MoveOffsetOrder relocates through the buses in plain in-block offset
	// order (DFTL's layout-oblivious loop).
	MoveOffsetOrder
)

// Scheme is the callback surface an FTL supplies to the engine: everything
// scheme-specific about placement and mapping, nothing about collection.
type Scheme interface {
	// PoolLow reports whether the plane's free-block pool is below the GC
	// trigger watermark. Globally-pooled schemes ignore plane.
	PoolLow(plane int) bool
	// FreePages counts the writable pages currently available to the
	// plane's write point: whole pool blocks plus the open block's
	// unwritten tail.
	FreePages(plane int) int
	// DestParity returns the in-block offset parity of the next page the
	// plane's write point will hand out.
	DestParity(plane int) int
	// NextDest allocates the next destination page on the plane's write
	// point for a relocated (or wasted) page tagged stored.
	NextDest(plane int, stored int64) (flash.PPN, error)
	// Redirect commits completed relocations to the scheme's mapping
	// structures. It charges no flash traffic by itself (lazy, OOB-backed
	// redirection) and returns the time the collection may proceed.
	Redirect(moved []ftl.Moved, at sim.Time) (sim.Time, error)
	// Release returns the erased victim to the scheme's free pool.
	Release(victim flash.PlaneBlock)
}

// Stats counts the engine's activity. Schemes derive their public GC
// counters from it.
type Stats struct {
	Runs        int64 // collections completed
	Moves       int64 // valid pages relocated
	CopyBacks   int64 // moves done with intra-plane copy-back
	External    int64 // moves done with read-transfer-write through the buses
	ParityWaste int64 // destination pages wasted to satisfy the parity rule
}

// VictimRecorder is the optional observability hook for the per-victim
// valid-count histogram; the obs Collector implements it.
type VictimRecorder interface {
	RecordGCVictim(valid int, at sim.Time)
}

// Config wires an Engine to its scheme.
type Config struct {
	Dev    *flash.Device
	Policy VictimPolicy
	// Tracker indexes the closed-block candidates. Hybrid schemes that only
	// use the engine for moves and log-victim picks leave it nil.
	Tracker *ftl.Tracker
	// Scheme is the owning FTL's callback surface; nil for hybrid schemes.
	Scheme Scheme
	// PerPlane selects per-plane triggers and victim pools (DLOOP-style
	// striped placement); otherwise trigger and victim search are
	// device-wide and destinations come from write point 0.
	PerPlane bool
	// ProgressGuard breaks the collect loop when a collection's destination
	// pages (moves plus parity waste) consumed everything it freed —
	// retrying immediately would livelock.
	ProgressGuard bool
	Style         MoveStyle
	// LowSpaceExternal moves a wrong-parity page through the buses instead
	// of wasting a destination page when the plane is critically low on
	// free pages (under two blocks' worth). Without it mismatches always
	// waste.
	LowSpaceExternal bool
}

// Engine owns garbage collection for one FTL instance. Not safe for
// concurrent use.
type Engine struct {
	dev    *flash.Device
	geo    flash.Geometry
	cfg    Config
	policy VictimPolicy

	tracker *ftl.Tracker
	source  *TrackerSource
	scheme  Scheme

	depth      int    // nesting level of active collections
	collecting []bool // per plane: a collection is running here

	// scratch is a free-list of relocation buffers. Sustained collection runs
	// millions of collectOnce calls, and allocating the moved/parity slices
	// per call was the last allocation on the GC-heavy path; a plain slice
	// stack (rather than one buffer) keeps reuse correct when collections
	// nest through depth.
	scratch []*collectScratch

	stats     Stats
	rec       obs.Recorder       // nil when observability is disabled
	victimRec VictimRecorder     // non-nil only when rec implements it
	spanRec   obs.GCSpanRecorder // non-nil only when rec implements it
}

// NewEngine builds an engine; hybrid schemes may leave Tracker and Scheme
// nil and use only MoveExternal, RecordVictim, and PickLogVictim.
func NewEngine(cfg Config) *Engine {
	geo := cfg.Dev.Geometry()
	e := &Engine{
		dev:        cfg.Dev,
		geo:        geo,
		cfg:        cfg,
		policy:     cfg.Policy,
		tracker:    cfg.Tracker,
		scheme:     cfg.Scheme,
		collecting: make([]bool, geo.Planes()),
	}
	if cfg.Tracker != nil {
		e.source = NewTrackerSource(cfg.Tracker, geo.PagesPerBlock)
	}
	return e
}

// SetRecorder attaches (or, with nil, detaches) an observability recorder.
func (e *Engine) SetRecorder(r obs.Recorder) {
	e.rec = r
	e.victimRec = nil
	e.spanRec = nil
	if vr, ok := r.(VictimRecorder); ok {
		e.victimRec = vr
	}
	if sr, ok := r.(obs.GCSpanRecorder); ok {
		e.spanRec = sr
	}
}

// PolicyName reports the victim-selection policy in effect.
func (e *Engine) PolicyName() string { return e.policy.Name() }

// Policy returns the victim policy; hybrid schemes pass it to PickLogVictim.
func (e *Engine) Policy() VictimPolicy { return e.policy }

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Idle reports that no collection is active on the plane (or anywhere, for
// nested placement). Schemes consult it before triggering collection from
// their placement path; it is pure defense against reentry, since
// collections allocate destinations directly and never place through the
// host path.
func (e *Engine) Idle(plane int) bool { return e.depth == 0 && !e.collecting[plane] }

// Retarget repoints the engine at a rebuilt tracker; recovery uses it after
// an OOB scan replaces the scheme's structures.
func (e *Engine) Retarget(tr *ftl.Tracker) {
	e.tracker = tr
	e.source.Retarget(tr)
}

// MaybeCollect runs collections on the plane until its pool is above the
// trigger watermark, nothing is reclaimable, or (with ProgressGuard) a
// collection makes no net progress. It returns the time placement may
// proceed.
func (e *Engine) MaybeCollect(plane int, ready sim.Time) (sim.Time, error) {
	t := ready
	for e.scheme.PoolLow(plane) {
		var before int
		if e.cfg.ProgressGuard {
			before = e.scheme.FreePages(plane)
		}
		end, reclaimed, err := e.collectOnce(plane, t)
		if err != nil {
			return 0, err
		}
		if !reclaimed {
			break // nothing invalid to reclaim
		}
		t = end
		if e.cfg.ProgressGuard && e.scheme.FreePages(plane) <= before {
			// The collection's destination pages (moves plus parity waste)
			// consumed everything it freed. Retrying immediately would
			// livelock; break and let the invalid pages host updates keep
			// creating make the next collection profitable.
			break
		}
	}
	return t, nil
}

// collectScratch holds one collection's relocation buffers: the moved list
// handed to Scheme.Redirect and the by-parity source queues. Schemes must
// not retain the Redirect slice (none do — they fold it into their mapping
// structures), so the buffers are reusable the moment collectOnce returns.
type collectScratch struct {
	moved  []ftl.Moved
	parity [2][]int
}

// getScratch pops a scratch buffer off the free-list (or makes one), with
// lengths reset and capacities kept.
func (e *Engine) getScratch() *collectScratch {
	n := len(e.scratch)
	if n == 0 {
		return &collectScratch{}
	}
	s := e.scratch[n-1]
	e.scratch = e.scratch[:n-1]
	s.moved = s.moved[:0]
	s.parity[0] = s.parity[0][:0]
	s.parity[1] = s.parity[1][:0]
	return s
}

// putScratch returns a buffer to the free-list.
func (e *Engine) putScratch(s *collectScratch) { e.scratch = append(e.scratch, s) }

// collectOnce runs one garbage collection: pick a victim by policy, relocate
// its valid pages per the move style, redirect the mappings, erase, and
// release the block.
func (e *Engine) collectOnce(plane int, ready sim.Time) (end sim.Time, reclaimed bool, err error) {
	pickPlane := plane
	if !e.cfg.PerPlane {
		pickPlane = GlobalPlane
	}
	cand, ok := e.policy.Pick(e.source, pickPlane)
	if !ok {
		return ready, false, nil
	}
	victim := cand.PB
	e.tracker.Take(victim)
	e.depth++
	e.collecting[victim.Plane] = true
	defer func() {
		e.depth--
		e.collecting[victim.Plane] = false
	}()
	if e.victimRec != nil {
		e.victimRec.RecordGCVictim(cand.Valid, ready)
	}

	destPlane := 0
	if e.cfg.PerPlane {
		destPlane = victim.Plane
	}
	t := ready
	sc := e.getScratch()
	defer e.putScratch(sc)
	first := e.geo.FirstPPN(victim)
	ppb := e.geo.PagesPerBlock
	wasteBefore := e.stats.ParityWaste

	if e.cfg.Style == MoveOffsetOrder {
		for p := 0; p < ppb; p++ {
			src := first + flash.PPN(p)
			if e.dev.PageState(src) != flash.PageValid {
				continue
			}
			stored := e.dev.PageLPN(src)
			var dst flash.PPN
			dst, err = e.scheme.NextDest(destPlane, stored)
			if err != nil {
				return 0, false, err
			}
			t, err = e.moveExternal(src, dst, stored, t)
			if err != nil {
				return 0, false, err
			}
			sc.moved = append(sc.moved, ftl.Moved{Stored: stored, New: dst})
		}
	} else {
		// Gather the victim's valid pages by in-block offset parity. Moves
		// are ordered so the source parity matches the destination write
		// point whenever possible; a page is wasted only when the remaining
		// pages are all of the "wrong" parity — §III.A's worst case of about
		// m/2 wasted pages when m same-parity pages must move. head indexes
		// into the parity queues instead of re-slicing them, so the scratch
		// buffers keep their full capacity for the next collection.
		for p := 0; p < ppb; p++ {
			if e.dev.PageState(first+flash.PPN(p)) == flash.PageValid {
				sc.parity[p%2] = append(sc.parity[p%2], p)
			}
		}
		var head [2]int
		for head[0] < len(sc.parity[0]) || head[1] < len(sc.parity[1]) {
			external := e.cfg.Style == MoveExternalParity
			var want int
			if external {
				want = pickAny(&sc.parity, head) // parity is a copy-back-only restriction
			} else {
				want = e.scheme.DestParity(destPlane)
				if head[want] >= len(sc.parity[want]) {
					// Only wrong-parity sources remain. Normally the engine
					// wastes one destination page to flip the write point's
					// parity. When the plane is critically low on free
					// pages, wasting one would risk wedging the plane, so
					// (with LowSpaceExternal) this page moves through the
					// buses instead.
					if !e.cfg.LowSpaceExternal || e.scheme.FreePages(destPlane) >= 2*ppb {
						var dst flash.PPN
						dst, err = e.scheme.NextDest(destPlane, 0)
						if err != nil {
							return 0, false, err
						}
						if err = e.dev.WastePage(dst); err != nil {
							return 0, false, err
						}
						e.tracker.Invalidated(e.geo.BlockOf(dst))
						e.stats.ParityWaste++
						if e.rec != nil {
							e.rec.RecordEvent(obs.EvParityWaste, t)
						}
						continue
					}
					external = true
					want = pickAny(&sc.parity, head)
				}
			}
			p := sc.parity[want][head[want]]
			head[want]++
			src := first + flash.PPN(p)
			stored := e.dev.PageLPN(src)
			var dst flash.PPN
			dst, err = e.scheme.NextDest(destPlane, stored)
			if err != nil {
				return 0, false, err
			}
			if external {
				t, err = e.moveExternal(src, dst, stored, t)
				if err != nil {
					return 0, false, err
				}
			} else {
				t, err = e.dev.CopyBack(src, dst, t, flash.CauseGC)
				if err != nil {
					return 0, false, err
				}
				e.stats.Moves++
				e.stats.CopyBacks++
				if e.rec != nil {
					e.rec.RecordEvent(obs.EvGCCopyBack, t)
				}
			}
			sc.moved = append(sc.moved, ftl.Moved{Stored: stored, New: dst})
		}
	}

	t, err = e.scheme.Redirect(sc.moved, t)
	if err != nil {
		return 0, false, err
	}
	t, err = e.dev.Erase(victim, t, flash.CauseGC)
	if err != nil {
		return 0, false, err
	}
	e.tracker.Erased(victim)
	e.scheme.Release(victim)
	e.stats.Runs++
	if e.spanRec != nil {
		e.spanRec.RecordGCSpan(int32(victim.Plane), ready, t,
			e.policy.Name(), len(sc.moved), int(e.stats.ParityWaste-wasteBefore))
	} else if e.rec != nil {
		e.rec.RecordSpan(obs.SpanGC, int32(victim.Plane), ready, t)
	}
	return t, true, nil
}

// MoveExternal relocates one valid page through the buses with a read +
// write pair and invalidates the source. Hybrid FTLs drive their merge
// copies through it so the engine's counters and observability events cover
// every relocation in the system.
func (e *Engine) MoveExternal(src, dst flash.PPN, stored int64, ready sim.Time) (sim.Time, error) {
	return e.moveExternal(src, dst, stored, ready)
}

func (e *Engine) moveExternal(src, dst flash.PPN, stored int64, ready sim.Time) (sim.Time, error) {
	t, err := e.dev.ReadPage(src, ready, flash.CauseGC)
	if err != nil {
		return 0, err
	}
	t, err = e.dev.WritePage(dst, stored, t, flash.CauseGC)
	if err != nil {
		return 0, err
	}
	if err := e.dev.Invalidate(src); err != nil {
		return 0, err
	}
	e.stats.Moves++
	e.stats.External++
	if e.rec != nil {
		e.rec.RecordEvent(obs.EvGCExternalMove, t)
	}
	return t, nil
}

// RecordVictim feeds the per-victim valid-count histogram; hybrid FTLs call
// it for their merge victims (the engine's own collections record theirs
// internally).
func (e *Engine) RecordVictim(valid int, at sim.Time) {
	if e.victimRec != nil {
		e.victimRec.RecordGCVictim(valid, at)
	}
}

// pickAny returns the parity class with unconsumed pages, preferring even.
func pickAny(parity *[2][]int, head [2]int) int {
	if head[0] < len(parity[0]) {
		return 0
	}
	return 1
}

// State is a deep copy of the engine's mutable state, for checkpoint/fork.
type State struct {
	depth      int
	collecting []bool
	stats      Stats
}

// Snapshot captures the engine's reentrancy guards and counters. The
// tracker is scheme-owned state and is snapshotted by the scheme.
func (e *Engine) Snapshot() State {
	return State{
		depth:      e.depth,
		collecting: append([]bool(nil), e.collecting...),
		stats:      e.stats,
	}
}

// Restore rewinds the engine to a snapshot.
func (e *Engine) Restore(s State) {
	e.depth = s.depth
	copy(e.collecting, s.collecting)
	e.stats = s.stats
}
