package gc

import (
	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// TrackerSource adapts the shared ftl.Tracker candidate index to the policy
// Source interface. Tracked candidates are fully written blocks, so the
// valid count derives from the invariant valid = pagesPerBlock - invalid.
type TrackerSource struct {
	tr  *ftl.Tracker
	ppb int
}

// NewTrackerSource wraps tr; ppb is the device's pages-per-block.
func NewTrackerSource(tr *ftl.Tracker, ppb int) *TrackerSource {
	return &TrackerSource{tr: tr, ppb: ppb}
}

// Retarget repoints the source at a rebuilt tracker after recovery.
func (s *TrackerSource) Retarget(tr *ftl.Tracker) { s.tr = tr }

// MaxInvalid implements Source by delegating to the tracker's greedy scan.
func (s *TrackerSource) MaxInvalid(plane int) (Candidate, bool) {
	var pb flash.PlaneBlock
	var inv int
	var ok bool
	if plane == GlobalPlane {
		pb, inv, ok = s.tr.MaxGlobal()
	} else {
		pb, inv, ok = s.tr.MaxInPlane(plane)
	}
	if !ok {
		return Candidate{}, false
	}
	return Candidate{PB: pb, Valid: s.ppb - inv, Invalid: inv, Age: s.tr.Age(pb)}, true
}

// ForEach implements Source. Candidates with zero invalid pages are skipped,
// matching the tracker's greedy scan, which never yields them either.
func (s *TrackerSource) ForEach(plane int, fn func(Candidate) bool) {
	visit := func(pb flash.PlaneBlock, inv int, age int64) bool {
		return fn(Candidate{PB: pb, Valid: s.ppb - inv, Invalid: inv, Age: age})
	}
	if plane != GlobalPlane {
		s.tr.ForEachCandidate(plane, visit)
		return
	}
	stopped := false
	for p := 0; p < s.tr.Planes() && !stopped; p++ {
		s.tr.ForEachCandidate(p, func(pb flash.PlaneBlock, inv int, age int64) bool {
			if !visit(pb, inv, age) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// SliceSource is a Source over an explicit candidate list; the hybrid FTLs
// use it for their log-block lists, which live outside the tracker. The
// plane argument is ignored — a log list is already the relevant scope.
type SliceSource []Candidate

// MaxInvalid implements Source: most invalid pages, first listed wins ties.
func (s SliceSource) MaxInvalid(plane int) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range s {
		if c.Invalid < 1 {
			continue
		}
		if !found || c.Invalid > best.Invalid {
			found, best = true, c
		}
	}
	return best, found
}

// ForEach implements Source, visiting candidates in list order.
func (s SliceSource) ForEach(plane int, fn func(Candidate) bool) {
	for _, c := range s {
		if !fn(c) {
			return
		}
	}
}
