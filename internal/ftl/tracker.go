package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// Tracker indexes closed (fully written) blocks by invalid-page count so
// garbage collection can find "the block with the maximal number of invalid
// pages" (§III.C) in O(1) amortized instead of scanning every block. Victim
// picks are deterministic (LIFO within a bucket), keeping whole simulations
// reproducible.
type Tracker struct {
	geo     flash.Geometry
	invalid []int32 // invalid pages per block (dense index), live even while open
	inBkt   []int32 // position within its bucket, -1 if not a candidate
	buckets [][][]int32
	// buckets[plane][count] holds in-plane block ids of closed candidates
	maxCount []int // per plane: highest count whose bucket may be non-empty
	closeSeq []int64
	seq      int64 // monotone close counter; closeSeq[bi] records each block's
	// close order so age-aware victim policies (cost-benefit, FIFO) can rank
	// candidates without timestamps
}

// NewTracker returns a tracker with no candidates and all-zero counts.
func NewTracker(geo flash.Geometry) *Tracker {
	t := &Tracker{
		geo:      geo,
		invalid:  make([]int32, geo.TotalBlocks()),
		inBkt:    make([]int32, geo.TotalBlocks()),
		buckets:  make([][][]int32, geo.Planes()),
		maxCount: make([]int, geo.Planes()),
		closeSeq: make([]int64, geo.TotalBlocks()),
	}
	for i := range t.inBkt {
		t.inBkt[i] = -1
	}
	for p := range t.buckets {
		t.buckets[p] = make([][]int32, geo.PagesPerBlock+1)
	}
	return t
}

// Invalidated records that one page of pb became invalid (host update,
// translation-page supersession, or a deliberately wasted page).
func (t *Tracker) Invalidated(pb flash.PlaneBlock) {
	bi := t.geo.BlockIndex(pb)
	old := t.invalid[bi]
	t.invalid[bi] = old + 1
	if t.inBkt[bi] >= 0 {
		t.moveBucket(pb, int(old), int(old+1))
	}
}

// Close marks pb fully written: it becomes a garbage-collection candidate.
func (t *Tracker) Close(pb flash.PlaneBlock) {
	bi := t.geo.BlockIndex(pb)
	if t.inBkt[bi] >= 0 {
		panic(fmt.Sprintf("ftl: Tracker.Close of candidate %v", pb))
	}
	t.seq++
	t.closeSeq[bi] = t.seq
	t.addBucket(pb, int(t.invalid[bi]))
}

// Take removes pb from candidacy (it was chosen as a victim or re-opened).
func (t *Tracker) Take(pb flash.PlaneBlock) {
	bi := t.geo.BlockIndex(pb)
	if t.inBkt[bi] < 0 {
		panic(fmt.Sprintf("ftl: Tracker.Take of non-candidate %v", pb))
	}
	t.delBucket(pb, int(t.invalid[bi]))
}

// Erased resets pb's invalid count after a block erase.
func (t *Tracker) Erased(pb flash.PlaneBlock) {
	bi := t.geo.BlockIndex(pb)
	if t.inBkt[bi] >= 0 {
		panic(fmt.Sprintf("ftl: Tracker.Erased of candidate %v", pb))
	}
	t.invalid[bi] = 0
}

// Invalid returns the tracked invalid-page count of pb.
func (t *Tracker) Invalid(pb flash.PlaneBlock) int {
	return int(t.invalid[t.geo.BlockIndex(pb)])
}

// MaxInPlane returns the candidate with the most invalid pages on one plane.
// ok is false if the plane has no candidate with at least one invalid page.
func (t *Tracker) MaxInPlane(plane int) (pb flash.PlaneBlock, invalid int, ok bool) {
	bkts := t.buckets[plane]
	for c := t.maxCount[plane]; c >= 1; c-- {
		if n := len(bkts[c]); n > 0 {
			t.maxCount[plane] = c
			return flash.PlaneBlock{Plane: plane, Block: int(bkts[c][n-1])}, c, true
		}
	}
	t.maxCount[plane] = 0
	return flash.PlaneBlock{}, 0, false
}

// MaxGlobal returns the candidate with the most invalid pages device-wide,
// breaking ties toward lower plane numbers. ok is false if no candidate has
// an invalid page.
func (t *Tracker) MaxGlobal() (pb flash.PlaneBlock, invalid int, ok bool) {
	best := 0
	for plane := range t.buckets {
		cand, c, okP := t.MaxInPlane(plane)
		if okP && c > best {
			best, pb, ok = c, cand, true
		}
	}
	return pb, best, ok
}

// Planes returns the number of planes the tracker indexes.
func (t *Tracker) Planes() int { return len(t.buckets) }

// Age returns how long ago pb was closed, in close events: the number of
// blocks closed since pb (0 = most recently closed). Meaningful only for
// current candidates.
func (t *Tracker) Age(pb flash.PlaneBlock) int64 {
	return t.seq - t.closeSeq[t.geo.BlockIndex(pb)]
}

// ForEachCandidate calls fn for every candidate on one plane that has at
// least one invalid page (blocks with zero invalid pages are never victims,
// matching MaxInPlane). Iteration order is deterministic: descending invalid
// count, LIFO within a bucket — so the first visit is exactly MaxInPlane's
// pick. fn receives the block, its invalid count, and its close age.
func (t *Tracker) ForEachCandidate(plane int, fn func(pb flash.PlaneBlock, invalid int, age int64) bool) {
	bkts := t.buckets[plane]
	for c := len(bkts) - 1; c >= 1; c-- {
		bkt := bkts[c]
		for i := len(bkt) - 1; i >= 0; i-- {
			pb := flash.PlaneBlock{Plane: plane, Block: int(bkt[i])}
			if !fn(pb, c, t.Age(pb)) {
				return
			}
		}
	}
}

// TrackerState is a deep copy of a tracker, for checkpoint/fork.
type TrackerState struct {
	invalid  []int32
	inBkt    []int32
	buckets  [][][]int32
	maxCount []int
	closeSeq []int64
	seq      int64
}

// Snapshot captures the tracker's candidate index.
func (t *Tracker) Snapshot() TrackerState {
	s := TrackerState{
		invalid:  append([]int32(nil), t.invalid...),
		inBkt:    append([]int32(nil), t.inBkt...),
		buckets:  make([][][]int32, len(t.buckets)),
		maxCount: append([]int(nil), t.maxCount...),
		closeSeq: append([]int64(nil), t.closeSeq...),
		seq:      t.seq,
	}
	for p, bkts := range t.buckets {
		s.buckets[p] = make([][]int32, len(bkts))
		for c, bkt := range bkts {
			if len(bkt) > 0 {
				s.buckets[p][c] = append([]int32(nil), bkt...)
			}
		}
	}
	return s
}

// Restore rewinds the tracker to a snapshot of the same geometry.
func (t *Tracker) Restore(s TrackerState) {
	copy(t.invalid, s.invalid)
	copy(t.inBkt, s.inBkt)
	copy(t.maxCount, s.maxCount)
	copy(t.closeSeq, s.closeSeq)
	t.seq = s.seq
	for p, bkts := range s.buckets {
		for c, bkt := range bkts {
			t.buckets[p][c] = append(t.buckets[p][c][:0], bkt...)
		}
	}
}

func (t *Tracker) addBucket(pb flash.PlaneBlock, count int) {
	bkt := &t.buckets[pb.Plane][count]
	t.inBkt[t.geo.BlockIndex(pb)] = int32(len(*bkt))
	*bkt = append(*bkt, int32(pb.Block))
	if count > t.maxCount[pb.Plane] {
		t.maxCount[pb.Plane] = count
	}
}

func (t *Tracker) delBucket(pb flash.PlaneBlock, count int) {
	bi := t.geo.BlockIndex(pb)
	bkt := t.buckets[pb.Plane][count]
	pos := t.inBkt[bi]
	last := len(bkt) - 1
	moved := bkt[last]
	bkt[pos] = moved
	t.inBkt[t.geo.BlockIndex(flash.PlaneBlock{Plane: pb.Plane, Block: int(moved)})] = pos
	t.buckets[pb.Plane][count] = bkt[:last]
	t.inBkt[bi] = -1
}

func (t *Tracker) moveBucket(pb flash.PlaneBlock, from, to int) {
	t.delBucket(pb, from)
	t.addBucket(pb, to)
}
