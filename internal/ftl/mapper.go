package ftl

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Placer is the placement policy a page-mapping FTL plugs into the Mapper:
// it picks (and, if needed, garbage-collects to obtain) a destination page
// for the encoded logical page. DLOOP stripes by plane; DFTL appends to a
// global write point.
type Placer interface {
	// PlacePage returns a free physical page for the stored tag (an LPN or
	// an encoded translation-page number) and the earliest time the page can
	// accept the program, after any garbage collection the placement incurs.
	PlacePage(stored int64, ready sim.Time) (flash.PPN, sim.Time, error)
}

// Moved records one garbage-collection relocation for mapping redirection.
type Moved struct {
	Stored int64 // tag of the page content (LPN or encoded tvpn)
	New    flash.PPN
}

// MapperStats counts the address-translation overhead of a demand-paged
// mapping table.
type MapperStats struct {
	Evictions      int64 // CMT evictions
	DirtyEvictions int64 // evictions that forced a translation-page write-back
	TransReads     int64 // translation-page reads (fetch + read-modify-write)
	TransWrites    int64 // translation-page programs
	BatchCleaned   int64 // dirty mappings persisted by batched write-backs
	LazyRedirects  int64 // GC redirects of uncached mappings absorbed lazily (OOB-backed)
}

// Mapper implements the demand-paged page-level mapping shared by DLOOP and
// DFTL (§II.A, §III.D): the full table lives in flash as translation pages,
// located through the in-SRAM GTD; hot entries are cached in the CMT.
//
// Table is authoritative for simulation correctness; the CMT/GTD machinery
// exists to charge the flash traffic that a real controller's SRAM miss
// would cost.
type Mapper struct {
	dev    *flash.Device
	placer Placer

	Table []flash.PPN // lpn -> current ppn, InvalidPPN if never written
	CMT   *CMT
	GTD   []flash.PPN // tvpn -> ppn of its translation page, InvalidPPN if never persisted

	entriesPerTP int
	tracker      *Tracker // invalidation bookkeeping for superseded translation pages

	stats MapperStats
	rec   obs.Recorder // nil when observability is disabled
}

// NewMapper builds a Mapper exporting capacity logical pages, caching
// cmtEntries mappings in SRAM. Translation pages pack PageSize/8 entries
// (8 bytes per mapping entry, the figure DFTL uses).
func NewMapper(dev *flash.Device, placer Placer, tracker *Tracker, capacity LPN, cmtEntries int) (*Mapper, error) {
	per := dev.Geometry().PageSize / 8
	if per < 1 {
		return nil, fmt.Errorf("ftl: page size %d too small for translation entries", dev.Geometry().PageSize)
	}
	nTP := (int64(capacity) + int64(per) - 1) / int64(per)
	cmt, err := NewCMTForSpace(cmtEntries, per, capacity, int(nTP))
	if err != nil {
		return nil, err
	}
	m := &Mapper{
		dev:          dev,
		placer:       placer,
		Table:        make([]flash.PPN, capacity),
		CMT:          cmt,
		GTD:          make([]flash.PPN, nTP),
		entriesPerTP: per,
		tracker:      tracker,
	}
	for i := range m.Table {
		m.Table[i] = flash.InvalidPPN
	}
	for i := range m.GTD {
		m.GTD[i] = flash.InvalidPPN
	}
	return m, nil
}

// Stats returns the accumulated translation overhead counters.
func (m *Mapper) Stats() MapperStats { return m.stats }

// SetRecorder attaches (or, with nil, detaches) an observability recorder for
// CMT hit/miss/evict/write-back events.
func (m *Mapper) SetRecorder(r obs.Recorder) { m.rec = r }

// EntriesPerTP returns how many mapping entries one translation page holds.
func (m *Mapper) EntriesPerTP() int { return m.entriesPerTP }

// TVPN returns the translation-page number covering lpn.
func (m *Mapper) TVPN(lpn LPN) int64 { return int64(lpn) / int64(m.entriesPerTP) }

// TranslationPages returns the number of translation pages in the GTD.
func (m *Mapper) TranslationPages() int { return len(m.GTD) }

// Resolve ensures lpn's mapping is present in the CMT, charging any
// translation-page traffic a miss incurs (dirty-victim write-back, then
// fetch). It returns the time address translation completes.
func (m *Mapper) Resolve(lpn LPN, ready sim.Time) (sim.Time, error) {
	if _, ok := m.CMT.Get(lpn); ok {
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvCMTHit, ready)
		}
		return ready, nil
	}
	if m.rec != nil {
		m.rec.RecordEvent(obs.EvCMTMiss, ready)
	}
	t := ready
	victim, evicted := m.CMT.Insert(lpn, m.Table[lpn], false)
	if evicted {
		m.stats.Evictions++
		if m.rec != nil {
			m.rec.RecordEvent(obs.EvCMTEvict, t)
		}
		if victim.Dirty {
			m.stats.DirtyEvictions++
			var err error
			t, err = m.writeBack(victim.LPN, t)
			if err != nil {
				return 0, err
			}
			if m.rec != nil {
				m.rec.RecordEvent(obs.EvCMTWriteback, t)
			}
		}
	}
	// Fetch the mapping from its translation page, if one has ever been
	// persisted; a never-written region costs nothing.
	if tp := m.GTD[m.TVPN(lpn)]; tp != flash.InvalidPPN {
		end, err := m.dev.ReadPage(tp, t, flash.CauseMap)
		if err != nil {
			return 0, err
		}
		m.stats.TransReads++
		t = end
	}
	return t, nil
}

// writeBack performs the read-modify-write of the translation page covering
// lpn (§III.D lines 7-9: consult the GTD, read, update, re-write to a new
// physical location, update the GTD). The rewrite persists the current
// authoritative table, so it also absorbs any lazy GC redirects and batched
// dirty mappings covering the same page.
func (m *Mapper) writeBack(lpn LPN, ready sim.Time) (sim.Time, error) {
	tvpn := m.TVPN(lpn)
	t := ready
	old := m.GTD[tvpn]
	if old != flash.InvalidPPN {
		end, err := m.dev.ReadPage(old, t, flash.CauseMap)
		if err != nil {
			return 0, err
		}
		m.stats.TransReads++
		t = end
	}
	ppn, t, err := m.placer.PlacePage(EncodeTrans(tvpn), t)
	if err != nil {
		return 0, err
	}
	// Placement may have garbage-collected the plane and relocated (or
	// erased the block of) the very translation page we are superseding;
	// re-read its location before invalidating.
	old = m.GTD[tvpn]
	end, err := m.dev.WritePage(ppn, EncodeTrans(tvpn), t, flash.CauseMap)
	if err != nil {
		return 0, err
	}
	m.stats.TransWrites++
	if old != flash.InvalidPPN {
		if err := m.dev.Invalidate(old); err != nil {
			return 0, err
		}
		m.tracker.Invalidated(m.dev.Geometry().BlockOf(old))
	}
	m.GTD[tvpn] = ppn
	// DFTL's batch update: the rewrite persisted every cached dirty mapping
	// of this translation page, so clean them all.
	m.stats.BatchCleaned += int64(m.CMT.CleanPage(tvpn))
	return end, nil
}

// RecordWrite commits a host write: the table points at newPPN and the CMT
// entry (present after Resolve) becomes dirty. The superseded page, if any,
// is invalidated. It returns the old physical page or InvalidPPN.
func (m *Mapper) RecordWrite(lpn LPN, newPPN flash.PPN) (flash.PPN, error) {
	old := m.Table[lpn]
	m.Table[lpn] = newPPN
	if !m.CMT.Update(lpn, newPPN, true) {
		return flash.InvalidPPN, fmt.Errorf("ftl: RecordWrite of unresolved lpn %d", lpn)
	}
	if old != flash.InvalidPPN {
		if err := m.dev.Invalidate(old); err != nil {
			return flash.InvalidPPN, err
		}
		m.tracker.Invalidated(m.dev.Geometry().BlockOf(old))
	}
	return old, nil
}

// RedirectMoved updates mappings after garbage collection relocated pages.
// Relocated translation pages repoint the GTD; data pages whose mapping is
// cached are updated in the CMT (dirty, flushed at eviction). Uncached data
// pages update only the in-SRAM table: their on-flash translation page goes
// stale until its next write-back rewrites it wholesale. This is the lazy,
// OOB-backed scheme real controllers use — every physical page carries its
// logical number in the spare area (the device model stores it), so a stale
// translation entry is recoverable and need not be rewritten per move.
// Rewriting translation pages per GC move instead creates a feedback loop
// with gain above one (each move spawns a translation write, which consumes
// a page, which forces more GC) that collapses every configuration under
// sustained collection.
func (m *Mapper) RedirectMoved(moved []Moved, ready sim.Time) (sim.Time, error) {
	for _, mv := range moved {
		if IsTrans(mv.Stored) {
			m.GTD[DecodeTrans(mv.Stored)] = mv.New
			continue
		}
		lpn := LPN(mv.Stored)
		m.Table[lpn] = mv.New
		if !m.CMT.Update(lpn, mv.New, true) {
			m.stats.LazyRedirects++
		}
	}
	return ready, nil
}

// MapperState is a deep copy of a mapper's mutable state, for
// checkpoint/fork. The placer and tracker pointers are construction-time
// wiring, not state, and survive a restore untouched.
type MapperState struct {
	table []flash.PPN
	cmt   CMTState
	gtd   []flash.PPN
	stats MapperStats
}

// Snapshot captures the mapping table, CMT, GTD, and counters.
func (m *Mapper) Snapshot() MapperState {
	return MapperState{
		table: append([]flash.PPN(nil), m.Table...),
		cmt:   m.CMT.Snapshot(),
		gtd:   append([]flash.PPN(nil), m.GTD...),
		stats: m.stats,
	}
}

// Restore rewinds the mapper to a snapshot of the same capacity.
func (m *Mapper) Restore(s MapperState) {
	copy(m.Table, s.table)
	m.CMT.Restore(s.cmt)
	copy(m.GTD, s.gtd)
	m.stats = s.stats
}

// Retarget repoints the mapper's placer and invalidation tracker; recovery
// uses it after rebuilding those structures from an OOB scan.
func (m *Mapper) Retarget(placer Placer, tracker *Tracker) {
	m.placer = placer
	m.tracker = tracker
}
