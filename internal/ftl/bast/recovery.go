package bast

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
)

// NewRecovered rebuilds a BAST baseline from an existing device's out-of-band
// page tags after a simulated power loss.
//
// BAST keeps block roles (data block vs dedicated log block) in controller
// SRAM, and OOB tags alone cannot always reproduce them: a sequential log
// block is indistinguishable from a data block, and stale pages lose their
// tags when invalidated. Recovery therefore rebuilds a *consistent* state
// instead of the exact pre-crash one. Every occupied block's valid pages
// belong to exactly one logical block (BAST never mixes lbns within a block);
// a block whose valid pages all sit at their in-place offsets may serve as
// the lbn's data block, and the other block — if any — is adopted as its
// dedicated log. Lookups resolve identically either way because the device
// holds exactly one valid copy per logical page and data blocks accept
// in-place writes exactly as logs shadow them. Fully-stale blocks carry no
// owner anymore and are reclaimed outright, the way a real controller erases
// garbage found during its boot scan. If recovery adopts more log blocks than
// the configured budget, the next log write merges the surplus down through
// the normal eviction path.
func NewRecovered(dev *flash.Device, cfg Config) (*BAST, error) {
	f, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	// The scan validates the one-valid-copy-per-lpn invariant and collects
	// the erased blocks into the free pool; block roles are rebuilt below.
	st, err := ftl.ScanOOB(dev, f.capacity, 0)
	if err != nil {
		return nil, err
	}
	f.pool = st.Pool
	geo := f.geo
	ppb := int64(geo.PagesPerBlock)
	for plane := 0; plane < geo.Planes(); plane++ {
		for block := 0; block < geo.BlocksPerPlane; block++ {
			pb := flash.PlaneBlock{Plane: plane, Block: block}
			info := f.dev.Block(pb)
			if info.Written == 0 {
				continue // erased: already in the pool
			}
			first := geo.FirstPPN(pb)
			// Only valid pages still carry tags (invalidation clears them);
			// they name the block's owner lbn, and the in-place property
			// decides whether the block can serve as its data block.
			lbn := int64(-1)
			inPlace := true
			for p := 0; p < geo.PagesPerBlock; p++ {
				if f.dev.PageState(first+flash.PPN(p)) != flash.PageValid {
					continue
				}
				tag := f.dev.PageLPN(first + flash.PPN(p))
				if lbn < 0 {
					lbn = tag / ppb
				} else if tag/ppb != lbn {
					return nil, fmt.Errorf("bast: recovery found tags of logical blocks %d and %d in physical block %v", lbn, tag/ppb, pb)
				}
				if tag%ppb != int64(p) {
					inPlace = false
				}
			}
			if lbn < 0 {
				// Fully stale: no tag names an owner. Reclaim it now.
				if _, err := f.dev.Erase(pb, 0, flash.CauseGC); err != nil {
					return nil, err
				}
				f.pool.Put(pb)
				continue
			}
			if inPlace && f.dataBlock[lbn] < 0 {
				f.dataBlock[lbn] = geo.BlockIndex(pb)
				continue
			}
			if f.logs[lbn] != nil {
				return nil, fmt.Errorf("bast: recovery found two log blocks for logical block %d", lbn)
			}
			lb := &logBlock{lbn: lbn, pb: pb, next: info.NextWrite, pageFor: make([]int, ppb)}
			// seq (an in-order complete rewrite, the switch-merge trigger) is
			// only provable when every written page is still valid in place.
			lb.seq = inPlace && info.Invalid == 0 && info.Written == info.NextWrite
			for i := range lb.pageFor {
				lb.pageFor[i] = -1
			}
			for p := 0; p < geo.PagesPerBlock; p++ {
				if f.dev.PageState(first+flash.PPN(p)) != flash.PageValid {
					continue
				}
				lb.pageFor[f.dev.PageLPN(first+flash.PPN(p))%ppb] = p
			}
			f.logs[lbn] = lb
			f.nLogs++
			f.logOrder = append(f.logOrder, lbn)
		}
	}
	return f, nil
}
