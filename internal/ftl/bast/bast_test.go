package bast

import (
	"testing"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
		PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T, cfg Config) (*BAST, *flash.Device) {
	t.Helper()
	dev, err := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExtraPerPlane == 0 {
		cfg.ExtraPerPlane = 4
	}
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestNewValidation(t *testing.T) {
	dev, _ := flash.NewDevice(testGeo(), flash.DefaultTiming())
	if _, err := New(dev, Config{ExtraPerPlane: 0}); err == nil {
		t.Error("zero extra accepted")
	}
	if _, err := New(dev, Config{ExtraPerPlane: 1, LogBlocks: 100}); err == nil {
		t.Error("oversized log accepted")
	}
}

func TestDedicatedLogBlockPerLogicalBlock(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	var at sim.Time
	// Populate lbns 0 and 1 fully, then update both: each gets its own log.
	for lpn := ftl.LPN(0); lpn < 16; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	for _, lpn := range []ftl.LPN{3, 11} {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if f.nLogs != 2 {
		t.Fatalf("logs = %d, want 2 (one per logical block)", f.nLogs)
	}
	if f.logs[0].pb == f.logs[1].pb {
		t.Fatal("logical blocks share a log block")
	}
}

func TestLogSupersedesWithinBlock(t *testing.T) {
	f, dev := newTestFTL(t, Config{})
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// Update offset 3 three times: the log holds all three, only the last
	// is valid.
	var last flash.PPN
	for i := 0; i < 3; i++ {
		end, err := f.WritePage(3, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		last = f.Lookup(3)
	}
	if dev.PageState(last) != flash.PageValid || dev.PageLPN(last) != 3 {
		t.Fatal("latest log copy wrong")
	}
	lb := f.logs[0]
	if lb.next != 3 {
		t.Fatalf("log consumed %d pages, want 3", lb.next)
	}
	if dev.Block(lb.pb).Invalid != 2 {
		t.Fatalf("superseded log copies: %d invalid, want 2", dev.Block(lb.pb).Invalid)
	}
}

func TestSwitchMergeOnSequentialRewrite(t *testing.T) {
	f, _ := newTestFTL(t, Config{LogBlocks: 4})
	var at sim.Time
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// Full in-order rewrite fills the dedicated log sequentially; the merge
	// (forced by the next write) switches it in for free.
	for lpn := ftl.LPN(0); lpn < 8; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// One more update to lbn 0 forces the merge of its full log.
	if _, err := f.WritePage(0, at); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.SwitchMerges != 1 {
		t.Fatalf("SwitchMerges = %d, want 1", st.SwitchMerges)
	}
	if st.MergeCopies != 0 {
		t.Fatalf("switch merge copied %d pages", st.MergeCopies)
	}
}

func TestFullMergeAndThrashing(t *testing.T) {
	f, dev := newTestFTL(t, Config{LogBlocks: 4})
	var at sim.Time
	// Populate 12 logical blocks.
	for lpn := ftl.LPN(0); lpn < 96; lpn++ {
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	// One random update per logical block, round-robin: each wants its own
	// log block, so the 4-log budget thrashes — BAST's classic failure.
	for i := 0; i < 48; i++ {
		lbn := int64(i % 12)
		lpn := ftl.LPN(lbn*8 + int64(i%7) + 1)
		end, err := f.WritePage(lpn, at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
	}
	st := f.Stats()
	if st.FullMerges == 0 {
		t.Fatal("no full merges")
	}
	if st.Thrashes == 0 {
		t.Fatal("round-robin updates must thrash BAST's per-block logs")
	}
	if f.nLogs > 4 {
		t.Fatalf("log budget exceeded: %d", f.nLogs)
	}
	// Consistency.
	for lpn := ftl.LPN(0); lpn < 96; lpn++ {
		ppn := f.Lookup(lpn)
		if ppn == flash.InvalidPPN {
			t.Fatalf("lpn %d lost", lpn)
		}
		if dev.PageState(ppn) != flash.PageValid || dev.PageLPN(ppn) != int64(lpn) {
			t.Fatalf("lpn %d inconsistent", lpn)
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	if _, err := f.ReadPage(f.Capacity(), 0); err == nil {
		t.Error("read beyond capacity accepted")
	}
	if _, err := f.WritePage(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
	if f.Lookup(f.Capacity()) != flash.InvalidPPN {
		t.Error("Lookup beyond capacity")
	}
}

func TestUnwrittenReadIsFree(t *testing.T) {
	f, _ := newTestFTL(t, Config{})
	if end, err := f.ReadPage(42, 7); err != nil || end != 7 {
		t.Fatalf("unwritten read: %v %v", end, err)
	}
}
