package bast

import (
	"fmt"

	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// state is BAST's checkpoint. Log blocks are heap objects owned by the FTL,
// so each one is cloned — restoring must not hand the snapshot's logBlocks
// to the live FTL, which would let a forked run mutate the checkpoint.
type state struct {
	pool      ftl.FreeBlocksState
	dataBlock []int64
	logs      []*logBlock
	nLogs     int
	logOrder  []int64
	engine    gc.State
	stats     Stats
}

func cloneLog(l *logBlock) *logBlock {
	if l == nil {
		return nil
	}
	out := *l
	out.pageFor = append([]int(nil), l.pageFor...)
	return &out
}

// Snapshot implements ftl.Snapshotter.
func (f *BAST) Snapshot() any {
	s := &state{
		pool:      f.pool.Snapshot(),
		dataBlock: append([]int64(nil), f.dataBlock...),
		logs:      make([]*logBlock, len(f.logs)),
		nLogs:     f.nLogs,
		logOrder:  append([]int64(nil), f.logOrder...),
		engine:    f.engine.Snapshot(),
		stats:     f.stats,
	}
	for i, l := range f.logs {
		s.logs[i] = cloneLog(l)
	}
	return s
}

// Restore implements ftl.Snapshotter.
func (f *BAST) Restore(snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("bast: foreign snapshot %T", snap)
	}
	f.pool.Restore(s.pool)
	copy(f.dataBlock, s.dataBlock)
	for i, l := range s.logs {
		f.logs[i] = cloneLog(l)
	}
	f.nLogs = s.nLogs
	f.logOrder = append(f.logOrder[:0], s.logOrder...)
	f.engine.Restore(s.engine)
	f.stats = s.stats
	return nil
}
