// Package bast implements BAST (block-associative sector translation, Kim
// et al. 2002), the original log-block hybrid FTL that FAST (§II.A) was
// designed to improve on: every logical block that receives an update gets
// its own dedicated log block, and updates append to it in arrival order.
// When no log block is free, the oldest is merged back: a switch merge if
// it happens to hold all pages written sequentially, otherwise a full merge
// of its one logical block.
//
// BAST's weakness — the reason FAST exists — is log-block thrashing: with
// random writes spread over many logical blocks, each log block absorbs
// only a few updates before being evicted, so merges run at a fraction of
// log capacity ("block thrashing"). Including it alongside FAST lets the
// benchmarks show that lineage.
package bast

import (
	"fmt"

	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
	"dloop/internal/obs"
	"dloop/internal/sim"
)

// Config parameterizes BAST.
type Config struct {
	// ExtraPerPlane matches the over-provisioning of the other FTLs.
	ExtraPerPlane int
	// LogBlocks bounds the number of simultaneously open log blocks
	// (default: half the device's extra blocks, minimum 4 — the same
	// budget FAST gets).
	LogBlocks int
	// GCPolicy selects the log-block eviction policy (default "fifo", the
	// original BAST order; see gc.ParsePolicy for the alternatives).
	GCPolicy string
}

// Stats exposes BAST's merge counters.
type Stats struct {
	SwitchMerges int64
	FullMerges   int64
	MergeCopies  int64
	Thrashes     int64 // merges of log blocks holding fewer than 1/4 capacity
}

type logBlock struct {
	lbn  int64
	pb   flash.PlaneBlock
	next int // next free page (appends in arrival order)
	// pageFor[off] is the log page index currently holding offset off, or
	// -1; later appends of the same offset supersede earlier ones.
	pageFor []int
	seq     bool // pages written so far were offsets 0,1,2,... in order
}

// BAST is the baseline FTL. Not safe for concurrent use.
type BAST struct {
	dev      *flash.Device
	geo      flash.Geometry
	cfg      Config
	capacity ftl.LPN

	pool      *ftl.FreeBlocks
	dataBlock []int64     // lbn -> dense block index, -1 if none
	logs      []*logBlock // lbn -> its dedicated log block, nil if none
	nLogs     int         // open log blocks (non-nil entries of logs)
	logOrder  []int64     // lbns in log-allocation order (merge victims FIFO)

	engine *gc.Engine // merge moves and log-victim policy picks
	stats  Stats
	rec    obs.Recorder // nil when observability is disabled
}

// New builds a BAST baseline over dev.
func New(dev *flash.Device, cfg Config) (*BAST, error) {
	geo := dev.Geometry()
	if cfg.ExtraPerPlane < 1 || cfg.ExtraPerPlane >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("bast: bad ExtraPerPlane %d", cfg.ExtraPerPlane)
	}
	totalExtra := cfg.ExtraPerPlane * geo.Planes()
	if cfg.LogBlocks == 0 {
		cfg.LogBlocks = totalExtra / 2
	}
	if cfg.LogBlocks < 4 {
		cfg.LogBlocks = 4
	}
	if cfg.LogBlocks > totalExtra-2 {
		return nil, fmt.Errorf("bast: LogBlocks %d leaves no merge slack in %d extra blocks", cfg.LogBlocks, totalExtra)
	}
	capacity := ftl.ExportedPages(geo, cfg.ExtraPerPlane)
	f := &BAST{
		dev:       dev,
		geo:       geo,
		cfg:       cfg,
		capacity:  capacity,
		pool:      ftl.NewFreeBlocks(geo),
		dataBlock: make([]int64, int64(capacity)/int64(geo.PagesPerBlock)),
	}
	f.logs = make([]*logBlock, len(f.dataBlock))
	for i := range f.dataBlock {
		f.dataBlock[i] = -1
	}
	name := cfg.GCPolicy
	if name == "" {
		name = gc.DefaultLogPolicy
	}
	policy, err := gc.ParsePolicy(name, geo.PagesPerBlock)
	if err != nil {
		return nil, err
	}
	// BAST keeps its own merge logic; the engine supplies the eviction
	// policy, the external move primitive, and the unified GC counters.
	f.engine = gc.NewEngine(gc.Config{Dev: dev, Policy: policy})
	return f, nil
}

// Name implements ftl.FTL.
func (f *BAST) Name() string { return "BAST" }

// Capacity implements ftl.FTL.
func (f *BAST) Capacity() ftl.LPN { return f.capacity }

// Stats returns BAST's merge counters.
func (f *BAST) Stats() Stats { return f.stats }

// GCPolicyName reports the log-block eviction policy in effect.
func (f *BAST) GCPolicyName() string { return f.engine.PolicyName() }

// SetRecorder implements ftl.Observable: merge events and spans flow from
// here. BAST keeps its maps in SRAM, so there is no CMT traffic to report.
func (f *BAST) SetRecorder(r obs.Recorder) {
	f.rec = r
	f.engine.SetRecorder(r)
}

func (f *BAST) split(lpn ftl.LPN) (lbn int64, off int) {
	return int64(lpn) / int64(f.geo.PagesPerBlock), int(int64(lpn) % int64(f.geo.PagesPerBlock))
}

func (f *BAST) dataPPN(lbn int64, off int) flash.PPN {
	return flash.PPN(f.dataBlock[lbn]*int64(f.geo.PagesPerBlock) + int64(off))
}

// Lookup returns the physical page currently holding lpn, or InvalidPPN.
func (f *BAST) Lookup(lpn ftl.LPN) flash.PPN {
	if ftl.CheckLPN(lpn, f.capacity) != nil {
		return flash.InvalidPPN
	}
	return f.lookup(lpn)
}

func (f *BAST) lookup(lpn ftl.LPN) flash.PPN {
	lbn, off := f.split(lpn)
	if lb := f.logs[lbn]; lb != nil && lb.pageFor[off] >= 0 {
		return f.geo.PPNOf(lb.pb.Plane, lb.pb.Block, lb.pageFor[off])
	}
	if f.dataBlock[lbn] < 0 {
		return flash.InvalidPPN
	}
	if ppn := f.dataPPN(lbn, off); f.dev.PageState(ppn) == flash.PageValid {
		return ppn
	}
	return flash.InvalidPPN
}

// ReadPage implements ftl.FTL.
func (f *BAST) ReadPage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	ppn := f.lookup(lpn)
	if ppn == flash.InvalidPPN {
		return ready, nil
	}
	return f.dev.ReadPage(ppn, ready, flash.CauseHost)
}

// WritePage implements ftl.FTL.
func (f *BAST) WritePage(lpn ftl.LPN, ready sim.Time) (sim.Time, error) {
	if err := ftl.CheckLPN(lpn, f.capacity); err != nil {
		return 0, err
	}
	lbn, off := f.split(lpn)

	if f.dataBlock[lbn] < 0 {
		pb, err := f.alloc()
		if err != nil {
			return 0, err
		}
		f.dataBlock[lbn] = f.geo.BlockIndex(pb)
	}
	// In-place program if the data block's slot is erased and no newer log
	// copy exists.
	if lb := f.logs[lbn]; lb == nil || lb.pageFor[off] < 0 {
		if ppn := f.dataPPN(lbn, off); f.dev.PageState(ppn) == flash.PageFree {
			return f.dev.WritePage(ppn, int64(lpn), ready, flash.CauseHost)
		}
	}
	return f.logWrite(lpn, lbn, off, ready)
}

func (f *BAST) logWrite(lpn ftl.LPN, lbn int64, off int, ready sim.Time) (sim.Time, error) {
	t := ready
	lb := f.logs[lbn]
	if lb != nil && lb.next >= f.geo.PagesPerBlock {
		// This block's own log is full: merge it, then retry placement.
		var err error
		t, err = f.merge(lbn, t)
		if err != nil {
			return 0, err
		}
		return f.WritePage(lpn, t)
	}
	if lb == nil {
		// Need a fresh dedicated log block; evict one chosen by the victim
		// policy (the default fifo picks the oldest, BAST's original order)
		// if at budget.
		for f.nLogs >= f.cfg.LogBlocks {
			var err error
			t, err = f.merge(f.pickEvict(), t)
			if err != nil {
				return 0, err
			}
		}
		pb, err := f.alloc()
		if err != nil {
			return 0, err
		}
		lb = &logBlock{lbn: lbn, pb: pb, pageFor: make([]int, f.geo.PagesPerBlock), seq: true}
		for i := range lb.pageFor {
			lb.pageFor[i] = -1
		}
		f.logs[lbn] = lb
		f.nLogs++
		f.logOrder = append(f.logOrder, lbn)
	}

	old := f.lookup(lpn)
	dst := f.geo.PPNOf(lb.pb.Plane, lb.pb.Block, lb.next)
	end, err := f.dev.WritePage(dst, int64(lpn), t, flash.CauseHost)
	if err != nil {
		return 0, err
	}
	if lb.seq && off != lb.next {
		lb.seq = false
	}
	lb.pageFor[off] = lb.next
	lb.next++
	if old != flash.InvalidPPN {
		if err := f.dev.Invalidate(old); err != nil {
			return 0, err
		}
	}
	return end, nil
}

func (f *BAST) alloc() (flash.PlaneBlock, error) {
	pb, ok := f.pool.TakeAny()
	if !ok {
		return flash.PlaneBlock{}, fmt.Errorf("bast: device exhausted (capacity overcommitted)")
	}
	return pb, nil
}

// pickEvict chooses which open log block to merge when the budget is
// exhausted, by the configured victim policy over the open-log list.
func (f *BAST) pickEvict() int64 {
	cands := make([]gc.Candidate, len(f.logOrder))
	for i, lbn := range f.logOrder {
		lb := f.logs[lbn]
		info := f.dev.Block(lb.pb)
		cands[i] = gc.Candidate{
			PB:      lb.pb,
			Valid:   info.Valid,
			Invalid: info.Invalid,
			Age:     int64(len(f.logOrder) - i), // allocation order: oldest first
			Key:     lbn,
		}
	}
	return gc.PickLogVictim(f.engine.Policy(), cands).Key
}

// merge retires lbn's log block: a switch merge when it is a complete
// in-order rewrite, otherwise a full merge into a fresh block.
func (f *BAST) merge(lbn int64, ready sim.Time) (sim.Time, error) {
	lb := f.logs[lbn]
	if lb == nil {
		return ready, nil
	}
	if lb.next*4 < f.geo.PagesPerBlock {
		f.stats.Thrashes++ // the classic BAST pathology
	}
	f.logs[lbn] = nil
	f.nLogs--
	for i, l := range f.logOrder {
		if l == lbn {
			f.logOrder = append(f.logOrder[:i], f.logOrder[i+1:]...)
			break
		}
	}
	t := ready
	info := f.dev.Block(lb.pb)
	f.engine.RecordVictim(info.Valid, ready)

	if lb.seq && lb.next == f.geo.PagesPerBlock && info.Invalid == 0 {
		// Switch merge: the log block is a perfect sequential rewrite.
		t, err := f.eraseDataBlock(lbn, t)
		if err != nil {
			return 0, err
		}
		f.dataBlock[lbn] = f.geo.BlockIndex(lb.pb)
		f.stats.SwitchMerges++
		if f.rec != nil {
			f.rec.RecordEvent(obs.EvSwitchMerge, t)
			f.rec.RecordSpan(obs.SpanMerge, int32(lb.pb.Plane), ready, t)
		}
		return t, nil
	}

	// Full merge: gather every valid page of lbn into a fresh block.
	c, err := f.alloc()
	if err != nil {
		return 0, err
	}
	for off := 0; off < f.geo.PagesPerBlock; off++ {
		lpn := ftl.LPN(lbn*int64(f.geo.PagesPerBlock) + int64(off))
		src := f.lookupMerging(lbn, lb, off)
		if src == flash.InvalidPPN {
			continue
		}
		// The copy runs through the GC engine so the unified relocation
		// counters cover merge traffic (BAST does not use copy-back).
		dst := f.geo.PPNOf(c.Plane, c.Block, off)
		t, err = f.engine.MoveExternal(src, dst, int64(lpn), t)
		if err != nil {
			return 0, err
		}
		f.stats.MergeCopies++
	}
	t, err = f.eraseDataBlock(lbn, t)
	if err != nil {
		return 0, err
	}
	f.dataBlock[lbn] = f.geo.BlockIndex(c)
	end, err := f.dev.Erase(lb.pb, t, flash.CauseGC)
	if err != nil {
		return 0, err
	}
	f.pool.Put(lb.pb)
	f.stats.FullMerges++
	if f.rec != nil {
		f.rec.RecordEvent(obs.EvFullMerge, end)
		f.rec.RecordSpan(obs.SpanMerge, int32(lb.pb.Plane), ready, end)
	}
	return end, nil
}

// lookupMerging resolves lpn while lbn's log block has already been detached
// from the map.
func (f *BAST) lookupMerging(lbn int64, lb *logBlock, off int) flash.PPN {
	if lb.pageFor[off] >= 0 {
		return f.geo.PPNOf(lb.pb.Plane, lb.pb.Block, lb.pageFor[off])
	}
	if f.dataBlock[lbn] < 0 {
		return flash.InvalidPPN
	}
	if ppn := f.dataPPN(lbn, off); f.dev.PageState(ppn) == flash.PageValid {
		return ppn
	}
	return flash.InvalidPPN
}

func (f *BAST) eraseDataBlock(lbn int64, ready sim.Time) (sim.Time, error) {
	if f.dataBlock[lbn] < 0 {
		return ready, nil
	}
	pb := flash.PlaneBlock{
		Plane: int(f.dataBlock[lbn] / int64(f.geo.BlocksPerPlane)),
		Block: int(f.dataBlock[lbn] % int64(f.geo.BlocksPerPlane)),
	}
	f.dataBlock[lbn] = -1
	end, err := f.dev.Erase(pb, ready, flash.CauseGC)
	if err != nil {
		return 0, err
	}
	f.pool.Put(pb)
	return end, nil
}
