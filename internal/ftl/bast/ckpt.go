package bast

import (
	"fmt"

	"dloop/internal/ckpt"
	"dloop/internal/flash"
	"dloop/internal/ftl"
	"dloop/internal/ftl/gc"
)

// EncodeState appends a BAST Snapshot (the any returned by Snapshot) to w.
func EncodeState(w *ckpt.Writer, snap any) error {
	s, ok := snap.(*state)
	if !ok {
		return fmt.Errorf("bast: foreign snapshot %T", snap)
	}
	ftl.EncodeFreeBlocksState(w, s.pool)
	w.I64s(s.dataBlock)
	w.U32(uint32(len(s.logs)))
	for _, l := range s.logs {
		w.Bool(l != nil)
		if l == nil {
			continue
		}
		w.I64(l.lbn)
		w.Int(l.pb.Plane)
		w.Int(l.pb.Block)
		w.Int(l.next)
		w.Ints(l.pageFor)
		w.Bool(l.seq)
	}
	w.Int(s.nLogs)
	w.I64s(s.logOrder)
	gc.EncodeState(w, s.engine)
	w.I64(s.stats.SwitchMerges)
	w.I64(s.stats.FullMerges)
	w.I64(s.stats.MergeCopies)
	w.I64(s.stats.Thrashes)
	return nil
}

// DecodeState reads a snapshot written by EncodeState, in the form
// BAST.Restore accepts.
func DecodeState(r *ckpt.Reader) any {
	s := &state{
		pool:      ftl.DecodeFreeBlocksState(r),
		dataBlock: r.I64s(),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	s.logs = make([]*logBlock, n)
	for i := range s.logs {
		if !r.Bool() {
			continue
		}
		s.logs[i] = &logBlock{
			lbn:     r.I64(),
			pb:      flash.PlaneBlock{Plane: r.Int(), Block: r.Int()},
			next:    r.Int(),
			pageFor: r.Ints(),
			seq:     r.Bool(),
		}
	}
	s.nLogs = r.Int()
	s.logOrder = r.I64s()
	s.engine = gc.DecodeState(r)
	s.stats = Stats{
		SwitchMerges: r.I64(),
		FullMerges:   r.I64(),
		MergeCopies:  r.I64(),
		Thrashes:     r.I64(),
	}
	return s
}
