package ftl

import (
	"math/rand"
	"testing"

	"dloop/internal/flash"
)

// TestTrackerModelProperty drives the tracker with random legal operations
// and cross-checks every answer against a naive model.
func TestTrackerModelProperty(t *testing.T) {
	geo := testGeo()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker(geo)
		type state struct {
			invalid   int
			candidate bool
		}
		model := make(map[flash.PlaneBlock]*state)
		for p := 0; p < geo.Planes(); p++ {
			for b := 0; b < geo.BlocksPerPlane; b++ {
				model[flash.PlaneBlock{Plane: p, Block: b}] = &state{}
			}
		}
		blocks := make([]flash.PlaneBlock, 0, len(model))
		for pb := range model {
			blocks = append(blocks, pb)
		}
		for step := 0; step < 3000; step++ {
			pb := blocks[rng.Intn(len(blocks))]
			st := model[pb]
			switch rng.Intn(5) {
			case 0:
				if st.invalid < geo.PagesPerBlock {
					tr.Invalidated(pb)
					st.invalid++
				}
			case 1:
				if !st.candidate {
					tr.Close(pb)
					st.candidate = true
				}
			case 2:
				if st.candidate {
					tr.Take(pb)
					st.candidate = false
				}
			case 3:
				if !st.candidate {
					tr.Erased(pb)
					st.invalid = 0
				}
			case 4:
				plane := pb.Plane
				got, gotInv, ok := tr.MaxInPlane(plane)
				wantInv := 0
				for b := 0; b < geo.BlocksPerPlane; b++ {
					s := model[flash.PlaneBlock{Plane: plane, Block: b}]
					if s.candidate && s.invalid > wantInv {
						wantInv = s.invalid
					}
				}
				if (wantInv > 0) != ok {
					t.Fatalf("seed %d step %d: MaxInPlane ok=%v want %v", seed, step, ok, wantInv > 0)
				}
				if ok {
					if gotInv != wantInv {
						t.Fatalf("seed %d step %d: MaxInPlane inv=%d want %d", seed, step, gotInv, wantInv)
					}
					if s := model[got]; !s.candidate || s.invalid != wantInv {
						t.Fatalf("seed %d step %d: MaxInPlane returned %v (cand=%v inv=%d), want inv=%d",
							seed, step, got, s.candidate, s.invalid, wantInv)
					}
					if tr.Invalid(got) != wantInv {
						t.Fatalf("seed %d step %d: tracker.Invalid(%v)=%d, model %d",
							seed, step, got, tr.Invalid(got), wantInv)
					}
				}
			}
		}
	}
}
