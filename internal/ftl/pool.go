package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// FreeBlocks tracks the erased blocks of a device, grouped per plane. DLOOP
// maintains a pool per plane (§III.C); DFTL and FAST draw from the device
// globally in plane-major order, which is what concentrates their allocation
// on low-numbered planes (§V.B's explanation of DFTL's TPC-C collapse).
type FreeBlocks struct {
	perPlane [][]int // free in-plane block indices, ascending (used as a stack from the front)
	total    int
}

// NewFreeBlocks returns a pool containing every block of the geometry, all
// free (a freshly erased device).
func NewFreeBlocks(geo flash.Geometry) *FreeBlocks {
	f := &FreeBlocks{perPlane: make([][]int, geo.Planes())}
	for p := range f.perPlane {
		blocks := make([]int, geo.BlocksPerPlane)
		for b := range blocks {
			blocks[b] = b
		}
		f.perPlane[p] = blocks
	}
	f.total = geo.Planes() * geo.BlocksPerPlane
	return f
}

// Total returns the number of free blocks device-wide.
func (f *FreeBlocks) Total() int { return f.total }

// InPlane returns the number of free blocks on one plane.
func (f *FreeBlocks) InPlane(plane int) int { return len(f.perPlane[plane]) }

// TakeFromPlane removes and returns the lowest-numbered free block of the
// given plane. ok is false if the plane has none.
func (f *FreeBlocks) TakeFromPlane(plane int) (pb flash.PlaneBlock, ok bool) {
	blocks := f.perPlane[plane]
	if len(blocks) == 0 {
		return flash.PlaneBlock{}, false
	}
	b := blocks[0]
	f.perPlane[plane] = blocks[1:]
	f.total--
	return flash.PlaneBlock{Plane: plane, Block: b}, true
}

// TakeAny removes and returns a free block in plane-major order: the
// lowest-numbered plane that has one. ok is false if the device has none.
func (f *FreeBlocks) TakeAny() (pb flash.PlaneBlock, ok bool) {
	for plane := range f.perPlane {
		if pb, ok := f.TakeFromPlane(plane); ok {
			return pb, true
		}
	}
	return flash.PlaneBlock{}, false
}

// Put returns an erased block to its plane's pool.
func (f *FreeBlocks) Put(pb flash.PlaneBlock) {
	f.perPlane[pb.Plane] = append(f.perPlane[pb.Plane], pb.Block)
	f.total++
}

// FreeBlocksState is a deep copy of a pool, for checkpoint/fork.
type FreeBlocksState struct {
	perPlane [][]int
	total    int
}

// Snapshot captures the pool's contents.
func (f *FreeBlocks) Snapshot() FreeBlocksState {
	s := FreeBlocksState{perPlane: make([][]int, len(f.perPlane)), total: f.total}
	for p, blocks := range f.perPlane {
		s.perPlane[p] = append([]int(nil), blocks...)
	}
	return s
}

// Restore rewinds the pool to a snapshot of the same geometry. The per-plane
// slices are re-copied (TakeFromPlane re-slices from the front, so the live
// slices cannot be reused in place).
func (f *FreeBlocks) Restore(s FreeBlocksState) {
	for p, blocks := range s.perPlane {
		f.perPlane[p] = append([]int(nil), blocks...)
	}
	f.total = s.total
}

func (f *FreeBlocks) String() string {
	return fmt.Sprintf("free blocks: %d over %d planes", f.total, len(f.perPlane))
}
