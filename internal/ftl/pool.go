package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// FreeBlocks tracks the erased blocks of a device, grouped per plane. DLOOP
// maintains a pool per plane (§III.C); DFTL and FAST draw from the device
// globally in plane-major order, which is what concentrates their allocation
// on low-numbered planes (§V.B's explanation of DFTL's TPC-C collapse).
//
// Each plane's pool is a FIFO queue (blocks hand out in the order they were
// freed, starting from block 0 on a fresh device) backed by a fixed circular
// buffer: a plane can never hold more than BlocksPerPlane free blocks, so
// the buffer never grows and sustained take/put churn under garbage
// collection allocates nothing.
type FreeBlocks struct {
	planes []planeQueue
	total  int
}

// planeQueue is one plane's FIFO of free in-plane block indices.
type planeQueue struct {
	buf  []int
	head int // index of the front element
	n    int // queued count
}

func (q *planeQueue) take() int {
	b := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return b
}

func (q *planeQueue) put(b int) {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = b
	q.n++
}

// NewFreeBlocks returns a pool containing every block of the geometry, all
// free (a freshly erased device).
func NewFreeBlocks(geo flash.Geometry) *FreeBlocks {
	f := &FreeBlocks{planes: make([]planeQueue, geo.Planes())}
	for p := range f.planes {
		blocks := make([]int, geo.BlocksPerPlane)
		for b := range blocks {
			blocks[b] = b
		}
		f.planes[p] = planeQueue{buf: blocks, n: geo.BlocksPerPlane}
	}
	f.total = geo.Planes() * geo.BlocksPerPlane
	return f
}

// Total returns the number of free blocks device-wide.
func (f *FreeBlocks) Total() int { return f.total }

// InPlane returns the number of free blocks on one plane.
func (f *FreeBlocks) InPlane(plane int) int { return f.planes[plane].n }

// TakeFromPlane removes and returns the longest-free block of the given
// plane. ok is false if the plane has none.
func (f *FreeBlocks) TakeFromPlane(plane int) (pb flash.PlaneBlock, ok bool) {
	q := &f.planes[plane]
	if q.n == 0 {
		return flash.PlaneBlock{}, false
	}
	f.total--
	return flash.PlaneBlock{Plane: plane, Block: q.take()}, true
}

// TakeAny removes and returns a free block in plane-major order: the
// lowest-numbered plane that has one. ok is false if the device has none.
func (f *FreeBlocks) TakeAny() (pb flash.PlaneBlock, ok bool) {
	for plane := range f.planes {
		if pb, ok := f.TakeFromPlane(plane); ok {
			return pb, true
		}
	}
	return flash.PlaneBlock{}, false
}

// Put returns an erased block to the back of its plane's queue.
func (f *FreeBlocks) Put(pb flash.PlaneBlock) {
	f.planes[pb.Plane].put(pb.Block)
	f.total++
}

// FreeBlocksState is a deep copy of a pool, for checkpoint/fork. Contents
// are stored linearized in queue order, so the state is ring-layout
// independent.
type FreeBlocksState struct {
	perPlane [][]int
	total    int
}

// Snapshot captures the pool's contents.
func (f *FreeBlocks) Snapshot() FreeBlocksState {
	s := FreeBlocksState{perPlane: make([][]int, len(f.planes)), total: f.total}
	for p := range f.planes {
		q := &f.planes[p]
		blocks := make([]int, q.n)
		for i := 0; i < q.n; i++ {
			j := q.head + i
			if j >= len(q.buf) {
				j -= len(q.buf)
			}
			blocks[i] = q.buf[j]
		}
		s.perPlane[p] = blocks
	}
	return s
}

// Restore rewinds the pool to a snapshot of the same geometry, reusing the
// live ring buffers.
func (f *FreeBlocks) Restore(s FreeBlocksState) {
	for p, blocks := range s.perPlane {
		q := &f.planes[p]
		q.head = 0
		q.n = len(blocks)
		copy(q.buf, blocks)
	}
	f.total = s.total
}

func (f *FreeBlocks) String() string {
	return fmt.Sprintf("free blocks: %d over %d planes", f.total, len(f.planes))
}
