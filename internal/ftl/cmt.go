package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// CMT is the Cached Mapping Table: the small SRAM cache of hot
// logical-to-physical mappings that DFTL introduced and DLOOP reuses
// (§III.D, algorithm line 6: "select a victim entry for eviction using
// segmented LRU").
//
// The segmented LRU keeps a probationary segment for entries seen once and a
// protected segment for entries hit again; victims come from the
// probationary tail, so scan-like bursts cannot flush the hot set.
//
// The cache also indexes dirty entries by translation page, supporting
// DFTL's batch-update optimization: when a dirty victim forces a
// translation-page write-back, every other dirty mapping belonging to the
// same translation page is written back (and cleaned) in the same
// read-modify-write.
type CMT struct {
	capacity  int
	protCap   int // capacity of the protected segment
	epp       int // mapping entries per translation page
	entries   map[LPN]*cmtEntry
	probation cmtList // MRU at head
	protected cmtList // MRU at head
	dirtyByTP map[int64]map[LPN]struct{}

	hits, misses int64
}

// CMTEntry is the externally visible form of a cache entry.
type CMTEntry struct {
	LPN   LPN
	PPN   flash.PPN
	Dirty bool
}

type cmtEntry struct {
	lpn        LPN
	ppn        flash.PPN
	dirty      bool
	protected  bool
	prev, next *cmtEntry
}

type cmtList struct {
	head, tail *cmtEntry
	n          int
}

func (l *cmtList) pushFront(e *cmtEntry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

func (l *cmtList) remove(e *cmtEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// NewCMT returns a cache holding at most capacity entries, with the
// protected segment getting half. entriesPerPage is the number of mapping
// entries per translation page, used to group dirty entries for batched
// write-back. Capacity must be at least 2 and entriesPerPage at least 1.
func NewCMT(capacity, entriesPerPage int) (*CMT, error) {
	if capacity < 2 {
		return nil, fmt.Errorf("ftl: CMT capacity %d too small", capacity)
	}
	if entriesPerPage < 1 {
		return nil, fmt.Errorf("ftl: entries per translation page %d too small", entriesPerPage)
	}
	return &CMT{
		capacity:  capacity,
		protCap:   capacity / 2,
		epp:       entriesPerPage,
		entries:   make(map[LPN]*cmtEntry, capacity),
		dirtyByTP: make(map[int64]map[LPN]struct{}),
	}, nil
}

// Len returns the number of cached entries.
func (c *CMT) Len() int { return len(c.entries) }

// Capacity returns the maximum number of entries.
func (c *CMT) Capacity() int { return c.capacity }

// HitRate returns the fraction of Get calls that hit, and the totals.
func (c *CMT) HitRate() (rate float64, hits, misses int64) {
	if c.hits+c.misses == 0 {
		return 0, 0, 0
	}
	return float64(c.hits) / float64(c.hits+c.misses), c.hits, c.misses
}

func (c *CMT) tvpn(lpn LPN) int64 { return int64(lpn) / int64(c.epp) }

func (c *CMT) markDirty(lpn LPN) {
	tp := c.tvpn(lpn)
	set, ok := c.dirtyByTP[tp]
	if !ok {
		set = make(map[LPN]struct{})
		c.dirtyByTP[tp] = set
	}
	set[lpn] = struct{}{}
}

func (c *CMT) unmarkDirty(lpn LPN) {
	tp := c.tvpn(lpn)
	if set, ok := c.dirtyByTP[tp]; ok {
		delete(set, lpn)
		if len(set) == 0 {
			delete(c.dirtyByTP, tp)
		}
	}
}

// Get looks up a mapping, updating recency and segment membership on a hit.
func (c *CMT) Get(lpn LPN) (flash.PPN, bool) {
	e, ok := c.entries[lpn]
	if !ok {
		c.misses++
		return flash.InvalidPPN, false
	}
	c.hits++
	c.touch(e)
	return e.ppn, true
}

// Contains reports whether a mapping is cached without perturbing recency or
// hit statistics (used by garbage collection).
func (c *CMT) Contains(lpn LPN) bool {
	_, ok := c.entries[lpn]
	return ok
}

func (c *CMT) touch(e *cmtEntry) {
	if e.protected {
		c.protected.remove(e)
		c.protected.pushFront(e)
		return
	}
	// Promote probation -> protected; demote protected LRU if over capacity.
	c.probation.remove(e)
	e.protected = true
	c.protected.pushFront(e)
	for c.protected.n > c.protCap {
		lru := c.protected.tail
		c.protected.remove(lru)
		lru.protected = false
		c.probation.pushFront(lru)
	}
}

// Insert adds a mapping that is not currently cached. If the cache is full it
// evicts the segmented-LRU victim and returns it with evicted=true; the
// caller must write the victim back to its translation page if it is dirty.
func (c *CMT) Insert(lpn LPN, ppn flash.PPN, dirty bool) (victim CMTEntry, evicted bool) {
	if _, ok := c.entries[lpn]; ok {
		panic(fmt.Sprintf("ftl: CMT.Insert of cached lpn %d", lpn))
	}
	if len(c.entries) >= c.capacity {
		victim, evicted = c.evict()
	}
	e := &cmtEntry{lpn: lpn, ppn: ppn, dirty: dirty}
	c.entries[lpn] = e
	c.probation.pushFront(e)
	if dirty {
		c.markDirty(lpn)
	}
	return victim, evicted
}

func (c *CMT) evict() (CMTEntry, bool) {
	var e *cmtEntry
	if c.probation.tail != nil {
		e = c.probation.tail
		c.probation.remove(e)
	} else if c.protected.tail != nil {
		e = c.protected.tail
		c.protected.remove(e)
	} else {
		return CMTEntry{}, false
	}
	delete(c.entries, e.lpn)
	if e.dirty {
		c.unmarkDirty(e.lpn)
	}
	return CMTEntry{LPN: e.lpn, PPN: e.ppn, Dirty: e.dirty}, true
}

// Update rewrites the PPN of a cached mapping and ORs in dirty. It reports
// whether the entry was present.
func (c *CMT) Update(lpn LPN, ppn flash.PPN, dirty bool) bool {
	e, ok := c.entries[lpn]
	if !ok {
		return false
	}
	e.ppn = ppn
	if dirty && !e.dirty {
		e.dirty = true
		c.markDirty(lpn)
	}
	return true
}

// DirtyInPage returns how many cached dirty mappings belong to the
// translation page tvpn.
func (c *CMT) DirtyInPage(tvpn int64) int { return len(c.dirtyByTP[tvpn]) }

// CleanPage marks every cached dirty mapping of translation page tvpn clean
// and returns how many there were. Mapper.writeBack calls it after the
// read-modify-write that persisted them all at once (DFTL's batch update).
func (c *CMT) CleanPage(tvpn int64) int {
	set := c.dirtyByTP[tvpn]
	n := len(set)
	for lpn := range set {
		c.entries[lpn].dirty = false
	}
	delete(c.dirtyByTP, tvpn)
	return n
}
