package ftl

import (
	"fmt"

	"dloop/internal/flash"
)

// CMT is the Cached Mapping Table: the small SRAM cache of hot
// logical-to-physical mappings that DFTL introduced and DLOOP reuses
// (§III.D, algorithm line 6: "select a victim entry for eviction using
// segmented LRU").
//
// The segmented LRU keeps a probationary segment for entries seen once and a
// protected segment for entries hit again; victims come from the
// probationary tail, so scan-like bursts cannot flush the hot set.
//
// The cache also indexes dirty entries by translation page, supporting
// DFTL's batch-update optimization: when a dirty victim forces a
// translation-page write-back, every other dirty mapping belonging to the
// same translation page is written back (and cleaned) in the same
// read-modify-write.
//
// Entries live in a slab of values addressed by int32 handles (0 is the nil
// handle), recycled through a free list, so the cache performs no per-entry
// heap allocation in steady state. Recency lists and the per-translation-page
// dirty index are intrusive: each entry carries its own links, and dirty
// membership costs one list splice plus a counter update instead of a
// map-of-maps insertion.
type CMT struct {
	capacity int
	protCap  int // capacity of the protected segment
	epp      int // mapping entries per translation page
	n        int // cached entries

	slab     []cmtEntry // 1-based; slab[0] is the nil sentinel
	freeHead int32      // free-list head, linked through cmtEntry.next

	// Exactly one of the two lookup indexes is active: dense maps the whole
	// logical space to handles (O(1), no hashing) when the space size is
	// known at build time; index is the fallback for callers that size only
	// the cache.
	dense []int32
	index map[LPN]int32

	probation cmtList // MRU at head
	protected cmtList // MRU at head

	tpHead  []int32 // tvpn -> head of the intrusive dirty list
	tpCount []int32 // tvpn -> cached dirty mappings

	hits, misses int64
}

// CMTEntry is the externally visible form of a cache entry.
type CMTEntry struct {
	LPN   LPN
	PPN   flash.PPN
	Dirty bool
}

type cmtEntry struct {
	lpn          LPN
	ppn          flash.PPN
	dirty        bool
	protected    bool
	prev, next   int32 // recency-list links (next doubles as the free-list link)
	dPrev, dNext int32 // per-translation-page dirty-list links
}

type cmtList struct {
	head, tail int32
	n          int
}

func (c *CMT) pushFront(l *cmtList, h int32) {
	e := &c.slab[h]
	e.prev = 0
	e.next = l.head
	if l.head != 0 {
		c.slab[l.head].prev = h
	}
	l.head = h
	if l.tail == 0 {
		l.tail = h
	}
	l.n++
}

func (c *CMT) listRemove(l *cmtList, h int32) {
	e := &c.slab[h]
	if e.prev != 0 {
		c.slab[e.prev].next = e.next
	} else {
		l.head = e.next
	}
	if e.next != 0 {
		c.slab[e.next].prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = 0, 0
	l.n--
}

// NewCMT returns a cache holding at most capacity entries, with the
// protected segment getting half. entriesPerPage is the number of mapping
// entries per translation page, used to group dirty entries for batched
// write-back. Capacity must be at least 2 and entriesPerPage at least 1.
func NewCMT(capacity, entriesPerPage int) (*CMT, error) {
	return newCMT(capacity, entriesPerPage, 0, 0)
}

// NewCMTForSpace is NewCMT for a caller that knows the logical space the
// cache fronts: space logical pages grouped into translationPages
// translation pages. Lookups then go through a dense handle array instead of
// a hash map, which matters on the request-serving hot path.
func NewCMTForSpace(capacity, entriesPerPage int, space LPN, translationPages int) (*CMT, error) {
	if space < 1 || translationPages < 1 {
		return nil, fmt.Errorf("ftl: CMT space %d / %d translation pages too small", space, translationPages)
	}
	return newCMT(capacity, entriesPerPage, space, translationPages)
}

func newCMT(capacity, entriesPerPage int, space LPN, translationPages int) (*CMT, error) {
	if capacity < 2 {
		return nil, fmt.Errorf("ftl: CMT capacity %d too small", capacity)
	}
	if entriesPerPage < 1 {
		return nil, fmt.Errorf("ftl: entries per translation page %d too small", entriesPerPage)
	}
	c := &CMT{
		capacity: capacity,
		protCap:  capacity / 2,
		epp:      entriesPerPage,
		slab:     make([]cmtEntry, capacity+1),
	}
	// Chain every handle onto the free list.
	for h := 1; h <= capacity; h++ {
		c.slab[h].next = int32(h) + 1
	}
	c.slab[capacity].next = 0
	c.freeHead = 1
	if space > 0 {
		c.dense = make([]int32, space)
		c.tpHead = make([]int32, translationPages)
		c.tpCount = make([]int32, translationPages)
	} else {
		c.index = make(map[LPN]int32, capacity)
	}
	return c, nil
}

func (c *CMT) alloc() int32 {
	h := c.freeHead
	c.freeHead = c.slab[h].next
	c.slab[h] = cmtEntry{}
	return h
}

func (c *CMT) release(h int32) {
	c.slab[h].next = c.freeHead
	c.freeHead = h
}

func (c *CMT) lookup(lpn LPN) int32 {
	if c.dense != nil {
		return c.dense[lpn]
	}
	return c.index[lpn]
}

func (c *CMT) setIndex(lpn LPN, h int32) {
	if c.dense != nil {
		c.dense[lpn] = h
		return
	}
	c.index[lpn] = h
}

func (c *CMT) delIndex(lpn LPN) {
	if c.dense != nil {
		c.dense[lpn] = 0
		return
	}
	delete(c.index, lpn)
}

// Len returns the number of cached entries.
func (c *CMT) Len() int { return c.n }

// Capacity returns the maximum number of entries.
func (c *CMT) Capacity() int { return c.capacity }

// HitRate returns the fraction of Get calls that hit, and the totals.
func (c *CMT) HitRate() (rate float64, hits, misses int64) {
	if c.hits+c.misses == 0 {
		return 0, 0, 0
	}
	return float64(c.hits) / float64(c.hits+c.misses), c.hits, c.misses
}

func (c *CMT) tvpn(lpn LPN) int64 { return int64(lpn) / int64(c.epp) }

// ensureTP grows the map-indexed cache's translation-page arrays to cover
// tvpn; the dense variant sized them at construction.
func (c *CMT) ensureTP(tvpn int64) {
	for int64(len(c.tpHead)) <= tvpn {
		c.tpHead = append(c.tpHead, 0)
		c.tpCount = append(c.tpCount, 0)
	}
}

func (c *CMT) markDirty(h int32) {
	e := &c.slab[h]
	tp := c.tvpn(e.lpn)
	c.ensureTP(tp)
	e.dPrev = 0
	e.dNext = c.tpHead[tp]
	if e.dNext != 0 {
		c.slab[e.dNext].dPrev = h
	}
	c.tpHead[tp] = h
	c.tpCount[tp]++
}

func (c *CMT) unmarkDirty(h int32) {
	e := &c.slab[h]
	tp := c.tvpn(e.lpn)
	if e.dPrev != 0 {
		c.slab[e.dPrev].dNext = e.dNext
	} else {
		c.tpHead[tp] = e.dNext
	}
	if e.dNext != 0 {
		c.slab[e.dNext].dPrev = e.dPrev
	}
	e.dPrev, e.dNext = 0, 0
	c.tpCount[tp]--
}

// CMTState is a deep copy of the cache, for checkpoint/fork. Entries are
// plain values, so copying the slab copies every list link with it.
type CMTState struct {
	n                    int
	slab                 []cmtEntry
	freeHead             int32
	dense                []int32
	index                map[LPN]int32
	probation, protected cmtList
	tpHead               []int32
	tpCount              []int32
	hits, misses         int64
}

// Snapshot captures the cache's contents and statistics.
func (c *CMT) Snapshot() CMTState {
	s := CMTState{
		n:         c.n,
		slab:      append([]cmtEntry(nil), c.slab...),
		freeHead:  c.freeHead,
		probation: c.probation,
		protected: c.protected,
		tpHead:    append([]int32(nil), c.tpHead...),
		tpCount:   append([]int32(nil), c.tpCount...),
		hits:      c.hits,
		misses:    c.misses,
	}
	if c.dense != nil {
		s.dense = append([]int32(nil), c.dense...)
	} else {
		s.index = make(map[LPN]int32, len(c.index))
		for k, v := range c.index {
			s.index[k] = v
		}
	}
	return s
}

// Restore rewinds the cache to a snapshot from a CMT of the same shape.
// The map-indexed variant's translation-page arrays grow on demand, so the
// slices are re-appended rather than copied in place.
func (c *CMT) Restore(s CMTState) {
	c.n = s.n
	copy(c.slab, s.slab)
	c.freeHead = s.freeHead
	c.probation = s.probation
	c.protected = s.protected
	c.tpHead = append(c.tpHead[:0], s.tpHead...)
	c.tpCount = append(c.tpCount[:0], s.tpCount...)
	c.hits = s.hits
	c.misses = s.misses
	if c.dense != nil {
		copy(c.dense, s.dense)
		return
	}
	c.index = make(map[LPN]int32, len(s.index))
	for k, v := range s.index {
		c.index[k] = v
	}
}

// Get looks up a mapping, updating recency and segment membership on a hit.
func (c *CMT) Get(lpn LPN) (flash.PPN, bool) {
	h := c.lookup(lpn)
	if h == 0 {
		c.misses++
		return flash.InvalidPPN, false
	}
	c.hits++
	c.touch(h)
	return c.slab[h].ppn, true
}

// Contains reports whether a mapping is cached without perturbing recency or
// hit statistics (used by garbage collection).
func (c *CMT) Contains(lpn LPN) bool { return c.lookup(lpn) != 0 }

func (c *CMT) touch(h int32) {
	if c.slab[h].protected {
		c.listRemove(&c.protected, h)
		c.pushFront(&c.protected, h)
		return
	}
	// Promote probation -> protected; demote protected LRU if over capacity.
	c.listRemove(&c.probation, h)
	c.slab[h].protected = true
	c.pushFront(&c.protected, h)
	for c.protected.n > c.protCap {
		lru := c.protected.tail
		c.listRemove(&c.protected, lru)
		c.slab[lru].protected = false
		c.pushFront(&c.probation, lru)
	}
}

// Insert adds a mapping that is not currently cached. If the cache is full it
// evicts the segmented-LRU victim and returns it with evicted=true; the
// caller must write the victim back to its translation page if it is dirty.
func (c *CMT) Insert(lpn LPN, ppn flash.PPN, dirty bool) (victim CMTEntry, evicted bool) {
	if c.lookup(lpn) != 0 {
		panic(fmt.Sprintf("ftl: CMT.Insert of cached lpn %d", lpn))
	}
	if c.n >= c.capacity {
		victim, evicted = c.evict()
	}
	h := c.alloc()
	e := &c.slab[h]
	e.lpn, e.ppn, e.dirty = lpn, ppn, dirty
	c.setIndex(lpn, h)
	c.pushFront(&c.probation, h)
	c.n++
	if dirty {
		c.markDirty(h)
	}
	return victim, evicted
}

func (c *CMT) evict() (CMTEntry, bool) {
	var h int32
	if c.probation.tail != 0 {
		h = c.probation.tail
		c.listRemove(&c.probation, h)
	} else if c.protected.tail != 0 {
		h = c.protected.tail
		c.listRemove(&c.protected, h)
	} else {
		return CMTEntry{}, false
	}
	e := &c.slab[h]
	if e.dirty {
		c.unmarkDirty(h)
	}
	c.delIndex(e.lpn)
	c.n--
	victim := CMTEntry{LPN: e.lpn, PPN: e.ppn, Dirty: e.dirty}
	c.release(h)
	return victim, true
}

// Update rewrites the PPN of a cached mapping and ORs in dirty. It reports
// whether the entry was present.
func (c *CMT) Update(lpn LPN, ppn flash.PPN, dirty bool) bool {
	h := c.lookup(lpn)
	if h == 0 {
		return false
	}
	e := &c.slab[h]
	e.ppn = ppn
	if dirty && !e.dirty {
		e.dirty = true
		c.markDirty(h)
	}
	return true
}

// DirtyInPage returns how many cached dirty mappings belong to the
// translation page tvpn.
func (c *CMT) DirtyInPage(tvpn int64) int {
	if tvpn < 0 || tvpn >= int64(len(c.tpCount)) {
		return 0
	}
	return int(c.tpCount[tvpn])
}

// CleanPage marks every cached dirty mapping of translation page tvpn clean
// and returns how many there were. Mapper.writeBack calls it after the
// read-modify-write that persisted them all at once (DFTL's batch update).
func (c *CMT) CleanPage(tvpn int64) int {
	if tvpn < 0 || tvpn >= int64(len(c.tpHead)) {
		return 0
	}
	for h := c.tpHead[tvpn]; h != 0; {
		e := &c.slab[h]
		e.dirty = false
		h = e.dNext
		e.dPrev, e.dNext = 0, 0
	}
	n := int(c.tpCount[tvpn])
	c.tpHead[tvpn] = 0
	c.tpCount[tvpn] = 0
	return n
}
