package ftl

import (
	"testing"

	"dloop/internal/flash"
)

// BenchmarkTrackerChurn measures victim-index updates under a GC-like churn.
func BenchmarkTrackerChurn(b *testing.B) {
	geo := flash.Geometry{
		Channels: 8, PackagesPerChannel: 1, ChipsPerPackage: 2,
		DiesPerChip: 2, PlanesPerDie: 2, BlocksPerPlane: 2048,
		PagesPerBlock: 64, PageSize: 2048,
	}
	tr := NewTracker(geo)
	for bk := 0; bk < geo.BlocksPerPlane; bk++ {
		tr.Close(flash.PlaneBlock{Plane: 0, Block: bk})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := flash.PlaneBlock{Plane: 0, Block: i % geo.BlocksPerPlane}
		tr.Invalidated(pb)
		if i%64 == 63 {
			victim, _, ok := tr.MaxInPlane(0)
			if !ok {
				b.Fatal("no victim")
			}
			tr.Take(victim)
			tr.Erased(victim)
			tr.Close(victim)
		}
	}
}
