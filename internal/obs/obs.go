// Package obs is the simulator's observability layer: a metrics registry of
// named counters, gauges, and latency histograms; a structured trace of every
// scheduled flash operation exportable as JSONL and as Chrome
// trace-event/Perfetto timelines; and periodic snapshots that turn per-plane
// load balance (SDRPP) and utilization into time series.
//
// The layer is threaded through the stack as a nil-able Recorder held by the
// simulated device, the FTLs, and the SSD controller. Every hook is guarded
// by a single pointer check, so a run with observability disabled performs no
// allocation and no work beyond that check — the allocation-free hot path is
// preserved. An individual recorder is not safe for concurrent use; each
// execution context owns its own. Multi-queue runs keep that invariant
// under concurrency by giving every FTL shard a private child collector
// (Collector.Shard) that only its worker touches, merged back into the
// parent in shard order at quiescent barriers.
package obs

import (
	"fmt"

	"dloop/internal/sim"
)

// OpKind classifies a flash operation. Values mirror the device's internal
// operation kinds.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpCopyBack
	OpErase
	NumOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCopyBack:
		return "copyback"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Cause labels who initiated a flash operation. Values mirror flash.Cause
// (host, gc, map); the flash package asserts the correspondence in its tests.
type Cause uint8

const (
	CauseHost Cause = iota
	CauseGC
	CauseMap
	NumCauses
)

func (c Cause) String() string {
	switch c {
	case CauseHost:
		return "host"
	case CauseGC:
		return "gc"
	case CauseMap:
		return "map"
	default:
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
}

// Op describes one scheduled flash operation: what it was, where it ran, and
// the three timestamps that decompose its latency into queueing and service.
type Op struct {
	Kind  OpKind
	Cause Cause
	// Stored is the page content tag: the LPN for data pages, an encoded
	// translation-page number for mapping traffic, or the block index for
	// erases.
	Stored  int64
	Plane   int32
	Channel int32
	Ready   sim.Time // when the operation became serviceable
	Start   sim.Time // when the hardware began serving it
	End     sim.Time // completion
}

// QueueTime returns how long the operation waited for its resources.
func (o Op) QueueTime() sim.Duration { return o.Start.Sub(o.Ready) }

// ServiceTime returns how long the hardware spent on the operation.
func (o Op) ServiceTime() sim.Duration { return o.End.Sub(o.Start) }

// Latency returns the operation's total ready-to-completion latency.
func (o Op) Latency() sim.Duration { return o.End.Sub(o.Ready) }

// EventKind names an instantaneous occurrence worth counting.
type EventKind uint8

const (
	EvCMTHit EventKind = iota
	EvCMTMiss
	EvCMTEvict
	EvCMTWriteback
	EvParityWaste
	EvSwitchMerge
	EvPartialMerge
	EvFullMerge
	EvGCCopyBack
	EvGCExternalMove
	EvTransRead
	EvTransWrite
	EvLearnedHit
	NumEventKinds
)

func (e EventKind) String() string {
	switch e {
	case EvCMTHit:
		return "cmt.hit"
	case EvCMTMiss:
		return "cmt.miss"
	case EvCMTEvict:
		return "cmt.evict"
	case EvCMTWriteback:
		return "cmt.writeback"
	case EvParityWaste:
		return "gc.parity_waste"
	case EvSwitchMerge:
		return "merge.switch"
	case EvPartialMerge:
		return "merge.partial"
	case EvFullMerge:
		return "merge.full"
	case EvGCCopyBack:
		return "gc.copyback"
	case EvGCExternalMove:
		return "gc.external_move"
	case EvTransRead:
		return "map.trans_reads"
	case EvTransWrite:
		return "map.trans_writes"
	case EvLearnedHit:
		return "map.learned_hits"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(e))
	}
}

// SpanKind names an interval of FTL activity.
type SpanKind uint8

const (
	SpanGC SpanKind = iota
	SpanMerge
	NumSpanKinds
)

func (s SpanKind) String() string {
	switch s {
	case SpanGC:
		return "gc"
	case SpanMerge:
		return "merge"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(s))
	}
}

// Recorder receives the simulator's observability stream. Implementations
// must tolerate out-of-order timestamps within a scheduling window (resource
// backfill places operations into past gaps). The zero-cost disabled state is
// a nil Recorder at every hook site.
type Recorder interface {
	// RecordOp records one completed flash operation.
	RecordOp(op Op)
	// RecordEvent records an instantaneous occurrence at a simulated time.
	RecordEvent(kind EventKind, at sim.Time)
	// RecordSpan records an interval of FTL activity on one plane, e.g. a
	// garbage collection or a log-block merge.
	RecordSpan(kind SpanKind, plane int32, start, end sim.Time)
	// RecordRequest records one completed host request.
	RecordRequest(read bool, arrival, done sim.Time)
}

// GCSpanRecorder is the GC engine's optional rich-span extension of
// Recorder: the victim-selection policy and the collection's relocation
// counts ride along with the trigger→erase interval. The Collector
// implements it; engines fall back to RecordSpan when the attached recorder
// does not.
type GCSpanRecorder interface {
	RecordGCSpan(plane int32, start, end sim.Time, policy string, moved, wasted int)
}

// UtilizationSource reports cumulative busy time per plane, chip serial bus,
// and channel; the device provides it and the Collector samples it when the
// run closes.
type UtilizationSource func() (planes, chipBus, channels []sim.Duration)
