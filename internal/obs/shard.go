package obs

import (
	"bytes"
	"strconv"
)

// Shard-local collection for the multi-queue engine.
//
// A parent Collector observing an FTLShards=N run spawns one child Collector
// per shard. Each child is a full collector over the shard's *local* plane
// and channel index space, touched only by that shard's worker goroutine, so
// recording stays lock-free and allocation-free while the shards execute
// concurrently. The host reads children only at quiescent points (the epoch
// barrier's AwaitQuiesced edge orders the accesses) and folds them into the
// parent in ascending shard order:
//
//   - counters and histograms add/merge by name (integer-exact; Welford
//     accumulators combine in the fixed shard order, so the result is
//     deterministic and identical to serial execution of the same per-shard
//     dispatch streams);
//   - vectors translate shard-local plane/channel indices to whole-device
//     ones through the shard's maps;
//   - per-shard distributions worth keeping disaggregated (mq.lat, gc.pause)
//     additionally land under "<name>.shard<i>";
//   - time series land only under "<name>.shard<i>" — their per-window means
//     are shard-local quantities with no meaningful cross-shard fold;
//   - trace events retarget to the sharded shard→process / channel→thread
//     layout with the global plane as an event arg.

// ShardOptions describes one FTL shard's slice of the device for a child
// collector: its local shape plus the local→global index translations the
// merge applies.
type ShardOptions struct {
	// Index is the shard's position in the front end (0-based); merges run in
	// ascending Index order.
	Index int
	// Planes and Channels are the shard's local dimensions.
	Planes   int
	Channels int
	// ChannelOfPlane maps local plane -> local channel.
	ChannelOfPlane []int32
	// PlaneMap and ChanMap translate local plane/channel indices to
	// whole-device ones.
	PlaneMap []int32
	ChanMap  []int32
}

type shardChild struct {
	col *Collector
	opt ShardOptions
}

// perShardHists names the distributions that stay disaggregated per shard in
// addition to merging into the device-wide histogram.
var perShardHists = map[string]bool{
	"mq.lat":   true,
	"gc.pause": true,
}

// Shard returns the child collector for one FTL shard, creating it on first
// use (repeat calls with the same Index return the same child, so
// re-attaching a recorder resumes its stream). The child inherits the
// parent's snapshot interval and trace/oplog buffering; the parent's own
// snapshot series switch off, since in a multi-queue run every flash
// operation flows through a child and the parent's windows would be empty.
func (c *Collector) Shard(o ShardOptions) *Collector {
	for _, ch := range c.children {
		if ch.opt.Index == o.Index {
			return ch.col
		}
	}
	child := NewCollector(Options{
		Planes:           o.Planes,
		Channels:         o.Channels,
		ChannelOfPlane:   o.ChannelOfPlane,
		PagesPerBlock:    c.opts.PagesPerBlock,
		SnapshotInterval: c.snapIv,
	})
	if c.tr != nil {
		// The child buffers locally (flat local layout, never flushed); the
		// parent translates the events into its own sharded buffer at Close.
		child.tr = newTraceWriter(nil, c.tr.limit, o.Channels, o.ChannelOfPlane, 0, nil)
	}
	if c.oplog != nil {
		child.oplogBuf = &bytes.Buffer{}
		child.oplog = newOpLog(child.oplogBuf)
	}
	c.opts.SnapshotInterval = 0
	c.children = append(c.children, &shardChild{col: child, opt: o})
	return child
}

// AddAuxSource registers fn to contribute host-side metrics (e.g. the front
// end's doorbell and ring telemetry) into every merged view: Close and each
// SnapshotRegistry. The target registry never holds the names beforehand, so
// fn may use plain Add/Set semantics.
func (c *Collector) AddAuxSource(fn func(*Registry)) { c.aux = append(c.aux, fn) }

// SnapshotRegistry returns an independent merged view of the registry —
// parent, shard children, live gauges, and auxiliary sources — safe to
// serialize while the run continues. Call it only from the host goroutine at
// a quiescent point (an epoch barrier); the live collectors are read, never
// written. Open snapshot windows stay open (they close at Close). After
// Close it returns a plain copy, since the children are already folded in.
func (c *Collector) SnapshotRegistry() *Registry {
	dst := c.reg.clone()
	if c.closed {
		return dst
	}
	for _, ch := range c.children {
		mergeChildRegistry(dst, ch, c)
	}
	c.foldGauges(dst)
	for _, fn := range c.aux {
		fn(dst)
	}
	return dst
}

func shardSuffix(i int) string { return ".shard" + strconv.Itoa(i) }

// mergeChildRegistry folds one child's registry into dst. parent supplies
// the whole-device dimensions for translated vectors.
func mergeChildRegistry(dst *Registry, ch *shardChild, parent *Collector) {
	src := ch.col.reg
	for name, v := range src.counters {
		if v.v != 0 {
			dst.Counter(name).Add(v.v)
		}
	}
	for name, h := range src.hists {
		if h.N() == 0 {
			continue
		}
		dst.Hist(name).merge(h)
		if perShardHists[name] {
			dst.Hist(name + shardSuffix(ch.opt.Index)).merge(h)
		}
	}
	for name, v := range src.vecs {
		var m []int32
		size := len(v.vals)
		switch v.label {
		case "plane":
			m, size = ch.opt.PlaneMap, parent.opts.Planes
		case "channel":
			m, size = ch.opt.ChanMap, parent.opts.Channels
		}
		dv := dst.CounterVec(name, v.label, size)
		for i, val := range v.vals {
			if val == 0 {
				continue
			}
			j := i
			if m != nil {
				j = int(m[i])
			}
			dv.Add(j, val)
		}
	}
	for name, s := range src.series {
		if s.Buckets() == 0 {
			continue
		}
		dst.Series(name+shardSuffix(ch.opt.Index), s.BucketWidth()).Merge(s)
	}
}
