package obs

import (
	"bytes"
	"fmt"
	"io"

	"dloop/internal/sim"
	"dloop/internal/stats"
)

// Options configures a Collector for one run.
type Options struct {
	// FTL labels the registry with the scheme under observation.
	FTL string
	// GCPolicy labels the registry with the victim-selection policy in
	// effect (empty when the scheme does not report one).
	GCPolicy string
	// Planes and Channels size the per-plane and per-channel vectors.
	Planes   int
	Channels int
	// PagesPerBlock sizes the per-victim valid-count histogram
	// (gc.victim_valid); 0 disables it.
	PagesPerBlock int
	// ChannelOfPlane maps plane index -> channel index; the trace exporter
	// uses it to group plane tracks under their channel. When nil every
	// plane renders under channel 0.
	ChannelOfPlane []int32
	// Shards, when > 1, declares the run's multi-queue FTL shard count: the
	// trace exporter groups tracks shard→process / channel→thread, and the
	// collector expects per-shard children (see Shard) whose state merges
	// back deterministically.
	Shards int
	// ShardOfChannel maps global channel -> owning FTL shard (required when
	// Shards > 1).
	ShardOfChannel []int32

	// TraceEvents, when non-nil, receives a Chrome trace-event JSON document
	// on Close (openable in chrome://tracing or ui.perfetto.dev).
	TraceEvents io.Writer
	// TraceLimit caps buffered trace events (0 = DefaultTraceLimit). Events
	// beyond the cap are dropped and counted in the trace.dropped metric.
	TraceLimit int
	// OpLog, when non-nil, receives one JSON line per flash operation.
	OpLog io.Writer
	// SnapshotInterval emits SDRPP/utilization/throughput snapshots into the
	// registry's time series every interval of simulated time (0 = off).
	SnapshotInterval sim.Duration
}

// Collector is the standard Recorder: it maintains the metrics registry,
// streams the op trace to the configured sinks, and emits periodic
// snapshots. It also implements sim.QueueObserver so event-queue pressure is
// visible.
//
// A single collector is not safe for concurrent use, but a multi-queue run
// does not share one: each shard worker records into a private child
// collector (Shard), and the parent folds the children back in at quiescent
// points — Close and SnapshotRegistry — in shard order, so the merged
// registry is deterministic and bit-identical to serial execution of the
// same dispatch streams.
type Collector struct {
	reg  *Registry
	opts Options

	// Pre-resolved hot-path handles so recording an op costs array indexing,
	// not map lookups.
	ops      [NumOpKinds][NumCauses]*Counter
	opLat    [NumOpKinds]*Hist
	queueLat *Hist
	events   [NumEventKinds]*Counter
	spans    [NumSpanKinds]*Counter
	spanBusy [NumSpanKinds]sim.Duration
	reqRead  *Hist
	reqWrite *Hist

	planeOps    *CounterVec
	planeErases *CounterVec
	chanOps     *CounterVec
	victimValid *CounterVec // victims by valid-page count; nil without PagesPerBlock

	tr    *TraceWriter
	oplog *OpLog

	// Snapshot state: watermark is the latest completion seen; the window
	// accumulators reset at every snapshot boundary.
	watermark sim.Time
	nextSnap  sim.Time
	planeCum  []int64 // cumulative ops per plane, the SDRPP input
	winOps    int64
	winBusy   sim.Duration

	utilSrc UtilizationSource

	// Event-queue observation.
	qScheduled, qFired *Counter
	qHighWater         int

	// GC span enrichment (policy, relocated pages) pre-resolved like the
	// other hot-path handles.
	gcPause *Hist
	gcMoved *Counter
	gcNames map[string]string

	// Multi-queue children (see shard.go) and host-side auxiliary sources
	// folded into every merged view.
	children []*shardChild
	aux      []func(*Registry)
	// snapIv remembers the configured snapshot interval: spawning children
	// zeroes the parent's own interval (ops flow through the children, so
	// parent windows would be empty rows) but children inherit it.
	snapIv sim.Duration
	// oplogBuf, on a child, backs its oplog so the parent can splice the
	// lines into the real sink at Close.
	oplogBuf *bytes.Buffer
	closed   bool
}

// NewCollector builds a Collector. Planes and Channels must be positive.
func NewCollector(opts Options) *Collector {
	if opts.Planes < 1 {
		opts.Planes = 1
	}
	if opts.Channels < 1 {
		opts.Channels = 1
	}
	if opts.ChannelOfPlane == nil {
		opts.ChannelOfPlane = make([]int32, opts.Planes)
	}
	c := &Collector{reg: NewRegistry(), opts: opts}
	if opts.FTL != "" {
		c.reg.SetLabel("ftl", opts.FTL)
	}
	if opts.GCPolicy != "" {
		c.reg.SetLabel("gc.policy", opts.GCPolicy)
	}
	for k := OpKind(0); k < NumOpKinds; k++ {
		for cz := Cause(0); cz < NumCauses; cz++ {
			c.ops[k][cz] = c.reg.Counter("flash." + k.String() + "." + cz.String())
		}
		c.opLat[k] = c.reg.Hist("lat." + k.String())
	}
	c.queueLat = c.reg.Hist("lat.queue")
	for e := EventKind(0); e < NumEventKinds; e++ {
		c.events[e] = c.reg.Counter(e.String())
	}
	for s := SpanKind(0); s < NumSpanKinds; s++ {
		c.spans[s] = c.reg.Counter(s.String() + ".runs")
	}
	c.reqRead = c.reg.Hist("host.read")
	c.reqWrite = c.reg.Hist("host.write")
	c.planeOps = c.reg.CounterVec("plane.ops", "plane", opts.Planes)
	c.planeErases = c.reg.CounterVec("plane.erases", "plane", opts.Planes)
	c.chanOps = c.reg.CounterVec("channel.ops", "channel", opts.Channels)
	if opts.PagesPerBlock > 0 {
		c.victimValid = c.reg.CounterVec("gc.victim_valid", "valid", opts.PagesPerBlock+1)
	}
	c.qScheduled = c.reg.Counter("sim.events.scheduled")
	c.qFired = c.reg.Counter("sim.events.fired")
	c.gcPause = c.reg.Hist("gc.pause")
	c.gcMoved = c.reg.Counter("gc.relocated_pages")
	c.planeCum = make([]int64, opts.Planes)
	c.snapIv = opts.SnapshotInterval
	if opts.TraceEvents != nil {
		shards := 0
		if opts.Shards > 1 {
			shards = opts.Shards
		}
		c.tr = newTraceWriter(opts.TraceEvents, opts.TraceLimit, opts.Channels, opts.ChannelOfPlane, shards, opts.ShardOfChannel)
	}
	if opts.OpLog != nil {
		c.oplog = newOpLog(opts.OpLog)
	}
	if opts.SnapshotInterval > 0 {
		c.nextSnap = sim.Time(opts.SnapshotInterval)
	}
	return c
}

// Registry exposes the collector's metrics registry.
func (c *Collector) Registry() *Registry { return c.reg }

// SetUtilizationSource wires the device's cumulative busy-time accessor; the
// collector samples it once at Close into the *.busy_us vectors.
func (c *Collector) SetUtilizationSource(src UtilizationSource) { c.utilSrc = src }

// RecordOp implements Recorder.
func (c *Collector) RecordOp(op Op) {
	// Advance (closing any snapshot windows the completion crossed) before
	// accounting, so the op lands in the window containing op.End rather than
	// inflating the window being closed.
	c.advance(op.End)
	c.ops[op.Kind][op.Cause].Inc()
	c.opLat[op.Kind].Observe(op.Latency())
	c.queueLat.Observe(op.QueueTime())
	c.planeOps.Inc(int(op.Plane))
	c.chanOps.Inc(int(op.Channel))
	if op.Kind == OpErase {
		c.planeErases.Inc(int(op.Plane))
	}
	c.planeCum[op.Plane]++
	c.winOps++
	c.winBusy += op.ServiceTime()
	if c.tr != nil {
		c.tr.add(traceEvent{
			name:   opNames[op.Kind][op.Cause],
			pid:    op.Channel,
			tid:    op.Plane,
			start:  op.Start,
			dur:    op.ServiceTime(),
			stored: op.Stored,
		})
	}
	if c.oplog != nil {
		c.oplog.record(op)
	}
}

// RecordEvent implements Recorder.
func (c *Collector) RecordEvent(kind EventKind, at sim.Time) {
	c.events[kind].Inc()
	c.advance(at)
}

// RecordGCVictim implements the GC engine's VictimRecorder: it feeds the
// per-victim valid-page-count histogram (no-op without Options.PagesPerBlock).
func (c *Collector) RecordGCVictim(valid int, at sim.Time) {
	if c.victimValid == nil {
		return
	}
	if valid < 0 {
		valid = 0
	}
	if max := c.opts.PagesPerBlock; valid > max {
		valid = max
	}
	c.victimValid.Inc(valid)
	c.advance(at)
}

// RecordSpan implements Recorder.
func (c *Collector) RecordSpan(kind SpanKind, plane int32, start, end sim.Time) {
	c.spans[kind].Inc()
	c.spanBusy[kind] += end.Sub(start)
	if c.tr != nil {
		var ch int32
		if int(plane) < len(c.opts.ChannelOfPlane) {
			ch = c.opts.ChannelOfPlane[plane]
		}
		c.tr.add(traceEvent{name: kind.String(), pid: ch, tid: plane, start: start, dur: end.Sub(start), stored: -1})
	}
	c.advance(end)
}

// RecordGCSpan implements GCSpanRecorder: beyond the plain SpanGC
// accounting, it feeds the gc.pause distribution and relocated-page counter
// and enriches the trace span with the victim policy and per-collection
// relocation counts.
func (c *Collector) RecordGCSpan(plane int32, start, end sim.Time, policy string, moved, wasted int) {
	c.spans[SpanGC].Inc()
	c.spanBusy[SpanGC] += end.Sub(start)
	c.gcPause.Observe(end.Sub(start))
	c.gcMoved.Add(int64(moved))
	if c.tr != nil {
		var ch int32
		if int(plane) < len(c.opts.ChannelOfPlane) {
			ch = c.opts.ChannelOfPlane[plane]
		}
		c.tr.add(traceEvent{
			name: c.gcSpanName(policy), pid: ch, tid: plane,
			start: start, dur: end.Sub(start), stored: -1,
			extra: fmt.Sprintf(",\"policy\":%q,\"moved\":%d,\"wasted\":%d", policy, moved, wasted),
		})
	}
	c.advance(end)
}

// gcSpanName caches the "gc/<policy>" trace-event names.
func (c *Collector) gcSpanName(policy string) string {
	name, ok := c.gcNames[policy]
	if !ok {
		if c.gcNames == nil {
			c.gcNames = map[string]string{}
		}
		name = "gc/" + policy
		c.gcNames[policy] = name
	}
	return name
}

// RecordRequest implements Recorder.
func (c *Collector) RecordRequest(read bool, arrival, done sim.Time) {
	if read {
		c.reqRead.Observe(done.Sub(arrival))
	} else {
		c.reqWrite.Observe(done.Sub(arrival))
	}
	if c.tr != nil {
		tid := int32(1)
		if read {
			tid = 0
		}
		c.tr.add(traceEvent{name: "request", pid: c.tr.hostPID(), tid: tid, start: arrival, dur: done.Sub(arrival), stored: -1})
	}
	c.advance(done)
}

// EventScheduled implements sim.QueueObserver.
func (c *Collector) EventScheduled(at sim.Time, queued int) {
	c.qScheduled.Inc()
	if queued > c.qHighWater {
		c.qHighWater = queued
	}
}

// EventFired implements sim.QueueObserver.
func (c *Collector) EventFired(at sim.Time, queued int) {
	c.qFired.Inc()
	c.advance(at)
}

// advance moves the simulated-time watermark and emits any snapshot
// boundaries it crossed.
func (c *Collector) advance(t sim.Time) {
	if t <= c.watermark {
		return
	}
	c.watermark = t
	if c.opts.SnapshotInterval <= 0 {
		return
	}
	for c.watermark >= c.nextSnap {
		c.emitSnapshot(c.nextSnap.Add(-c.opts.SnapshotInterval), c.opts.SnapshotInterval)
		c.nextSnap = c.nextSnap.Add(c.opts.SnapshotInterval)
	}
}

// emitSnapshot closes the window that started at windowStart: SDRPP over the
// cumulative per-plane counts, mean plane utilization over the window, and
// operations completed in the window.
func (c *Collector) emitSnapshot(windowStart sim.Time, window sim.Duration) {
	iv := c.opts.SnapshotInterval
	c.reg.Series("sdrpp", iv).Add(windowStart, stats.SDRPP(c.planeCum))
	util := float64(c.winBusy) / (float64(window) * float64(c.opts.Planes))
	c.reg.Series("plane_util", iv).Add(windowStart, util)
	c.reg.Series("ops", iv).Add(windowStart, float64(c.winOps))
	c.winOps = 0
	c.winBusy = 0
}

// flushTrailing closes the open partial snapshot window, if any. Safe to
// call repeatedly (the window accumulators reset on emit).
func (c *Collector) flushTrailing() {
	if c.opts.SnapshotInterval > 0 && c.winOps > 0 {
		start := c.nextSnap.Add(-c.opts.SnapshotInterval)
		if w := c.watermark.Sub(start); w > 0 {
			c.emitSnapshot(start, w)
		}
	}
}

// foldGauges writes the collector's live typed state — span busy times,
// queue high-water, device utilization, trace drops — into dst as gauges and
// vectors, summing across shard children. Both Close (dst = the live
// registry) and SnapshotRegistry (dst = a clone) use it.
func (c *Collector) foldGauges(dst *Registry) {
	for s := SpanKind(0); s < NumSpanKinds; s++ {
		busy := c.spanBusy[s]
		for _, ch := range c.children {
			busy += ch.col.spanBusy[s]
		}
		dst.Gauge(s.String() + ".busy_ms").Set(busy.Milliseconds())
	}
	hw := c.qHighWater
	for _, ch := range c.children {
		if ch.col.qHighWater > hw {
			hw = ch.col.qHighWater
		}
	}
	dst.Gauge("sim.queue.highwater").Set(float64(hw))
	hits := c.events[EvCMTHit].Value()
	misses := c.events[EvCMTMiss].Value()
	for _, ch := range c.children {
		hits += ch.col.events[EvCMTHit].Value()
		misses += ch.col.events[EvCMTMiss].Value()
	}
	if hits+misses > 0 {
		dst.Gauge("cmt.hitrate").Set(float64(hits) / float64(hits+misses))
	}
	if c.utilSrc != nil {
		planes, chips, channels := c.utilSrc()
		fill := func(name, label string, ds []sim.Duration) {
			v := dst.CounterVec(name, label, len(ds))
			for i, d := range ds {
				v.vals[i] = int64(d) / int64(sim.Microsecond)
			}
		}
		fill("plane.busy_us", "plane", planes)
		fill("chip.busy_us", "chip", chips)
		fill("channel.busy_us", "channel", channels)
	}
	if c.tr != nil {
		d := c.tr.Dropped()
		for _, ch := range c.children {
			if ch.col.tr != nil {
				d += ch.col.tr.Dropped()
			}
		}
		dst.Gauge("trace.dropped").Set(float64(d))
	}
}

// Close finalizes the run: it flushes trailing partial snapshot windows,
// merges every shard child into the registry and trace buffer (in shard
// order, so the merge is deterministic), samples the utilization source,
// folds span and queue gauges and auxiliary sources into the registry, and
// flushes the trace and op-log sinks. It returns the first sink error.
func (c *Collector) Close() error {
	c.flushTrailing()
	for _, ch := range c.children {
		ch.col.flushTrailing()
		mergeChildRegistry(c.reg, ch, c)
		if c.tr != nil && ch.col.tr != nil {
			c.tr.mergeShard(ch.col.tr, int32(ch.opt.Index), ch.opt.ChanMap, ch.opt.PlaneMap)
		}
	}
	c.foldGauges(c.reg)
	for _, fn := range c.aux {
		fn(c.reg)
	}
	c.closed = true
	var firstErr error
	if c.tr != nil {
		if err := c.tr.Flush(); err != nil {
			firstErr = fmt.Errorf("obs: trace events: %w", err)
		}
	}
	if c.oplog != nil {
		for _, ch := range c.children {
			if ch.col.oplog == nil {
				continue
			}
			if err := ch.col.oplog.Flush(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: op log (shard %d): %w", ch.opt.Index, err)
			}
			c.oplog.append(ch.col.oplogBuf.Bytes())
		}
		if err := c.oplog.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("obs: op log: %w", err)
		}
	}
	return firstErr
}

// WriteMetrics writes the registry as a metrics.json document.
func (c *Collector) WriteMetrics(w io.Writer) error { return c.reg.WriteJSON(w) }
