package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dloop/internal/sim"
	"dloop/internal/stats"
)

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be non-negative).
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a last-value-wins measurement.
type Gauge struct{ v float64 }

// Set overwrites the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Hist is a latency distribution: a streaming mean/extremes accumulator in
// milliseconds plus a logarithmic histogram for quantiles, both reused from
// the stats package.
type Hist struct {
	w stats.Welford
	h stats.LatencyHist
}

// Observe folds one latency sample into the distribution.
func (h *Hist) Observe(d sim.Duration) {
	h.w.Add(d.Milliseconds())
	h.h.Add(d)
}

// N returns the sample count.
func (h *Hist) N() int64 { return h.w.N() }

// MeanMs returns the sample mean in milliseconds.
func (h *Hist) MeanMs() float64 { return h.w.Mean() }

// Quantile returns the approximate q-quantile.
func (h *Hist) Quantile(q float64) sim.Duration { return h.h.Quantile(q) }

// Summary snapshots the distribution into its JSON/exposition form.
func (h *Hist) Summary() LatencySummary {
	return LatencySummary{
		N:      h.N(),
		MeanMs: finite(h.w.Mean()),
		MinMs:  finite(h.w.Min()),
		MaxMs:  finite(h.w.Max()),
		P50Ms:  h.Quantile(0.5).Milliseconds(),
		P99Ms:  h.Quantile(0.99).Milliseconds(),
		P999Ms: h.Quantile(0.999).Milliseconds(),
	}
}

// merge folds another histogram into this one. The log-bucket histogram
// merges exactly; the Welford accumulator combines in call order, so merging
// shards in a fixed order keeps the result deterministic.
func (h *Hist) merge(o *Hist) {
	h.w.Merge(o.w)
	h.h.Merge(o.h)
}

// CounterVec is a dense vector of counts over one small integer dimension
// (plane index, channel index).
type CounterVec struct {
	label string
	vals  []int64
}

// Inc adds one to slot i.
func (v *CounterVec) Inc(i int) { v.vals[i]++ }

// Add adds d to slot i.
func (v *CounterVec) Add(i int, d int64) { v.vals[i] += d }

// Values returns the live backing slice (callers must not modify it).
func (v *CounterVec) Values() []int64 { return v.vals }

// Registry holds a run's named metrics. Names are created on first use and
// stable for the lifetime of the registry. Like the simulator, it is not
// safe for concurrent use.
type Registry struct {
	labels map[string]string

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	vecs     map[string]*CounterVec
	series   map[string]*stats.TimeSeries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		labels:   map[string]string{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
		vecs:     map[string]*CounterVec{},
		series:   map[string]*stats.TimeSeries{},
	}
}

// SetLabel attaches a dimension label (e.g. ftl=DLOOP) to the whole registry.
func (r *Registry) SetLabel(key, value string) { r.labels[key] = value }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named latency histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter vector, creating it with the given
// dimension label and size on first use. Size and label are fixed at
// creation; a mismatched re-request panics (it is a programming error).
func (r *Registry) CounterVec(name, label string, size int) *CounterVec {
	v := r.vecs[name]
	if v == nil {
		v = &CounterVec{label: label, vals: make([]int64, size)}
		r.vecs[name] = v
		return v
	}
	if v.label != label || len(v.vals) != size {
		panic(fmt.Sprintf("obs: CounterVec %q redefined (%s[%d] vs %s[%d])",
			name, v.label, len(v.vals), label, size))
	}
	return v
}

// Series returns the named time series, creating it with the given bucket
// width on first use.
func (r *Registry) Series(name string, bucket sim.Duration) *stats.TimeSeries {
	s := r.series[name]
	if s == nil {
		s, _ = stats.NewTimeSeries(bucket)
		r.series[name] = s
	}
	return s
}

// LatencySummary is the JSON form of a Hist: sample count, streaming
// mean/extremes, and the reported quantiles. p999 reads the histogram's deep
// tail — the signal multi-tenant tail-latency analysis cares about when p99
// looks healthy.
type LatencySummary struct {
	N      int64   `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// VecSnapshot is the JSON form of a CounterVec.
type VecSnapshot struct {
	Label  string  `json:"label"`
	Values []int64 `json:"values"`
}

// SeriesPoint is one time-series bucket in JSON form.
type SeriesPoint struct {
	TSeconds float64 `json:"t_s"`
	N        int64   `json:"n"`
	Mean     float64 `json:"mean"`
	Max      float64 `json:"max"`
}

// RegistrySnapshot is the metrics.json document: a plain-data copy of the
// registry that exporters (the HTTP endpoint, the JSON writer) serialize
// without touching live metric state. encoding/json sorts map keys, so output
// is deterministic.
type RegistrySnapshot struct {
	Labels     map[string]string         `json:"labels,omitempty"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]LatencySummary `json:"histograms,omitempty"`
	Vectors    map[string]VecSnapshot    `json:"vectors,omitempty"`
	Series     map[string][]SeriesPoint  `json:"series,omitempty"`
}

// finite maps NaN/Inf (e.g. extremes of an empty accumulator) to 0, which
// JSON cannot represent.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot copies the registry into its plain-data exposition form.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]LatencySummary, len(r.hists)),
		Vectors:    make(map[string]VecSnapshot, len(r.vecs)),
		Series:     make(map[string][]SeriesPoint, len(r.series)),
	}
	if len(r.labels) > 0 {
		snap.Labels = r.labels
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = finite(g.v)
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Summary()
	}
	for name, v := range r.vecs {
		snap.Vectors[name] = VecSnapshot{Label: v.label, Values: v.vals}
	}
	for name, s := range r.series {
		pts := make([]SeriesPoint, 0, s.Buckets())
		for i := 0; i < s.Buckets(); i++ {
			b := s.Bucket(i)
			if b.N() == 0 {
				continue
			}
			pts = append(pts, SeriesPoint{
				TSeconds: sim.Duration(int64(s.BucketWidth()) * int64(i)).Seconds(),
				N:        b.N(),
				Mean:     finite(b.Mean()),
				Max:      finite(b.Max()),
			})
		}
		snap.Series[name] = pts
	}
	return snap
}

// WriteJSON writes the registry as an indented, deterministically ordered
// metrics.json document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// clone returns an independent deep copy of the registry; SnapshotRegistry
// builds live merged views on clones so serving a snapshot never perturbs the
// run's own metrics.
func (r *Registry) clone() *Registry {
	out := NewRegistry()
	for k, v := range r.labels {
		out.labels[k] = v
	}
	for k, v := range r.counters {
		out.counters[k] = &Counter{v: v.v}
	}
	for k, v := range r.gauges {
		out.gauges[k] = &Gauge{v: v.v}
	}
	for k, v := range r.hists {
		out.hists[k] = &Hist{w: v.w, h: v.h.Clone()}
	}
	for k, v := range r.vecs {
		out.vecs[k] = &CounterVec{label: v.label, vals: append([]int64(nil), v.vals...)}
	}
	for k, v := range r.series {
		out.series[k] = v.Clone()
	}
	return out
}
