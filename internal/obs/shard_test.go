package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dloop/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// shardedCollector builds a 2-shard parent over the 4-plane/2-channel test
// shape (shard 0 owns channel 0 / planes 0,1; shard 1 owns channel 1 /
// planes 2,3) and returns the parent and both children.
func shardedCollector(tr *bytes.Buffer, snap sim.Duration) (parent, s0, s1 *Collector) {
	o := Options{
		FTL:            "DLOOP",
		Planes:         4,
		Channels:       2,
		ChannelOfPlane: []int32{0, 0, 1, 1},
		Shards:         2,
		ShardOfChannel: []int32{0, 1},

		SnapshotInterval: snap,
	}
	if tr != nil {
		o.TraceEvents = tr
	}
	parent = NewCollector(o)
	s0 = parent.Shard(ShardOptions{
		Index: 0, Planes: 2, Channels: 1,
		ChannelOfPlane: []int32{0, 0},
		PlaneMap:       []int32{0, 1},
		ChanMap:        []int32{0},
	})
	s1 = parent.Shard(ShardOptions{
		Index: 1, Planes: 2, Channels: 1,
		ChannelOfPlane: []int32{0, 0},
		PlaneMap:       []int32{2, 3},
		ChanMap:        []int32{1},
	})
	return parent, s0, s1
}

// localOp builds an op in a shard's local index space (both test shards have
// planes 0,1 on local channel 0).
func localOp(kind OpKind, cause Cause, plane int32, ready, start, end sim.Time) Op {
	return Op{Kind: kind, Cause: cause, Stored: int64(plane) + 100,
		Plane: plane, Channel: 0, Ready: ready, Start: start, End: end}
}

func TestLatencySummaryTailFields(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Duration(i) * sim.Millisecond)
	}
	s := h.Summary()
	if s.N != 1000 {
		t.Fatalf("N = %d, want 1000", s.N)
	}
	if s.MinMs != 1 || s.MaxMs != 1000 {
		t.Errorf("min/max = %v/%v, want 1/1000", s.MinMs, s.MaxMs)
	}
	if s.P999Ms < s.P99Ms || s.P99Ms < s.P50Ms || s.P50Ms <= 0 {
		t.Errorf("quantiles not ordered: p50=%v p99=%v p999=%v", s.P50Ms, s.P99Ms, s.P999Ms)
	}
	// The deep tail must actually read near the top of this uniform ramp
	// (the log-bucketed histogram resolves coarsely up there, so allow 10%).
	if s.P999Ms < 900 {
		t.Errorf("p999 = %v, want >= 900 on a 1..1000ms ramp", s.P999Ms)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p999_ms"`, `"max_ms"`, `"min_ms"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("serialized summary missing %s: %s", key, raw)
		}
	}
	var zero Hist
	z := zero.Summary()
	if z.N != 0 || z.MeanMs != 0 || z.MinMs != 0 || z.MaxMs != 0 {
		t.Errorf("empty summary not zeroed: %+v", z)
	}
}

func TestRecordGCSpan(t *testing.T) {
	var buf bytes.Buffer
	c := testCollector(&buf, nil, 0)
	c.RecordGCSpan(1, ms(2), ms(5), "greedy", 7, 2)
	c.RecordGCSpan(3, ms(5), ms(6), "costbenefit", 3, 0)
	reg := c.Registry()
	if got := reg.Counter("gc.runs").Value(); got != 2 {
		t.Errorf("gc.runs = %d, want 2", got)
	}
	if got := reg.Counter("gc.relocated_pages").Value(); got != 10 {
		t.Errorf("gc.relocated_pages = %d, want 10", got)
	}
	if got := reg.Hist("gc.pause").N(); got != 2 {
		t.Errorf("gc.pause N = %d, want 2", got)
	}
	if got := reg.Hist("gc.pause").MeanMs(); got != 2 {
		t.Errorf("gc.pause mean = %v ms, want 2 (pauses of 3ms and 1ms)", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("gc.busy_ms").Value(); got != 4 {
		t.Errorf("gc.busy_ms = %v, want 4", got)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	found := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || !strings.HasPrefix(ev.Name, "gc/") {
			continue
		}
		found++
		var args struct {
			Policy string `json:"policy"`
			Moved  int    `json:"moved"`
			Wasted int    `json:"wasted"`
		}
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatalf("gc span args: %v: %s", err, ev.Args)
		}
		if ev.Name == "gc/greedy" && (args.Policy != "greedy" || args.Moved != 7 || args.Wasted != 2) {
			t.Errorf("gc/greedy args = %+v", args)
		}
	}
	if found != 2 {
		t.Errorf("gc spans in trace = %d, want 2", found)
	}
}

// TestShardMergeFoldsChildren drives the two children directly and checks
// every merge rule: counter addition, histogram merge with per-shard copies,
// vector index translation, series suffixing, and gauge folding.
func TestShardMergeFoldsChildren(t *testing.T) {
	parent, s0, s1 := shardedCollector(nil, sim.Millisecond)
	s0.RecordOp(localOp(OpWrite, CauseHost, 0, 0, ms(0), ms(1)))
	s0.RecordOp(localOp(OpWrite, CauseGC, 1, ms(1), ms(1), ms(2)))
	s0.Registry().Hist("mq.lat").Observe(sim.Millisecond)
	s1.RecordOp(localOp(OpRead, CauseHost, 0, ms(0), ms(0), ms(2)))
	s1.RecordOp(localOp(OpErase, CauseGC, 1, ms(2), ms(2), ms(4)))
	s1.Registry().Hist("mq.lat").Observe(3 * sim.Millisecond)
	s1.RecordGCSpan(1, ms(2), ms(4), "greedy", 5, 1)
	parent.RecordRequest(false, ms(0), ms(2))
	if err := parent.Close(); err != nil {
		t.Fatal(err)
	}
	reg := parent.Registry()
	for name, want := range map[string]int64{
		"flash.write.host":   1,
		"flash.write.gc":     1,
		"flash.read.host":    1,
		"flash.erase.gc":     1,
		"gc.runs":            1,
		"gc.relocated_pages": 5,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	// Local planes 0,1 of shard 1 are global planes 2,3; an identity merge
	// would pile everything onto planes 0,1 / channel 0 instead.
	if got := reg.CounterVec("plane.ops", "plane", 4).Values(); got[0] != 1 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Errorf("plane.ops = %v, want [1 1 1 1] (shard-local indices leaked?)", got)
	}
	if got := reg.CounterVec("channel.ops", "channel", 2).Values(); got[0] != 2 || got[1] != 2 {
		t.Errorf("channel.ops = %v, want [2 2]", got)
	}
	if got := reg.Hist("mq.lat").N(); got != 2 {
		t.Errorf("merged mq.lat N = %d, want 2", got)
	}
	if got := reg.Hist("mq.lat.shard0").N(); got != 1 {
		t.Errorf("mq.lat.shard0 N = %d, want 1", got)
	}
	if got := reg.Hist("mq.lat.shard1").MeanMs(); got != 3 {
		t.Errorf("mq.lat.shard1 mean = %v, want 3", got)
	}
	if got := reg.Hist("gc.pause.shard1").N(); got != 1 {
		t.Errorf("gc.pause.shard1 N = %d, want 1", got)
	}
	// Snapshot series land per shard; the parent's own windows stay off.
	if s := reg.Series("ops.shard0", sim.Millisecond); s.Buckets() == 0 {
		t.Error("ops.shard0 series empty")
	}
	if s, ok := reg.series["ops"]; ok && s.Buckets() > 0 {
		t.Error("parent emitted its own ops series in a sharded run")
	}
	// GC busy time folds from the child's span ledger.
	if got := reg.Gauge("gc.busy_ms").Value(); got != 2 {
		t.Errorf("gc.busy_ms = %v, want 2", got)
	}
}

// TestSnapshotRegistryLive takes a merged snapshot mid-run and checks that it
// sees the children and aux sources without perturbing live state, then that
// the run still closes to the full totals.
func TestSnapshotRegistryLive(t *testing.T) {
	parent, s0, s1 := shardedCollector(nil, 0)
	parent.AddAuxSource(func(r *Registry) { r.Counter("mq.doorbells").Add(9) })
	s0.RecordOp(localOp(OpWrite, CauseHost, 0, 0, ms(0), ms(1)))
	s1.RecordOp(localOp(OpWrite, CauseHost, 0, 0, ms(0), ms(1)))

	snap := parent.SnapshotRegistry()
	if got := snap.Counter("flash.write.host").Value(); got != 2 {
		t.Errorf("snapshot flash.write.host = %d, want 2", got)
	}
	if got := snap.Counter("mq.doorbells").Value(); got != 9 {
		t.Errorf("snapshot mq.doorbells = %d, want 9", got)
	}
	// The live parent must be untouched by the merge.
	if got := parent.Registry().Counter("flash.write.host").Value(); got != 0 {
		t.Errorf("snapshot perturbed live parent: flash.write.host = %d", got)
	}

	s0.RecordOp(localOp(OpWrite, CauseGC, 1, ms(1), ms(1), ms(2)))
	if err := parent.Close(); err != nil {
		t.Fatal(err)
	}
	if got := parent.Registry().Counter("flash.write.host").Value(); got != 2 {
		t.Errorf("closed flash.write.host = %d, want 2", got)
	}
	if got := parent.Registry().Counter("flash.write.gc").Value(); got != 1 {
		t.Errorf("closed flash.write.gc = %d, want 1", got)
	}
	// Post-close snapshots are plain copies — children must not fold twice.
	again := parent.SnapshotRegistry()
	if got := again.Counter("flash.write.host").Value(); got != 2 {
		t.Errorf("post-close snapshot flash.write.host = %d, want 2 (double fold?)", got)
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/ -run %s -update` to create it)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; rerun with -update if intentional\ngot:\n%s", name, got)
	}
}

// buildShardedRun produces a deterministic sharded run exercising every event
// family: flash ops on both shards, a GC pause span, and a host request.
func buildShardedRun(tr, metrics *bytes.Buffer) error {
	parent, s0, s1 := shardedCollector(tr, sim.Millisecond)
	s0.RecordOp(localOp(OpWrite, CauseHost, 0, 0, ms(0), ms(1)))
	s0.RecordOp(localOp(OpRead, CauseMap, 1, ms(1), ms(1), ms(2)))
	s0.Registry().Hist("mq.lat").Observe(sim.Millisecond)
	s1.RecordOp(localOp(OpWrite, CauseGC, 0, ms(0), ms(1), ms(2)))
	s1.RecordOp(localOp(OpErase, CauseGC, 1, ms(2), ms(2), ms(4)))
	s1.RecordGCSpan(1, ms(2), ms(4), "greedy", 5, 1)
	s1.Registry().Hist("mq.lat").Observe(2 * sim.Millisecond)
	parent.RecordRequest(false, ms(0), ms(2))
	if err := parent.Close(); err != nil {
		return err
	}
	if metrics != nil {
		return parent.WriteMetrics(metrics)
	}
	return nil
}

// TestTraceShardedGolden pins the sharded Perfetto layout: shard processes,
// global-channel threads, the host process, and the global plane riding as an
// event argument.
func TestTraceShardedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildShardedRun(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Structural checks first, so drift shows up as a readable error before
	// the byte comparison.
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("sharded trace does not parse: %v", err)
	}
	names := map[string]int32{}
	meta := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		meta++
		var args struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatal(err)
		}
		names[args.Name] = ev.Pid
	}
	// 2 shard processes + host process + 2 channel threads.
	if meta != 5 {
		t.Errorf("metadata events = %d, want 5", meta)
	}
	for name, wantPid := range map[string]int32{"shard0": 0, "shard1": 1, "host": 2, "channel0": 0, "channel1": 1} {
		if got, ok := names[name]; !ok || got != wantPid {
			t.Errorf("track %q pid = %d (present=%v), want %d", name, got, ok, wantPid)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || !strings.ContainsRune(ev.Name, '/') {
			continue
		}
		var args struct {
			Plane *int32 `json:"plane"`
		}
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatal(err)
		}
		if args.Plane == nil {
			t.Errorf("sharded op %q missing plane arg: %s", ev.Name, ev.Args)
			continue
		}
		// Shard 1's local planes are global planes 2,3 on channel 1.
		if ev.Pid == 1 && (*args.Plane < 2 || ev.Tid != 1) {
			t.Errorf("op %q on shard 1: plane %d tid %d", ev.Name, *args.Plane, ev.Tid)
		}
	}
	checkGolden(t, "trace_sharded.json", buf.Bytes())
}

// TestMetricsJSONGolden pins the metrics.json serialization — including the
// p999_ms/max_ms summary fields and the per-shard histogram/series names —
// against a golden file.
func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildShardedRun(nil, &buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p999_ms"`, `"max_ms"`, `"mq.lat.shard1"`, `"gc.pause"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("metrics.json missing %s", key)
		}
	}
	checkGolden(t, "metrics_sharded.json", buf.Bytes())
}
