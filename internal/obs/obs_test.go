package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dloop/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

// testCollector builds a 2-channel, 4-plane collector (planes 0,1 on channel
// 0; planes 2,3 on channel 1) with the given sinks.
func testCollector(tr, oplog *bytes.Buffer, snap sim.Duration) *Collector {
	o := Options{
		FTL:            "DLOOP",
		Planes:         4,
		Channels:       2,
		ChannelOfPlane: []int32{0, 0, 1, 1},

		SnapshotInterval: snap,
	}
	if tr != nil {
		o.TraceEvents = tr
	}
	if oplog != nil {
		o.OpLog = oplog
	}
	return NewCollector(o)
}

func opAt(kind OpKind, cause Cause, plane int32, ready, start, end sim.Time) Op {
	ch := int32(0)
	if plane >= 2 {
		ch = 1
	}
	return Op{Kind: kind, Cause: cause, Stored: int64(plane) + 100,
		Plane: plane, Channel: ch, Ready: ready, Start: start, End: end}
}

func TestCollectorCountsAndVectors(t *testing.T) {
	c := testCollector(nil, nil, 0)
	c.RecordOp(opAt(OpWrite, CauseHost, 0, 0, ms(0), ms(1)))
	c.RecordOp(opAt(OpWrite, CauseGC, 1, ms(1), ms(1), ms(2)))
	c.RecordOp(opAt(OpRead, CauseMap, 2, ms(2), ms(2), ms(3)))
	c.RecordOp(opAt(OpCopyBack, CauseGC, 3, ms(3), ms(3), ms(4)))
	c.RecordOp(opAt(OpErase, CauseGC, 3, ms(4), ms(4), ms(6)))
	c.RecordEvent(EvCMTHit, ms(6))
	c.RecordEvent(EvParityWaste, ms(6))
	c.RecordSpan(SpanGC, 3, ms(3), ms(6))
	c.RecordRequest(false, ms(0), ms(2))

	reg := c.Registry()
	for name, want := range map[string]int64{
		"flash.write.host":  1,
		"flash.write.gc":    1,
		"flash.read.map":    1,
		"flash.copyback.gc": 1,
		"flash.erase.gc":    1,
		"flash.read.host":   0,
		"cmt.hit":           1,
		"gc.parity_waste":   1,
		"gc.runs":           1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	if got := reg.CounterVec("plane.ops", "plane", 4).Values(); got[0] != 1 || got[1] != 1 || got[2] != 1 || got[3] != 2 {
		t.Errorf("plane.ops = %v", got)
	}
	if got := reg.CounterVec("channel.ops", "channel", 2).Values(); got[0] != 2 || got[1] != 3 {
		t.Errorf("channel.ops = %v", got)
	}
	if got := reg.CounterVec("plane.erases", "plane", 4).Values(); got[3] != 1 {
		t.Errorf("plane.erases = %v", got)
	}
	if got := reg.Hist("host.write").N(); got != 1 {
		t.Errorf("host.write N = %d", got)
	}
	if got := reg.Hist("lat.write").N(); got != 2 {
		t.Errorf("lat.write N = %d", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The GC span covered 3 ms.
	if got := reg.Gauge("gc.busy_ms").Value(); got != 3 {
		t.Errorf("gc.busy_ms = %v, want 3", got)
	}
}

func TestCollectorSnapshots(t *testing.T) {
	c := testCollector(nil, nil, sim.Millisecond)
	// Two ops in window [0,1ms), one in [1ms,2ms), then a partial window
	// [2ms,2.5ms) flushed by Close.
	c.RecordOp(opAt(OpWrite, CauseHost, 0, 0, 0, ms(1)/2))
	c.RecordOp(opAt(OpWrite, CauseHost, 1, 0, ms(1)/2, ms(1)-1))
	c.RecordOp(opAt(OpRead, CauseHost, 2, ms(1), ms(1), ms(2)-1))
	c.RecordOp(opAt(OpRead, CauseHost, 3, ms(2), ms(2), ms(2)+ms(1)/2))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	s := c.Registry().Series("ops", sim.Millisecond)
	var got []float64
	for i := 0; i < s.Buckets(); i++ {
		if b := s.Bucket(i); b.N() > 0 {
			got = append(got, b.Mean())
		}
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("ops series = %v, want [2 1 1]", got)
	}
	sd := c.Registry().Series("sdrpp", sim.Millisecond)
	if sd.Buckets() == 0 {
		t.Fatal("no sdrpp series emitted")
	}
}

// traceDoc mirrors the Chrome trace-event JSON Object Format.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Dropped int64 `json:"dropped"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   *float64        `json:"ts"`
		Dur  *float64        `json:"dur"`
		Pid  int32           `json:"pid"`
		Tid  int32           `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

// The emitted document must hold to the trace-event schema: every event is a
// metadata record ("M") or a complete span ("X"); spans carry non-negative
// microsecond timestamps in monotonically non-decreasing order; and each
// flash op renders with pid = the channel of the plane in tid.
func TestTraceEventSchema(t *testing.T) {
	var buf bytes.Buffer
	c := testCollector(&buf, nil, 0)
	chanOfPlane := []int32{0, 0, 1, 1}
	// Deliberately record out of order: backfill schedules into past gaps, and
	// the writer must sort at flush.
	c.RecordOp(opAt(OpWrite, CauseHost, 2, ms(4), ms(4), ms(5)))
	c.RecordOp(opAt(OpRead, CauseGC, 1, ms(1), ms(2), ms(3)))
	c.RecordOp(opAt(OpCopyBack, CauseGC, 3, 0, 0, ms(1)))
	c.RecordSpan(SpanGC, 1, ms(2), ms(3))
	c.RecordRequest(true, ms(1), ms(5))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData.Dropped != 0 {
		t.Errorf("header: unit %q dropped %d", doc.DisplayTimeUnit, doc.OtherData.Dropped)
	}

	meta, spans := 0, 0
	lastTs := -1.0
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
				t.Errorf("metadata event without a name: %s", ev.Args)
			}
			names[args.Name] = true
		case "X":
			spans++
			if ev.Ts == nil || ev.Dur == nil {
				t.Fatalf("X event %q missing ts/dur", ev.Name)
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				t.Errorf("event %q negative ts/dur: %v/%v", ev.Name, *ev.Ts, *ev.Dur)
			}
			if *ev.Ts < lastTs {
				t.Errorf("event %q ts %v out of order after %v", ev.Name, *ev.Ts, lastTs)
			}
			lastTs = *ev.Ts
			if strings.ContainsRune(ev.Name, '/') { // a flash op, not a span/request
				if int(ev.Tid) >= len(chanOfPlane) || ev.Pid != chanOfPlane[ev.Tid] {
					t.Errorf("op %q pid %d != channel of plane %d", ev.Name, ev.Pid, ev.Tid)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 channel processes + host process + 4 plane threads.
	if meta != 7 {
		t.Errorf("metadata events = %d, want 7", meta)
	}
	// 3 ops + 1 GC span + 1 request.
	if spans != 5 {
		t.Errorf("X events = %d, want 5", spans)
	}
	for _, want := range []string{"channel0", "channel1", "host", "plane0", "plane3"} {
		if !names[want] {
			t.Errorf("missing track name %q", want)
		}
	}
}

func TestTraceWriterCapDrops(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(Options{Planes: 1, Channels: 1, TraceEvents: &buf, TraceLimit: 2})
	for i := 0; i < 5; i++ {
		c.RecordOp(opAt(OpWrite, CauseHost, 0, ms(int64(i)), ms(int64(i)), ms(int64(i)+1)))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", doc.OtherData.Dropped)
	}
	if got := c.Registry().Gauge("trace.dropped").Value(); got != 3 {
		t.Errorf("trace.dropped gauge = %v, want 3", got)
	}
}

func TestOpLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	c := testCollector(nil, &buf, 0)
	c.RecordOp(opAt(OpErase, CauseGC, 3, ms(1), ms(2), ms(4)))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("op log lines = %d, want 1", len(lines))
	}
	var rec struct {
		Kind    string `json:"kind"`
		Cause   string `json:"cause"`
		Plane   int32  `json:"plane"`
		Channel int32  `json:"channel"`
		ReadyNs int64  `json:"ready_ns"`
		StartNs int64  `json:"start_ns"`
		EndNs   int64  `json:"end_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("op log line is not JSON: %v: %s", err, lines[0])
	}
	if rec.Kind != "erase" || rec.Cause != "gc" || rec.Plane != 3 || rec.Channel != 1 {
		t.Errorf("op log record: %+v", rec)
	}
	if !(rec.ReadyNs < rec.StartNs && rec.StartNs < rec.EndNs) {
		t.Errorf("timestamps not ordered: %+v", rec)
	}
}

// Two identically fed registries must serialize to byte-identical JSON, and
// the document must parse.
func TestRegistryJSONDeterministic(t *testing.T) {
	build := func() *Collector {
		c := testCollector(nil, nil, sim.Millisecond)
		c.RecordOp(opAt(OpWrite, CauseHost, 1, 0, 0, ms(1)))
		c.RecordOp(opAt(OpRead, CauseMap, 2, ms(1), ms(1), ms(2)))
		c.RecordEvent(EvCMTMiss, ms(2))
		c.RecordRequest(true, 0, ms(2))
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	var a, b bytes.Buffer
	if err := build().WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical runs produced different metrics.json bytes")
	}
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	for _, section := range []string{"labels", "counters", "histograms", "vectors", "series"} {
		if _, ok := doc[section]; !ok {
			t.Errorf("metrics.json missing %q section", section)
		}
	}
}

func TestCounterVecRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("v", "plane", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched CounterVec redefinition did not panic")
		}
	}()
	r.CounterVec("v", "plane", 8)
}
