package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dloop/internal/sim"
)

// traceEvent is one buffered Chrome trace event. Durations and timestamps
// are kept in simulated nanoseconds and converted to the format's
// microseconds at write time.
type traceEvent struct {
	name     string
	pid, tid int32
	start    sim.Time
	dur      sim.Duration
	stored   int64
	// planePlus is 1 + the event's global plane index, carried as an extra
	// "plane" arg when sharded merging retargets tid from plane to channel;
	// 0 means absent.
	planePlus int32
	// extra is pre-rendered extra JSON args (starting with ","), e.g. the GC
	// span's policy and relocation counts.
	extra string
}

// TraceWriter buffers flash operations and FTL spans and writes them as a
// Chrome trace-event JSON document ("JSON Array Format") that chrome://tracing
// and https://ui.perfetto.dev open directly. The track layout maps hardware to
// the viewer's process/thread hierarchy. Single-FTL runs use the flat layout:
// pid = channel (plus one synthetic "host" process for request spans),
// tid = plane. Multi-queue runs (shards > 0) group by ownership instead:
// pid = FTL shard, tid = global channel, with the source plane carried as an
// event arg — so the viewer shows contention exactly where the concurrency
// is. Events are sorted by timestamp at flush so the emitted stream is
// monotonic.
//
// The buffer is capped: once limit events are held, further events are
// dropped and counted (the count is exported as the trace.dropped metric and
// recorded in the document itself), so a full-scale multi-million-request run
// cannot exhaust memory.
type TraceWriter struct {
	w       io.Writer
	limit   int
	events  []traceEvent
	dropped int64

	channels       int
	channelOfPlane []int32

	// shards > 0 selects the sharded shard→process / channel→thread layout;
	// shardOfChannel maps global channel -> owning shard.
	shards         int
	shardOfChannel []int32
}

// DefaultTraceLimit bounds buffered trace events when Options.TraceLimit is 0.
const DefaultTraceLimit = 1 << 20

// hostPID is the synthetic process id request spans render under: one past
// the last channel (flat layout) or the last shard (sharded layout).
func (t *TraceWriter) hostPID() int32 {
	if t.shards > 0 {
		return int32(t.shards)
	}
	return int32(t.channels)
}

func newTraceWriter(w io.Writer, limit, channels int, channelOfPlane []int32, shards int, shardOfChannel []int32) *TraceWriter {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &TraceWriter{
		w: w, limit: limit, channels: channels, channelOfPlane: channelOfPlane,
		shards: shards, shardOfChannel: shardOfChannel,
	}
}

func (t *TraceWriter) add(ev traceEvent) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Dropped returns how many events the buffer cap discarded.
func (t *TraceWriter) Dropped() int64 { return t.dropped }

// mergeShard folds one shard child's buffered events into this (sharded-
// layout) writer, translating the child's local channel pid to the owning
// shard and its local plane tid to the global channel, with the global plane
// riding along as an event arg. The parent's cap applies; overflow counts as
// dropped. Host-pid events never originate in children, so every child event
// translates.
func (t *TraceWriter) mergeShard(child *TraceWriter, shard int32, chanMap, planeMap []int32) {
	for _, ev := range child.events {
		if int(ev.tid) < len(planeMap) {
			ev.planePlus = planeMap[ev.tid] + 1
		}
		if int(ev.pid) < len(chanMap) {
			ev.tid = chanMap[ev.pid]
		}
		ev.pid = shard
		t.add(ev)
	}
	// Absorb the child's own drop count so the document's otherData.dropped
	// and the trace.dropped gauge agree after the merge.
	t.dropped += child.dropped
	child.dropped = 0
	child.events = child.events[:0]
}

// Flush sorts the buffered events by timestamp and writes the complete JSON
// document.
func (t *TraceWriter) Flush() error {
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].start < t.events[j].start })
	bw := bufio.NewWriterSize(t.w, 1<<16)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d},\"traceEvents\":[\n", t.dropped); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	// Metadata: name the process/thread tracks after the hardware they carry.
	if t.shards > 0 {
		for s := 0; s < t.shards; s++ {
			emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"shard%d\"}}", s, s)
		}
		emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"host\"}}", t.hostPID())
		for ch, s := range t.shardOfChannel {
			emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"channel%d\"}}", s, ch, ch)
		}
	} else {
		for ch := 0; ch < t.channels; ch++ {
			emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"channel%d\"}}", ch, ch)
		}
		emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"host\"}}", t.hostPID())
		for plane, ch := range t.channelOfPlane {
			emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"plane%d\"}}", ch, plane, plane)
		}
	}
	for _, ev := range t.events {
		// ts/dur are microseconds in the trace-event format.
		if ev.planePlus > 0 {
			emit("{\"name\":%q,\"cat\":\"flash\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"stored\":%d,\"plane\":%d%s}}",
				ev.name, sim.Duration(ev.start).Microseconds(), ev.dur.Microseconds(), ev.pid, ev.tid, ev.stored, ev.planePlus-1, ev.extra)
		} else {
			emit("{\"name\":%q,\"cat\":\"flash\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"stored\":%d%s}}",
				ev.name, sim.Duration(ev.start).Microseconds(), ev.dur.Microseconds(), ev.pid, ev.tid, ev.stored, ev.extra)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// opNames caches the "kind/cause" labels so the per-op path does not
// concatenate strings.
var opNames = func() (names [NumOpKinds][NumCauses]string) {
	for k := OpKind(0); k < NumOpKinds; k++ {
		for c := Cause(0); c < NumCauses; c++ {
			names[k][c] = k.String() + "/" + c.String()
		}
	}
	return
}()

// OpLog streams one JSON line per flash operation: kind, cause, stored tag,
// plane, channel, and the ready/start/end timestamps in nanoseconds.
type OpLog struct {
	bw  *bufio.Writer
	err error
}

func newOpLog(w io.Writer) *OpLog {
	return &OpLog{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (l *OpLog) record(op Op) {
	if l.err != nil {
		return
	}
	_, l.err = fmt.Fprintf(l.bw,
		"{\"kind\":%q,\"cause\":%q,\"stored\":%d,\"plane\":%d,\"channel\":%d,\"ready_ns\":%d,\"start_ns\":%d,\"end_ns\":%d}\n",
		op.Kind.String(), op.Cause.String(), op.Stored, op.Plane, op.Channel,
		int64(op.Ready), int64(op.Start), int64(op.End))
}

// append splices raw, already-formatted lines (a child shard's buffered log)
// into the stream.
func (l *OpLog) append(b []byte) {
	if l.err != nil {
		return
	}
	_, l.err = l.bw.Write(b)
}

// Flush drains the buffer and returns the first write error encountered.
func (l *OpLog) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.bw.Flush()
}
