package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dloop/internal/sim"
)

// traceEvent is one buffered Chrome trace event. Durations and timestamps
// are kept in simulated nanoseconds and converted to the format's
// microseconds at write time.
type traceEvent struct {
	name     string
	pid, tid int32
	start    sim.Time
	dur      sim.Duration
	stored   int64
}

// TraceWriter buffers flash operations and FTL spans and writes them as a
// Chrome trace-event JSON document ("JSON Array Format") that chrome://tracing
// and https://ui.perfetto.dev open directly. The track layout maps hardware to
// the viewer's process/thread hierarchy: pid = channel (plus one synthetic
// "host" process for request spans), tid = plane. Events are sorted by
// timestamp at flush so the emitted stream is monotonic.
//
// The buffer is capped: once limit events are held, further events are
// dropped and counted (the count is exported as the trace.dropped metric and
// recorded in the document itself), so a full-scale multi-million-request run
// cannot exhaust memory.
type TraceWriter struct {
	w       io.Writer
	limit   int
	events  []traceEvent
	dropped int64

	channels       int
	channelOfPlane []int32
}

// DefaultTraceLimit bounds buffered trace events when Options.TraceLimit is 0.
const DefaultTraceLimit = 1 << 20

// hostPID is the synthetic process id request spans render under: one past
// the last channel.
func (t *TraceWriter) hostPID() int32 { return int32(t.channels) }

func newTraceWriter(w io.Writer, limit, channels int, channelOfPlane []int32) *TraceWriter {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &TraceWriter{w: w, limit: limit, channels: channels, channelOfPlane: channelOfPlane}
}

func (t *TraceWriter) add(ev traceEvent) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Dropped returns how many events the buffer cap discarded.
func (t *TraceWriter) Dropped() int64 { return t.dropped }

// Flush sorts the buffered events by timestamp and writes the complete JSON
// document.
func (t *TraceWriter) Flush() error {
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].start < t.events[j].start })
	bw := bufio.NewWriterSize(t.w, 1<<16)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d},\"traceEvents\":[\n", t.dropped); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	// Metadata: name the process/thread tracks after the hardware they carry.
	for ch := 0; ch < t.channels; ch++ {
		emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"channel%d\"}}", ch, ch)
	}
	emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"host\"}}", t.hostPID())
	for plane, ch := range t.channelOfPlane {
		emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"plane%d\"}}", ch, plane, plane)
	}
	for _, ev := range t.events {
		// ts/dur are microseconds in the trace-event format.
		emit("{\"name\":%q,\"cat\":\"flash\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"stored\":%d}}",
			ev.name, sim.Duration(ev.start).Microseconds(), ev.dur.Microseconds(), ev.pid, ev.tid, ev.stored)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// opNames caches the "kind/cause" labels so the per-op path does not
// concatenate strings.
var opNames = func() (names [NumOpKinds][NumCauses]string) {
	for k := OpKind(0); k < NumOpKinds; k++ {
		for c := Cause(0); c < NumCauses; c++ {
			names[k][c] = k.String() + "/" + c.String()
		}
	}
	return
}()

// OpLog streams one JSON line per flash operation: kind, cause, stored tag,
// plane, channel, and the ready/start/end timestamps in nanoseconds.
type OpLog struct {
	bw  *bufio.Writer
	err error
}

func newOpLog(w io.Writer) *OpLog {
	return &OpLog{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (l *OpLog) record(op Op) {
	if l.err != nil {
		return
	}
	_, l.err = fmt.Fprintf(l.bw,
		"{\"kind\":%q,\"cause\":%q,\"stored\":%d,\"plane\":%d,\"channel\":%d,\"ready_ns\":%d,\"start_ns\":%d,\"end_ns\":%d}\n",
		op.Kind.String(), op.Cause.String(), op.Stored, op.Plane, op.Channel,
		int64(op.Ready), int64(op.Start), int64(op.End))
}

// Flush drains the buffer and returns the first write error encountered.
func (l *OpLog) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.bw.Flush()
}
