package httpexport

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Validate lints a Prometheus text exposition (version 0.0.4) document: every
// line must be a well-formed comment, TYPE/HELP declaration, or sample; TYPE
// declarations must be unique and precede their family's samples; summary
// samples must belong to a declared summary family; sample values must parse
// as floats. It is the checker CI runs against the live /metrics endpoint.
func Validate(r io.Reader) error {
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?$`)
		labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
		typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	)
	types := map[string]string{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				if sampled[m[1]] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, m[1])
				}
				types[m[1]] = m[2]
				continue
			}
			if strings.HasPrefix(line, "# HELP ") || !strings.HasPrefix(line, "# TYPE ") {
				continue // free-form comment or HELP; nothing to check
			}
			return fmt.Errorf("line %d: malformed TYPE declaration: %q", lineNo, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if !nameRe.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			if value != "NaN" && value != "+Inf" && value != "-Inf" {
				return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
			}
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("line %d: bad label pair %q", lineNo, pair)
				}
			}
		}
		// A summary's _sum/_count samples belong to the base family.
		family := name
		if t := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count"); t != name {
			if types[t] == "summary" || types[t] == "histogram" {
				family = t
			}
		}
		sampled[family] = true
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for fam := range types {
		if !sampled[fam] {
			return fmt.Errorf("TYPE declared for %s but no samples follow", fam)
		}
	}
	return nil
}

// splitLabels splits a label block body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
