package httpexport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dloop/internal/obs"
	"dloop/internal/sim"
)

// testRegistry builds a registry with one of every metric family.
func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.SetLabel("ftl", "DLOOP")
	r.SetLabel("gc.policy", "greedy") // dotted key must sanitize to gc_policy
	r.Counter("flash.write.host").Add(42)
	r.Gauge("gc.busy_ms").Set(3.5)
	h := r.Hist("mq.lat")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	v := r.CounterVec("plane.ops", "plane", 2)
	v.Add(0, 7)
	v.Add(1, 9)
	r.Series("ops", sim.Millisecond).Add(0, 1) // skipped by the exposition
	return r
}

func TestWritePromFormat(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteProm(&a, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("exposition output is not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE dloop_flash_write_host counter\n" + `dloop_flash_write_host{ftl="DLOOP",gc_policy="greedy"} 42`,
		"# TYPE dloop_gc_busy_ms gauge\n" + `dloop_gc_busy_ms{ftl="DLOOP",gc_policy="greedy"} 3.5`,
		"# TYPE dloop_mq_lat_ms summary",
		`dloop_mq_lat_ms{ftl="DLOOP",gc_policy="greedy",quantile="0.999"}`,
		`dloop_mq_lat_ms_count{ftl="DLOOP",gc_policy="greedy"} 100`,
		`dloop_plane_ops{ftl="DLOOP",gc_policy="greedy",plane="1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "dloop_ops") {
		t.Error("time series leaked into the exposition")
	}
	if err := Validate(strings.NewReader(out)); err != nil {
		t.Errorf("own exposition fails validation: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":           "",
		"bad sample":      "dloop_x{ 1\n",
		"bad value":       "dloop_x one\n",
		"bad label":       "dloop_x{3plane=\"0\"} 1\n",
		"duplicate type":  "# TYPE a counter\n# TYPE a counter\na 1\n",
		"type after use":  "a 1\n# TYPE a counter\na 2\n",
		"type no samples": "# TYPE a counter\nb 1\n",
		"malformed TYPE":  "# TYPE a flavor\na 1\n",
	} {
		if Validate(strings.NewReader(doc)) == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
	good := "# arbitrary comment\n# HELP a help text\n# TYPE a counter\na{x=\"y,\\\"z\\\"\"} 1\nuntyped_is_fine 2.5\nnanval NaN\n"
	if err := Validate(strings.NewReader(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

func TestServerEndToEnd(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	// Before the first Publish the endpoints serve empty documents.
	if code, ct, body := get("/metrics"); code != 200 || ct != ContentType || body != "" {
		t.Errorf("pre-publish /metrics: %d %q %q", code, ct, body)
	}

	if err := s.Publish(testRegistry()); err != nil {
		t.Fatal(err)
	}
	code, ct, body := get("/metrics")
	if code != 200 || ct != ContentType {
		t.Errorf("/metrics: %d %q", code, ct)
	}
	if err := Validate(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics fails validation: %v\n%s", err, body)
	}
	if !strings.Contains(body, "dloop_flash_write_host") {
		t.Error("/metrics missing counter family")
	}

	code, ct, body = get("/metrics.json")
	if code != 200 || ct != "application/json" {
		t.Errorf("/metrics.json: %d %q", code, ct)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if doc.Counters["flash.write.host"] != 42 {
		t.Errorf("/metrics.json counters = %v", doc.Counters)
	}

	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d %q", code, body)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path status %d, want 404", code)
	}

	// Publishing again swaps the documents atomically.
	r2 := testRegistry()
	r2.Counter("flash.write.host").Add(8)
	if err := s.Publish(r2); err != nil {
		t.Fatal(err)
	}
	if _, _, body := get("/metrics"); !strings.Contains(body, fmt.Sprintf(" %d\n", 50)) {
		t.Error("republished counter not visible")
	}
}
