// Package httpexport serves a live view of an obs registry over HTTP while a
// simulation runs: Prometheus text exposition at /metrics, the metrics.json
// document at /metrics.json, and the Go runtime profiles under /debug/pprof/.
//
// The simulator is single-threaded at its quiescent points, so the split of
// responsibilities is strict: the host goroutine calls Publish with a merged
// registry snapshot (obs.Collector.SnapshotRegistry), Publish renders both
// documents synchronously and swaps them in atomically, and HTTP handlers
// only ever read the last rendered bytes. Scrapes therefore never touch live
// metric state and never block the simulation.
package httpexport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"dloop/internal/obs"
)

// ContentType is the Prometheus text exposition content type served at
// /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// payload is one rendered snapshot: both documents derive from the same
// registry state, so they swap in together.
type payload struct {
	prom []byte
	js   []byte
}

// Server is a live metrics endpoint. Create with Listen, feed with Publish,
// stop with Close.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	snap atomic.Value // *payload
}

// Listen starts serving on addr (host:port; ":0" picks a free port — read it
// back with Addr). The endpoint is alive immediately; before the first
// Publish both documents are empty.
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpexport: %w", err)
	}
	s := &Server{ln: ln}
	s.snap.Store(&payload{prom: []byte{}, js: []byte("{}\n")})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.Write(s.snap.Load().(*payload).prom)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.snap.Load().(*payload).js)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "<html><body><h1>dloop telemetry</h1><ul>"+
			"<li><a href=\"/metrics\">/metrics</a> (Prometheus)</li>"+
			"<li><a href=\"/metrics.json\">/metrics.json</a></li>"+
			"<li><a href=\"/debug/pprof/\">/debug/pprof/</a></li>"+
			"</ul></body></html>")
	})

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish renders r into both exposition forms and swaps them in atomically.
// Call from the simulation goroutine at a quiescent point with an independent
// registry (obs.Collector.SnapshotRegistry); the server never retains r.
func (s *Server) Publish(r *obs.Registry) error {
	snap := r.Snapshot()
	var prom bytes.Buffer
	if err := WriteProm(&prom, snap); err != nil {
		return err
	}
	var js bytes.Buffer
	enc := json.NewEncoder(&js)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	s.snap.Store(&payload{prom: prom.Bytes(), js: js.Bytes()})
	return nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// promName maps a dotted registry name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dloop_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel maps a registry label key to a valid Prometheus label name
// (e.g. "gc.policy" -> "gc_policy").
func promLabel(k string) string {
	var b strings.Builder
	for i, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_',
			r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelSet renders the registry-wide labels plus extras into one {...} block
// ("" when empty). Keys render in sorted order.
func labelSet(base map[string]string, extraK, extraV string) string {
	n := len(base)
	if extraK != "" {
		n++
	}
	if n == 0 {
		return ""
	}
	keys := make([]string, 0, n)
	for k := range base {
		keys = append(keys, k)
	}
	if extraK != "" {
		if _, clash := base[extraK]; !clash {
			keys = append(keys, extraK)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := base[k]
		if k == extraK {
			v = extraV
		}
		fmt.Fprintf(&b, `%s="%s"`, promLabel(k), escapeLabel(v))
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm writes snap in the Prometheus text exposition format (version
// 0.0.4). Counters and gauges map directly; histograms render as summaries
// with p50/p99/p999 quantiles in milliseconds plus _sum/_count; vectors
// become one labeled family per name. Time series have no exposition analogue
// and are skipped — scrape deltas reconstruct them on the Prometheus side.
// Families render in sorted name order so output is deterministic.
func WriteProm(w *bytes.Buffer, snap obs.RegistrySnapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s%s %d\n", pn, labelSet(snap.Labels, "", ""), snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(w, "%s%s %s\n", pn, labelSet(snap.Labels, "", ""), fmtFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := promName(name) + "_ms"
		fmt.Fprintf(w, "# TYPE %s summary\n", pn)
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", h.P50Ms}, {"0.99", h.P99Ms}, {"0.999", h.P999Ms}} {
			fmt.Fprintf(w, "%s%s %s\n", pn, labelSet(snap.Labels, "quantile", q.q), fmtFloat(q.v))
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", pn, labelSet(snap.Labels, "", ""), fmtFloat(h.MeanMs*float64(h.N)))
		fmt.Fprintf(w, "%s_count%s %d\n", pn, labelSet(snap.Labels, "", ""), h.N)
	}

	names = names[:0]
	for name := range snap.Vectors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Vectors[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		for i, val := range v.Values {
			fmt.Fprintf(w, "%s%s %d\n", pn, labelSet(snap.Labels, v.Label, strconv.Itoa(i)), val)
		}
	}
	return nil
}
