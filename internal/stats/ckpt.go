package stats

import (
	"dloop/internal/ckpt"
	"dloop/internal/sim"
)

// EncodeWelford appends a Welford accumulator to w. Floats travel as IEEE
// bit patterns, so a round-trip reproduces running means bit-exactly.
func EncodeWelford(w *ckpt.Writer, s Welford) {
	w.I64(s.n)
	w.F64(s.mean)
	w.F64(s.m2)
	w.F64(s.min)
	w.F64(s.max)
}

// DecodeWelford reads a Welford written by EncodeWelford.
func DecodeWelford(r *ckpt.Reader) Welford {
	return Welford{n: r.I64(), mean: r.F64(), m2: r.F64(), min: r.F64(), max: r.F64()}
}

// EncodeLatencyHist appends a LatencyHist to w, preserving the nil/non-nil
// state of the bucket slice so re-encoding a restored histogram is
// byte-identical.
func EncodeLatencyHist(w *ckpt.Writer, h LatencyHist) {
	w.Bool(h.counts != nil)
	if h.counts != nil {
		w.I64s(h.counts)
	}
	w.I64(h.total)
}

// DecodeLatencyHist reads a LatencyHist written by EncodeLatencyHist.
func DecodeLatencyHist(r *ckpt.Reader) LatencyHist {
	var h LatencyHist
	if r.Bool() {
		h.counts = r.I64s()
		if h.counts == nil && r.Err() == nil {
			// A non-nil histogram always has histMaxBuckets buckets; an empty
			// slab here means the writer and this reader disagree.
			h.counts = make([]int64, 0)
		}
	}
	h.total = r.I64()
	return h
}

// EncodeTimeSeries appends a possibly-nil TimeSeries to w.
func EncodeTimeSeries(w *ckpt.Writer, ts *TimeSeries) {
	w.Bool(ts != nil)
	if ts == nil {
		return
	}
	w.I64(int64(ts.bucket))
	w.U32(uint32(len(ts.buckets)))
	for _, b := range ts.buckets {
		EncodeWelford(w, b)
	}
}

// DecodeTimeSeries reads a TimeSeries written by EncodeTimeSeries, returning
// nil when none was encoded.
func DecodeTimeSeries(r *ckpt.Reader) *TimeSeries {
	if !r.Bool() {
		return nil
	}
	ts := &TimeSeries{bucket: sim.Duration(r.I64())}
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if n > 0 {
		ts.buckets = make([]Welford, n)
		for i := range ts.buckets {
			ts.buckets[i] = DecodeWelford(r)
		}
	}
	return ts
}
