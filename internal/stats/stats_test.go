package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dloop/internal/sim"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := w.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2 (population)", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator should report zero mean/stddev")
	}
	// An empty accumulator has no extremes: 0 would masquerade as a real
	// zero-latency sample, so Min/Max report NaN instead.
	if !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Errorf("empty min/max = %v/%v, want NaN", w.Min(), w.Max())
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 || w.SampleVar() != 0 || w.Min() != 3 || w.Max() != 3 {
		t.Error("single sample")
	}
}

func TestWelfordSampleVar(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	// m2 = 32 over 8 samples: population variance 4, sample variance 32/7.
	if got := w.Var(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Var = %v, want 4", got)
	}
	if got := w.SampleVar(); math.Abs(got-32.0/7.0) > 1e-9 {
		t.Errorf("SampleVar = %v, want %v", got, 32.0/7.0)
	}
	if w.SampleVar() <= w.Var() {
		t.Error("Bessel's correction must make SampleVar exceed Var for n > 1")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.StdDev()-all.StdDev()) > 1e-9 {
		t.Errorf("merged sd %v vs %v", a.StdDev(), all.StdDev())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max")
	}
	// Merging into empty copies.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Error("merge into empty")
	}
	// Merging empty is a no-op.
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Error("merge of empty changed state")
	}
}

// Property: Welford mean/stddev agree with the naive two-pass computation.
func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		sd := math.Sqrt(ss / float64(len(clean)))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(w.Mean()-mean)/scale < 1e-8 &&
			math.Abs(w.StdDev()-sd)/math.Max(1, sd) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Duration(i) * sim.Microsecond)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	med := h.Quantile(0.5).Microseconds()
	if med < 350 || med > 650 {
		t.Errorf("median %v µs, want ≈500 within bucket error", med)
	}
	p99 := h.Quantile(0.99).Microseconds()
	if p99 < 800 || p99 > 1100 {
		t.Errorf("p99 %v µs, want ≈990", p99)
	}
	if h.Quantile(0.5) > h.Quantile(0.999) {
		t.Error("quantiles must be monotone")
	}
}

func TestLatencyHistEdgeCases(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 {
		t.Error("empty hist quantile should be 0")
	}
	h.Add(0)
	h.Add(-5)
	if h.N() != 2 {
		t.Error("zero/negative samples should still count")
	}
	var big LatencyHist
	big.Add(sim.Duration(math.MaxInt64))
	if big.Quantile(1.0) <= 0 {
		t.Error("huge sample should clamp to last bucket")
	}
}

// Quantiles at the extremes of q, and with all mass in one bucket, must
// behave: p100 of a single-bucket histogram is that bucket, and q <= 0
// clamps to the first occupied bucket instead of indexing before it.
func TestLatencyHistPercentileEdges(t *testing.T) {
	var empty LatencyHist
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	var single LatencyHist
	d := 100 * sim.Microsecond
	for i := 0; i < 50; i++ {
		single.Add(d)
	}
	lo, hi := single.Quantile(0), single.Quantile(1)
	if lo != hi {
		t.Errorf("single-bucket p0 %v != p100 %v", lo, hi)
	}
	// The reported value is the bucket's lower bound: within ~26% below d.
	if hi > d || float64(hi) < float64(d)/1.27 {
		t.Errorf("single-bucket quantile %v outside bucket containing %v", hi, d)
	}

	var h LatencyHist
	h.Add(1 * sim.Microsecond)
	h.Add(1 * sim.Millisecond)
	if p0, p100 := h.Quantile(0), h.Quantile(1); p0 >= p100 {
		t.Errorf("p0 %v should be below p100 %v", p0, p100)
	}
	if h.Quantile(0) != h.Quantile(0.5) {
		t.Error("with two samples, p0 and p50 land in the first bucket")
	}
}

func TestStdDevInt64(t *testing.T) {
	if got := StdDevInt64(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := StdDevInt64([]int64{5, 5, 5}); got != 0 {
		t.Errorf("constant: %v", got)
	}
	got := StdDevInt64([]int64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("got %v, want 2", got)
	}
}

func TestSDRPP(t *testing.T) {
	if got := SDRPP([]int64{10, 10, 10}); got != 0 {
		t.Errorf("perfectly even: %v, want 0", got)
	}
	uneven := SDRPP([]int64{1000000, 0, 0, 0})
	even := SDRPP([]int64{250000, 250001, 249999, 250000})
	if uneven <= even {
		t.Errorf("uneven %.2f should exceed even %.2f", uneven, even)
	}
	// ln of the stddev: stddev of {1000000,0,0,0} is 433012.7
	if math.Abs(uneven-math.Log(433012.70189)) > 1e-3 {
		t.Errorf("uneven = %v", uneven)
	}
}

// Golden value pinning the log convention: the paper plots SDRPP "on log
// scale (base e)", so the metric is ln(stddev), not log10 or log2. Per-plane
// counts {10,20,30,40} have population stddev sqrt(125); a base change would
// shift the result by >0.7 and fail loudly.
func TestSDRPPGoldenNaturalLog(t *testing.T) {
	got := SDRPP([]int64{10, 20, 30, 40})
	want := 2.4141568686511508 // ln(sqrt(125))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SDRPP = %.16f, want ln(sqrt(125)) = %.16f", got, want)
	}
	if math.Abs(got-math.Log10(math.Sqrt(125))) < 0.5 {
		t.Error("SDRPP is using log10, want natural log")
	}
	// Below the sd<1 clamp threshold the metric is exactly 0, never negative.
	if got := SDRPP([]int64{5, 5, 5, 6}); got != 0 {
		t.Errorf("sub-threshold SDRPP = %v, want clamp to 0", got)
	}
}

func TestCV(t *testing.T) {
	if CV(nil) != 0 || CV([]int64{0, 0}) != 0 {
		t.Error("degenerate CV should be 0")
	}
	got := CV([]int64{8, 12})
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("CV = %v, want 0.2", got)
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe(nil); got != "n=0" {
		t.Errorf("empty Describe: %q", got)
	}
	s := Describe([]int64{3, 1, 2})
	for _, want := range []string{"n=3", "min=1", "max=3", "med=2"} {
		if !containsStr(s, want) {
			t.Errorf("Describe %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestTimeSeries(t *testing.T) {
	if _, err := NewTimeSeries(0); err == nil {
		t.Fatal("zero bucket accepted")
	}
	ts, err := NewTimeSeries(1 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts.Add(sim.Time(100*sim.Millisecond), 1)
	ts.Add(sim.Time(900*sim.Millisecond), 3)
	ts.Add(sim.Time(2500*sim.Millisecond), 10)
	ts.Add(-5, 2) // clamps to bucket 0
	if ts.Buckets() != 3 {
		t.Fatalf("Buckets = %d, want 3", ts.Buckets())
	}
	b0 := ts.Bucket(0)
	if b0.N() != 3 || b0.Mean() != 2 {
		t.Fatalf("bucket 0: n=%d mean=%v", b0.N(), b0.Mean())
	}
	if b := ts.Bucket(1); b.N() != 0 {
		t.Fatal("bucket 1 should be empty")
	}
	if b := ts.Bucket(99); b.N() != 0 {
		t.Fatal("out-of-range bucket should be empty")
	}
	if b := ts.Bucket(-1); b.N() != 0 {
		t.Fatal("negative bucket should be empty")
	}
	if got := ts.Peak(); got != 2 {
		t.Fatalf("Peak = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := ts.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean=") {
		t.Fatalf("Render output: %q", buf.String())
	}
}

func TestLatencyHistMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b LatencyHist
	for i := 0; i < 5000; i++ {
		d := sim.Duration(rng.Int63n(int64(2 * sim.Second)))
		whole.Add(d)
		if i%3 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	m := a.Clone()
	m.Merge(b)
	if m.N() != whole.N() {
		t.Fatalf("merged N=%d, want %d", m.N(), whole.N())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
		if got, want := m.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %v, sequential %v", q, got, want)
		}
	}
	// Merging an empty histogram is a no-op, including onto an empty one.
	var empty, dst LatencyHist
	dst.Merge(empty)
	if dst.N() != 0 || dst.counts != nil {
		t.Fatal("empty merge materialized buckets")
	}
	dst.Merge(a)
	if dst.N() != a.N() {
		t.Fatalf("merge into empty N=%d, want %d", dst.N(), a.N())
	}
}

func TestTimeSeriesMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole, _ := NewTimeSeries(1 * sim.Second)
	a, _ := NewTimeSeries(1 * sim.Second)
	b, _ := NewTimeSeries(1 * sim.Second)
	for i := 0; i < 2000; i++ {
		at := sim.Time(rng.Int63n(int64(8 * sim.Second)))
		v := rng.Float64() * 10
		whole.Add(at, v)
		// Split deterministically; merging a (longer) into b (shorter) and
		// vice versa must both reconstruct the whole.
		if i%4 == 0 {
			b.Add(at, v)
		} else {
			a.Add(at, v)
		}
	}
	check := func(m *TimeSeries) {
		t.Helper()
		if m.Buckets() != whole.Buckets() {
			t.Fatalf("merged buckets = %d, want %d", m.Buckets(), whole.Buckets())
		}
		for i := 0; i < whole.Buckets(); i++ {
			mb, wb := m.Bucket(i), whole.Bucket(i)
			if mb.N() != wb.N() || math.Abs(mb.Mean()-wb.Mean()) > 1e-9 || mb.Max() != wb.Max() {
				t.Errorf("bucket %d: merged n=%d mean=%v max=%v, want n=%d mean=%v max=%v",
					i, mb.N(), mb.Mean(), mb.Max(), wb.N(), wb.Mean(), wb.Max())
			}
		}
	}
	m1 := a.Clone()
	m1.Merge(b)
	check(m1)
	m2 := b.Clone()
	m2.Merge(a)
	check(m2)

	// Merging nil or an empty series is a no-op.
	before := m1.Buckets()
	m1.Merge(nil)
	empty, _ := NewTimeSeries(1 * sim.Second)
	m1.Merge(empty)
	if m1.Buckets() != before {
		t.Fatal("no-op merge changed bucket count")
	}

	// Mismatched bucket widths are a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("bucket-width mismatch did not panic")
		}
	}()
	other, _ := NewTimeSeries(2 * sim.Second)
	other.Add(0, 1)
	m1.Merge(other)
}
