// Package stats provides the metrics the paper reports: streaming mean and
// standard deviation of response times (Welford), latency histograms, the
// SDRPP metric (standard deviation of per-plane request counts, plotted in
// natural log), and wear-leveling dispersion.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dloop/internal/sim"
)

// Welford accumulates a streaming mean and variance without storing samples.
//
// Variance convention: Var/StdDev divide by n (population variance), treating
// the run's samples as the complete population — the convention the paper's
// SDRPP metric and response-time tables use. SampleVar divides by n-1
// (Bessel's correction) for callers estimating the variance of a larger
// population from a sample.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (m2/n), or 0 with fewer than two
// samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance (m2/(n-1), Bessel's
// correction), or 0 with fewer than two samples.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample, or NaN with no samples. NaN, not 0: an
// accumulator that saw nothing has no minimum, and a silent 0 would read as
// "some request finished instantly" in a min-latency report. JSON emitters
// must sanitize it (encoding/json rejects NaN).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest sample, or NaN with no samples (see Min).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// LatencyHist is a logarithmic latency histogram with approximate quantiles.
// Buckets grow by ~26% per step (32 buckets per decade), bounding quantile
// error well under the variation the experiments care about.
type LatencyHist struct {
	counts []int64
	total  int64
}

const (
	histBucketsPerDecade = 32
	histMaxBuckets       = 32 * 12 // 1 ns .. 1000 s
)

func histBucket(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	b := int(math.Log10(float64(d)) * histBucketsPerDecade)
	if b < 0 {
		b = 0
	}
	if b >= histMaxBuckets {
		b = histMaxBuckets - 1
	}
	return b
}

func histLower(b int) sim.Duration {
	return sim.Duration(math.Pow(10, float64(b)/histBucketsPerDecade))
}

// Add records one latency sample.
func (h *LatencyHist) Add(d sim.Duration) {
	if h.counts == nil {
		h.counts = make([]int64, histMaxBuckets)
	}
	h.counts[histBucket(d)]++
	h.total++
}

// N returns the number of recorded samples.
func (h *LatencyHist) N() int64 { return h.total }

// Clone returns an independent deep copy of the histogram; the checkpoint
// machinery needs one because the bucket slice is unexported.
func (h *LatencyHist) Clone() LatencyHist {
	out := LatencyHist{total: h.total}
	if h.counts != nil {
		out.counts = append([]int64(nil), h.counts...)
	}
	return out
}

// Merge folds another histogram into h. Bucket counts are integers, so the
// merge is exact: a merged histogram equals one that saw every sample
// directly, regardless of fold order.
func (h *LatencyHist) Merge(o LatencyHist) {
	if o.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, histMaxBuckets)
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.total += o.total
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1), or 0
// with no samples.
func (h *LatencyHist) Quantile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			return histLower(b)
		}
	}
	return histLower(histMaxBuckets - 1)
}

// StdDevInt64 returns the population standard deviation of an integer
// series. SDRPP is this over per-plane request counts.
func StdDevInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// SDRPP computes the paper's "Std. Dev. of Requests per Plane" metric over
// per-plane counts, returned in natural log as the figures plot it ("plotted
// on log scale (base e) because the values are huge"). Zero or tiny standard
// deviations clamp to 0 rather than going to -inf.
func SDRPP(perPlane []int64) float64 {
	sd := StdDevInt64(perPlane)
	if sd < 1 {
		return 0
	}
	return math.Log(sd)
}

// CV returns the coefficient of variation (stddev/mean) of an integer
// series, used for wear-leveling dispersion of per-block erase counts.
func CV(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	return StdDevInt64(xs) / mean
}

// Describe formats a five-number summary of an integer series for reports.
func Describe(xs []int64) string {
	if len(xs) == 0 {
		return "n=0"
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) int64 { return s[int(p*float64(len(s)-1))] }
	return fmt.Sprintf("n=%d min=%d p25=%d med=%d p75=%d max=%d sd=%.1f",
		len(s), s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1], StdDevInt64(s))
}
