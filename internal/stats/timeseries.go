package stats

import (
	"fmt"
	"io"

	"dloop/internal/sim"
)

// TimeSeries buckets samples by simulated time, giving the evolution of a
// metric over a run — e.g. mean response time per second, which makes GC
// stalls visible as spikes instead of disappearing into a global mean.
type TimeSeries struct {
	bucket  sim.Duration
	buckets []Welford
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(bucket sim.Duration) (*TimeSeries, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("stats: bucket width must be positive, got %v", bucket)
	}
	return &TimeSeries{bucket: bucket}, nil
}

// Add records a sample observed at simulated time at.
func (ts *TimeSeries) Add(at sim.Time, value float64) {
	if at < 0 {
		at = 0
	}
	idx := int(int64(at) / int64(ts.bucket))
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, Welford{})
	}
	ts.buckets[idx].Add(value)
}

// Buckets returns the number of buckets spanned so far.
func (ts *TimeSeries) Buckets() int { return len(ts.buckets) }

// Bucket returns the accumulator for one bucket index.
func (ts *TimeSeries) Bucket(i int) Welford {
	if i < 0 || i >= len(ts.buckets) {
		return Welford{}
	}
	return ts.buckets[i]
}

// BucketWidth returns the configured bucket width.
func (ts *TimeSeries) BucketWidth() sim.Duration { return ts.bucket }

// Clone returns an independent deep copy of the series (nil clones to nil);
// Welford accumulators are value types, so copying the bucket slice copies
// the state.
func (ts *TimeSeries) Clone() *TimeSeries {
	if ts == nil {
		return nil
	}
	out := &TimeSeries{bucket: ts.bucket}
	if ts.buckets != nil {
		out.buckets = append([]Welford(nil), ts.buckets...)
	}
	return out
}

// Merge folds another series into this one bucket by bucket, growing to
// cover the longer span. Bucket widths must match — merging differently
// bucketed series would smear samples across boundaries — so a mismatch
// panics as a programming error.
func (ts *TimeSeries) Merge(o *TimeSeries) {
	if o == nil || len(o.buckets) == 0 {
		return
	}
	if o.bucket != ts.bucket {
		panic(fmt.Sprintf("stats: merging TimeSeries with bucket %v into %v", o.bucket, ts.bucket))
	}
	for len(ts.buckets) < len(o.buckets) {
		ts.buckets = append(ts.buckets, Welford{})
	}
	for i, b := range o.buckets {
		ts.buckets[i].Merge(b)
	}
}

// Render writes "start_seconds n mean max" rows for every non-empty bucket.
func (ts *TimeSeries) Render(w io.Writer) error {
	for i, b := range ts.buckets {
		if b.N() == 0 {
			continue
		}
		start := sim.Duration(int64(ts.bucket) * int64(i)).Seconds()
		if _, err := fmt.Fprintf(w, "%10.1fs  n=%-7d mean=%10.3f  max=%10.3f\n",
			start, b.N(), b.Mean(), b.Max()); err != nil {
			return err
		}
	}
	return nil
}

// Peak returns the bucket index with the highest mean, or -1 if empty.
func (ts *TimeSeries) Peak() int {
	best, idx := -1.0, -1
	for i, b := range ts.buckets {
		if b.N() > 0 && b.Mean() > best {
			best, idx = b.Mean(), i
		}
	}
	return idx
}
