package ckpt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPrimitivesRoundTrip writes one of everything and reads it back.
func TestPrimitivesRoundTrip(t *testing.T) {
	w := NewWriter()
	defer PutWriter(w)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I32(-7)
	w.I64(-1 << 50)
	w.Int(-42)
	w.F64(math.Copysign(0, -1)) // signed zero must survive
	w.F64(3.14159)
	w.String("hello")
	w.String("")
	w.I64s([]int64{1, -2, 3})
	w.I64s(nil)
	w.I32s([]int32{-1, 2})
	w.Ints([]int{9, 8, 7})
	w.Bools([]bool{true, false, true})
	copy(w.Raw(3), []byte{1, 2, 3})

	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.I32(); got != -7 {
		t.Fatalf("I32 = %d", got)
	}
	if got := r.I64(); got != -1<<50 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("F64 lost the sign of -0: %v", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if got := r.I64s(); len(got) != 3 || got[1] != -2 {
		t.Fatalf("I64s = %v", got)
	}
	if got := r.I64s(); got != nil {
		t.Fatalf("nil I64s = %v", got)
	}
	if got := r.I32s(); len(got) != 2 || got[0] != -1 {
		t.Fatalf("I32s = %v", got)
	}
	if got := r.Ints(); len(got) != 3 || got[2] != 7 {
		t.Fatalf("Ints = %v", got)
	}
	if got := r.Bools(); len(got) != 3 || !got[0] || got[1] {
		t.Fatalf("Bools = %v", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	// Reading past the end is the sticky-error case, not a panic.
	if got := r.U64(); got != 0 {
		t.Fatalf("overread returned %d", got)
	}
	if r.Err() == nil {
		t.Fatal("overread not recorded")
	}
}

// TestContainerValidation corrupts a sealed container every way the header
// can lie and checks Open rejects each one.
func TestContainerValidation(t *testing.T) {
	seal := func() []byte {
		w := NewWriter()
		defer PutWriter(w)
		w.I64s([]int64{1, 2, 3, 4})
		w.String("payload")
		return append([]byte(nil), w.Seal()...)
	}
	if _, err := Open(seal()); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    string
	}{
		{"short", func(b []byte) []byte { return b[:headerSize-1] }, "short container"},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "bad magic"},
		{"version", func(b []byte) []byte { b[4]++; return b }, "format version"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }, "length"},
		{"bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.corrupt(seal()))
			if err == nil {
				t.Fatal("corrupted container accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSliceLenGuard feeds a payload whose length prefix claims more elements
// than the payload holds; the reader must fail, not allocate gigabytes.
func TestSliceLenGuard(t *testing.T) {
	w := NewWriter()
	defer PutWriter(w)
	w.U32(1 << 30) // claims 2^30 int64s = 8 GB
	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.I64s(); got != nil {
		t.Fatalf("overrunning slice decoded to %d elems", len(got))
	}
	if r.Err() == nil {
		t.Fatal("overrunning slice length not recorded")
	}
}

// TestBoolRejectsJunk checks a non-0/1 bool byte is a decode error: it means
// the reader has lost framing, and silently coercing would hide that.
func TestBoolRejectsJunk(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
	r = NewReader([]byte{6, 0, 0, 0, 1, 0, 1, 0, 2, 0})
	if r.Bools() != nil {
		t.Fatal("bool slab with junk byte decoded")
	}
}

// TestLoadFileRoundTrip writes a sealed container to disk, loads it through
// the pooled whole-file path, and decodes it; then again, to exercise reuse
// of the released buffer.
func TestLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	w := NewWriter()
	defer PutWriter(w)
	w.String("persisted")
	w.I64(99)
	if err := os.WriteFile(path, w.Seal(), 0o644); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		data, release, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Open(data)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.String(); got != "persisted" {
			t.Fatalf("round %d: %q", round, got)
		}
		if got := r.I64(); got != 99 {
			t.Fatalf("round %d: %d", round, got)
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		release()
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestSealedBytesDeterministic: equal writes produce byte-equal containers —
// the property the content-addressed warm-up cache leans on.
func TestSealedBytesDeterministic(t *testing.T) {
	mk := func() []byte {
		w := NewWriter()
		defer PutWriter(w)
		w.String("abc")
		w.Ints([]int{5, 6})
		w.F64(2.5)
		return append([]byte(nil), w.Seal()...)
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("identical writes sealed to different bytes")
	}
}
