// Package ckpt provides the binary primitives behind persistent warm-up
// checkpoints: a little-endian append Writer, a sticky-error Reader, and a
// self-describing file container (magic, format version, payload length,
// checksum).
//
// The package deliberately knows nothing about simulator state. Every state
// struct in this repository keeps its fields unexported, so the encode and
// decode logic for each type lives in the package that owns it (sim, flash,
// stats, the FTL schemes, ssd); ckpt only supplies the byte-level vocabulary
// they share. That keeps the import graph acyclic: ckpt imports nothing from
// the simulator, everyone else imports ckpt.
//
// Layout conventions: all integers are little-endian and fixed-width, slices
// are length-prefixed (u32 count, then the elements back to back), so any
// slab can be located by reading its prefix and skipped or mapped without
// parsing the elements. A container is read with exactly two ReadFull calls
// — header, then the whole payload into one (pooled) buffer — which is also
// the shape an mmap-based loader would want.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// Format constants for the file container.
const (
	// magic identifies a DLOOP checkpoint container.
	magic = "DLPC"
	// Version is the container format version. Bump it whenever any encoded
	// layout changes; readers reject other versions and the warm-up cache
	// falls back to fresh simulation.
	Version = 1
	// headerSize is magic(4) + version(u32) + payload length(u64) +
	// payload crc32(u32) + reserved(u32).
	headerSize = 4 + 4 + 8 + 4 + 4
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSliceElems bounds any single decoded slice. It is a defense against
// corrupt or truncated length prefixes that slipped past the checksum (or a
// caller decoding an unchecked payload), not a format limit: the guard in
// Reader compares the claimed byte size against the bytes actually left.
const maxSliceElems = 1 << 31

// A Writer appends fixed-width little-endian values to a growing buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// NewWriter returns a pooled Writer with the container header reserved;
// finish with Seal and recycle with PutWriter.
func NewWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.buf = append(w.buf[:0], make([]byte, headerSize)...)
	return w
}

// PutWriter recycles a Writer's buffer. The caller must be done with every
// slice obtained from Bytes or Seal.
func PutWriter(w *Writer) {
	if cap(w.buf) > 64<<20 { // don't pin giant buffers forever
		w.buf = nil
	}
	writerPool.Put(w)
}

// Len returns the number of bytes written so far (including the reserved
// header for writers from NewWriter).
func (w *Writer) Len() int { return len(w.buf) }

// Bytes returns the written buffer. The slice aliases the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Seal fills in the container header over the space NewWriter reserved —
// magic, version, payload length, payload checksum — and returns the
// complete container. The slice aliases the writer.
func (w *Writer) Seal() []byte {
	payload := w.buf[headerSize:]
	copy(w.buf[0:4], magic)
	binary.LittleEndian.PutUint32(w.buf[4:8], Version)
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[16:20], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(w.buf[20:24], 0)
	return w.buf
}

// grow extends the buffer by n bytes and returns the extension.
func (w *Writer) grow(n int) []byte {
	l := len(w.buf)
	if l+n <= cap(w.buf) {
		w.buf = w.buf[:l+n]
	} else {
		w.buf = append(w.buf, make([]byte, n)...)
	}
	return w.buf[l:]
}

// Raw extends the buffer by n bytes and returns the extension for the caller
// to fill — the escape hatch for byte-like slabs (page states) that would
// otherwise need an element-wise append.
func (w *Writer) Raw(n int) []byte { return w.grow(n) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.grow(4), v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.grow(8), v)
}

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a little-endian int64.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE 754 bit pattern, so round-trips are
// bit-exact (including NaN payloads and signed zeros).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// I64s appends a length-prefixed []int64 slab.
func (w *Writer) I64s(s []int64) {
	w.U32(uint32(len(s)))
	dst := w.grow(8 * len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// I32s appends a length-prefixed []int32 slab.
func (w *Writer) I32s(s []int32) {
	w.U32(uint32(len(s)))
	dst := w.grow(4 * len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

// Ints appends a length-prefixed []int slab, widened to int64.
func (w *Writer) Ints(s []int) {
	w.U32(uint32(len(s)))
	dst := w.grow(8 * len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(int64(v)))
	}
}

// Bools appends a length-prefixed []bool slab, one byte per element.
func (w *Writer) Bools(s []bool) {
	w.U32(uint32(len(s)))
	dst := w.grow(len(s))
	for i, v := range s {
		if v {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// A Reader consumes a buffer written by Writer. Errors are sticky: after the
// first failure every read returns a zero value, so decoders can run
// straight-line and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over a raw payload (no container header).
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Open validates a container (magic, version, length, checksum) and returns
// a Reader over its payload. The Reader aliases data; decoded slices are
// always copied out, so data may be recycled once decoding finishes.
func Open(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("ckpt: short container: %d bytes", len(data))
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("ckpt: format version %d, want %d", v, Version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("ckpt: payload length %d does not match container size %d", n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if sum := crc32.Checksum(payload, crcTable); sum != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, fmt.Errorf("ckpt: payload checksum mismatch")
	}
	return NewReader(payload), nil
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

// Failf lets a decoder record a semantic error (bad flag byte, unknown
// variant) through the same sticky channel as read errors.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take consumes n bytes and returns them, or nil after a fault.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail("truncated payload: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// sliceLen reads a u32 length prefix and validates the claimed payload fits.
func (r *Reader) sliceLen(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n > maxSliceElems || n*elemSize > len(r.buf)-r.off {
		r.fail("slice length %d overruns payload", n)
		return 0
	}
	return n
}

// Raw consumes n bytes and returns a view into the payload (not a copy).
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool byte")
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64-encoded int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	return string(r.take(n))
}

// I64s reads a length-prefixed []int64 slab into a fresh slice. A zero
// length decodes to nil, mirroring how Writer encodes nil and empty alike.
func (r *Reader) I64s() []int64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	b := r.take(8 * n)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// I32s reads a length-prefixed []int32 slab into a fresh slice.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen(4)
	if n == 0 {
		return nil
	}
	b := r.take(4 * n)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Ints reads a length-prefixed int64-encoded []int slab into a fresh slice.
func (r *Reader) Ints() []int {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	b := r.take(8 * n)
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// Bools reads a length-prefixed []bool slab into a fresh slice.
func (r *Reader) Bools() []bool {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	b := r.take(n)
	out := make([]bool, n)
	for i, v := range b {
		switch v {
		case 0:
		case 1:
			out[i] = true
		default:
			r.fail("bad bool byte in slab")
			return nil
		}
	}
	return out
}

// bufPool recycles whole-file read buffers so repeated cache loads do not
// churn multi-megabyte allocations. Entries are *[]byte to keep Put
// allocation-free.
var bufPool sync.Pool

// LoadFile reads an entire file into a pooled buffer with one ReadFull and
// returns the contents plus a release func that recycles the buffer. The
// caller must not retain data (or anything aliasing it) past release.
func LoadFile(path string) (data []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	n := int(info.Size())
	var bp *[]byte
	if v := bufPool.Get(); v != nil && cap(*v.(*[]byte)) >= n {
		bp = v.(*[]byte)
	} else {
		b := make([]byte, n)
		bp = &b
	}
	buf := (*bp)[:n]
	release = func() {
		*bp = buf[:0]
		bufPool.Put(bp)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		release()
		return nil, nil, err
	}
	return buf, release, nil
}
