// Package workload synthesizes the five enterprise traces of the paper's
// Table II. The real traces (UMass Financial1/2, TPC-C, Microsoft Exchange,
// Windows Build server) are not redistributable, so each profile reproduces
// the published characteristics that drive FTL behaviour: read/write mix,
// request-size distribution, arrival intensity and burstiness, footprint,
// temporal locality (Zipf), and sequentiality. DESIGN.md §4 documents the
// substitution.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dloop/internal/sim"
	"dloop/internal/trace"
)

// SizeWeight gives one entry of a request-size distribution.
type SizeWeight struct {
	Sectors int     // request length
	Weight  float64 // relative probability
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name string

	WriteRatio float64      // fraction of requests that are writes
	Sizes      []SizeWeight // request-size distribution

	RatePerSec float64 // mean arrival rate
	BurstProb  float64 // probability a request arrives back-to-back with its predecessor

	FootprintBytes int64   // span of the address space the workload touches
	ZipfS          float64 // temporal-locality skew; <=1 means uniform
	SeqProb        float64 // probability of continuing a sequential run

	AlignSectors int // starting-address alignment of random accesses
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	if p.WriteRatio < 0 || p.WriteRatio > 1 {
		return fmt.Errorf("workload %s: WriteRatio %v out of [0,1]", p.Name, p.WriteRatio)
	}
	if len(p.Sizes) == 0 {
		return fmt.Errorf("workload %s: empty size distribution", p.Name)
	}
	total := 0.0
	for _, s := range p.Sizes {
		if s.Sectors <= 0 || s.Weight < 0 {
			return fmt.Errorf("workload %s: bad size entry %+v", p.Name, s)
		}
		total += s.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: size weights sum to zero", p.Name)
	}
	if p.RatePerSec <= 0 {
		return fmt.Errorf("workload %s: RatePerSec must be positive", p.Name)
	}
	if p.BurstProb < 0 || p.BurstProb >= 1 {
		return fmt.Errorf("workload %s: BurstProb %v out of [0,1)", p.Name, p.BurstProb)
	}
	if p.SeqProb < 0 || p.SeqProb >= 1 {
		return fmt.Errorf("workload %s: SeqProb %v out of [0,1)", p.Name, p.SeqProb)
	}
	if p.FootprintBytes < int64(p.maxSectors())*trace.SectorSize {
		return fmt.Errorf("workload %s: footprint %d smaller than largest request", p.Name, p.FootprintBytes)
	}
	if p.AlignSectors <= 0 {
		return fmt.Errorf("workload %s: AlignSectors must be positive", p.Name)
	}
	return nil
}

func (p Profile) maxSectors() int {
	m := 0
	for _, s := range p.Sizes {
		if s.Sectors > m {
			m = s.Sectors
		}
	}
	return m
}

// MeanSizeSectors returns the expected request length under the profile's
// size distribution.
func (p Profile) MeanSizeSectors() float64 {
	var sum, w float64
	for _, s := range p.Sizes {
		sum += float64(s.Sectors) * s.Weight
		w += s.Weight
	}
	return sum / w
}

// Generator produces a deterministic request stream for a profile.
type Generator struct {
	p   Profile
	rng *rand.Rand
	z   *rand.Zipf

	footprintSectors int64
	slots            int64 // footprint divided into alignment-sized slots
	perm             int64 // multiplier of the rank->slot bijection

	now     sim.Time
	meanIAT float64 // nanoseconds, for the non-burst branch

	seqNext    int64 // next sector of the current sequential run, -1 if none
	sizeCDF    []float64
	sizeBySlot []int
}

// NewGenerator returns a generator for p seeded with seed. Equal (profile,
// seed) pairs yield identical streams.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:       p,
		rng:     rand.New(rand.NewSource(seed)),
		seqNext: -1,
	}
	g.footprintSectors = p.FootprintBytes / trace.SectorSize
	g.slots = g.footprintSectors / int64(p.AlignSectors)
	if g.slots < 1 {
		g.slots = 1
	}
	// Bijection rank -> slot spreads the Zipf head across the address space
	// so hot pages do not all share a few translation pages.
	g.perm = 2654435761 % g.slots
	for gcd(g.perm, g.slots) != 1 {
		g.perm++
	}
	if p.ZipfS > 1 {
		g.z = rand.NewZipf(g.rng, p.ZipfS, 1, uint64(g.slots-1))
	}
	if p.RatePerSec > 0 {
		g.meanIAT = float64(sim.Second) / (p.RatePerSec * (1 - p.BurstProb))
	}
	var cum float64
	for _, s := range p.Sizes {
		cum += s.Weight
		g.sizeCDF = append(g.sizeCDF, cum)
		g.sizeBySlot = append(g.sizeBySlot, s.Sectors)
	}
	for i := range g.sizeCDF {
		g.sizeCDF[i] /= cum
	}
	return g, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Next produces the next request in the stream.
func (g *Generator) Next() (trace.Request, error) {
	// Arrival process: Poisson with back-to-back bursts.
	if g.rng.Float64() >= g.p.BurstProb {
		g.now = g.now.Add(sim.Duration(g.rng.ExpFloat64() * g.meanIAT))
	}

	sectors := g.pickSize()
	var lbn int64
	if g.seqNext >= 0 && g.rng.Float64() < g.p.SeqProb {
		lbn = g.seqNext
		if lbn+int64(sectors) > g.footprintSectors {
			lbn = 0
		}
	} else {
		slot := g.pickSlot()
		lbn = slot * int64(g.p.AlignSectors)
		if lbn+int64(sectors) > g.footprintSectors {
			lbn = g.footprintSectors - int64(sectors)
		}
	}
	g.seqNext = lbn + int64(sectors)

	op := trace.OpRead
	if g.rng.Float64() < g.p.WriteRatio {
		op = trace.OpWrite
	}
	return trace.Request{Arrival: g.now, LBN: lbn, Sectors: sectors, Op: op}, nil
}

func (g *Generator) pickSize() int {
	u := g.rng.Float64()
	for i, c := range g.sizeCDF {
		if u <= c {
			return g.sizeBySlot[i]
		}
	}
	return g.sizeBySlot[len(g.sizeBySlot)-1]
}

func (g *Generator) pickSlot() int64 {
	if g.z == nil {
		return g.rng.Int63n(g.slots)
	}
	rank := int64(g.z.Uint64())
	return (rank * g.perm) % g.slots
}

// NextN fills buf with the next len(buf) requests of the stream and returns
// how many it produced. Replay loops reuse one buffer across calls instead of
// paying a call per request.
func (g *Generator) NextN(buf []trace.Request) (int, error) {
	for i := range buf {
		r, err := g.Next()
		if err != nil {
			return i, err
		}
		buf[i] = r
	}
	return len(buf), nil
}

// Generate materializes the first n requests of the stream.
func Generate(p Profile, seed int64, n int) ([]trace.Request, error) {
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Request, n)
	if _, err := g.NextN(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleFootprint returns a copy of p with the footprint scaled by f, keeping
// it aligned and at least one maximal request long. Tests use it to shrink
// workloads onto miniature devices.
func (p Profile) ScaleFootprint(f float64) Profile {
	q := p
	fp := int64(math.Round(float64(p.FootprintBytes) * f))
	min := int64(p.maxSectors()) * trace.SectorSize
	if fp < min {
		fp = min
	}
	align := int64(p.AlignSectors) * trace.SectorSize
	if fp%align != 0 {
		fp += align - fp%align
	}
	q.FootprintBytes = fp
	return q
}
