package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dloop/internal/trace"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) != 5 {
		t.Errorf("want the paper's 5 workloads, got %d", len(All()))
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("Financial1")
	if !ok || p.Name != "Financial1" {
		t.Fatal("ByName(Financial1) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should reject unknown names")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := Financial1()
	cases := []func(*Profile){
		func(p *Profile) { p.WriteRatio = 1.5 },
		func(p *Profile) { p.WriteRatio = -0.1 },
		func(p *Profile) { p.Sizes = nil },
		func(p *Profile) { p.Sizes = []SizeWeight{{Sectors: 0, Weight: 1}} },
		func(p *Profile) { p.Sizes = []SizeWeight{{Sectors: 8, Weight: 0}} },
		func(p *Profile) { p.RatePerSec = 0 },
		func(p *Profile) { p.BurstProb = 1.0 },
		func(p *Profile) { p.SeqProb = -0.1 },
		func(p *Profile) { p.FootprintBytes = 512 },
		func(p *Profile) { p.AlignSectors = 0 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := Financial1().ScaleFootprint(0.01)
	a, err := Generate(p, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Generate(p, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestNextNMatchesNext verifies chunked generation is just a view of the
// same stream: arbitrary chunk boundaries must reproduce per-request Next.
func TestNextNMatchesNext(t *testing.T) {
	p := Financial1().ScaleFootprint(0.01)
	want, err := Generate(p, 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Request, 64)
	var got []trace.Request
	for _, chunk := range []int{1, 7, 64, 3, 64, 64, 64, 64, 64, 64, 41} {
		n, err := g.NextN(buf[:chunk])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("generated %d requests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestGeneratedStreamMatchesProfile(t *testing.T) {
	for _, p := range All() {
		p := p.ScaleFootprint(0.05)
		reqs, err := Generate(p, 42, 20000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := trace.Summarize(reqs)

		if got := s.WriteRatio(); math.Abs(got-p.WriteRatio) > 0.02 {
			t.Errorf("%s: write ratio %.3f, want %.3f±0.02", p.Name, got, p.WriteRatio)
		}
		wantMean := p.MeanSizeSectors() * trace.SectorSize
		// Sequential continuation reuses the previous size draw, so allow a
		// modest tolerance.
		if got := s.MeanSizeBytes(); math.Abs(got-wantMean)/wantMean > 0.10 {
			t.Errorf("%s: mean size %.0f B, want ≈%.0f B", p.Name, got, wantMean)
		}
		if got := s.Rate(); math.Abs(got-p.RatePerSec)/p.RatePerSec > 0.15 {
			t.Errorf("%s: rate %.1f req/s, want ≈%.1f", p.Name, got, p.RatePerSec)
		}
		if s.MaxEnd*trace.SectorSize > p.FootprintBytes {
			t.Errorf("%s: footprint exceeded: %d > %d", p.Name, s.MaxEnd*trace.SectorSize, p.FootprintBytes)
		}
		// Arrivals non-decreasing.
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Arrival < reqs[i-1].Arrival {
				t.Fatalf("%s: arrivals not monotone at %d", p.Name, i)
			}
		}
	}
}

func TestZipfLocalitySkew(t *testing.T) {
	// Financial1 (Zipf) should concentrate accesses far more than TPC-C
	// (uniform) on the same number of slots.
	count := func(p Profile) float64 {
		p = p.ScaleFootprint(0.01)
		reqs, err := Generate(p, 1, 10000)
		if err != nil {
			t.Fatal(err)
		}
		freq := map[int64]int{}
		for _, r := range reqs {
			freq[r.LBN]++
		}
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(reqs))
	}
	hot := count(Financial1())
	cold := count(TPCC())
	if hot < 4*cold {
		t.Errorf("Zipf workload hottest-address share %.4f should dwarf uniform %.4f", hot, cold)
	}
}

func TestSequentialRuns(t *testing.T) {
	p := Build().ScaleFootprint(0.05)
	reqs, err := Generate(p, 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].LBN == reqs[i-1].End() {
			seq++
		}
	}
	frac := float64(seq) / float64(len(reqs)-1)
	if math.Abs(frac-p.SeqProb) > 0.05 {
		t.Errorf("sequential fraction %.3f, want ≈%.2f", frac, p.SeqProb)
	}
}

func TestScaleFootprint(t *testing.T) {
	p := Financial1()
	q := p.ScaleFootprint(0.001)
	if q.FootprintBytes >= p.FootprintBytes {
		t.Fatal("ScaleFootprint did not shrink")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	align := int64(p.AlignSectors) * trace.SectorSize
	if q.FootprintBytes%align != 0 {
		t.Fatalf("scaled footprint %d not aligned to %d", q.FootprintBytes, align)
	}
	// Scaling to nothing still leaves room for the largest request.
	tiny := p.ScaleFootprint(0)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated request is valid and within the footprint, for
// any profile and seed.
func TestGeneratorInvariantProperty(t *testing.T) {
	profiles := All()
	f := func(seed int64, pick uint8) bool {
		p := profiles[int(pick)%len(profiles)].ScaleFootprint(0.02)
		reqs, err := Generate(p, seed, 300)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if r.Validate() != nil {
				return false
			}
			if r.End()*trace.SectorSize > p.FootprintBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroProfiles(t *testing.T) {
	micro := Micro()
	if len(micro) != 4 {
		t.Fatalf("want 4 micro profiles, got %d", len(micro))
	}
	for _, p := range micro {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// SeqWrite is nearly all sequential continuations.
	reqs, err := Generate(SeqWrite().ScaleFootprint(0.05), 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].LBN == reqs[i-1].End() {
			seq++
		}
	}
	if frac := float64(seq) / float64(len(reqs)-1); frac < 0.95 {
		t.Errorf("SeqWrite sequential fraction %.3f, want > 0.95", frac)
	}
	// RandRead issues no writes.
	reqs, err = Generate(RandRead().ScaleFootprint(0.05), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Op != trace.OpRead {
			t.Fatal("RandRead produced a write")
		}
	}
}
