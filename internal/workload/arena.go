package workload

import (
	"fmt"
	"sync"

	"dloop/internal/trace"
)

// materializedCache memoizes MaterializeArena so each (profile, seed, n)
// stream is generated exactly once per process. Sweeps replay the same
// synthetic stream across many configurations; with the cache they share one
// generation pass and one columnar copy instead of paying both per cell. The
// cache is never evicted — entries are ~17 bytes per request and a sweep
// touches only a handful of (profile, seed) combinations — so a whole
// experiment suite stays within a few tens of megabytes.
var materializedCache sync.Map // string -> *materializedEntry

type materializedEntry struct {
	once sync.Once
	a    *trace.Arena
	err  error
}

// MaterializeArena generates the first n requests of the (p, seed) stream
// into an immutable columnar trace.Arena. Equal (profile, seed, n) calls —
// including concurrent ones — return the same shared Arena; callers replay it
// read-only through their own cursors. The stream is identical to n calls of
// Generator.Next on a fresh generator.
func MaterializeArena(p Profile, seed int64, n int) (*trace.Arena, error) {
	key := fmt.Sprintf("%+v|%d|%d", p, seed, n)
	v, _ := materializedCache.LoadOrStore(key, &materializedEntry{})
	e := v.(*materializedEntry)
	e.once.Do(func() {
		reqs, err := Generate(p, seed, n)
		if err != nil {
			e.err = err
			return
		}
		e.a = trace.ArenaOf(reqs)
	})
	return e.a, e.err
}
