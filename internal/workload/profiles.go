package workload

// The five profiles below reconstruct Table II of the paper. Sizes are in
// 512-byte sectors. Footprints are chosen so every workload fits the
// smallest evaluated SSD (4 GB) at high utilization — larger SSDs then delay
// garbage collection, reproducing the capacity trend of Fig. 8.

// Financial1 models the UMass/SPC OLTP trace: random, write-dominant
// (~77% writes), small requests (~3 KB), strong temporal locality.
func Financial1() Profile {
	return Profile{
		Name:       "Financial1",
		WriteRatio: 0.768,
		Sizes: []SizeWeight{
			{Sectors: 1, Weight: 0.20},
			{Sectors: 4, Weight: 0.30},
			{Sectors: 8, Weight: 0.40},
			{Sectors: 16, Weight: 0.10},
		},
		RatePerSec:     120,
		BurstProb:      0.35,
		FootprintBytes: 3200 << 20, // 3.2 GB
		ZipfS:          1.10,
		SeqProb:        0.05,
		AlignSectors:   8,
	}
}

// Financial2 models the UMass/SPC OLTP trace 2: random, read-dominant
// (~18% writes), ~2 KB requests, temporal locality.
func Financial2() Profile {
	return Profile{
		Name:       "Financial2",
		WriteRatio: 0.177,
		Sizes: []SizeWeight{
			{Sectors: 1, Weight: 0.30},
			{Sectors: 4, Weight: 0.40},
			{Sectors: 8, Weight: 0.30},
		},
		RatePerSec:     90,
		BurstProb:      0.30,
		FootprintBytes: 3000 << 20, // 3.0 GB
		ZipfS:          1.05,
		SeqProb:        0.05,
		AlignSectors:   8,
	}
}

// TPCC models the TPC-C SQL Server trace: very intensive, almost uniformly
// random 8 KB requests, mixed read/write.
func TPCC() Profile {
	return Profile{
		Name:       "TPC-C",
		WriteRatio: 0.65,
		Sizes: []SizeWeight{
			{Sectors: 16, Weight: 1.0},
		},
		RatePerSec:     1200,
		BurstProb:      0.50,
		FootprintBytes: 3400 << 20, // 3.4 GB
		ZipfS:          0,          // uniform
		SeqProb:        0,
		AlignSectors:   16,
	}
}

// Exchange models the Microsoft Exchange mail-server trace: bursty,
// write-heavy, larger requests (~12 KB), medium locality.
func Exchange() Profile {
	return Profile{
		Name:       "Exchange",
		WriteRatio: 0.70,
		Sizes: []SizeWeight{
			{Sectors: 8, Weight: 0.30},
			{Sectors: 16, Weight: 0.30},
			{Sectors: 32, Weight: 0.20},
			{Sectors: 64, Weight: 0.20},
		},
		RatePerSec:     300,
		BurstProb:      0.45,
		FootprintBytes: 2500 << 20, // 2.5 GB
		ZipfS:          1.02,
		SeqProb:        0.15,
		AlignSectors:   8,
	}
}

// Build models the Windows Build server trace: read-mostly compilation I/O
// with long sequential runs, ~8 KB requests.
func Build() Profile {
	return Profile{
		Name:       "Build",
		WriteRatio: 0.35,
		Sizes: []SizeWeight{
			{Sectors: 8, Weight: 0.40},
			{Sectors: 16, Weight: 0.40},
			{Sectors: 32, Weight: 0.20},
		},
		RatePerSec:     400,
		BurstProb:      0.40,
		FootprintBytes: 2000 << 20, // 2.0 GB
		ZipfS:          1.01,
		SeqProb:        0.50,
		AlignSectors:   8,
	}
}

// All returns the five paper workloads in the order the figures plot them.
func All() []Profile {
	return []Profile{Financial1(), Financial2(), TPCC(), Exchange(), Build()}
}

// ByName returns the named profile, or false if unknown. Matching is exact
// on the profile Name field.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Microbenchmark profiles: the four classic access patterns, useful for
// isolating FTL behaviours outside the five trace-derived workloads.

// SeqWrite returns a purely sequential write stream (switch-merge heaven
// for hybrid FTLs, stripe-parallel for DLOOP).
func SeqWrite() Profile {
	return Profile{
		Name:           "SeqWrite",
		WriteRatio:     1.0,
		Sizes:          []SizeWeight{{Sectors: 64, Weight: 1}},
		RatePerSec:     500,
		FootprintBytes: 2000 << 20,
		SeqProb:        0.99,
		AlignSectors:   64,
	}
}

// RandWrite returns uniformly random single-page writes, the worst case for
// every log-structured design.
func RandWrite() Profile {
	return Profile{
		Name:           "RandWrite",
		WriteRatio:     1.0,
		Sizes:          []SizeWeight{{Sectors: 4, Weight: 1}},
		RatePerSec:     500,
		FootprintBytes: 2000 << 20,
		AlignSectors:   4,
	}
}

// SeqRead returns a purely sequential read stream.
func SeqRead() Profile {
	p := SeqWrite()
	p.Name = "SeqRead"
	p.WriteRatio = 0
	return p
}

// RandRead returns uniformly random single-page reads.
func RandRead() Profile {
	p := RandWrite()
	p.Name = "RandRead"
	p.WriteRatio = 0
	return p
}

// Micro returns the four microbenchmark profiles.
func Micro() []Profile {
	return []Profile{SeqWrite(), RandWrite(), SeqRead(), RandRead()}
}
