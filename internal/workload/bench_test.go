package workload

import "testing"

// BenchmarkGenerator measures synthetic request generation, which feeds
// every experiment run.
func BenchmarkGenerator(b *testing.B) {
	for _, p := range All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			g, err := NewGenerator(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Next(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
