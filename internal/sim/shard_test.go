package sim

import (
	"sync"
	"testing"
)

func TestFutureTimeEncoding(t *testing.T) {
	for _, slot := range []int{0, 1, 7, slabChunkSize - 1, slabChunkSize, 1 << 20} {
		h := MakeFutureTime(slot)
		if !IsFutureTime(h) {
			t.Fatalf("slot %d: handle %d not recognized as future", slot, h)
		}
		if got := FutureSlot(h); got != slot {
			t.Fatalf("slot %d round-tripped to %d", slot, got)
		}
	}
	for _, tm := range []Time{0, 1, 1 << 40, 1<<62 - 1} {
		if IsFutureTime(tm) {
			t.Fatalf("concrete time %d classified as future", tm)
		}
	}
}

func TestFutureSlabResolveAcrossGoroutines(t *testing.T) {
	var s FutureSlab
	const n = 3 * slabChunkSize // force chunk growth
	handles := make([]Time, n)
	for i := range handles {
		slot, h := s.NewSlot()
		if slot != i {
			t.Fatalf("slot %d allocated as %d", i, slot)
		}
		handles[i] = h
	}
	go func() {
		for i := n - 1; i >= 0; i-- { // resolve in reverse to exercise waiting
			s.Resolve(i, Time(i*10))
		}
	}()
	for i, h := range handles {
		if got := s.Wait(FutureSlot(h)); got != Time(i*10) {
			t.Fatalf("slot %d resolved to %d, want %d", i, got, i*10)
		}
	}
	s.Reset()
	if s.InUse() != 0 {
		t.Fatalf("InUse %d after Reset", s.InUse())
	}
	// Recycled slots start unresolved again.
	slot, _ := s.NewSlot()
	done := make(chan Time)
	go func() { done <- s.Wait(slot) }()
	s.Resolve(slot, 42)
	if got := <-done; got != 42 {
		t.Fatalf("recycled slot resolved to %d", got)
	}
}

func TestSPSCOrderAndQuiescence(t *testing.T) {
	q := NewSPSC[int](8) // tiny ring: exercise backpressure
	const n = 100000
	var sum int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		for {
			v, ok := q.PopWait()
			if !ok {
				return
			}
			if v != next {
				t.Errorf("popped %d, want %d", v, next)
				return
			}
			next++
			sum += int64(v)
			q.MarkDone()
		}
	}()
	for i := 0; i < n/2; i++ {
		q.Push(i)
	}
	q.AwaitQuiesced() // mid-stream barrier
	if !q.Quiesced() {
		t.Fatal("not quiesced after AwaitQuiesced")
	}
	for i := n / 2; i < n; i++ {
		q.Push(i)
	}
	q.AwaitQuiesced()
	q.Close()
	wg.Wait()
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

func TestSPSCParkWake(t *testing.T) {
	q := NewSPSC[int](64)
	got := make(chan int, 1)
	go func() {
		v, _ := q.PopWait() // no work yet: the consumer must park, not spin
		got <- v
	}()
	// Give the consumer time to park, then wake it with one element.
	for i := 0; i < 1000; i++ {
		if q.sleeping.Load() {
			break
		}
	}
	q.Push(7)
	if v := <-got; v != 7 {
		t.Fatalf("woke with %d", v)
	}
	q.Close()
}

func TestSPSCStagedDoorbell(t *testing.T) {
	q := NewSPSC[int](8)
	// Staged elements are invisible until the doorbell rings.
	q.PushStaged(1)
	q.PushStaged(2)
	if q.tail.Load() != 0 {
		t.Fatalf("staged elements published early: tail=%d", q.tail.Load())
	}
	q.Ring()
	if q.tail.Load() != 2 {
		t.Fatalf("doorbell published tail=%d, want 2", q.tail.Load())
	}
	for want := 1; want <= 2; want++ {
		v, ok := q.PopWait()
		if !ok || v != want {
			t.Fatalf("popped %d/%v, want %d", v, ok, want)
		}
		q.MarkDone()
	}
	// Ring with nothing staged is a no-op.
	q.Ring()
	if q.tail.Load() != 2 {
		t.Fatalf("empty ring moved tail to %d", q.tail.Load())
	}
	// AwaitQuiesced publishes staged elements first, so a staged-only batch
	// cannot be waited on invisibly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := q.PopWait(); !ok {
				return
			}
			q.MarkDone()
		}
	}()
	q.PushStaged(3)
	q.AwaitQuiesced()
	if got := q.done.Load(); got != 3 {
		t.Fatalf("quiesced with done=%d, want 3", got)
	}
	q.Close()
	<-done
}

func TestSPSCStagedBackpressure(t *testing.T) {
	// Capacity 4: staging past the ring's size must ring the doorbell itself
	// and wait for the consumer rather than overwrite unconsumed elements.
	q := NewSPSC[int](4)
	const n = 64
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := q.PopWait()
			if !ok {
				return
			}
			got = append(got, v)
			q.MarkDone()
		}
	}()
	for i := 0; i < n; i++ {
		q.PushStaged(i)
	}
	q.Close()
	<-done
	if len(got) != n {
		t.Fatalf("consumer saw %d elements, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestSPSCPushAfterStagedKeepsOrder(t *testing.T) {
	q := NewSPSC[int](16)
	q.PushStaged(1)
	q.Push(2) // immediate push must publish the staged element too
	if q.tail.Load() != 2 {
		t.Fatalf("tail=%d after Push following PushStaged, want 2", q.tail.Load())
	}
	for want := 1; want <= 2; want++ {
		v, ok := q.PopWait()
		if !ok || v != want {
			t.Fatalf("popped %d/%v, want %d", v, ok, want)
		}
		q.MarkDone()
	}
}
