package sim

import "dloop/internal/ckpt"

// EncodeResourceState appends a ResourceState to w. Layout: solidUntil,
// busyFor, ops, then the live intervals as a length-prefixed slab of
// (start, end) int64 pairs.
func EncodeResourceState(w *ckpt.Writer, s ResourceState) {
	w.I64(int64(s.solidUntil))
	w.I64(int64(s.busyFor))
	w.I64(s.ops)
	w.U32(uint32(len(s.live)))
	for _, iv := range s.live {
		w.I64(int64(iv.start))
		w.I64(int64(iv.end))
	}
}

// DecodeResourceState reads a ResourceState written by EncodeResourceState.
func DecodeResourceState(r *ckpt.Reader) ResourceState {
	s := ResourceState{
		solidUntil: Time(r.I64()),
		busyFor:    Duration(r.I64()),
		ops:        r.I64(),
	}
	n := int(r.U32())
	if r.Err() != nil {
		return ResourceState{}
	}
	if n > 0 {
		s.live = make([]interval, n)
		for i := range s.live {
			s.live[i].start = Time(r.I64())
			s.live[i].end = Time(r.I64())
		}
	}
	return s
}
