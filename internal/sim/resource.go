package sim

// Resource is a hardware unit that serves one operation at a time: a plane's
// cell array, a chip's serial I/O bus, or a channel. It tracks the occupied
// intervals of its recent timeline and places each new operation into the
// earliest gap that fits — the out-of-order dispatch the paper's simulator
// implements with its priority list ("if the targeting channel and plane of
// the request are available, it will be immediately handed to the hardware
// module"). Without backfill, one operation scheduled far in the future
// would burn the idle gap before it and artificially delay every later
// operation.
//
// The occupied intervals live in a sliding window over a reused backing
// array: the live window is buf[head:], appends reuse the array's tail, and
// dropping the oldest interval just advances head. When head grows past the
// retention window the live intervals are copied back to the front, so the
// structure reaches a fixed high-water capacity and then never allocates
// again — the request-serving hot path acquires resources millions of times
// per simulated second and must not churn the heap.
type Resource struct {
	name string
	// solidUntil is the time before which the resource is treated as fully
	// occupied; busy intervals older than the retention window are folded
	// into it. buf[head:] holds disjoint occupied intervals at or after
	// solidUntil, sorted by start.
	solidUntil Time
	buf        []interval
	head       int
	busyFor    Duration
	ops        int64
}

type interval struct {
	start, end Time
}

// retainIntervals bounds the per-resource scheduling window. Operations are
// near-monotone in time, so a short window loses almost no gaps while
// keeping Acquire O(log window) in the common case.
const retainIntervals = 64

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// live returns the current window of occupied intervals.
func (r *Resource) live() []interval { return r.buf[r.head:] }

// FreeAt returns the time the resource's last scheduled occupation ends —
// the earliest start for an operation that must follow everything scheduled
// so far.
func (r *Resource) FreeAt() Time {
	if n := len(r.buf); n > r.head {
		return r.buf[n-1].end
	}
	return r.solidUntil
}

// BusyTime returns the total simulated time r has spent occupied.
func (r *Resource) BusyTime() Duration { return r.busyFor }

// Ops returns the number of occupations served by r.
func (r *Resource) Ops() int64 { return r.ops }

// Reset returns the resource to idle at time zero and clears statistics.
// The SSD controller uses it to discard preconditioning activity. The
// backing array is kept, so a reset resource stays allocation-free.
func (r *Resource) Reset() {
	r.solidUntil = 0
	r.buf = r.buf[:0]
	r.head = 0
	r.busyFor = 0
	r.ops = 0
}

// ResourceState is an opaque deep copy of a Resource's timeline, taken by
// Snapshot and reapplied by Restore. It never aliases live state, so one
// snapshot can seed any number of forked runs.
type ResourceState struct {
	solidUntil Time
	live       []interval
	busyFor    Duration
	ops        int64
}

// Snapshot captures the resource's occupied timeline and statistics.
func (r *Resource) Snapshot() ResourceState {
	return ResourceState{
		solidUntil: r.solidUntil,
		live:       append([]interval(nil), r.buf[r.head:]...),
		busyFor:    r.busyFor,
		ops:        r.ops,
	}
}

// Restore rewinds the resource to a snapshot, reusing the backing array so
// repeated forks stay allocation-free once the high-water capacity is
// reached.
func (r *Resource) Restore(s ResourceState) {
	r.solidUntil = s.solidUntil
	r.buf = append(r.buf[:0], s.live...)
	r.head = 0
	r.busyFor = s.busyFor
	r.ops = s.ops
}

// fitFrom returns the earliest start >= ready at which a duration d fits
// into r's gaps. Operations are near-monotone in time, so the overwhelmingly
// common case — the request lands at or after the end of the timeline — is
// answered in O(1); backfill searches binary-search into the window instead
// of scanning it.
func (r *Resource) fitFrom(ready Time, d Duration) Time {
	start := ready
	if start < r.solidUntil {
		start = r.solidUntil
	}
	live := r.buf[r.head:]
	n := len(live)
	if n == 0 || start >= live[n-1].end {
		return start
	}
	if start >= live[n-1].start {
		// Inside the tail interval: the timeline is continuously busy up to
		// its end and open afterwards, so the fit is its end — no search.
		return live[n-1].end
	}
	// Find the first interval whose end lies after start: intervals are
	// disjoint and sorted, so ends are sorted too. Earlier intervals can
	// neither contain start nor open a gap at or after it.
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].end > start {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	need := start.Add(d)
	// Walk the remaining intervals. Ends are strictly increasing and
	// live[lo].end > start by the search invariant, so after each miss the
	// candidate start is the current interval's end.
	for i := lo; i < n; i++ {
		if need <= live[i].start {
			return start
		}
		start = live[i].end
		need = start.Add(d)
	}
	return start
}

// insert adds an occupied interval, keeping the window sorted, disjoint, and
// coalesced. Appending at the tail (the near-monotone common case) touches
// only the last element.
func (r *Resource) insert(iv interval) {
	live := r.buf[r.head:]
	n := len(live)
	if n == 0 || iv.start > live[n-1].end {
		r.buf = append(r.buf, iv)
	} else if iv.start == live[n-1].end {
		live[n-1].end = iv.end
	} else {
		r.insertSlow(iv)
	}
	r.trim()
}

// insertSlow handles backfill: the interval lands strictly before the tail.
// Chained operation phases usually butt up against an existing interval, so
// the coalescing cases mutate a neighbor in place instead of shifting the
// window.
func (r *Resource) insertSlow(iv interval) {
	// Find the insertion point: iv goes before the first interval whose
	// start exceeds iv.start (buf[head:] is sorted by start and disjoint).
	lo, hi := r.head, len(r.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.buf[mid].start < iv.start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	touchL := pos > r.head && r.buf[pos-1].end == iv.start
	touchR := pos < len(r.buf) && iv.end == r.buf[pos].start
	switch {
	case touchL && touchR: // fills the gap exactly: merge three into one
		r.buf[pos-1].end = r.buf[pos].end
		r.buf = append(r.buf[:pos], r.buf[pos+1:]...)
	case touchL:
		r.buf[pos-1].end = iv.end
	case touchR:
		r.buf[pos].start = iv.start
	default:
		r.buf = append(r.buf, interval{})
		copy(r.buf[pos+1:], r.buf[pos:])
		r.buf[pos] = iv
	}
}

// trim bounds the window: fold the oldest intervals (and the gaps before
// them) into solidUntil, and slide the live window back to the front of the
// backing array once the dead prefix would otherwise force append to grow it.
func (r *Resource) trim() {
	for len(r.buf)-r.head > retainIntervals {
		r.solidUntil = r.buf[r.head].end
		r.head++
	}
	if r.head >= retainIntervals {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// Acquire occupies r for d in the earliest gap starting no earlier than
// ready, returning the interval [start, end) actually occupied.
func (r *Resource) Acquire(ready Time, d Duration) (start, end Time) {
	start = r.fitFrom(ready, d)
	end = start.Add(d)
	if d > 0 {
		r.insert(interval{start, end})
	}
	r.busyFor += d
	r.ops++
	return start, end
}

// EarliestStart reports when an operation that is ready at the given time
// and needs every resource in rs for duration d could begin, without
// acquiring anything. Each fitFrom is monotone in its argument, so the
// least common fit is a unique fixpoint; cycling until len(rs) consecutive
// resources confirm the current start reaches it with N calls instead of
// 2N when nothing conflicts (the overwhelmingly common case).
func EarliestStart(ready Time, d Duration, rs ...*Resource) Time {
	if len(rs) == 1 {
		return rs[0].fitFrom(ready, d)
	}
	start := ready
	ok := 0 // consecutive resources known to fit at start
	for i := 0; ; i++ {
		r := rs[i%len(rs)]
		if s := r.fitFrom(start, d); s > start {
			start = s
			ok = 1 // r fits at its own answer; everyone else must re-confirm
		} else {
			ok++
		}
		if ok >= len(rs) {
			return start
		}
	}
}

// AcquireAll occupies every resource in rs for d in the earliest common gap
// starting no earlier than ready. All resources occupy the same interval. It
// models an operation phase (such as a page transfer) that holds the channel
// and the chip serial bus simultaneously.
func AcquireAll(ready Time, d Duration, rs ...*Resource) (start, end Time) {
	start = EarliestStart(ready, d, rs...)
	end = start.Add(d)
	for _, r := range rs {
		if d > 0 {
			r.insert(interval{start, end})
		}
		r.busyFor += d
		r.ops++
	}
	return start, end
}
