package sim

// Resource is a hardware unit that serves one operation at a time: a plane's
// cell array, a chip's serial I/O bus, or a channel. It tracks the occupied
// intervals of its recent timeline and places each new operation into the
// earliest gap that fits — the out-of-order dispatch the paper's simulator
// implements with its priority list ("if the targeting channel and plane of
// the request are available, it will be immediately handed to the hardware
// module"). Without backfill, one operation scheduled far in the future
// would burn the idle gap before it and artificially delay every later
// operation.
type Resource struct {
	name string
	// solidUntil is the time before which the resource is treated as fully
	// occupied; busy intervals older than the retention window are folded
	// into it. busy holds disjoint occupied intervals at or after
	// solidUntil, sorted by start.
	solidUntil Time
	busy       []interval
	busyFor    Duration
	ops        int64
}

type interval struct {
	start, end Time
}

// retainIntervals bounds the per-resource scheduling window. Operations are
// near-monotone in time, so a short window loses almost no gaps while
// keeping Acquire O(window).
const retainIntervals = 64

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the time the resource's last scheduled occupation ends —
// the earliest start for an operation that must follow everything scheduled
// so far.
func (r *Resource) FreeAt() Time {
	if n := len(r.busy); n > 0 {
		return r.busy[n-1].end
	}
	return r.solidUntil
}

// BusyTime returns the total simulated time r has spent occupied.
func (r *Resource) BusyTime() Duration { return r.busyFor }

// Ops returns the number of occupations served by r.
func (r *Resource) Ops() int64 { return r.ops }

// Reset returns the resource to idle at time zero and clears statistics.
// The SSD controller uses it to discard preconditioning activity.
func (r *Resource) Reset() {
	r.solidUntil = 0
	r.busy = r.busy[:0]
	r.busyFor = 0
	r.ops = 0
}

// fitFrom returns the earliest start >= ready at which a duration d fits
// into r's gaps.
func (r *Resource) fitFrom(ready Time, d Duration) Time {
	start := MaxTime(ready, r.solidUntil)
	for _, iv := range r.busy {
		if start.Add(d) <= iv.start {
			return start
		}
		if iv.end > start {
			start = iv.end
		}
	}
	return start
}

func (r *Resource) insert(iv interval) {
	// Find insertion point (busy is sorted by start and disjoint).
	pos := len(r.busy)
	for i, b := range r.busy {
		if iv.start < b.start {
			pos = i
			break
		}
	}
	r.busy = append(r.busy, interval{})
	copy(r.busy[pos+1:], r.busy[pos:])
	r.busy[pos] = iv
	// Coalesce with neighbors that touch exactly.
	if pos+1 < len(r.busy) && r.busy[pos].end == r.busy[pos+1].start {
		r.busy[pos].end = r.busy[pos+1].end
		r.busy = append(r.busy[:pos+1], r.busy[pos+2:]...)
	}
	if pos > 0 && r.busy[pos-1].end == r.busy[pos].start {
		r.busy[pos-1].end = r.busy[pos].end
		r.busy = append(r.busy[:pos], r.busy[pos+1:]...)
	}
	// Bound the window: fold the oldest intervals (and the gaps before
	// them) into solidUntil.
	for len(r.busy) > retainIntervals {
		r.solidUntil = r.busy[0].end
		r.busy = r.busy[1:]
	}
}

// Acquire occupies r for d in the earliest gap starting no earlier than
// ready, returning the interval [start, end) actually occupied.
func (r *Resource) Acquire(ready Time, d Duration) (start, end Time) {
	start = r.fitFrom(ready, d)
	end = start.Add(d)
	if d > 0 {
		r.insert(interval{start, end})
	}
	r.busyFor += d
	r.ops++
	return start, end
}

// EarliestStart reports when an operation that is ready at the given time
// and needs every resource in rs for duration d could begin, without
// acquiring anything.
func EarliestStart(ready Time, d Duration, rs ...*Resource) Time {
	start := ready
	for {
		moved := false
		for _, r := range rs {
			if s := r.fitFrom(start, d); s > start {
				start = s
				moved = true
			}
		}
		if !moved {
			return start
		}
	}
}

// AcquireAll occupies every resource in rs for d in the earliest common gap
// starting no earlier than ready. All resources occupy the same interval. It
// models an operation phase (such as a page transfer) that holds the channel
// and the chip serial bus simultaneously.
func AcquireAll(ready Time, d Duration, rs ...*Resource) (start, end Time) {
	start = EarliestStart(ready, d, rs...)
	end = start.Add(d)
	for _, r := range rs {
		if d > 0 {
			r.insert(interval{start, end})
		}
		r.busyFor += d
		r.ops++
	}
	return start, end
}
