package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if t1 != Time(5000) {
		t.Fatalf("Add: got %d, want 5000", t1)
	}
	if d := t1.Sub(t0); d != 5*Microsecond {
		t.Fatalf("Sub: got %d, want %d", d, 5*Microsecond)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatal("Before ordering wrong")
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Fatal("After ordering wrong")
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds: got %v, want 1.5", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds: got %v, want 1500", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds: got %v, want 2", got)
	}
	if got := Microseconds(25); got != 25*Microsecond {
		t.Errorf("Microseconds builder: got %d, want %d", got, 25*Microsecond)
	}
	if got := Microseconds(0.2); got != 200*Nanosecond {
		t.Errorf("fractional Microseconds: got %d, want 200", got)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("plane")
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first acquire: [%d,%d), want [0,100)", s1, e1)
	}
	// Ready earlier than the resource frees: must queue.
	s2, e2 := r.Acquire(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("queued acquire: [%d,%d), want [100,200)", s2, e2)
	}
	// Ready later than free: starts at ready.
	s3, e3 := r.Acquire(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("idle acquire: [%d,%d), want [500,510)", s3, e3)
	}
	if r.BusyTime() != 210 {
		t.Fatalf("BusyTime: got %d, want 210", r.BusyTime())
	}
	if r.Ops() != 3 {
		t.Fatalf("Ops: got %d, want 3", r.Ops())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	r.Reset()
	if r.FreeAt() != 0 || r.BusyTime() != 0 || r.Ops() != 0 {
		t.Fatalf("after Reset: freeAt=%d busy=%d ops=%d, want zeros", r.FreeAt(), r.BusyTime(), r.Ops())
	}
}

func TestAcquireAllHoldsEveryResource(t *testing.T) {
	a := NewResource("chipbus")
	b := NewResource("channel")
	a.Acquire(0, 70) // chip bus busy until 70
	start, end := AcquireAll(10, 30, a, b)
	if start != 70 || end != 100 {
		t.Fatalf("AcquireAll: [%d,%d), want [70,100)", start, end)
	}
	if a.FreeAt() != 100 || b.FreeAt() != 100 {
		t.Fatalf("resources free at %d/%d, want 100/100", a.FreeAt(), b.FreeAt())
	}
}

func TestEarliestStartDoesNotAcquire(t *testing.T) {
	a := NewResource("a")
	a.Acquire(0, 40)
	if got := EarliestStart(10, 5, a); got != 40 {
		t.Fatalf("EarliestStart: got %d, want 40", got)
	}
	if a.FreeAt() != 40 {
		t.Fatal("EarliestStart must not mutate the resource")
	}
}

func TestResourceBackfill(t *testing.T) {
	r := NewResource("plane")
	// An operation scheduled far in the future must not burn the idle gap
	// before it.
	r.Acquire(1000, 100) // [1000,1100)
	s, e := r.Acquire(0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("backfill: [%d,%d), want [0,100)", s, e)
	}
	// A 500-long op does not fit the [100,1000) gap edge at 600... it does:
	// [100,600) fits. One that is too long goes after the future op.
	s, _ = r.Acquire(100, 950)
	if s != 1100 {
		t.Fatalf("oversized op: start %d, want 1100", s)
	}
	// Exact-fit gap.
	s, e = r.Acquire(100, 900)
	if s != 100 || e != 1000 {
		t.Fatalf("exact fit: [%d,%d), want [100,1000)", s, e)
	}
}

func TestAcquireAllBackfillCommonGap(t *testing.T) {
	a := NewResource("a")
	b := NewResource("b")
	a.Acquire(0, 100)   // a busy [0,100)
	b.Acquire(150, 100) // b busy [150,250)
	// Needs 60 in both: a free from 100, b free [0,150): common [100,150)
	// fits 50 but not 60 -> next common gap starts at 250.
	s, e := AcquireAll(0, 60, a, b)
	if s != 250 || e != 310 {
		t.Fatalf("common gap: [%d,%d), want [250,310)", s, e)
	}
	// 50 fits in [100,150).
	s, e = AcquireAll(0, 50, a, b)
	if s != 100 || e != 150 {
		t.Fatalf("small common gap: [%d,%d), want [100,150)", s, e)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var order []int
	q.Schedule(30, func(Time) { order = append(order, 3) })
	q.Schedule(10, func(Time) { order = append(order, 1) })
	q.Schedule(20, func(Time) { order = append(order, 2) })
	// Equal time: insertion order.
	q.Schedule(20, func(Time) { order = append(order, 21) })
	last := q.RunAll()
	want := []int{1, 2, 21, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if last != 30 {
		t.Fatalf("RunAll returned %d, want 30", last)
	}
}

func TestEventQueueReentrantScheduling(t *testing.T) {
	q := NewEventQueue()
	var fired []Time
	q.Schedule(5, func(at Time) {
		fired = append(fired, at)
		q.Schedule(at.Add(5), func(at2 Time) { fired = append(fired, at2) })
	})
	q.RunAll()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired %v, want [5 10]", fired)
	}
}

func TestEventQueueEmptyNext(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.Next(); ok {
		t.Fatal("Next on empty queue should report no event")
	}
	if q.RunAll() != 0 {
		t.Fatal("RunAll on empty queue should return 0")
	}
}

func TestEventQueueOpDescriptor(t *testing.T) {
	q := NewEventQueue()
	type fired struct {
		at     Time
		a0, a1 int64
	}
	var got []fired
	record := func(at Time, a0, a1 int64) { got = append(got, fired{at, a0, a1}) }
	q.ScheduleOp(20, record, 3, 4)
	q.ScheduleOp(10, record, 1, 2)
	q.RunAll()
	want := []fired{{10, 1, 2}, {20, 3, 4}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

// queueSpy records QueueObserver callbacks with the depths they reported.
type queueSpy struct {
	scheduled, fired []int
}

func (s *queueSpy) EventScheduled(at Time, queued int) { s.scheduled = append(s.scheduled, queued) }
func (s *queueSpy) EventFired(at Time, queued int)     { s.fired = append(s.fired, queued) }

func TestEventQueueObserver(t *testing.T) {
	q := NewEventQueue()
	spy := &queueSpy{}
	q.SetObserver(spy)
	noop := func(Time, int64, int64) {}
	q.ScheduleOp(10, noop, 0, 0)
	q.ScheduleOp(5, noop, 0, 0)
	q.RunAll()
	// Depth after each schedule: 1 then 2; after each fire: 1 then 0.
	if len(spy.scheduled) != 2 || spy.scheduled[0] != 1 || spy.scheduled[1] != 2 {
		t.Errorf("scheduled depths %v, want [1 2]", spy.scheduled)
	}
	if len(spy.fired) != 2 || spy.fired[0] != 1 || spy.fired[1] != 0 {
		t.Errorf("fired depths %v, want [1 0]", spy.fired)
	}
	// Detach: further activity must not reach the observer.
	q.SetObserver(nil)
	q.ScheduleOp(20, noop, 0, 0)
	q.RunAll()
	if len(spy.scheduled) != 2 || len(spy.fired) != 2 {
		t.Error("detached observer still received callbacks")
	}
}

// TestEventQueueSteadyStateAllocs verifies the tentpole property: once the
// pool reaches its high-water mark, scheduling and firing allocate nothing.
func TestEventQueueSteadyStateAllocs(t *testing.T) {
	q := NewEventQueue()
	var sink int64
	fn := func(at Time, a0, a1 int64) { sink += a0 + a1 }
	// Warm the slab and free-list.
	for i := 0; i < 64; i++ {
		q.ScheduleOp(Time(i), fn, 1, 2)
	}
	q.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.ScheduleOp(Time(i), fn, int64(i), 0)
		}
		q.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocated %v times per run, want 0", allocs)
	}
	_ = sink
}

// Property: acquisitions never overlap each other (they may backfill gaps),
// never start before ready, and busy time equals the sum of durations.
func TestResourceNoOverlapProperty(t *testing.T) {
	type iv struct{ s, e Time }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p")
		var got []iv
		var total Duration
		for i := 0; i < 200; i++ {
			ready := Time(rng.Int63n(10000))
			d := Duration(rng.Int63n(500) + 1)
			start, end := r.Acquire(ready, d)
			if start < ready {
				return false // started before ready
			}
			if end != start.Add(d) {
				return false
			}
			for _, g := range got {
				if start < g.e && g.s < end {
					return false // overlap
				}
			}
			got = append(got, iv{start, end})
			total += d
		}
		return r.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the event queue pops events in non-decreasing time order for any
// insertion order.
func TestEventQueueHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewEventQueue()
		for _, at := range times {
			q.Schedule(Time(at), func(Time) {})
		}
		var prev Time = -1
		for {
			ev, ok := q.Next()
			if !ok {
				break
			}
			if ev.At < prev {
				return false
			}
			prev = ev.At
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal-time events fire in insertion order even while the pool
// recycles event slots — interleaved schedule/drain cycles must not let a
// reused slot jump the queue. This is the determinism guarantee trace replay
// depends on.
func TestEventQueueInsertionOrderWithPoolReuse(t *testing.T) {
	f := func(rounds []uint8) bool {
		q := NewEventQueue()
		next := 0 // next expected global insertion index at each timestamp
		ok := true
		for r, n := range rounds {
			at := Time(r % 4) // few distinct times: lots of equal-time ties
			count := int(n%8) + 1
			next = 0
			for i := 0; i < count; i++ {
				i := i
				q.ScheduleOp(at, func(Time, int64, int64) {}, int64(i), 0)
			}
			// Drain half, schedule more at the same time, then drain all:
			// freed slots get reused while equal-time events are pending.
			for i := 0; i < count/2; i++ {
				ev, popped := q.Next()
				if !popped || ev.A0 != int64(next) {
					ok = false
				}
				next++
			}
			for i := 0; i < count; i++ {
				q.ScheduleOp(at, func(Time, int64, int64) {}, int64(count+i), 0)
			}
			for {
				ev, popped := q.Next()
				if !popped {
					break
				}
				if ev.A0 != int64(next) {
					ok = false
				}
				next++
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
