package sim

import "container/heap"

// Event is a unit of future work in the simulation: a callback that fires at
// a point in simulated time.
type Event struct {
	At Time
	Do func(at Time)

	seq   int64 // tie-break so equal-time events fire in insertion order
	index int   // heap bookkeeping
}

// EventQueue is a time-ordered queue of events. Events with equal timestamps
// fire in insertion order, which keeps trace replay deterministic.
type EventQueue struct {
	h   eventHeap
	seq int64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues a callback to fire at the given time.
func (q *EventQueue) Schedule(at Time, do func(at Time)) {
	q.seq++
	heap.Push(&q.h, &Event{At: at, Do: do, seq: q.seq})
}

// Next removes and returns the earliest event, or nil if the queue is empty.
func (q *EventQueue) Next() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// RunAll drains the queue, invoking each event's callback in time order.
// Callbacks may schedule further events. It returns the timestamp of the last
// event fired, or zero if the queue was empty.
func (q *EventQueue) RunAll() Time {
	var last Time
	for {
		ev := q.Next()
		if ev == nil {
			return last
		}
		last = ev.At
		ev.Do(ev.At)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
