package sim

// OpFunc is the callback form of a scheduled operation: a function plus two
// integer arguments. Storing the arguments in the event instead of capturing
// them in a closure lets the queue recycle event storage — steady-state
// scheduling allocates nothing.
type OpFunc func(at Time, a0, a1 int64)

// Event is a unit of future work in the simulation: an op descriptor that
// fires at a point in simulated time.
type Event struct {
	At     Time
	Fn     OpFunc
	A0, A1 int64

	seq int64 // tie-break so equal-time events fire in insertion order
}

// Fire invokes the event's callback with its stored arguments.
func (e Event) Fire() { e.Fn(e.At, e.A0, e.A1) }

// QueueObserver receives event-queue activity for observability: one call per
// scheduled event and one per fired event, each with the current queue depth.
// The sim package defines the interface (rather than depending on a concrete
// collector) so the dependency points outward; obs.Collector implements it.
type QueueObserver interface {
	EventScheduled(at Time, queued int)
	EventFired(at Time, queued int)
}

// EventQueue is a time-ordered queue of events. Events with equal timestamps
// fire in insertion order, which keeps trace replay deterministic.
//
// Events live in a slab indexed by int32 handles; popped events return their
// slot to an internal free-list, so a queue that reaches its high-water mark
// never allocates again. The binary heap orders handles, not Event values,
// keeping sift operations cheap.
type EventQueue struct {
	slab []Event // slot 0 unused: handle 0 is the nil sentinel
	free []int32 // recycled slots
	heap []int32 // handles ordered by (At, seq)
	seq  int64
	obs  QueueObserver
}

// SetObserver attaches (or, with nil, detaches) a QueueObserver. The disabled
// path costs one nil check per schedule/fire.
func (q *EventQueue) SetObserver(o QueueObserver) { q.obs = o }

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{slab: make([]Event, 1)}
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// Schedule enqueues a callback to fire at the given time. The closure is
// the caller's allocation; hot paths should use ScheduleOp, which stores its
// arguments in the pooled event instead.
func (q *EventQueue) Schedule(at Time, do func(at Time)) {
	q.ScheduleOp(at, func(t Time, _, _ int64) { do(t) }, 0, 0)
}

// ScheduleOp enqueues an op descriptor: fn will be called at the given time
// with the two arguments. The event storage comes from the queue's free-list,
// so steady-state scheduling performs no heap allocation.
func (q *EventQueue) ScheduleOp(at Time, fn OpFunc, a0, a1 int64) {
	q.seq++
	var h int32
	if n := len(q.free); n > 0 {
		h = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		h = int32(len(q.slab))
		q.slab = append(q.slab, Event{})
	}
	q.slab[h] = Event{At: at, Fn: fn, A0: a0, A1: a1, seq: q.seq}
	q.heap = append(q.heap, h)
	q.siftUp(len(q.heap) - 1)
	if q.obs != nil {
		q.obs.EventScheduled(at, len(q.heap))
	}
}

// Next removes and returns the earliest event. ok is false if the queue is
// empty. The returned Event is a copy; its slot is recycled immediately.
func (q *EventQueue) Next() (ev Event, ok bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	h := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	ev = q.slab[h]
	q.slab[h].Fn = nil // drop the callback reference for the GC
	q.free = append(q.free, h)
	if q.obs != nil {
		q.obs.EventFired(ev.At, len(q.heap))
	}
	return ev, true
}

// RunAll drains the queue, invoking each event's callback in time order.
// Callbacks may schedule further events. It returns the timestamp of the last
// event fired, or zero if the queue was empty.
func (q *EventQueue) RunAll() Time {
	var last Time
	for {
		ev, ok := q.Next()
		if !ok {
			return last
		}
		last = ev.At
		ev.Fire()
	}
}

// less orders handles by time, then insertion sequence.
func (q *EventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.At != eb.At {
		return ea.At < eb.At
	}
	return ea.seq < eb.seq
}

func (q *EventQueue) siftUp(i int) {
	h := q.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(h, q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		i = parent
	}
	q.heap[i] = h
}

func (q *EventQueue) siftDown(i int) {
	h := q.heap[i]
	n := len(q.heap)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if right := kid + 1; right < n && q.less(q.heap[right], q.heap[kid]) {
			kid = right
		}
		if !q.less(q.heap[kid], h) {
			break
		}
		q.heap[i] = q.heap[kid]
		i = kid
	}
	q.heap[i] = h
}
