package sim

import "testing"

// BenchmarkEventQueue measures pooled op scheduling: a rolling window of
// pending events, every slot recycled through the free-list.
func BenchmarkEventQueue(b *testing.B) {
	q := NewEventQueue()
	var sink int64
	fn := func(at Time, a0, a1 int64) { sink += a0 }
	for i := 0; i < 64; i++ {
		q.ScheduleOp(Time(i), fn, int64(i), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleOp(Time(i+64), fn, int64(i), 0)
		if ev, ok := q.Next(); ok {
			ev.Fire()
		}
	}
	_ = sink
}

// BenchmarkResourceAcquire measures the monotone fast path of the busy
// timeline, the innermost loop of every flash operation.
func BenchmarkResourceAcquire(b *testing.B) {
	r := NewResource("plane")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i*10), 8)
	}
}

// BenchmarkResourceBackfill measures gap-filling acquisition: a sparse
// timeline of future operations with earlier work backfilled between them.
func BenchmarkResourceBackfill(b *testing.B) {
	r := NewResource("channel")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := Time(i * 100)
		r.Acquire(base+50, 10) // future op leaves a gap before it
		r.Acquire(base, 10)    // backfills the gap
		r.Acquire(base+20, 10)
	}
}
