package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Future-time handles.
//
// The sharded engine keeps every FTL decision on one control goroutine and
// moves only the resource-timeline arithmetic onto per-channel workers. The
// control plane must therefore hand the FTL a completion time *before* the
// worker has computed it. A future handle is that promise: a Time whose bit
// pattern encodes a slot in a FutureSlab instead of a point in simulated
// time. Legitimate times are non-negative (nanoseconds since simulation
// start), so the negative half of the Time domain is free to carry handles:
// slot s is encoded as ^s, which is always negative.
//
// Handles flow through the existing FTL/device signatures unchanged — every
// in-tree consumer either chains a returned time into the next operation's
// ready argument (where the worker resolves it) or hands it back to the
// controller (which resolves it at an epoch barrier). Nothing in the decision
// plane does arithmetic or comparisons on device-returned times; that
// property is what makes the encoding safe, and the differential tests in
// internal/ssd enforce it.

// MakeFutureTime encodes a FutureSlab slot as a Time handle.
func MakeFutureTime(slot int) Time { return Time(^int64(slot)) }

// IsFutureTime reports whether t is a future handle rather than a concrete
// point in simulated time.
func IsFutureTime(t Time) bool { return t < 0 }

// FutureSlot decodes the slab slot behind a future handle.
func FutureSlot(t Time) int { return int(^int64(t)) }

const (
	slabChunkBits = 14
	slabChunkSize = 1 << slabChunkBits // slots per chunk
	slabChunkMask = slabChunkSize - 1
	slabMaxChunks = 1 << 12 // 2^26 slots; epochs hold at most ~2^18
)

// futureUnresolved marks a slot whose worker has not published an end time
// yet. Concrete times are non-negative, so any negative sentinel works.
const futureUnresolved = int64(-1)

type slabChunk [slabChunkSize]atomic.Int64

// FutureSlab is the single-producer store behind future-time handles. The
// control goroutine allocates slots and (after a barrier) reads them; exactly
// one worker publishes each slot's value. Slots are recycled wholesale by
// Reset at epoch boundaries, when the controller has proven no live handle
// survives — individual slots are never freed.
//
// Storage is a table of atomically published fixed-size chunks so that a
// growing slab never moves a slot a worker might be writing.
type FutureSlab struct {
	chunks [slabMaxChunks]atomic.Pointer[slabChunk]
	next   int // control-plane only
}

// NewSlot allocates the next slot, marks it unresolved, and returns its index
// and handle. Control-plane only.
func (s *FutureSlab) NewSlot() (int, Time) {
	idx := s.next
	ci := idx >> slabChunkBits
	if ci >= slabMaxChunks {
		panic(fmt.Sprintf("sim: future slab overflow (%d live slots); missing epoch flush", idx))
	}
	ch := s.chunks[ci].Load()
	if ch == nil {
		ch = new(slabChunk)
		s.chunks[ci].Store(ch)
	}
	ch[idx&slabChunkMask].Store(futureUnresolved)
	s.next++
	return idx, MakeFutureTime(idx)
}

// Resolve publishes the end time for a slot. Called by the one worker that
// executed the slot's operation.
func (s *FutureSlab) Resolve(slot int, end Time) {
	s.chunks[slot>>slabChunkBits].Load()[slot&slabChunkMask].Store(int64(end))
}

// Wait blocks until a slot resolves and returns its value. Safe from both
// the control goroutine (resolving a dependency mid-epoch) and workers
// (resolving a cross-shard ready time). Waits are short — the op being
// waited on was issued earlier, so it is at or near the head of its shard's
// queue — and on a loaded machine yielding beats spinning.
func (s *FutureSlab) Wait(slot int) Time {
	slotp := &s.chunks[slot>>slabChunkBits].Load()[slot&slabChunkMask]
	for i := 0; ; i++ {
		if v := slotp.Load(); v != futureUnresolved {
			return Time(v)
		}
		if i > 16 {
			runtime.Gosched()
		}
	}
}

// InUse returns the number of slots allocated since the last Reset.
func (s *FutureSlab) InUse() int { return s.next }

// Reset recycles every slot. The caller must have synchronized with all
// workers and dropped every outstanding handle first.
func (s *FutureSlab) Reset() { s.next = 0 }
