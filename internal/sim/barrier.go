package sim

import (
	"runtime"
	"sync/atomic"
)

// SPSC is the single-producer single-consumer mailbox between the control
// goroutine and one shard worker. The producer publishes fixed-size
// descriptors in global issue order; the consumer drains them FIFO, which is
// what keeps every per-resource acquisition sequence identical to the
// sequential engine's.
//
// The ring is lock-free in the common case: the producer writes the element
// and releases it by advancing tail; the consumer acquires tail, copies the
// element out, and advances head. done counts fully *processed* (not merely
// popped) elements, so the control plane's epoch barrier can wait for
// quiescence without knowing anything about the work itself.
//
// An idle consumer parks on a channel instead of spinning: sweeps run many
// simulator cells at once (and CI runs on few cores), so a shard with no
// work must cost nothing.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// stage is the producer-local write cursor for the batched-doorbell API:
	// PushStaged writes elements at stage without publishing them, Ring
	// publishes everything staged with one tail store (the doorbell). It is
	// touched only by the producer, so it needs no atomicity; tail is what
	// the consumer synchronizes on.
	stage uint64

	_    [48]byte // keep producer and consumer indices on separate cache lines
	tail atomic.Uint64
	_    [56]byte
	head atomic.Uint64
	_    [56]byte
	done atomic.Uint64

	sleeping atomic.Bool
	closed   atomic.Bool
	wake     chan struct{}
}

// NewSPSC returns a ring holding up to capacity elements (rounded up to a
// power of two, minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{
		buf:  make([]T, n),
		mask: n - 1,
		wake: make(chan struct{}, 1),
	}
}

// Push appends v and publishes it immediately: PushStaged plus Ring.
// Producer only. If the ring is full it yields until the consumer frees a
// slot; backpressure, not growth, bounds memory.
func (q *SPSC[T]) Push(v T) {
	q.PushStaged(v)
	q.Ring()
}

// PushStaged appends v without publishing it: the element is written into
// the ring but stays invisible to the consumer until the next Ring (or any
// call that implies one). Batching several stores per doorbell is what keeps
// a multi-queue producer from bouncing the tail cache line on every page.
// Producer only.
func (q *SPSC[T]) PushStaged(v T) {
	if q.stage-q.head.Load() > q.mask {
		// The ring is full counting staged elements. Publish what we have so
		// the consumer can drain, then wait for a slot.
		q.Ring()
		for q.stage-q.head.Load() > q.mask {
			runtime.Gosched()
		}
	}
	q.buf[q.stage&q.mask] = v
	q.stage++
}

// Ring publishes every staged element with a single tail store and wakes a
// parked consumer: the doorbell. A no-op when nothing is staged. Producer
// only.
func (q *SPSC[T]) Ring() {
	if q.stage == q.tail.Load() {
		return
	}
	q.tail.Store(q.stage)
	if q.sleeping.Load() {
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
}

// Close publishes anything staged, marks the stream complete, and wakes the
// consumer. Producer only.
func (q *SPSC[T]) Close() {
	q.Ring()
	q.closed.Store(true)
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// PopWait removes the next element, parking when the ring stays empty. It
// returns ok=false only after Close once every element has been drained.
// Consumer only.
func (q *SPSC[T]) PopWait() (v T, ok bool) {
	for spins := 0; ; spins++ {
		h := q.head.Load()
		if q.tail.Load() != h {
			v = q.buf[h&q.mask]
			q.head.Store(h + 1)
			return v, true
		}
		if q.closed.Load() {
			if q.tail.Load() == h {
				return v, false
			}
			continue
		}
		if spins < 64 {
			runtime.Gosched()
			continue
		}
		// Park. The producer stores tail before loading sleeping, and we
		// store sleeping before re-loading tail, so a push racing this
		// window either becomes visible to the recheck or sees sleeping
		// and signals wake.
		q.sleeping.Store(true)
		if q.tail.Load() != q.head.Load() || q.closed.Load() {
			q.sleeping.Store(false)
			continue
		}
		<-q.wake
		q.sleeping.Store(false)
		spins = 0
	}
}

// MarkDone records that one popped element has been fully processed.
// Consumer only.
func (q *SPSC[T]) MarkDone() { q.done.Add(1) }

// Quiesced reports whether every pushed element has been fully processed.
func (q *SPSC[T]) Quiesced() bool { return q.done.Load() == q.tail.Load() }

// AwaitQuiesced blocks until the consumer has fully processed every element
// pushed so far: the epoch barrier. It rings the doorbell first, so elements
// still staged by PushStaged cannot be waited on invisibly. Producer only.
func (q *SPSC[T]) AwaitQuiesced() {
	q.Ring()
	for !q.Quiesced() {
		runtime.Gosched()
	}
}
