// Package sim provides the discrete-event timing substrate used by the SSD
// simulator: a simulated clock, resource busy-timelines, and a small event
// queue. It is the Go equivalent of the scheduling core of
// DiskSim3.0/FlashSim that the DLOOP paper extends.
//
// The central modelling idea is the resource timeline: every hardware unit
// that can serve only one operation at a time (a plane's cell array, a
// chip's serial I/O bus, a channel) carries a "free at" timestamp. An
// operation that needs a set of resources starts at the maximum of its own
// ready time and the resources' free times, and advances each occupied
// resource's timeline by the phase during which it holds it. Requests that
// target disjoint resources therefore overlap in simulated time with no
// explicit parallelism bookkeeping, which is exactly how plane-level
// parallelism manifests in the paper's simulator.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. Nanoseconds give ample headroom: 2^63 ns is roughly 292 years.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is deliberately a
// distinct type from Time so that the compiler rejects point/span mixups.
type Duration int64

// Common unit constants for building durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Std converts a simulated duration to a time.Duration for reporting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration in seconds as a float.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration in milliseconds as a float, the unit the
// paper's figures use for mean response time.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports the duration in microseconds as a float.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string {
	return fmt.Sprintf("t+%s", time.Duration(t))
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Microseconds builds a Duration from a (possibly fractional) count of
// microseconds, the natural unit of NAND datasheets.
func Microseconds(us float64) Duration {
	return Duration(us * float64(Microsecond))
}
