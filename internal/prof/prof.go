// Package prof wires the standard -cpuprofile/-memprofile/-trace trio into a
// command. The simulator's hot paths were tuned from exactly these profiles;
// keeping the flags on every binary makes the next regression a one-flag
// reproduction instead of an instrumentation project.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the profile output paths; empty paths are disabled.
type Config struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Start begins the enabled profiles and returns a stop function that must be
// called (once) before the process exits; it flushes and closes the outputs.
func Start(cfg Config) (func() error, error) {
	var stops []func() error

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: start trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}

	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
			return f.Close()
		})
	}

	return func() error {
		var firstErr error
		for _, stop := range stops {
			if err := stop(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
