package dloop_test

import (
	"fmt"
	"log"

	"dloop"
)

// ExampleSimulate runs the three paper FTLs on a miniature Financial1 and
// checks the paper's headline ordering.
func ExampleSimulate() {
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	p := dloop.Financial1().ScaleFootprint(0.02)

	means := map[string]float64{}
	for _, scheme := range dloop.Schemes() {
		cfg := dloop.Config{FTL: scheme, Geometry: &geo, CMTEntries: 128}
		res, err := dloop.Simulate(cfg, p, 5000, 42)
		if err != nil {
			log.Fatal(err)
		}
		means[scheme] = res.MeanRespMs
	}
	fmt.Println("DLOOP beats DFTL:", means["DLOOP"] < means["DFTL"])
	fmt.Println("DLOOP beats FAST:", means["DLOOP"] < means["FAST"])
	// Output:
	// DLOOP beats DFTL: true
	// DLOOP beats FAST: true
}

// ExampleGeometryFor shows the paper's capacity-derived device shapes.
func ExampleGeometryFor() {
	for _, gb := range []int{4, 64} {
		g, err := dloop.GeometryFor(gb, 2, 0.03)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d GB: %d channels, %d planes\n", gb, g.Channels, g.Planes())
	}
	// Output:
	// 4 GB: 2 channels, 16 planes
	// 64 GB: 8 channels, 256 planes
}

// ExampleDefaultTiming shows the §III.A latency identity the model is
// calibrated to: copy-back saves ~31% over an inter-plane move (the paper
// quotes 30.7%; the extra 0.7 points here are the command/address cycles
// the paper rounds away).
func ExampleDefaultTiming() {
	tm := dloop.DefaultTiming()
	cb := tm.CopyBack().Microseconds()
	inter := tm.InterPlaneCopy(2048).Microseconds()
	fmt.Printf("copy-back: %.0f µs\n", cb)
	fmt.Printf("saving: %.1f%%\n", 100*(1-cb/inter))
	// Output:
	// copy-back: 225 µs
	// saving: 31.4%
}

// ExampleGenerateTrace materializes a deterministic synthetic stream.
func ExampleGenerateTrace() {
	p := dloop.TPCC().ScaleFootprint(0.01)
	reqs, err := dloop.GenerateTrace(p, 7, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reqs {
		fmt.Printf("%s %d sectors at %d\n", r.Op, r.Sectors, r.LBN)
	}
	// Output:
	// read 16 sectors at 32816
	// read 16 sectors at 2864
	// write 16 sectors at 49152
}
