package dloop_test

import (
	"testing"

	"dloop"
)

func TestFacadeSimulate(t *testing.T) {
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	p := dloop.Financial1().ScaleFootprint(0.02)
	for _, scheme := range dloop.Schemes() {
		cfg := dloop.Config{FTL: scheme, Geometry: &geo, CMTEntries: 128}
		res, err := dloop.Simulate(cfg, p, 2000, 1)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.FTL != scheme || res.Requests != 2000 || res.MeanRespMs <= 0 {
			t.Fatalf("%s: bad result %+v", scheme, res)
		}
	}
}

func TestFacadeManualDrive(t *testing.T) {
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := dloop.New(dloop.Config{FTL: dloop.SchemeDLOOP, Geometry: &geo})
	if err != nil {
		t.Fatal(err)
	}
	if err := ssd.PreconditionBytes(16 << 20); err != nil {
		t.Fatal(err)
	}
	rt, err := ssd.Serve(dloop.Request{LBN: 0, Sectors: 8, Op: dloop.OpWrite})
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 {
		t.Fatal("write cost no time")
	}
	if got := ssd.Result().Requests; got != 1 {
		t.Fatalf("Requests = %d", got)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(dloop.Workloads()) != 5 {
		t.Fatal("want 5 workloads")
	}
	for _, name := range []string{"Financial1", "Financial2", "TPC-C", "Exchange", "Build"} {
		if _, ok := dloop.WorkloadByName(name); !ok {
			t.Errorf("missing workload %s", name)
		}
	}
	reqs, err := dloop.GenerateTrace(dloop.TPCC().ScaleFootprint(0.01), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("generated %d", len(reqs))
	}
}

func TestFacadeGeometry(t *testing.T) {
	g, err := dloop.GeometryFor(8, 2, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if g.Planes() != 32 {
		t.Fatalf("8 GB should have 32 planes, got %d", g.Planes())
	}
	tm := dloop.DefaultTiming()
	if tm.CopyBack().Microseconds() != 225 {
		t.Fatalf("copy-back %v µs, want 225", tm.CopyBack().Microseconds())
	}
}

func TestFacadeRecover(t *testing.T) {
	geo, err := dloop.ScaledGeometryFor(4, 2, 0.03, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dloop.New(dloop.Config{FTL: dloop.SchemeDLOOP, Geometry: &geo, CMTEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PreconditionBytes(16 << 20); err != nil {
		t.Fatal(err)
	}
	r, err := dloop.Recover(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Serve(dloop.Request{LBN: 0, Sectors: 4, Op: dloop.OpRead}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := dloop.Options{Requests: 800, Scale: 0.02, Seed: 3, Workers: 2}
	mrt, sdrpp, err := dloop.Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if mrt == nil || sdrpp == nil || len(mrt.Series()) == 0 {
		t.Fatal("empty Fig10 grids")
	}
	g, err := dloop.StripingStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Series()) != 4 {
		t.Fatalf("striping study series: %v", g.Series())
	}
}
