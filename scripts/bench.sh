#!/bin/sh
# bench.sh — run the hot-path benchmark suite and emit a machine-readable
# baseline (BENCH_BASELINE.json by default).
#
# Usage:
#   scripts/bench.sh                 # measured run (default -benchtime 300ms)
#   scripts/bench.sh -smoke          # CI smoke: one iteration per benchmark,
#                                    # verifies the suite runs, timings noisy
#   scripts/bench.sh -o out.json     # write the baseline elsewhere
#   scripts/bench.sh -compare        # measure, then diff against
#                                    # BENCH_BASELINE.json via cmd/benchcmp:
#                                    # exit non-zero on >10% ns/op growth or
#                                    # ANY B/op / allocs/op growth
#   scripts/bench.sh -compare -benchtime 100ms  # faster CI compare
#
# -compare always measures (it ignores -smoke's 1x benchtime): a single
# iteration charges one-time setup allocations to B/op and its timing is
# noise, so a 1x run cannot be compared against an amortized baseline.
#
# The sweep benchmarks (BenchmarkFig8 etc.) regenerate whole paper figures and
# take seconds per iteration; the baseline tracks the hot-path benchmarks,
# which is where a scheduling or mapping regression shows up first.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_BASELINE.json
benchtime=300ms
count=1
mode=measured
compare=""
while [ $# -gt 0 ]; do
    case "$1" in
    -smoke) mode=smoke; benchtime=1x ;;
    -compare) compare=BENCH_BASELINE.json ;;
    -benchtime) shift; benchtime=$1 ;;
    -o) shift; out=$1 ;;
    *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
    shift
done
if [ -n "$compare" ]; then
    # Short benchtimes under-amortize one-time setup costs into B/op and make
    # ns/op noisy enough to trip the 10% gate, so compare always measures the
    # full benchtime and takes the best of three runs per benchmark (the
    # baseline records best-case numbers; comparing a single noisy sample
    # against a best-case baseline fails spuriously on a loaded machine).
    mode=measured
    if [ "$benchtime" = 1x ]; then
        benchtime=300ms
    fi
    count=3
fi
if [ -n "$compare" ] && [ "$out" = "$compare" ]; then
    echo "bench.sh: -compare would diff $out against itself; pass -o" >&2
    exit 2
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Root package: only the end-to-end hot-path benchmarks (throughput plain,
# with the observability recorder attached, sharded vs sequential — the
# BenchmarkShardedThroughput pattern covers every mode sub-benchmark,
# including the batched-dispatch 8ch/mq-pipelined one — plus the
# sustained-GC regime), not the figure sweeps. Internal packages: every
# benchmark they define.
#
# `go test | tee` would mask a benchmark failure: POSIX sh has no pipefail,
# so under set -eu the pipeline's status is tee's (always 0) and a crashed
# run would quietly emit a truncated baseline that -compare then trips over
# (or worse, a fresh -o baseline silently loses benchmarks). Capture to the
# file first, then echo it, so `go test`'s own exit status gates the script.
run_bench() {
    if ! go test "$@" >> "$raw" 2>&1; then
        cat "$raw" >&2
        echo "bench.sh: go test $* failed" >&2
        exit 1
    fi
}
run_bench -run '^$' -bench '^(BenchmarkSimulateThroughput(Observed(MQ)?)?|BenchmarkShardedThroughput|BenchmarkGCHeavy)$' \
    -benchmem -benchtime "$benchtime" -count "$count" .
run_bench -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" \
    ./internal/sim/ ./internal/flash/ ./internal/ftl/ ./internal/ftl/translate/ \
    ./internal/workload/ ./internal/trace/ ./internal/expt/ ./internal/ssd/
cat "$raw"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v commit="$commit" -v date="$date" -v mode="$mode" \
    -v benchtime="$benchtime" -v goversion="$(go env GOVERSION)" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
/^pkg: /       { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns     = $i
        if ($(i+1) == "B/op")      bytes  = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    key = pkg "." name
    # keep the best of repeated counts, per metric: min ns for speed, min
    # B/op and allocs/op for amortization jitter (a short run charges more
    # one-time setup to each op)
    if (!(key in best)) {
        best[key] = ns
        bbytes[key] = bytes
        ballocs[key] = allocs
        bname[key] = name
        bpkg[key] = pkg
        order[++n] = key
        seen[key] = 1
    } else {
        if (ns + 0 < best[key] + 0) best[key] = ns
        if (bytes != "" && (bbytes[key] == "" || bytes + 0 < bbytes[key] + 0)) bbytes[key] = bytes
        if (allocs != "" && (ballocs[key] == "" || allocs + 0 < ballocs[key] + 0)) ballocs[key] = allocs
    }
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"mode\": \"%s\",\n", mode
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchmarks\": [\n"
    emitted = 0
    for (i = 1; i <= n; i++) {
        key = order[i]
        if (!(key in seen)) continue
        delete seen[key]
        if (emitted++) printf ",\n"
        printf "    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s",
            bpkg[key], bname[key], best[key]
        if (bbytes[key] != "")  printf ", \"bytes_per_op\": %s", bbytes[key]
        if (ballocs[key] != "") printf ", \"allocs_per_op\": %s", ballocs[key]
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "bench.sh: wrote $out ($mode mode)" >&2

if [ -n "$compare" ]; then
    go run ./cmd/benchcmp -old "$compare" -new "$out"
fi
