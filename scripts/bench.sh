#!/bin/sh
# bench.sh — run the hot-path benchmark suite and emit a machine-readable
# baseline (BENCH_BASELINE.json by default).
#
# Usage:
#   scripts/bench.sh                 # measured run (default -benchtime 300ms)
#   scripts/bench.sh -smoke          # CI smoke: one iteration per benchmark,
#                                    # verifies the suite runs, timings noisy
#   scripts/bench.sh -o out.json     # write the baseline elsewhere
#
# The sweep benchmarks (BenchmarkFig8 etc.) regenerate whole paper figures and
# take seconds per iteration; the baseline tracks the hot-path benchmarks,
# which is where a scheduling or mapping regression shows up first.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_BASELINE.json
benchtime=300ms
count=1
mode=measured
while [ $# -gt 0 ]; do
    case "$1" in
    -smoke) mode=smoke; benchtime=1x ;;
    -o) shift; out=$1 ;;
    *) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
    esac
    shift
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Root package: only the end-to-end throughput benchmark, not the figure
# sweeps. Internal packages: every benchmark they define.
go test -run '^$' -bench '^BenchmarkSimulateThroughput$' -benchmem \
    -benchtime "$benchtime" -count "$count" . | tee -a "$raw"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" \
    ./internal/sim/ ./internal/flash/ ./internal/ftl/ ./internal/workload/ | tee -a "$raw"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v commit="$commit" -v date="$date" -v mode="$mode" \
    -v benchtime="$benchtime" -v goversion="$(go env GOVERSION)" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
/^pkg: /       { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns     = $i
        if ($(i+1) == "B/op")      bytes  = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    key = pkg "." name
    # keep the fastest of repeated counts
    if (!(key in best) || ns + 0 < best[key] + 0) {
        best[key] = ns
        bbytes[key] = bytes
        ballocs[key] = allocs
        bname[key] = name
        bpkg[key] = pkg
        order[++n] = key
        seen[key] = 1
    }
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"mode\": \"%s\",\n", mode
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchmarks\": [\n"
    emitted = 0
    for (i = 1; i <= n; i++) {
        key = order[i]
        if (!(key in seen)) continue
        delete seen[key]
        if (emitted++) printf ",\n"
        printf "    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s",
            bpkg[key], bname[key], best[key]
        if (bbytes[key] != "")  printf ", \"bytes_per_op\": %s", bbytes[key]
        if (ballocs[key] != "") printf ", \"allocs_per_op\": %s", ballocs[key]
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "bench.sh: wrote $out ($mode mode)" >&2
