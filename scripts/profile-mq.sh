#!/bin/sh
# profile-mq.sh — capture a CPU profile of the multi-queue hot path.
#
# Builds cmd/dloopsim, runs the 8-channel multi-queue shape (auto = one FTL
# shard per channel) with -cpuprofile, and prints pprof's top functions.
# The profile is kept at the -o path for deeper digging (flame graphs,
# `go tool pprof -http`, peephole diffs against an older profile).
#
# Usage:
#   scripts/profile-mq.sh                       # 400k requests, text top-25
#   scripts/profile-mq.sh -requests 2000000     # longer run, steadier profile
#   scripts/profile-mq.sh -o /tmp/mq.pprof      # keep the profile elsewhere
#   scripts/profile-mq.sh -http :8080           # interactive pprof web UI
#   scripts/profile-mq.sh -- -merge relaxed -epoch-pages 512
#                                               # extra dloopsim flags after --
set -eu

cd "$(dirname "$0")/.."

requests=400000
out=mq-cpu.pprof
http=""
while [ $# -gt 0 ]; do
    case "$1" in
    -requests) shift; requests=$1 ;;
    -o) shift; out=$1 ;;
    -http) shift; http=$1 ;;
    --) shift; break ;;
    *) echo "profile-mq.sh: unknown argument $1 (pass dloopsim flags after --)" >&2; exit 2 ;;
    esac
    shift
done

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/dloopsim" ./cmd/dloopsim

# 16 GB / 8 channels engages auto FTL sharding; the footprint keeps GC in
# the loop so the profile covers dispatch, execution, folding, and GC.
"$bindir/dloopsim" -ftl DLOOP -capacity 16 -requests "$requests" \
    -footprint 64 -ftl-shards auto -cpuprofile "$out" "$@"

echo "profile-mq.sh: profile written to $out" >&2
if [ -n "$http" ]; then
    exec go tool pprof -http "$http" "$bindir/dloopsim" "$out"
fi
go tool pprof -top -nodecount 25 "$bindir/dloopsim" "$out"
